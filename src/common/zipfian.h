#pragma once

#include <cstdint>

#include "common/rng.h"

namespace rocc {

/// Zipfian-distributed key generator in the style of the YCSB core workload
/// generator (Gray et al., "Quickly generating billion-record synthetic
/// databases").
///
/// `theta` is the Zipfian skew constant used throughout the paper:
///   no-skew = uniform, low-skew theta=0.7, medium theta=0.88, high theta=1.04.
/// A theta of exactly 0 degrades gracefully to uniform.
///
/// The zeta normalisation constant is computed once per (n, theta) pair and
/// shared; drawing a sample is O(1).
class ZipfianGenerator {
 public:
  /// \param n      size of the key space; draws are in [0, n)
  /// \param theta  Zipfian constant (0 => uniform)
  /// \param scramble  if true, draws are scrambled with a 64-bit hash so that
  ///                  hot keys are spread across the key space (YCSB
  ///                  "scrambled zipfian"); the paper's hybrid workload uses
  ///                  unscrambled draws so range scans hit hot ranges.
  ZipfianGenerator(uint64_t n, double theta, bool scramble = false);

  /// Draw one sample using the caller's RNG.
  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Declare the process-wide zeta cache warm (or cold again). While warm,
  /// a cache miss asserts in debug builds: all generators must be built
  /// during setup/warm-up, never inside a measured region, so workers only
  /// ever take the lock-free hit path. The runner flips this around the
  /// measured region.
  static void MarkZetaCacheWarm(bool warm = true);

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  bool scramble_;
  bool uniform_;
  double alpha_ = 0;
  double zetan_ = 0;
  double eta_ = 0;
  double zeta2theta_ = 0;
};

}  // namespace rocc
