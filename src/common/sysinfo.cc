#include "common/sysinfo.h"

#include <fstream>
#include <sstream>
#include <thread>

namespace rocc {

SysInfo SysInfo::Probe() {
  SysInfo info;
  info.logical_cores = std::thread::hardware_concurrency();
  std::ifstream mem("/proc/meminfo");
  std::string line;
  while (std::getline(mem, line)) {
    if (line.rfind("MemTotal:", 0) == 0) {
      std::stringstream ss(line.substr(9));
      uint64_t kb = 0;
      ss >> kb;
      info.total_memory_bytes = kb * 1024;
      break;
    }
  }
  std::ifstream cpu("/proc/cpuinfo");
  while (std::getline(cpu, line)) {
    if (line.rfind("model name", 0) == 0) {
      auto colon = line.find(':');
      if (colon != std::string::npos) info.cpu_model = line.substr(colon + 2);
      break;
    }
  }
  if (info.cpu_model.empty()) info.cpu_model = "unknown";
  return info;
}

std::string SysInfo::ToString() const {
  std::stringstream ss;
  ss << "cpu=\"" << cpu_model << "\" logical_cores=" << logical_cores
     << " memory_gb=" << (static_cast<double>(total_memory_bytes) / (1ull << 30));
  return ss.str();
}

}  // namespace rocc
