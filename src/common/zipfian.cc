#include "common/zipfian.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <mutex>

namespace rocc {
namespace {

// zeta(n, theta) is O(n); memoise it so sweeping benchmarks that rebuild
// generators for every configuration do not recompute the 10M-term sum.
//
// The cache is an append-only singly-linked list published with
// release/acquire, so the hit path — the only path a measured worker should
// ever take — is lock-free and allocation-free. The mutex serialises
// publishers only. Nodes are intentionally leaked: the set of (n, theta)
// pairs is tiny and process-lifetime.
struct ZetaNode {
  uint64_t n;
  double theta;
  double value;
  ZetaNode* next;
};

std::atomic<ZetaNode*> g_zeta_head{nullptr};
std::atomic<bool> g_zeta_warm{false};
std::mutex g_zeta_publish_mu;

bool FindZeta(uint64_t n, double theta, double* out) {
  for (ZetaNode* p = g_zeta_head.load(std::memory_order_acquire); p != nullptr;
       p = p->next) {
    if (p->n == n && p->theta == theta) {
      *out = p->value;
      return true;
    }
  }
  return false;
}

}  // namespace

void ZipfianGenerator::MarkZetaCacheWarm(bool warm) {
  g_zeta_warm.store(warm, std::memory_order_relaxed);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double cached = 0;
  if (FindZeta(n, theta, &cached)) return cached;
  // Every generator a run uses is built during setup, so by the time the
  // measured region starts (the runner flips the flag) every (n, theta) this
  // process will ever ask for is already published — a miss past that point
  // means a generator is being constructed on the hot path.
  assert(!g_zeta_warm.load(std::memory_order_relaxed) &&
         "zeta cache miss after warm-up: ZipfianGenerator built inside the "
         "measured region");
  std::lock_guard<std::mutex> lk(g_zeta_publish_mu);
  if (FindZeta(n, theta, &cached)) return cached;  // raced with a publisher
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  ZetaNode* node = new ZetaNode{
      n, theta, sum, g_zeta_head.load(std::memory_order_relaxed)};
  g_zeta_head.store(node, std::memory_order_release);
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, bool scramble)
    : n_(n), theta_(theta), scramble_(scramble), uniform_(theta <= 0.0) {
  if (uniform_ || n_ == 0) return;
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) const {
  if (n_ == 0) return 0;
  uint64_t draw;
  if (uniform_) {
    draw = rng.Uniform(n_);
  } else {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      draw = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta_)) {
      draw = 1;
    } else {
      draw = static_cast<uint64_t>(static_cast<double>(n_) *
                                   std::pow(eta_ * u - eta_ + 1.0, alpha_));
      if (draw >= n_) draw = n_ - 1;
    }
  }
  if (scramble_) {
    uint64_t st = draw;
    draw = SplitMix64(st) % n_;
  }
  return draw;
}

}  // namespace rocc
