#include "common/zipfian.h"

#include <cmath>
#include <map>
#include <mutex>

namespace rocc {
namespace {

// zeta(n, theta) is O(n); memoise it so sweeping benchmarks that rebuild
// generators for every configuration do not recompute the 10M-term sum.
std::mutex g_zeta_mu;
std::map<std::pair<uint64_t, double>, double> g_zeta_cache;

}  // namespace

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  {
    std::lock_guard<std::mutex> lk(g_zeta_mu);
    auto it = g_zeta_cache.find({n, theta});
    if (it != g_zeta_cache.end()) return it->second;
  }
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  {
    std::lock_guard<std::mutex> lk(g_zeta_mu);
    g_zeta_cache[{n, theta}] = sum;
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, bool scramble)
    : n_(n), theta_(theta), scramble_(scramble), uniform_(theta <= 0.0) {
  if (uniform_ || n_ == 0) return;
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) const {
  if (n_ == 0) return 0;
  uint64_t draw;
  if (uniform_) {
    draw = rng.Uniform(n_);
  } else {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      draw = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta_)) {
      draw = 1;
    } else {
      draw = static_cast<uint64_t>(static_cast<double>(n_) *
                                   std::pow(eta_ * u - eta_ + 1.0, alpha_));
      if (draw >= n_) draw = n_ - 1;
    }
  }
  if (scramble_) {
    uint64_t st = draw;
    draw = SplitMix64(st) % n_;
  }
  return draw;
}

}  // namespace rocc
