#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/latch.h"

namespace rocc {

/// Bump allocator with geometrically growing blocks.
///
/// Tables allocate row storage from an arena so that loading 10M rows does
/// not make 10M malloc calls and row memory stays dense. Memory is released
/// only when the arena is destroyed, matching the paper's setting where
/// tables are preloaded and rows live for the whole experiment.
class Arena {
 public:
  explicit Arena(size_t initial_block_bytes = 1 << 20);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `bytes` aligned to `align` (power of two).
  void* Allocate(size_t bytes, size_t align = 8);

  /// Thread-safe variant guarded by a latch; used by concurrent inserts.
  void* AllocateConcurrent(size_t bytes, size_t align = 8);

  size_t allocated_bytes() const { return allocated_; }

 private:
  void NewBlock(size_t min_bytes);

  std::vector<char*> blocks_;
  char* cur_ = nullptr;
  size_t cur_left_ = 0;
  size_t next_block_ = 0;
  size_t allocated_ = 0;
  SpinLatch latch_;
};

}  // namespace rocc
