#include "common/config.h"

#include <cstdlib>
#include <sstream>

namespace rocc {

Config::Config(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "true";
    }
  }
}

bool Config::Has(const std::string& key) const { return kv_.count(key) > 0; }

void Config::Set(const std::string& key, const std::string& value) { kv_[key] = value; }

std::string Config::GetString(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Config::GetDouble(const std::string& key, double def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<int64_t> Config::GetIntList(const std::string& key,
                                        const std::vector<int64_t>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<double> Config::GetDoubleList(const std::string& key,
                                          const std::vector<double>& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtod(tok.c_str(), nullptr));
  }
  return out;
}

}  // namespace rocc
