#pragma once

#include <cstdint>

namespace rocc {

/// SplitMix64 — used to seed Xoshiro and to scramble keys.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** PRNG.
///
/// Fast, high-quality, and each worker thread owns an independently seeded
/// instance so workload generation never contends.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xdeadbeefcafef00dULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& si : s_) si = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace rocc
