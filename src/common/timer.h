#pragma once

#include <chrono>
#include <cstdint>

namespace rocc {

/// Monotonic clock in nanoseconds.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Accumulates elapsed wall time into a caller-owned counter on destruction.
///
/// The transaction harness uses one accumulator per execution phase
/// (read/write, validation, abort) to reproduce the Fig. 1 breakdown.
class ScopedTimer {
 public:
  explicit ScopedTimer(uint64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) *sink_ += NowNanos() - start_;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stop early and credit the elapsed time now.
  void Stop() {
    if (sink_ != nullptr) *sink_ += NowNanos() - start_;
    sink_ = nullptr;
  }

 private:
  uint64_t* sink_;
  uint64_t start_;
};

/// Simple stopwatch for benchmark driver loops.
class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}
  void Restart() { start_ = NowNanos(); }
  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) * 1e-9; }

 private:
  uint64_t start_;
};

}  // namespace rocc
