#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace rocc {

/// Cooperative userspace fibers for simulating many-core interleaving on
/// CPU-starved hosts.
///
/// The paper's evaluation binds one worker per physical core; a transaction's
/// wall-clock lifetime therefore overlaps every other core's commits, which
/// is the phenomenon GWV's global validation pays for. When this
/// reproduction runs on fewer cores than workers, OS timeslicing switches at
/// millisecond granularity and those overlap windows collapse.
///
/// A FiberScheduler runs N logical workers on ONE OS thread, switching
/// between them with a ~30ns userspace context switch at explicit yield
/// points (after every operation / every few scanned records — see
/// harness/coop_cc.h). Execution becomes a round-robin interleaving at
/// operation granularity: a discrete-time simulation of parallel hardware.
/// Because switches happen only at yield points and commits contain none,
/// commit sections are atomic in fiber time; all schemes see identical
/// interleavings, so relative comparisons are meaningful.
///
/// x86-64 uses a minimal callee-saved-register switch; other architectures
/// fall back to ucontext.
class FiberScheduler {
 public:
  FiberScheduler();
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Add a fiber; may only be called before Run.
  void Spawn(std::function<void()> fn, size_t stack_bytes = 1 << 20);

  /// Run all fibers round-robin on the calling thread until every fiber's
  /// function has returned.
  void Run();

  /// True when the calling code executes inside a fiber of some scheduler.
  static bool InFiber();

  /// Fiber id (spawn order) of the currently running fiber.
  static uint32_t CurrentFiber();

  /// Switch from the current fiber back to the scheduler, which resumes the
  /// next runnable fiber. Undefined outside a fiber.
  static void YieldFiber();

  size_t NumFibers() const { return fibers_.size(); }

 private:
  struct Fiber {
    std::unique_ptr<char[]> stack;
    void* resume_sp = nullptr;
    void* tsan_fiber = nullptr;  ///< TSan fiber context (TSan builds only)
    std::function<void()> fn;
    bool done = false;
  };

  static void Trampoline();
  void SwitchIn(uint32_t index);

  std::vector<std::unique_ptr<Fiber>> fibers_;
  void* scheduler_sp_ = nullptr;
  void* tsan_scheduler_ = nullptr;  ///< TSan context of the scheduling thread
  uint32_t current_ = 0;
  bool running_ = false;
};

/// Yield point usable from any context: inside a fiber it switches fibers
/// (~30ns); on a plain thread it asks the OS scheduler to run someone else.
inline void CooperativeYield() {
  if (FiberScheduler::InFiber()) {
    FiberScheduler::YieldFiber();
  } else {
    std::this_thread::yield();
  }
}

/// One-shot barrier for fibers of a single scheduler: arriving fibers yield
/// until all `n` have arrived. Records the time the last fiber arrived.
class FiberBarrier {
 public:
  explicit FiberBarrier(uint32_t n) : total_(n) {}

  /// Returns true for the last fiber to arrive.
  bool Wait();

  uint64_t completion_nanos() const { return completion_nanos_; }

 private:
  const uint32_t total_;
  uint32_t arrived_ = 0;
  uint64_t completion_nanos_ = 0;
};

}  // namespace rocc
