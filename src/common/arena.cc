#include "common/arena.h"

#include <cstdlib>

namespace rocc {

Arena::Arena(size_t initial_block_bytes) : next_block_(initial_block_bytes) {}

Arena::~Arena() {
  for (char* b : blocks_) std::free(b);
}

void Arena::NewBlock(size_t min_bytes) {
  size_t sz = next_block_;
  if (sz < min_bytes) sz = min_bytes;
  next_block_ = sz * 2;
  if (next_block_ > (64u << 20)) next_block_ = 64u << 20;
  char* b = static_cast<char*>(std::aligned_alloc(kCacheLineSize, sz));
  blocks_.push_back(b);
  cur_ = b;
  cur_left_ = sz;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  uintptr_t p = reinterpret_cast<uintptr_t>(cur_);
  size_t pad = (align - (p & (align - 1))) & (align - 1);
  if (cur_ == nullptr || cur_left_ < bytes + pad) {
    NewBlock(bytes + align);
    p = reinterpret_cast<uintptr_t>(cur_);
    pad = (align - (p & (align - 1))) & (align - 1);
  }
  void* out = cur_ + pad;
  cur_ += bytes + pad;
  cur_left_ -= bytes + pad;
  allocated_ += bytes + pad;
  return out;
}

void* Arena::AllocateConcurrent(size_t bytes, size_t align) {
  SpinLatchGuard g(latch_);
  return Allocate(bytes, align);
}

}  // namespace rocc
