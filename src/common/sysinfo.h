#pragma once

#include <cstdint>
#include <string>

namespace rocc {

/// Host environment description, printed by every benchmark header to mirror
/// the paper's Table I.
struct SysInfo {
  uint32_t logical_cores = 0;
  uint64_t total_memory_bytes = 0;
  std::string cpu_model;

  static SysInfo Probe();
  std::string ToString() const;
};

}  // namespace rocc
