#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rocc {

/// Outcome codes for storage and transaction operations.
///
/// Transaction code paths treat `kAborted` as the normal "validation failed,
/// retry the transaction" signal; everything else except `kOk` indicates a
/// logic or configuration error.
enum class Code : uint8_t {
  kOk = 0,
  kAborted,          ///< transaction must abort (conflict, lock busy, phantom)
  kNotFound,         ///< key does not exist
  kKeyExists,        ///< insert of a duplicate key
  kInvalidArgument,  ///< caller misuse
  kResourceExhausted,
  kInternal,
};

/// Lightweight status object returned by all fallible operations.
///
/// Statuses are cheap to copy: the common `Ok`/`Aborted` paths carry no
/// message allocation.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code code) : code_(code) {}
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  static Status Ok() { return Status(); }
  static Status Aborted() { return Status(Code::kAborted); }
  static Status Aborted(std::string_view msg) { return Status(Code::kAborted, msg); }
  static Status NotFound() { return Status(Code::kNotFound); }
  static Status NotFound(std::string_view msg) { return Status(Code::kNotFound, msg); }
  static Status KeyExists() { return Status(Code::kKeyExists); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg) { return Status(Code::kInternal, msg); }

  bool ok() const { return code_ == Code::kOk; }
  bool aborted() const { return code_ == Code::kAborted; }
  bool not_found() const { return code_ == Code::kNotFound; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    switch (code_) {
      case Code::kOk: return "OK";
      case Code::kAborted: return "Aborted: " + msg_;
      case Code::kNotFound: return "NotFound: " + msg_;
      case Code::kKeyExists: return "KeyExists: " + msg_;
      case Code::kInvalidArgument: return "InvalidArgument: " + msg_;
      case Code::kResourceExhausted: return "ResourceExhausted: " + msg_;
      case Code::kInternal: return "Internal: " + msg_;
    }
    return "Unknown";
  }

 private:
  Code code_;
  std::string msg_;
};

/// Propagate a non-OK status to the caller.
#define ROCC_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::rocc::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace rocc
