#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.h"

namespace rocc {

/// Test-and-test-and-set spin latch.
///
/// Used only for cold paths (catalog mutation, stat merging); transaction
/// hot paths use per-record TID-word locks and lock-free rings instead.
class SpinLatch {
 public:
  void Lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) CpuRelax();
    }
  }

  bool TryLock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLatch.
class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~SpinLatchGuard() { latch_.Unlock(); }
  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// Sense-reversing spin barrier used by the experiment runner so all worker
/// threads start the measured region together.
class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t n) : total_(n) {}

  void Wait() {
    const bool sense = sense_.load(std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(!sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) == sense) CpuRelax();
    }
  }

 private:
  const uint32_t total_;
  std::atomic<uint32_t> count_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace rocc
