#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rocc {

/// Log-bucketed latency histogram (nanosecond samples).
///
/// Buckets grow geometrically so that the full range from 100ns to minutes is
/// covered with bounded error; recording is a single increment and histograms
/// from different worker threads merge exactly.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  /// Population standard deviation of the recorded samples (exact: tracked
  /// via a running sum of squares, not reconstructed from buckets).
  double Stddev() const;

  /// Value at percentile p in [0, 100]; interpolated within a bucket.
  uint64_t Percentile(double p) const;

  std::string ToString() const;

  /// Raw bucket counts (size kNumBuckets); bucket b covers
  /// [BucketLowerBound(b), BucketLowerBound(b+1)). Exposed for exporters.
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }

  /// Smallest value that lands in bucket b.
  static uint64_t BucketLowerBound(size_t b) { return BucketLower(b); }

  /// Bucket index a given value is recorded into.
  static size_t BucketIndex(uint64_t v) { return BucketFor(v); }

  static constexpr size_t kNumBuckets = 160;

 private:
  static size_t BucketFor(uint64_t v);
  static uint64_t BucketLower(size_t b);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  double sum_sq_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace rocc
