#pragma once

// ThreadSanitizer helpers for the one deliberately-racy idiom in this
// codebase: seqlock-style payload copies (ReadRecordNoWait). The copy races
// with a committer's in-place apply by design; the surrounding version
// protocol (load tid, copy, acquire fence, re-load tid, discard on
// mismatch) rejects every torn result, so the race cannot escape. TSan has
// no way to see that argument, so the copy is bracketed with ignore-reads
// annotations — which the memcpy interceptor honors, unlike
// no_sanitize("thread") on the caller. Keep the bracket tight: anything
// else a thread reads while "ignoring" is invisible to the race detector.

#if defined(__SANITIZE_THREAD__)
#define ROCC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ROCC_TSAN 1
#endif
#endif

#ifdef ROCC_TSAN
extern "C" {
void AnnotateIgnoreReadsBegin(const char* file, int line);
void AnnotateIgnoreReadsEnd(const char* file, int line);
}
namespace rocc {
inline void TsanIgnoreReadsBegin() {
  AnnotateIgnoreReadsBegin(__FILE__, __LINE__);
}
inline void TsanIgnoreReadsEnd() { AnnotateIgnoreReadsEnd(__FILE__, __LINE__); }
}  // namespace rocc
#else
namespace rocc {
inline void TsanIgnoreReadsBegin() {}
inline void TsanIgnoreReadsEnd() {}
}  // namespace rocc
#endif
