#include "common/fiber.h"

#include <cassert>
#include <cstring>

#include "common/timer.h"

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

// ThreadSanitizer does not understand the raw stack switch in
// RoccFiberSwitch: without annotations it sees one OS thread magically
// continuing on a different stack and reports false races between fibers.
// The fiber API (__tsan_create/switch_to/destroy_fiber) tells TSan about
// every switch; flags=0 makes each switch a synchronization point, which is
// exact for cooperative fibers sharing one OS thread.
#if defined(__SANITIZE_THREAD__)
#define ROCC_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ROCC_TSAN_FIBERS 1
#endif
#endif

#ifdef ROCC_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace rocc {

namespace {

thread_local FiberScheduler* tls_scheduler = nullptr;
thread_local bool tls_in_fiber = false;
thread_local uint32_t tls_current_fiber = 0;

inline void* TsanCreateFiber() {
#ifdef ROCC_TSAN_FIBERS
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

inline void TsanDestroyFiber(void* fiber) {
#ifdef ROCC_TSAN_FIBERS
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

inline void* TsanCurrentFiber() {
#ifdef ROCC_TSAN_FIBERS
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

/// Must run immediately before the stack switch that enters `fiber`.
inline void TsanSwitchTo(void* fiber) {
#ifdef ROCC_TSAN_FIBERS
  if (fiber != nullptr) __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

}  // namespace

#if defined(__x86_64__)

// Minimal System-V x86-64 context switch: saves the callee-saved registers
// on the current stack, stores the stack pointer through `save_sp`, then
// installs `load_sp` and restores its registers. FP/SSE control words are
// not switched (all fibers share the process defaults).
extern "C" void RoccFiberSwitch(void** save_sp, void* load_sp);
asm(R"(
.text
.globl RoccFiberSwitch
.type RoccFiberSwitch, @function
RoccFiberSwitch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size RoccFiberSwitch, .-RoccFiberSwitch
)");

#endif  // __x86_64__

FiberScheduler::FiberScheduler() = default;

FiberScheduler::~FiberScheduler() {
  for (auto& fiber : fibers_) TsanDestroyFiber(fiber->tsan_fiber);
}

void FiberScheduler::Trampoline() {
  FiberScheduler* sched = tls_scheduler;
  Fiber& fiber = *sched->fibers_[tls_current_fiber];
  fiber.fn();
  fiber.done = true;
  // Return control to the scheduler permanently.
  while (true) YieldFiber();
}

void FiberScheduler::Spawn(std::function<void()> fn, size_t stack_bytes) {
  assert(!running_);
  auto fiber = std::make_unique<Fiber>();
  fiber->fn = std::move(fn);
  fiber->stack = std::make_unique<char[]>(stack_bytes);
  fiber->tsan_fiber = TsanCreateFiber();

#if defined(__x86_64__)
  // Build the initial stack frame so the first RoccFiberSwitch "returns"
  // into Trampoline with a correctly aligned stack (rsp % 16 == 8 at entry,
  // as if reached via a call instruction).
  // The first switch pops six registers and `ret`s into Trampoline. The ret
  // consumes frame[0], leaving rsp = top + 8; the System-V ABI requires
  // rsp % 16 == 8 at function entry (as if reached via call), so `top` must
  // be exactly 16-byte aligned.
  char* base = fiber->stack.get();
  uintptr_t top = reinterpret_cast<uintptr_t>(base + stack_bytes - 64);
  top &= ~static_cast<uintptr_t>(15);  // 16-byte aligned
  auto* frame = reinterpret_cast<void**>(top);
  frame[0] = reinterpret_cast<void*>(&FiberScheduler::Trampoline);
  // Six dummy callee-saved registers below the return address.
  void** sp = frame - 6;
  std::memset(sp, 0, 6 * sizeof(void*));
  fiber->resume_sp = sp;
#else
  // ucontext fallback: lazily initialised in SwitchIn via a stored flag.
  fiber->resume_sp = nullptr;
#endif

  fibers_.push_back(std::move(fiber));
}

void FiberScheduler::SwitchIn(uint32_t index) {
  current_ = index;
  tls_current_fiber = index;
  tls_in_fiber = true;
#if defined(__x86_64__)
  TsanSwitchTo(fibers_[index]->tsan_fiber);
  RoccFiberSwitch(&scheduler_sp_, fibers_[index]->resume_sp);
#else
#error "FiberScheduler requires x86-64 (ucontext fallback not wired)"
#endif
  tls_in_fiber = false;
}

void FiberScheduler::Run() {
  assert(!tls_in_fiber && "nested schedulers are not supported");
  FiberScheduler* prev = tls_scheduler;
  tls_scheduler = this;
  tsan_scheduler_ = TsanCurrentFiber();
  running_ = true;

  size_t remaining = fibers_.size();
  while (remaining > 0) {
    for (uint32_t i = 0; i < fibers_.size(); i++) {
      if (fibers_[i]->done) continue;
      SwitchIn(i);
      if (fibers_[i]->done) remaining--;
    }
  }

  running_ = false;
  tls_scheduler = prev;
}

bool FiberScheduler::InFiber() { return tls_in_fiber; }

uint32_t FiberScheduler::CurrentFiber() { return tls_current_fiber; }

void FiberScheduler::YieldFiber() {
  FiberScheduler* sched = tls_scheduler;
  assert(sched != nullptr && tls_in_fiber);
#if defined(__x86_64__)
  Fiber& fiber = *sched->fibers_[tls_current_fiber];
  TsanSwitchTo(sched->tsan_scheduler_);
  RoccFiberSwitch(&fiber.resume_sp, sched->scheduler_sp_);
#endif
  // Resumed: restore fiber-local markers (SwitchIn set them already).
}

bool FiberBarrier::Wait() {
  arrived_++;
  if (arrived_ == total_) {
    completion_nanos_ = NowNanos();
    return true;
  }
  while (arrived_ < total_) CooperativeYield();
  return false;
}

}  // namespace rocc
