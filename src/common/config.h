#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rocc {

/// Minimal command-line flag parser shared by the benchmark binaries.
///
/// Accepts `--name value` and `--name=value`; bare `--name` is treated as a
/// boolean true. Unknown flags are collected so binaries can reject typos.
class Config {
 public:
  Config() = default;
  Config(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// Comma-separated list of integers, e.g. "--threads 1,2,4".
  std::vector<int64_t> GetIntList(const std::string& key,
                                  const std::vector<int64_t>& def) const;
  std::vector<double> GetDoubleList(const std::string& key,
                                    const std::vector<double>& def) const;

  void Set(const std::string& key, const std::string& value);

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace rocc
