#pragma once

#include <cstddef>
#include <new>

namespace rocc {

/// Assumed cache-line size; 64 bytes on all supported x86-64 / AArch64 parts.
inline constexpr size_t kCacheLineSize = 64;

/// Wrapper that places `T` alone on its own cache line(s) to avoid false
/// sharing between per-thread counters or hot global atomics.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

/// CPU pause / yield hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace rocc
