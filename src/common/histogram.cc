#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace rocc {

// Bucket layout: values 0-3 get exact buckets, then 4 sub-buckets per power
// of two packed contiguously (no dead indices), clamped to the table. This
// keeps relative error under ~19% per bucket which is plenty for latency
// reporting, and every bucket's exclusive upper edge is the next bucket's
// lower bound — the exporters rely on that.
Histogram::Histogram() : buckets_(kNumBuckets, 0) { Reset(); }

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  sum_sq_ = 0.0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
}

size_t Histogram::BucketFor(uint64_t v) {
  if (v < 4) return static_cast<size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const uint64_t sub = (v >> (msb - 2)) & 3;  // next two bits below the MSB
  size_t idx = static_cast<size_t>(msb - 2) * 4 + static_cast<size_t>(sub) + 4;
  return std::min(idx, kNumBuckets - 1);
}

uint64_t Histogram::BucketLower(size_t b) {
  if (b < 4) return b;
  const size_t msb = (b - 4) / 4 + 2;
  const uint64_t sub = (b - 4) % 4;
  return (1ULL << msb) | (sub << (msb - 2));
}

void Histogram::Record(uint64_t value_ns) {
  buckets_[BucketFor(value_ns)]++;
  count_++;
  sum_ += value_ns;
  const double v = static_cast<double>(value_ns);
  sum_sq_ += v * v;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double mean = static_cast<double>(sum_) / n;
  const double var = sum_sq_ / n - mean * mean;
  return var <= 0.0 ? 0.0 : std::sqrt(var);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; b++) {
    if (buckets_[b] == 0) continue;
    const uint64_t next = seen + buckets_[b];
    if (static_cast<double>(next) >= target) {
      const uint64_t lo = BucketLower(b);
      const uint64_t hi = (b + 1 < kNumBuckets) ? BucketLower(b + 1) : max_;
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
      uint64_t v = lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
      return std::clamp(v, min(), max_);
    }
    seen = next;
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), Mean() / 1e3,
                static_cast<double>(Percentile(50)) / 1e3,
                static_cast<double>(Percentile(99)) / 1e3,
                static_cast<double>(max_) / 1e3);
  return buf;
}

}  // namespace rocc
