#include "core/range_manager.h"

namespace rocc {

RangeManager::RangeManager(uint64_t key_min, uint64_t key_max, uint32_t num_ranges,
                           uint32_t ring_capacity)
    : key_min_(key_min),
      key_max_(key_max),
      num_ranges_(num_ranges == 0 ? 1 : num_ranges) {
  const uint64_t span = key_max_ > key_min_ ? key_max_ - key_min_ : 1;
  range_size_ = (span + num_ranges_ - 1) / num_ranges_;
  if (range_size_ == 0) range_size_ = 1;
  rings_.reserve(num_ranges_);
  for (uint32_t i = 0; i < num_ranges_; i++) {
    rings_.push_back(std::make_unique<TxnRing>(ring_capacity));
  }
}

}  // namespace rocc
