#include "core/range_manager.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/obs.h"

namespace rocc {

RangeManager::RangeManager(uint64_t key_min, uint64_t key_max, uint32_t num_ranges,
                           uint32_t ring_capacity, uint32_t slices_per_range)
    : key_min_(key_min),
      key_max_(key_max),
      init_num_ranges_(num_ranges == 0 ? 1 : num_ranges),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {
  const uint64_t span = key_max_ > key_min_ ? key_max_ - key_min_ : 1;
  range_size_ = (span + init_num_ranges_ - 1) / init_num_ranges_;
  if (range_size_ == 0) range_size_ = 1;

  // Bound the grid so huge num_ranges configs don't blow up slice_to_range.
  constexpr uint32_t kMaxSlices = 1u << 22;
  uint64_t spr = slices_per_range == 0 ? 1 : slices_per_range;
  spr = std::min<uint64_t>(spr, range_size_);  // a slice is at least one key
  spr = std::min<uint64_t>(spr, std::max<uint64_t>(1, kMaxSlices / init_num_ranges_));
  slices_per_range_ = static_cast<uint32_t>(std::max<uint64_t>(spr, 1));
  slice_width_ = (range_size_ + slices_per_range_ - 1) / slices_per_range_;
  num_slices_ = init_num_ranges_ * slices_per_range_;

  // Initial table: range i owns slices [i*spr, (i+1)*spr) — boundaries are
  // bit-exact with the static equal-width layout.
  auto* table = new RangeTable();
  table->version = 0;
  table->ranges.reserve(init_num_ranges_);
  table->slice_to_range.resize(num_slices_);
  for (uint32_t i = 0; i < init_num_ranges_; i++) {
    const uint32_t first = i * slices_per_range_;
    const uint64_t start = key_min_ + i * range_size_;
    const uint64_t end =
        i + 1 == init_num_ranges_ ? key_max_ : key_min_ + (i + 1) * range_size_;
    table->ranges.push_back(std::make_shared<LogicalRange>(
        start, end, first, slices_per_range_, ring_capacity_));
    for (uint32_t s = first; s < first + slices_per_range_; s++) {
      table->slice_to_range[s] = i;
    }
  }
  current_.store(table, std::memory_order_release);
}

RangeManager::~RangeManager() {
  retired_.Reclaim(~0ULL, [](RangeTable* t) { delete t; });
  delete current_.load(std::memory_order_acquire);
}

void RangeManager::Publish(RangeTable* next, uint64_t publish_epoch) {
  RangeTable* old = current_.load(std::memory_order_relaxed);
  next->version = old->version + 1;
  // Rebuild the slice map from the (ascending, contiguous) range list.
  next->slice_to_range.assign(num_slices_, 0);
  for (uint32_t rid = 0; rid < next->num_ranges(); rid++) {
    const LogicalRange* lr = next->range(rid);
    for (uint32_t s = lr->first_slice; s < lr->first_slice + lr->num_slices; s++) {
      next->slice_to_range[s] = rid;
    }
  }
  current_.store(next, std::memory_order_release);
  retired_.Retire(old, publish_epoch);
  obs::ServiceEvent(obs::EventType::kRangePublish, 0, NowNanos(), 0,
                    next->version, next->num_ranges());
}

bool RangeManager::Split(uint32_t range_id, uint32_t children,
                         uint64_t publish_epoch) {
  const RangeTable* cur = current_.load(std::memory_order_relaxed);
  if (range_id >= cur->num_ranges()) return false;
  const std::shared_ptr<LogicalRange>& victim = cur->ranges[range_id];
  if (victim->num_slices < 2) return false;
  children = std::min(children, victim->num_slices);
  if (children < 2) return false;

  // Slice-balanced cut points, with cuts that land on an empty slice span
  // collapsed away (non-divisible ranges have empty tail slices).
  std::vector<uint32_t> cuts;
  cuts.push_back(victim->first_slice);
  const uint32_t base = victim->num_slices / children;
  const uint32_t rem = victim->num_slices % children;
  uint32_t at = victim->first_slice;
  for (uint32_t c = 0; c < children; c++) {
    at += base + (c < rem ? 1 : 0);
    if (SliceBound(at) > SliceBound(cuts.back())) cuts.push_back(at);
  }
  if (cuts.back() != victim->first_slice + victim->num_slices) {
    cuts.back() = victim->first_slice + victim->num_slices;
  }
  if (cuts.size() < 3) return false;  // fewer than 2 non-empty children

  auto* next = new RangeTable();
  next->ranges.reserve(cur->ranges.size() + cuts.size() - 2);
  for (uint32_t rid = 0; rid < cur->num_ranges(); rid++) {
    if (rid != range_id) {
      next->ranges.push_back(cur->ranges[rid]);  // carried: same ring & stats
      continue;
    }
    for (size_t c = 0; c + 1 < cuts.size(); c++) {
      const uint32_t first = cuts[c];
      const uint32_t count = cuts[c + 1] - first;
      const uint64_t start = SliceBound(first);
      // The parent's end (not the raw grid bound) so the last child of the
      // last range keeps the extension to key_max.
      const uint64_t end =
          cuts[c + 1] == victim->first_slice + victim->num_slices
              ? victim->end_key
              : SliceBound(cuts[c + 1]);
      auto child =
          std::make_shared<LogicalRange>(start, end, first, count, ring_capacity_);
      child->prev_rings.push_back(victim->ring);
      child->created_epoch = publish_epoch;
      next->ranges.push_back(std::move(child));
    }
  }
  Publish(next, publish_epoch);
  splits_++;
  obs::ServiceEvent(obs::EventType::kRangeSplit, 0, NowNanos(), 0, range_id,
                    static_cast<uint32_t>(cuts.size() - 1));
  return true;
}

bool RangeManager::Merge(uint32_t first_range_id, uint32_t count,
                         uint64_t publish_epoch) {
  static_assert(RangePredicate::kMaxPrevRings >= 2,
                "merge fan-in must fit predicate prev snapshots");
  const RangeTable* cur = current_.load(std::memory_order_relaxed);
  if (count < 2 || count > RangePredicate::kMaxPrevRings) return false;
  if (first_range_id + count > cur->num_ranges()) return false;

  const LogicalRange* lo = cur->range(first_range_id);
  const LogicalRange* hi = cur->range(first_range_id + count - 1);
  auto merged = std::make_shared<LogicalRange>(
      lo->start_key, hi->end_key, lo->first_slice,
      hi->first_slice + hi->num_slices - lo->first_slice, ring_capacity_);
  for (uint32_t rid = first_range_id; rid < first_range_id + count; rid++) {
    merged->prev_rings.push_back(cur->ranges[rid]->ring);
  }
  merged->created_epoch = publish_epoch;

  auto* next = new RangeTable();
  next->ranges.reserve(cur->ranges.size() - count + 1);
  for (uint32_t rid = 0; rid < cur->num_ranges(); rid++) {
    if (rid == first_range_id) next->ranges.push_back(merged);
    if (rid < first_range_id || rid >= first_range_id + count) {
      next->ranges.push_back(cur->ranges[rid]);
    }
  }
  Publish(next, publish_epoch);
  merges_++;
  obs::ServiceEvent(obs::EventType::kRangeMerge, 0, NowNanos(), 0,
                    first_range_id, count);
  return true;
}

bool RangeManager::Resize(uint32_t range_id, uint32_t new_capacity,
                          uint64_t publish_epoch) {
  const RangeTable* cur = current_.load(std::memory_order_relaxed);
  if (range_id >= cur->num_ranges() || new_capacity == 0) return false;
  const std::shared_ptr<LogicalRange>& victim = cur->ranges[range_id];
  if (new_capacity == victim->ring->capacity()) return false;

  // Replacement range: same identity (span, slices), fresh ring seeded at
  // the retired ring's version so the range version keeps advancing
  // monotonically across the swap. The retired ring is fenced exactly like a
  // split parent's: predicates built after the publish snapshot it via
  // prev_rings, predicates built before it hold it as their primary ring,
  // and the grace gate (caller obligation) guarantees no live transaction
  // still references the grandparent generation.
  auto repl = std::make_shared<LogicalRange>(
      victim->start_key, victim->end_key, victim->first_slice,
      victim->num_slices, new_capacity, victim->ring->Version());
  repl->prev_rings.push_back(victim->ring);
  repl->created_epoch = publish_epoch;
  repl->ring->SetCombining(victim->ring->combining());

  // Carry counters and tuner baselines so telemetry stays monotone per key
  // span and the tuner's deltas stay seamless across the swap; the high
  // water restarts because it measures pressure against the NEW capacity.
  repl->stats.registrations.store(
      victim->stats.registrations.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  repl->stats.ring_lost.store(
      victim->stats.ring_lost.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  repl->stats.scan_conflict.store(
      victim->stats.scan_conflict.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  repl->stats.ring_resizes.store(
      victim->stats.ring_resizes.load(std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  repl->seen_registrations = victim->seen_registrations;
  repl->seen_ring_lost = victim->seen_ring_lost;
  repl->seen_scan_conflict = victim->seen_scan_conflict;
  repl->window_registrations = victim->window_registrations;
  repl->window_aborts = victim->window_aborts;

  auto* next = new RangeTable();
  next->ranges = cur->ranges;
  next->ranges[range_id] = std::move(repl);
  Publish(next, publish_epoch);
  resizes_++;
  obs::ServiceEvent(obs::EventType::kRingResize, 0, NowNanos(), 0, range_id,
                    new_capacity);
  return true;
}

void RangeManager::ReclaimRetired(uint64_t min_active) {
  retired_.Reclaim(min_active, [](RangeTable* t) { delete t; });
}

RangeTelemetry RangeManager::Telemetry(size_t top_n) const {
  RangeTelemetry out;
  const RangeTable* cur = Snapshot();
  out.table_version = cur->version;
  out.num_ranges = cur->num_ranges();
  out.splits = splits_;
  out.merges = merges_;
  out.resizes = resizes_;
  out.rows.reserve(cur->num_ranges());
  for (uint32_t rid = 0; rid < cur->num_ranges(); rid++) {
    const LogicalRange* lr = cur->range(rid);
    RangeTelemetry::Row row;
    row.range_id = rid;
    row.start_key = lr->start_key;
    row.end_key = lr->end_key;
    row.num_slices = lr->num_slices;
    row.ring_version = lr->ring->Version();
    row.prev_rings = static_cast<uint32_t>(lr->prev_rings.size());
    row.registrations = lr->stats.registrations.load(std::memory_order_relaxed);
    row.ring_lost = lr->stats.ring_lost.load(std::memory_order_relaxed);
    row.scan_conflict = lr->stats.scan_conflict.load(std::memory_order_relaxed);
    row.ring_capacity = lr->ring->capacity();
    row.ring_high_water = lr->stats.ring_high_water.load(std::memory_order_relaxed);
    row.ring_resizes = lr->stats.ring_resizes.load(std::memory_order_relaxed);
    row.combining = lr->ring->combining();
    for (size_t c = 0; c < kNumAbortCauses; c++) {
      row.abort_by_reason[c] =
          lr->stats.abort_by_reason[c].load(std::memory_order_relaxed);
    }
    out.total_registrations += row.registrations;
    out.rows.push_back(row);
  }
  std::sort(out.rows.begin(), out.rows.end(),
            [](const RangeTelemetry::Row& a, const RangeTelemetry::Row& b) {
              if (a.registrations != b.registrations) {
                return a.registrations > b.registrations;
              }
              return a.range_id < b.range_id;
            });
  if (out.rows.size() > top_n) out.rows.resize(top_n);
  return out;
}

}  // namespace rocc
