#include "core/range_tuner.h"

#include <algorithm>

#include "harness/knobs.h"
#include "sync/optiql.h"
#include "txn/txn.h"

namespace rocc {

namespace {

uint64_t NextPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

RangeTuner::RangeTuner(const std::vector<std::unique_ptr<RangeManager>>* managers,
                       EpochManager* epoch, RangeTunerOptions opts)
    : managers_(managers), epoch_(epoch), opts_(opts) {
  opts_.max_children = std::max<uint32_t>(2, opts_.max_children);
  opts_.max_children =
      std::min<uint32_t>(opts_.max_children, RangePredicate::kMaxPrevRings);
  if (opts_.pressure_threshold == 0) opts_.pressure_threshold = 1;
  if (opts_.max_ranges_factor == 0) opts_.max_ranges_factor = 1;
  pressure_knob_ = KnobRegistry::Instance().Register("tuner_pressure_threshold",
                                                     opts_.pressure_threshold);
  split_score_knob_ = KnobRegistry::Instance().Register("tuner_min_split_score",
                                                        opts_.min_split_score);
}

bool RangeTuner::MaybeTune() {
  // A reload setting the threshold to 0 must not melt into a pass-per-commit
  // storm: clamp to 1, same as the constructor does for the config field.
  const uint64_t threshold = std::max<uint64_t>(
      1, pressure_knob_->load(std::memory_order_relaxed));
  if (pressure_.load(std::memory_order_relaxed) < threshold) {
    return false;
  }
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;  // someone else is tuning
  if (pressure_.load(std::memory_order_relaxed) < threshold) {
    return false;  // raced: a pass just consumed the pressure
  }
  pressure_.store(0, std::memory_order_relaxed);
  return RunPass(split_score_knob_->load(std::memory_order_relaxed));
}

bool RangeTuner::ForceTune() {
  std::lock_guard<std::mutex> lock(mu_);
  pressure_.store(0, std::memory_order_relaxed);
  return RunPass(/*min_score=*/1);
}

std::vector<RangeTelemetry> RangeTuner::TelemetryLocked(size_t top_n) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RangeTelemetry> out;
  out.reserve(managers_->size());
  for (const auto& rm : *managers_) {
    if (rm != nullptr) out.push_back(rm->Telemetry(top_n));
  }
  return out;
}

bool RangeTuner::RunPass(uint64_t min_score) {
  passes_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t min_active = epoch_->MinActive();
  const uint64_t publish_epoch = epoch_->Current();
  bool acted = false;
  if (merge_eval_accum_.size() < managers_->size()) {
    merge_eval_accum_.resize(managers_->size(), 0);
  }

  for (size_t mi = 0; mi < managers_->size(); mi++) {
    RangeManager* rm = (*managers_)[mi].get();
    if (rm == nullptr) continue;
    rm->ReclaimRetired(min_active);
    const RangeTable* cur = rm->Snapshot();
    const uint32_t n = cur->num_ranges();
    const uint32_t max_ranges = rm->init_num_ranges() * opts_.max_ranges_factor;

    // Per-range contention deltas since the previous pass. seen_* baselines
    // live on the (table-shared) LogicalRange and are guarded by mu_.
    // Deltas also accumulate into the per-range merge window, so merge
    // decisions see a fixed amount of traffic no matter how often passes run.
    std::vector<uint64_t> d_reg(n), d_lost(n), d_conf(n);
    for (uint32_t rid = 0; rid < n; rid++) {
      LogicalRange* lr = cur->range(rid);
      const uint64_t reg = lr->stats.registrations.load(std::memory_order_relaxed);
      const uint64_t lost = lr->stats.ring_lost.load(std::memory_order_relaxed);
      const uint64_t conf = lr->stats.scan_conflict.load(std::memory_order_relaxed);
      d_reg[rid] = reg - lr->seen_registrations;
      d_lost[rid] = lost - lr->seen_ring_lost;
      d_conf[rid] = conf - lr->seen_scan_conflict;
      lr->seen_registrations = reg;
      lr->seen_ring_lost = lost;
      lr->seen_scan_conflict = conf;
      lr->window_registrations += d_reg[rid];
      lr->window_aborts += d_lost[rid] + d_conf[rid];
      merge_eval_accum_[mi] += d_reg[rid];
    }

    // Combining promotion: a ring sustaining a heavy registration rate is
    // the counter CAS storm the combining path exists for — arm it; disarm
    // with hysteresis when the rate collapses (skew moved on). Flag-only, no
    // publish: combining and direct registrants interoperate.
    if (opts_.combining_reg_threshold != 0 && sync::QueueCapable()) {
      for (uint32_t rid = 0; rid < n; rid++) {
        TxnRing* ring = cur->range(rid)->ring.get();
        if (d_reg[rid] >= opts_.combining_reg_threshold) {
          ring->SetCombining(true);
        } else if (ring->combining() &&
                   d_reg[rid] * 4 < opts_.combining_reg_threshold) {
          ring->SetCombining(false);
        }
      }
    }

    // Split the hottest eligible range. ring_lost dominates the score: it
    // means the ring itself is the bottleneck, which only a fresh ring plus
    // a narrower key span can fix. Registration volume is a weak tiebreak so
    // sustained write pressure can pre-split before rings wrap.
    int best = -1;
    uint64_t best_score = 0;
    for (uint32_t rid = 0; rid < n; rid++) {
      const LogicalRange* lr = cur->range(rid);
      if (lr->num_slices < 2) continue;              // grid exhausted
      if (min_active <= lr->created_epoch) continue;  // grace not elapsed
      if (n >= max_ranges) break;                     // growth bound
      const uint64_t score = 8 * d_lost[rid] + 2 * d_conf[rid] + d_reg[rid] / 64;
      if (score >= min_score && score > best_score) {
        best_score = score;
        best = static_cast<int>(rid);
      }
    }
    if (best >= 0 &&
        rm->Split(static_cast<uint32_t>(best), opts_.max_children, publish_epoch)) {
      splits_.fetch_add(1, std::memory_order_relaxed);
      acted = true;
      continue;  // table swapped; merge candidates are stale — next pass
    }

    // Adaptive ring growth: ring_lost persisted and no split relieved it
    // this pass (grid exhausted, growth bound, or score under the gate), so
    // attack the ring itself — replace it with one sized past the observed
    // validation high water, and at least doubled. Epoch-published with the
    // same grace gate as Split, so validators in the transition window stay
    // correct for free (DESIGN.md §15.2).
    if (opts_.adaptive_ring) {
      int grow = -1;
      uint64_t grow_lost = 0;
      for (uint32_t rid = 0; rid < n; rid++) {
        LogicalRange* lr = cur->range(rid);
        if (d_lost[rid] == 0 || d_lost[rid] <= grow_lost) continue;
        if (min_active <= lr->created_epoch) continue;  // grace not elapsed
        if (lr->ring->capacity() >= opts_.max_ring_capacity) continue;
        grow = static_cast<int>(rid);
        grow_lost = d_lost[rid];
      }
      if (grow >= 0) {
        LogicalRange* lr = cur->range(grow);
        const uint64_t hw = lr->stats.ring_high_water.load(std::memory_order_relaxed);
        uint64_t want = std::max<uint64_t>(2ull * lr->ring->capacity(),
                                           NextPow2(hw + 1));
        want = std::min<uint64_t>(want, opts_.max_ring_capacity);
        if (want > lr->ring->capacity() &&
            rm->Resize(static_cast<uint32_t>(grow), static_cast<uint32_t>(want),
                       publish_epoch)) {
          resizes_.fetch_add(1, std::memory_order_relaxed);
          acted = true;
          continue;  // table swapped — next pass
        }
      }
    }

    // Merge one adjacent pair of cold split products, but only once enough
    // table-wide traffic accumulated to judge coldness (see
    // merge_eval_registrations). The combined-slice bound keeps merges to
    // re-coalescing refinement, never coarser than the initial layout. Every
    // table publish forces in-flight scans over the touched span onto the
    // conservative cross-table path, so merges must be rare and certain.
    if (merge_eval_accum_[mi] < opts_.merge_eval_registrations) continue;
    merge_eval_accum_[mi] = 0;
    // Adaptive ring shrink, judged over the same traffic window as merges: a
    // grown ring whose window shows zero abort pressure and a high water
    // well under a quarter of capacity halves back toward the configured
    // size, releasing slot memory when skew moves on. At most one per table
    // per pass, and a shrink defers merging (the table just swapped).
    bool resized_cold = false;
    if (opts_.adaptive_ring) {
      for (uint32_t rid = 0; rid < n; rid++) {
        LogicalRange* lr = cur->range(rid);
        if (lr->ring->capacity() <= rm->ring_capacity()) continue;
        if (min_active <= lr->created_epoch) continue;
        if (lr->window_aborts != 0) continue;
        const uint64_t hw = lr->stats.ring_high_water.load(std::memory_order_relaxed);
        if (hw * 4 >= lr->ring->capacity()) continue;
        const uint32_t want =
            std::max<uint32_t>(lr->ring->capacity() / 2, rm->ring_capacity());
        if (want < lr->ring->capacity() &&
            rm->Resize(rid, want, publish_epoch)) {
          resizes_.fetch_add(1, std::memory_order_relaxed);
          acted = true;
          resized_cold = true;
        }
        break;
      }
    }
    if (!resized_cold && n > rm->init_num_ranges()) {
      for (uint32_t rid = 0; rid + 1 < n; rid++) {
        const LogicalRange* a = cur->range(rid);
        const LogicalRange* b = cur->range(rid + 1);
        if (a->num_slices + b->num_slices > rm->slices_per_range()) continue;
        if (min_active <= a->created_epoch || min_active <= b->created_epoch) continue;
        if (a->window_aborts != 0 || b->window_aborts != 0) continue;
        if (a->window_registrations > opts_.merge_idle_registrations) continue;
        if (b->window_registrations > opts_.merge_idle_registrations) continue;
        if (rm->Merge(rid, 2, publish_epoch)) {
          merges_.fetch_add(1, std::memory_order_relaxed);
          acted = true;
        }
        break;  // at most one merge per table per pass
      }
    }
    // Start a fresh window on every range carried into the next evaluation.
    // Re-snapshot: a shrink or merge above just swapped the table, and the
    // replacement range carried the old window values.
    const RangeTable* after = rm->Snapshot();
    for (uint32_t rid = 0; rid < after->num_ranges(); rid++) {
      after->range(rid)->window_registrations = 0;
      after->range(rid)->window_aborts = 0;
    }
  }
  return acted;
}

}  // namespace rocc
