#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "txn/txn.h"

namespace rocc {

/// The lock-free transaction list of a logical range (paper §III-A),
/// implemented as a circular array of descriptor pointers operated with
/// atomic instructions.
///
/// Semantics:
///  - `Register` atomically increments the range version counter and
///    publishes the descriptor in slot `seq % capacity`; the returned
///    sequence number IS the new range version, so "a transaction
///    registration increments the version by one" holds by construction.
///  - `Version` is the counter value; predicates snapshot it as rd_ts before
///    scanning and as v_ts during validation.
///  - `Get(seq)` returns the registrant for a sequence number, or nullptr if
///    that slot has been overwritten (the ring wrapped) or is mid-publish.
///    Validators treat nullptr conservatively and abort, so correctness never
///    depends on the ring being large enough — sizing it is purely a
///    performance trade-off (paper §IV, Fig. 11).
///
/// Descriptor lifetime is guaranteed by epoch-based reclamation: a validator
/// only dereferences registrations sequenced after its own transaction began
/// (see EpochManager), so EBR's transaction-granularity grace period covers
/// every access.
class TxnRing {
 public:
  explicit TxnRing(uint32_t capacity);
  ~TxnRing();

  TxnRing(const TxnRing&) = delete;
  TxnRing& operator=(const TxnRing&) = delete;

  /// Current version (= total number of registrations so far).
  uint64_t Version() const { return counter_.load(std::memory_order_acquire); }

  /// Publish `t` as a writer of this range; returns its sequence number.
  uint64_t Register(TxnDescriptor* t);

  /// Fetch the registrant of `seq`; nullptr when the slot was overwritten.
  TxnDescriptor* Get(uint64_t seq) const;

  uint32_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<TxnDescriptor*> txn{nullptr};
  };

  /// Sentinel marking a slot whose publish is in flight.
  static constexpr uint64_t kWriting = ~0ULL;

  std::atomic<uint64_t> counter_{0};
  uint32_t capacity_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace rocc
