#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "txn/txn.h"

namespace rocc {

/// The lock-free transaction list of a logical range (paper §III-A),
/// implemented as a circular array of descriptor pointers operated with
/// atomic instructions.
///
/// Semantics:
///  - `Register` atomically increments the range version counter and
///    publishes the descriptor in slot `seq % capacity`; the returned
///    sequence number IS the new range version, so "a transaction
///    registration increments the version by one" holds by construction.
///  - `Version` is the counter value; predicates snapshot it as rd_ts before
///    scanning and as v_ts during validation.
///  - `Get(seq)` returns the registrant for a sequence number, or nullptr if
///    that slot has been overwritten (the ring wrapped) or is mid-publish.
///    Validators treat nullptr conservatively and abort, so correctness never
///    depends on the ring being large enough — sizing it is purely a
///    performance trade-off (paper §IV, Fig. 11).
///
/// Two extensions for hot rings (DESIGN.md §15):
///  - A ring may start at a nonzero `base` sequence. The adaptive resize path
///    (RangeManager::Resize) seeds a replacement ring at the retired ring's
///    version, so the range's version keeps advancing monotonically across
///    the swap; sequences at or below `base` belong to the predecessor ring
///    and `Get` reports them as lost here.
///  - When `SetCombining(true)` is armed (tuner promotion of a contended
///    ring), registrants enqueue MCS-style on the ring's combining queue and
///    the queue head publishes the whole waiting batch with ONE counter
///    fetch_add of k — each registration still gets a unique sequence and
///    its own slot publish, so "one registration = one version bump" is
///    preserved per slot while N cache-line ping-pongs on the counter
///    collapse into one owner-side burst.
///
/// Descriptor lifetime is guaranteed by epoch-based reclamation: a validator
/// only dereferences registrations sequenced after its own transaction began
/// (see EpochManager), so EBR's transaction-granularity grace period covers
/// every access.
class TxnRing {
 public:
  explicit TxnRing(uint32_t capacity, uint64_t base = 0);
  ~TxnRing();

  TxnRing(const TxnRing&) = delete;
  TxnRing& operator=(const TxnRing&) = delete;

  /// Current version (= base + total number of registrations so far).
  uint64_t Version() const { return counter_.load(std::memory_order_acquire); }

  /// First sequence this ring can hold is base() + 1; earlier sequences were
  /// issued by a predecessor ring (adaptive resize) and are unknown here.
  uint64_t base() const { return base_; }

  /// Publish `t` as a writer of this range; returns its sequence number.
  uint64_t Register(TxnDescriptor* t);

  /// Fetch the registrant of `seq`; nullptr when the slot was overwritten.
  TxnDescriptor* Get(uint64_t seq) const;

  uint32_t capacity() const { return capacity_; }

  /// Arm/disarm the combining registration path. Any-time safe: combining
  /// and direct registrants interoperate through the same slot-claim
  /// protocol, so the switch needs no quiescing.
  void SetCombining(bool on) {
    combining_.store(on, std::memory_order_relaxed);
  }
  bool combining() const { return combining_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<TxnDescriptor*> txn{nullptr};
  };

  /// Sentinel marking a slot whose publish is in flight.
  static constexpr uint64_t kWriting = ~0ULL;

  /// Max registrations one combiner publishes before handing the head role
  /// on — bounds the burst and the stack footprint of a combine.
  static constexpr uint32_t kMaxCombine = 32;

  /// Single-registrant path: one counter fetch_add + slot publish.
  uint64_t RegisterDirect(TxnDescriptor* t);

  /// Flat-combining path; returns false when no qnode was available and the
  /// caller must fall back to RegisterDirect.
  bool RegisterCombining(TxnDescriptor* t, uint64_t* out_seq);

  /// Claim slot `seq % capacity` and publish (seq, t) with the CAS-on-tag
  /// discipline shared by both registration paths.
  void PublishSlot(uint64_t seq, TxnDescriptor* t);

  std::atomic<uint64_t> counter_;
  const uint64_t base_;
  uint32_t capacity_;
  std::unique_ptr<Slot[]> slots_;

  std::atomic<bool> combining_{false};
  /// MCS tail of the combining queue (qnode id; 0 = empty).
  std::atomic<uint16_t> comb_tail_{0};
};

}  // namespace rocc
