#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cc/cc.h"
#include "core/range_manager.h"
#include "core/range_tuner.h"

namespace rocc {

/// Per-table logical-range configuration for ROCC.
struct RangeConfig {
  uint32_t table_id = 0;
  uint64_t key_min = 0;
  uint64_t key_max = 1ULL << 62;  ///< exclusive
  uint32_t num_ranges = 1;
  uint32_t ring_capacity = 4096;
};

/// Structural validation of a RangeConfig: rejects an empty key space
/// (key_min >= key_max) and a zero-capacity ring. num_ranges == 0 is legal
/// (treated as 1); num_ranges exceeding the key span is legal but wasteful
/// and draws a construction-time warning.
Status ValidateRangeConfig(const RangeConfig& rc);

/// Options for the ROCC protocol.
struct RoccOptions {
  /// Range layout per table; tables not listed get one all-covering range.
  std::vector<RangeConfig> tables;
  uint32_t default_ring_capacity = 4096;
  /// Fig. 12 ablation switch: when false, writers skip range registration.
  /// Scans are then NOT serializable — use only for scan-free workloads.
  bool register_writes = true;
  /// Ablation switch for the cover fast path (§II-B): when false, fully
  /// covered predicates are validated with per-write key checks like partial
  /// ones. Semantically identical (a writer registered to a range always has
  /// a key inside it); isolates the CPU saving of range-level validation.
  bool cover_fast_path = true;
  /// Adaptive range refinement (DESIGN.md §10). When tuner.enabled, every
  /// table's key space is gridded at tuner.slices_per_range and a
  /// commit-piggybacked RangeTuner splits hot ranges / merges cold ones.
  RangeTunerOptions tuner;
};

/// Range Optimistic Concurrency Control — the paper's contribution.
///
/// Read phase: scans build one predicate {rangeID, rd_ts, start, end, cover}
/// per touched logical range before scanning it; returned records are NOT
/// copied into the readset (§III-B).
///
/// Commit protocol (Algorithm 1): lock the writeset in key order, register
/// the transaction in every written range's lock-free list, draw the commit
/// timestamp, validate the readset at record level and every predicate at
/// range level, then apply and unlock.
///
/// Predicate validation: a fully covering predicate passes iff the range
/// version is unchanged (fast path) or every registration in
/// (rd_ts, v_ts] is by this transaction / an aborted or later-serialized
/// writer. A partial predicate additionally checks the writer's keys against
/// [start, end) so unrelated writes in the same range do not abort the scan.
///
/// With the adaptive layout, a predicate snapshots its range's current ring
/// AND the rings of the range(s) it replaced (prev_rings), all
/// version-fenced before the scan; validation walks every snapshot ring's
/// window, and — when the range table advanced underneath the transaction —
/// conservatively validates any ring in the current table overlapping the
/// scanned span that the snapshot did not know, over its full history
/// (DESIGN.md §10). The read path stays lock-free throughout.
class Rocc : public OccBase {
 public:
  Rocc(Database* db, uint32_t num_threads, RoccOptions options);

  const char* Name() const override { return "ROCC"; }

  Status Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
              uint64_t end_key, uint64_t limit, ScanConsumer* consumer) override;

  /// Commit, then piggyback a tuning pass (outside the epoch, no locks held).
  Status Commit(TxnDescriptor* t) override;

  RangeManager* range_manager(uint32_t table_id) { return managers_[table_id].get(); }
  RangeTuner* tuner() { return tuner_.get(); }

  /// Per-table range telemetry for a live observer (/vars) that is NOT in
  /// the worker epoch protocol. With a tuner, rows come from
  /// RangeTuner::TelemetryLocked — serialized against structural passes so
  /// no retired table is freed mid-read; without one the layout is static
  /// and direct reads are safe.
  std::vector<RangeTelemetry> LiveRangeTelemetry(size_t top_n = 8);

 protected:
  void RegisterWrites(TxnDescriptor* t) override;
  bool ValidateScans(TxnDescriptor* t) override;

  /// MVRCC overrides this to model Deuteronomy's imprecise boundary ranges:
  /// predicates lose their [start, end) precision and cover whole ranges.
  virtual bool PreciseBoundaries() const { return true; }

  /// Validate one predicate against its range's transaction list(s).
  /// `pace_counter` threads the validation-pacing unit count across
  /// predicates (see ConcurrencyControl::SetValidationPacing).
  bool ValidatePredicate(TxnDescriptor* t, const RangePredicate& p, uint64_t my_cts,
                         uint32_t* pace_counter);

  /// Validate the window (rd_ts, ring.Version()] of one ring against
  /// predicate `p`, with precise checks bounded by [lo, hi). The cover fast
  /// path only applies on the predicate's primary ring (`allow_cover_fast`):
  /// prev/cross rings can hold writers outside the predicate's range.
  bool ValidateRingWindow(TxnDescriptor* t, const RangePredicate& p, TxnRing& ring,
                          uint64_t rd_ts, uint64_t my_cts, bool allow_cover_fast,
                          uint64_t lo, uint64_t hi, uint32_t* pace_counter);

  /// NoteAbortCause + per-range abort attribution + tuner pressure.
  void NoteScanAbort(TxnDescriptor* t, const RangePredicate& p, AbortReason reason);

  std::vector<std::unique_ptr<RangeManager>> managers_;  // indexed by table id
  RoccOptions options_;
  std::unique_ptr<RangeTuner> tuner_;  // null unless options_.tuner.enabled
};

}  // namespace rocc
