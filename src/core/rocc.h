#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cc/cc.h"
#include "core/range_manager.h"

namespace rocc {

/// Per-table logical-range configuration for ROCC.
struct RangeConfig {
  uint32_t table_id = 0;
  uint64_t key_min = 0;
  uint64_t key_max = 1ULL << 62;  ///< exclusive
  uint32_t num_ranges = 1;
  uint32_t ring_capacity = 4096;
};

/// Options for the ROCC protocol.
struct RoccOptions {
  /// Range layout per table; tables not listed get one all-covering range.
  std::vector<RangeConfig> tables;
  uint32_t default_ring_capacity = 4096;
  /// Fig. 12 ablation switch: when false, writers skip range registration.
  /// Scans are then NOT serializable — use only for scan-free workloads.
  bool register_writes = true;
  /// Ablation switch for the cover fast path (§II-B): when false, fully
  /// covered predicates are validated with per-write key checks like partial
  /// ones. Semantically identical (a writer registered to a range always has
  /// a key inside it); isolates the CPU saving of range-level validation.
  bool cover_fast_path = true;
};

/// Range Optimistic Concurrency Control — the paper's contribution.
///
/// Read phase: scans build one predicate {rangeID, rd_ts, start, end, cover}
/// per touched logical range before scanning it; returned records are NOT
/// copied into the readset (§III-B).
///
/// Commit protocol (Algorithm 1): lock the writeset in key order, register
/// the transaction in every written range's lock-free list, draw the commit
/// timestamp, validate the readset at record level and every predicate at
/// range level, then apply and unlock.
///
/// Predicate validation: a fully covering predicate passes iff the range
/// version is unchanged (fast path) or every registration in
/// (rd_ts, v_ts] is by this transaction / an aborted or later-serialized
/// writer. A partial predicate additionally checks the writer's keys against
/// [start, end) so unrelated writes in the same range do not abort the scan.
class Rocc : public OccBase {
 public:
  Rocc(Database* db, uint32_t num_threads, RoccOptions options);

  const char* Name() const override { return "ROCC"; }

  Status Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
              uint64_t end_key, uint64_t limit, ScanConsumer* consumer) override;

  RangeManager* range_manager(uint32_t table_id) { return managers_[table_id].get(); }

 protected:
  void RegisterWrites(TxnDescriptor* t) override;
  bool ValidateScans(TxnDescriptor* t) override;

  /// MVRCC overrides this to model Deuteronomy's imprecise boundary ranges:
  /// predicates lose their [start, end) precision and cover whole ranges.
  virtual bool PreciseBoundaries() const { return true; }

  /// Validate one predicate against its range's transaction list.
  /// `pace_counter` threads the validation-pacing unit count across
  /// predicates (see ConcurrencyControl::SetValidationPacing).
  bool ValidatePredicate(TxnDescriptor* t, const RangePredicate& p, uint64_t my_cts,
                         uint32_t* pace_counter);

  std::vector<std::unique_ptr<RangeManager>> managers_;  // indexed by table id
  RoccOptions options_;
};

}  // namespace rocc
