#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/txn_ring.h"
#include "harness/stats.h"
#include "txn/epoch.h"

namespace rocc {

/// Per-range contention telemetry, bumped with relaxed atomics on the commit
/// path and consumed by the RangeTuner / bench reporters. A LogicalRange is
/// shared across successive range tables, so its counters survive publishes
/// it is carried through unchanged.
struct RangeStats {
  std::atomic<uint64_t> registrations{0};   ///< writer registrations
  std::atomic<uint64_t> ring_lost{0};       ///< aborts attributed: ring wrapped
  std::atomic<uint64_t> scan_conflict{0};   ///< aborts attributed: overlap
  /// Contention heatmap: aborts attributed to this range per AbortReason
  /// (kAbortCauses order). The ring_lost/scan_conflict columns restate the
  /// two counters above; the rest come from point conflicts the protocol
  /// attributed to a range (dirty reads/lock fails inside a scan window).
  std::atomic<uint64_t> abort_by_reason[kNumAbortCauses] = {};
  /// Widest validation window (v_ts - rd_ts) a validator covered on this
  /// range's primary ring — a direct measurement of the ring capacity the
  /// workload needs. CAS-max'd on the validation path; reset by a resize so
  /// it always describes pressure against the CURRENT capacity.
  std::atomic<uint64_t> ring_high_water{0};
  /// Times this range's ring was replaced by the adaptive-capacity tuner.
  std::atomic<uint64_t> ring_resizes{0};
};

/// One logical range of the adaptive layout: a contiguous run of grid slices
/// with its own lock-free transaction ring (paper §III-A).
///
/// Ranges are immutable in their identity fields after publication and are
/// shared (shared_ptr) between successive RangeTables, so a table swap only
/// replaces the ranges the tuner touched. `prev_rings` carries the rings of
/// the range(s) this one replaced: predicates built against this range
/// snapshot them so writers that registered in a predecessor during the
/// transition window stay visible (DESIGN.md §10). One generation suffices —
/// the tuner only re-touches a range after a full epoch grace period, by
/// which time no transaction that saw the grandparent table is alive.
struct LogicalRange {
  LogicalRange(uint64_t start, uint64_t end, uint32_t first, uint32_t count,
               uint32_t ring_capacity, uint64_t ring_base = 0)
      : start_key(start),
        end_key(end),
        first_slice(first),
        num_slices(count),
        ring(std::make_shared<TxnRing>(ring_capacity, ring_base)) {}

  const uint64_t start_key;   ///< inclusive
  const uint64_t end_key;     ///< exclusive (last range extends to key_max)
  const uint32_t first_slice;
  const uint32_t num_slices;

  std::shared_ptr<TxnRing> ring;  ///< this range's transaction list
  /// Rings of the replaced range(s); fences the transition window. Rings are
  /// shared (not whole ranges) so predecessor chains collapse one generation
  /// at a time instead of pinning every ancestor.
  std::vector<std::shared_ptr<TxnRing>> prev_rings;
  uint64_t created_epoch = 0;  ///< publish epoch; tuner grace gate

  RangeStats stats;

  // Tuner-private delta baselines (guarded by the tuner's serialization).
  uint64_t seen_registrations = 0;
  uint64_t seen_ring_lost = 0;
  uint64_t seen_scan_conflict = 0;
  // Tuner-private merge-evaluation window: per-pass deltas accumulate here so
  // coldness is judged over a fixed amount of observed traffic, not over one
  // (possibly back-to-back) pass interval. Reset at each merge evaluation.
  uint64_t window_registrations = 0;
  uint64_t window_aborts = 0;
};

/// Immutable snapshot of the slice -> logical-range mapping, published via a
/// single atomic pointer and reclaimed through epoch-based reclamation.
/// `ranges` is ascending by start_key; a range's id is its index in THIS
/// table (ids are positional and may change across publishes).
struct RangeTable {
  uint64_t version = 0;
  std::vector<std::shared_ptr<LogicalRange>> ranges;
  std::vector<uint32_t> slice_to_range;  ///< one entry per grid slice

  uint32_t num_ranges() const { return static_cast<uint32_t>(ranges.size()); }
  LogicalRange* range(uint32_t id) const { return ranges[id].get(); }
};

/// Per-range telemetry snapshot for reporting (bench --json, report.cc).
struct RangeTelemetry {
  struct Row {
    uint32_t range_id;
    uint64_t start_key;
    uint64_t end_key;
    uint32_t num_slices;
    uint64_t ring_version;
    uint32_t prev_rings;
    uint64_t registrations;
    uint64_t ring_lost;
    uint64_t scan_conflict;
    uint32_t ring_capacity;
    uint64_t ring_high_water;
    uint64_t ring_resizes;
    bool combining;
    /// range_id × AbortReason heatmap row (kAbortCauses order).
    uint64_t abort_by_reason[kNumAbortCauses];
  };
  uint64_t table_version = 0;
  uint32_t num_ranges = 0;
  uint64_t splits = 0;
  uint64_t merges = 0;
  uint64_t resizes = 0;
  uint64_t total_registrations = 0;
  std::vector<Row> rows;  ///< top-N by registrations, descending
};

/// Two-level adaptive partitioning of one table's key space (paper §III-A,
/// Fig. 3, extended per DESIGN.md §10).
///
/// Level 1 is a fixed fine-grained slice grid: each of the `num_ranges`
/// initial equal-width ranges is subdivided into `slices_per_range` integer
/// slices, so the key -> slice mapping is pure arithmetic, frozen at
/// construction, and the initial range boundaries are bit-exact with the
/// static layout. Level 2 is the epoch/RCU-published RangeTable mapping
/// slices to logical ranges: `RangeOf` is an acquire load plus two divisions
/// and an array index — lock-free, no latches, regardless of tuner activity.
///
/// Structural changes (Split/Merge) build a new immutable table, publish it
/// with a release store, and retire the old one; retired tables are freed
/// once EpochManager::MinActive() passes their retire epoch, which keeps
/// every ring/range pointer held by in-flight predicates valid. Split/Merge
/// and ReclaimRetired must be externally serialized (the RangeTuner holds a
/// mutex); all read-side accessors are safe concurrently.
class RangeManager {
 public:
  /// \param key_min        inclusive lower bound of the key space
  /// \param key_max        exclusive upper bound of the key space
  /// \param num_ranges     number of equal initial logical ranges
  /// \param ring_capacity  slots in each range's circular transaction list
  /// \param slices_per_range  grid refinement under each initial range
  ///                          (1 = static layout, no splitting possible)
  RangeManager(uint64_t key_min, uint64_t key_max, uint32_t num_ranges,
               uint32_t ring_capacity, uint32_t slices_per_range = 1);
  ~RangeManager();

  RangeManager(const RangeManager&) = delete;
  RangeManager& operator=(const RangeManager&) = delete;

  /// Current table; acquire load. Pointers stay valid for the duration of
  /// the caller's transaction (epoch protection).
  const RangeTable* Snapshot() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Grid slice containing `key`; keys outside [key_min, key_max) clamp to
  /// the first/last slice.
  uint32_t SliceOf(uint64_t key) const {
    if (key <= key_min_) return 0;
    uint64_t r = (key - key_min_) / range_size_;
    if (r >= init_num_ranges_) r = init_num_ranges_ - 1;
    uint64_t o = (key - key_min_ - r * range_size_) / slice_width_;
    if (o >= slices_per_range_) o = slices_per_range_ - 1;
    return static_cast<uint32_t>(r * slices_per_range_ + o);
  }

  /// Exclusive upper key of slice `s - 1` / inclusive lower key of slice `s`
  /// (the grid boundary function); SliceBound(num_slices) == key_max.
  uint64_t SliceBound(uint32_t s) const {
    if (s >= num_slices_) return key_max_;
    const uint64_t r = s / slices_per_range_;
    const uint64_t j = s % slices_per_range_;
    uint64_t off = j * slice_width_;
    if (off > range_size_) off = range_size_;  // empty tail slices collapse
    return key_min_ + r * range_size_ + off;
  }

  /// Logical range id containing `key` in the CURRENT table. Keys outside
  /// [key_min, key_max) are clamped to the first/last range.
  uint32_t RangeOf(uint64_t key) const {
    return Snapshot()->slice_to_range[SliceOf(key)];
  }

  uint64_t RangeStart(uint32_t id) const {
    return Snapshot()->range(id)->start_key;
  }

  /// Exclusive end of range `id`; the last range extends to key_max.
  uint64_t RangeEnd(uint32_t id) const { return Snapshot()->range(id)->end_key; }

  TxnRing& ring(uint32_t id) { return *Snapshot()->range(id)->ring; }
  const TxnRing& ring(uint32_t id) const { return *Snapshot()->range(id)->ring; }

  uint32_t num_ranges() const { return Snapshot()->num_ranges(); }
  uint64_t key_min() const { return key_min_; }
  uint64_t key_max() const { return key_max_; }
  uint64_t range_size() const { return range_size_; }
  uint32_t init_num_ranges() const { return init_num_ranges_; }
  uint32_t slices_per_range() const { return slices_per_range_; }
  uint32_t num_slices() const { return num_slices_; }
  uint32_t ring_capacity() const { return ring_capacity_; }
  uint64_t table_version() const { return Snapshot()->version; }
  uint64_t splits() const { return splits_; }
  uint64_t merges() const { return merges_; }
  uint64_t resizes() const { return resizes_; }

  /// Split range `range_id` of the current table into up to `children`
  /// slice-balanced children with fresh rings, publishing a new table at
  /// `publish_epoch`. Returns false when the range has too few non-empty
  /// slices. Caller must hold the tuner serialization and have verified the
  /// epoch grace (MinActive > range->created_epoch).
  bool Split(uint32_t range_id, uint32_t children, uint64_t publish_epoch);

  /// Merge `count` adjacent ranges starting at `first_range_id` into one
  /// range with a fresh ring whose prev_rings fence all merged rings.
  /// `count` is capped by RangePredicate::kMaxPrevRings. Same caller
  /// obligations as Split.
  bool Merge(uint32_t first_range_id, uint32_t count, uint64_t publish_epoch);

  /// Replace range `range_id`'s ring with one of `new_capacity` slots,
  /// publishing a new table at `publish_epoch`. The replacement ring is
  /// seeded at the retired ring's current version (sequence continuity) and
  /// fences it via prev_rings, so the transition window is validated by
  /// exactly the Split machinery; the retired ring stays readable until
  /// MinActive passes the publish epoch. Same caller obligations as Split.
  bool Resize(uint32_t range_id, uint32_t new_capacity, uint64_t publish_epoch);

  /// Free retired tables whose retire epoch precedes `min_active`.
  /// Tuner-serialized.
  void ReclaimRetired(uint64_t min_active);

  size_t retired_tables() const { return retired_.size(); }

  /// Snapshot per-range counters (top `top_n` rows by registrations).
  RangeTelemetry Telemetry(size_t top_n = 16) const;

 private:
  void Publish(RangeTable* next, uint64_t publish_epoch);

  uint64_t key_min_;
  uint64_t key_max_;
  uint32_t init_num_ranges_;
  uint64_t range_size_;   ///< initial equal-width range size (grid period)
  uint32_t slices_per_range_;
  uint64_t slice_width_;  ///< ceil(range_size / slices_per_range)
  uint32_t num_slices_;
  uint32_t ring_capacity_;

  std::atomic<RangeTable*> current_;
  RetireList<RangeTable> retired_;  ///< tuner-serialized
  uint64_t splits_ = 0;
  uint64_t merges_ = 0;
  uint64_t resizes_ = 0;
};

}  // namespace rocc
