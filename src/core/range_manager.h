#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/txn_ring.h"

namespace rocc {

/// Partitions one table's key space into equal, continuous, disjoint logical
/// ranges [start_key, end_key) and owns the per-range transaction lists
/// (paper §III-A, Fig. 3).
class RangeManager {
 public:
  /// \param key_min        inclusive lower bound of the key space
  /// \param key_max        exclusive upper bound of the key space
  /// \param num_ranges     number of equal logical ranges to create
  /// \param ring_capacity  slots in each range's circular transaction list
  RangeManager(uint64_t key_min, uint64_t key_max, uint32_t num_ranges,
               uint32_t ring_capacity);

  /// Logical range id containing `key`. Keys outside [key_min, key_max) are
  /// clamped to the first/last range.
  uint32_t RangeOf(uint64_t key) const {
    if (key <= key_min_) return 0;
    const uint64_t r = (key - key_min_) / range_size_;
    return r >= num_ranges_ ? num_ranges_ - 1 : static_cast<uint32_t>(r);
  }

  uint64_t RangeStart(uint32_t id) const { return key_min_ + id * range_size_; }

  /// Exclusive end of range `id`; the last range extends to key_max.
  uint64_t RangeEnd(uint32_t id) const {
    return id + 1 == num_ranges_ ? key_max_ : key_min_ + (id + 1) * range_size_;
  }

  TxnRing& ring(uint32_t id) { return *rings_[id]; }
  const TxnRing& ring(uint32_t id) const { return *rings_[id]; }

  uint32_t num_ranges() const { return num_ranges_; }
  uint64_t key_min() const { return key_min_; }
  uint64_t key_max() const { return key_max_; }
  uint64_t range_size() const { return range_size_; }

 private:
  uint64_t key_min_;
  uint64_t key_max_;
  uint32_t num_ranges_;
  uint64_t range_size_;
  std::vector<std::unique_ptr<TxnRing>> rings_;
};

}  // namespace rocc
