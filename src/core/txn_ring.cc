#include "core/txn_ring.h"

#include "common/cacheline.h"

namespace rocc {

TxnRing::TxnRing(uint32_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

TxnRing::~TxnRing() = default;

uint64_t TxnRing::Register(TxnDescriptor* t) {
  const uint64_t seq = counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  Slot& slot = slots_[seq % capacity_];

  // Claim the slot with a CAS on the sequence tag so two registrants a whole
  // lap apart can never interleave their (txn, seq) stores.
  uint64_t cur = slot.seq.load(std::memory_order_acquire);
  while (true) {
    if (cur == kWriting) {
      CpuRelax();
      cur = slot.seq.load(std::memory_order_acquire);
      continue;
    }
    if (cur > seq) {
      // A registrant from a later lap already owns this slot; our entry is
      // obsolete before it was ever published. Validators that need `seq`
      // will see the mismatch and abort conservatively.
      return seq;
    }
    if (slot.seq.compare_exchange_weak(cur, kWriting, std::memory_order_acq_rel)) {
      break;
    }
  }
  slot.txn.store(t, std::memory_order_release);
  slot.seq.store(seq, std::memory_order_release);
  return seq;
}

TxnDescriptor* TxnRing::Get(uint64_t seq) const {
  const Slot& slot = slots_[seq % capacity_];
  // The registrant increments the counter before publishing the slot; give a
  // mid-publish writer a short grace period before giving up.
  for (int spin = 0; spin < 64; spin++) {
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == seq) {
      TxnDescriptor* t = slot.txn.load(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_acquire) == seq) return t;
      return nullptr;  // overwritten mid-read
    }
    if (s1 > seq && s1 != kWriting) return nullptr;  // lapped: info lost
    CpuRelax();  // older tag or mid-publish: the writer is about to land
  }
  return nullptr;
}

}  // namespace rocc
