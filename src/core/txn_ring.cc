#include "core/txn_ring.h"

#include "common/cacheline.h"
#include "sync/optiql.h"

namespace rocc {

TxnRing::TxnRing(uint32_t capacity, uint64_t base)
    : counter_(base),
      base_(base),
      capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

TxnRing::~TxnRing() = default;

void TxnRing::PublishSlot(uint64_t seq, TxnDescriptor* t) {
  Slot& slot = slots_[seq % capacity_];

  // Claim the slot with a CAS on the sequence tag so two registrants a whole
  // lap apart can never interleave their (txn, seq) stores.
  uint64_t cur = slot.seq.load(std::memory_order_acquire);
  while (true) {
    if (cur == kWriting) {
      CpuRelax();
      cur = slot.seq.load(std::memory_order_acquire);
      continue;
    }
    if (cur > seq) {
      // A registrant from a later lap already owns this slot; our entry is
      // obsolete before it was ever published. Validators that need `seq`
      // will see the mismatch and abort conservatively.
      return;
    }
    if (slot.seq.compare_exchange_weak(cur, kWriting, std::memory_order_acq_rel)) {
      break;
    }
  }
  slot.txn.store(t, std::memory_order_release);
  slot.seq.store(seq, std::memory_order_release);
}

uint64_t TxnRing::RegisterDirect(TxnDescriptor* t) {
  const uint64_t seq = counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  PublishSlot(seq, t);
  return seq;
}

uint64_t TxnRing::Register(TxnDescriptor* t) {
  if (combining_.load(std::memory_order_relaxed)) {
    uint64_t seq;
    if (RegisterCombining(t, &seq)) return seq;
  }
  return RegisterDirect(t);
}

bool TxnRing::RegisterCombining(TxnDescriptor* t, uint64_t* out_seq) {
  using sync::QNode;
  const uint16_t qid = sync::AcquireQNode();
  if (qid == 0) return false;  // pool exhausted: single-CAS path
  QNode* me = sync::QNodeForId(qid);
  me->ctx.store(t, std::memory_order_relaxed);
  me->result.store(0, std::memory_order_relaxed);

  const uint16_t pred = comb_tail_.exchange(qid, std::memory_order_acq_rel);
  sync::SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  if (pred != 0) {
    sync::QNodeForId(pred)->next.store(qid, std::memory_order_release);
    // Local spin on our own line; the combiner publishes our slot and parks
    // the assigned sequence in `result` before granting.
    uint8_t g;
    while ((g = me->granted.load(std::memory_order_acquire)) == QNode::kWaiting) {
      backoff.Pause();
    }
    if (g == QNode::kGranted) {
      *out_seq = me->result.load(std::memory_order_acquire);
      sync::ReleaseQNode(qid);
      return true;
    }
    // kCombinerHandoff: the previous combiner filled its batch and handed
    // the head role to us. Fall through and combine from our own node.
  }

  // Combiner: capture the linked batch (ourselves first). All reads of a
  // member's ctx/next happen BEFORE any grant, so granting a member is the
  // last touch of its node.
  TxnDescriptor* batch_txn[kMaxCombine];
  uint16_t batch_id[kMaxCombine];
  uint32_t k = 0;
  batch_txn[k] = t;
  batch_id[k] = qid;
  k++;
  uint16_t last = qid;
  QNode* last_n = me;
  uint16_t handoff = 0;
  for (;;) {
    uint16_t nx = last_n->next.load(std::memory_order_acquire);
    if (nx == 0) {
      uint16_t expect = last;
      if (comb_tail_.compare_exchange_strong(expect, 0,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        break;  // queue closed behind us: the batch is complete
      }
      // A registrant swapped in as tail and is about to link; wait it out.
      while ((nx = last_n->next.load(std::memory_order_acquire)) == 0) {
        backoff.Pause();
      }
    }
    if (k == kMaxCombine) {
      handoff = nx;  // batch full: the successor becomes the next combiner
      break;
    }
    QNode* n = sync::QNodeForId(nx);
    batch_txn[k] = static_cast<TxnDescriptor*>(n->ctx.load(std::memory_order_acquire));
    batch_id[k] = nx;
    k++;
    last = nx;
    last_n = n;
  }

  // ONE counter advance covers the whole batch; each member still gets a
  // unique sequence and its own slot publish, so per-slot semantics (and the
  // one-registration-one-version-bump invariant) are identical to the direct
  // path — validators cannot tell the difference.
  const uint64_t first_seq = counter_.fetch_add(k, std::memory_order_acq_rel) + 1;
  for (uint32_t i = 0; i < k; i++) {
    PublishSlot(first_seq + i, batch_txn[i]);
  }
  *out_seq = first_seq;
  for (uint32_t i = 1; i < k; i++) {
    QNode* n = sync::QNodeForId(batch_id[i]);
    n->result.store(first_seq + i, std::memory_order_release);
    n->granted.store(QNode::kGranted, std::memory_order_release);
  }
  if (handoff != 0) {
    sync::QNodeForId(handoff)->granted.store(QNode::kCombinerHandoff,
                                             std::memory_order_release);
  }
  sync::ReleaseQNode(qid);
  return true;
}

TxnDescriptor* TxnRing::Get(uint64_t seq) const {
  if (seq <= base_) return nullptr;  // issued by a predecessor ring
  const Slot& slot = slots_[seq % capacity_];
  // The registrant increments the counter before publishing the slot; give a
  // mid-publish writer a short grace period before giving up.
  for (int spin = 0; spin < 64; spin++) {
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == seq) {
      TxnDescriptor* t = slot.txn.load(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_acquire) == seq) return t;
      return nullptr;  // overwritten mid-read
    }
    if (s1 > seq && s1 != kWriting) return nullptr;  // lapped: info lost
    CpuRelax();  // older tag or mid-publish: the writer is about to land
  }
  return nullptr;
}

}  // namespace rocc
