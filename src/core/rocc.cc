#include "core/rocc.h"

#include <algorithm>

#include "cc/occ_util.h"

namespace rocc {

Rocc::Rocc(Database* db, uint32_t num_threads, RoccOptions options)
    : OccBase(db, num_threads), options_(std::move(options)) {
  managers_.resize(db->NumTables());
  for (const RangeConfig& rc : options_.tables) {
    managers_[rc.table_id] = std::make_unique<RangeManager>(
        rc.key_min, rc.key_max, rc.num_ranges, rc.ring_capacity);
  }
  for (size_t i = 0; i < managers_.size(); i++) {
    if (managers_[i] == nullptr) {
      managers_[i] = std::make_unique<RangeManager>(0, 1ULL << 62, 1,
                                                    options_.default_ring_capacity);
    }
  }
}

Status Rocc::Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                  uint64_t end_key, uint64_t limit, ScanConsumer* consumer) {
  RangeManager* rm = managers_[table_id].get();
  const uint64_t end_bound = (end_key == 0) ? rm->key_max() : end_key;
  uint64_t cursor = std::max(start_key, rm->key_min());
  uint64_t produced = 0;
  const bool precise = PreciseBoundaries();

  while (cursor < end_bound && (limit == 0 || produced < limit)) {
    const uint32_t rid = rm->RangeOf(cursor);
    const uint64_t range_lo = rm->RangeStart(rid);
    // Keys beyond the configured key space clamp into the last logical range
    // (writers register there too), so the last range absorbs any scan tail
    // past key_max — otherwise the cursor could never reach end_bound.
    const bool last_range = rid + 1 == rm->num_ranges();
    const uint64_t range_hi =
        last_range ? end_bound : std::min(rm->RangeEnd(rid), end_bound);

    // Construct the predicate BEFORE scanning the range (§III-C2): taking
    // rd_ts first is the moral equivalent of acquiring a range read lock.
    RangePredicate p;
    p.table_id = table_id;
    p.range_id = rid;
    p.rd_ts = rm->ring(rid).Version();

    uint64_t last_key = 0;
    uint64_t n = 0;
    bool stopped = false;
    const uint64_t remaining = (limit == 0) ? 0 : limit - produced;
    Status st = ScanRecords(t, table_id, cursor, range_hi, remaining, consumer,
                            /*track_records=*/false, &last_key, &n, &stopped);
    if (!st.ok()) return st;
    produced += n;

    // A consumer stop bounds the scan exactly like reaching the limit: the
    // logical extent ends just past the last delivered key.
    const bool hit_limit = (limit != 0 && produced >= limit) || stopped;
    if (precise) {
      p.start_key = cursor;
      p.end_key = hit_limit ? last_key + 1 : range_hi;
      p.cover = !hit_limit && cursor <= range_lo && range_hi == rm->RangeEnd(rid);
    } else {
      // MVRCC-style imprecision: every touched range counts as fully read.
      p.start_key = range_lo;
      p.end_key = rm->RangeEnd(rid);
      p.cover = true;
    }
    t->predicates.push_back(p);

    if (hit_limit) break;
    cursor = range_hi;
  }
  return Status::Ok();
}

void Rocc::RegisterWrites(TxnDescriptor* t) {
  if (!options_.register_writes) return;
  TxnStats& s = stats(t->thread_id);
  for (const WriteEntry& we : t->write_set) {
    RangeManager* rm = managers_[we.table_id].get();
    const uint32_t rid = rm->RangeOf(we.key);
    const uint64_t tag = (static_cast<uint64_t>(we.table_id) << 32) | rid;
    // A transaction registers to each logical range only once (§V-H); the
    // dedup list is kept sorted so the membership probe is O(log R) even for
    // bulk writers spanning many ranges.
    const auto it = std::lower_bound(t->registered_ranges.begin(),
                                     t->registered_ranges.end(), tag);
    if (it != t->registered_ranges.end() && *it == tag) continue;
    t->registered_ranges.insert(it, tag);
    rm->ring(rid).Register(t);
    s.registrations++;
  }
}

bool Rocc::ValidatePredicate(TxnDescriptor* t, const RangePredicate& p,
                             uint64_t my_cts, uint32_t* pace_counter) {
  RangeManager* rm = managers_[p.table_id].get();
  TxnRing& ring = rm->ring(p.range_id);
  TxnStats& s = stats(t->thread_id);

  const uint64_t v_ts = ring.Version();
  if (v_ts == p.rd_ts) return true;  // unchanged range: fast path
  if (v_ts - p.rd_ts >= ring.capacity()) {
    NoteAbortCause(t->thread_id, AbortReason::kRingLost);
    return false;  // the ring wrapped: conflict information was lost
  }

  for (uint64_t seq = p.rd_ts + 1; seq <= v_ts; seq++) {
    TxnDescriptor* writer = ring.Get(seq);
    if (writer == nullptr) {
      NoteAbortCause(t->thread_id, AbortReason::kRingLost);
      return false;  // slot overwritten concurrently
    }
    s.validated_txns++;
    PaceValidation(pace_counter);
    if (writer == t) continue;  // own registration
    if (writer->state.load(std::memory_order_acquire) == TxnState::kAborted) {
      continue;  // its writes were never applied
    }
    const uint64_t wcts = WaitForCommitTs(writer);
    if (wcts == 0) {
      // Aborted meanwhile, or unresolved past the spin budget.
      if (writer->state.load(std::memory_order_acquire) == TxnState::kAborted) {
        continue;
      }
      NoteAbortCause(t->thread_id, AbortReason::kUnresolved);
      return false;  // conservative
    }
    if (wcts > my_cts) continue;  // serializes after this transaction
    if (p.cover && options_.cover_fast_path) {
      NoteAbortCause(t->thread_id, AbortReason::kScanConflict);
      return false;  // any overlapping writer intersects a full range
    }

    // Partial range (or the cover fast path is ablated away): precise key
    // check against the writer's frozen fingerprints (Algorithm 1 steps
    // 19-24). The fingerprints were built before the writer registered, so
    // the acquire on the ring slot makes them safely readable here; the
    // interval reject + binary search replaces the O(W) writeset walk.
    const uint64_t lo = p.cover ? rm->RangeStart(p.range_id) : p.start_key;
    const uint64_t hi = p.cover ? rm->RangeEnd(p.range_id) : p.end_key;
    PaceValidation(pace_counter);
    if (writer->WritesIntersect(p.table_id, lo, hi)) {
      NoteAbortCause(t->thread_id, AbortReason::kScanConflict);
      return false;
    }
  }
  return true;
}

bool Rocc::ValidateScans(TxnDescriptor* t) {
  if (t->predicates.empty()) return true;
  const uint64_t my_cts = t->commit_ts.load(std::memory_order_relaxed);
  uint32_t pace_counter = 0;
  for (const RangePredicate& p : t->predicates) {
    if (!ValidatePredicate(t, p, my_cts, &pace_counter)) return false;
  }
  return true;
}

}  // namespace rocc
