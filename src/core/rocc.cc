#include "core/rocc.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <inttypes.h>

#include "cc/occ_util.h"
#include "harness/contention.h"

namespace rocc {

Status ValidateRangeConfig(const RangeConfig& rc) {
  if (rc.key_min >= rc.key_max) {
    return Status::InvalidArgument("RangeConfig: key_min must be < key_max");
  }
  if (rc.ring_capacity == 0) {
    return Status::InvalidArgument("RangeConfig: ring_capacity must be > 0");
  }
  return Status::Ok();
}

Rocc::Rocc(Database* db, uint32_t num_threads, RoccOptions options)
    : OccBase(db, num_threads), options_(std::move(options)) {
  // Misconfiguration is a programming error: fail fast, before any worker
  // can run against a layout that cannot satisfy the protocol's invariants.
  const uint32_t spr =
      options_.tuner.enabled
          ? std::max<uint32_t>(1, options_.tuner.slices_per_range)
          : 1;
  managers_.resize(db->NumTables());
  for (const RangeConfig& rc : options_.tables) {
    const Status st = ValidateRangeConfig(rc);
    if (!st.ok() || rc.table_id >= db->NumTables()) {
      std::fprintf(stderr, "rocc: invalid RangeConfig for table %u: %s\n",
                   rc.table_id,
                   st.ok() ? "table_id out of range" : st.ToString().c_str());
      std::abort();
    }
    const uint64_t span = rc.key_max - rc.key_min;
    uint32_t num_ranges = rc.num_ranges == 0 ? 1 : rc.num_ranges;
    if (num_ranges > span) {
      std::fprintf(stderr,
                   "rocc: warning: table %u requests %u ranges over a span of "
                   "%" PRIu64 " keys; clamping to the span\n",
                   rc.table_id, num_ranges, span);
      num_ranges = static_cast<uint32_t>(span);
    }
    managers_[rc.table_id] = std::make_unique<RangeManager>(
        rc.key_min, rc.key_max, num_ranges, rc.ring_capacity, spr);
  }
  for (size_t i = 0; i < managers_.size(); i++) {
    if (managers_[i] == nullptr) {
      managers_[i] = std::make_unique<RangeManager>(
          0, 1ULL << 62, 1, options_.default_ring_capacity, spr);
    }
  }
  if (options_.tuner.enabled) {
    tuner_ = std::make_unique<RangeTuner>(&managers_, &epoch_, options_.tuner);
    if (contention_ != nullptr) {
      // Contention relief: before a repeatedly aborting scan escalates into
      // the protected-retry gate, give the tuner one shot at a structural
      // fix (split the hot range) — cheaper than stalling admissions.
      contention_->SetReliefHook([this](uint32_t) { return tuner_->ForceTune(); });
    }
  }
}

std::vector<RangeTelemetry> Rocc::LiveRangeTelemetry(size_t top_n) {
  if (tuner_ != nullptr) return tuner_->TelemetryLocked(top_n);
  std::vector<RangeTelemetry> out;
  for (const auto& m : managers_) {
    if (m != nullptr) out.push_back(m->Telemetry(top_n));
  }
  return out;
}

Status Rocc::Commit(TxnDescriptor* t) {
  const Status st = OccBase::Commit(t);
  // Piggybacked tuning: runs after FinishTxn, so this thread holds no locks
  // and is outside its epoch — a pass can observe the grace period without
  // waiting on ourselves.
  if (tuner_ != nullptr) tuner_->MaybeTune();
  return st;
}

Status Rocc::Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                  uint64_t end_key, uint64_t limit, ScanConsumer* consumer) {
  // Declared-read-only transactions opt out of range validation entirely:
  // resolve against the multi-version store at a frozen snapshot instead of
  // fencing predicates against writer rings. Such a scan can never
  // validate-abort. A multi-scan read-only transaction (BeginReadOnly) pins
  // ONE snapshot across all its scans and point reads — OccBase freezes
  // t->snapshot_ts on the first read, and every later operation reuses it —
  // so the whole transaction observes a single consistent cut.
  if (t->snapshot_reads && !t->HasWrites() && version_store() != nullptr) {
    return SnapshotScan(t, table_id, start_key, end_key, limit, consumer);
  }
  RangeManager* rm = managers_[table_id].get();
  // One table snapshot per scan: every predicate of this scan is built
  // against it, and records which table version it fenced (§III-C2 +
  // DESIGN.md §10). Epoch protection keeps the pointers alive.
  const RangeTable* table = rm->Snapshot();
  const uint64_t end_bound = (end_key == 0) ? rm->key_max() : end_key;
  uint64_t cursor = std::max(start_key, rm->key_min());
  uint64_t produced = 0;
  const bool precise = PreciseBoundaries();

  while (cursor < end_bound && (limit == 0 || produced < limit)) {
    const uint32_t rid = table->slice_to_range[rm->SliceOf(cursor)];
    LogicalRange* lr = table->range(rid);
    const uint64_t range_lo = lr->start_key;
    // Keys beyond the configured key space clamp into the last logical range
    // (writers register there too), so the last range absorbs any scan tail
    // past key_max — otherwise the cursor could never reach end_bound.
    const bool last_range = rid + 1 == table->num_ranges();
    const uint64_t range_hi =
        last_range ? end_bound : std::min(lr->end_key, end_bound);

    // Construct the predicate BEFORE scanning the range (§III-C2): taking
    // rd_ts first is the moral equivalent of acquiring a range read lock.
    // The predecessor rings are fenced here too — writers that loaded the
    // pre-split table register there during the transition window.
    RangePredicate p;
    p.table_id = table_id;
    p.range_id = rid;
    p.table_version = table->version;
    p.range = lr;
    p.ring = lr->ring.get();
    p.rd_ts = p.ring->Version();
    p.num_prev = static_cast<uint32_t>(
        std::min<size_t>(lr->prev_rings.size(), RangePredicate::kMaxPrevRings));
    for (uint32_t i = 0; i < p.num_prev; i++) {
      p.prev[i].ring = lr->prev_rings[i].get();
      p.prev[i].rd_ts = p.prev[i].ring->Version();
    }

    uint64_t last_key = 0;
    uint64_t n = 0;
    bool stopped = false;
    const uint64_t remaining = (limit == 0) ? 0 : limit - produced;
    Status st = ScanRecords(t, table_id, cursor, range_hi, remaining, consumer,
                            /*track_records=*/false, &last_key, &n, &stopped);
    if (!st.ok()) return st;
    produced += n;

    // A consumer stop bounds the scan exactly like reaching the limit: the
    // logical extent ends just past the last delivered key.
    const bool hit_limit = (limit != 0 && produced >= limit) || stopped;
    if (precise) {
      p.start_key = cursor;
      p.end_key = hit_limit ? last_key + 1 : range_hi;
      p.cover = !hit_limit && cursor <= range_lo && range_hi == lr->end_key;
    } else {
      // MVRCC-style imprecision: every touched range counts as fully read.
      p.start_key = range_lo;
      p.end_key = lr->end_key;
      p.cover = true;
    }
    t->predicates.push_back(p);

    if (hit_limit) break;
    cursor = range_hi;
  }
  return Status::Ok();
}

void Rocc::RegisterWrites(TxnDescriptor* t) {
  if (!options_.register_writes) return;
  TxnStats& s = stats(t->thread_id);
  for (const WriteEntry& we : t->write_set) {
    RangeManager* rm = managers_[we.table_id].get();
    const RangeTable* table = rm->Snapshot();
    // Publish-race loop: if the range table is swapped between mapping the
    // key and a validator reading the new table, re-map and register in the
    // new ring as well, so the write intention is visible from whichever
    // table a concurrent scan snapshots. Terminates when the snapshot is
    // stable across the registration (publishes are rare).
    for (;;) {
      LogicalRange* lr = table->range(table->slice_to_range[rm->SliceOf(we.key)]);
      // A transaction registers in each ring only once (§V-H); the dedup
      // list holds the ring pointers themselves, kept sorted so the
      // membership probe is O(log R) even for bulk writers spanning many
      // ranges. Ring lifetimes are epoch-protected for the whole txn.
      const uint64_t tag = reinterpret_cast<uint64_t>(lr->ring.get());
      const auto it = std::lower_bound(t->registered_ranges.begin(),
                                       t->registered_ranges.end(), tag);
      if (it == t->registered_ranges.end() || *it != tag) {
        t->registered_ranges.insert(it, tag);
        lr->ring->Register(t);
        s.registrations++;
        lr->stats.registrations.fetch_add(1, std::memory_order_relaxed);
      }
      const RangeTable* now = rm->Snapshot();
      if (now == table) break;
      table = now;
    }
  }
}

void Rocc::NoteScanAbort(TxnDescriptor* t, const RangePredicate& p,
                         AbortReason reason) {
  NoteAbortCause(t->thread_id, reason);
  // Attribute the abort to the predicate's range for the trace: the abort
  // event then carries which range's ring the conflict came from. First
  // attribution wins, matching NoteAbortCause's first-reason-wins rule.
  if (ctxs_[t->thread_id]->last_conflict_range == obs::kNoRange) {
    ctxs_[t->thread_id]->last_conflict_range = p.range_id;
  }
  if (p.range != nullptr) {
    std::atomic<uint64_t>& counter = reason == AbortReason::kRingLost
                                         ? p.range->stats.ring_lost
                                         : p.range->stats.scan_conflict;
    counter.fetch_add(1, std::memory_order_relaxed);
    // Contention heatmap: the same attribution, keyed by the full reason so
    // /vars and report --json can render range_id × AbortReason without a
    // trace dump. kNone never reaches this path (callers pass a real cause).
    const uint32_t col = AbortReasonColumn(reason);
    if (col > 0) {
      p.range->stats.abort_by_reason[col - 1].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  if (tuner_ != nullptr) tuner_->NoteAbortPressure(1);
}

bool Rocc::ValidateRingWindow(TxnDescriptor* t, const RangePredicate& p,
                              TxnRing& ring, uint64_t rd_ts, uint64_t my_cts,
                              bool allow_cover_fast, uint64_t lo, uint64_t hi,
                              uint32_t* pace_counter) {
  TxnStats& s = stats(t->thread_id);
  // A ring created by an adaptive resize starts at the retired ring's
  // version: sequences at or below base() were issued by the predecessor,
  // which this predicate fences separately (prev_rings) or walks as an
  // unknown current ring. Clamping keeps the wrap check honest on a fresh
  // replacement ring — without it a full-history walk (rd_ts = 0) would
  // instantly count the seeded base as lost information.
  if (rd_ts < ring.base()) rd_ts = ring.base();
  const uint64_t v_ts = ring.Version();
  if (v_ts == rd_ts) return true;  // unchanged ring: fast path
  if (allow_cover_fast && p.range != nullptr) {
    // High-water telemetry on the predicate's primary ring: the widest
    // window a validator had to cover is the capacity the workload needs,
    // and the tuner's grow policy jumps straight past it.
    std::atomic<uint64_t>& hw = p.range->stats.ring_high_water;
    const uint64_t span = v_ts - rd_ts;
    uint64_t prev = hw.load(std::memory_order_relaxed);
    while (span > prev &&
           !hw.compare_exchange_weak(prev, span, std::memory_order_relaxed)) {
    }
  }
  if (v_ts - rd_ts >= ring.capacity()) {
    NoteScanAbort(t, p, AbortReason::kRingLost);
    return false;  // the ring wrapped: conflict information was lost
  }

  for (uint64_t seq = rd_ts + 1; seq <= v_ts; seq++) {
    TxnDescriptor* writer = ring.Get(seq);
    if (writer == nullptr) {
      NoteScanAbort(t, p, AbortReason::kRingLost);
      return false;  // slot overwritten concurrently
    }
    s.validated_txns++;
    PaceValidation(pace_counter);
    if (writer == t) continue;  // own registration
    if (writer->state.load(std::memory_order_acquire) == TxnState::kAborted) {
      continue;  // its writes were never applied
    }
    const uint64_t wcts = WaitForCommitTs(writer);
    if (wcts == 0) {
      // Aborted meanwhile, or unresolved past the spin budget.
      if (writer->state.load(std::memory_order_acquire) == TxnState::kAborted) {
        continue;
      }
      NoteAbortCause(t->thread_id, AbortReason::kUnresolved);
      return false;  // conservative
    }
    if (wcts > my_cts) continue;  // serializes after this transaction
    if (p.cover && allow_cover_fast && options_.cover_fast_path) {
      // Any overlapping writer intersects a fully covered range. Only valid
      // on the predicate's primary ring: writers in a predecessor or
      // current-table ring may lie entirely outside this range's span.
      NoteScanAbort(t, p, AbortReason::kScanConflict);
      return false;
    }

    // Precise key check against the writer's frozen fingerprints
    // (Algorithm 1 steps 19-24). The fingerprints were built before the
    // writer registered, so the acquire on the ring slot makes them safely
    // readable here; the interval reject + binary search replaces the O(W)
    // writeset walk.
    PaceValidation(pace_counter);
    if (writer->WritesIntersect(p.table_id, lo, hi)) {
      NoteScanAbort(t, p, AbortReason::kScanConflict);
      return false;
    }
  }
  return true;
}

bool Rocc::ValidatePredicate(TxnDescriptor* t, const RangePredicate& p,
                             uint64_t my_cts, uint32_t* pace_counter) {
  RangeManager* rm = managers_[p.table_id].get();
  TxnRing* primary = p.ring != nullptr ? p.ring : &rm->ring(p.range_id);

  // Effective key bounds of the predicate for precise checks: a covering
  // predicate spans its snapshot range, a partial one its observed extent.
  uint64_t lo, hi;
  if (p.cover) {
    lo = p.range != nullptr ? p.range->start_key : rm->RangeStart(p.range_id);
    hi = p.range != nullptr ? p.range->end_key : rm->RangeEnd(p.range_id);
  } else {
    lo = p.start_key;
    hi = p.end_key;
  }

  // 1. The snapshot range's own ring, with the cover fast path.
  if (!ValidateRingWindow(t, p, *primary, p.rd_ts, my_cts,
                          /*allow_cover_fast=*/true, lo, hi, pace_counter)) {
    return false;
  }

  // 2. Predecessor rings fenced at predicate-build time: writers that loaded
  // the pre-transition table register there (DESIGN.md §10).
  for (uint32_t i = 0; i < p.num_prev; i++) {
    if (!ValidateRingWindow(t, p, *p.prev[i].ring, p.prev[i].rd_ts, my_cts,
                            /*allow_cover_fast=*/false, lo, hi, pace_counter)) {
      return false;
    }
  }

  // 3. Transition window, other direction: the table advanced since the scan
  // snapshotted it, so ranges now overlapping the scanned span may carry
  // rings the snapshot never fenced. Validate every unknown ring over its
  // full history (rd_ts = 0) — conservative, and degrades to a ring_lost
  // abort when the history no longer fits the ring. Only the current
  // ranges' own rings need walking: any fenced-but-replaced ring a live
  // writer could have registered in is either this predicate's primary /
  // predecessor ring, or belongs to a current range — replacing a range
  // created after this transaction entered its epoch is blocked by the
  // tuner's grace gate (DESIGN.md §10).
  const RangeTable* cur = rm->Snapshot();
  if (cur->version != p.table_version && hi > lo) {
    const uint32_t rid_lo = cur->slice_to_range[rm->SliceOf(lo)];
    const uint32_t rid_hi = cur->slice_to_range[rm->SliceOf(hi - 1)];
    for (uint32_t rid = rid_lo; rid <= rid_hi; rid++) {
      TxnRing* ring = cur->range(rid)->ring.get();
      bool known = ring == primary;
      for (uint32_t j = 0; !known && j < p.num_prev; j++) {
        known = ring == p.prev[j].ring;
      }
      if (known) continue;
      if (!ValidateRingWindow(t, p, *ring, /*rd_ts=*/0, my_cts,
                              /*allow_cover_fast=*/false, lo, hi,
                              pace_counter)) {
        return false;
      }
    }
  }
  return true;
}

bool Rocc::ValidateScans(TxnDescriptor* t) {
  if (t->predicates.empty()) return true;
  const uint64_t my_cts = t->commit_ts.load(std::memory_order_relaxed);
  uint32_t pace_counter = 0;
  for (const RangePredicate& p : t->predicates) {
    if (!ValidatePredicate(t, p, my_cts, &pace_counter)) return false;
  }
  return true;
}

}  // namespace rocc
