#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/range_manager.h"
#include "txn/epoch.h"

namespace rocc {

/// Tuning policy for adaptive range refinement (DESIGN.md §10).
struct RangeTunerOptions {
  bool enabled = false;
  /// Grid refinement under each initial range; 1 disables splitting entirely
  /// (the grid is frozen at construction).
  uint32_t slices_per_range = 8;
  /// Max children per split (2..RangePredicate::kMaxPrevRings).
  uint32_t max_children = 4;
  /// Abort attributions accumulated before a commit-piggybacked pass runs.
  uint32_t pressure_threshold = 64;
  /// Minimum per-pass contention score for a range to be split.
  uint64_t min_split_score = 16;
  /// Table growth bound: at most init_num_ranges * factor logical ranges.
  uint32_t max_ranges_factor = 8;
  /// A range observing at most this many registrations across one merge
  /// evaluation window (and zero abort attributions) counts as cold and may
  /// merge with a cold neighbor.
  uint64_t merge_idle_registrations = 8;
  /// Table-wide registrations that must accumulate between merge
  /// evaluations. Judging coldness per pass is unsound when passes fire
  /// back-to-back (relief storms): every range then shows a near-zero delta
  /// and hot split products get merged straight back, thrashing the table.
  uint64_t merge_eval_registrations = 4096;
  /// Adaptive ring capacity (DESIGN.md §15.2): grow a range's ring when
  /// ring_lost aborts persist and splitting cannot (or did not) relieve
  /// them; shrink it back toward the configured capacity when a merge
  /// window shows no pressure and a low high-water mark.
  bool adaptive_ring = false;
  /// Upper bound for tuner-grown rings (slots).
  uint32_t max_ring_capacity = 1u << 20;
  /// Per-pass registration delta past which a range's ring is promoted to
  /// combining registration (demoted below a quarter of it). 0 disables
  /// promotion; promotion also requires a queue-capable --lock mode.
  uint64_t combining_reg_threshold = 0;
};

/// Telemetry-driven hot-range refinement.
///
/// The tuner is commit-piggybacked: scan-abort attributions bump an atomic
/// pressure counter (NoteAbortPressure), and the first committer to observe
/// the counter past the threshold runs a pass under a try_lock — the hot
/// path never blocks on tuning. A pass reclaims retired tables whose grace
/// period elapsed, computes per-range contention deltas since the previous
/// pass, splits the hottest eligible range into slice-balanced children with
/// fresh rings, and merges one adjacent pair of cold split products so the
/// table shrinks back when skew moves on.
///
/// ForceTune is the contention-relief entry point (ContentionManager relief
/// hook): it blocks on the mutex and relaxes the split score so a bulk scan
/// about to escalate into the protected gate first gets a chance at a
/// structural fix.
///
/// All structural mutation (Split/Merge/ReclaimRetired, seen_* baselines) is
/// serialized by `mu_`; epoch grace (MinActive > created_epoch) gates every
/// structural change so one prev_rings generation provably suffices.
class RangeTuner {
 public:
  RangeTuner(const std::vector<std::unique_ptr<RangeManager>>* managers,
             EpochManager* epoch, RangeTunerOptions opts);

  RangeTuner(const RangeTuner&) = delete;
  RangeTuner& operator=(const RangeTuner&) = delete;

  /// Record `n` scan-abort attributions (ring_lost / scan_conflict).
  void NoteAbortPressure(uint32_t n) {
    pressure_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Commit-piggybacked entry: runs a pass iff pressure crossed the
  /// threshold and the tuner lock is free. Returns true if the pass changed
  /// any table. Must not be called while holding write locks or inside an
  /// epoch the pass would wait on (call after FinishTxn).
  bool MaybeTune();

  /// Blocking entry for contention relief: always runs a pass, with the
  /// split score relaxed to "any contention at all". Returns true if a
  /// table changed (the caller skips escalation for this attempt).
  bool ForceTune();

  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  uint64_t splits() const { return splits_.load(std::memory_order_relaxed); }
  uint64_t merges() const { return merges_.load(std::memory_order_relaxed); }
  uint64_t resizes() const { return resizes_.load(std::memory_order_relaxed); }
  const RangeTunerOptions& options() const { return opts_; }

  /// Per-table telemetry safe against concurrent structural passes: holds
  /// `mu_` across the reads, so no retired table (or ring) can be reclaimed
  /// and freed mid-read. For the live /vars endpoint, whose server thread
  /// does not participate in the workers' epoch protocol.
  std::vector<RangeTelemetry> TelemetryLocked(size_t top_n);

 private:
  /// One pass over all tables; requires `mu_` held.
  bool RunPass(uint64_t min_score);

  const std::vector<std::unique_ptr<RangeManager>>* managers_;
  EpochManager* epoch_;
  RangeTunerOptions opts_;
  /// Hot-reloadable split policy (knobs "tuner_pressure_threshold" /
  /// "tuner_min_split_score"), read instead of the opts_ fields on the
  /// commit-piggybacked MaybeTune path.
  std::atomic<uint64_t>* pressure_knob_;
  std::atomic<uint64_t>* split_score_knob_;

  std::atomic<uint64_t> pressure_{0};
  std::mutex mu_;
  /// Per-manager registrations accumulated toward the next merge evaluation
  /// (indexed like *managers_; guarded by mu_).
  std::vector<uint64_t> merge_eval_accum_;
  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> splits_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> resizes_{0};
};

}  // namespace rocc
