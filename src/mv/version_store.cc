#include "mv/version_store.h"

#include <cassert>
#include <cstring>

#include "common/fiber.h"
#include "common/timer.h"
#include "common/tsan.h"
#include "harness/knobs.h"
#include "index/index.h"
#include "obs/obs.h"
#include "storage/database.h"

namespace rocc {
namespace mv {

namespace {
/// Locked-row handshake: spin this many times against an in-flight committer
/// before yielding (fibers must yield or the committer never runs).
constexpr int kHandshakeSpinsPerYield = 64;
}  // namespace

VersionStore::VersionStore(GlobalClock* clock, EpochManager* epoch,
                           uint32_t num_threads, MvOptions options)
    : clock_(clock),
      epoch_(epoch),
      num_threads_(num_threads),
      options_(options),
      watermark_(clock, num_threads),
      snapshots_(num_threads),
      snapshot_acquired_ns_(num_threads) {
  for (auto& s : snapshots_) {
    s->store(CommitWatermark::kIdle, std::memory_order_relaxed);
  }
  for (auto& a : snapshot_acquired_ns_) {
    a->store(0, std::memory_order_relaxed);
  }
  ceiling_knob_ = KnobRegistry::Instance().Register("mv_live_bytes_ceiling",
                                                    options.max_live_bytes);
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; i++) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

// Row::versions pointers into the per-worker arenas must be severed before
// destruction (OccBase runs GcQuiesce in its destructor); nothing to do here
// beyond letting the arenas go.
VersionStore::~VersionStore() = default;

uint64_t VersionStore::AcquireSnapshot(uint32_t thread_id) {
  // Publish-then-revalidate. The published value pins pruning; the RETURNED
  // value is re-read after the publish so that any pruner that missed the
  // slot is ordered (by the monotone fold in SafeSnapshot) before this
  // second read and therefore used a floor <= the returned snapshot.
  const uint64_t pin = watermark_.SafeSnapshot();
  snapshots_[thread_id]->store(pin, std::memory_order_seq_cst);
  snapshot_acquired_ns_[thread_id]->store(NowNanos(),
                                          std::memory_order_relaxed);
  const uint64_t snap = watermark_.SafeSnapshot();  // >= pin (monotone)
  return snap;
}

void VersionStore::ReleaseSnapshot(uint32_t thread_id) {
  // Unconditional: also clears a kEvictedSnapshot sentinel, so a stale
  // eviction can never leak into the thread's next transaction.
  snapshot_acquired_ns_[thread_id]->store(0, std::memory_order_relaxed);
  snapshots_[thread_id]->store(CommitWatermark::kIdle,
                               std::memory_order_release);
}

uint64_t VersionStore::MinSnapshot() const {
  // SafeSnapshot FIRST, then the slots: a concurrent acquirer either shows
  // up in a slot here, or published after our fold position — in which case
  // its returned snapshot is >= this result (see AcquireSnapshot).
  uint64_t m = watermark_.SafeSnapshot();
  for (uint32_t i = 0; i < num_threads_; i++) {
    const uint64_t v = snapshots_[i]->load(std::memory_order_seq_cst);
    // kEvictedSnapshot pins nothing, same as kIdle: the victim will abort
    // rather than read, so the floor may pass its former snapshot.
    if (v != CommitWatermark::kIdle && v != kEvictedSnapshot && v < m) m = v;
  }
  return m;
}

uint64_t VersionStore::OldestSnapshotAgeNanos() const {
  uint64_t oldest = 0;
  for (uint32_t i = 0; i < num_threads_; i++) {
    const uint64_t v = snapshots_[i]->load(std::memory_order_relaxed);
    if (v == CommitWatermark::kIdle || v == kEvictedSnapshot) continue;
    const uint64_t t = snapshot_acquired_ns_[i]->load(std::memory_order_relaxed);
    if (t != 0 && (oldest == 0 || t < oldest)) oldest = t;
  }
  if (oldest == 0) return 0;
  const uint64_t now = NowNanos();
  return now > oldest ? now - oldest : 0;
}

bool VersionStore::EvictOldestSnapshot() {
  uint32_t victim = 0;
  uint64_t victim_snap = CommitWatermark::kIdle;
  for (uint32_t i = 0; i < num_threads_; i++) {
    const uint64_t v = snapshots_[i]->load(std::memory_order_seq_cst);
    if (v == CommitWatermark::kIdle || v == kEvictedSnapshot) continue;
    if (v < victim_snap) {
      victim_snap = v;
      victim = i;
    }
  }
  if (victim_snap == CommitWatermark::kIdle) return false;  // nothing pinned
  // CAS so a concurrent Release/Acquire by the owner wins: only the exact
  // observed pin is replaced. seq_cst: every prune whose floor passed
  // victim_snap is ordered after this store, so the victim's own
  // SnapshotEvicted() load — ordered after any pruned chain state it could
  // have observed — must see the sentinel.
  uint64_t expected = victim_snap;
  if (!snapshots_[victim]->compare_exchange_strong(
          expected, kEvictedSnapshot, std::memory_order_seq_cst,
          std::memory_order_seq_cst)) {
    return false;  // owner moved on; pressure is already relieved
  }
  snapshots_evicted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) {
    // Service ring, not the victim's worker ring: worker rings are
    // single-producer (owner thread only) and the evictor is not the victim.
    obs::ServiceEvent(obs::EventType::kSnapshotEvict, 0, NowNanos(), 0,
                      victim_snap, victim);
  }
  return true;
}

Version* VersionStore::AllocNode(Worker& w, uint32_t payload_size) {
  for (FreeBin& bin : w.free_bins) {
    if (bin.payload_size == payload_size && !bin.nodes.empty()) {
      Version* n = bin.nodes.back();
      bin.nodes.pop_back();
      return n;
    }
  }
  void* mem = w.arena.Allocate(Version::AllocSize(payload_size),
                               alignof(Version));
  return new (mem) Version();
}

void VersionStore::FreeNode(Worker& w, Version* node) {
  for (FreeBin& bin : w.free_bins) {
    if (bin.payload_size == node->payload_size) {
      bin.nodes.push_back(node);
      w.freed.fetch_add(1, std::memory_order_relaxed);
      w.freed_bytes.fetch_add(Version::AllocSize(node->payload_size),
                              std::memory_order_relaxed);
      return;
    }
  }
  w.free_bins.push_back({node->payload_size, {node}});
  w.freed.fetch_add(1, std::memory_order_relaxed);
  w.freed_bytes.fetch_add(Version::AllocSize(node->payload_size),
                          std::memory_order_relaxed);
}

uint32_t VersionStore::PruneLocked(Worker& w, Row* row, uint64_t upper,
                                   uint64_t floor) {
  Version* head = row->versions.load(std::memory_order_relaxed);
  uint32_t kept = 0;
  Version* last_kept = nullptr;
  Version* n = head;
  uint64_t bound = upper;  // upper end of n's interval [n.version, bound)
  while (n != nullptr && bound > floor) {
    kept++;
    last_kept = n;
    bound = n->version();
    n = n->next.load(std::memory_order_relaxed);
  }
  if (n == nullptr) return kept;  // the whole chain is still resolvable
  // n's interval [n.version, bound) has bound <= floor, so no active or
  // future snapshot (all >= floor) can resolve to n or anything older.
  // Unlink the suffix and retire it; the dropped nodes stay intact (readers
  // inside the grace period may still be walking them) until MinActive
  // passes the retire epoch.
  if (last_kept == nullptr) {
    row->versions.store(nullptr, std::memory_order_release);
  } else {
    last_kept->next.store(nullptr, std::memory_order_release);
  }
  const uint64_t retire_epoch = epoch_->Current();
  for (Version* d = n; d != nullptr;
       d = d->next.load(std::memory_order_relaxed)) {
    w.retired.Retire(d, retire_epoch);
    w.retired_count.fetch_add(1, std::memory_order_relaxed);
    w.retired_bytes.fetch_add(Version::AllocSize(d->payload_size),
                              std::memory_order_relaxed);
  }
  return kept;
}

void VersionStore::InstallPredecessor(uint32_t thread_id, Row* row,
                                      TxnStats* stats) {
  Worker& w = *workers_[thread_id];
  const uint64_t word = row->tid.load(std::memory_order_relaxed);
  assert(TidWord::IsLocked(word));
  const uint64_t stripped = word & ~TidWord::kLockBit;
  if (TidWord::IsAbsent(stripped) && TidWord::Version(stripped) == 0) {
    // Fresh insert placeholder: the row never existed, no pre-image.
    return;
  }
  const bool tombstone = TidWord::IsAbsent(stripped);
  const uint32_t payload_size = tombstone ? 0 : row->payload_size;
  Version* node = AllocNode(w, payload_size);
  node->tid_word = stripped;
  node->payload_size = payload_size;
  if (!tombstone) std::memcpy(node->Data(), row->Data(), payload_size);
  node->next.store(row->versions.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  row->versions.store(node, std::memory_order_release);

  const uint64_t alloc = Version::AllocSize(payload_size);
  w.installed.fetch_add(1, std::memory_order_relaxed);
  w.installed_bytes.fetch_add(alloc, std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->mv_versions_installed++;
    stats->mv_version_bytes_installed += alloc;
  }

  if (w.installs_until_refresh == 0) {
    // Prune-pressure backoff, piggybacked on the floor refresh so the hot
    // install path never sums per-worker counters: when live version bytes
    // cross the ceiling, evict the oldest pinned snapshot — the floor then
    // rises past it and the very prunes below reclaim its chains.
    const uint64_t ceiling = ceiling_knob_->load(std::memory_order_relaxed);
    if (ceiling != 0) {
      const MvTelemetry t = Telemetry();
      if (t.live_bytes() > ceiling) EvictOldestSnapshot();
    }
    w.floor = MinSnapshot();
    w.installs_until_refresh = options_.prune_refresh_interval;
  } else {
    w.installs_until_refresh--;
  }
  // The new head serves [stripped.version, upcoming-cts); the upcoming cts
  // is above every current snapshot (watermark argument), so the head is
  // never prunable here — kVersionMask stands in for the unknown bound.
  const uint32_t kept = PruneLocked(w, row, TidWord::kVersionMask, w.floor);
  if (stats != nullptr) stats->mv_chain_length.Record(kept);
}

SnapshotRead VersionStore::ReadChain(const Version* head, uint64_t snapshot,
                                     void* out, uint32_t payload_size,
                                     TxnStats* stats) const {
  if (stats != nullptr) stats->mv_chain_reads++;
  for (const Version* n = head; n != nullptr;
       n = n->next.load(std::memory_order_acquire)) {
    if (n->version() <= snapshot) {
      if (n->absent()) return SnapshotRead::kInvisible;
      // Rows are fixed-size today, so the node's captured payload and the
      // row's must agree; a future variable-size-row change must fail here
      // loudly instead of over-reading the arena.
      assert(n->payload_size == payload_size &&
             "chain node payload size disagrees with the row");
      // Node payloads are immutable from publish until reuse, and reuse
      // waits out the epoch grace period — a plain copy is race-free.
      std::memcpy(out, n->Data(), payload_size);
      return SnapshotRead::kChain;
    }
  }
  return SnapshotRead::kInvisible;  // the row did not exist at the snapshot
}

SnapshotRead VersionStore::ReadAtSnapshot(const Row* row, uint64_t snapshot,
                                          void* out, TxnStats* stats) const {
  int spins = 0;
  for (;;) {
    const uint64_t w = row->tid.load(std::memory_order_acquire);
    const uint64_t v = TidWord::Version(w);
    if (!TidWord::IsLocked(w)) {
      if (v > snapshot) {
        return ReadChain(row->versions.load(std::memory_order_acquire),
                         snapshot, out, row->payload_size, stats);
      }
      if (TidWord::IsAbsent(w)) return SnapshotRead::kInvisible;
      // The in-place payload IS the version at the snapshot; seqlock copy.
      TsanIgnoreReadsBegin();
      std::memcpy(out, row->Data(), row->payload_size);
      TsanIgnoreReadsEnd();
      std::atomic_thread_fence(std::memory_order_acquire);
      if (row->tid.load(std::memory_order_acquire) == w) {
        return SnapshotRead::kCurrent;
      }
      continue;  // superseded mid-copy; the pre-image is now on the chain
    }
    // Locked. The holder's commit timestamp is provably > snapshot
    // (CommitWatermark), so the answer is the row's pre-apply state.
    if (v > snapshot) {
      // Every version the snapshot could need is already chained (a node is
      // installed by the commit that SUPERSEDES it, and v was published
      // unlocked before this holder locked the row).
      return ReadChain(row->versions.load(std::memory_order_acquire),
                       snapshot, out, row->payload_size, stats);
    }
    if (TidWord::IsAbsent(w)) {
      // Insert placeholder (v == 0) or a deleted row being resurrected:
      // either way, absent at every timestamp <= v <= snapshot.
      return SnapshotRead::kInvisible;
    }
    // Live at v <= snapshot: the current payload is the answer, but the
    // holder may be overwriting it. Handshake with the install protocol:
    // the holder links the pre-image node (version == v) and fences BEFORE
    // its first payload write (PublishFence), so either we see that node —
    // immutable, safe to copy — or our copy finished before any payload
    // byte changed.
    const Version* head = row->versions.load(std::memory_order_acquire);
    if (head != nullptr && head->version() == v) {
      if (head->absent()) return SnapshotRead::kInvisible;
      assert(head->payload_size == row->payload_size &&
             "chain node payload size disagrees with the row");
      std::memcpy(out, head->Data(), row->payload_size);
      if (stats != nullptr) stats->mv_chain_reads++;
      return SnapshotRead::kChain;
    }
    TsanIgnoreReadsBegin();
    std::memcpy(out, row->Data(), row->payload_size);
    TsanIgnoreReadsEnd();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const Version* head2 = row->versions.load(std::memory_order_seq_cst);
    const bool installed = head2 != nullptr && head2->version() == v;
    if (row->tid.load(std::memory_order_acquire) == w && !installed) {
      return SnapshotRead::kCurrent;
    }
    // The holder advanced mid-copy (installed the pre-image or unlocked);
    // retry — bounded by the holder's progress. Yield so a fiber-scheduled
    // committer can actually make that progress.
    if (++spins >= kHandshakeSpinsPerYield) {
      spins = 0;
      CooperativeYield();
    } else {
      CpuRelax();
    }
  }
}

uint64_t VersionStore::ReclaimWorker(uint32_t thread_id, uint64_t min_active) {
  Worker& w = *workers_[thread_id];
  uint64_t freed = 0;
  w.retired.Reclaim(min_active, [&](Version* node) {
    FreeNode(w, node);
    freed++;
  });
  return freed;
}

uint64_t VersionStore::GcQuiesce(Database* db) {
  assert(!epoch_->AnyActive());
  const uint64_t floor = MinSnapshot();
  // Single-threaded pass; charge all GC work to worker 0's lists (owner-only
  // rules are moot while quiesced).
  Worker& w = *workers_[0];
  std::vector<uint64_t> dead_keys;
  for (uint32_t t = 0; t < db->NumTables(); t++) {
    OrderedIndex* idx = db->GetIndex(t);
    dead_keys.clear();
    idx->ScanFrom(0, [&](uint64_t key, Row* row) {
      if (!row->TryLock()) {
        // Quiesced, no transaction is in flight, so every row lock must be
        // free: a held lock here is a leaked latch, and skipping the row
        // also hides its (uncollected) chain from the leak oracle. Fail
        // loudly in debug; count and report in release so CI's
        // leaked-nodes assertion still trips.
        assert(false && "GcQuiesce: row lock held while quiesced");
        gc_locked_rows_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      const uint64_t word =
          row->tid.load(std::memory_order_relaxed) & ~TidWord::kLockBit;
      PruneLocked(w, row, TidWord::Version(word), floor);
      // Quiesced, floor >= every published version, so surviving chains are
      // empty; a tombstone row whose removal the MVCC commit path deferred
      // (snapshot completeness) can now leave the index for real.
      const bool dead = TidWord::IsAbsent(word) && TidWord::Version(word) > 0 &&
                        row->versions.load(std::memory_order_relaxed) == nullptr;
      row->Unlock();
      if (dead) dead_keys.push_back(key);
      return true;
    });
    for (uint64_t key : dead_keys) idx->Remove(key);
  }
  // Everyone is idle, so one TryAdvance moves the global epoch past every
  // retire epoch used above, and MinActive() (== the new global) releases
  // the whole backlog on every worker.
  epoch_->TryAdvance();
  const uint64_t min_active = epoch_->MinActive();
  for (uint32_t i = 0; i < num_threads_; i++) ReclaimWorker(i, min_active);
  return floor;
}

MvTelemetry VersionStore::Telemetry() const {
  MvTelemetry t;
  for (const auto& w : workers_) {
    t.installed += w->installed.load(std::memory_order_relaxed);
    t.installed_bytes += w->installed_bytes.load(std::memory_order_relaxed);
    t.retired += w->retired_count.load(std::memory_order_relaxed);
    t.retired_bytes += w->retired_bytes.load(std::memory_order_relaxed);
    t.freed += w->freed.load(std::memory_order_relaxed);
    t.freed_bytes += w->freed_bytes.load(std::memory_order_relaxed);
  }
  t.snapshots_evicted = snapshots_evicted_.load(std::memory_order_relaxed);
  t.gc_locked_rows = gc_locked_rows_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace mv
}  // namespace rocc
