#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/cacheline.h"
#include "harness/stats.h"
#include "mv/version.h"
#include "txn/clock.h"
#include "txn/epoch.h"

namespace rocc {

class Database;

namespace mv {

/// Tuning knobs for the version store.
struct MvOptions {
  /// A committing worker refreshes its cached prune floor (MinSnapshot) once
  /// per this many installs; between refreshes it prunes against the stale —
  /// and therefore conservative — floor. 0 means refresh on every install.
  uint32_t prune_refresh_interval = 32;
  /// Prune-pressure ceiling: when live version bytes (installed - freed)
  /// exceed this, the committer that notices evicts the OLDEST pinned
  /// snapshot so pruning can advance past it (the victim aborts with
  /// kSnapshotEvicted and retries on a fresh snapshot). 0 = unlimited —
  /// chains grow as long as the oldest snapshot is held. Adjustable at
  /// runtime via SetLiveBytesCeiling.
  uint64_t max_live_bytes = 0;
};

/// Aggregated live-memory telemetry (sum over workers). `installed - freed`
/// is the number of version nodes currently allocated: linked into a chain,
/// awaiting their grace period, or parked on a free list does not count as
/// freed until the node is actually reusable. The chain-leak check in CI
/// asserts live_nodes() returns to zero after GcQuiesce.
struct MvTelemetry {
  uint64_t installed = 0;
  uint64_t installed_bytes = 0;
  uint64_t retired = 0;        ///< unlinked by prune, grace period pending
  uint64_t retired_bytes = 0;
  uint64_t freed = 0;          ///< grace period passed; node reusable
  uint64_t freed_bytes = 0;
  uint64_t snapshots_evicted = 0;  ///< pinned snapshots evicted under pressure
  /// Rows GcQuiesce could not lock. Under quiesce every row lock must be
  /// free, so a nonzero count means a latch leaked (and the row's chain was
  /// not collected) — CI treats it like a chain leak.
  uint64_t gc_locked_rows = 0;

  uint64_t live_nodes() const { return installed - freed; }
  uint64_t live_bytes() const { return installed_bytes - freed_bytes; }
};

/// Outcome of a snapshot-timestamp read of one row.
enum class SnapshotRead : uint8_t {
  kCurrent,    ///< the row's in-place payload was the version at the snapshot
  kChain,      ///< resolved from a superseded version node
  kInvisible,  ///< the row did not exist (or was deleted) at the snapshot
};

/// Multi-version row store: per-row chains of superseded versions, a safe
/// snapshot-timestamp source, and epoch-based node reclamation (DESIGN.md
/// §12). The single-version OCC fast path is untouched — versions exist only
/// so READ-ONLY bulk scans can run at a frozen timestamp and never
/// validate-abort.
///
/// # Version layout
///
/// `Row::versions` heads a newest-first singly-linked chain. Each node
/// carries the full TID word it superseded (lock bit stripped), so node `n`
/// with successor-in-time version `u` (the previous node's version, or the
/// row's current version for the head) serves the half-open timestamp
/// interval [n.version, u). Delete pre-images are payload-less tombstone
/// markers (absent bit set). The row itself serves [row.version, +inf).
///
/// # Snapshot rule
///
/// A timestamp S is a safe snapshot iff every commit with cts <= S has fully
/// applied its writes and released its locks... except that full strictness
/// is unnecessary: it suffices that any STILL-RUNNING commit will publish
/// cts > S, which CommitWatermark guarantees (see its class comment). A
/// reader at S resolves each row to the newest version <= S; locked rows are
/// handled by the install handshake in ReadAtSnapshot (the in-flight writer's
/// cts is provably > S, so the pre-image is the right answer — the only
/// question is whether the in-place payload is still clean).
///
/// # Reclamation
///
/// Prune floor M = MinSnapshot() (<= every active and every future snapshot,
/// by the monotone-watermark argument in clock.h). A node whose interval's
/// upper bound is <= M can never be resolved again; the committer that
/// notices this (while holding the row lock) unlinks the suffix and retires
/// each node at the current epoch. The node's memory is recycled onto the
/// owning worker's free list once EpochManager::MinActive() passes the
/// retire epoch — the same grace-period argument the range-ring descriptors
/// use (epoch.h).
///
/// Thread model: Install/Reclaim/free lists are per-worker (owner-only);
/// chain reads are lock-free from any worker; GcQuiesce is single-threaded
/// and asserts quiescence.
class VersionStore {
 public:
  VersionStore(GlobalClock* clock, EpochManager* epoch, uint32_t num_threads,
               MvOptions options = {});
  ~VersionStore();

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  // --- Commit watermark (delegates to CommitWatermark; see clock.h) ---

  /// Publish intent-to-commit BEFORE drawing the commit timestamp.
  void BeginCommit(uint32_t thread_id) { watermark_.BeginCommit(thread_id); }

  /// Clear the slot AFTER all writes are applied and locks released.
  void EndCommit(uint32_t thread_id) { watermark_.EndCommit(thread_id); }

  // --- Snapshots ---

  /// Acquire a snapshot timestamp for `thread_id` and pin it against pruning
  /// until ReleaseSnapshot. Publish-then-revalidate: the returned value is a
  /// second SafeSnapshot() taken after the slot publish, which the monotone
  /// fold guarantees is >= the published value — so every pruner either sees
  /// the slot or computes a floor <= the returned snapshot (proof in
  /// DESIGN.md §12.3).
  uint64_t AcquireSnapshot(uint32_t thread_id);

  /// Unpin `thread_id`'s snapshot. Idempotent.
  void ReleaseSnapshot(uint32_t thread_id);

  /// Prune floor: no active (or future) snapshot is below this.
  uint64_t MinSnapshot() const;

  /// Slot sentinel meaning "this thread's pinned snapshot was evicted under
  /// prune pressure". Like kIdle it no longer pins the floor; unlike kIdle
  /// the OWNER can still observe it and knows to abort. Distinct from kIdle
  /// and above every real timestamp (timestamps fit kVersionMask).
  static constexpr uint64_t kEvictedSnapshot = CommitWatermark::kIdle - 1;

  /// Has `thread_id`'s pinned snapshot been evicted? The owner must check
  /// after every snapshot read and before the trivial read-only commit: a
  /// read that could have observed pruned-away state is ordered after the
  /// eviction (see EvictOldestSnapshot), so a txn that sees its slot intact
  /// here never consumed a wrongly-pruned chain.
  bool SnapshotEvicted(uint32_t thread_id) const {
    return snapshots_[thread_id]->load(std::memory_order_seq_cst) ==
           kEvictedSnapshot;
  }

  /// Runtime knob for MvOptions::max_live_bytes (0 = unlimited). The cell
  /// lives in the KnobRegistry ("mv_live_bytes_ceiling"), so POST /config
  /// and SIGHUP reloads reach the same value this setter does.
  void SetLiveBytesCeiling(uint64_t bytes) {
    ceiling_knob_->store(bytes, std::memory_order_release);
  }
  uint64_t LiveBytesCeiling() const {
    return ceiling_knob_->load(std::memory_order_relaxed);
  }

  /// Age of the oldest pinned snapshot in nanoseconds (0 when none is
  /// pinned). Telemetry only — racy by nature.
  uint64_t OldestSnapshotAgeNanos() const;

  // --- Commit-time version install ---

  /// Link the pre-image of `row` (which the caller holds LOCKED and has not
  /// yet overwritten) onto its version chain, then prune the chain against
  /// the cached floor. No-op for fresh insert placeholders (absent, version
  /// 0): there is no pre-image to preserve. A deleted row being resurrected
  /// installs a payload-less tombstone marker.
  ///
  /// Call once per distinct row per commit, before ANY payload byte of ANY
  /// row in the write set is modified, and issue PublishFence() between the
  /// last install and the first payload write (ReadAtSnapshot's locked-row
  /// handshake depends on that ordering).
  void InstallPredecessor(uint32_t thread_id, Row* row, TxnStats* stats);

  /// Writer-side half of the locked-row handshake: orders the install
  /// stores before the apply loop's payload writes.
  static void PublishFence() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  // --- Snapshot reads ---

  /// Resolve `row` at snapshot `snapshot` and copy the payload version into
  /// `out` (capacity >= row->payload_size) unless kInvisible. Never aborts;
  /// may spin briefly against an in-flight committer (yields to fibers).
  SnapshotRead ReadAtSnapshot(const Row* row, uint64_t snapshot, void* out,
                              TxnStats* stats) const;

  // --- Reclamation ---

  /// Owner-thread: recycle retired nodes whose grace period has passed
  /// (retire epoch < min_active) onto the worker's free list. Returns the
  /// number of nodes freed.
  uint64_t ReclaimWorker(uint32_t thread_id, uint64_t min_active);

  /// Single-threaded full GC: requires no thread be inside a transaction
  /// (asserts !epoch->AnyActive()). Prunes every chain against the current
  /// floor (which, quiesced, is >= every row version, so chains empty),
  /// physically unindexes tombstone rows whose removal the MVCC commit path
  /// deferred, advances the epoch, and drains every worker's retire list.
  /// Returns the floor used.
  uint64_t GcQuiesce(Database* db);

  /// Sum of per-worker counters; safe to call concurrently (gauge accuracy,
  /// not a barrier).
  MvTelemetry Telemetry() const;

  const MvOptions& options() const { return options_; }
  uint32_t num_threads() const { return num_threads_; }

 private:
  struct FreeBin {
    uint32_t payload_size;
    std::vector<Version*> nodes;
  };

  /// Per-worker allocation and reclamation state; owner-thread only except
  /// the telemetry counters (read by Telemetry()).
  struct alignas(kCacheLineSize) Worker {
    Arena arena{1 << 20};
    std::vector<FreeBin> free_bins;  ///< size-keyed free lists (few sizes)
    RetireList<Version> retired;
    uint64_t floor = 0;              ///< cached MinSnapshot for pruning
    uint32_t installs_until_refresh = 0;

    std::atomic<uint64_t> installed{0};
    std::atomic<uint64_t> installed_bytes{0};
    std::atomic<uint64_t> retired_count{0};
    std::atomic<uint64_t> retired_bytes{0};
    std::atomic<uint64_t> freed{0};
    std::atomic<uint64_t> freed_bytes{0};
  };

  Version* AllocNode(Worker& w, uint32_t payload_size);
  void FreeNode(Worker& w, Version* node);

  /// Evict the thread with the oldest (smallest) pinned snapshot by CASing
  /// its slot to kEvictedSnapshot. Returns true when a snapshot was evicted.
  /// Safety: a pruner can only compute a floor above the evicted value S
  /// after observing the slot no longer holds S; the victim's later
  /// SnapshotEvicted() check is ordered after any chain state the pruner
  /// unlinked (coherence on the slot through the unlink's release store), so
  /// the victim always notices before committing (DESIGN.md §14.3).
  bool EvictOldestSnapshot();

  /// Unlink every node at/below the floor from `row`'s chain (caller holds
  /// the row lock; `upper` is the version bound of the newest chain node)
  /// and retire the suffix on worker `w`. Returns the surviving chain length.
  uint32_t PruneLocked(Worker& w, Row* row, uint64_t upper, uint64_t floor);

  SnapshotRead ReadChain(const Version* head, uint64_t snapshot, void* out,
                         uint32_t payload_size, TxnStats* stats) const;

  GlobalClock* const clock_;
  EpochManager* const epoch_;
  const uint32_t num_threads_;
  const MvOptions options_;
  CommitWatermark watermark_;
  /// Active snapshot per thread (CommitWatermark::kIdle when none,
  /// kEvictedSnapshot after a prune-pressure eviction).
  std::vector<CachePadded<std::atomic<uint64_t>>> snapshots_;
  /// Wall-clock of each thread's AcquireSnapshot (0 when idle); telemetry.
  std::vector<CachePadded<std::atomic<uint64_t>>> snapshot_acquired_ns_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Prune ceiling cell, owned by the KnobRegistry ("mv_live_bytes_ceiling").
  std::atomic<uint64_t>* ceiling_knob_;
  std::atomic<uint64_t> snapshots_evicted_{0};
  std::atomic<uint64_t> gc_locked_rows_{0};
};

}  // namespace mv
}  // namespace rocc
