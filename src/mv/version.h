#pragma once

#include <atomic>
#include <cstdint>

#include "storage/row.h"

namespace rocc {
namespace mv {

/// One superseded row state, hanging off Row::versions newest-first.
///
/// A node is immutable after publication except for `next`, which pruning may
/// truncate to nullptr. `tid_word` is the full TID word (version + absent
/// bit, lock bit stripped) the row carried while this payload was current, so
/// the node serves exactly the snapshot interval
///
///     [Version(tid_word), Version(successor))
///
/// where the successor is the next-newer node, or the row's current version
/// for the chain head. Tombstone states (absent bit set) are preserved as
/// payload-less markers so a snapshot between a delete and a later
/// re-insert correctly sees the key as absent.
///
/// Nodes are allocated from a per-worker arena, recycled through size-keyed
/// free lists, and freed only after an epoch grace period (see VersionStore).
struct Version {
  std::atomic<Version*> next{nullptr};  ///< next-older version, nullptr = end
  uint64_t tid_word = 0;     ///< version + absent bit of the superseded state
  uint32_t payload_size = 0; ///< payload capacity (free-list key)
  uint32_t reserved = 0;
  // Payload bytes follow the struct inline (undefined for tombstone nodes).

  char* Data() { return reinterpret_cast<char*>(this + 1); }
  const char* Data() const { return reinterpret_cast<const char*>(this + 1); }

  bool absent() const { return TidWord::IsAbsent(tid_word); }
  uint64_t version() const { return TidWord::Version(tid_word); }

  static size_t AllocSize(uint32_t payload_size) {
    return sizeof(Version) + payload_size;
  }
};

}  // namespace mv
}  // namespace rocc
