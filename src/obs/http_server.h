#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace rocc {
namespace obs {

/// Configuration for the in-process observability endpoint. Off by default:
/// a process that never calls Start() (port 0 in the bench scaffolding)
/// creates no socket, no thread, and pays nothing.
struct HttpServerOptions {
  /// TCP port to listen on; 0 lets the kernel pick one (tests read it back
  /// via port()).
  uint16_t port = 0;
  /// Bind address. Loopback by default — this is an operator plane, not a
  /// public service.
  std::string bind_address = "127.0.0.1";
  /// Upper bound for the /trace?ms=N capture window.
  uint32_t max_trace_ms = 5000;
};

/// Minimal single-threaded HTTP/1.1 observability server (DESIGN.md §16.5).
///
/// One service thread multiplexes a listen socket and a stop pipe through
/// epoll and handles requests strictly sequentially with Connection: close —
/// an operator plane serving a curl or a Prometheus scrape every few
/// seconds, not a web server. Nothing here touches worker hot paths: reads
/// go through the same racy-by-design ring cursors and relaxed counter loads
/// the file streamer uses, and writes go through KnobRegistry's release
/// stores.
///
/// Routes:
///   GET  /healthz     -> 200 "ok" (liveness; no providers needed)
///   GET  /metrics     -> Prometheus text exposition (metrics provider)
///   GET  /vars        -> JSON counters + per-range telemetry (vars provider)
///   GET  /trace?ms=N  -> Chrome trace JSON of the next N milliseconds of
///                        ring traffic (global recorder; blocks the server
///                        thread for N ms, clamped to max_trace_ms)
///   POST /config      -> hot knob updates, body lines "name=value";
///                        unknown names fail the whole request with 400
///   GET  /config      -> current knob values as JSON
///
/// The metrics/vars providers are plain std::functions so the server has no
/// compile-time dependency on the streamer or the runner; routes without a
/// provider answer 503.
class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Install the GET /metrics body source (e.g. PrometheusStreamer::
  /// CollectString). Must be set before Start().
  void SetMetricsProvider(std::function<std::string()> fn) {
    metrics_fn_ = std::move(fn);
  }

  /// Install the GET /vars body source (JSON document). Must be set before
  /// Start().
  void SetVarsProvider(std::function<std::string()> fn) {
    vars_fn_ = std::move(fn);
  }

  /// Bind, listen, and launch the service thread. Returns false (with a
  /// stderr note) when the socket cannot be bound.
  bool Start();

  /// Stop and join the service thread; close the socket. Idempotent.
  void Stop();

  /// The port actually bound (resolves port 0), or 0 before Start().
  uint16_t port() const { return bound_port_; }

  /// Requests served (any route, including errors); test visibility.
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  void HandleConnection(int fd);

  HttpServerOptions options_;
  std::function<std::string()> metrics_fn_;
  std::function<std::string()> vars_fn_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  uint16_t bound_port_ = 0;
  std::atomic<uint64_t> requests_{0};
  bool running_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace rocc
