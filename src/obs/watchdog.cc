#include "obs/watchdog.h"

#include <algorithm>
#include <chrono>

#include "common/timer.h"
#include "harness/knobs.h"
#include "obs/chrome_trace.h"
#include "obs/obs.h"

namespace rocc {
namespace obs {

StallWatchdog::StallWatchdog(WatchdogOptions options) : options_(options) {
  period_knob_ = KnobRegistry::Instance().Register("watchdog_period_ms",
                                                   options_.period_ms);
  threshold_knob_ = KnobRegistry::Instance().Register(
      "watchdog_stall_ms", options_.stall_threshold_ms);
}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Run(); });
}

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

uint32_t StallWatchdog::PollOnce(uint64_t now_ns) {
  FlightRecorder* r = Recorder();
  if (r == nullptr) return 0;
  const uint64_t threshold_ms = threshold_knob_->load(std::memory_order_relaxed);
  if (threshold_ms == 0) return 0;
  const uint64_t threshold_ns = threshold_ms * 1000000ULL;
  if (last_reported_.size() < r->num_workers()) {
    last_reported_.resize(r->num_workers(), 0);
  }
  const uint64_t now_masked = now_ns & FlightRecorder::kHeartbeatTsMask;
  uint32_t fired = 0;
  for (uint32_t tid = 0; tid < r->num_workers(); tid++) {
    const uint64_t word = r->HeartbeatWord(tid);
    if (word == 0) {
      last_reported_[tid] = 0;  // idle: re-arm for the next dwell
      continue;
    }
    const uint32_t phase_p1 = FlightRecorder::HeartbeatPhasePlusOne(word);
    const uint64_t entered = FlightRecorder::HeartbeatTs(word);
    // The heartbeat carries the low 56 bits of the clock (~2.3 years); a
    // "future" timestamp means a wrap or a store racing our read — skip.
    if (now_masked <= entered) continue;
    const uint64_t stall_ns = now_masked - entered;
    if (stall_ns < threshold_ns) continue;
    if (last_reported_[tid] == word) continue;  // this dwell already reported
    last_reported_[tid] = word;
    const uint64_t stall_ms = stall_ns / 1000000ULL;
    r->EmitService(EventType::kStall, static_cast<uint8_t>(phase_p1 - 1),
                   now_ns, stall_ns, tid,
                   static_cast<uint32_t>(std::min<uint64_t>(stall_ms, ~0u)));
    stalls_.fetch_add(1, std::memory_order_relaxed);
    fired++;
  }
  return fired;
}

void StallWatchdog::Run() {
  RegisterSignalDumpDrainer();
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    const uint64_t period_ms =
        std::max<uint64_t>(1, period_knob_->load(std::memory_order_relaxed));
    cv_.wait_for(lk, std::chrono::milliseconds(period_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lk.unlock();
    KnobRegistry::Instance().DrainPendingReload();
    DrainPendingSignalDump();
    PollOnce(NowNanos());
    lk.lock();
  }
  UnregisterSignalDumpDrainer();
}

}  // namespace obs
}  // namespace rocc
