#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace rocc {
namespace obs {

/// Stall-watchdog configuration. Both values seed hot-reloadable knobs
/// ("watchdog_period_ms", "watchdog_stall_ms") so an operator can tighten
/// the threshold on a live process via POST /config or SIGHUP.
struct WatchdogOptions {
  /// Heartbeat sampling period.
  uint32_t period_ms = 100;
  /// A worker parked in one phase longer than this is reported. 0 disables
  /// detection (the thread still drains knob reloads and signal dumps).
  uint32_t stall_threshold_ms = 1000;
};

/// Samples the per-worker heartbeat words published by the commit path
/// (FlightRecorder::SetHeartbeat, DESIGN.md §16.3) and reports workers stuck
/// in one phase past the threshold: a kStall service event (detail = phase,
/// a = worker id, b = stall millis) plus a monotonic counter surfaced via
/// /metrics and /vars.
///
/// Detection is edge-triggered per dwell: one report per (worker, heartbeat
/// word), so a worker permanently wedged in kLogWait produces one event, not
/// one per period — the counter is "distinct stalls observed", directly
/// assertable as 0 in clean CI runs.
///
/// The watchdog thread doubles as the process's service drainer: each tick
/// it applies pending SIGHUP knob reloads (KnobRegistry::DrainPendingReload)
/// and pending SIGUSR1 trace dumps (DrainPendingSignalDump), keeping both
/// signal handlers down to a single flag store while it runs.
///
/// PollOnce is public so tests can drive detection deterministically with a
/// synthetic clock, no thread or sleeps involved.
class StallWatchdog {
 public:
  explicit StallWatchdog(WatchdogOptions options);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Launch the sampling thread (idempotent).
  void Start();

  /// Stop and join the sampling thread (idempotent; called by the dtor).
  void Stop();

  /// One detection pass against the CURRENT global recorder at time
  /// `now_ns` (NowNanos clock). Returns the number of stalls newly
  /// reported. Not thread-safe against the running watchdog thread — call
  /// either from tests (no Start) or from the thread itself.
  uint32_t PollOnce(uint64_t now_ns);

  /// Distinct stalls reported since construction.
  uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void Run();

  WatchdogOptions options_;
  // Hot-reloadable knob cells (KnobRegistry-owned, process-lifetime).
  std::atomic<uint64_t>* period_knob_;
  std::atomic<uint64_t>* threshold_knob_;

  std::atomic<uint64_t> stalls_{0};
  /// Last heartbeat word reported per worker (poll-context only).
  std::vector<uint64_t> last_reported_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace rocc
