#pragma once

#include <string>

#include "obs/obs.h"

namespace rocc {
namespace obs {

/// Write every recorded event as Chrome trace-event JSON, loadable in
/// Perfetto (ui.perfetto.dev) or chrome://tracing. Phase spans become "X"
/// (complete) events on their worker's track; txn begin/commit/abort and the
/// control-plane events become "i" (instant) events with their payload in
/// args. Fiber-mode workers map 1:1 onto synthetic tids (the worker id), so
/// 40 fibers on one OS thread render as 40 parallel tracks; the service ring
/// renders as a separate "control" track.
///
/// The writer uses only open/write + stack buffers (no allocation, no stdio
/// locks), so it is safe enough to call from the SIGUSR1 handler installed by
/// InstallSignalDump while workers are still running: a racing ring append
/// can tear at most the event being overwritten, never the JSON structure.
///
/// Returns false when the file cannot be opened or a write fails.
bool WriteChromeTrace(const FlightRecorder& recorder, const char* path);

/// Install a SIGUSR1 handler that dumps the current global recorder to
/// `path` (dump-on-signal; pair with the dump-on-exit done by the bench
/// scaffolding). The path is copied into static storage; a second call
/// replaces it.
void InstallSignalDump(const std::string& path);

}  // namespace obs
}  // namespace rocc
