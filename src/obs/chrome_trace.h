#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace rocc {
namespace obs {

/// Write every recorded event as Chrome trace-event JSON, loadable in
/// Perfetto (ui.perfetto.dev) or chrome://tracing. Phase spans become "X"
/// (complete) events on their worker's track; txn begin/commit/abort and the
/// control-plane events become "i" (instant) events with their payload in
/// args. Fiber-mode workers map 1:1 onto synthetic tids (the worker id), so
/// 40 fibers on one OS thread render as 40 parallel tracks; the service ring
/// renders as a separate "control" track.
///
/// The writer uses only open/write + stack buffers — no allocation, no stdio
/// locks, and (since the §16 audit) integer-only formatting, so no
/// locale/floating-point machinery either — making it safe to call from the
/// SIGUSR1 handler installed by InstallSignalDump while workers are still
/// running: a racing ring append can tear at most the event being
/// overwritten, never the JSON structure.
///
/// Returns false when the file cannot be opened or a write fails.
bool WriteChromeTrace(const FlightRecorder& recorder, const char* path);

/// Render the events with per-ring sequence >= from_cursors[i] as Chrome
/// trace JSON appended to *out. Cursor i covers worker ring i; the entry at
/// index num_workers() (when present) covers the service ring. This is the
/// bounded capture window behind GET /trace?ms=N: snapshot the ring heads,
/// wait, render what arrived. Allocates (std::string) — NOT signal-safe.
void RenderChromeTraceWindow(const FlightRecorder& recorder,
                             const std::vector<uint64_t>& from_cursors,
                             std::string* out);

/// Install a SIGUSR1 handler that dumps the current global recorder to
/// `path` (dump-on-signal; pair with the dump-on-exit done by the bench
/// scaffolding). The path is copied into static storage; a second call
/// replaces it.
///
/// When a drainer thread is registered (see below) the handler only latches
/// a flag — the fully conservative async-signal-safe path — and the drainer
/// performs the dump from ordinary thread context. Without a drainer the
/// handler calls WriteChromeTrace directly (best effort, still
/// allocation-free).
void InstallSignalDump(const std::string& path);

/// A service thread (stall watchdog, Prometheus streamer) announces it will
/// poll DrainPendingSignalDump(); while at least one drainer is registered,
/// SIGUSR1 only sets a flag. Unregister on thread exit.
void RegisterSignalDumpDrainer();
void UnregisterSignalDumpDrainer();

/// Serve a pending SIGUSR1 dump request, if any; returns true when a dump
/// was written. Called from drainer threads, never from a handler.
bool DrainPendingSignalDump();

}  // namespace obs
}  // namespace rocc
