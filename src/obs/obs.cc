#include "obs/obs.h"

#include "harness/knobs.h"

namespace rocc {
namespace obs {

namespace internal {
std::atomic<FlightRecorder*> g_recorder{nullptr};
}  // namespace internal

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kExecute: return "execute";
    case Phase::kValidate: return "validate";
    case Phase::kWriteApply: return "write_apply";
    case Phase::kLogWait: return "log_wait";
    case Phase::kBackoff: return "backoff";
    case Phase::kGateWait: return "gate_wait";
  }
  return "unknown";
}

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kTxnBegin: return "txn_begin";
    case EventType::kTxnCommit: return "txn_commit";
    case EventType::kTxnAbort: return "txn_abort";
    case EventType::kSpan: return "span";
    case EventType::kRangePublish: return "range_publish";
    case EventType::kRangeSplit: return "range_split";
    case EventType::kRangeMerge: return "range_merge";
    case EventType::kWalFlush: return "wal_flush";
    case EventType::kGateEnter: return "gate_enter";
    case EventType::kGateExit: return "gate_exit";
    case EventType::kVersionInstall: return "version_install";
    case EventType::kVersionGc: return "version_gc";
    case EventType::kSnapshotScan: return "snapshot_scan";
    case EventType::kSnapshotEvict: return "snapshot_evict";
    case EventType::kRingResize: return "ring_resize";
    case EventType::kStall: return "stall";
    case EventType::kSloViolation: return "slo_violation";
  }
  return "unknown";
}

namespace {
uint64_t RoundUpPow2(uint64_t v) {
  if (v < 2) return 2;
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

void TraceRing::Init(uint32_t capacity) {
  if (events_.load(std::memory_order_relaxed) != nullptr) return;
  const uint64_t cap = RoundUpPow2(capacity);
  TraceEvent* slots = new TraceEvent[cap]();
  mask_ = cap - 1;
  // Release: a concurrent reader (signal dump) that sees the pointer also
  // sees the mask and zeroed slots.
  events_.store(slots, std::memory_order_release);
}

void TraceRing::Snapshot(std::vector<TraceEvent>* out) const {
  ForEach([out](const TraceEvent& e) { out->push_back(e); });
}

FlightRecorder::FlightRecorder(ObsOptions options)
    : options_(options), num_workers_(options.max_workers) {
  workers_ = std::make_unique<CachePadded<TraceRing>[]>(num_workers_);
  heartbeats_ =
      std::make_unique<CachePadded<std::atomic<uint64_t>>[]>(num_workers_);
  for (uint32_t i = 0; i < num_workers_; i++) {
    heartbeats_[i].value.store(0, std::memory_order_relaxed);
  }
  // Hot-reloadable knobs: the constructor's configured values arm the cells;
  // POST /config and SIGHUP re-point them mid-run.
  sample_knob_ = KnobRegistry::Instance().Register("obs_sample_period",
                                                   options_.sample_period);
  slo_knob_ = KnobRegistry::Instance().Register("obs_slo_us", options_.slo_us);
  // The service ring is shared by rare control-plane emitters (tuner passes,
  // the WAL flusher); allocate it eagerly so EmitService never races an Init.
  service_.Init(options_.ring_capacity);
}

bool FlightRecorder::BeginTxn(uint32_t tid, uint64_t ts_ns, uint64_t txn_id) {
  if (tid >= num_workers_) return false;
  TraceRing& ring = workers_[tid].value;
  if (!ring.initialized()) ring.Init(options_.ring_capacity);
  // The attempt enters its execute phase now; the caller's Begin timestamp
  // doubles as the heartbeat entry time (no extra clock read).
  heartbeats_[tid].value.store(PackHeartbeat(Phase::kExecute, ts_ns),
                               std::memory_order_relaxed);
  const uint64_t period = sample_knob_->load(std::memory_order_relaxed);
  if (period == 0) {
    ring.sampled = false;
    return false;
  }
  if (--ring.sample_countdown == 0 || ring.sample_countdown > period) {
    ring.sample_countdown = period;
    ring.sampled = true;
    ring.Push({ts_ns, 0, txn_id, 0, static_cast<uint16_t>(tid),
               static_cast<uint8_t>(EventType::kTxnBegin), 0});
    return true;
  }
  ring.sampled = false;
  return false;
}

void FlightRecorder::EmitService(EventType type, uint8_t detail, uint64_t ts_ns,
                                 uint64_t dur_ns, uint64_t a, uint32_t b) {
  SpinLatchGuard g(service_latch_);
  service_.Push({ts_ns, dur_ns, a, b, kServiceTid, static_cast<uint8_t>(type),
                 detail});
}

void FlightRecorder::SnapshotAll(std::vector<TraceEvent>* out) const {
  for (uint32_t i = 0; i < num_workers_; i++) {
    workers_[i].value.Snapshot(out);
  }
  service_.Snapshot(out);
}

uint64_t FlightRecorder::TotalEvents() const {
  uint64_t total = service_.head();
  for (uint32_t i = 0; i < num_workers_; i++) total += workers_[i].value.head();
  return total;
}

void FlightRecorder::ResetRings() {
  for (uint32_t i = 0; i < num_workers_; i++) workers_[i].value.Reset();
  service_.Reset();
}

FlightRecorder* SetRecorder(FlightRecorder* recorder) {
  return internal::g_recorder.exchange(recorder, std::memory_order_acq_rel);
}

}  // namespace obs
}  // namespace rocc
