#include "obs/chrome_trace.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "harness/stats.h"

namespace rocc {
namespace obs {

namespace {

/// Buffered fd writer built on open/write + stack buffers only, so the
/// SIGUSR1 dump path performs no allocation and takes no stdio locks.
class FdWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}
  ~FdWriter() { Flush(); }

  void Append(const char* data, size_t n) {
    if (!ok_) return;
    if (len_ + n > sizeof(buf_)) Flush();
    if (n > sizeof(buf_)) {
      WriteAll(data, n);  // oversized chunk: bypass the buffer
      return;
    }
    std::memcpy(buf_ + len_, data, n);
    len_ += n;
  }

  void Str(const char* s) { Append(s, std::strlen(s)); }

  void Printf(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char tmp[512];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(tmp, sizeof(tmp), fmt, ap);
    va_end(ap);
    if (n > 0) Append(tmp, std::min<size_t>(static_cast<size_t>(n), sizeof(tmp) - 1));
  }

  void Flush() {
    if (len_ > 0) WriteAll(buf_, len_);
    len_ = 0;
  }

  bool ok() const { return ok_; }

 private:
  void WriteAll(const char* data, size_t n) {
    while (n > 0 && ok_) {
      const ssize_t w = ::write(fd_, data, n);
      if (w <= 0) {
        ok_ = false;
        return;
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
  }

  int fd_;
  size_t len_ = 0;
  bool ok_ = true;
  char buf_[1 << 16];
};

void EmitEvent(FdWriter& w, const TraceEvent& e, uint64_t base_ns, bool* first) {
  const double ts_us = static_cast<double>(e.ts_ns - base_ns) / 1e3;
  const unsigned tid = e.tid;
  if (!*first) w.Str(",\n");
  *first = false;
  switch (static_cast<EventType>(e.type)) {
    case EventType::kSpan:
      w.Printf(
          "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
          "\"cat\":\"phase\",\"ts\":%.3f,\"dur\":%.3f,"
          "\"args\":{\"txn\":%llu}}",
          tid, PhaseName(static_cast<Phase>(e.detail)), ts_us,
          static_cast<double>(e.dur_ns) / 1e3,
          static_cast<unsigned long long>(e.a));
      break;
    case EventType::kTxnBegin:
    case EventType::kTxnCommit:
      w.Printf(
          "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
          "\"cat\":\"txn\",\"ts\":%.3f,\"args\":{\"txn\":%llu,\"scan\":%u}}",
          tid, EventTypeName(static_cast<EventType>(e.type)), ts_us,
          static_cast<unsigned long long>(e.a), e.detail);
      break;
    case EventType::kTxnAbort:
      // The structured cause plus the conflicting range id (when a scan
      // validation attributed one) ride in args for Perfetto queries.
      if (e.b == kNoRange) {
        w.Printf(
            "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,"
            "\"name\":\"abort\",\"cat\":\"txn\",\"ts\":%.3f,"
            "\"args\":{\"txn\":%llu,\"reason\":\"%s\"}}",
            tid, ts_us, static_cast<unsigned long long>(e.a),
            AbortReasonName(static_cast<AbortReason>(e.detail)));
      } else {
        w.Printf(
            "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,"
            "\"name\":\"abort\",\"cat\":\"txn\",\"ts\":%.3f,"
            "\"args\":{\"txn\":%llu,\"reason\":\"%s\",\"range\":%u}}",
            tid, ts_us, static_cast<unsigned long long>(e.a),
            AbortReasonName(static_cast<AbortReason>(e.detail)), e.b);
      }
      break;
    case EventType::kWalFlush:
      w.Printf(
          "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"wal_flush\","
          "\"cat\":\"log\",\"ts\":%.3f,\"dur\":%.3f,"
          "\"args\":{\"bytes\":%llu,\"epoch\":%u}}",
          tid, ts_us, static_cast<double>(e.dur_ns) / 1e3,
          static_cast<unsigned long long>(e.a), e.b);
      break;
    case EventType::kSnapshotScan:
      w.Printf(
          "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"snapshot_scan\","
          "\"cat\":\"mv\",\"ts\":%.3f,\"dur\":%.3f,"
          "\"args\":{\"records\":%llu,\"chain_reads\":%u}}",
          tid, ts_us, static_cast<double>(e.dur_ns) / 1e3,
          static_cast<unsigned long long>(e.a), e.b);
      break;
    case EventType::kVersionInstall:
    case EventType::kVersionGc:
    case EventType::kSnapshotEvict:
      w.Printf(
          "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
          "\"cat\":\"mv\",\"ts\":%.3f,\"args\":{\"a\":%llu,\"b\":%u}}",
          tid, EventTypeName(static_cast<EventType>(e.type)), ts_us,
          static_cast<unsigned long long>(e.a), e.b);
      break;
    case EventType::kRangePublish:
    case EventType::kRangeSplit:
    case EventType::kRangeMerge:
    case EventType::kGateEnter:
    case EventType::kGateExit:
    default:
      w.Printf(
          "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
          "\"cat\":\"control\",\"ts\":%.3f,\"args\":{\"a\":%llu,\"b\":%u}}",
          tid, EventTypeName(static_cast<EventType>(e.type)), ts_us,
          static_cast<unsigned long long>(e.a), e.b);
      break;
  }
}

// SIGUSR1 dump target; fixed storage so the handler never allocates.
char g_signal_dump_path[512] = {0};

void SignalDumpHandler(int) {
  FlightRecorder* r = Recorder();
  if (r == nullptr || g_signal_dump_path[0] == '\0') return;
  WriteChromeTrace(*r, g_signal_dump_path);
}

}  // namespace

bool WriteChromeTrace(const FlightRecorder& recorder, const char* path) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  FdWriter w(fd);

  // Pass 1: earliest timestamp, so exported times start near zero.
  uint64_t base_ns = ~0ULL;
  recorder.ForEachEvent([&](const TraceEvent& e) {
    if (e.ts_ns != 0 && e.ts_ns < base_ns) base_ns = e.ts_ns;
  });
  if (base_ns == ~0ULL) base_ns = 0;

  w.Str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
  bool first = true;
  // Track-naming metadata: one row per worker ring that saw events, plus the
  // control-plane track. Under the fiber runner, worker ids are fiber ids —
  // this is exactly the synthetic-tid mapping that makes 40 fibers on one OS
  // thread render as 40 parallel tracks.
  for (uint32_t tid = 0; tid < recorder.num_workers(); tid++) {
    if (recorder.worker_ring(tid).head() == 0) continue;
    if (!first) w.Str(",\n");
    first = false;
    w.Printf(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"worker %u\"}}",
        tid, tid);
  }
  if (recorder.service_ring().head() != 0) {
    if (!first) w.Str(",\n");
    first = false;
    w.Printf(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"control\"}}",
        static_cast<unsigned>(FlightRecorder::kServiceTid));
  }
  // Pass 2: the events. Perfetto does not require global timestamp order.
  recorder.ForEachEvent(
      [&](const TraceEvent& e) { EmitEvent(w, e, base_ns, &first); });
  w.Str("\n]}\n");
  w.Flush();
  const bool ok = w.ok();
  ::close(fd);
  return ok;
}

void InstallSignalDump(const std::string& path) {
  std::snprintf(g_signal_dump_path, sizeof(g_signal_dump_path), "%s",
                path.c_str());
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SignalDumpHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGUSR1, &sa, nullptr);
}

}  // namespace obs
}  // namespace rocc
