#include "obs/chrome_trace.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "harness/stats.h"

namespace rocc {
namespace obs {

namespace {

/// Buffered fd writer built on open/write + stack buffers only, so the
/// SIGUSR1 dump path performs no allocation and takes no stdio locks.
class FdWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}
  ~FdWriter() { Flush(); }

  void Append(const char* data, size_t n) {
    if (!ok_) return;
    if (len_ + n > sizeof(buf_)) Flush();
    if (n > sizeof(buf_)) {
      WriteAll(data, n);  // oversized chunk: bypass the buffer
      return;
    }
    std::memcpy(buf_ + len_, data, n);
    len_ += n;
  }

  void Flush() {
    if (len_ > 0) WriteAll(buf_, len_);
    len_ = 0;
  }

  bool ok() const { return ok_; }

 private:
  void WriteAll(const char* data, size_t n) {
    while (n > 0 && ok_) {
      const ssize_t w = ::write(fd_, data, n);
      if (w <= 0) {
        ok_ = false;
        return;
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
  }

  int fd_;
  size_t len_ = 0;
  bool ok_ = true;
  char buf_[1 << 16];
};

/// std::string writer with the same surface as FdWriter, for the HTTP
/// /trace endpoint (ordinary thread context — allocation is fine there).
class StringWriter {
 public:
  explicit StringWriter(std::string* out) : out_(out) {}
  void Append(const char* data, size_t n) { out_->append(data, n); }
  bool ok() const { return true; }

 private:
  std::string* out_;
};

template <typename W>
void Str(W& w, const char* s) {
  w.Append(s, std::strlen(s));
}

/// printf into a stack buffer, then hand to the writer. Every format string
/// in this file uses only %s/%u/%llu conversions: vsnprintf floating-point
/// conversion can malloc in some libc implementations (arbitrary-precision
/// digit generation), which would break the SIGUSR1 path, so timestamps are
/// pre-split into integer microseconds + a 3-digit nanosecond remainder and
/// printed as "%llu.%03llu" instead of "%.3f".
template <typename W>
__attribute__((format(printf, 2, 3))) void Printf(W& w, const char* fmt, ...) {
  char tmp[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(tmp, sizeof(tmp), fmt, ap);
  va_end(ap);
  if (n > 0) w.Append(tmp, std::min<size_t>(static_cast<size_t>(n), sizeof(tmp) - 1));
}

using ull = unsigned long long;

/// Microsecond part of a nanosecond delta, for "%llu.%03llu" rendering.
constexpr ull UsWhole(uint64_t ns) { return static_cast<ull>(ns / 1000); }
constexpr ull UsFrac(uint64_t ns) { return static_cast<ull>(ns % 1000); }

template <typename W>
void EmitEvent(W& w, const TraceEvent& e, uint64_t base_ns, bool* first) {
  const uint64_t rel_ns = e.ts_ns >= base_ns ? e.ts_ns - base_ns : 0;
  const unsigned tid = e.tid;
  if (!*first) Str(w, ",\n");
  *first = false;
  switch (static_cast<EventType>(e.type)) {
    case EventType::kSpan:
      if ((e.detail & kOutlierFlag) != 0) {
        // Retroactively force-emitted because the attempt blew the SLO while
        // unsampled (§16.2); flagged so a Perfetto query can separate forced
        // outlier spans from the 1/N-sampled population.
        Printf(w,
               "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
               "\"cat\":\"phase\",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,"
               "\"args\":{\"txn\":%llu,\"outlier\":1}}",
               tid,
               PhaseName(static_cast<Phase>(e.detail &
                                            static_cast<uint8_t>(~kOutlierFlag))),
               UsWhole(rel_ns), UsFrac(rel_ns), UsWhole(e.dur_ns),
               UsFrac(e.dur_ns), static_cast<ull>(e.a));
      } else {
        Printf(w,
               "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
               "\"cat\":\"phase\",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,"
               "\"args\":{\"txn\":%llu}}",
               tid, PhaseName(static_cast<Phase>(e.detail)), UsWhole(rel_ns),
               UsFrac(rel_ns), UsWhole(e.dur_ns), UsFrac(e.dur_ns),
               static_cast<ull>(e.a));
      }
      break;
    case EventType::kTxnBegin:
    case EventType::kTxnCommit:
      Printf(w,
             "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
             "\"cat\":\"txn\",\"ts\":%llu.%03llu,"
             "\"args\":{\"txn\":%llu,\"scan\":%u}}",
             tid, EventTypeName(static_cast<EventType>(e.type)),
             UsWhole(rel_ns), UsFrac(rel_ns), static_cast<ull>(e.a), e.detail);
      break;
    case EventType::kTxnAbort:
      // The structured cause plus the conflicting range id (when a scan
      // validation attributed one) ride in args for Perfetto queries.
      if (e.b == kNoRange) {
        Printf(w,
               "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,"
               "\"name\":\"abort\",\"cat\":\"txn\",\"ts\":%llu.%03llu,"
               "\"args\":{\"txn\":%llu,\"reason\":\"%s\"}}",
               tid, UsWhole(rel_ns), UsFrac(rel_ns), static_cast<ull>(e.a),
               AbortReasonName(static_cast<AbortReason>(e.detail)));
      } else {
        Printf(w,
               "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,"
               "\"name\":\"abort\",\"cat\":\"txn\",\"ts\":%llu.%03llu,"
               "\"args\":{\"txn\":%llu,\"reason\":\"%s\",\"range\":%u}}",
               tid, UsWhole(rel_ns), UsFrac(rel_ns), static_cast<ull>(e.a),
               AbortReasonName(static_cast<AbortReason>(e.detail)), e.b);
      }
      break;
    case EventType::kWalFlush:
      Printf(w,
             "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"wal_flush\","
             "\"cat\":\"log\",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,"
             "\"args\":{\"bytes\":%llu,\"epoch\":%u}}",
             tid, UsWhole(rel_ns), UsFrac(rel_ns), UsWhole(e.dur_ns),
             UsFrac(e.dur_ns), static_cast<ull>(e.a), e.b);
      break;
    case EventType::kSnapshotScan:
      Printf(w,
             "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"snapshot_scan\","
             "\"cat\":\"mv\",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,"
             "\"args\":{\"records\":%llu,\"chain_reads\":%u}}",
             tid, UsWhole(rel_ns), UsFrac(rel_ns), UsWhole(e.dur_ns),
             UsFrac(e.dur_ns), static_cast<ull>(e.a), e.b);
      break;
    case EventType::kVersionInstall:
    case EventType::kVersionGc:
    case EventType::kSnapshotEvict:
      Printf(w,
             "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
             "\"cat\":\"mv\",\"ts\":%llu.%03llu,\"args\":{\"a\":%llu,\"b\":%u}}",
             tid, EventTypeName(static_cast<EventType>(e.type)),
             UsWhole(rel_ns), UsFrac(rel_ns), static_cast<ull>(e.a), e.b);
      break;
    case EventType::kStall:
      // Watchdog attribution: a = stuck worker id, detail = its phase,
      // b = how long it had been there (ms) when the watchdog fired.
      Printf(w,
             "{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":%u,"
             "\"name\":\"stall\",\"cat\":\"watchdog\",\"ts\":%llu.%03llu,"
             "\"args\":{\"worker\":%llu,\"phase\":\"%s\",\"ms\":%u}}",
             tid, UsWhole(rel_ns), UsFrac(rel_ns), static_cast<ull>(e.a),
             PhaseName(static_cast<Phase>(e.detail)), e.b);
      break;
    case EventType::kSloViolation:
      Printf(w,
             "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,"
             "\"name\":\"slo_violation\",\"cat\":\"slo\",\"ts\":%llu.%03llu,"
             "\"args\":{\"txn\":%llu,\"us\":%u,\"slowest\":\"%s\","
             "\"reason\":\"%s\"}}",
             tid, UsWhole(rel_ns), UsFrac(rel_ns), static_cast<ull>(e.a), e.b,
             PhaseName(SloDetailPhase(e.detail)),
             AbortReasonName(
                 static_cast<AbortReason>(SloDetailReason(e.detail))));
      break;
    case EventType::kRangePublish:
    case EventType::kRangeSplit:
    case EventType::kRangeMerge:
    case EventType::kGateEnter:
    case EventType::kGateExit:
    default:
      Printf(w,
             "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
             "\"cat\":\"control\",\"ts\":%llu.%03llu,"
             "\"args\":{\"a\":%llu,\"b\":%u}}",
             tid, EventTypeName(static_cast<EventType>(e.type)),
             UsWhole(rel_ns), UsFrac(rel_ns), static_cast<ull>(e.a), e.b);
      break;
  }
}

/// Shared trace-document body: header, track-name metadata, events, footer.
/// `for_each` is called once with a per-event callback.
template <typename W, typename ForEach>
void RenderTrace(W& w, const FlightRecorder& recorder, ForEach&& for_each) {
  // Pass 1: earliest timestamp, so exported times start near zero.
  uint64_t base_ns = ~0ULL;
  for_each([&](const TraceEvent& e) {
    if (e.ts_ns != 0 && e.ts_ns < base_ns) base_ns = e.ts_ns;
  });
  if (base_ns == ~0ULL) base_ns = 0;

  Str(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
  bool first = true;
  // Track-naming metadata: one row per worker ring that saw events, plus the
  // control-plane track. Under the fiber runner, worker ids are fiber ids —
  // this is exactly the synthetic-tid mapping that makes 40 fibers on one OS
  // thread render as 40 parallel tracks.
  for (uint32_t tid = 0; tid < recorder.num_workers(); tid++) {
    if (recorder.worker_ring(tid).head() == 0) continue;
    if (!first) Str(w, ",\n");
    first = false;
    Printf(w,
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
           "\"args\":{\"name\":\"worker %u\"}}",
           tid, tid);
  }
  if (recorder.service_ring().head() != 0) {
    if (!first) Str(w, ",\n");
    first = false;
    Printf(w,
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
           "\"args\":{\"name\":\"control\"}}",
           static_cast<unsigned>(FlightRecorder::kServiceTid));
  }
  // Pass 2: the events. Perfetto does not require global timestamp order.
  for_each([&](const TraceEvent& e) { EmitEvent(w, e, base_ns, &first); });
  Str(w, "\n]}\n");
}

// --- SIGUSR1 dump-on-signal state; all fixed storage / lock-free so the
// handler never allocates. ---

char g_signal_dump_path[512] = {0};

/// Latched by the handler when a drainer thread is registered; that thread
/// performs the dump from ordinary context (the conservative path — the
/// handler then does nothing but one relaxed store).
std::atomic<bool> g_dump_pending{false};
std::atomic<int> g_dump_drainers{0};

void SignalDumpHandler(int) {
  if (g_dump_drainers.load(std::memory_order_relaxed) > 0) {
    g_dump_pending.store(true, std::memory_order_release);
    return;
  }
  // No drainer (bench without a watchdog): dump inline, best effort. The
  // writer is allocation-free and stdio-lock-free by construction.
  FlightRecorder* r = Recorder();
  if (r == nullptr || g_signal_dump_path[0] == '\0') return;
  WriteChromeTrace(*r, g_signal_dump_path);
}

}  // namespace

bool WriteChromeTrace(const FlightRecorder& recorder, const char* path) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  FdWriter w(fd);
  RenderTrace(w, recorder, [&recorder](auto&& fn) {
    recorder.ForEachEvent(fn);
  });
  w.Flush();
  const bool ok = w.ok();
  ::close(fd);
  return ok;
}

void RenderChromeTraceWindow(const FlightRecorder& recorder,
                             const std::vector<uint64_t>& from_cursors,
                             std::string* out) {
  StringWriter w(out);
  // Bound the window to the ring heads as of entry, so a capture racing live
  // writers terminates even if workers outrun the renderer.
  const uint32_t n = recorder.num_workers();
  RenderTrace(w, recorder, [&](auto&& fn) {
    for (uint32_t tid = 0; tid < n; tid++) {
      const uint64_t from = tid < from_cursors.size() ? from_cursors[tid] : 0;
      recorder.worker_ring(tid).ForEachFrom(from, fn);
    }
    const uint64_t sfrom =
        from_cursors.size() > n ? from_cursors[n] : 0;
    recorder.service_ring().ForEachFrom(sfrom, fn);
  });
}

void InstallSignalDump(const std::string& path) {
  std::snprintf(g_signal_dump_path, sizeof(g_signal_dump_path), "%s",
                path.c_str());
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SignalDumpHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGUSR1, &sa, nullptr);
}

void RegisterSignalDumpDrainer() {
  g_dump_drainers.fetch_add(1, std::memory_order_relaxed);
}

void UnregisterSignalDumpDrainer() {
  g_dump_drainers.fetch_sub(1, std::memory_order_relaxed);
}

bool DrainPendingSignalDump() {
  if (!g_dump_pending.exchange(false, std::memory_order_acquire)) return false;
  FlightRecorder* r = Recorder();
  if (r == nullptr || g_signal_dump_path[0] == '\0') return false;
  return WriteChromeTrace(*r, g_signal_dump_path);
}

}  // namespace obs
}  // namespace rocc
