#include "obs/prometheus.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace rocc {
namespace obs {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

void Counter(std::string* out, const char* name, const char* help,
             const std::string& labels, uint64_t value) {
  Appendf(out, "# HELP %s %s\n# TYPE %s counter\n", name, help, name);
  Appendf(out, "%s{%s} %llu\n", name, labels.c_str(),
          static_cast<unsigned long long>(value));
}

void Gauge(std::string* out, const char* name, const char* help,
           const std::string& labels, uint64_t value) {
  Appendf(out, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name);
  Appendf(out, "%s{%s} %llu\n", name, labels.c_str(),
          static_cast<unsigned long long>(value));
}

/// Label prefix for metrics that add their own label (reason=, le=): the
/// shared labels followed by a comma, or empty.
std::string Prefix(const std::string& labels) {
  return labels.empty() ? std::string() : labels + ",";
}

/// One Prometheus histogram from a rocc::Histogram. `scale` divides the
/// recorded values for export: 1e9 turns nanosecond samples into seconds
/// (the Prometheus convention for durations); 1 exports raw units (e.g.
/// version-chain lengths). Only buckets that hold samples contribute an `le`
/// line, followed by the mandatory `+Inf`.
void Hist(std::string* out, const char* name, const char* help,
          const std::string& labels, const Histogram& h, double scale = 1e9) {
  Appendf(out, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name);
  const std::string prefix = Prefix(labels);
  const auto& buckets = h.bucket_counts();
  uint64_t cumulative = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; b++) {
    if (buckets[b] == 0) continue;
    cumulative += buckets[b];
    // Upper bound of bucket b = lower bound of bucket b+1.
    const double le =
        static_cast<double>(Histogram::BucketLowerBound(b + 1)) / scale;
    Appendf(out, "%s_bucket{%sle=\"%.9g\"} %llu\n", name, prefix.c_str(),
            le, static_cast<unsigned long long>(cumulative));
  }
  Appendf(out, "%s_bucket{%sle=\"+Inf\"} %llu\n", name, prefix.c_str(),
          static_cast<unsigned long long>(h.count()));
  Appendf(out, "%s_sum{%s} %.9g\n", name, labels.c_str(),
          static_cast<double>(h.sum()) / scale);
  Appendf(out, "%s_count{%s} %llu\n", name, labels.c_str(),
          static_cast<unsigned long long>(h.count()));
}

}  // namespace

std::string PrometheusSnapshot(const TxnStats& s, const std::string& labels) {
  std::string out;
  out.reserve(8192);

  Counter(&out, "rocc_txn_commits_total", "Committed transactions", labels,
          s.commits);
  Counter(&out, "rocc_txn_scan_commits_total", "Committed bulk/scan transactions",
          labels, s.scan_txn_commits);
  Counter(&out, "rocc_txn_give_ups_total",
          "Logical transactions dropped after exhausting the retry budget",
          labels, s.give_ups);
  Counter(&out, "rocc_txn_escalations_total",
          "Entries into the protected (escalated) retry path", labels,
          s.escalations);
  Counter(&out, "rocc_log_records_total", "Redo records appended to the WAL",
          labels, s.log_records);
  Counter(&out, "rocc_durable_acks_total", "Commits acknowledged as durable",
          labels, s.durable_acks);

  // Aborted attempts, labelled by structured cause — same names as the
  // report table and the trace exporter (single string table).
  Appendf(&out,
          "# HELP rocc_txn_aborts_total Aborted attempts by cause\n"
          "# TYPE rocc_txn_aborts_total counter\n");
  const std::string prefix = Prefix(labels);
  for (AbortReason r : kAbortCauses) {
    Appendf(&out, "rocc_txn_aborts_total{%sreason=\"%s\"} %llu\n",
            prefix.c_str(), AbortReasonName(r),
            static_cast<unsigned long long>(AbortCauseCount(s, r)));
  }

  Appendf(&out,
          "# HELP rocc_txn_abort_rate Aborted attempts / total attempts\n"
          "# TYPE rocc_txn_abort_rate gauge\n"
          "rocc_txn_abort_rate{%s} %.6f\n",
          labels.c_str(), s.AbortRate());

  // Multi-version row store rates; present only when the run used MVCC so
  // single-version snapshots stay unchanged.
  if (s.mv_versions_installed != 0 || s.mv_snapshot_scans != 0 ||
      s.mv_snapshot_txns != 0) {
    Counter(&out, "rocc_mv_versions_installed_total",
            "Pre-image version nodes linked at commit", labels,
            s.mv_versions_installed);
    Counter(&out, "rocc_mv_version_bytes_installed_total",
            "Node plus payload bytes of installed versions", labels,
            s.mv_version_bytes_installed);
    Counter(&out, "rocc_mv_snapshot_scans_total",
            "Snapshot scan operator invocations", labels, s.mv_snapshot_scans);
    Counter(&out, "rocc_mv_snapshot_records_total",
            "Records returned by snapshot scans", labels,
            s.mv_snapshot_records);
    Counter(&out, "rocc_mv_chain_reads_total",
            "Snapshot reads resolved from a version chain (not the row)",
            labels, s.mv_chain_reads);
    Counter(&out, "rocc_mv_snapshot_point_reads_total",
            "Point reads served at a frozen snapshot", labels,
            s.mv_snapshot_point_reads);
    Counter(&out, "rocc_mv_snapshot_txns_total",
            "Read-only snapshot transactions committed without validation",
            labels, s.mv_snapshot_txns);
    if (s.mv_chain_length.count() != 0) {
      Hist(&out, "rocc_mv_chain_length",
           "Version-chain length observed after install plus prune", labels,
           s.mv_chain_length, /*scale=*/1.0);
    }
  }

  // Tail-latency SLO attribution (§16.2): violations as a
  // slowest_phase × reason matrix, nonzero cells only. Present only when the
  // run recorded any so obs-off / SLO-off snapshots stay byte-identical.
  if (s.SloViolationTotal() != 0) {
    Appendf(&out,
            "# HELP rocc_slo_violations_total Attempts over the latency SLO "
            "by slowest phase and outcome\n"
            "# TYPE rocc_slo_violations_total counter\n");
    for (uint32_t p = 0; p < TxnStats::kNumSloPhases; p++) {
      for (uint32_t c = 0; c <= kNumAbortCauses; c++) {
        if (s.slo_violations[p][c] == 0) continue;
        const AbortReason r = c == 0 ? AbortReason::kNone : kAbortCauses[c - 1];
        Appendf(&out,
                "rocc_slo_violations_total{%sslowest_phase=\"%s\","
                "reason=\"%s\"} %llu\n",
                prefix.c_str(), PhaseName(static_cast<obs::Phase>(p)),
                AbortReasonName(r),
                static_cast<unsigned long long>(s.slo_violations[p][c]));
      }
    }
    if (s.latency_slo.count() != 0) {
      Hist(&out, "rocc_txn_slo_latency_seconds",
           "Total latency of SLO-violating attempts", labels, s.latency_slo);
    }
  }

  struct NamedHist {
    const char* name;
    const char* help;
    const Histogram* h;
  };
  const NamedHist hists[] = {
      {"rocc_txn_latency_seconds", "Committed transaction latency",
       &s.latency_all},
      {"rocc_txn_scan_latency_seconds", "Committed bulk/scan transaction latency",
       &s.latency_scan},
      {"rocc_txn_durable_latency_seconds", "Begin to durable-acknowledge latency",
       &s.latency_durable},
      {"rocc_phase_execute_seconds", "Read/write phase of committed attempts",
       &s.phase_execute},
      {"rocc_phase_validate_seconds",
       "Lock+register+validate phase of committed attempts", &s.phase_validate},
      {"rocc_phase_apply_seconds",
       "Write install and ring publish of committed attempts", &s.phase_apply},
      {"rocc_phase_log_wait_seconds", "Group-commit durability wait",
       &s.phase_log_wait},
      {"rocc_backoff_seconds", "Per-abort adaptive backoff duration",
       &s.backoff_time},
  };
  for (const NamedHist& nh : hists) {
    if (nh.h->count() == 0) continue;
    Hist(&out, nh.name, nh.help, labels, *nh.h);
  }
  return out;
}

bool WritePrometheusSnapshot(const TxnStats& stats, const std::string& labels,
                             const char* path) {
  const std::string text = PrometheusSnapshot(stats, labels);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == text.size() && closed;
}

void AppendMvGauges(std::string* out, const MvGauges& g,
                    const std::string& labels) {
  Gauge(out, "rocc_mv_live_versions",
        "Version nodes installed and not yet reclaimed", labels, g.live_nodes);
  Gauge(out, "rocc_mv_live_version_bytes",
        "Bytes held by live version nodes", labels, g.live_bytes);
  Gauge(out, "rocc_mv_snapshots_evicted",
        "Pinned snapshots evicted under prune pressure", labels,
        g.snapshots_evicted);
  Appendf(out,
          "# HELP rocc_mv_oldest_snapshot_age_seconds Age of the oldest "
          "pinned snapshot\n"
          "# TYPE rocc_mv_oldest_snapshot_age_seconds gauge\n"
          "rocc_mv_oldest_snapshot_age_seconds{%s} %.6f\n",
          labels.c_str(),
          static_cast<double>(g.oldest_snapshot_age_ns) / 1e9);
}

// ---------------------------------------------------------------------------
// PrometheusStreamer
// ---------------------------------------------------------------------------

PrometheusStreamer::PrometheusStreamer(Options options,
                                       const FlightRecorder* recorder)
    : options_(std::move(options)), recorder_(recorder) {
  if (recorder_ != nullptr) {
    cursors_.assign(recorder_->num_workers() + 1, 0);
  }
}

PrometheusStreamer::~PrometheusStreamer() { Stop(); }

void PrometheusStreamer::Start() {
  std::lock_guard<std::mutex> g(mu_);
  if (running_ || recorder_ == nullptr) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Run(); });
}

void PrometheusStreamer::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> g(mu_);
    running_ = false;
  }
  CollectOnce();  // final drain so the file reflects the full run
}

void PrometheusStreamer::UpdateStats(const TxnStats& merged) {
  std::lock_guard<std::mutex> g(mu_);
  stats_ = merged;
  has_stats_ = true;
}

void PrometheusStreamer::SetMvGaugeSource(std::function<MvGauges()> fn) {
  std::lock_guard<std::mutex> g(mu_);
  gauge_fn_ = std::move(fn);
}

bool PrometheusStreamer::CollectOnce() {
  std::lock_guard<std::mutex> g(mu_);
  DrainLocked();
  return WriteLocked();
}

std::string PrometheusStreamer::CollectString() {
  std::lock_guard<std::mutex> g(mu_);
  DrainLocked();
  std::string out;
  RenderLocked(&out);
  return out;
}

StreamCounters PrometheusStreamer::counters() const {
  std::lock_guard<std::mutex> g(mu_);
  return counters_;
}

void PrometheusStreamer::Run() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    DrainLocked();
    WriteLocked();
  }
}

void PrometheusStreamer::DrainLocked() {
  if (recorder_ == nullptr) return;
  const uint32_t n = recorder_->num_workers();
  for (uint32_t tid = 0; tid <= n; tid++) {
    const TraceRing& ring = tid < n ? recorder_->worker_ring(tid)
                                    : recorder_->service_ring();
    const uint64_t from = cursors_[tid];
    uint64_t delivered = 0;
    const uint64_t next = ring.ForEachFrom(from, [&](const TraceEvent& e) {
      delivered++;
      AccountLocked(e);
    });
    // ForEachFrom clamps the start to the live window: anything between the
    // cursor and the window start was overwritten before we got to it.
    if (next > from) {
      counters_.events_seen += delivered;
      counters_.events_dropped += (next - from) - delivered;
    }
    cursors_[tid] = next;
  }
}

void PrometheusStreamer::AccountLocked(const TraceEvent& e) {
  switch (static_cast<EventType>(e.type)) {
    case EventType::kWalFlush:
      counters_.wal_flushes++;
      counters_.wal_flush_bytes += e.a;
      break;
    case EventType::kRangePublish:
      counters_.range_publishes++;
      break;
    case EventType::kRangeSplit:
      counters_.range_splits++;
      break;
    case EventType::kRangeMerge:
      counters_.range_merges++;
      break;
    case EventType::kRingResize:
      counters_.ring_resizes++;
      break;
    case EventType::kVersionGc:
      counters_.version_gc_passes++;
      counters_.version_gc_nodes += e.a;
      break;
    case EventType::kVersionInstall:
      counters_.version_installs++;
      counters_.version_nodes += e.a;
      break;
    case EventType::kSnapshotScan:
      counters_.snapshot_scans++;
      counters_.snapshot_records += e.a;
      break;
    case EventType::kSnapshotEvict:
      counters_.snapshot_evictions++;
      break;
    case EventType::kStall:
      counters_.stalls++;
      break;
    case EventType::kSloViolation:
      counters_.slo_violations++;
      break;
    default:
      break;
  }
}

void PrometheusStreamer::RenderLocked(std::string* outp) {
  std::string& out = *outp;
  out.reserve(16384);
  if (has_stats_) out = PrometheusSnapshot(stats_, options_.labels);

  const StreamCounters& c = counters_;
  Counter(&out, "rocc_stream_wal_flushes_total",
          "Group-commit flush batches (from the trace rings)", options_.labels,
          c.wal_flushes);
  Counter(&out, "rocc_stream_wal_flush_bytes_total",
          "Bytes written across group-commit batches", options_.labels,
          c.wal_flush_bytes);
  Counter(&out, "rocc_stream_range_publishes_total",
          "Range-table versions published", options_.labels,
          c.range_publishes);
  Counter(&out, "rocc_stream_range_splits_total", "Range split operations",
          options_.labels, c.range_splits);
  Counter(&out, "rocc_stream_range_merges_total", "Range merge operations",
          options_.labels, c.range_merges);
  Counter(&out, "rocc_stream_ring_resizes_total",
          "Adaptive ring-capacity changes", options_.labels, c.ring_resizes);
  Counter(&out, "rocc_stream_version_gc_passes_total",
          "Version reclaim passes that freed nodes", options_.labels,
          c.version_gc_passes);
  Counter(&out, "rocc_stream_version_gc_nodes_total",
          "Version nodes freed by reclaim passes", options_.labels,
          c.version_gc_nodes);
  Counter(&out, "rocc_stream_version_installs_total",
          "Commits that linked pre-image versions (sampled)", options_.labels,
          c.version_installs);
  Counter(&out, "rocc_stream_version_nodes_total",
          "Pre-image version nodes linked (sampled)", options_.labels,
          c.version_nodes);
  Counter(&out, "rocc_stream_snapshot_scans_total",
          "Snapshot scans finished (sampled)", options_.labels,
          c.snapshot_scans);
  Counter(&out, "rocc_stream_snapshot_records_total",
          "Records returned by snapshot scans (sampled)", options_.labels,
          c.snapshot_records);
  Counter(&out, "rocc_stream_snapshot_evictions_total",
          "Pinned snapshots evicted under prune pressure (exact)",
          options_.labels, c.snapshot_evictions);
  // Always emitted (even at zero) so clean CI runs can assert absence of
  // stalls by value instead of by missing series.
  Counter(&out, "rocc_stream_stalls_total",
          "Distinct worker stalls reported by the watchdog", options_.labels,
          c.stalls);
  Counter(&out, "rocc_stream_slo_violations_total",
          "SLO-violating attempts seen in the trace rings", options_.labels,
          c.slo_violations);
  Counter(&out, "rocc_stream_trace_events_total",
          "Trace events delivered to the streamer", options_.labels,
          c.events_seen);
  Counter(&out, "rocc_stream_trace_events_dropped_total",
          "Trace events that wrapped out of a ring before a drain",
          options_.labels, c.events_dropped);

  if (gauge_fn_) AppendMvGauges(&out, gauge_fn_(), options_.labels);
}

bool PrometheusStreamer::WriteLocked() {
  std::string out;
  RenderLocked(&out);

  // Write-then-rename so a concurrent scrape never reads a torn file.
  const std::string tmp = options_.path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) return false;
  return std::rename(tmp.c_str(), options_.path.c_str()) == 0;
}

}  // namespace obs
}  // namespace rocc
