#include "obs/prometheus.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace rocc {
namespace obs {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

void Counter(std::string* out, const char* name, const char* help,
             const std::string& labels, uint64_t value) {
  Appendf(out, "# HELP %s %s\n# TYPE %s counter\n", name, help, name);
  Appendf(out, "%s{%s} %llu\n", name, labels.c_str(),
          static_cast<unsigned long long>(value));
}

/// Label prefix for metrics that add their own label (reason=, le=): the
/// shared labels followed by a comma, or empty.
std::string Prefix(const std::string& labels) {
  return labels.empty() ? std::string() : labels + ",";
}

/// One Prometheus histogram from a rocc::Histogram. Buckets are emitted in
/// seconds (the Prometheus convention for durations); only buckets that hold
/// samples contribute an `le` line, followed by the mandatory `+Inf`.
void Hist(std::string* out, const char* name, const char* help,
          const std::string& labels, const Histogram& h) {
  Appendf(out, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name);
  const std::string prefix = Prefix(labels);
  const auto& buckets = h.bucket_counts();
  uint64_t cumulative = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; b++) {
    if (buckets[b] == 0) continue;
    cumulative += buckets[b];
    // Upper bound of bucket b = lower bound of bucket b+1.
    const double le_sec =
        static_cast<double>(Histogram::BucketLowerBound(b + 1)) / 1e9;
    Appendf(out, "%s_bucket{%sle=\"%.9g\"} %llu\n", name, prefix.c_str(),
            le_sec, static_cast<unsigned long long>(cumulative));
  }
  Appendf(out, "%s_bucket{%sle=\"+Inf\"} %llu\n", name, prefix.c_str(),
          static_cast<unsigned long long>(h.count()));
  Appendf(out, "%s_sum{%s} %.9g\n", name, labels.c_str(),
          static_cast<double>(h.sum()) / 1e9);
  Appendf(out, "%s_count{%s} %llu\n", name, labels.c_str(),
          static_cast<unsigned long long>(h.count()));
}

}  // namespace

std::string PrometheusSnapshot(const TxnStats& s, const std::string& labels) {
  std::string out;
  out.reserve(8192);

  Counter(&out, "rocc_txn_commits_total", "Committed transactions", labels,
          s.commits);
  Counter(&out, "rocc_txn_scan_commits_total", "Committed bulk/scan transactions",
          labels, s.scan_txn_commits);
  Counter(&out, "rocc_txn_give_ups_total",
          "Logical transactions dropped after exhausting the retry budget",
          labels, s.give_ups);
  Counter(&out, "rocc_txn_escalations_total",
          "Entries into the protected (escalated) retry path", labels,
          s.escalations);
  Counter(&out, "rocc_log_records_total", "Redo records appended to the WAL",
          labels, s.log_records);
  Counter(&out, "rocc_durable_acks_total", "Commits acknowledged as durable",
          labels, s.durable_acks);

  // Aborted attempts, labelled by structured cause — same names as the
  // report table and the trace exporter (single string table).
  Appendf(&out,
          "# HELP rocc_txn_aborts_total Aborted attempts by cause\n"
          "# TYPE rocc_txn_aborts_total counter\n");
  const std::string prefix = Prefix(labels);
  for (AbortReason r : kAbortCauses) {
    Appendf(&out, "rocc_txn_aborts_total{%sreason=\"%s\"} %llu\n",
            prefix.c_str(), AbortReasonName(r),
            static_cast<unsigned long long>(AbortCauseCount(s, r)));
  }

  Appendf(&out,
          "# HELP rocc_txn_abort_rate Aborted attempts / total attempts\n"
          "# TYPE rocc_txn_abort_rate gauge\n"
          "rocc_txn_abort_rate{%s} %.6f\n",
          labels.c_str(), s.AbortRate());

  struct NamedHist {
    const char* name;
    const char* help;
    const Histogram* h;
  };
  const NamedHist hists[] = {
      {"rocc_txn_latency_seconds", "Committed transaction latency",
       &s.latency_all},
      {"rocc_txn_scan_latency_seconds", "Committed bulk/scan transaction latency",
       &s.latency_scan},
      {"rocc_txn_durable_latency_seconds", "Begin to durable-acknowledge latency",
       &s.latency_durable},
      {"rocc_phase_execute_seconds", "Read/write phase of committed attempts",
       &s.phase_execute},
      {"rocc_phase_validate_seconds",
       "Lock+register+validate phase of committed attempts", &s.phase_validate},
      {"rocc_phase_apply_seconds",
       "Write install and ring publish of committed attempts", &s.phase_apply},
      {"rocc_phase_log_wait_seconds", "Group-commit durability wait",
       &s.phase_log_wait},
      {"rocc_backoff_seconds", "Per-abort adaptive backoff duration",
       &s.backoff_time},
  };
  for (const NamedHist& nh : hists) {
    if (nh.h->count() == 0) continue;
    Hist(&out, nh.name, nh.help, labels, *nh.h);
  }
  return out;
}

bool WritePrometheusSnapshot(const TxnStats& stats, const std::string& labels,
                             const char* path) {
  const std::string text = PrometheusSnapshot(stats, labels);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == text.size() && closed;
}

}  // namespace obs
}  // namespace rocc
