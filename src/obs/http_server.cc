#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "harness/knobs.h"
#include "obs/chrome_trace.h"
#include "obs/obs.h"

namespace rocc {
namespace obs {

namespace {

/// One parsed request: method, path (query split off), body (POST only).
struct Request {
  std::string method;
  std::string path;
  std::string query;
  std::string body;
};

/// Read one HTTP/1.1 request from `fd` (blocking, SO_RCVTIMEO-bounded).
/// Returns false on timeout, close, or oversized/garbled input.
bool ReadRequest(int fd, Request* req) {
  constexpr size_t kMaxHeader = 16 * 1024;
  constexpr size_t kMaxBody = 64 * 1024;
  std::string buf;
  size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
    if (buf.size() > kMaxHeader) return false;
    header_end = buf.find("\r\n\r\n");
  }

  // Request line: METHOD SP path[?query] SP version.
  const size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t q = target.find('?');
  if (q == std::string::npos) {
    req->path = target;
  } else {
    req->path = target.substr(0, q);
    req->query = target.substr(q + 1);
  }

  // Content-Length (case-insensitive scan of the header block).
  size_t content_length = 0;
  {
    std::string headers = buf.substr(0, header_end);
    for (char& c : headers) c = static_cast<char>(std::tolower(c));
    const size_t at = headers.find("content-length:");
    if (at != std::string::npos) {
      content_length = std::strtoul(headers.c_str() + at + 15, nullptr, 10);
      if (content_length > kMaxBody) return false;
    }
  }

  const size_t body_start = header_end + 4;
  while (buf.size() - body_start < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
  req->body = buf.substr(body_start, content_length);
  return true;
}

void WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w <= 0) return;
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void Respond(int fd, int status, const char* reason, const char* content_type,
             const std::string& body) {
  char header[256];
  const int n = std::snprintf(
      header, sizeof(header),
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status, reason, content_type, body.size());
  WriteAll(fd, header, static_cast<size_t>(n));
  WriteAll(fd, body.data(), body.size());
}

void RespondText(int fd, int status, const char* reason,
                 const std::string& body) {
  Respond(fd, status, reason, "text/plain; charset=utf-8", body);
}

/// `ms=` value from a query string; `fallback` when absent or malformed.
uint32_t QueryMs(const std::string& query, uint32_t fallback) {
  const size_t at = query.find("ms=");
  if (at != 0 && (at == std::string::npos || query[at - 1] != '&')) {
    return fallback;
  }
  const unsigned long v = std::strtoul(query.c_str() + at + 3, nullptr, 10);
  return v == 0 ? fallback : static_cast<uint32_t>(v);
}

/// Capture a bounded window of live ring traffic as Chrome trace JSON:
/// snapshot every ring head, sleep, render what arrived since. Blocks the
/// (single) server thread by design — the operator asked for a timed
/// capture, and queued scrapes proceed afterwards.
std::string CaptureTraceWindow(uint32_t ms) {
  FlightRecorder* r = Recorder();
  if (r == nullptr) return std::string();
  std::vector<uint64_t> cursors;
  cursors.reserve(r->num_workers() + 1);
  for (uint32_t tid = 0; tid < r->num_workers(); tid++) {
    cursors.push_back(r->worker_ring(tid).head());
  }
  cursors.push_back(r->service_ring().head());
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  std::string out;
  RenderChromeTraceWindow(*r, cursors, &out);
  return out;
}

/// Apply "name=value" lines to the KnobRegistry. All-or-nothing per line:
/// the first unknown/garbled line fails the request with its name in the
/// message (a typo must 400, not silently create a dead knob).
bool ApplyConfig(const std::string& body, std::string* message) {
  size_t applied = 0;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Trim + skip blanks/comments.
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    line = line.substr(first);
    const size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      *message = "malformed line: " + line + "\n";
      return false;
    }
    std::string name = line.substr(0, eq);
    const size_t name_end = name.find_last_not_of(" \t");
    name = name.substr(0, name_end + 1);
    char* end = nullptr;
    const uint64_t value = std::strtoull(line.c_str() + eq + 1, &end, 0);
    if (end == line.c_str() + eq + 1) {
      *message = "bad value for " + name + "\n";
      return false;
    }
    if (!KnobRegistry::Instance().Set(name, value)) {
      *message = "unknown knob: " + name + "\n";
      return false;
    }
    applied++;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "applied %zu knob(s)\n", applied);
  *message = buf;
  return true;
}

std::string KnobsJson() {
  std::string out = "{";
  bool first = true;
  for (const auto& kv : KnobRegistry::Instance().Snapshot()) {
    if (!first) out += ",";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu", kv.first.c_str(),
                  static_cast<unsigned long long>(kv.second));
    out += buf;
  }
  out += "}\n";
  return out;
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start() {
  if (running_) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "[http] bad bind address %s\n",
                 options_.bind_address.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    std::fprintf(stderr, "[http] cannot listen on %s:%u\n",
                 options_.bind_address.c_str(), options_.port);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  if (::pipe(stop_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return true;
}

void HttpServer::Stop() {
  if (!running_) return;
  const char b = 'q';
  (void)!::write(stop_pipe_[1], &b, 1);
  thread_.join();
  running_ = false;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::Run() {
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(ep, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = stop_pipe_[0];
  ::epoll_ctl(ep, EPOLL_CTL_ADD, stop_pipe_[0], &ev);

  for (;;) {
    epoll_event events[4];
    const int n = ::epoll_wait(ep, events, 4, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool stop = false;
    for (int i = 0; i < n; i++) {
      if (events[i].data.fd == stop_pipe_[0]) {
        stop = true;
      } else if (events[i].data.fd == listen_fd_) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        // Bound a stuck client instead of wedging the plane forever.
        timeval tv{1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        HandleConnection(fd);
        ::close(fd);
      }
    }
    if (stop) break;
  }
  ::close(ep);
}

void HttpServer::HandleConnection(int fd) {
  Request req;
  if (!ReadRequest(fd, &req)) return;
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (req.method == "GET" && req.path == "/healthz") {
    RespondText(fd, 200, "OK", "ok\n");
  } else if (req.method == "GET" && req.path == "/metrics") {
    if (!metrics_fn_) {
      RespondText(fd, 503, "Service Unavailable", "no metrics source\n");
      return;
    }
    Respond(fd, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            metrics_fn_());
  } else if (req.method == "GET" && req.path == "/vars") {
    if (!vars_fn_) {
      RespondText(fd, 503, "Service Unavailable", "no vars source\n");
      return;
    }
    Respond(fd, 200, "OK", "application/json", vars_fn_());
  } else if (req.method == "GET" && req.path == "/trace") {
    uint32_t ms = QueryMs(req.query, 100);
    if (ms > options_.max_trace_ms) ms = options_.max_trace_ms;
    const std::string trace = CaptureTraceWindow(ms);
    if (trace.empty()) {
      RespondText(fd, 503, "Service Unavailable", "no recorder installed\n");
      return;
    }
    Respond(fd, 200, "OK", "application/json", trace);
  } else if (req.method == "GET" && req.path == "/config") {
    Respond(fd, 200, "OK", "application/json", KnobsJson());
  } else if (req.method == "POST" && req.path == "/config") {
    std::string message;
    if (ApplyConfig(req.body, &message)) {
      RespondText(fd, 200, "OK", message + KnobsJson());
    } else {
      RespondText(fd, 400, "Bad Request", message);
    }
  } else {
    RespondText(fd, 404, "Not Found", "unknown route\n");
  }
}

}  // namespace obs
}  // namespace rocc
