#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/stats.h"
#include "obs/obs.h"

namespace rocc {
namespace obs {

/// Render merged run statistics in the Prometheus text exposition format:
/// counters for commits/aborts (aborts labelled by reason via
/// AbortReasonName), gauges for derived rates, and native log-bucketed
/// histograms (cumulative `le` buckets in seconds, plus `_sum`/`_count`) for
/// the end-to-end latencies and the per-phase breakdown. Multi-version
/// counters (installs, snapshot scans, chain-length distribution) appear when
/// the run produced any. `labels` is spliced verbatim inside the metric
/// braces (e.g. `protocol="rocc"`); pass "" for none.
std::string PrometheusSnapshot(const TxnStats& stats, const std::string& labels);

/// Write PrometheusSnapshot(stats, labels) to `path` (truncating). Returns
/// false on I/O failure.
bool WritePrometheusSnapshot(const TxnStats& stats, const std::string& labels,
                             const char* path);

/// Live multi-version store gauges, read from mv::VersionStore::Telemetry().
/// Kept as a plain struct so the exporter does not depend on the mv layer.
struct MvGauges {
  uint64_t live_nodes = 0;  ///< version nodes installed and not yet freed
  uint64_t live_bytes = 0;  ///< bytes held by live version nodes
  uint64_t snapshots_evicted = 0;  ///< pinned snapshots evicted (counter)
  uint64_t oldest_snapshot_age_ns = 0;  ///< age of the oldest pinned snapshot
};

/// Append `rocc_mv_live_versions` / `rocc_mv_live_version_bytes` gauge lines
/// plus the snapshot-pressure series (evictions, oldest pinned age).
void AppendMvGauges(std::string* out, const MvGauges& g,
                    const std::string& labels);

/// Counters the streamer derives from the trace rings. Control-plane events
/// (WAL flushes, range-table changes) are always recorded while the flight
/// recorder is on, so those counts are exact; per-transaction events
/// (version installs, snapshot scans) ride the 1/N sampling decision and the
/// derived counters are sampled approximations — the authoritative rates for
/// those live in TxnStats.
struct StreamCounters {
  uint64_t wal_flushes = 0;       ///< group-commit batches (exact)
  uint64_t wal_flush_bytes = 0;   ///< bytes across those batches (exact)
  uint64_t range_publishes = 0;   ///< range-table versions published (exact)
  uint64_t range_splits = 0;      ///< split operations (exact)
  uint64_t range_merges = 0;      ///< merge operations (exact)
  uint64_t ring_resizes = 0;      ///< adaptive ring-capacity changes (exact)
  uint64_t version_gc_passes = 0;  ///< reclaim passes that freed nodes (exact)
  uint64_t version_gc_nodes = 0;   ///< version nodes freed by those passes
  uint64_t version_installs = 0;   ///< commits that linked pre-images (sampled)
  uint64_t version_nodes = 0;      ///< pre-image nodes linked (sampled)
  uint64_t snapshot_scans = 0;     ///< snapshot scans finished (sampled)
  uint64_t snapshot_records = 0;   ///< records those scans returned (sampled)
  uint64_t snapshot_evictions = 0;  ///< pinned snapshots evicted (exact)
  uint64_t stalls = 0;          ///< watchdog stall reports (exact)
  uint64_t slo_violations = 0;  ///< SLO-violating attempts seen in rings
  uint64_t events_seen = 0;     ///< trace events delivered to the streamer
  uint64_t events_dropped = 0;  ///< events that wrapped out before a drain
};

/// Streams the flight recorder's trace rings to a Prometheus text file
/// incrementally while the run is still in progress, instead of only writing
/// a snapshot at exit. Each collection drains every ring from a per-ring
/// cursor (TraceRing::ForEachFrom), folds the new events into running
/// counters, and atomically rewrites the target file (write + rename) with:
/// the latest merged TxnStats snapshot (if one was provided), the derived
/// stream counters, and the live multi-version gauges (if a source was set).
///
/// Ring reads race the owning workers by design — same benign race the
/// signal-triggered trace dump accepts; a torn slot at the drain frontier can
/// at worst misattribute one event. Events that wrap out of a ring between
/// collections are counted in `events_dropped` rather than silently lost.
class PrometheusStreamer {
 public:
  struct Options {
    std::string path;        ///< Prometheus text file to rewrite
    std::string labels;      ///< spliced into every metric's braces
    uint32_t interval_ms = 1000;  ///< background collection period
  };

  /// `recorder` must outlive the streamer (the bench scaffolding keeps a
  /// static recorder alive for the whole process).
  PrometheusStreamer(Options options, const FlightRecorder* recorder);
  ~PrometheusStreamer();
  PrometheusStreamer(const PrometheusStreamer&) = delete;
  PrometheusStreamer& operator=(const PrometheusStreamer&) = delete;

  /// Start the background collection thread (idempotent).
  void Start();

  /// Stop the background thread and run one final collection so the file
  /// reflects everything recorded up to the stop.
  void Stop();

  /// Latch the latest merged run statistics; they are embedded in every
  /// subsequent rewrite. Cumulative semantics are the caller's choice (the
  /// bench scaffolding passes its accumulated stats).
  void UpdateStats(const TxnStats& merged);

  /// Install a live-gauge source (e.g. reading VersionStore::Telemetry());
  /// called once per collection from the streamer thread.
  void SetMvGaugeSource(std::function<MvGauges()> fn);

  /// Drain the rings and rewrite the file once; returns false on I/O
  /// failure. Safe to call without Start() (tests, single-shot callers).
  bool CollectOnce();

  /// Drain the rings and return the full exposition document as a string
  /// without touching the file — the in-memory render behind GET /metrics.
  /// Serialized with the background thread by the streamer mutex, so a
  /// scrape and a timed rewrite never interleave their cursor updates.
  std::string CollectString();

  /// Current derived counters (latched copy).
  StreamCounters counters() const;

 private:
  void Run();
  void DrainLocked();
  void AccountLocked(const TraceEvent& e);
  void RenderLocked(std::string* out);
  bool WriteLocked();

  Options options_;
  const FlightRecorder* recorder_;
  std::vector<uint64_t> cursors_;  ///< per worker ring; last = service ring
  StreamCounters counters_;
  TxnStats stats_;
  bool has_stats_ = false;
  std::function<MvGauges()> gauge_fn_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;
  bool running_ = false;
};

}  // namespace obs
}  // namespace rocc
