#pragma once

#include <string>

#include "harness/stats.h"

namespace rocc {
namespace obs {

/// Render merged run statistics in the Prometheus text exposition format:
/// counters for commits/aborts (aborts labelled by reason via
/// AbortReasonName), gauges for derived rates, and native log-bucketed
/// histograms (cumulative `le` buckets in seconds, plus `_sum`/`_count`) for
/// the end-to-end latencies and the per-phase breakdown. `labels` is spliced
/// verbatim inside the metric braces (e.g. `protocol="rocc"`); pass "" for
/// none.
std::string PrometheusSnapshot(const TxnStats& stats, const std::string& labels);

/// Write PrometheusSnapshot(stats, labels) to `path` (truncating). Returns
/// false on I/O failure.
bool WritePrometheusSnapshot(const TxnStats& stats, const std::string& labels,
                             const char* path);

}  // namespace obs
}  // namespace rocc
