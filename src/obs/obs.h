#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cacheline.h"
#include "common/latch.h"
#include "common/timer.h"
#include "common/tsan.h"

namespace rocc {
namespace obs {

/// Execution phase of a span event; names must stay in sync with PhaseName.
/// The first four are the commit pipeline of every scheme (Fig. 1 of the
/// paper, per-transaction instead of aggregated); the last two come from the
/// retry layer.
enum class Phase : uint8_t {
  kExecute = 0,   ///< Begin -> Commit entry (read/write phase)
  kValidate,      ///< lock + register + readset/scan validation
  kWriteApply,    ///< after-image apply, WAL append, lock release
  kLogWait,       ///< group-commit durability wait
  kBackoff,       ///< ContentionManager per-abort adaptive backoff
  kGateWait,      ///< stalled behind another txn's protected retry
};
constexpr uint32_t kNumPhases = 6;

const char* PhaseName(Phase p);

/// Trace event kinds; names must stay in sync with EventTypeName.
enum class EventType : uint8_t {
  kTxnBegin = 0,  ///< a (sampled) attempt started; a = txn id
  kTxnCommit,     ///< attempt committed; detail = is_scan, a = txn id
  kTxnAbort,      ///< attempt aborted; detail = AbortReason, a = txn id,
                  ///< b = conflicting range id (kNoRange when not a scan abort)
  kSpan,          ///< phase span; detail = Phase, dur_ns = length
  kRangePublish,  ///< range table published; a = new version, b = num ranges
  kRangeSplit,    ///< a = parent range id, b = children created
  kRangeMerge,    ///< a = first merged range id, b = ranges merged
  kWalFlush,      ///< group-commit batch; a = bytes written, b = epoch
  kGateEnter,     ///< protected-retry gate acquired; a = holder thread id
  kGateExit,      ///< protected-retry gate released; a = holder thread id
  kVersionInstall,  ///< MVCC pre-images linked at commit; a = node count
  kVersionGc,     ///< MVCC reclaim pass freed nodes; a = nodes, b = pending
  kSnapshotScan,  ///< snapshot scan finished; a = records, b = chain reads
  kSnapshotEvict, ///< pinned snapshot evicted under prune pressure;
                  ///< tid = victim thread, a = evicted snapshot ts
  kRingResize,    ///< adaptive ring capacity change; a = range id,
                  ///< b = new slot count
  kStall,         ///< watchdog: worker stuck in one phase past threshold;
                  ///< detail = Phase, a = worker id, b = stall millis
  kSloViolation,  ///< attempt latency exceeded --obs-slo-us; detail packs
                  ///< slowest Phase | AbortReason (see kSloPhaseBits),
                  ///< a = txn id, b = total latency in microseconds
};

const char* EventTypeName(EventType t);

/// kSpan detail flag: the span was retroactively force-emitted because its
/// transaction attempt blew the SLO while UNSAMPLED (tail-latency outlier
/// capture). The low bits still carry the Phase.
constexpr uint8_t kOutlierFlag = 0x80;

/// kSloViolation detail layout: low 3 bits = slowest Phase, bits [3..6] =
/// AbortReason of the attempt (0 when it committed).
constexpr uint32_t kSloPhaseBits = 3;
constexpr uint8_t SloDetail(Phase slowest, uint8_t abort_reason) {
  return static_cast<uint8_t>(static_cast<uint8_t>(slowest) |
                              (abort_reason << kSloPhaseBits));
}
constexpr Phase SloDetailPhase(uint8_t detail) {
  return static_cast<Phase>(detail & ((1u << kSloPhaseBits) - 1));
}
constexpr uint8_t SloDetailReason(uint8_t detail) {
  return static_cast<uint8_t>(detail >> kSloPhaseBits);
}

/// Sentinel for "no conflicting range attributed" in kTxnAbort events.
constexpr uint32_t kNoRange = 0xFFFFFFFFu;

/// One POD trace record. 32 bytes so a 2^13-slot ring is 256 KiB per worker.
struct TraceEvent {
  uint64_t ts_ns;   ///< event time (span start for kSpan), NowNanos clock
  uint64_t dur_ns;  ///< span duration; 0 for instant events
  uint64_t a;       ///< type-specific payload (see EventType)
  uint32_t b;       ///< type-specific payload (see EventType)
  uint16_t tid;     ///< worker id / synthetic service tid
  uint8_t type;     ///< EventType
  uint8_t detail;   ///< Phase, AbortReason, or flag, per EventType
};
static_assert(sizeof(TraceEvent) == 32, "keep trace events cache-friendly");

/// Fixed-size power-of-two ring of trace events owned by ONE writer thread.
///
/// Push is wait-free for the owner: one indexed store plus a release store of
/// the head counter. The head only grows; readers (the exporters, possibly in
/// a signal handler) derive the live window as [max(0, head - capacity),
/// head). A reader racing the owner may observe a slot being overwritten —
/// acceptable for a diagnostics dump, and the end-of-run dump happens after
/// the workers joined.
class TraceRing {
 public:
  TraceRing() = default;
  ~TraceRing() { delete[] events_.load(std::memory_order_relaxed); }
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Allocate the slot array (idempotent; owner thread only). `capacity` is
  /// rounded up to a power of two.
  void Init(uint32_t capacity);

  bool initialized() const {
    return events_.load(std::memory_order_acquire) != nullptr;
  }

  /// Owner-only append; drops the event when Init was never called.
  void Push(const TraceEvent& e) {
    TraceEvent* slots = events_.load(std::memory_order_relaxed);
    if (slots == nullptr) return;
    const uint64_t h = head_.load(std::memory_order_relaxed);
    slots[h & mask_] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  /// Total events ever pushed (not clamped to capacity).
  uint64_t head() const { return head_.load(std::memory_order_acquire); }
  uint32_t capacity() const { return static_cast<uint32_t>(mask_ + 1); }

  /// Copy the live window, oldest first, into `out` (appends).
  void Snapshot(std::vector<TraceEvent>* out) const;

  /// Visit the live window oldest-first without allocating (signal-safe).
  /// A reader racing the owner can see a slot mid-overwrite — acceptable
  /// for diagnostics, so each slot is copied out under a tight TSan
  /// ignore-reads bracket and the visitor only ever sees the copy.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const TraceEvent* slots = events_.load(std::memory_order_acquire);
    if (slots == nullptr) return;
    const uint64_t h = head_.load(std::memory_order_acquire);
    const uint64_t lo = h > mask_ + 1 ? h - (mask_ + 1) : 0;
    for (uint64_t seq = lo; seq < h; seq++) {
      TsanIgnoreReadsBegin();
      const TraceEvent copy = slots[seq & mask_];
      TsanIgnoreReadsEnd();
      fn(copy);
    }
  }

  /// Incremental visit for streaming consumers: deliver events with sequence
  /// number >= `from` that are still in the live window, oldest first, and
  /// return the cursor to pass next time (the current head). Events that
  /// fell out of the window between calls are skipped — the caller can
  /// detect the gap as `returned_cursor - from - delivered`.
  template <typename Fn>
  uint64_t ForEachFrom(uint64_t from, Fn&& fn) const {
    const TraceEvent* slots = events_.load(std::memory_order_acquire);
    if (slots == nullptr) return from;
    const uint64_t h = head_.load(std::memory_order_acquire);
    uint64_t lo = h > mask_ + 1 ? h - (mask_ + 1) : 0;
    if (from > lo) lo = from;
    for (uint64_t seq = lo; seq < h; seq++) {
      TsanIgnoreReadsBegin();
      const TraceEvent copy = slots[seq & mask_];
      TsanIgnoreReadsEnd();
      fn(copy);
    }
    return h;
  }

  void Reset() { head_.store(0, std::memory_order_release); }

  // --- per-worker sampling state (owner thread only) ---
  uint64_t sample_countdown = 1;  ///< txns until the next sampled one
  bool sampled = false;           ///< current txn attempt is being traced

 private:
  std::atomic<TraceEvent*> events_{nullptr};
  uint64_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<uint64_t> head_{0};
};

/// Flight-recorder configuration.
struct ObsOptions {
  /// Events per worker ring; rounded up to a power of two.
  uint32_t ring_capacity = 1u << 13;
  /// Trace 1 in N transaction attempts (1 = every txn, 0 = txn tracing off;
  /// rare control-plane events are always recorded while enabled).
  uint32_t sample_period = 64;
  /// Worker ring slots (worker ids above this are silently dropped).
  uint32_t max_workers = 128;
  /// Tail-latency SLO in microseconds (0 = outlier capture off). Attempts
  /// whose total latency exceeds this are force-captured into the worker
  /// ring even when the 1/N countdown did not sample them.
  uint32_t slo_us = 0;
};

/// Always-compiled, runtime-gated flight recorder: per-worker lock-free trace
/// rings plus one latched "service" ring for rare control-plane events
/// (range-table publishes, WAL flush batches) emitted off the worker path.
///
/// Off (no recorder installed) costs one predicted null-pointer branch at
/// each instrumentation site. Enabled, a sampled transaction records POD
/// events with one branch + one indexed store + one relaxed-ordered head
/// store; unsampled transactions pay the branch only. Worker rings are
/// allocated lazily at the worker's first transaction so idle slots cost
/// nothing.
class FlightRecorder {
 public:
  /// Synthetic tid for service-ring events in exported traces.
  static constexpr uint16_t kServiceTid = 0xFFFF;

  explicit FlightRecorder(ObsOptions options);

  /// Transaction-attempt start: advances the 1/N sampling countdown, latches
  /// the per-worker sampled flag, and (when sampled) records kTxnBegin.
  /// Returns the sampled decision.
  bool BeginTxn(uint32_t tid, uint64_t ts_ns, uint64_t txn_id);

  /// True when `tid`'s current transaction attempt is being traced.
  bool IsSampled(uint32_t tid) const {
    return tid < num_workers_ && workers_[tid].value.sampled;
  }

  /// Append to `tid`'s ring (owner thread only; drops when tid out of range).
  void Emit(uint32_t tid, EventType type, uint8_t detail, uint64_t ts_ns,
            uint64_t dur_ns, uint64_t a, uint32_t b) {
    if (tid >= num_workers_) return;
    workers_[tid].value.Push(
        {ts_ns, dur_ns, a, b, static_cast<uint16_t>(tid),
         static_cast<uint8_t>(type), detail});
  }

  /// Append a rare control-plane event to the latched service ring; callable
  /// from any thread (tuner passes, the WAL flusher).
  void EmitService(EventType type, uint8_t detail, uint64_t ts_ns,
                   uint64_t dur_ns, uint64_t a, uint32_t b);

  /// Copy every ring's live window (workers then service), oldest-first per
  /// ring, into `out`.
  void SnapshotAll(std::vector<TraceEvent>* out) const;

  /// Visit every ring's live window without allocating (signal-safe).
  template <typename Fn>
  void ForEachEvent(Fn&& fn) const {
    for (uint32_t i = 0; i < num_workers_; i++) workers_[i].value.ForEach(fn);
    service_.ForEach(fn);
  }

  /// Total events recorded across all rings (including overwritten ones).
  uint64_t TotalEvents() const;

  /// Drop all recorded events; sampling countdowns keep their position.
  void ResetRings();

  // --- stall-watchdog heartbeats (DESIGN.md §16.3) ---
  //
  // One cache-padded word per worker: (Phase + 1) << 56 | phase-entry
  // timestamp (low 56 bits of the NowNanos clock; 2^56 ns ≈ 2.3 years of
  // uptime, far past any run). 0 means idle (no attempt in flight). The
  // owner writes it with a relaxed store at phase boundaries where the
  // commit path already holds a timestamp — zero extra clock reads — and
  // the watchdog thread samples it with relaxed loads. A torn phase/ts
  // pair is impossible (single 64-bit word); a stale read just delays
  // detection by one watchdog period.

  static constexpr uint64_t kHeartbeatTsMask = (1ULL << 56) - 1;

  static constexpr uint64_t PackHeartbeat(Phase phase, uint64_t ts_ns) {
    return ((static_cast<uint64_t>(phase) + 1) << 56) |
           (ts_ns & kHeartbeatTsMask);
  }
  /// 0 when idle, else Phase + 1.
  static constexpr uint32_t HeartbeatPhasePlusOne(uint64_t word) {
    return static_cast<uint32_t>(word >> 56);
  }
  /// Phase-entry timestamp (low 56 bits of the NowNanos clock).
  static constexpr uint64_t HeartbeatTs(uint64_t word) {
    return word & kHeartbeatTsMask;
  }

  void SetHeartbeat(uint32_t tid, Phase phase, uint64_t ts_ns) {
    if (tid < num_workers_) {
      heartbeats_[tid].value.store(PackHeartbeat(phase, ts_ns),
                                   std::memory_order_relaxed);
    }
  }
  void ClearHeartbeat(uint32_t tid) {
    if (tid < num_workers_) {
      heartbeats_[tid].value.store(0, std::memory_order_relaxed);
    }
  }
  uint64_t HeartbeatWord(uint32_t tid) const {
    return tid < num_workers_
               ? heartbeats_[tid].value.load(std::memory_order_relaxed)
               : 0;
  }

  /// Tail-latency SLO threshold in nanoseconds (0 = capture off): a relaxed
  /// read of the hot-reloadable "obs_slo_us" knob.
  uint64_t SloNanos() const {
    return slo_knob_->load(std::memory_order_relaxed) * 1000;
  }

  const ObsOptions& options() const { return options_; }
  uint32_t num_workers() const { return num_workers_; }
  const TraceRing& worker_ring(uint32_t tid) const {
    return workers_[tid].value;
  }
  const TraceRing& service_ring() const { return service_; }

 private:
  ObsOptions options_;
  uint32_t num_workers_;
  std::unique_ptr<CachePadded<TraceRing>[]> workers_;
  std::unique_ptr<CachePadded<std::atomic<uint64_t>>[]> heartbeats_;
  // Hot-reloadable knob cells (KnobRegistry-owned, process-lifetime).
  std::atomic<uint64_t>* sample_knob_;
  std::atomic<uint64_t>* slo_knob_;
  TraceRing service_;
  SpinLatch service_latch_;
};

/// Install `recorder` (may be null to disable) as the process-global
/// recorder; returns the previous one. The caller owns both and must keep the
/// installed recorder alive until it is swapped out and no worker can still
/// be inside an instrumentation site (in practice: install before workers
/// start, uninstall after they join).
FlightRecorder* SetRecorder(FlightRecorder* recorder);

namespace internal {
extern std::atomic<FlightRecorder*> g_recorder;
}  // namespace internal

/// The process-global recorder, or nullptr when observability is off. The
/// relaxed load compiles to a plain load; every hot-path helper below starts
/// with this one predicted branch.
inline FlightRecorder* Recorder() {
  return internal::g_recorder.load(std::memory_order_relaxed);
}

inline bool Enabled() { return Recorder() != nullptr; }

// ---- hot-path helpers (no-ops when no recorder is installed) ----

/// Per-attempt sampling decision + kTxnBegin event.
inline void TxnBegin(uint32_t tid, uint64_t ts_ns, uint64_t txn_id) {
  FlightRecorder* r = Recorder();
  if (r != nullptr) r->BeginTxn(tid, ts_ns, txn_id);
}

inline bool Sampled(uint32_t tid) {
  FlightRecorder* r = Recorder();
  return r != nullptr && r->IsSampled(tid);
}

/// Phase span from timestamps the caller already took (zero extra clock
/// reads on the commit path). Recorded only for sampled transactions.
inline void SpanEvent(uint32_t tid, Phase phase, uint64_t start_ns,
                      uint64_t end_ns, uint64_t txn_id = 0) {
  FlightRecorder* r = Recorder();
  if (r != nullptr && r->IsSampled(tid) && end_ns > start_ns) {
    r->Emit(tid, EventType::kSpan, static_cast<uint8_t>(phase), start_ns,
            end_ns - start_ns, txn_id, 0);
  }
}

/// Always-recorded span (sampling bypassed) for rare, long stalls — gate
/// waits would vanish from 1/N-sampled timelines otherwise.
inline void SpanEventAlways(uint32_t tid, Phase phase, uint64_t start_ns,
                            uint64_t end_ns) {
  FlightRecorder* r = Recorder();
  if (r != nullptr && end_ns > start_ns) {
    r->Emit(tid, EventType::kSpan, static_cast<uint8_t>(phase), start_ns,
            end_ns - start_ns, 0, 0);
  }
}

inline void TxnCommit(uint32_t tid, uint64_t ts_ns, uint64_t txn_id,
                      bool is_scan) {
  FlightRecorder* r = Recorder();
  if (r != nullptr && r->IsSampled(tid)) {
    r->Emit(tid, EventType::kTxnCommit, is_scan ? 1 : 0, ts_ns, 0, txn_id, 0);
  }
}

inline void TxnAbort(uint32_t tid, uint64_t ts_ns, uint64_t txn_id,
                     uint8_t reason, uint32_t conflict_range) {
  FlightRecorder* r = Recorder();
  if (r != nullptr && r->IsSampled(tid)) {
    r->Emit(tid, EventType::kTxnAbort, reason, ts_ns, 0, txn_id,
            conflict_range);
  }
}

/// Rare per-worker event recorded regardless of sampling (gate enter/exit).
inline void WorkerEvent(uint32_t tid, EventType type, uint8_t detail,
                        uint64_t a, uint32_t b) {
  FlightRecorder* r = Recorder();
  if (r != nullptr) r->Emit(tid, type, detail, NowNanos(), 0, a, b);
}

/// Rare control-plane event (range publish/split/merge, WAL flush).
inline void ServiceEvent(EventType type, uint8_t detail, uint64_t ts_ns,
                         uint64_t dur_ns, uint64_t a, uint32_t b) {
  FlightRecorder* r = Recorder();
  if (r != nullptr) r->EmitService(type, detail, ts_ns, dur_ns, a, b);
}

/// Retroactive outlier emit (tail-latency capture, §16.2): a phase span
/// pushed regardless of the sampling decision, tagged with kOutlierFlag so
/// exporters can tell a forced span from a sampled one.
inline void ForceSpanOutlier(uint32_t tid, Phase phase, uint64_t start_ns,
                             uint64_t end_ns, uint64_t txn_id) {
  FlightRecorder* r = Recorder();
  if (r != nullptr && end_ns > start_ns) {
    r->Emit(tid, EventType::kSpan,
            static_cast<uint8_t>(static_cast<uint8_t>(phase) | kOutlierFlag),
            start_ns, end_ns - start_ns, txn_id, 0);
  }
}

/// Stall-watchdog heartbeat: mark `tid` as inside `phase` since `ts_ns`.
/// The caller passes a timestamp it already took — no clock read here.
inline void HeartbeatPhase(uint32_t tid, Phase phase, uint64_t ts_ns) {
  FlightRecorder* r = Recorder();
  if (r != nullptr) r->SetHeartbeat(tid, phase, ts_ns);
}

/// Mark `tid` idle (no transaction attempt in flight).
inline void HeartbeatClear(uint32_t tid) {
  FlightRecorder* r = Recorder();
  if (r != nullptr) r->ClearHeartbeat(tid);
}

/// MVCC pre-image installs of one commit; rides the transaction's sampling
/// decision like the other per-txn events.
inline void VersionInstall(uint32_t tid, uint64_t ts_ns, uint64_t nodes) {
  FlightRecorder* r = Recorder();
  if (r != nullptr && r->IsSampled(tid)) {
    r->Emit(tid, EventType::kVersionInstall, 0, ts_ns, 0, nodes, 0);
  }
}

/// Snapshot-scan completion (records delivered, chain resolutions); sampled.
inline void SnapshotScan(uint32_t tid, uint64_t start_ns, uint64_t end_ns,
                         uint64_t records, uint32_t chain_reads) {
  FlightRecorder* r = Recorder();
  if (r != nullptr && r->IsSampled(tid)) {
    r->Emit(tid, EventType::kSnapshotScan, 0, start_ns,
            end_ns > start_ns ? end_ns - start_ns : 0, records, chain_reads);
  }
}

/// RAII phase timer for sites without pre-existing timestamps. When the
/// current transaction of `tid` is not sampled (or observability is off) the
/// constructor reads no clock and the destructor is one branch.
class ObsSpan {
 public:
  ObsSpan(uint32_t tid, Phase phase) : tid_(tid), phase_(phase) {
    if (Sampled(tid)) start_ns_ = NowNanos();
  }
  ~ObsSpan() {
    if (start_ns_ != 0) SpanEvent(tid_, phase_, start_ns_, NowNanos());
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  uint64_t start_ns_ = 0;
  uint32_t tid_;
  Phase phase_;
};

}  // namespace obs
}  // namespace rocc
