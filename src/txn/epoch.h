#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/cacheline.h"

namespace rocc {

/// Epoch-based reclamation at transaction granularity.
///
/// Transaction descriptors stay reachable through range-list ring slots after
/// their transaction finishes: a validator whose predicate window contains a
/// registration may dereference the registering descriptor. The window
/// argument (DESIGN.md §6) shows such a validator's transaction was active
/// when the descriptor's transaction ended, so a descriptor retired at epoch
/// `r` is safe to recycle once every thread is idle or running a transaction
/// that entered at an epoch > `r`.
///
/// The multi-version row store reuses the same window argument for version
/// nodes: a snapshot reader only traverses chains between Enter and Exit, so
/// a node unlinked (pruned) at epoch `r` cannot be reached by any transaction
/// that enters at an epoch > `r` — MinActive() passing `r` is the grace
/// period after which the node's memory may be recycled (DESIGN.md §12).
///
/// Threads call Enter at transaction begin and Exit at transaction end; Exit
/// opportunistically advances the global epoch.
class EpochManager {
 public:
  static constexpr uint64_t kIdle = ~0ULL;
  static constexpr uint32_t kMaxThreads = 128;

  explicit EpochManager(uint32_t num_threads);

  void Enter(uint32_t thread_id) {
    locals_[thread_id]->store(global_.load(std::memory_order_acquire),
                              std::memory_order_release);
  }

  void Exit(uint32_t thread_id) {
    locals_[thread_id]->store(kIdle, std::memory_order_release);
    TryAdvance();
  }

  uint64_t Current() const { return global_.load(std::memory_order_acquire); }

  /// Minimum epoch over threads currently inside a transaction; the current
  /// global epoch when every thread is idle.
  uint64_t MinActive() const;

  /// True while any thread is inside a transaction. Quiescent maintenance
  /// passes (full version GC, shutdown) assert the negation before touching
  /// owner-only structures.
  bool AnyActive() const;

  /// Advance the global epoch if every active thread has caught up to it.
  void TryAdvance();

  uint32_t num_threads() const { return num_threads_; }

 private:
  const uint32_t num_threads_;
  std::atomic<uint64_t> global_{1};
  std::vector<CachePadded<std::atomic<uint64_t>>> locals_;
};

/// Per-thread deferred-free list; owner-thread only, no locking.
///
/// Objects retired at epoch r are handed back through `Reclaim` once
/// EpochManager::MinActive() exceeds r.
template <typename T>
class RetireList {
 public:
  void Retire(T* obj, uint64_t epoch) { items_.push_back({obj, epoch}); }

  /// Invoke `sink(T*)` for every object whose retire epoch is < min_active.
  template <typename Sink>
  void Reclaim(uint64_t min_active, Sink&& sink) {
    while (!items_.empty() && items_.front().epoch < min_active) {
      sink(items_.front().obj);
      items_.pop_front();
    }
  }

  size_t size() const { return items_.size(); }

 private:
  struct Item {
    T* obj;
    uint64_t epoch;
  };
  std::deque<Item> items_;
};

}  // namespace rocc
