#include "txn/txn.h"

#include <algorithm>
#include <cstring>

namespace rocc {

namespace {

/// Orders PendingInsert entries and probe bounds by (table_id, key).
struct PendingLess {
  bool operator()(const PendingInsert& a, const PendingInsert& b) const {
    if (a.table_id != b.table_id) return a.table_id < b.table_id;
    return a.key < b.key;
  }
};

}  // namespace

void TxnDescriptor::Reset(uint64_t id, uint32_t thread, uint64_t start) {
  txn_id = id;
  thread_id = thread;
  start_ts = start;
  state.store(TxnState::kActive, std::memory_order_release);
  commit_ts.store(0, std::memory_order_release);
  snapshot_reads = false;
  snapshot_ts = 0;
  read_set.clear();
  write_set.clear();
  scan_records.clear();
  scan_set.clear();
  predicates.clear();
  write_buf.clear();
  registered_ranges.clear();
  pending_inserts.clear();
  fingerprints.clear();
  frozen_write_keys.clear();
  index_active_ = false;
  write_index_.Clear();
  row_index_.Clear();
  lock_index.Clear();
}

uint32_t TxnDescriptor::AppendImage(const void* data, uint32_t size) {
  const uint32_t off = static_cast<uint32_t>(write_buf.size());
  write_buf.resize(off + size);
  std::memcpy(write_buf.data() + off, data, size);
  return off;
}

void TxnDescriptor::AppendWrite(WriteEntry we) {
  const int32_t idx = static_cast<int32_t>(write_set.size());
  if (!index_active_ && write_set.size() >= kIndexActivationThreshold) {
    ActivateIndexes();
  }
  if (index_active_) {
    we.prev = write_index_.Put(we.key, we.table_id, idx);
    if (we.row != nullptr) {
      row_index_.PutIfAbsent(reinterpret_cast<uintptr_t>(we.row), 0, idx);
    }
  } else {
    we.prev = FindWrite(we.table_id, we.key);  // linear below the threshold
  }
  if (we.kind == WriteEntry::Kind::kInsert) {
    const PendingInsert pi{we.key, we.table_id};
    pending_inserts.insert(
        std::lower_bound(pending_inserts.begin(), pending_inserts.end(), pi,
                         PendingLess{}),
        pi);
  } else if (we.kind == WriteEntry::Kind::kDelete && we.prev >= 0) {
    // Deleting a key whose chain began with an insert cancels the pending
    // insert: the key must no longer surface in this transaction's scans.
    const PendingInsert pi{we.key, we.table_id};
    const auto it = std::lower_bound(pending_inserts.begin(),
                                     pending_inserts.end(), pi, PendingLess{});
    if (it != pending_inserts.end() && it->key == we.key &&
        it->table_id == we.table_id) {
      pending_inserts.erase(it);
    }
  }
  write_set.push_back(we);
}

void TxnDescriptor::BindRow(int32_t idx, Row* row) {
  // Below the activation threshold FindWriteByRow scans write_set directly
  // (LockWriteSet assigns every entry's row), so only the index needs it.
  if (index_active_) {
    row_index_.PutIfAbsent(reinterpret_cast<uintptr_t>(row), 0, idx);
  }
}

void TxnDescriptor::ActivateIndexes() {
  index_active_ = true;
  for (size_t i = 0; i < write_set.size(); i++) {
    const WriteEntry& we = write_set[i];
    write_index_.Put(we.key, we.table_id, static_cast<int32_t>(i));
    if (we.row != nullptr) {
      row_index_.PutIfAbsent(reinterpret_cast<uintptr_t>(we.row), 0,
                             static_cast<int32_t>(i));
    }
  }
}

void TxnDescriptor::PendingInsertKeysInto(uint32_t table_id, uint64_t lo,
                                          uint64_t hi,
                                          std::vector<uint64_t>* out) const {
  const PendingInsert lo_probe{lo, table_id};
  auto it = std::lower_bound(pending_inserts.begin(), pending_inserts.end(),
                             lo_probe, PendingLess{});
  for (; it != pending_inserts.end() && it->table_id == table_id && it->key < hi;
       ++it) {
    out->push_back(it->key);
  }
}

void TxnDescriptor::FreezeWriteFingerprints() {
  fingerprints.clear();
  frozen_write_keys.clear();
  if (write_set.empty()) return;
  frozen_write_keys.reserve(write_set.size());
  // Single-table fast path: bulk transactions typically write one table, so
  // the grouping sort degenerates to a key sort.
  bool single_table = true;
  const uint32_t table0 = write_set[0].table_id;
  for (const WriteEntry& we : write_set) {
    if (we.table_id != table0) {
      single_table = false;
      break;
    }
  }
  if (single_table) {
    for (const WriteEntry& we : write_set) frozen_write_keys.push_back(we.key);
    std::sort(frozen_write_keys.begin(), frozen_write_keys.end());
    fingerprints.push_back({table0, frozen_write_keys.front(),
                            frozen_write_keys.back(), 0,
                            static_cast<uint32_t>(frozen_write_keys.size())});
    return;
  }
  // General path: sort (table, key) pairs, then cut per-table slices.
  std::vector<std::pair<uint64_t, uint64_t>> pairs;  // (table, key)
  pairs.reserve(write_set.size());
  for (const WriteEntry& we : write_set) pairs.emplace_back(we.table_id, we.key);
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 0; i < pairs.size();) {
    const uint32_t table = static_cast<uint32_t>(pairs[i].first);
    const uint32_t first = static_cast<uint32_t>(frozen_write_keys.size());
    uint64_t key_min = pairs[i].second;
    uint64_t key_max = key_min;
    for (; i < pairs.size() && pairs[i].first == table; i++) {
      key_max = pairs[i].second;
      frozen_write_keys.push_back(pairs[i].second);
    }
    fingerprints.push_back(
        {table, key_min, key_max, first,
         static_cast<uint32_t>(frozen_write_keys.size()) - first});
  }
}

bool TxnDescriptor::WritesIntersect(uint32_t table_id, uint64_t lo,
                                    uint64_t hi) const {
  if (lo >= hi) return false;
  for (const WriteFingerprint& fp : fingerprints) {
    if (fp.table_id != table_id) continue;
    if (fp.key_max < lo || fp.key_min >= hi) return false;  // interval reject
    const uint64_t* first = frozen_write_keys.data() + fp.first;
    const uint64_t* last = first + fp.count;
    const uint64_t* it = std::lower_bound(first, last, lo);
    return it != last && *it < hi;
  }
  return false;
}

}  // namespace rocc
