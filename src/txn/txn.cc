#include "txn/txn.h"

#include <cstring>

namespace rocc {

void TxnDescriptor::Reset(uint64_t id, uint32_t thread, uint64_t start) {
  txn_id = id;
  thread_id = thread;
  start_ts = start;
  state.store(TxnState::kActive, std::memory_order_release);
  commit_ts.store(0, std::memory_order_release);
  read_set.clear();
  write_set.clear();
  scan_records.clear();
  scan_set.clear();
  predicates.clear();
  write_buf.clear();
  registered_ranges.clear();
}

uint32_t TxnDescriptor::AppendImage(const void* data, uint32_t size) {
  const uint32_t off = static_cast<uint32_t>(write_buf.size());
  write_buf.resize(off + size);
  std::memcpy(write_buf.data() + off, data, size);
  return off;
}

int TxnDescriptor::FindWrite(uint32_t table_id, uint64_t key) const {
  for (size_t i = 0; i < write_set.size(); i++) {
    if (write_set[i].table_id == table_id && write_set[i].key == key) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int TxnDescriptor::FindWriteByRow(const Row* row) const {
  for (size_t i = 0; i < write_set.size(); i++) {
    if (write_set[i].row == row) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace rocc
