#include "txn/epoch.h"

namespace rocc {

EpochManager::EpochManager(uint32_t num_threads)
    : num_threads_(num_threads), locals_(num_threads) {
  for (auto& l : locals_) l->store(kIdle, std::memory_order_relaxed);
}

uint64_t EpochManager::MinActive() const {
  uint64_t min_epoch = kIdle;
  for (uint32_t i = 0; i < num_threads_; i++) {
    const uint64_t e = locals_[i]->load(std::memory_order_acquire);
    if (e < min_epoch) min_epoch = e;
  }
  return min_epoch == kIdle ? Current() : min_epoch;
}

bool EpochManager::AnyActive() const {
  for (uint32_t i = 0; i < num_threads_; i++) {
    if (locals_[i]->load(std::memory_order_acquire) != kIdle) return true;
  }
  return false;
}

void EpochManager::TryAdvance() {
  const uint64_t g = global_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < num_threads_; i++) {
    const uint64_t e = locals_[i]->load(std::memory_order_acquire);
    if (e != kIdle && e < g) return;  // a straggler is still in an older epoch
  }
  // Several threads may race here; at most one CAS succeeds per epoch value.
  uint64_t expected = g;
  global_.compare_exchange_strong(expected, g + 1, std::memory_order_acq_rel);
}

}  // namespace rocc
