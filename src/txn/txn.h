#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "storage/row.h"

namespace rocc {

/// Transaction life-cycle states. `kValidating` and `kCommitted` descriptors
/// may be examined concurrently by validators of other transactions.
enum class TxnState : uint8_t {
  kInactive = 0,
  kActive,      ///< read phase
  kValidating,  ///< locks held, registered, commit ts may not be assigned yet
  kCommitted,
  kAborted,
};

/// One record-level read tracked for OCC readset validation.
struct ReadEntry {
  Row* row;
  uint64_t observed_tid;  ///< full TID word observed at read time
};

/// One deferred write (update / insert / delete).
struct WriteEntry {
  enum class Kind : uint8_t { kUpdate, kInsert, kDelete };

  Row* row;           ///< resolved row; for inserts, the placeholder (set at lock time)
  uint64_t key;
  uint32_t table_id;
  Kind kind;
  bool locked;        ///< this transaction holds the record lock
  uint32_t data_offset;  ///< offset of the after-image in write_buf
  uint32_t data_size;    ///< after-image length
  uint32_t field_offset; ///< byte offset within the row payload to apply at
  int32_t prev;          ///< previous write_set entry for the same (table, key); -1 = none
};

/// One record captured by an LRV scan (pointer + observed version).
struct ScanRecord {
  Row* row;
  uint64_t observed_tid;
};

/// One key-range scan operation, tracked for LRV re-scan validation.
struct ScanEntry {
  uint32_t table_id;
  uint64_t start_key;
  uint64_t end_key;   ///< exclusive; last returned key + 1 (set after the scan)
  uint64_t limit;     ///< max records the scan requested (0 = unbounded)
  uint32_t first_record;  ///< index into scan_records
  uint32_t num_records;
};

class TxnRing;
struct LogicalRange;

/// Range predicate exactly as in paper §III-B:
/// {rangeID, rd_ts, start_key, end_key, cover}.
///
/// GWV reuses the same structure with range_id 0 against its single global
/// list; MVRCC drops the key precision (cover forced true).
///
/// With the adaptive range table (DESIGN.md §10) a predicate additionally
/// snapshots the table version, the logical range it was built against, and
/// the range's predecessor rings: after a split/merge the child range's
/// fresh ring starts empty, so writers that registered in the replaced
/// range's ring during the transition window are only visible through the
/// predecessor snapshots. ROCC fills these; GWV leaves the defaults.
struct RangePredicate {
  /// Predecessor rings a range can carry (= the merge fan-in bound).
  static constexpr uint32_t kMaxPrevRings = 4;

  uint32_t table_id;
  uint32_t range_id;
  uint64_t rd_ts;      ///< primary ring version observed before scanning
  uint64_t start_key;  ///< precise scanned scope, inclusive
  uint64_t end_key;    ///< exclusive
  bool cover;          ///< predicate fully covers the logical range

  uint64_t table_version = 0;    ///< range-table version at snapshot time
  TxnRing* ring = nullptr;       ///< primary ring (rd_ts belongs to it)
  LogicalRange* range = nullptr; ///< snapshot range (bounds + attribution)
  uint32_t num_prev = 0;
  struct PrevRing {
    TxnRing* ring;
    uint64_t rd_ts;
  } prev[kMaxPrevRings];         ///< version-fenced predecessor snapshots
};

/// A key this transaction has a live pending insert for; kept sorted by
/// (table_id, key) so scans can slice their window in O(log W).
struct PendingInsert {
  uint64_t key;
  uint32_t table_id;
};

/// Frozen summary of one table's share of a committed-or-committing write
/// set: key interval plus a slice of `frozen_write_keys` holding the table's
/// written keys in ascending order. Built once the write set is frozen
/// (after the lock phase, before registration) so concurrent validators can
/// interval-reject and binary-search instead of walking the write set.
struct WriteFingerprint {
  uint32_t table_id;
  uint64_t key_min;  ///< inclusive
  uint64_t key_max;  ///< inclusive
  uint32_t first;    ///< offset into frozen_write_keys
  uint32_t count;
};

/// Open-addressed hash map from a 128-bit key to a write_set index, cleared
/// in O(1) by bumping a generation tag. Backs the transaction-local write
/// indexes so point lookups stay O(1) for bulk write sets of thousands of
/// entries. No deletion support: per-transaction indexes only ever append.
class TxnIndexMap {
 public:
  /// Forget every entry. O(1) amortized: bumps the generation; slots are
  /// physically wiped only when the 32-bit generation wraps.
  void Clear() {
    count_ = 0;
    if (++gen_ == 0) {
      std::fill(slots_.begin(), slots_.end(), Slot{});
      gen_ = 1;
    }
  }

  /// Value stored for (k1, k2), or -1 when absent.
  int32_t Find(uint64_t k1, uint64_t k2) const {
    if (slots_.empty()) return -1;
    for (uint32_t i = Hash(k1, k2) & mask_;; i = (i + 1) & mask_) {
      const Slot& s = slots_[i];
      if (s.gen != gen_) return -1;
      if (s.k1 == k1 && s.k2 == k2) return s.value;
    }
  }

  /// Insert or overwrite; returns the previous value (-1 when absent).
  int32_t Put(uint64_t k1, uint64_t k2, int32_t value) {
    if ((count_ + 1) * 4 >= slots_.size() * 3) Grow();
    for (uint32_t i = Hash(k1, k2) & mask_;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.gen != gen_) {
        s = {k1, k2, value, gen_};
        count_++;
        return -1;
      }
      if (s.k1 == k1 && s.k2 == k2) {
        const int32_t old = s.value;
        s.value = value;
        return old;
      }
    }
  }

  /// Insert only when absent; returns the existing value or -1 if inserted.
  int32_t PutIfAbsent(uint64_t k1, uint64_t k2, int32_t value) {
    if ((count_ + 1) * 4 >= slots_.size() * 3) Grow();
    for (uint32_t i = Hash(k1, k2) & mask_;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.gen != gen_) {
        s = {k1, k2, value, gen_};
        count_++;
        return -1;
      }
      if (s.k1 == k1 && s.k2 == k2) return s.value;
    }
  }

 private:
  struct Slot {
    uint64_t k1 = 0;
    uint64_t k2 = 0;
    int32_t value = 0;
    uint32_t gen = 0;  ///< occupied iff equal to the owner's current gen
  };

  static uint32_t Hash(uint64_t k1, uint64_t k2) {
    // SplitMix64 finalizer over the mixed pair.
    uint64_t x = k1 ^ (k2 * 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<uint32_t>(x);
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    const size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = static_cast<uint32_t>(cap - 1);
    count_ = 0;
    for (const Slot& s : old) {
      if (s.gen != gen_) continue;
      for (uint32_t i = Hash(s.k1, s.k2) & mask_;; i = (i + 1) & mask_) {
        if (slots_[i].gen != gen_) {
          slots_[i] = s;
          count_++;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  uint32_t mask_ = 0;
  uint32_t count_ = 0;
  uint32_t gen_ = 1;
};

/// Transaction descriptor shared between the owning worker and concurrent
/// validators.
///
/// Ownership discipline:
///  - During the read phase only the owner mutates the sets.
///  - Registration into a (range) list is a release operation; validators
///    reading the slot acquire it, so `write_set` contents and the frozen
///    fingerprints — both frozen before registration — are safely visible.
///  - `state` and `commit_ts` are the only fields mutated after registration
///    and are atomics.
///  - Descriptors are recycled through epoch-based reclamation so a validator
///    never observes a reused descriptor (see EpochManager).
///
/// Write-set bookkeeping keeps every per-operation lookup O(1):
///  - `write_index` maps (table, key) to the NEWEST write_set entry for the
///    key; entries for one key are chained through WriteEntry::prev, newest
///    to oldest, so the chronological overlay (partial field images composing
///    left to right) replays along the chain instead of the whole set.
///  - `row_index` maps a resolved Row* to the OLDEST entry holding it
///    (the old FindWriteByRow first-match contract).
///  - `pending_inserts` mirrors the keys whose newest chain state is a live
///    insert, sorted by (table, key), so a scan slices its window in
///    O(log W) instead of rebuilding and sorting per call.
///
/// In-transaction key life cycle (pinned by the overlay model test):
/// a delete is terminal for a key — later Update/Remove return NotFound and
/// Insert returns KeyExists; removing one's own pending insert cancels it.
///
/// Small write sets (point transactions) never touch the hash indexes: below
/// kIndexActivationThreshold entries, lookups fall back to a linear scan of
/// `write_set`, which fits in a cache line or two and beats hashing. The
/// indexes are populated lazily by the append that crosses the threshold.
class TxnDescriptor {
 public:
  /// Write-set size at which the hash indexes take over from linear scans.
  static constexpr size_t kIndexActivationThreshold = 16;
  uint64_t txn_id = 0;
  uint32_t thread_id = 0;
  uint64_t start_ts = 0;
  uint64_t begin_nanos = 0;  ///< wall-clock at Begin, for phase accounting
  bool is_scan_txn = false;  ///< workload marks bulk/scan transactions
  bool snapshot_reads = false;  ///< route read-only scans through SnapshotScan
  uint64_t snapshot_ts = 0;  ///< acquired snapshot (0 = none yet); freezes the
                             ///< txn read-only once set
  std::atomic<TxnState> state{TxnState::kInactive};
  std::atomic<uint64_t> commit_ts{0};  ///< 0 = not yet assigned

  std::vector<ReadEntry> read_set;
  std::vector<WriteEntry> write_set;
  std::vector<ScanRecord> scan_records;
  std::vector<ScanEntry> scan_set;
  std::vector<RangePredicate> predicates;
  std::vector<char> write_buf;  ///< after-images referenced by write_set

  /// Rings this transaction registered to, as sorted ring-pointer tags (for
  /// once-per-ring dedup in O(log R)). Keyed on the ring rather than the
  /// range id because the adaptive range table can remap a key to a fresh
  /// ring mid-commit; the registration invariant is one entry per ring.
  std::vector<uint64_t> registered_ranges;

  /// Live pending inserts, sorted by (table_id, key).
  std::vector<PendingInsert> pending_inserts;

  /// Frozen validation fingerprints (one per written table) and the sorted
  /// key slices they reference; built by FreezeWriteFingerprints.
  std::vector<WriteFingerprint> fingerprints;
  std::vector<uint64_t> frozen_write_keys;

  /// 2PL-only: row -> read_set index of the lock-tracking entry.
  TxnIndexMap lock_index;

  /// Prepare the descriptor for a new transaction.
  void Reset(uint64_t id, uint32_t thread, uint64_t start);

  /// Append an after-image and return its offset in write_buf.
  uint32_t AppendImage(const void* data, uint32_t size);

  /// Append a write entry, maintaining the write index, the per-key chain,
  /// the row index, and the pending-insert view. `we.prev` is set here.
  void AppendWrite(WriteEntry we);

  /// Bind the resolved row of entry `idx` (insert placeholders get theirs at
  /// lock time) into the row index.
  void BindRow(int32_t idx, Row* row);

  /// NEWEST write entry for (table, key); -1 when the key is untouched.
  int FindWrite(uint32_t table_id, uint64_t key) const {
    if (!index_active_) {
      for (int i = static_cast<int>(write_set.size()) - 1; i >= 0; i--) {
        const WriteEntry& we = write_set[i];
        if (we.key == key && we.table_id == table_id) return i;
      }
      return -1;
    }
    return write_index_.Find(key, table_id);
  }

  /// OLDEST write entry holding this row pointer; -1 when absent.
  int FindWriteByRow(const Row* row) const {
    if (!index_active_) {
      for (size_t i = 0; i < write_set.size(); i++) {
        if (write_set[i].row == row) return static_cast<int>(i);
      }
      return -1;
    }
    return row_index_.Find(reinterpret_cast<uintptr_t>(row), 0);
  }

  /// NEWEST write entry holding this row pointer; -1 when absent.
  int FindLatestWriteByRow(const Row* row) const {
    const int oldest = FindWriteByRow(row);
    if (oldest < 0) return oldest;
    return FindWrite(write_set[oldest].table_id, write_set[oldest].key);
  }

  /// Apply the key's pending images chronologically onto `out` (a row-sized
  /// buffer), starting from the newest full image (an insert) or the chain
  /// head. `idx` must not be a delete entry.
  void ReplayChain(int32_t idx, char* out) const {
    const WriteEntry& we = write_set[idx];
    if (we.kind != WriteEntry::Kind::kInsert && we.prev >= 0) {
      ReplayChain(we.prev, out);
    }
    std::memcpy(out + we.field_offset, write_buf.data() + we.data_offset,
                we.data_size);
  }

  /// Append the keys with a live pending insert in `table_id` × [lo, hi),
  /// ascending, to `out` (which is not cleared).
  void PendingInsertKeysInto(uint32_t table_id, uint64_t lo, uint64_t hi,
                             std::vector<uint64_t>* out) const;

  /// Build the per-table validation fingerprints from the (now frozen) write
  /// set. Must run after the last AppendWrite and before the descriptor is
  /// registered: registration is the release point that makes the summaries
  /// visible to concurrent validators, and they are never touched afterwards.
  void FreezeWriteFingerprints();

  /// Validator-side: does the frozen write set touch any key of `table_id`
  /// in [lo, hi)? Interval reject + binary search, O(log W).
  bool WritesIntersect(uint32_t table_id, uint64_t lo, uint64_t hi) const;

  const char* ImageAt(uint32_t offset) const { return write_buf.data() + offset; }

  bool HasWrites() const { return !write_set.empty(); }

 private:
  /// Populate both indexes from the existing write set; called by the append
  /// that crosses kIndexActivationThreshold. Ascending replay leaves the
  /// write index at the newest entry per key and the row index at the oldest
  /// entry per row, matching the incremental-maintenance invariants.
  void ActivateIndexes();

  bool index_active_ = false;
  TxnIndexMap write_index_;  ///< (key, table) -> newest write_set index
  TxnIndexMap row_index_;    ///< row ptr -> oldest write_set index
};

}  // namespace rocc
