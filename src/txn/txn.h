#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "storage/row.h"

namespace rocc {

/// Transaction life-cycle states. `kValidating` and `kCommitted` descriptors
/// may be examined concurrently by validators of other transactions.
enum class TxnState : uint8_t {
  kInactive = 0,
  kActive,      ///< read phase
  kValidating,  ///< locks held, registered, commit ts may not be assigned yet
  kCommitted,
  kAborted,
};

/// One record-level read tracked for OCC readset validation.
struct ReadEntry {
  Row* row;
  uint64_t observed_tid;  ///< full TID word observed at read time
};

/// One deferred write (update / insert / delete).
struct WriteEntry {
  enum class Kind : uint8_t { kUpdate, kInsert, kDelete };

  Row* row;           ///< resolved row; for inserts, the placeholder (set at lock time)
  uint64_t key;
  uint32_t table_id;
  Kind kind;
  bool locked;        ///< this transaction holds the record lock
  uint32_t data_offset;  ///< offset of the after-image in write_buf
  uint32_t data_size;    ///< after-image length
  uint32_t field_offset; ///< byte offset within the row payload to apply at
};

/// One record captured by an LRV scan (pointer + observed version).
struct ScanRecord {
  Row* row;
  uint64_t observed_tid;
};

/// One key-range scan operation, tracked for LRV re-scan validation.
struct ScanEntry {
  uint32_t table_id;
  uint64_t start_key;
  uint64_t end_key;   ///< exclusive; last returned key + 1 (set after the scan)
  uint64_t limit;     ///< max records the scan requested (0 = unbounded)
  uint32_t first_record;  ///< index into scan_records
  uint32_t num_records;
};

/// Range predicate exactly as in paper §III-B:
/// {rangeID, rd_ts, start_key, end_key, cover}.
///
/// GWV reuses the same structure with range_id 0 against its single global
/// list; MVRCC drops the key precision (cover forced true).
struct RangePredicate {
  uint32_t table_id;
  uint32_t range_id;
  uint64_t rd_ts;      ///< list version observed before scanning this range
  uint64_t start_key;  ///< precise scanned scope, inclusive
  uint64_t end_key;    ///< exclusive
  bool cover;          ///< predicate fully covers the logical range
};

/// Transaction descriptor shared between the owning worker and concurrent
/// validators.
///
/// Ownership discipline:
///  - During the read phase only the owner mutates the sets.
///  - Registration into a (range) list is a release operation; validators
///    reading the slot acquire it, so `write_set` contents — frozen before
///    registration — are safely visible.
///  - `state` and `commit_ts` are the only fields mutated after registration
///    and are atomics.
///  - Descriptors are recycled through epoch-based reclamation so a validator
///    never observes a reused descriptor (see EpochManager).
class TxnDescriptor {
 public:
  uint64_t txn_id = 0;
  uint32_t thread_id = 0;
  uint64_t start_ts = 0;
  uint64_t begin_nanos = 0;  ///< wall-clock at Begin, for phase accounting
  bool is_scan_txn = false;  ///< workload marks bulk/scan transactions
  std::atomic<TxnState> state{TxnState::kInactive};
  std::atomic<uint64_t> commit_ts{0};  ///< 0 = not yet assigned

  std::vector<ReadEntry> read_set;
  std::vector<WriteEntry> write_set;
  std::vector<ScanRecord> scan_records;
  std::vector<ScanEntry> scan_set;
  std::vector<RangePredicate> predicates;
  std::vector<char> write_buf;  ///< after-images referenced by write_set

  /// Ranges this transaction registered to (for once-per-range dedup);
  /// packed as (table_id << 32 | range_id).
  std::vector<uint64_t> registered_ranges;

  /// Prepare the descriptor for a new transaction.
  void Reset(uint64_t id, uint32_t thread, uint64_t start);

  /// Append an after-image and return its offset in write_buf.
  uint32_t AppendImage(const void* data, uint32_t size);

  /// Find an existing write entry for (table, key); -1 when absent.
  int FindWrite(uint32_t table_id, uint64_t key) const;

  /// Find a write entry holding this row pointer; -1 when absent.
  int FindWriteByRow(const Row* row) const;

  const char* ImageAt(uint32_t offset) const { return write_buf.data() + offset; }

  bool HasWrites() const { return !write_set.empty(); }
};

}  // namespace rocc
