#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cacheline.h"

namespace rocc {

/// Global commit-timestamp generator.
///
/// Both GWV (HyPer-style) and ROCC serialize transactions by commit
/// timestamps drawn from one global counter (paper §II-B). Versions loaded
/// into the database at bulk-load time use timestamp 1, so the counter starts
/// at 1 and the first transactional commit gets 2.
class GlobalClock {
 public:
  /// Timestamp assigned to bulk-loaded row versions.
  static constexpr uint64_t kInitialVersion = 1;

  /// Draw the next commit timestamp (strictly increasing, > kInitialVersion).
  uint64_t Next() { return counter_->fetch_add(1, std::memory_order_acq_rel) + 1; }

  /// Read the latest issued timestamp without advancing (start timestamps).
  uint64_t Current() const { return counter_->load(std::memory_order_acquire); }

  /// Raise the counter to at least `ts`. Used after recovery so new commits
  /// draw timestamps strictly above every restored row version.
  void AdvanceTo(uint64_t ts) {
    uint64_t cur = counter_->load(std::memory_order_acquire);
    while (cur < ts &&
           !counter_->compare_exchange_weak(cur, ts, std::memory_order_acq_rel)) {
    }
  }

 private:
  CachePadded<std::atomic<uint64_t>> counter_{{kInitialVersion}};
};

/// Snapshot-timestamp source derived from the commit clock (DESIGN.md §12).
///
/// A committing writer publishes the clock value it observed into its
/// per-thread slot (BeginCommit) BEFORE drawing its commit timestamp, and
/// clears the slot (EndCommit) only after its writes are fully applied and
/// its locks released. Because a writer's commit timestamp is strictly
/// greater than the clock value it published, SafeSnapshot() — the minimum
/// over active slots, or the current clock when none are active — returns a
/// timestamp S such that every transaction with commit timestamp <= S has
/// fully applied its writes, and every in-flight or future commit lands
/// strictly above S. The set of versions <= S is therefore immutable: a
/// consistent snapshot, valid forever.
///
/// Why the returned value cannot miss a low writer: SafeSnapshot reads the
/// clock FIRST, then the slots. If its clock read observed a writer's
/// timestamp draw (an acq_rel RMW), it synchronizes with the draw and the
/// later slot reads must see that writer's earlier slot store (or its even
/// later EndCommit, which means the writes are applied). A writer whose slot
/// store is not yet visible must draw its timestamp after our clock read, so
/// its commit timestamp exceeds our clock value and cannot invalidate S.
///
/// Raw per-call results can regress (a writer may publish a stale clock value
/// late), so SafeSnapshot folds results through a monotone high-watermark:
/// results are totally ordered and non-decreasing, which the version pruner's
/// safety argument relies on (see mv::VersionStore::MinSnapshot).
class CommitWatermark {
 public:
  static constexpr uint64_t kIdle = ~0ULL;

  CommitWatermark(GlobalClock* clock, uint32_t num_threads)
      : clock_(clock), num_threads_(num_threads), slots_(num_threads) {
    for (auto& s : slots_) s->store(kIdle, std::memory_order_relaxed);
  }

  /// Enter the commit window: publish the pre-draw clock value. Must run
  /// before the caller's GlobalClock::Next() so the drawn timestamp is
  /// strictly greater than the published value.
  void BeginCommit(uint32_t thread_id) {
    slots_[thread_id]->store(clock_->Current(), std::memory_order_seq_cst);
  }

  /// Leave the commit window; call only after every write of the commit is
  /// applied and every write lock released (commit or abort path alike).
  void EndCommit(uint32_t thread_id) {
    slots_[thread_id]->store(kIdle, std::memory_order_release);
  }

  /// Highest snapshot timestamp known to be consistent (see class comment).
  /// Monotone non-decreasing across calls.
  uint64_t SafeSnapshot() const;

 private:
  GlobalClock* clock_;
  const uint32_t num_threads_;
  std::vector<CachePadded<std::atomic<uint64_t>>> slots_;
  /// Monotone fold of raw SafeSnapshot results (see class comment).
  mutable CachePadded<std::atomic<uint64_t>> high_{{GlobalClock::kInitialVersion}};
};

}  // namespace rocc
