#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.h"

namespace rocc {

/// Global commit-timestamp generator.
///
/// Both GWV (HyPer-style) and ROCC serialize transactions by commit
/// timestamps drawn from one global counter (paper §II-B). Versions loaded
/// into the database at bulk-load time use timestamp 1, so the counter starts
/// at 1 and the first transactional commit gets 2.
class GlobalClock {
 public:
  /// Timestamp assigned to bulk-loaded row versions.
  static constexpr uint64_t kInitialVersion = 1;

  /// Draw the next commit timestamp (strictly increasing, > kInitialVersion).
  uint64_t Next() { return counter_->fetch_add(1, std::memory_order_acq_rel) + 1; }

  /// Read the latest issued timestamp without advancing (start timestamps).
  uint64_t Current() const { return counter_->load(std::memory_order_acquire); }

  /// Raise the counter to at least `ts`. Used after recovery so new commits
  /// draw timestamps strictly above every restored row version.
  void AdvanceTo(uint64_t ts) {
    uint64_t cur = counter_->load(std::memory_order_acquire);
    while (cur < ts &&
           !counter_->compare_exchange_weak(cur, ts, std::memory_order_acq_rel)) {
    }
  }

 private:
  CachePadded<std::atomic<uint64_t>> counter_{{kInitialVersion}};
};

}  // namespace rocc
