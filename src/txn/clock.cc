#include "txn/clock.h"

// GlobalClock is header-only; this translation unit anchors the header in the
// library and implements the CommitWatermark cold path.

namespace rocc {

uint64_t CommitWatermark::SafeSnapshot() const {
  // Clock first, then slots — the order the visibility argument in the class
  // comment depends on. seq_cst keeps these reads, the slot publishes, and
  // the high-watermark folds in one total order.
  uint64_t s = clock_->Current();
  for (uint32_t i = 0; i < num_threads_; i++) {
    const uint64_t v = slots_[i]->load(std::memory_order_seq_cst);
    if (v != kIdle && v < s) s = v;
  }
  // Monotone fold: concurrent callers return values ordered by their RMW
  // position, so a later caller never observes a smaller safe snapshot.
  uint64_t cur = high_->load(std::memory_order_seq_cst);
  while (cur < s) {
    if (high_->compare_exchange_weak(cur, s, std::memory_order_seq_cst)) {
      return s;
    }
  }
  return cur;
}

}  // namespace rocc
