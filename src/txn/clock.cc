#include "txn/clock.h"

// GlobalClock is header-only; this translation unit anchors the header in the
// library so missing-include errors surface at library build time.
