#include "sync/optiql.h"

#include <cassert>
#include <cstring>
#include <mutex>
#include <vector>

namespace rocc {
namespace sync {

namespace detail {
std::atomic<uint8_t> g_lock_impl{static_cast<uint8_t>(LockImpl::kCas)};
}  // namespace detail

bool ParseLockImpl(const std::string& name, LockImpl* out) {
  if (name == "cas") {
    *out = LockImpl::kCas;
    return true;
  }
  if (name == "optiql") {
    *out = LockImpl::kOptiql;
    return true;
  }
  if (name == "adaptive") {
    *out = LockImpl::kAdaptive;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// QNode pools.
//
// One slab of kQNodeSlotsPerThread qnodes per OS thread (fibers share their
// host thread's slab: acquire and release always happen on the same OS
// thread, so the free stack needs no synchronization). Slabs are registered
// in a global table so a PREDECESSOR on another thread can resolve a
// successor's id to a node pointer during handoff; they are never freed —
// when a thread exits its tid goes back on a free list and the next new
// thread reuses the slab (safe: a thread at exit holds no qnodes, so no
// stale ids referencing the slab can be in flight).

namespace {

struct ThreadQPool {
  QNode nodes[kQNodeSlotsPerThread];
  // Free-slot stack, touched only by the owning OS thread.
  uint16_t free_slots[kQNodeSlotsPerThread];
  uint32_t free_top = 0;
  // Abandoned (OpRead drop-out) ids still linked in some queue; recycled once
  // the releaser marks them kConsumed. Owner thread only.
  uint16_t pending[kQNodeSlotsPerThread];
  uint32_t pending_top = 0;
};

std::atomic<ThreadQPool*> g_qpools[kMaxQNodeThreads] = {};

std::mutex g_tid_mutex;
std::vector<uint32_t> g_free_tids;
uint32_t g_next_tid = 0;

/// Recycle pending abandoned nodes whose releaser has finished with them
/// (granted == kConsumed). Owner thread only; compacts in place.
void SweepPending(ThreadQPool* pool) {
  uint32_t kept = 0;
  for (uint32_t i = 0; i < pool->pending_top; i++) {
    const uint16_t slot = pool->pending[i];
    if (pool->nodes[slot].granted.load(std::memory_order_acquire) ==
        QNode::kConsumed) {
      pool->free_slots[pool->free_top++] = slot;
    } else {
      pool->pending[kept++] = slot;
    }
  }
  pool->pending_top = kept;
}

struct TidOwner {
  uint32_t tid = UINT32_MAX;
  ThreadQPool* pool = nullptr;

  ~TidOwner() {
    if (tid == UINT32_MAX) return;
    if (pool != nullptr) {
      // Drain abandoned nodes before recycling the slab to the next thread:
      // a releaser on another thread may still be walking toward one. By
      // thread exit every latch this thread queued on is past its critical
      // sections, so the releaser reaches and consumes each node promptly.
      while (pool->pending_top != 0) {
        SweepPending(pool);
        if (pool->pending_top != 0) std::this_thread::yield();
      }
      assert(pool->free_top == kQNodeSlotsPerThread);
    }
    std::lock_guard<std::mutex> g(g_tid_mutex);
    g_free_tids.push_back(tid);
  }
};

thread_local TidOwner t_qowner;

ThreadQPool* RegisterThisThread() {
  uint32_t tid;
  {
    std::lock_guard<std::mutex> g(g_tid_mutex);
    if (!g_free_tids.empty()) {
      tid = g_free_tids.back();
      g_free_tids.pop_back();
    } else if (g_next_tid < kMaxQNodeThreads) {
      tid = g_next_tid++;
    } else {
      return nullptr;  // callers fall back to the CAS path
    }
  }
  ThreadQPool* pool = g_qpools[tid].load(std::memory_order_acquire);
  if (pool == nullptr) {
    pool = new ThreadQPool();
    for (uint32_t i = 0; i < kQNodeSlotsPerThread; i++) {
      pool->free_slots[i] = static_cast<uint16_t>(i);
    }
    pool->free_top = kQNodeSlotsPerThread;
    // Release so cross-thread QNodeForId lookups see constructed nodes.
    g_qpools[tid].store(pool, std::memory_order_release);
  }
  t_qowner.tid = tid;
  t_qowner.pool = pool;
  return pool;
}

}  // namespace

uint16_t AcquireQNode() {
  ThreadQPool* pool = t_qowner.pool;
  if (pool == nullptr) {
    pool = RegisterThisThread();
    if (pool == nullptr) return 0;
  }
  if (pool->pending_top != 0) SweepPending(pool);
  if (pool->free_top == 0) return 0;  // exhausted: caller falls back to CAS
  const uint16_t slot = pool->free_slots[--pool->free_top];
  QNode& n = pool->nodes[slot];
  n.next.store(0, std::memory_order_relaxed);
  n.granted.store(0, std::memory_order_relaxed);
  return static_cast<uint16_t>(t_qowner.tid * kQNodeSlotsPerThread + slot + 1);
}

void ReleaseQNode(uint16_t id) {
  assert(id != 0);
  const uint32_t idx = id - 1u;
  const uint32_t tid = idx / kQNodeSlotsPerThread;
  const uint16_t slot = static_cast<uint16_t>(idx % kQNodeSlotsPerThread);
  // Only the acquiring OS thread releases (fibers run on their host thread).
  assert(tid == t_qowner.tid);
  (void)tid;
  ThreadQPool* pool = t_qowner.pool;
  assert(pool != nullptr && pool->free_top < kQNodeSlotsPerThread);
  pool->free_slots[pool->free_top++] = slot;
}

QNode* QNodeForId(uint16_t id) {
  assert(id != 0);
  const uint32_t idx = id - 1u;
  const uint32_t tid = idx / kQNodeSlotsPerThread;
  ThreadQPool* pool = g_qpools[tid].load(std::memory_order_acquire);
  assert(pool != nullptr);
  return &pool->nodes[idx % kQNodeSlotsPerThread];
}

void DeferReleaseQNode(uint16_t id) {
  assert(id != 0);
  const uint32_t idx = id - 1u;
  assert(idx / kQNodeSlotsPerThread == t_qowner.tid);
  ThreadQPool* pool = t_qowner.pool;
  assert(pool != nullptr && pool->pending_top < kQNodeSlotsPerThread);
  pool->pending[pool->pending_top++] =
      static_cast<uint16_t>(idx % kQNodeSlotsPerThread);
}

// ---------------------------------------------------------------------------
// VersionLatch.

uint64_t VersionLatch::StableSlow() const {
  // Yielding backoff: under the fiber runtime the lock holder (or a queued
  // writer that will become the holder) may be a suspended fiber on this
  // same OS thread — a non-yielding spin would never let it run.
  SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  for (;;) {
    const uint64_t v = word_.load(std::memory_order_acquire);
    if ((v & kLockedBit) == 0) return v;
    backoff.Pause();
  }
}

void VersionLatch::WriteLock(Guard& g, ContendedHint* hint) {
  uint16_t qid = 0;
  if (UseQueue(hint)) qid = AcquireQNode();
  if (qid != 0) {
    AcquireQueued(qid);
    g.qid = qid;
    return;
  }
  // CAS mode, or qnode pool exhausted: bounded-free CAS loop with backoff.
  g.qid = 0;
  SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  bool scored = false;
  uint64_t w = word_.load(std::memory_order_relaxed);
  for (;;) {
    if ((w & kLockedBit) != 0) {
      // Adaptive promotion: score a held lock once per call, not per spin —
      // one blocked acquire is one contention observation.
      if (!scored && hint != nullptr && GetLockImpl() == LockImpl::kAdaptive) {
        hint->NoteContended();
        scored = true;
      }
      backoff.Pause();
      w = word_.load(std::memory_order_relaxed);
      continue;
    }
    // Unlocked words carry no tail bits, so this cannot clobber a queue.
    if (word_.compare_exchange_weak(w, w | kLockedBit,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

bool VersionLatch::UpgradeSlow(uint64_t expected, Guard& g) {
  const uint16_t qid = AcquireQNode();
  if (qid == 0) {
    // Pool exhausted: degrade to the plain CAS upgrade.
    g.qid = 0;
    uint64_t e = expected;
    return word_.compare_exchange_strong(e, expected | kLockedBit,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }
  // Uncontended attempt: one CAS installs locked bit + ourselves as tail.
  uint64_t e = expected;
  if (word_.compare_exchange_strong(e, expected | kLockedBit | TailWord(qid),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    g.qid = qid;
    return true;
  }
  if ((e & kVersionMask) != (expected & kVersionMask)) {
    // The version already moved: queuing can't help, restart immediately.
    ReleaseQNode(qid);
    return false;
  }
  // Same version but locked/queued: this is the CAS storm the queue exists
  // for. Enqueue, wait our FIFO turn spinning on our own node, then
  // revalidate — if no predecessor modified the node we win the upgrade with
  // zero restarts; otherwise the outcome was decided the moment a
  // predecessor bumped the version, and the cancelable wait drops out of the
  // queue right then (OpRead): no point acquiring a lock only to release it
  // unbumped, and no point making the queue behind us wait for that.
  if (!AcquireQueuedCancelable(qid, expected)) return false;
  g.qid = qid;
  const uint64_t w = word_.load(std::memory_order_relaxed);
  if ((w & kVersionMask) == (expected & kVersionMask)) return true;
  // Granted concurrently with the version moving: release unbumped.
  Release(qid, /*bump=*/false);
  g.qid = 0;
  return false;
}

void VersionLatch::AcquireQueued(uint16_t qid) {
  QNode* me = QNodeForId(qid);
  SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  uint64_t w = word_.load(std::memory_order_acquire);
  for (;;) {
    const uint16_t tail = TailOf(w);
    if (tail == 0) {
      if ((w & kLockedBit) != 0) {
        // Held by a queue-less (fallback CAS) owner: nothing to link behind,
        // wait for the release.
        backoff.Pause();
        w = word_.load(std::memory_order_acquire);
        continue;
      }
      // Unlocked: take the lock and install ourselves as tail in one CAS.
      if (word_.compare_exchange_weak(w, w | kLockedBit | TailWord(qid),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return;
      }
      continue;
    }
    // A queue exists (lock held throughout a handoff chain): swap ourselves
    // in as the new tail, link behind the predecessor, and spin LOCALLY on
    // our own granted flag — the shared word is touched exactly once.
    if (!word_.compare_exchange_weak(w, (w & ~kTailMask) | TailWord(qid),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      continue;
    }
    QNodeForId(tail)->next.store(qid, std::memory_order_release);
    while (me->granted.load(std::memory_order_acquire) == QNode::kWaiting) {
      backoff.Pause();
    }
    return;
  }
}

bool VersionLatch::AcquireQueuedCancelable(uint16_t qid, uint64_t expected) {
  QNode* me = QNodeForId(qid);
  SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  uint64_t w = word_.load(std::memory_order_acquire);
  for (;;) {
    if ((w & kVersionMask) != (expected & kVersionMask)) {
      // Not enqueued yet: nothing links to us, recycle immediately.
      ReleaseQNode(qid);
      return false;
    }
    const uint16_t tail = TailOf(w);
    if (tail == 0) {
      if ((w & kLockedBit) != 0) {
        // Held by a queue-less (fallback CAS) owner; wait for the release.
        backoff.Pause();
        w = word_.load(std::memory_order_acquire);
        continue;
      }
      if (word_.compare_exchange_weak(w, w | kLockedBit | TailWord(qid),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return true;
      }
      continue;
    }
    if (!word_.compare_exchange_weak(w, (w & ~kTailMask) | TailWord(qid),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      continue;
    }
    QNodeForId(tail)->next.store(qid, std::memory_order_release);
    // Local spin, watching the version: once a predecessor bumps it our
    // upgrade is decided-failed, so abandon the node (the releaser skips it
    // at handoff) instead of waiting out the whole chain for a lock we would
    // release unbumped anyway.
    for (;;) {
      const uint8_t gr = me->granted.load(std::memory_order_acquire);
      if (gr != QNode::kWaiting) return true;  // granted: we own the lock
      const uint64_t now = word_.load(std::memory_order_acquire);
      if ((now & kVersionMask) != (expected & kVersionMask)) {
        uint8_t g0 = QNode::kWaiting;
        if (me->granted.compare_exchange_strong(g0, QNode::kAbandoned,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
          DeferReleaseQNode(qid);
          return false;
        }
        return true;  // lost the race to a concurrent handoff: we own it
      }
      backoff.Pause();
    }
  }
}

void VersionLatch::Release(uint16_t qid, bool bump) {
  QNode* me = QNodeForId(qid);
  uint64_t w = word_.load(std::memory_order_relaxed);
  while (TailOf(w) == qid) {
    // No successor: clear locked bit + tail, optionally advancing the
    // version, in one CAS. The unlocked word is again a bare (even) version.
    const uint64_t ver = w & kVersionMask;
    if (word_.compare_exchange_weak(w, bump ? ver + 2 : ver,
                                    std::memory_order_release,
                                    std::memory_order_relaxed)) {
      ReleaseQNode(qid);
      return;
    }
  }
  // A successor swapped itself in as tail. Publish our version step first,
  // while the lock stays continuously held (readers cannot snapshot between
  // the bump and the handoff: the locked bit never clears), then walk the
  // chain: grant the first waiter still waiting, skipping nodes whose owner
  // abandoned the wait (OpRead drop-out). A skipped node is marked
  // kConsumed only after we are done reading its `next`, which is the
  // owner's license to recycle it.
  if (bump) {
    // +2 advances the version field (bits 1..47) by one step and leaves the
    // locked bit and tail field untouched.
    word_.fetch_add(2, std::memory_order_release);
  }
  SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  uint16_t cur;
  while ((cur = me->next.load(std::memory_order_acquire)) == 0) {
    backoff.Pause();
  }
  ReleaseQNode(qid);  // done with our own node
  for (;;) {
    QNode* n = QNodeForId(cur);
    uint8_t g0 = QNode::kWaiting;
    if (n->granted.compare_exchange_strong(g0, QNode::kGranted,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      return;  // handed off
    }
    // Abandoned. If it is the tail, try to release the lock outright by
    // clearing locked bit + tail (the version bump already happened above).
    assert(g0 == QNode::kAbandoned);
    w = word_.load(std::memory_order_relaxed);
    while (TailOf(w) == cur) {
      const uint64_t ver = w & kVersionMask;
      if (word_.compare_exchange_weak(w, ver, std::memory_order_release,
                                      std::memory_order_relaxed)) {
        n->granted.store(QNode::kConsumed, std::memory_order_release);
        return;
      }
    }
    // A successor linked (or is about to link) behind the abandoned node:
    // take its `next`, consume it, and continue the walk there.
    uint16_t nx;
    while ((nx = n->next.load(std::memory_order_acquire)) == 0) {
      backoff.Pause();
    }
    n->granted.store(QNode::kConsumed, std::memory_order_release);
    cur = nx;
  }
}

// ---------------------------------------------------------------------------
// QueuedTryAcquire — bounded FIFO acquire for external try-locks.

namespace {

/// MCS tails for external try-lock queues, one per stripe, selected by
/// hashing the lock's address. Cache-padded: neighboring stripes are hot.
constexpr size_t kTryStripes = 2048;
static_assert((kTryStripes & (kTryStripes - 1)) == 0, "must be a power of 2");

CachePadded<std::atomic<uint16_t>> g_try_tails[kTryStripes];

size_t StripeFor(const void* key) {
  uint64_t h = reinterpret_cast<uintptr_t>(key);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<size_t>(h) & (kTryStripes - 1);
}

std::atomic<int> g_lock_quiesce{0};

}  // namespace

void SetLockQuiesce(bool on) {
  g_lock_quiesce.fetch_add(on ? 1 : -1, std::memory_order_acq_rel);
}

bool LockQuiesceRequested() {
  return g_lock_quiesce.load(std::memory_order_acquire) > 0;
}

bool QueuedTryAcquire(const void* key, int attempts, bool (*try_fn)(void*),
                      void* arg, bool cancelable) {
  const uint16_t qid = AcquireQNode();
  if (qid == 0) {
    // Pool exhausted: plain bounded retry, equivalent to the old spin path.
    SpinBackoff backoff(/*cap_spins=*/64, /*yield=*/false);
    for (int i = 0; i < attempts; i++) {
      if (try_fn(arg)) return true;
      backoff.Pause();
    }
    return false;
  }

  std::atomic<uint16_t>& tail = *g_try_tails[StripeFor(key)];
  QNode* me = QNodeForId(qid);
  const uint16_t pred = tail.exchange(qid, std::memory_order_acq_rel);
  if (pred != 0) {
    QNodeForId(pred)->next.store(qid, std::memory_order_release);
    // Yielding wait for headship — BOUNDED, exactly like the head's attempt
    // budget. Stripes are shared across unrelated rows, so the chain ahead
    // can be waiting on locks we transitively hold (the caller sits in the
    // sorted lock phase with earlier write-set locks taken): waiting out the
    // whole chain couples two lock orders into a near-deadlock that starves
    // protected retries. Past the budget we drop out of the queue instead —
    // same protocol as the OpRead upgrade drop-out: flag the node abandoned
    // so the handoff walk skips it, defer-recycle, and report failure (the
    // caller aborts and releases its locks).
    SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
    int waited = 0;
    while (me->granted.load(std::memory_order_acquire) == QNode::kWaiting) {
      ++waited;
      // Normal operation rides the queue out: FIFO handoff is cheap under a
      // fiber scheduler and aborting mid-queue just re-forms the same queue
      // behind fresher registrants. The tighter budget applies to cancelable
      // waiters while a protected retry quiesces the system (the chain ahead
      // may transitively wait on locks our caller holds); it matches the
      // head's own attempt budget — aggressive enough to drain a stripe well
      // inside the protected retry window, gentle enough not to feed an
      // abort storm back into the escalation logic. The wide cap is a
      // backstop against genuine cross-stripe coupling cycles.
      if (waited > ((cancelable && LockQuiesceRequested()) ? attempts
                                                           : attempts * 64)) {
        uint8_t g0 = QNode::kWaiting;
        if (me->granted.compare_exchange_strong(g0, QNode::kAbandoned,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
          DeferReleaseQNode(qid);
          return false;
        }
        break;  // headship landed concurrently: we own the head role now
      }
      backoff.Pause();
    }
  }

  // We are the queue head: only WE retry the try-lock — everyone behind us
  // spins on their own node instead of hammering the lock word. The budget
  // keeps this safe to call while holding other locks (sorted validator
  // phase).
  bool acquired = false;
  SpinBackoff backoff(/*cap_spins=*/64, /*yield=*/true);
  for (int i = 0; i < attempts; i++) {
    if (try_fn(arg)) {
      acquired = true;
      break;
    }
    backoff.Pause();
  }

  // Pass the headship on (FIFO) whether or not we acquired, skipping
  // successors that dropped out. Mirror of VersionLatch::Release's walk: a
  // CAS win on kWaiting hands off; an abandoned node is consumed (the
  // owner's license to recycle it) only after we are done reading its
  // `next`, and an abandoned tail lets us close the queue outright.
  uint16_t expected = qid;
  if (tail.compare_exchange_strong(expected, 0, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    ReleaseQNode(qid);
    return acquired;
  }
  SpinBackoff link_backoff(/*cap_spins=*/256, /*yield=*/true);
  uint16_t cur;
  while ((cur = me->next.load(std::memory_order_acquire)) == 0) {
    link_backoff.Pause();
  }
  ReleaseQNode(qid);  // done with our own node
  for (;;) {
    QNode* n = QNodeForId(cur);
    uint8_t g0 = QNode::kWaiting;
    if (n->granted.compare_exchange_strong(g0, QNode::kGranted,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      return acquired;  // headship handed off
    }
    assert(g0 == QNode::kAbandoned);
    expected = cur;
    if (tail.compare_exchange_strong(expected, 0, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      n->granted.store(QNode::kConsumed, std::memory_order_release);
      return acquired;  // abandoned tail: queue closed
    }
    uint16_t nx;
    while ((nx = n->next.load(std::memory_order_acquire)) == 0) {
      link_backoff.Pause();
    }
    n->granted.store(QNode::kConsumed, std::memory_order_release);
    cur = nx;
  }
}

}  // namespace sync
}  // namespace rocc
