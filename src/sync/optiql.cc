#include "sync/optiql.h"

#include <cassert>
#include <cstring>
#include <mutex>
#include <vector>

namespace rocc {
namespace sync {

namespace detail {
std::atomic<uint8_t> g_lock_impl{static_cast<uint8_t>(LockImpl::kCas)};
}  // namespace detail

bool ParseLockImpl(const std::string& name, LockImpl* out) {
  if (name == "cas") {
    *out = LockImpl::kCas;
    return true;
  }
  if (name == "optiql") {
    *out = LockImpl::kOptiql;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// QNode pools.
//
// One slab of kQNodeSlotsPerThread qnodes per OS thread (fibers share their
// host thread's slab: acquire and release always happen on the same OS
// thread, so the free stack needs no synchronization). Slabs are registered
// in a global table so a PREDECESSOR on another thread can resolve a
// successor's id to a node pointer during handoff; they are never freed —
// when a thread exits its tid goes back on a free list and the next new
// thread reuses the slab (safe: a thread at exit holds no qnodes, so no
// stale ids referencing the slab can be in flight).

namespace {

struct ThreadQPool {
  QNode nodes[kQNodeSlotsPerThread];
  // Free-slot stack, touched only by the owning OS thread.
  uint16_t free_slots[kQNodeSlotsPerThread];
  uint32_t free_top = 0;
};

std::atomic<ThreadQPool*> g_qpools[kMaxQNodeThreads] = {};

std::mutex g_tid_mutex;
std::vector<uint32_t> g_free_tids;
uint32_t g_next_tid = 0;

struct TidOwner {
  uint32_t tid = UINT32_MAX;
  ThreadQPool* pool = nullptr;

  ~TidOwner() {
    if (tid == UINT32_MAX) return;
    assert(pool == nullptr || pool->free_top == kQNodeSlotsPerThread);
    std::lock_guard<std::mutex> g(g_tid_mutex);
    g_free_tids.push_back(tid);
  }
};

thread_local TidOwner t_qowner;

ThreadQPool* RegisterThisThread() {
  uint32_t tid;
  {
    std::lock_guard<std::mutex> g(g_tid_mutex);
    if (!g_free_tids.empty()) {
      tid = g_free_tids.back();
      g_free_tids.pop_back();
    } else if (g_next_tid < kMaxQNodeThreads) {
      tid = g_next_tid++;
    } else {
      return nullptr;  // callers fall back to the CAS path
    }
  }
  ThreadQPool* pool = g_qpools[tid].load(std::memory_order_acquire);
  if (pool == nullptr) {
    pool = new ThreadQPool();
    for (uint32_t i = 0; i < kQNodeSlotsPerThread; i++) {
      pool->free_slots[i] = static_cast<uint16_t>(i);
    }
    pool->free_top = kQNodeSlotsPerThread;
    // Release so cross-thread QNodeForId lookups see constructed nodes.
    g_qpools[tid].store(pool, std::memory_order_release);
  }
  t_qowner.tid = tid;
  t_qowner.pool = pool;
  return pool;
}

}  // namespace

uint16_t AcquireQNode() {
  ThreadQPool* pool = t_qowner.pool;
  if (pool == nullptr) {
    pool = RegisterThisThread();
    if (pool == nullptr) return 0;
  }
  if (pool->free_top == 0) return 0;  // exhausted: caller falls back to CAS
  const uint16_t slot = pool->free_slots[--pool->free_top];
  QNode& n = pool->nodes[slot];
  n.next.store(0, std::memory_order_relaxed);
  n.granted.store(0, std::memory_order_relaxed);
  return static_cast<uint16_t>(t_qowner.tid * kQNodeSlotsPerThread + slot + 1);
}

void ReleaseQNode(uint16_t id) {
  assert(id != 0);
  const uint32_t idx = id - 1u;
  const uint32_t tid = idx / kQNodeSlotsPerThread;
  const uint16_t slot = static_cast<uint16_t>(idx % kQNodeSlotsPerThread);
  // Only the acquiring OS thread releases (fibers run on their host thread).
  assert(tid == t_qowner.tid);
  (void)tid;
  ThreadQPool* pool = t_qowner.pool;
  assert(pool != nullptr && pool->free_top < kQNodeSlotsPerThread);
  pool->free_slots[pool->free_top++] = slot;
}

QNode* QNodeForId(uint16_t id) {
  assert(id != 0);
  const uint32_t idx = id - 1u;
  const uint32_t tid = idx / kQNodeSlotsPerThread;
  ThreadQPool* pool = g_qpools[tid].load(std::memory_order_acquire);
  assert(pool != nullptr);
  return &pool->nodes[idx % kQNodeSlotsPerThread];
}

// ---------------------------------------------------------------------------
// VersionLatch.

uint64_t VersionLatch::StableSlow() const {
  // Yielding backoff: under the fiber runtime the lock holder (or a queued
  // writer that will become the holder) may be a suspended fiber on this
  // same OS thread — a non-yielding spin would never let it run.
  SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  for (;;) {
    const uint64_t v = word_.load(std::memory_order_acquire);
    if ((v & kLockedBit) == 0) return v;
    backoff.Pause();
  }
}

void VersionLatch::WriteLock(Guard& g) {
  uint16_t qid = 0;
  if (OptiqlEnabled()) qid = AcquireQNode();
  if (qid != 0) {
    AcquireQueued(qid);
    g.qid = qid;
    return;
  }
  // CAS mode, or qnode pool exhausted: bounded-free CAS loop with backoff.
  g.qid = 0;
  SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  uint64_t w = word_.load(std::memory_order_relaxed);
  for (;;) {
    if ((w & kLockedBit) != 0) {
      backoff.Pause();
      w = word_.load(std::memory_order_relaxed);
      continue;
    }
    // Unlocked words carry no tail bits, so this cannot clobber a queue.
    if (word_.compare_exchange_weak(w, w | kLockedBit,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

bool VersionLatch::UpgradeSlow(uint64_t expected, Guard& g) {
  const uint16_t qid = AcquireQNode();
  if (qid == 0) {
    // Pool exhausted: degrade to the plain CAS upgrade.
    g.qid = 0;
    uint64_t e = expected;
    return word_.compare_exchange_strong(e, expected | kLockedBit,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }
  // Uncontended attempt: one CAS installs locked bit + ourselves as tail.
  uint64_t e = expected;
  if (word_.compare_exchange_strong(e, expected | kLockedBit | TailWord(qid),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    g.qid = qid;
    return true;
  }
  if ((e & kVersionMask) != (expected & kVersionMask)) {
    // The version already moved: queuing can't help, restart immediately.
    ReleaseQNode(qid);
    return false;
  }
  // Same version but locked/queued: this is the CAS storm the queue exists
  // for. Enqueue, wait our FIFO turn spinning on our own node, then
  // revalidate — if no predecessor modified the node we win the upgrade with
  // zero restarts; otherwise release unbumped and restart having waited out
  // the burst instead of amplifying it.
  AcquireQueued(qid);
  g.qid = qid;
  const uint64_t w = word_.load(std::memory_order_relaxed);
  if ((w & kVersionMask) == (expected & kVersionMask)) return true;
  Release(qid, /*bump=*/false);
  g.qid = 0;
  return false;
}

void VersionLatch::AcquireQueued(uint16_t qid) {
  QNode* me = QNodeForId(qid);
  SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  uint64_t w = word_.load(std::memory_order_acquire);
  for (;;) {
    const uint16_t tail = TailOf(w);
    if (tail == 0) {
      if ((w & kLockedBit) != 0) {
        // Held by a queue-less (fallback CAS) owner: nothing to link behind,
        // wait for the release.
        backoff.Pause();
        w = word_.load(std::memory_order_acquire);
        continue;
      }
      // Unlocked: take the lock and install ourselves as tail in one CAS.
      if (word_.compare_exchange_weak(w, w | kLockedBit | TailWord(qid),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return;
      }
      continue;
    }
    // A queue exists (lock held throughout a handoff chain): swap ourselves
    // in as the new tail, link behind the predecessor, and spin LOCALLY on
    // our own granted flag — the shared word is touched exactly once.
    if (!word_.compare_exchange_weak(w, (w & ~kTailMask) | TailWord(qid),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      continue;
    }
    QNodeForId(tail)->next.store(qid, std::memory_order_release);
    while (me->granted.load(std::memory_order_acquire) == 0) backoff.Pause();
    return;
  }
}

void VersionLatch::Release(uint16_t qid, bool bump) {
  QNode* me = QNodeForId(qid);
  uint64_t w = word_.load(std::memory_order_relaxed);
  while (TailOf(w) == qid) {
    // No successor: clear locked bit + tail, optionally advancing the
    // version, in one CAS. The unlocked word is again a bare (even) version.
    const uint64_t ver = w & kVersionMask;
    if (word_.compare_exchange_weak(w, bump ? ver + 2 : ver,
                                    std::memory_order_release,
                                    std::memory_order_relaxed)) {
      ReleaseQNode(qid);
      return;
    }
  }
  // A successor swapped itself in as tail; wait for it to link behind us,
  // publish our version step while the lock stays continuously held, and
  // hand over by setting its granted flag.
  SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
  uint16_t succ;
  while ((succ = me->next.load(std::memory_order_acquire)) == 0) {
    backoff.Pause();
  }
  if (bump) {
    // +2 advances the version field (bits 1..47) by one step and leaves the
    // locked bit and tail field untouched. Readers cannot snapshot between
    // this and the handoff: the locked bit never clears.
    word_.fetch_add(2, std::memory_order_release);
  }
  QNodeForId(succ)->granted.store(1, std::memory_order_release);
  ReleaseQNode(qid);
}

// ---------------------------------------------------------------------------
// QueuedTryAcquire — bounded FIFO acquire for external try-locks.

namespace {

/// MCS tails for external try-lock queues, one per stripe, selected by
/// hashing the lock's address. Cache-padded: neighboring stripes are hot.
constexpr size_t kTryStripes = 2048;
static_assert((kTryStripes & (kTryStripes - 1)) == 0, "must be a power of 2");

CachePadded<std::atomic<uint16_t>> g_try_tails[kTryStripes];

size_t StripeFor(const void* key) {
  uint64_t h = reinterpret_cast<uintptr_t>(key);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<size_t>(h) & (kTryStripes - 1);
}

}  // namespace

bool QueuedTryAcquire(const void* key, int attempts, bool (*try_fn)(void*),
                      void* arg) {
  const uint16_t qid = AcquireQNode();
  if (qid == 0) {
    // Pool exhausted: plain bounded retry, equivalent to the old spin path.
    SpinBackoff backoff(/*cap_spins=*/64, /*yield=*/false);
    for (int i = 0; i < attempts; i++) {
      if (try_fn(arg)) return true;
      backoff.Pause();
    }
    return false;
  }

  std::atomic<uint16_t>& tail = *g_try_tails[StripeFor(key)];
  QNode* me = QNodeForId(qid);
  const uint16_t pred = tail.exchange(qid, std::memory_order_acq_rel);
  if (pred != 0) {
    QNodeForId(pred)->next.store(qid, std::memory_order_release);
    // Yielding wait: the predecessor may be a fiber on this OS thread. The
    // wait is bounded — every queue head ahead of us gives up after
    // `attempts` tries and hands the headship on FIFO.
    SpinBackoff backoff(/*cap_spins=*/256, /*yield=*/true);
    while (me->granted.load(std::memory_order_acquire) == 0) backoff.Pause();
  }

  // We are the queue head: only WE retry the try-lock — everyone behind us
  // spins on their own node instead of hammering the lock word. The budget
  // keeps this safe to call while holding other locks (sorted validator
  // phase): stripes are shared across unrelated rows, so an unbounded wait
  // could couple two lock orders into a cycle.
  bool acquired = false;
  SpinBackoff backoff(/*cap_spins=*/64, /*yield=*/true);
  for (int i = 0; i < attempts; i++) {
    if (try_fn(arg)) {
      acquired = true;
      break;
    }
    backoff.Pause();
  }

  // Pass the headship on (FIFO) whether or not we acquired.
  uint16_t expected = qid;
  if (!tail.compare_exchange_strong(expected, 0, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    SpinBackoff link_backoff(/*cap_spins=*/256, /*yield=*/true);
    uint16_t succ;
    while ((succ = me->next.load(std::memory_order_acquire)) == 0) {
      link_backoff.Pause();
    }
    QNodeForId(succ)->granted.store(1, std::memory_order_release);
  }
  ReleaseQNode(qid);
  return acquired;
}

}  // namespace sync
}  // namespace rocc
