#pragma once

// Contention-robust synchronization primitives (DESIGN.md §13).
//
// The hot synchronization points of this system — the B+Tree's optimistic
// node latch and the row TID word's lock bit — were plain CAS loops. Under
// the skewed cells the per-reason abort counters show what that costs: every
// waiter hammers one shared cacheline, the CAS storm evicts the holder's
// line, and lock_fail / ring_lost aborts dominate attribution while the
// ContentionManager papers over the retries with backoff.
//
// OptiQL (Shi, Yan & Wang, "OptiQL: Robust Optimistic Locking for
// Memory-Optimized Indexes", SIGMOD 2024) extends the classic MCS queue lock
// with optimistic reads: the lock word doubles as an optimistic version, so
//
//  - readers stay completely latch-free (same stable-version / validate
//    protocol as before, zero extra cost), and
//  - writers under contention enqueue once on the shared word and then spin
//    LOCALLY on their own cache-line-sized queue node until the predecessor
//    hands the lock over — fair FIFO degradation instead of a CAS storm.
//
// This header provides:
//
//  - `VersionLatch`  : the OLC node latch. 64-bit word layout
//                        [ tail qnode id : 16 | version : 47 | locked : 1 ]
//                      Versions are even when unlocked and advance by one
//                      version step (word += 2) per modifying writer, exactly
//                      like the previous latch, so readers are untouched.
//                      Invariant: the tail field is nonzero iff the locked
//                      bit is set (acquires install both in one CAS, the
//                      final release clears both in one CAS), hence an
//                      UNLOCKED word always equals its bare version and
//                      readers never need to mask anything.
//  - `QueuedTryAcquire` : a bounded FIFO acquire path for EXTERNAL try-locks
//                      whose word has no room for a queue (the packed Silo
//                      TID word, bits 62/63 + 62-bit version, is fully
//                      spoken for by MVCC and WAL consumers). Waiters queue
//                      MCS-style on a cache-padded stripe keyed by the row
//                      address; only the queue head retries the CAS.
//  - `SpinBackoff`   : CPU-relax pause + capped exponential backoff for spin
//                      loops, fiber-aware (a yielding waiter lets a
//                      cooperatively-scheduled lock holder run; a bounded
//                      no-yield variant preserves try-lock abort semantics).
//
// The lock implementation is selectable at runtime
// (`--lock=cas|optiql|adaptive` in the benches, SetLockImpl here) so the
// paired-median A/B harness can compare them in one process; `adaptive`
// starts every latch on the CAS path and promotes individual latches to the
// queue from their own contention counters (ContendedHint). Switching is
// only legal while no latch is held or queued: idle words are bit-identical
// in all modes.
//
// Queue nodes come from per-worker pools (no allocation on the lock path)
// and the handoff uses std::atomic release/acquire throughout, so
// ThreadSanitizer sees every happens-before edge natively — the lock needs
// no TSan annotations, unlike the deliberately-racy seqlock copy in
// common/tsan.h.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/cacheline.h"
#include "common/fiber.h"

namespace rocc {
namespace sync {

// ---------------------------------------------------------------------------
// Runtime lock-implementation selection.

enum class LockImpl : uint8_t {
  kCas = 0,      ///< plain CAS loops (the pre-OptiQL behavior)
  kOptiql = 1,   ///< MCS queue + optimistic reads
  kAdaptive = 2, ///< per-latch cas->optiql promotion from contention counters
};

namespace detail {
extern std::atomic<uint8_t> g_lock_impl;
}  // namespace detail

inline LockImpl GetLockImpl() {
  return static_cast<LockImpl>(detail::g_lock_impl.load(std::memory_order_relaxed));
}

/// Process-global switch. Only call while no latch is held or queued (e.g.
/// between benchmark runs, before workers start).
inline void SetLockImpl(LockImpl impl) {
  detail::g_lock_impl.store(static_cast<uint8_t>(impl), std::memory_order_relaxed);
}

inline bool OptiqlEnabled() { return GetLockImpl() == LockImpl::kOptiql; }

/// True when the current impl may queue writers at all. Paths without a
/// per-latch promotion hint (the striped row try-lock, range-ring combining)
/// treat kAdaptive like kOptiql: they are shared/striped structures, already
/// contended by construction when reached.
inline bool QueueCapable() { return GetLockImpl() != LockImpl::kCas; }

/// Parse "cas" / "optiql" / "adaptive"; returns false (and leaves `out`
/// alone) on typos.
bool ParseLockImpl(const std::string& name, LockImpl* out);

inline const char* LockImplName(LockImpl impl) {
  switch (impl) {
    case LockImpl::kOptiql: return "optiql";
    case LockImpl::kAdaptive: return "adaptive";
    default: return "cas";
  }
}

// ---------------------------------------------------------------------------
// ContendedHint — per-latch cas->optiql promotion state (kAdaptive mode).

/// Tiny saturating contention score embedded next to a latch (the B+Tree
/// node header has padding for it). In kAdaptive mode a latch starts on the
/// plain CAS path; every contended-lock failure (same version, lock held)
/// scores it, and once the score saturates the latch switches to the queued
/// path permanently. Promotion is monotone by design: a latch hot enough to
/// promote has already demonstrated the CAS storm, and the queued path costs
/// nothing measurable when the latch later goes cold (uncontended queued
/// acquire is one CAS, same as the fast path).
struct ContendedHint {
  static constexpr uint16_t kPromoteAt = 64;

  std::atomic<uint16_t> score{0};

  bool Promoted() const {
    return score.load(std::memory_order_relaxed) >= kPromoteAt;
  }

  /// Score one contended-lock observation (bounded overshoot under races).
  void NoteContended() {
    if (score.load(std::memory_order_relaxed) < kPromoteAt) {
      score.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

/// Central mode decision for latch write paths: kCas never queues, kOptiql
/// always queues, kAdaptive queues once this latch's hint promoted.
inline bool UseQueue(const ContendedHint* hint) {
  const LockImpl impl = GetLockImpl();
  if (impl == LockImpl::kCas) return false;
  if (impl == LockImpl::kOptiql) return true;
  return hint != nullptr && hint->Promoted();
}

// ---------------------------------------------------------------------------
// SpinBackoff — pause + capped exponential backoff for spin loops.

/// Replaces bare CpuRelax() spins. Each Pause() burns an exponentially
/// growing (capped) number of pause instructions; once the cap is reached a
/// yielding backoff additionally gives the core away so a descheduled lock
/// holder can run.
///
/// Inside a fiber a *yielding* backoff switches fibers immediately: spinning
/// is pure waste on the single OS thread, and a queue waiter that refuses to
/// yield would deadlock with a holder fiber suspended at a yield point. The
/// no-yield variant (bounded try-lock loops that must preserve their "give up
/// and abort" semantics) keeps burning pauses exactly like the code it
/// replaces.
class SpinBackoff {
 public:
  explicit SpinBackoff(uint32_t cap_spins = 512, bool yield = true)
      : cap_(cap_spins), yield_(yield) {}

  void Pause() {
    if (yield_ && FiberScheduler::InFiber()) {
      FiberScheduler::YieldFiber();
      return;
    }
    for (uint32_t i = 0; i < spins_; i++) CpuRelax();
    if (spins_ < cap_) {
      spins_ <<= 1;
    } else if (yield_) {
      std::this_thread::yield();
    }
  }

 private:
  uint32_t spins_ = 1;
  const uint32_t cap_;
  const bool yield_;
};

// ---------------------------------------------------------------------------
// Queue nodes.

/// One MCS queue node. A waiter spins on its OWN node (`granted`), not on the
/// shared lock word; the predecessor writes the successor's `granted` flag at
/// handoff. Cache-line sized so two waiters never share a line.
///
/// `granted` is a small state machine rather than a boolean so two extensions
/// share the queue machinery:
///  - OpRead drop-out (DESIGN.md §15.3): a queued upgrade-waiter whose
///    outcome is already decided CASes kWaiting -> kAbandoned and leaves; the
///    releaser skips the node at handoff and marks it kConsumed, after which
///    the owning thread may recycle it (deferred via DeferReleaseQNode).
///  - Combining registration (§15.1): the queue head of a range ring's
///    combining queue publishes the whole linked batch, parks each waiter's
///    assigned sequence in `result`, and grants; a head that fills its batch
///    hands the combiner role to the next waiter with kCombinerHandoff.
struct alignas(kCacheLineSize) QNode {
  static constexpr uint8_t kWaiting = 0;
  static constexpr uint8_t kGranted = 1;         ///< handoff: waiter proceeds
  static constexpr uint8_t kAbandoned = 2;       ///< waiter dropped out (OpRead)
  static constexpr uint8_t kConsumed = 3;        ///< releaser done with the node
  static constexpr uint8_t kCombinerHandoff = 4; ///< waiter becomes the combiner

  std::atomic<uint16_t> next{0};    ///< qnode id of the successor (0 = none)
  std::atomic<uint8_t> granted{0};  ///< state machine above
  std::atomic<uint64_t> result{0};  ///< combining: sequence assigned by combiner
  std::atomic<void*> ctx{nullptr};  ///< combining: registrant payload
};
static_assert(sizeof(QNode) == kCacheLineSize,
              "QNode must occupy exactly one cache line");

/// Queue-node ids are 16-bit so they fit the VersionLatch word's tail field:
/// id 0 is reserved for "no queue"; otherwise id-1 = tid * kSlots + slot.
/// Slots are per OS thread; under the fiber runner every fiber of a scheduler
/// shares its host thread's pool, so the slot count covers num_fibers × the
/// maximum latches queued per fiber, not just the nesting depth.
inline constexpr uint32_t kQNodeSlotsPerThread = 128;
inline constexpr uint32_t kMaxQNodeThreads = 511;  // (511*128 + 128) <= 65535

/// Pool accessors (sync/optiql.cc). AcquireQNode returns 0 when the calling
/// thread's pool is exhausted; callers then fall back to the CAS path.
uint16_t AcquireQNode();
void ReleaseQNode(uint16_t id);
QNode* QNodeForId(uint16_t id);

/// Defer recycling of an ABANDONED node still linked in some queue: the
/// owning thread parks the id and reclaims it (on a later AcquireQNode sweep)
/// once the releaser has skipped the node and marked it kConsumed. Owner
/// thread only, like ReleaseQNode.
void DeferReleaseQNode(uint16_t id);

// ---------------------------------------------------------------------------
// VersionLatch — optimistic lock coupling latch with a queued write path.

/// Optimistic version latch for B+Tree nodes (optimistic lock coupling, Leis
/// et al.), extended OptiQL-style with an in-word MCS queue for writers.
///
/// Reader API (latch-free, identical in both lock modes):
///   uint64_t v = latch.ReadLockOrRestart();   // stable version snapshot
///   ... read node ...
///   if (!latch.CheckOrRestart(v)) restart;
///
/// Writer API (Guard carries the queue node between lock and unlock):
///   VersionLatch::Guard g;
///   if (!latch.UpgradeToWriteLockOrRestart(v, g)) restart;
///   ... modify node ...
///   latch.WriteUnlock(g);
///
/// In kCas mode the upgrade is a single CAS and the unlock a fetch_add —
/// bit-for-bit the pre-OptiQL latch. In kOptiql mode a failed upgrade CAS
/// enqueues instead of restarting: the writer waits its FIFO turn spinning
/// on its own qnode, then revalidates the version — if unchanged it owns the
/// lock with zero restarts; if a predecessor modified the node it releases
/// without bumping and the caller restarts, having waited out the burst
/// instead of amplifying it.
class VersionLatch {
 public:
  static constexpr uint64_t kLockedBit = 1;
  static constexpr int kTailShift = 48;
  static constexpr uint64_t kTailMask = 0xffffULL << kTailShift;
  static constexpr uint64_t kVersionMask = ~(kTailMask | kLockedBit);

  /// Write-lock ownership token; holds the queue-node id (0 in CAS mode or
  /// when the qnode pool was exhausted and the acquire fell back to CAS).
  struct Guard {
    uint16_t qid = 0;
  };

  /// Returns a stable (unlocked) version snapshot, waiting out writers with
  /// pause + capped exponential backoff (a yielding backoff: under fibers a
  /// queued writer can be suspended holding the latch).
  uint64_t ReadLockOrRestart() const {
    const uint64_t v = word_.load(std::memory_order_acquire);
    if ((v & kLockedBit) == 0) return v;
    return StableSlow();
  }

  bool CheckOrRestart(uint64_t expected) const {
    // An unlocked word carries no tail bits (see the invariant above), so the
    // full-word compare rejects both version changes and a held lock.
    return word_.load(std::memory_order_acquire) == expected;
  }

  /// Atomically upgrade a read snapshot to the write lock. Returns false when
  /// the version moved (caller restarts); on the queued path a contended
  /// upgrade queues first and revalidates after the handoff — and drops out
  /// of the queue early (OpRead) when a predecessor's version bump already
  /// decides the outcome. `hint` carries the per-latch kAdaptive promotion
  /// state; contended CAS failures score it.
  bool UpgradeToWriteLockOrRestart(uint64_t expected, Guard& g,
                                   ContendedHint* hint = nullptr) {
    if (!UseQueue(hint)) {
      g.qid = 0;
      uint64_t e = expected;
      if (word_.compare_exchange_strong(e, expected | kLockedBit,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return true;
      }
      // Adaptive promotion: a failure at the SAME version (lock held or
      // queued) is the CAS-storm signature; a moved version is an ordinary
      // OCC restart the CAS path handles fine and does not score.
      if (hint != nullptr && GetLockImpl() == LockImpl::kAdaptive &&
          (e & kVersionMask) == (expected & kVersionMask)) {
        hint->NoteContended();
      }
      return false;
    }
    return UpgradeSlow(expected, g);
  }

  /// Unconditional write lock (queued on the queue path, CAS loop otherwise).
  void WriteLock(Guard& g, ContendedHint* hint = nullptr);

  /// Release after modifying: advances the version by one step so every
  /// reader snapshot taken before the acquire fails validation.
  void WriteUnlock(Guard& g) {
    if (g.qid == 0) {
      // Locked word is (v | 1) with v even; +1 yields v + 2.
      word_.fetch_add(1, std::memory_order_release);
      return;
    }
    Release(g.qid, /*bump=*/true);
    g.qid = 0;
  }

  /// Release WITHOUT advancing the version (failed queued upgrade: nothing
  /// was modified, so pre-queue reader snapshots must stay valid).
  void WriteUnlockNoBump(Guard& g) {
    if (g.qid == 0) {
      const uint64_t w = word_.load(std::memory_order_relaxed);
      word_.store(w & ~kLockedBit, std::memory_order_release);
      return;
    }
    Release(g.qid, /*bump=*/false);
    g.qid = 0;
  }

  bool IsLocked() const {
    return (word_.load(std::memory_order_acquire) & kLockedBit) != 0;
  }

  /// Raw word, for tests and invariant checks.
  uint64_t RawWord() const { return word_.load(std::memory_order_acquire); }

 private:
  uint64_t StableSlow() const;
  bool UpgradeSlow(uint64_t expected, Guard& g);
  /// Queue-based acquire; returns owning the lock (locked bit set, our id —
  /// or a successor's — in the tail field).
  void AcquireQueued(uint16_t qid);
  /// Queue-based acquire that abandons the wait (OpRead drop-out) once the
  /// latch version no longer matches `expected`: the upgrade is then doomed,
  /// so serializing behind the rest of the queue buys nothing. Returns true
  /// when the lock was acquired, false when the node was abandoned (the
  /// caller owns nothing; the qnode is consumed by the releaser and recycled
  /// via DeferReleaseQNode).
  bool AcquireQueuedCancelable(uint16_t qid, uint64_t expected);
  void Release(uint16_t qid, bool bump);

  static constexpr uint64_t TailWord(uint16_t qid) {
    return static_cast<uint64_t>(qid) << kTailShift;
  }
  static constexpr uint16_t TailOf(uint64_t w) {
    return static_cast<uint16_t>(w >> kTailShift);
  }

  std::atomic<uint64_t> word_{0};
};
static_assert(sizeof(VersionLatch) == sizeof(uint64_t),
              "VersionLatch must stay one word: it is embedded per tree node");

// ---------------------------------------------------------------------------
// Bounded FIFO acquire for external try-locks (the row TID word).

/// Bounded queued acquire of an external try-lock whose own word cannot hold
/// a queue. Waiters enqueue MCS-style on a cache-padded stripe selected by
/// `key` (the row address); the queue head alone retries `try_fn(arg)` with
/// backoff, up to `attempts` times, then hands the headship to its successor
/// FIFO either way. Returns whether the try-lock was acquired.
///
/// Boundedness is what makes this safe to call while holding other row locks
/// (the validator's sorted lock phase): stripes are shared by unrelated rows,
/// so unbounded waiting could couple two lock orders into a cycle — a head
/// that exhausts its attempts instead returns false and the caller aborts,
/// exactly like the spin path it replaces, just without the CAS storm.
/// Waiters are bounded too: past their budget they drop out of the queue
/// (abandoned-node protocol, as in the OpRead upgrade drop-out) instead of
/// waiting out the chain — eagerly for `cancelable` waiters while a quiesce
/// is requested, and unconditionally at a generous hard cap. Callers that
/// hold no other locks should pass cancelable=false: their wait blocks
/// nobody, so riding the queue out is cheaper than an abort-retry cycle.
bool QueuedTryAcquire(const void* key, int attempts, bool (*try_fn)(void*),
                      void* arg, bool cancelable = true);

/// Quiesce hint for queued try-lock waiters. While set (a protected
/// starvation-escape retry holds the admission gate), waiters past their
/// budget drop out of stripe queues promptly so the row locks their callers
/// hold are released and the protected transaction can make progress.
void SetLockQuiesce(bool on);
bool LockQuiesceRequested();

}  // namespace sync
}  // namespace rocc
