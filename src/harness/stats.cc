#include "harness/stats.h"

// TxnStats is header-only; this translation unit anchors the header in the
// library build.
