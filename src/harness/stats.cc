#include "harness/stats.h"

namespace rocc {

const char* AbortReasonName(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kDirtyRead: return "dirty_read";
    case AbortReason::kLockFail: return "lock_fail";
    case AbortReason::kReadValidation: return "read_validation";
    case AbortReason::kScanConflict: return "scan_conflict";
    case AbortReason::kRingLost: return "ring_lost";
    case AbortReason::kUnresolved: return "unresolved";
    case AbortReason::kExplicit: return "explicit";
  }
  return "unknown";
}

}  // namespace rocc
