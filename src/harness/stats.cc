#include "harness/stats.h"

namespace rocc {

uint64_t AbortCauseCount(const TxnStats& s, AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return 0;
    case AbortReason::kDirtyRead: return s.abort_dirty_read;
    case AbortReason::kLockFail: return s.abort_lock_fail;
    case AbortReason::kReadValidation: return s.abort_read_validation;
    case AbortReason::kScanConflict: return s.abort_scan_conflict;
    case AbortReason::kRingLost: return s.abort_ring_lost;
    case AbortReason::kUnresolved: return s.abort_unresolved;
    case AbortReason::kExplicit: return s.abort_explicit;
    case AbortReason::kSnapshotEvicted: return s.abort_snapshot_evicted;
  }
  return 0;
}

}  // namespace rocc
