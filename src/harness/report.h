#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rocc {

/// Aligned text table + CSV emitter used by the figure benchmarks so every
/// experiment prints the same rows the paper plots.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Render as an aligned text table.
  std::string ToText() const;
  /// Render as CSV (headers + rows).
  std::string ToCsv() const;

  /// Print both the text table and, when `csv` is true, the CSV block.
  void Print(bool csv = false) const;

  static std::string Fmt(double v, int precision = 2);
  static std::string Fmt(uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print the standard benchmark banner: title, environment (paper Table I),
/// and the parameter line.
void PrintBanner(const std::string& title, const std::string& params);

}  // namespace rocc
