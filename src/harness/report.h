#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/range_manager.h"
#include "harness/stats.h"

namespace rocc {

/// Aligned text table + CSV emitter used by the figure benchmarks so every
/// experiment prints the same rows the paper plots.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Render as an aligned text table.
  std::string ToText() const;
  /// Render as CSV (headers + rows).
  std::string ToCsv() const;

  /// Print both the text table and, when `csv` is true, the CSV block.
  void Print(bool csv = false) const;

  static std::string Fmt(double v, int precision = 2);
  static std::string Fmt(uint64_t v);

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Machine-readable run report: accumulates named tables and rewrites one
/// JSON file after every addition, so the file on disk is always valid JSON
/// even when a sweeping binary is interrupted mid-run.
///
/// Cells that parse as finite numbers are emitted as JSON numbers, everything
/// else as strings, so downstream tooling can diff throughput trajectories
/// without knowing each table's column types.
class JsonReport {
 public:
  JsonReport(std::string binary, std::string parameters);

  /// Append a table (snapshot of its current rows) under `title`.
  void AddTable(const std::string& title, const ReportTable& table);

  std::string ToJson() const;

  /// Rewrite `path` with the full report; returns false on I/O failure.
  bool WriteTo(const std::string& path) const;

 private:
  struct Entry {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  std::string binary_;
  std::string environment_;
  std::string parameters_;
  std::vector<Entry> tables_;
};

/// Print the standard benchmark banner: title, environment (paper Table I),
/// and the parameter line.
void PrintBanner(const std::string& title, const std::string& params);

/// Standard retry-telemetry columns every bench appends to its tables:
/// give_ups, escalations, protected commits, mean / p99 attempts per commit,
/// and the total adaptive-backoff time in milliseconds. Use the two together
/// so every table reports the contention manager the same way.
std::vector<std::string> ContentionHeaders();
std::vector<std::string> ContentionCells(const TxnStats& stats);

/// Range-layout summary columns for benches running an adaptive (or static)
/// ROCC layout: final range count, table version, split/merge/resize totals,
/// and the hottest range's share of all writer registrations (1.0 =
/// everything landed in one range). Pair the two like ContentionHeaders/Cells.
std::vector<std::string> RangeSummaryHeaders();
std::vector<std::string> RangeSummaryCells(const RangeTelemetry& t);

/// Full per-range telemetry as a table (one row per surviving range, hottest
/// first): key span, slices, ring version/capacity/high-water/resizes and the
/// combining flag, predecessor count, registrations, and the per-range abort
/// attributions — shows WHERE contention lives and how the ring adapted.
ReportTable RangeTelemetryTable(const RangeTelemetry& t);

/// Extended latency summary, one row per populated distribution: the
/// end-to-end latencies (all / scan / durable) and, when the flight recorder
/// ran, the per-phase breakdown (execute / validate / apply / log_wait).
/// Columns: kind, count, mean_us, p50_us, p95_us, p99_us, p999_us, stddev_us,
/// max_us. Empty distributions are skipped, so the table is stable across
/// configurations (no durable row without a log, no phase rows without obs).
ReportTable LatencySummaryTable(const TxnStats& stats);

/// Per-cause abort columns derived from the single AbortReasonName table:
/// headers are "abort_<name>" for every cause in kAbortCauses, cells the
/// matching counters. Use both together so every bench labels abort causes
/// identically.
std::vector<std::string> AbortBreakdownHeaders();
std::vector<std::string> AbortBreakdownCells(const TxnStats& stats);

}  // namespace rocc
