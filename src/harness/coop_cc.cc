#include "harness/coop_cc.h"

#include "common/fiber.h"
#include "txn/epoch.h"

namespace rocc {

namespace {

/// Wraps a consumer and yields every N delivered records. Scans hold no
/// record locks during the read phase, so yielding here is always safe.
class YieldingConsumer : public ScanConsumer {
 public:
  YieldingConsumer(ScanConsumer* inner, uint32_t every) : inner_(inner), every_(every) {}

  bool OnRecord(uint64_t key, const char* payload) override {
    if (++count_ >= every_) {
      count_ = 0;
      CooperativeYield();
    }
    return inner_ == nullptr || inner_->OnRecord(key, payload);
  }

 private:
  ScanConsumer* inner_;
  uint32_t every_;
  uint32_t count_ = 0;
};

}  // namespace

CoopYieldCc::CoopYieldCc(std::unique_ptr<ConcurrencyControl> inner,
                         uint32_t ops_per_yield, uint32_t records_per_yield)
    : owned_(std::move(inner)),
      target_(owned_.get()),
      ops_per_yield_(ops_per_yield == 0 ? 1 : ops_per_yield),
      records_per_yield_(records_per_yield == 0 ? 1 : records_per_yield),
      op_counts_(EpochManager::kMaxThreads) {}

CoopYieldCc::CoopYieldCc(ConcurrencyControl* inner, uint32_t ops_per_yield,
                         uint32_t records_per_yield)
    : target_(inner),
      ops_per_yield_(ops_per_yield == 0 ? 1 : ops_per_yield),
      records_per_yield_(records_per_yield == 0 ? 1 : records_per_yield),
      op_counts_(EpochManager::kMaxThreads) {}

void CoopYieldCc::MaybeYield(uint32_t thread_id) {
  uint32_t& count = *op_counts_[thread_id];
  if (++count >= ops_per_yield_) {
    count = 0;
    std::this_thread::yield();
  }
}

Status CoopYieldCc::Read(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                         void* out) {
  MaybeYield(t->thread_id);
  return target_->Read(t, table_id, key, out);
}

Status CoopYieldCc::Update(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                           const void* data, uint32_t size, uint32_t field_offset) {
  MaybeYield(t->thread_id);
  return target_->Update(t, table_id, key, data, size, field_offset);
}

Status CoopYieldCc::Insert(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                           const void* payload) {
  MaybeYield(t->thread_id);
  return target_->Insert(t, table_id, key, payload);
}

Status CoopYieldCc::Remove(TxnDescriptor* t, uint32_t table_id, uint64_t key) {
  MaybeYield(t->thread_id);
  return target_->Remove(t, table_id, key);
}

Status CoopYieldCc::Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                         uint64_t end_key, uint64_t limit, ScanConsumer* consumer) {
  YieldingConsumer wrapper(consumer, records_per_yield_);
  return target_->Scan(t, table_id, start_key, end_key, limit, &wrapper);
}

}  // namespace rocc
