#pragma once

#include <memory>
#include <vector>

#include "cc/cc.h"

namespace rocc {

/// Cooperative-interleaving decorator for CPU-starved hosts.
///
/// The paper's experiments run one worker per physical core, so a
/// transaction's wall-clock lifetime overlaps the commits of every other
/// core — that overlap is precisely what GWV's global validation pays for.
/// On a host with fewer cores than workers, the OS timeslices at
/// millisecond granularity: a whole read phase executes in one slice,
/// overlap windows collapse, and every window-based scheme looks artificially
/// cheap.
///
/// This decorator restores realistic interleaving by yielding the CPU at
/// operation granularity during the read phase (never while locks are held):
/// once every `ops_per_yield` point operations and once every
/// `records_per_yield` scanned records. Execution then approximates
/// round-robin at operation granularity — a discrete-time emulation of the
/// paper's parallel hardware. All schemes pay the identical yield cost, so
/// relative comparisons are preserved.
///
/// Enabled automatically by CreateProtocol when the requested worker count
/// exceeds the host's hardware concurrency.
class CoopYieldCc : public ConcurrencyControl {
 public:
  /// Owning wrapper.
  explicit CoopYieldCc(std::unique_ptr<ConcurrencyControl> inner,
                       uint32_t ops_per_yield = 2, uint32_t records_per_yield = 32);
  /// Non-owning wrapper (the runner wraps a caller-owned protocol).
  explicit CoopYieldCc(ConcurrencyControl* inner, uint32_t ops_per_yield = 2,
                       uint32_t records_per_yield = 32);

  const char* Name() const override { return target_->Name(); }
  void AttachThread(uint32_t thread_id, TxnStats* stats) override {
    target_->AttachThread(thread_id, stats);
  }
  TxnDescriptor* Begin(uint32_t thread_id) override { return target_->Begin(thread_id); }

  Status Read(TxnDescriptor* t, uint32_t table_id, uint64_t key, void* out) override;
  Status Update(TxnDescriptor* t, uint32_t table_id, uint64_t key, const void* data,
                uint32_t size, uint32_t field_offset) override;
  Status Insert(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                const void* payload) override;
  Status Remove(TxnDescriptor* t, uint32_t table_id, uint64_t key) override;
  Status Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
              uint64_t end_key, uint64_t limit, ScanConsumer* consumer) override;

  // Commit and Abort hold / release record locks; never yield inside them.
  Status Commit(TxnDescriptor* t) override { return target_->Commit(t); }
  void Abort(TxnDescriptor* t) override { target_->Abort(t); }

  AbortReason LastAbortReason(uint32_t thread_id) const override {
    return target_->LastAbortReason(thread_id);
  }
  ContentionManager* contention() override { return target_->contention(); }

  ConcurrencyControl* inner() { return target_; }

 private:
  void MaybeYield(uint32_t thread_id);

  std::unique_ptr<ConcurrencyControl> owned_;
  ConcurrencyControl* target_;
  uint32_t ops_per_yield_;
  uint32_t records_per_yield_;
  std::vector<CachePadded<uint32_t>> op_counts_;
};

}  // namespace rocc
