#include "harness/knobs.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rocc {

namespace {
std::atomic<bool> g_reload_pending{false};

void SighupHandler(int) { KnobRegistry::RequestReload(); }
}  // namespace

KnobRegistry& KnobRegistry::Instance() {
  static KnobRegistry* registry = new KnobRegistry();  // never destroyed
  return *registry;
}

std::atomic<uint64_t>* KnobRegistry::Register(const std::string& name,
                                              uint64_t initial) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = knobs_.find(name);
  if (it == knobs_.end()) {
    it = knobs_
             .emplace(name,
                      std::make_unique<std::atomic<uint64_t>>(initial))
             .first;
  } else {
    it->second->store(initial, std::memory_order_release);
  }
  return it->second.get();
}

std::atomic<uint64_t>* KnobRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = knobs_.find(name);
  return it == knobs_.end() ? nullptr : it->second.get();
}

bool KnobRegistry::Set(const std::string& name, uint64_t value) {
  std::atomic<uint64_t>* knob = Find(name);
  if (knob == nullptr) return false;
  knob->store(value, std::memory_order_release);
  return true;
}

bool KnobRegistry::Get(const std::string& name, uint64_t* out) const {
  std::atomic<uint64_t>* knob = Find(name);
  if (knob == nullptr) return false;
  *out = knob->load(std::memory_order_acquire);
  return true;
}

std::vector<std::pair<std::string, uint64_t>> KnobRegistry::Snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(knobs_.size());
  for (const auto& kv : knobs_) {
    out.emplace_back(kv.first, kv.second->load(std::memory_order_acquire));
  }
  return out;
}

int KnobRegistry::LoadFile(const char* path) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return -1;
  char line[256];
  int applied = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char* p = line;
    while (*p == ' ' || *p == '\t') p++;
    if (*p == '\0' || *p == '\n' || *p == '#') continue;
    char* eq = std::strchr(p, '=');
    if (eq == nullptr) {
      std::fprintf(stderr, "[knobs] skipping malformed line: %s", line);
      continue;
    }
    *eq = '\0';
    // Trim trailing whitespace off the name.
    char* name_end = eq;
    while (name_end > p && (name_end[-1] == ' ' || name_end[-1] == '\t')) {
      *--name_end = '\0';
    }
    char* end = nullptr;
    const uint64_t value = std::strtoull(eq + 1, &end, 0);
    if (end == eq + 1) {
      std::fprintf(stderr, "[knobs] skipping non-numeric value for %s\n", p);
      continue;
    }
    if (!Set(p, value)) {
      std::fprintf(stderr, "[knobs] unknown knob: %s\n", p);
      continue;
    }
    applied++;
  }
  std::fclose(f);
  return applied;
}

void KnobRegistry::SetReloadFile(std::string path) {
  {
    std::lock_guard<std::mutex> g(mu_);
    reload_file_ = std::move(path);
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SighupHandler;
  sa.sa_flags = SA_RESTART;
  sigaction(SIGHUP, &sa, nullptr);
}

bool KnobRegistry::DrainPendingReload() {
  if (!g_reload_pending.exchange(false, std::memory_order_acq_rel)) {
    return false;
  }
  std::string path;
  {
    std::lock_guard<std::mutex> g(mu_);
    path = reload_file_;
  }
  if (path.empty()) return false;
  const int applied = LoadFile(path.c_str());
  std::fprintf(stderr, "[knobs] SIGHUP reload of %s: %d knob(s) applied\n",
               path.c_str(), applied);
  return applied >= 0;
}

void KnobRegistry::RequestReload() {
  g_reload_pending.store(true, std::memory_order_release);
}

}  // namespace rocc
