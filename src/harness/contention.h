#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/cacheline.h"
#include "common/rng.h"
#include "harness/stats.h"

namespace rocc {

/// Tuning knobs for the abort-reason-aware retry policy.
struct ContentionOptions {
  /// Consecutive aborts of one logical scan/bulk transaction before it enters
  /// the protected (starvation-escape) retry.
  uint32_t scan_escalation_aborts = 8;
  /// Same threshold for point transactions (much higher: points win their
  /// races quickly under randomized backoff; escalation is a last resort).
  uint32_t point_escalation_aborts = 96;
  /// Short-ladder backoff for lock/dirty-read/readset aborts: the conflicting
  /// commit finishes in O(100ns), so spin briefly with jitter and yield.
  uint32_t short_backoff_spins = 64;       ///< base spins, doubled per abort
  uint32_t short_backoff_cap_shift = 6;    ///< ladder cap: base << cap
  /// Long-ladder backoff for scan-validation aborts: a re-scan only wins
  /// after the point-write burst drains, so wait much longer before retrying.
  uint32_t long_backoff_spins = 512;       ///< base spins, doubled per abort
  uint32_t long_backoff_cap_shift = 9;     ///< ladder cap: base << cap
  /// Spins between cooperative yields inside a long backoff, so a backing-off
  /// fiber never monopolises the simulated core.
  uint32_t spins_per_yield = 256;
};

/// Abort-reason-aware contention management for the logical-transaction retry
/// loop (RunWithRetries).
///
/// Three jobs, layered on the structured abort reason the protocols now
/// export (ConcurrencyControl::LastAbortReason):
///
///  1. **Per-reason adaptive backoff** (OnAbort). Lock-fail / dirty-read /
///     readset aborts lose a race that resolves in O(100ns): short jittered
///     spin, then yield so a descheduled lock holder can finish. Scan
///     conflicts and ring losses mean a bulk re-scan must outlive the point
///     write burst: capped exponential backoff with yields. An unresolved
///     writer timestamp only needs the writer to advance a few instructions:
///     immediate yield and re-read.
///
///  2. **Starvation escape** (escalation). After K consecutive aborts of one
///     logical transaction, the retrier acquires the protected-retry gate:
///     an exclusive token that pauses *admission* of every other logical
///     transaction (they finish their in-flight attempt, then wait in Admit).
///     Once in-flight attempts drain, the protected transaction re-runs
///     against a quiesced system and must commit; the gate then releases.
///     This guarantees forward progress for bulk scans under any point-write
///     contention, on every scheme — the gate sits above the protocol.
///
///  3. **Honest retry accounting**. Every logical outcome is counted into the
///     worker's TxnStats sink: attempts-per-commit and backoff-time
///     histograms, give_ups (retry budget exhausted — previously dropped
///     silently), escalations, protected_commits, and gate wait time.
///
/// Threading: one State slot per worker, touched only by that worker; the
/// gate is a single atomic. All waits use CooperativeYield, so the manager
/// behaves identically under OS threads and the fiber runner.
class ContentionManager {
 public:
  static constexpr uint32_t kNoHolder = ~0u;

  explicit ContentionManager(uint32_t num_threads, ContentionOptions options = {});

  /// Bind a worker's stats sink (mirrors ConcurrencyControl::AttachThread).
  void AttachThread(uint32_t thread_id, TxnStats* stats);

  /// Start a logical transaction: resets the consecutive-abort ladder.
  void BeginTxn(uint32_t thread_id, bool is_scan_txn);

  /// Admission gate, called before every attempt: waits (cooperatively)
  /// while another transaction holds the protected-retry token.
  void Admit(uint32_t thread_id);

  /// One attempt aborted: apply the per-reason policy (backoff / yield /
  /// escalate). `rng` supplies the backoff jitter.
  void OnAbort(uint32_t thread_id, AbortReason reason, Rng& rng);

  /// The logical transaction committed after `attempts` attempts.
  void OnCommit(uint32_t thread_id, uint32_t attempts);

  /// The retry budget was exhausted; the logical transaction is dropped.
  void OnGiveUp(uint32_t thread_id);

  /// The attempt ended with a non-retryable status; the logical txn is over.
  void OnStop(uint32_t thread_id);

  /// Thread currently holding the protected-retry gate (kNoHolder = none).
  uint32_t protected_holder() const {
    return holder_.load(std::memory_order_acquire);
  }

  /// True while `thread_id`'s current logical transaction is escalated.
  bool InProtectedRetry(uint32_t thread_id) const;

  /// Install a structural relief hook, tried once per logical transaction at
  /// the escalation threshold BEFORE the protected-retry gate. If the hook
  /// returns true (it changed something — e.g. the RangeTuner split the hot
  /// range), the abort ladder resets and escalation is skipped for this
  /// attempt; if the transaction keeps aborting, the next threshold crossing
  /// escalates normally. Called with no protocol locks held. Install before
  /// workers start; the hook must be safe to call from any worker.
  void SetReliefHook(std::function<bool(uint32_t thread_id)> hook) {
    relief_hook_ = std::move(hook);
  }

  const ContentionOptions& options() const { return options_; }

 private:
  /// Cache-line aligned: each slot (with its abort ladder and per-reason
  /// counters in local_stats) is touched on every attempt by one worker, and
  /// the slots live behind per-worker heap allocations whose headers would
  /// otherwise let two workers' ladders share a line.
  struct alignas(kCacheLineSize) State {
    TxnStats local_stats;     // fallback sink when none is attached
    TxnStats* stats = nullptr;
    uint32_t consecutive_aborts = 0;
    bool is_scan = false;
    bool protected_mode = false;
    bool relief_tried = false;  // one relief attempt per logical transaction
  };
  static_assert(sizeof(State) % kCacheLineSize == 0,
                "per-worker retry state must occupy whole cache lines");

  TxnStats& stats(uint32_t thread_id) {
    State& st = *states_[thread_id];
    return st.stats != nullptr ? *st.stats : st.local_stats;
  }

  void EnterProtected(uint32_t thread_id);
  void ReleaseProtected(uint32_t thread_id);

  /// Spin `spins` times, yielding every `spins_per_yield` so co-scheduled
  /// fibers (or a descheduled lock holder) can run.
  void SpinWithYields(uint64_t spins) const;

  ContentionOptions options_;
  /// Hot-reloadable contention-gate K (knob "gate_scan_escalation_aborts"):
  /// the scan escalation threshold is consulted on every scan abort, so the
  /// knob cell replaces the plain options_ field on that read.
  std::atomic<uint64_t>* scan_escalation_knob_;
  std::function<bool(uint32_t)> relief_hook_;
  std::vector<std::unique_ptr<State>> states_;
  /// Protected-retry token: thread id of the holder, kNoHolder when free.
  alignas(kCacheLineSize) std::atomic<uint32_t> holder_{kNoHolder};
};

}  // namespace rocc
