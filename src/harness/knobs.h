// Hot-reloadable named knobs (DESIGN.md §16.4).
//
// A knob is a process-global atomic uint64 registered by the subsystem that
// consumes it. The subsystem keeps the returned atomic pointer and reads it
// with a relaxed load on its hot path — one predicted L1-resident load, the
// same cost as reading the plain config field the knob replaces. Writers
// (POST /config, SIGHUP file reload, tests) rendezvous through the registry
// by name.
//
// Memory-order contract: Set() is a release store, hot-path reads are
// relaxed loads. Each knob is an independent scalar configuration word — a
// knob value never publishes other memory, so readers need no acquire and
// there is no ordering guarantee BETWEEN knobs (a reload applying two knobs
// can be observed half-applied between two reads). Consumers must therefore
// read a knob once per decision, not once per field of a decision.
//
// Re-registering an existing name re-arms the cell to the new initial value
// and returns the same cell: a freshly constructed subsystem instance starts
// from its configured value, and any operator override is intentionally
// dropped at that boundary (the new instance's config is the operator's most
// recent statement of intent). Cells are never freed, so a pointer obtained
// from Register() stays valid for the life of the process even after the
// registering instance dies.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rocc {

class KnobRegistry {
 public:
  static KnobRegistry& Instance();

  // Creates the knob if absent; re-arms it to `initial` if present. The
  // returned pointer is process-lifetime stable.
  std::atomic<uint64_t>* Register(const std::string& name, uint64_t initial);

  // nullptr when no such knob has been registered.
  std::atomic<uint64_t>* Find(const std::string& name) const;

  // Release-stores `value`; false when the name is unknown (unknown names
  // are rejected, not auto-created: a typo in POST /config must 400, not
  // silently create a dead knob).
  bool Set(const std::string& name, uint64_t value);

  bool Get(const std::string& name, uint64_t* out) const;

  // Name/value pairs sorted by name — the /vars "knobs" object.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  // Applies "name=value" lines (blank lines and '#' comments ignored).
  // Returns the number of knobs applied, or -1 when the file cannot be
  // opened. Unknown names and malformed lines are skipped with a note on
  // stderr so a fat-fingered reload never aborts a live run.
  int LoadFile(const char* path);

  // SIGHUP plumbing: the handler must stay async-signal-safe, so it only
  // latches a flag; a service thread (stall watchdog) drains it by calling
  // DrainPendingReload(), which re-applies the configured file.
  void SetReloadFile(std::string path);  // also installs the SIGHUP handler
  bool DrainPendingReload();             // true when a reload was applied

  static void RequestReload();  // async-signal-safe: latches the flag

 private:
  KnobRegistry() = default;

  mutable std::mutex mu_;
  // unique_ptr cells: map rebalancing must not move the atomics that
  // hot paths hold raw pointers to.
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>> knobs_;
  std::string reload_file_;
};

}  // namespace rocc
