#include "harness/runner.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/tsan.h"

#include "cc/hyper_gwv.h"
#include "cc/mvrcc.h"
#include "cc/silo_lrv.h"
#include "cc/two_phase_locking.h"
#include "common/fiber.h"
#include "common/latch.h"
#include "common/zipfian.h"
#include "harness/coop_cc.h"
#include "common/timer.h"
#include "core/rocc.h"

namespace rocc {

namespace {

// Live-stats plumbing: while an experiment runs, its per-worker sinks are
// published here so an observer thread (the HTTP /vars handler) can merge
// them mid-run. The mutex only guards the POINTERS (install/remove vs.
// collect); the sink contents are read racily by design.
std::mutex g_live_mu;
const std::vector<TxnStats>* g_live_warm = nullptr;
const std::vector<TxnStats>* g_live_measured = nullptr;

/// RAII installer; the experiment's stack vectors outlive the scope.
class LiveStatsScope {
 public:
  LiveStatsScope(const std::vector<TxnStats>* warm,
                 const std::vector<TxnStats>* measured) {
    std::lock_guard<std::mutex> g(g_live_mu);
    g_live_warm = warm;
    g_live_measured = measured;
  }
  ~LiveStatsScope() {
    std::lock_guard<std::mutex> g(g_live_mu);
    g_live_warm = nullptr;
    g_live_measured = nullptr;
  }
};

/// Honest-accounting invariant: every aborted attempt carries exactly one
/// structured cause, so the abort_* counters sum to `aborts` (debug builds).
void CheckAbortAccounting(const TxnStats& s) {
  assert(s.AbortCauseSum() == s.aborts &&
         "abort cause counters must sum to aborts");
  (void)s;
}

/// All workers as fibers on one OS thread, interleaved at operation
/// granularity through CoopYieldCc (see common/fiber.h for why).
RunResult RunFiberExperiment(ConcurrencyControl* cc, Workload* workload,
                             const RunOptions& options) {
  const uint32_t n = options.num_threads;
  std::vector<TxnStats> warm_stats(n);
  std::vector<TxnStats> stats(n);
  LiveStatsScope live(&warm_stats, &stats);
  CoopYieldCc coop(cc);  // non-owning: yield points around every operation
  // Make validation work visible as exposure time (see SetValidationPacing):
  // roughly one yield per "operation's worth" of validation.
  cc->SetValidationPacing(options.validation_pacing);

  FiberScheduler scheduler;
  FiberBarrier loaded(n), warmed(n), measure_start(n), measure_end(n);
  for (uint32_t tid = 0; tid < n; tid++) {
    scheduler.Spawn([&, tid] {
      Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + tid + 1);
      cc->AttachThread(tid, &warm_stats[tid]);
      loaded.Wait();
      for (uint64_t i = 0; i < options.warmup_txns_per_thread; i++) {
        workload->RunTxn(&coop, tid, rng);
      }
      warmed.Wait();
      ZipfianGenerator::MarkZetaCacheWarm();  // idempotent across workers
      cc->AttachThread(tid, &stats[tid]);
      measure_start.Wait();
      for (uint64_t i = 0; i < options.txns_per_thread; i++) {
        workload->RunTxn(&coop, tid, rng);
      }
      measure_end.Wait();
    });
  }
  scheduler.Run();

  RunResult result;
  result.seconds = static_cast<double>(measure_end.completion_nanos() -
                                       measure_start.completion_nanos()) *
                   1e-9;
  result.total_txns = static_cast<uint64_t>(n) * options.txns_per_thread;
  for (const TxnStats& s : stats) result.stats.Merge(s);
  CheckAbortAccounting(result.stats);
  return result;
}

RunResult RunThreadExperiment(ConcurrencyControl* cc, Workload* workload,
                              const RunOptions& options) {
  const uint32_t n = options.num_threads;
  std::vector<TxnStats> warm_stats(n);
  std::vector<TxnStats> stats(n);
  SpinBarrier barrier(n + 1);  // workers + the coordinating thread
  LiveStatsScope live(&warm_stats, &stats);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (uint32_t tid = 0; tid < n; tid++) {
    workers.emplace_back([&, tid] {
      Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + tid + 1);
      cc->AttachThread(tid, &warm_stats[tid]);
      barrier.Wait();  // (1) everyone loaded
      for (uint64_t i = 0; i < options.warmup_txns_per_thread; i++) {
        workload->RunTxn(cc, tid, rng);
      }
      barrier.Wait();  // (2) warmup done
      ZipfianGenerator::MarkZetaCacheWarm();  // idempotent across workers
      cc->AttachThread(tid, &stats[tid]);
      barrier.Wait();  // (3) measured region starts
      for (uint64_t i = 0; i < options.txns_per_thread; i++) {
        workload->RunTxn(cc, tid, rng);
      }
      barrier.Wait();  // (4) measured region ends
    });
  }

  barrier.Wait();  // (1)
  barrier.Wait();  // (2)
  Stopwatch watch;
  barrier.Wait();  // (3)
  watch.Restart();
  barrier.Wait();  // (4)
  const double seconds = watch.ElapsedSeconds();

  for (auto& w : workers) w.join();

  RunResult result;
  result.seconds = seconds;
  result.total_txns = static_cast<uint64_t>(n) * options.txns_per_thread;
  for (const TxnStats& s : stats) result.stats.Merge(s);
  CheckAbortAccounting(result.stats);
  return result;
}

}  // namespace

TxnStats CollectLiveStats() {
  TxnStats out;
  std::lock_guard<std::mutex> g(g_live_mu);
  TsanIgnoreReadsBegin();
  if (g_live_warm != nullptr) {
    for (const TxnStats& s : *g_live_warm) out.Merge(s);
  }
  if (g_live_measured != nullptr) {
    for (const TxnStats& s : *g_live_measured) out.Merge(s);
  }
  TsanIgnoreReadsEnd();
  return out;
}

bool LiveRunActive() {
  std::lock_guard<std::mutex> g(g_live_mu);
  return g_live_measured != nullptr;
}

RunResult RunExperiment(ConcurrencyControl* cc, Workload* workload,
                        const RunOptions& options) {
  // A new experiment may legitimately build generators for new (n, theta)
  // pairs during its setup and warm-up; only the measured region is
  // construction-free.
  ZipfianGenerator::MarkZetaCacheWarm(false);
  // Workers have not started: no latch is held or queued, so switching the
  // lock implementation here is safe (idle lock words are identical in both).
  if (options.set_lock_impl) sync::SetLockImpl(options.lock_impl);
  if (options.log != nullptr) cc->AttachLog(options.log);
  bool fibers;
  switch (options.mode) {
    case ExecMode::kThreads:
      fibers = false;
      break;
    case ExecMode::kFibers:
      fibers = true;
      break;
    case ExecMode::kAuto:
    default: {
      // Workers beyond the host's real parallelism would be timesliced at
      // millisecond granularity; simulate fine-grained interleaving instead.
      // hardware_concurrency() == 0 means "unknown", not "zero cores":
      // default to real threads and say so once instead of silently forcing
      // every run through the fiber simulator.
      const uint32_t hw = std::thread::hardware_concurrency();
      if (hw == 0) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
          std::fprintf(stderr,
                       "[runner] hardware concurrency unknown; running %u "
                       "workers as OS threads\n",
                       options.num_threads);
        }
        fibers = false;
      } else {
        fibers = options.num_threads > hw;
      }
      break;
    }
  }
  return fibers ? RunFiberExperiment(cc, workload, options)
                : RunThreadExperiment(cc, workload, options);
}

std::unique_ptr<ConcurrencyControl> CreateProtocol(
    const std::string& name_in, Database* db, const Workload& workload,
    uint32_t num_threads, uint32_t ranges_hint, uint32_t ring_capacity,
    bool rocc_register_writes, bool adaptive, bool mvcc) {
  std::string name = name_in;
  if (name.size() > 3 && name.compare(name.size() - 3, 3, "+mv") == 0) {
    mvcc = true;
    name.resize(name.size() - 3);
  }
  const auto finish = [mvcc](std::unique_ptr<ConcurrencyControl> cc) {
    if (mvcc && !cc->EnableMvcc()) {
      std::fprintf(stderr,
                   "warning: protocol does not support the multi-version row "
                   "store; snapshot scans fall back to ordinary scans\n");
    }
    return cc;
  };
  if (name == "lrv" || name == "LRV" || name == "silo") {
    return finish(std::make_unique<SiloLrv>(db, num_threads));
  }
  if (name == "gwv" || name == "GWV" || name == "hyper") {
    GwvOptions opts;
    opts.global_ring_capacity = std::max<uint32_t>(ring_capacity, 1u << 16);
    return finish(std::make_unique<HyperGwv>(db, num_threads, opts));
  }
  if (name == "mvrcc" || name == "MVRCC") {
    RoccOptions opts;
    opts.tables = workload.RangeConfigs(ranges_hint, ring_capacity);
    opts.default_ring_capacity = ring_capacity;
    opts.tuner.enabled = adaptive;
    return finish(std::make_unique<Mvrcc>(db, num_threads, std::move(opts)));
  }
  if (name == "2pl" || name == "tpl") {
    return finish(std::make_unique<TplNoWait>(db, num_threads));
  }
  // Default: the paper's contribution.
  RoccOptions opts;
  opts.tables = workload.RangeConfigs(ranges_hint, ring_capacity);
  opts.default_ring_capacity = ring_capacity;
  opts.register_writes = rocc_register_writes;
  opts.tuner.enabled = adaptive;
  return finish(std::make_unique<Rocc>(db, num_threads, std::move(opts)));
}

}  // namespace rocc
