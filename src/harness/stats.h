#pragma once

#include <cstdint>

#include "common/cacheline.h"
#include "common/histogram.h"

namespace rocc {

/// Per-thread execution statistics.
///
/// Counters mirror the measurements the paper reports:
///  - commits/aborts                        -> throughput, abort rate
///  - read_write_ns / validation_ns /
///    abort_ns                              -> Fig. 1 phase breakdown
///  - validated_records                     -> LRV cost (records re-read)
///  - validated_txns                        -> GWV/RV cost (overlapping txns
///                                             examined; Fig. 7(c), 9(b))
///  - registrations                         -> ROCC overhead analysis (Fig. 12)
///
/// Each worker thread owns one instance (cache-line padded); the runner
/// merges them after the measured region.
struct TxnStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t scan_txn_commits = 0;
  uint64_t scan_txn_aborts = 0;

  uint64_t read_write_ns = 0;   ///< read phase + write phase of committed txns
  uint64_t validation_ns = 0;   ///< lock + register + validate of committed txns
  uint64_t abort_ns = 0;        ///< total time of aborted attempts

  uint64_t validated_records = 0;  ///< record-level checks incl. LRV re-reads
  uint64_t validated_txns = 0;     ///< overlapping txns examined (GWV/RV/MVRCC)
  uint64_t registrations = 0;      ///< range-list registrations performed
  uint64_t scanned_records = 0;    ///< records returned by scan operators

  // Durability (populated only when a LogManager is attached).
  uint64_t log_records = 0;           ///< redo records appended to the WAL
  uint64_t durable_acks = 0;          ///< commits acknowledged as durable
  uint64_t durable_ack_failures = 0;  ///< durability waits cut short (crash/stop)
  uint64_t durable_wait_ns = 0;       ///< time blocked on group commit

  // Abort causes (one per aborted attempt, diagnostic).
  uint64_t abort_dirty_read = 0;       ///< read/scan hit a locked record
  uint64_t abort_lock_fail = 0;        ///< writeset lock not acquired
  uint64_t abort_read_validation = 0;  ///< readset version changed
  uint64_t abort_scan_conflict = 0;    ///< predicate / re-scan found a writer
  uint64_t abort_ring_lost = 0;        ///< ring wrapped or slot overwritten
  uint64_t abort_unresolved = 0;       ///< writer commit ts unresolved in time

  Histogram latency_all;      ///< committed transaction latency
  Histogram latency_scan;     ///< committed bulk/scan transaction latency
  Histogram latency_durable;  ///< begin -> durable-acknowledge latency

  void Merge(const TxnStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    scan_txn_commits += o.scan_txn_commits;
    scan_txn_aborts += o.scan_txn_aborts;
    read_write_ns += o.read_write_ns;
    validation_ns += o.validation_ns;
    abort_ns += o.abort_ns;
    validated_records += o.validated_records;
    validated_txns += o.validated_txns;
    registrations += o.registrations;
    scanned_records += o.scanned_records;
    log_records += o.log_records;
    durable_acks += o.durable_acks;
    durable_ack_failures += o.durable_ack_failures;
    durable_wait_ns += o.durable_wait_ns;
    abort_dirty_read += o.abort_dirty_read;
    abort_lock_fail += o.abort_lock_fail;
    abort_read_validation += o.abort_read_validation;
    abort_scan_conflict += o.abort_scan_conflict;
    abort_ring_lost += o.abort_ring_lost;
    abort_unresolved += o.abort_unresolved;
    latency_all.Merge(o.latency_all);
    latency_scan.Merge(o.latency_scan);
    latency_durable.Merge(o.latency_durable);
  }

  void Reset() {
    *this = TxnStats{};
  }

  double AbortRate() const {
    const uint64_t total = commits + aborts;
    return total == 0 ? 0.0 : static_cast<double>(aborts) / static_cast<double>(total);
  }

  double ScanAbortRate() const {
    const uint64_t total = scan_txn_commits + scan_txn_aborts;
    return total == 0 ? 0.0
                      : static_cast<double>(scan_txn_aborts) / static_cast<double>(total);
  }
};

}  // namespace rocc
