#pragma once

#include <cstdint>

#include "common/cacheline.h"
#include "common/histogram.h"

namespace rocc {

/// Structured cause of one aborted attempt. The protocol records the reason
/// at the abort site (see OccBase::NoteAbortCause) so the retry layer can
/// pick a per-reason policy instead of one blind backoff; each value maps
/// 1:1 onto an `abort_*` counter in TxnStats.
enum class AbortReason : uint8_t {
  kNone = 0,        ///< no abort recorded for the current attempt
  kDirtyRead,       ///< read/scan hit a locked (committing) record
  kLockFail,        ///< writeset lock not acquired (incl. 2PL no-wait)
  kReadValidation,  ///< readset version changed
  kScanConflict,    ///< predicate / re-scan found an overlapping writer
  kRingLost,        ///< ring wrapped or slot overwritten
  kUnresolved,      ///< writer commit ts unresolved within the spin budget
  kExplicit,        ///< workload-initiated abort (no protocol conflict)
  kSnapshotEvicted, ///< pinned snapshot evicted under version-memory pressure
};

/// Canonical short name for an abort reason. This is the single string table
/// for the whole repo: the report table, bench JSON column names, the trace
/// exporters, and the Prometheus labels all derive from it, so a grep for
/// one of these names matches across every surface.
constexpr const char* AbortReasonName(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kDirtyRead: return "dirty_read";
    case AbortReason::kLockFail: return "lock_fail";
    case AbortReason::kReadValidation: return "read_validation";
    case AbortReason::kScanConflict: return "scan_conflict";
    case AbortReason::kRingLost: return "ring_lost";
    case AbortReason::kUnresolved: return "unresolved";
    case AbortReason::kExplicit: return "explicit";
    case AbortReason::kSnapshotEvicted: return "snapshot_evicted";
  }
  return "unknown";
}

/// Every real abort cause (kNone excluded), in TxnStats counter order.
/// Reporting code iterates this instead of hand-listing causes.
inline constexpr AbortReason kAbortCauses[] = {
    AbortReason::kDirtyRead,      AbortReason::kLockFail,
    AbortReason::kReadValidation, AbortReason::kScanConflict,
    AbortReason::kRingLost,       AbortReason::kUnresolved,
    AbortReason::kExplicit,       AbortReason::kSnapshotEvicted,
};
inline constexpr size_t kNumAbortCauses =
    sizeof(kAbortCauses) / sizeof(kAbortCauses[0]);

/// Column index of `r` in per-reason matrices: 0 = kNone (the attempt
/// committed), 1.. = kAbortCauses order. Reporting code maps a column back
/// to a name via AbortReasonName(column == 0 ? kNone : kAbortCauses[c - 1]).
constexpr uint32_t AbortReasonColumn(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return 0;
    case AbortReason::kDirtyRead: return 1;
    case AbortReason::kLockFail: return 2;
    case AbortReason::kReadValidation: return 3;
    case AbortReason::kScanConflict: return 4;
    case AbortReason::kRingLost: return 5;
    case AbortReason::kUnresolved: return 6;
    case AbortReason::kExplicit: return 7;
    case AbortReason::kSnapshotEvicted: return 8;
  }
  return 0;
}

/// Per-thread execution statistics.
///
/// Counters mirror the measurements the paper reports:
///  - commits/aborts                        -> throughput, abort rate
///  - read_write_ns / validation_ns /
///    abort_ns                              -> Fig. 1 phase breakdown
///  - validated_records                     -> LRV cost (records re-read)
///  - validated_txns                        -> GWV/RV cost (overlapping txns
///                                             examined; Fig. 7(c), 9(b))
///  - registrations                         -> ROCC overhead analysis (Fig. 12)
///
/// Each worker thread owns one instance; the runner merges them after the
/// measured region. Cache-line aligned because the runner hands workers
/// adjacent elements of a std::vector<TxnStats> — without the alignment the
/// hottest per-commit counters of neighboring workers share a line.
struct alignas(kCacheLineSize) TxnStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t scan_txn_commits = 0;
  uint64_t scan_txn_aborts = 0;

  uint64_t read_write_ns = 0;   ///< read phase + write phase of committed txns
  uint64_t validation_ns = 0;   ///< lock + register + validate of committed txns
  uint64_t abort_ns = 0;        ///< total time of aborted attempts

  uint64_t validated_records = 0;  ///< record-level checks incl. LRV re-reads
  uint64_t validated_txns = 0;     ///< overlapping txns examined (GWV/RV/MVRCC)
  uint64_t registrations = 0;      ///< range-list registrations performed
  uint64_t scanned_records = 0;    ///< records returned by scan operators

  // Durability (populated only when a LogManager is attached).
  uint64_t log_records = 0;           ///< redo records appended to the WAL
  uint64_t durable_acks = 0;          ///< commits acknowledged as durable
  uint64_t durable_ack_failures = 0;  ///< durability waits cut short (crash/stop)
  uint64_t durable_wait_ns = 0;       ///< time blocked on group commit

  // Abort causes (exactly one per aborted attempt; their sum equals
  // `aborts` — checked by the runner in debug builds and by ctest).
  uint64_t abort_dirty_read = 0;       ///< read/scan hit a locked record
  uint64_t abort_lock_fail = 0;        ///< writeset lock not acquired
  uint64_t abort_read_validation = 0;  ///< readset version changed
  uint64_t abort_scan_conflict = 0;    ///< predicate / re-scan found a writer
  uint64_t abort_ring_lost = 0;        ///< ring wrapped or slot overwritten
  uint64_t abort_unresolved = 0;       ///< writer commit ts unresolved in time
  uint64_t abort_explicit = 0;         ///< workload-initiated abort, no conflict
  uint64_t abort_snapshot_evicted = 0; ///< pinned snapshot evicted under pressure

  // Multi-version row store (populated only when MVCC is enabled).
  // These are rate counters merged across workers; live-memory gauges come
  // from mv::VersionStore::Telemetry() instead, because the harness swaps
  // warm-up and measured sinks and a gauge split across sinks goes negative.
  uint64_t mv_versions_installed = 0;  ///< predecessor nodes linked at commit
  uint64_t mv_version_bytes_installed = 0;  ///< node + payload bytes installed
  uint64_t mv_snapshot_scans = 0;      ///< SnapshotScan operator invocations
  uint64_t mv_snapshot_records = 0;    ///< records returned by snapshot scans
  uint64_t mv_chain_reads = 0;         ///< snapshot reads resolved off-row
  uint64_t mv_snapshot_point_reads = 0;  ///< point reads resolved at a snapshot
  uint64_t mv_snapshot_txns = 0;       ///< read-only snapshot txns committed
                                       ///< (no validation, no locks, no WAL)

  // Retry-layer accounting (populated by the ContentionManager).
  uint64_t give_ups = 0;           ///< logical txns dropped: retry budget spent
  uint64_t escalations = 0;        ///< entries into protected (escalated) retry
  uint64_t protected_commits = 0;  ///< commits that needed the protected retry
  uint64_t relief_splits = 0;      ///< escalations avoided by a structural fix
  uint64_t backoff_ns_total = 0;   ///< time spent in adaptive abort backoff
  uint64_t gate_wait_ns = 0;       ///< time stalled behind a protected retry

  Histogram latency_all;      ///< committed transaction latency
  Histogram latency_scan;     ///< committed bulk/scan transaction latency
  Histogram latency_durable;  ///< begin -> durable-acknowledge latency
  Histogram attempts_per_commit;  ///< attempts per committed logical txn (1 = first try)
  Histogram backoff_time;         ///< per-abort adaptive backoff duration (ns)
  Histogram mv_chain_length;      ///< version-chain length after install+prune

  // Per-phase latency of committed attempts; populated only while the flight
  // recorder is installed (obs::Enabled()), using timestamps the commit path
  // already takes — obs-off runs pay nothing for these.
  Histogram phase_execute;   ///< begin -> commit-entry (read/write phase)
  Histogram phase_validate;  ///< lock + register + validate
  Histogram phase_apply;     ///< write install + ring publish
  Histogram phase_log_wait;  ///< group-commit durability wait

  // Tail-latency SLO accounting (populated only when the flight recorder is
  // installed AND obs_slo_us > 0). slo_violations[p][c] counts attempts
  // whose total latency blew the SLO, attributed to slowest phase p (the
  // first four Phase values: execute/validate/apply/log_wait) and outcome
  // column c (AbortReasonColumn: 0 = committed, 1.. = abort cause).
  static constexpr uint32_t kNumSloPhases = 4;
  uint64_t slo_violations[kNumSloPhases][kNumAbortCauses + 1] = {};
  Histogram latency_slo;  ///< total latency of SLO-violating attempts (ns)

  uint64_t SloViolationTotal() const {
    uint64_t total = 0;
    for (uint32_t p = 0; p < kNumSloPhases; p++) {
      for (uint32_t c = 0; c <= kNumAbortCauses; c++) {
        total += slo_violations[p][c];
      }
    }
    return total;
  }

  void Merge(const TxnStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    scan_txn_commits += o.scan_txn_commits;
    scan_txn_aborts += o.scan_txn_aborts;
    read_write_ns += o.read_write_ns;
    validation_ns += o.validation_ns;
    abort_ns += o.abort_ns;
    validated_records += o.validated_records;
    validated_txns += o.validated_txns;
    registrations += o.registrations;
    scanned_records += o.scanned_records;
    log_records += o.log_records;
    durable_acks += o.durable_acks;
    durable_ack_failures += o.durable_ack_failures;
    durable_wait_ns += o.durable_wait_ns;
    abort_dirty_read += o.abort_dirty_read;
    abort_lock_fail += o.abort_lock_fail;
    abort_read_validation += o.abort_read_validation;
    abort_scan_conflict += o.abort_scan_conflict;
    abort_ring_lost += o.abort_ring_lost;
    abort_unresolved += o.abort_unresolved;
    abort_explicit += o.abort_explicit;
    abort_snapshot_evicted += o.abort_snapshot_evicted;
    mv_versions_installed += o.mv_versions_installed;
    mv_version_bytes_installed += o.mv_version_bytes_installed;
    mv_snapshot_scans += o.mv_snapshot_scans;
    mv_snapshot_records += o.mv_snapshot_records;
    mv_chain_reads += o.mv_chain_reads;
    mv_snapshot_point_reads += o.mv_snapshot_point_reads;
    mv_snapshot_txns += o.mv_snapshot_txns;
    give_ups += o.give_ups;
    escalations += o.escalations;
    protected_commits += o.protected_commits;
    relief_splits += o.relief_splits;
    backoff_ns_total += o.backoff_ns_total;
    gate_wait_ns += o.gate_wait_ns;
    latency_all.Merge(o.latency_all);
    latency_scan.Merge(o.latency_scan);
    latency_durable.Merge(o.latency_durable);
    attempts_per_commit.Merge(o.attempts_per_commit);
    backoff_time.Merge(o.backoff_time);
    mv_chain_length.Merge(o.mv_chain_length);
    phase_execute.Merge(o.phase_execute);
    phase_validate.Merge(o.phase_validate);
    phase_apply.Merge(o.phase_apply);
    phase_log_wait.Merge(o.phase_log_wait);
    for (uint32_t p = 0; p < kNumSloPhases; p++) {
      for (uint32_t c = 0; c <= kNumAbortCauses; c++) {
        slo_violations[p][c] += o.slo_violations[p][c];
      }
    }
    latency_slo.Merge(o.latency_slo);
  }

  /// Bump the cause counter matching `r` (kNone is not a cause).
  void CountAbortCause(AbortReason r) {
    switch (r) {
      case AbortReason::kDirtyRead: abort_dirty_read++; break;
      case AbortReason::kLockFail: abort_lock_fail++; break;
      case AbortReason::kReadValidation: abort_read_validation++; break;
      case AbortReason::kScanConflict: abort_scan_conflict++; break;
      case AbortReason::kRingLost: abort_ring_lost++; break;
      case AbortReason::kUnresolved: abort_unresolved++; break;
      case AbortReason::kExplicit: abort_explicit++; break;
      case AbortReason::kSnapshotEvicted: abort_snapshot_evicted++; break;
      case AbortReason::kNone: break;
    }
  }

  /// Sum of the per-cause abort counters; equals `aborts` when every abort
  /// path recorded its reason exactly once.
  uint64_t AbortCauseSum() const {
    return abort_dirty_read + abort_lock_fail + abort_read_validation +
           abort_scan_conflict + abort_ring_lost + abort_unresolved +
           abort_explicit + abort_snapshot_evicted;
  }

  void Reset() {
    *this = TxnStats{};
  }

  double AbortRate() const {
    const uint64_t total = commits + aborts;
    return total == 0 ? 0.0 : static_cast<double>(aborts) / static_cast<double>(total);
  }

  double ScanAbortRate() const {
    const uint64_t total = scan_txn_commits + scan_txn_aborts;
    return total == 0 ? 0.0
                      : static_cast<double>(scan_txn_aborts) / static_cast<double>(total);
  }
};

static_assert(sizeof(TxnStats) % kCacheLineSize == 0 &&
                  alignof(TxnStats) == kCacheLineSize,
              "adjacent workers' stats sinks must not share a cache line");

/// Counter value for one abort cause; pairs with kAbortCauses so reporting
/// code can iterate causes without naming each field.
uint64_t AbortCauseCount(const TxnStats& s, AbortReason r);

}  // namespace rocc
