#include "harness/contention.h"

#include <algorithm>

#include "common/fiber.h"
#include "common/timer.h"
#include "harness/knobs.h"
#include "obs/obs.h"
#include "sync/optiql.h"

namespace rocc {

ContentionManager::ContentionManager(uint32_t num_threads, ContentionOptions options)
    : options_(options) {
  scan_escalation_knob_ = KnobRegistry::Instance().Register(
      "gate_scan_escalation_aborts", options_.scan_escalation_aborts);
  states_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; i++) {
    states_.push_back(std::make_unique<State>());
  }
}

void ContentionManager::AttachThread(uint32_t thread_id, TxnStats* sink) {
  states_[thread_id]->stats = sink;
}

void ContentionManager::BeginTxn(uint32_t thread_id, bool is_scan_txn) {
  State& st = *states_[thread_id];
  st.consecutive_aborts = 0;
  st.is_scan = is_scan_txn;
  st.relief_tried = false;
}

bool ContentionManager::InProtectedRetry(uint32_t thread_id) const {
  return states_[thread_id]->protected_mode;
}

void ContentionManager::Admit(uint32_t thread_id) {
  uint32_t h = holder_.load(std::memory_order_acquire);
  if (h == kNoHolder || h == thread_id) return;
  const uint64_t wait_start = NowNanos();
  obs::HeartbeatPhase(thread_id, obs::Phase::kGateWait, wait_start);
  do {
    CooperativeYield();
    h = holder_.load(std::memory_order_acquire);
  } while (h != kNoHolder && h != thread_id);
  const uint64_t now = NowNanos();
  stats(thread_id).gate_wait_ns += now - wait_start;
  // Always recorded: gate stalls are rare but long, exactly what 1/N
  // sampling would miss.
  obs::SpanEventAlways(thread_id, obs::Phase::kGateWait, wait_start, now);
  obs::HeartbeatClear(thread_id);
}

void ContentionManager::EnterProtected(uint32_t thread_id) {
  // Protected retriers are serialized: wait for the current holder (it must
  // commit — the gate quiesces its conflicts), then claim the token.
  uint32_t expected = kNoHolder;
  while (!holder_.compare_exchange_weak(expected, thread_id,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    expected = kNoHolder;
    CooperativeYield();
  }
  states_[thread_id]->protected_mode = true;
  // Queued try-lock waiters drop out of their stripe queues promptly while
  // the gate is held, so locks transitively blocking the protected
  // transaction are released instead of being held across a long FIFO wait.
  sync::SetLockQuiesce(true);
  obs::WorkerEvent(thread_id, obs::EventType::kGateEnter, 0, thread_id, 0);
}

void ContentionManager::ReleaseProtected(uint32_t thread_id) {
  State& st = *states_[thread_id];
  if (!st.protected_mode) return;
  st.protected_mode = false;
  sync::SetLockQuiesce(false);
  holder_.store(kNoHolder, std::memory_order_release);
  obs::WorkerEvent(thread_id, obs::EventType::kGateExit, 0, thread_id, 0);
}

void ContentionManager::SpinWithYields(uint64_t spins) const {
  const uint64_t chunk = std::max<uint32_t>(options_.spins_per_yield, 1);
  while (spins > 0) {
    const uint64_t n = std::min<uint64_t>(spins, chunk);
    for (uint64_t i = 0; i < n; i++) CpuRelax();
    spins -= n;
    if (spins > 0) CooperativeYield();
  }
}

void ContentionManager::OnAbort(uint32_t thread_id, AbortReason reason, Rng& rng) {
  State& st = *states_[thread_id];
  TxnStats& s = stats(thread_id);
  st.consecutive_aborts++;

  if (st.protected_mode) {
    // Gate held: conflicts can only come from attempts already in flight.
    // Yield so they drain; backing off would just delay the committed retry.
    CooperativeYield();
    return;
  }

  // Contention-gate K for scans reads the hot-reloadable knob; the point
  // threshold is a last-resort constant and stays plain config.
  const uint32_t threshold =
      st.is_scan ? static_cast<uint32_t>(scan_escalation_knob_->load(
                       std::memory_order_relaxed))
                 : options_.point_escalation_aborts;
  if (threshold != 0 && st.consecutive_aborts >= threshold) {
    // Structural relief before the stop-the-world gate: once per logical
    // transaction, let the protocol try a cheaper fix (split the hot range).
    // On success, reset the ladder and retry normally; a transaction that
    // keeps aborting crosses the threshold again and escalates for real.
    if (relief_hook_ && !st.relief_tried) {
      st.relief_tried = true;
      if (relief_hook_(thread_id)) {
        s.relief_splits++;
        st.consecutive_aborts = 0;
        CooperativeYield();
        return;
      }
    }
    s.escalations++;
    EnterProtected(thread_id);
    return;
  }

  const uint64_t backoff_start = NowNanos();
  obs::HeartbeatPhase(thread_id, obs::Phase::kBackoff, backoff_start);
  const uint32_t rung = st.consecutive_aborts - 1;  // first abort = rung 0
  switch (reason) {
    case AbortReason::kUnresolved:
      // The writer only needs a few instructions to publish its commit
      // timestamp: yield once and re-read, no backoff.
      CooperativeYield();
      break;
    case AbortReason::kScanConflict:
    case AbortReason::kRingLost: {
      // A re-scan can only win once the overlapping point-write burst has
      // drained past the new rd_ts: long capped exponential backoff.
      const uint32_t shift = std::min(rung, options_.long_backoff_cap_shift);
      const uint64_t spins =
          rng.Uniform(static_cast<uint64_t>(options_.long_backoff_spins) << shift) + 1;
      SpinWithYields(spins);
      CooperativeYield();
      break;
    }
    case AbortReason::kDirtyRead:
    case AbortReason::kLockFail:
    case AbortReason::kReadValidation:
    case AbortReason::kExplicit:
    // An evicted snapshot is not a data conflict: the immediate retry
    // acquires a fresh snapshot near the watermark, whose chains the pruner
    // keeps — the short ladder's first rung (no backoff) is the right policy.
    case AbortReason::kSnapshotEvicted:
    case AbortReason::kNone:
    default: {
      // Short jittered spin breaks the symmetric-retrier livelock; the yield
      // lets a descheduled lock holder finish instead of burning the slice
      // on retries doomed to hit the same lock.
      const uint32_t shift = std::min(rung, options_.short_backoff_cap_shift);
      const uint64_t spins =
          rng.Uniform(static_cast<uint64_t>(options_.short_backoff_spins) << shift);
      for (uint64_t i = 0; i < spins; i++) CpuRelax();
      if (st.consecutive_aborts > 1) CooperativeYield();
      break;
    }
  }
  const uint64_t backoff_end = NowNanos();
  const uint64_t waited = backoff_end - backoff_start;
  s.backoff_ns_total += waited;
  s.backoff_time.Record(waited);
  // Sampling-gated like the txn spans: the aborted attempt that triggered
  // this backoff belongs to the same sampled transaction timeline.
  obs::SpanEvent(thread_id, obs::Phase::kBackoff, backoff_start, backoff_end);
  obs::HeartbeatClear(thread_id);
}

void ContentionManager::OnCommit(uint32_t thread_id, uint32_t attempts) {
  State& st = *states_[thread_id];
  TxnStats& s = stats(thread_id);
  s.attempts_per_commit.Record(attempts);
  if (st.protected_mode) s.protected_commits++;
  ReleaseProtected(thread_id);
  st.consecutive_aborts = 0;
}

void ContentionManager::OnGiveUp(uint32_t thread_id) {
  stats(thread_id).give_ups++;
  ReleaseProtected(thread_id);
  states_[thread_id]->consecutive_aborts = 0;
}

void ContentionManager::OnStop(uint32_t thread_id) {
  ReleaseProtected(thread_id);
  states_[thread_id]->consecutive_aborts = 0;
}

}  // namespace rocc
