#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cc/cc.h"
#include "harness/stats.h"
#include "sync/optiql.h"
#include "workload/workload.h"

namespace rocc {

class LogManager;

/// How worker "threads" are executed.
enum class ExecMode {
  kAuto,     ///< fibers when num_threads exceeds hardware concurrency
  kThreads,  ///< one OS thread per worker (real parallelism required)
  kFibers,   ///< cooperative fibers on one OS thread (simulated many-core)
};

/// Parameters of one measured run.
struct RunOptions {
  uint32_t num_threads = 4;
  uint64_t txns_per_thread = 5000;
  uint64_t warmup_txns_per_thread = 200;
  uint64_t seed = 1;
  ExecMode mode = ExecMode::kAuto;
  /// Validation-work units between cooperative yields in fiber mode
  /// (ConcurrencyControl::SetValidationPacing); 0 disables pacing.
  uint32_t validation_pacing = 16;
  /// When set, attached to the protocol before workers start: commits append
  /// redo records and block on group-commit acknowledgement. Not owned; the
  /// caller opens it first and stops it after the run.
  LogManager* log = nullptr;
  /// When `set_lock_impl` is true, RunExperiment switches the process-global
  /// lock implementation (sync::SetLockImpl) before workers start — the only
  /// point where no latch can be held or queued. Left false, the current
  /// setting (default cas, or whatever `--lock` selected) stays in force.
  bool set_lock_impl = false;
  sync::LockImpl lock_impl = sync::LockImpl::kCas;
};

/// Aggregated outcome of one measured run.
struct RunResult {
  TxnStats stats;
  double seconds = 0;
  uint64_t total_txns = 0;  ///< logical transactions issued (excl. warmup)

  double Throughput() const { return seconds > 0 ? stats.commits / seconds : 0; }
  double ScanThroughput() const {
    return seconds > 0 ? stats.scan_txn_commits / seconds : 0;
  }
  /// Mean overlapping transactions examined per committed scan transaction.
  double ValidatedTxnsPerScan() const {
    return stats.scan_txn_commits == 0
               ? 0
               : static_cast<double>(stats.validated_txns) /
                     static_cast<double>(stats.scan_txn_commits);
  }
  double ValidatedRecordsPerCommit() const {
    return stats.commits == 0 ? 0
                              : static_cast<double>(stats.validated_records) /
                                    static_cast<double>(stats.commits);
  }
};

/// Run `txns_per_thread` logical transactions on each of `num_threads`
/// workers against the given protocol and workload, with a warmup phase
/// excluded from the returned statistics. Threads start the measured region
/// together behind a barrier.
RunResult RunExperiment(ConcurrencyControl* cc, Workload* workload,
                        const RunOptions& options);

/// Mid-run merge of every worker's statistics sink (warm-up + measured),
/// for the live observability plane (/vars, /metrics without a streamer).
/// Returns zeros when no experiment is in flight. The reads deliberately
/// race the owning workers — plain counter loads whose torn values are at
/// worst one increment stale — and are bracketed with TSan ignore
/// annotations; treat the result as diagnostics, not accounting.
TxnStats CollectLiveStats();

/// True while an experiment's workers are running.
bool LiveRunActive();

/// Names accepted by CreateProtocol: "rocc", "lrv", "gwv", "mvrcc", "2pl".
/// `ranges_hint` scales the workload's logical-range layout (0 = default);
/// `ring_capacity` sizes every circular transaction list.
/// `rocc_register_writes` is the Fig. 12 ablation toggle.
/// `adaptive` enables the RangeTuner on rocc/mvrcc (default policy knobs);
/// other schemes ignore it.
/// `mvcc` turns on the multi-version row store (ConcurrencyControl::
/// EnableMvcc) so read-only snapshot scans resolve against version chains; a
/// "+mv" suffix on `name` (e.g. "rocc+mv") does the same.
std::unique_ptr<ConcurrencyControl> CreateProtocol(
    const std::string& name, Database* db, const Workload& workload,
    uint32_t num_threads, uint32_t ranges_hint = 0, uint32_t ring_capacity = 4096,
    bool rocc_register_writes = true, bool adaptive = false, bool mvcc = false);

}  // namespace rocc
