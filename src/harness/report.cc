#include "harness/report.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/sysinfo.h"

namespace rocc {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string ReportTable::Fmt(uint64_t v) { return std::to_string(v); }

std::string ReportTable::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); c++) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); c++) {
      out << "  ";
      out << cells[c];
      for (size_t pad = cells[c].size(); pad < widths[c]; pad++) out << ' ';
    }
    out << '\n';
  };
  emit(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); c++) rule += "  " + std::string(widths[c], '-');
  out << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string ReportTable::ToCsv() const {
  std::ostringstream out;
  for (size_t c = 0; c < headers_.size(); c++) {
    out << headers_[c] << (c + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      out << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
  return out.str();
}

void ReportTable::Print(bool csv) const {
  std::fputs(ToText().c_str(), stdout);
  if (csv) {
    std::fputs("\n[csv]\n", stdout);
    std::fputs(ToCsv().c_str(), stdout);
  }
  std::fflush(stdout);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// A cell is a JSON number when strtod consumes it fully and the value is
/// finite (JSON has no nan/inf literals).
bool IsJsonNumber(const std::string& s) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() && errno == 0 && std::isfinite(v);
}

void EmitJsonValue(std::ostringstream& out, const std::string& cell) {
  if (IsJsonNumber(cell)) {
    out << cell;
  } else {
    out << '"' << JsonEscape(cell) << '"';
  }
}

}  // namespace

JsonReport::JsonReport(std::string binary, std::string parameters)
    : binary_(std::move(binary)),
      environment_(SysInfo::Probe().ToString()),
      parameters_(std::move(parameters)) {}

void JsonReport::AddTable(const std::string& title, const ReportTable& table) {
  tables_.push_back({title, table.headers(), table.rows()});
}

std::string JsonReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"binary\": \"" << JsonEscape(binary_) << "\",\n";
  out << "  \"environment\": \"" << JsonEscape(environment_) << "\",\n";
  out << "  \"parameters\": \"" << JsonEscape(parameters_) << "\",\n";
  out << "  \"tables\": [";
  for (size_t ti = 0; ti < tables_.size(); ti++) {
    const Entry& e = tables_[ti];
    out << (ti == 0 ? "\n" : ",\n");
    out << "    {\n      \"title\": \"" << JsonEscape(e.title) << "\",\n";
    out << "      \"rows\": [";
    for (size_t ri = 0; ri < e.rows.size(); ri++) {
      out << (ri == 0 ? "\n" : ",\n") << "        {";
      const auto& row = e.rows[ri];
      for (size_t c = 0; c < e.headers.size() && c < row.size(); c++) {
        if (c > 0) out << ", ";
        out << '"' << JsonEscape(e.headers[c]) << "\": ";
        EmitJsonValue(out, row[c]);
      }
      out << '}';
    }
    out << "\n      ]\n    }";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool JsonReport::WriteTo(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

std::vector<std::string> ContentionHeaders() {
  return {"give_ups",     "escalations",  "protected_commits", "relief_splits",
          "attempts_mean", "attempts_p99", "backoff_ms"};
}

std::vector<std::string> ContentionCells(const TxnStats& stats) {
  const Histogram& a = stats.attempts_per_commit;
  return {ReportTable::Fmt(stats.give_ups),
          ReportTable::Fmt(stats.escalations),
          ReportTable::Fmt(stats.protected_commits),
          ReportTable::Fmt(stats.relief_splits),
          ReportTable::Fmt(a.count() == 0 ? 0.0 : a.Mean(), 2),
          ReportTable::Fmt(static_cast<uint64_t>(a.Percentile(99))),
          ReportTable::Fmt(static_cast<double>(stats.backoff_ns_total) / 1e6, 3)};
}

std::vector<std::string> RangeSummaryHeaders() {
  return {"ranges", "table_version", "splits",
          "merges", "resizes",       "hot_reg_share"};
}

std::vector<std::string> RangeSummaryCells(const RangeTelemetry& t) {
  const double hot_share =
      t.total_registrations == 0 || t.rows.empty()
          ? 0.0
          : static_cast<double>(t.rows.front().registrations) /
                static_cast<double>(t.total_registrations);
  return {ReportTable::Fmt(static_cast<uint64_t>(t.num_ranges)),
          ReportTable::Fmt(t.table_version), ReportTable::Fmt(t.splits),
          ReportTable::Fmt(t.merges), ReportTable::Fmt(t.resizes),
          ReportTable::Fmt(hot_share, 3)};
}

ReportTable RangeTelemetryTable(const RangeTelemetry& t) {
  // The trailing ab_<reason> columns are the range_id × AbortReason
  // contention heatmap; the same names appear in /vars and the Prometheus
  // labels (single string table via AbortReasonName).
  std::vector<std::string> headers = {
      "range_id",       "start_key",  "end_key",       "slices",
      "ring_version",   "ring_cap",   "ring_high_water", "ring_resizes",
      "combining",      "prev_rings", "registrations", "ring_lost",
      "scan_conflict"};
  for (AbortReason r : kAbortCauses) {
    headers.push_back(std::string("ab_") + AbortReasonName(r));
  }
  ReportTable table(std::move(headers));
  for (const RangeTelemetry::Row& r : t.rows) {
    std::vector<std::string> cells = {
        ReportTable::Fmt(static_cast<uint64_t>(r.range_id)),
        ReportTable::Fmt(r.start_key), ReportTable::Fmt(r.end_key),
        ReportTable::Fmt(static_cast<uint64_t>(r.num_slices)),
        ReportTable::Fmt(r.ring_version),
        ReportTable::Fmt(static_cast<uint64_t>(r.ring_capacity)),
        ReportTable::Fmt(r.ring_high_water),
        ReportTable::Fmt(r.ring_resizes),
        std::string(r.combining ? "yes" : "no"),
        ReportTable::Fmt(static_cast<uint64_t>(r.prev_rings)),
        ReportTable::Fmt(r.registrations), ReportTable::Fmt(r.ring_lost),
        ReportTable::Fmt(r.scan_conflict)};
    for (size_t c = 0; c < kNumAbortCauses; c++) {
      cells.push_back(ReportTable::Fmt(r.abort_by_reason[c]));
    }
    table.AddRow(std::move(cells));
  }
  return table;
}

ReportTable LatencySummaryTable(const TxnStats& stats) {
  ReportTable table({"kind", "count", "mean_us", "p50_us", "p95_us", "p99_us",
                     "p999_us", "stddev_us", "max_us"});
  struct NamedHist {
    const char* kind;
    const Histogram* h;
  };
  const NamedHist hists[] = {
      {"all", &stats.latency_all},
      {"scan", &stats.latency_scan},
      {"durable", &stats.latency_durable},
      {"phase_execute", &stats.phase_execute},
      {"phase_validate", &stats.phase_validate},
      {"phase_apply", &stats.phase_apply},
      {"phase_log_wait", &stats.phase_log_wait},
  };
  for (const NamedHist& nh : hists) {
    const Histogram& h = *nh.h;
    if (h.count() == 0) continue;
    table.AddRow({nh.kind, ReportTable::Fmt(h.count()),
                  ReportTable::Fmt(h.Mean() / 1e3, 1),
                  ReportTable::Fmt(static_cast<double>(h.Percentile(50)) / 1e3, 1),
                  ReportTable::Fmt(static_cast<double>(h.Percentile(95)) / 1e3, 1),
                  ReportTable::Fmt(static_cast<double>(h.Percentile(99)) / 1e3, 1),
                  ReportTable::Fmt(static_cast<double>(h.Percentile(99.9)) / 1e3, 1),
                  ReportTable::Fmt(h.Stddev() / 1e3, 1),
                  ReportTable::Fmt(static_cast<double>(h.max()) / 1e3, 1)});
  }
  return table;
}

std::vector<std::string> AbortBreakdownHeaders() {
  std::vector<std::string> headers;
  headers.reserve(kNumAbortCauses);
  for (AbortReason r : kAbortCauses) {
    headers.push_back(std::string("abort_") + AbortReasonName(r));
  }
  return headers;
}

std::vector<std::string> AbortBreakdownCells(const TxnStats& stats) {
  std::vector<std::string> cells;
  cells.reserve(kNumAbortCauses);
  for (AbortReason r : kAbortCauses) {
    cells.push_back(ReportTable::Fmt(AbortCauseCount(stats, r)));
  }
  return cells;
}

void PrintBanner(const std::string& title, const std::string& params) {
  const SysInfo info = SysInfo::Probe();
  std::printf("=== %s ===\n", title.c_str());
  std::printf("environment: %s\n", info.ToString().c_str());
  if (!params.empty()) std::printf("parameters : %s\n", params.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace rocc
