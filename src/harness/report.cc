#include "harness/report.h"

#include <cstdio>
#include <sstream>

#include "common/sysinfo.h"

namespace rocc {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string ReportTable::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string ReportTable::Fmt(uint64_t v) { return std::to_string(v); }

std::string ReportTable::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); c++) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); c++) {
      out << "  ";
      out << cells[c];
      for (size_t pad = cells[c].size(); pad < widths[c]; pad++) out << ' ';
    }
    out << '\n';
  };
  emit(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); c++) rule += "  " + std::string(widths[c], '-');
  out << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string ReportTable::ToCsv() const {
  std::ostringstream out;
  for (size_t c = 0; c < headers_.size(); c++) {
    out << headers_[c] << (c + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      out << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
  return out.str();
}

void ReportTable::Print(bool csv) const {
  std::fputs(ToText().c_str(), stdout);
  if (csv) {
    std::fputs("\n[csv]\n", stdout);
    std::fputs(ToCsv().c_str(), stdout);
  }
  std::fflush(stdout);
}

void PrintBanner(const std::string& title, const std::string& params) {
  const SysInfo info = SysInfo::Probe();
  std::printf("=== %s ===\n", title.c_str());
  std::printf("environment: %s\n", info.ToString().c_str());
  if (!params.empty()) std::printf("parameters : %s\n", params.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace rocc
