#include "index/hash_index.h"

#include <bit>
#include <cstdlib>

namespace rocc {

HashIndex::HashIndex(uint64_t expected_entries) {
  uint64_t cap = std::bit_ceil(expected_entries * 2 + 16);
  capacity_ = cap;
  mask_ = cap - 1;
  slots_ = static_cast<Slot*>(std::calloc(cap, sizeof(Slot)));
  for (uint64_t i = 0; i < cap; i++) {
    slots_[i].key.store(kEmpty, std::memory_order_relaxed);
    slots_[i].row.store(nullptr, std::memory_order_relaxed);
  }
}

HashIndex::~HashIndex() { std::free(slots_); }

uint64_t HashIndex::Hash(uint64_t key) const {
  // Fibonacci hashing with an extra xor-shift mix.
  uint64_t h = key * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return h & mask_;
}

Status HashIndex::Insert(uint64_t key, Row* row) {
  uint64_t idx = Hash(key);
  for (uint64_t probes = 0; probes < capacity_; probes++, idx = (idx + 1) & mask_) {
    uint64_t cur = slots_[idx].key.load(std::memory_order_acquire);
    if (cur == key) return Status::KeyExists();
    if (cur == kEmpty || cur == kTombstone) {
      if (slots_[idx].key.compare_exchange_strong(cur, key,
                                                  std::memory_order_acq_rel)) {
        slots_[idx].row.store(row, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return Status::Ok();
      }
      // Lost the race for this slot; re-examine it (it may now hold `key`).
      if (slots_[idx].key.load(std::memory_order_acquire) == key) {
        return Status::KeyExists();
      }
    }
  }
  return Status::ResourceExhausted("hash index full");
}

Row* HashIndex::Get(uint64_t key) const {
  uint64_t idx = Hash(key);
  for (uint64_t probes = 0; probes < capacity_; probes++, idx = (idx + 1) & mask_) {
    const uint64_t cur = slots_[idx].key.load(std::memory_order_acquire);
    if (cur == key) {
      // The row pointer is published after the key; spin the brief window.
      Row* r = slots_[idx].row.load(std::memory_order_acquire);
      while (r == nullptr) r = slots_[idx].row.load(std::memory_order_acquire);
      return r;
    }
    if (cur == kEmpty) return nullptr;
  }
  return nullptr;
}

Status HashIndex::Remove(uint64_t key) {
  uint64_t idx = Hash(key);
  for (uint64_t probes = 0; probes < capacity_; probes++, idx = (idx + 1) & mask_) {
    uint64_t cur = slots_[idx].key.load(std::memory_order_acquire);
    if (cur == key) {
      if (slots_[idx].key.compare_exchange_strong(cur, kTombstone,
                                                  std::memory_order_acq_rel)) {
        slots_[idx].row.store(nullptr, std::memory_order_release);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return Status::Ok();
      }
      return Status::NotFound();
    }
    if (cur == kEmpty) return Status::NotFound();
  }
  return Status::NotFound();
}

}  // namespace rocc
