#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.h"
#include "index/index.h"
#include "sync/optiql.h"

namespace rocc {

namespace btree_detail {

constexpr int kInnerMax = 64;  ///< max keys per inner node
constexpr int kLeafMax = 64;   ///< max entries per leaf

/// Node header with an optimistic version latch (optimistic lock coupling,
/// Leis et al., "The ART of Practical Synchronization"), backed by
/// `sync::VersionLatch`: readers validate version snapshots and restart on
/// interference exactly as before, while writers — under `--lock=optiql` —
/// enqueue OptiQL-style on a per-node MCS queue instead of CAS-looping on a
/// hot header word (DESIGN.md §13).
///
/// Cache-line aligned so the latch word of one hot node never false-shares
/// with a sibling allocation; keys/children start on the next line.
struct alignas(kCacheLineSize) Node {
  sync::VersionLatch latch;
  bool is_leaf = false;
  uint16_t count = 0;
  /// Per-latch cas->optiql promotion score for `--lock=adaptive`: this node
  /// promotes itself to the queued path from its own contention history
  /// instead of the global switch. Lives in the header line's padding.
  sync::ContendedHint latch_hint;

  /// Write-lock ownership token carried between upgrade and unlock.
  using LatchGuard = sync::VersionLatch::Guard;

  /// Returns a stable (unlocked) version snapshot, waiting out writers with
  /// pause + capped exponential backoff.
  uint64_t StableVersion() const { return latch.ReadLockOrRestart(); }

  bool Validate(uint64_t expected) const {
    return latch.CheckOrRestart(expected);
  }

  bool TryUpgradeLock(uint64_t expected, LatchGuard& g) {
    return latch.UpgradeToWriteLockOrRestart(expected, g, &latch_hint);
  }

  void WriteLock(LatchGuard& g) { latch.WriteLock(g, &latch_hint); }

  /// Releases the write lock, advancing the version so concurrent optimistic
  /// readers detect the modification and restart.
  void WriteUnlock(LatchGuard& g) { latch.WriteUnlock(g); }
};
static_assert(sizeof(Node) == kCacheLineSize,
              "Node header (latch + metadata) should occupy one cache line");
static_assert(alignof(Node) == kCacheLineSize,
              "hot latch words must not straddle or share cache lines");

struct Inner : Node {
  uint64_t keys[kInnerMax];
  Node* children[kInnerMax + 1];

  Inner() { is_leaf = false; }
  /// Child index to descend into for `key` (first i with key < keys[i]).
  int ChildIndex(uint64_t key) const;
};

struct Leaf : Node {
  uint64_t keys[kLeafMax];
  Row* vals[kLeafMax];
  std::atomic<Leaf*> next{nullptr};

  Leaf() { is_leaf = true; }
  /// First slot with keys[slot] >= key (== count when all keys are smaller).
  int LowerBound(uint64_t key) const;
};

}  // namespace btree_detail

/// Concurrent B+Tree with optimistic lock coupling.
///
/// - Point reads and range scans are latch-free: they validate node versions
///   and restart on interference.
/// - Writers lock only the nodes they modify; full nodes on the root-to-leaf
///   path are split eagerly while holding the parent lock, so an insert never
///   propagates splits upward after the fact.
/// - Deletion removes the key from its leaf without rebalancing (lazy
///   deletion): under-full leaves remain valid and scans skip them naturally.
///
/// The tree stores `Row*` values and never inspects row contents, so the
/// concurrency-control layer is free to treat rows as versioned records.
class BTree final : public OrderedIndex {
 public:
  BTree();
  ~BTree() override;

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  Status Insert(uint64_t key, Row* row) override;
  Row* Get(uint64_t key) const override;
  Status Remove(uint64_t key) override;
  void ScanFrom(uint64_t start_key, const ScanVisitor& visit) const override;
  void ScanRange(uint64_t start_key, uint64_t end_key,
                 const ScanVisitor& visit) const override;
  uint64_t Size() const override { return size_.load(std::memory_order_relaxed); }

  /// Structural invariant check used by tests: in-node key ordering,
  /// separator bounds, uniform leaf depth, and leaf-chain ordering.
  bool CheckInvariants() const;

  int Height() const;

 private:
  void ScanImpl(uint64_t start_key, uint64_t end_key, bool bounded,
                const ScanVisitor& visit) const;
  void SplitInner(btree_detail::Inner* parent, btree_detail::Inner* node);
  void SplitLeaf(btree_detail::Inner* parent, btree_detail::Leaf* leaf);
  void InsertIntoParentLocked(btree_detail::Inner* parent, uint64_t sep,
                              btree_detail::Node* left, btree_detail::Node* right);
  void FreeRecursive(btree_detail::Node* node);
  bool CheckNode(const btree_detail::Node* node, uint64_t lo, bool has_hi, uint64_t hi,
                 int depth, int leaf_depth) const;

  std::atomic<btree_detail::Node*> root_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace rocc
