#pragma once

#include <atomic>
#include <cstdint>

#include "index/index.h"

namespace rocc {

namespace btree_detail {

constexpr int kInnerMax = 64;  ///< max keys per inner node
constexpr int kLeafMax = 64;   ///< max entries per leaf

/// Node header with an optimistic version latch (Leis et al., "The ART of
/// Practical Synchronization"). Bit 0 is the write-lock bit; versions are
/// even when unlocked and bumped by 2 on every unlock so optimistic readers
/// detect concurrent modification and restart.
struct Node {
  std::atomic<uint64_t> version{0};
  bool is_leaf = false;
  uint16_t count = 0;

  static constexpr uint64_t kLockedBit = 1;

  /// Returns a stable (unlocked) version snapshot, spinning past writers.
  uint64_t StableVersion() const {
    uint64_t v = version.load(std::memory_order_acquire);
    while (v & kLockedBit) {
      v = version.load(std::memory_order_acquire);
    }
    return v;
  }

  bool Validate(uint64_t expected) const {
    return version.load(std::memory_order_acquire) == expected;
  }

  bool TryUpgradeLock(uint64_t expected) {
    return version.compare_exchange_strong(expected, expected | kLockedBit,
                                           std::memory_order_acq_rel);
  }

  void WriteLock() {
    while (true) {
      uint64_t v = StableVersion();
      if (TryUpgradeLock(v)) return;
    }
  }

  /// Clears the lock bit and advances the version counter in one store:
  /// locked version is (v | 1) with v even, so adding 1 yields v + 2.
  void WriteUnlock() { version.fetch_add(1, std::memory_order_release); }
};

struct Inner : Node {
  uint64_t keys[kInnerMax];
  Node* children[kInnerMax + 1];

  Inner() { is_leaf = false; }
  /// Child index to descend into for `key` (first i with key < keys[i]).
  int ChildIndex(uint64_t key) const;
};

struct Leaf : Node {
  uint64_t keys[kLeafMax];
  Row* vals[kLeafMax];
  std::atomic<Leaf*> next{nullptr};

  Leaf() { is_leaf = true; }
  /// First slot with keys[slot] >= key (== count when all keys are smaller).
  int LowerBound(uint64_t key) const;
};

}  // namespace btree_detail

/// Concurrent B+Tree with optimistic lock coupling.
///
/// - Point reads and range scans are latch-free: they validate node versions
///   and restart on interference.
/// - Writers lock only the nodes they modify; full nodes on the root-to-leaf
///   path are split eagerly while holding the parent lock, so an insert never
///   propagates splits upward after the fact.
/// - Deletion removes the key from its leaf without rebalancing (lazy
///   deletion): under-full leaves remain valid and scans skip them naturally.
///
/// The tree stores `Row*` values and never inspects row contents, so the
/// concurrency-control layer is free to treat rows as versioned records.
class BTree final : public OrderedIndex {
 public:
  BTree();
  ~BTree() override;

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  Status Insert(uint64_t key, Row* row) override;
  Row* Get(uint64_t key) const override;
  Status Remove(uint64_t key) override;
  void ScanFrom(uint64_t start_key, const ScanVisitor& visit) const override;
  void ScanRange(uint64_t start_key, uint64_t end_key,
                 const ScanVisitor& visit) const override;
  uint64_t Size() const override { return size_.load(std::memory_order_relaxed); }

  /// Structural invariant check used by tests: in-node key ordering,
  /// separator bounds, uniform leaf depth, and leaf-chain ordering.
  bool CheckInvariants() const;

  int Height() const;

 private:
  void ScanImpl(uint64_t start_key, uint64_t end_key, bool bounded,
                const ScanVisitor& visit) const;
  void SplitInner(btree_detail::Inner* parent, btree_detail::Inner* node);
  void SplitLeaf(btree_detail::Inner* parent, btree_detail::Leaf* leaf);
  void InsertIntoParentLocked(btree_detail::Inner* parent, uint64_t sep,
                              btree_detail::Node* left, btree_detail::Node* right);
  void FreeRecursive(btree_detail::Node* node);
  bool CheckNode(const btree_detail::Node* node, uint64_t lo, bool has_hi, uint64_t hi,
                 int depth, int leaf_depth) const;

  std::atomic<btree_detail::Node*> root_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace rocc
