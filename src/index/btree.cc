#include "index/btree.h"

#include <algorithm>
#include <cassert>

namespace rocc {

using btree_detail::Inner;
using btree_detail::kInnerMax;
using btree_detail::kLeafMax;
using btree_detail::Leaf;
using btree_detail::Node;

int Inner::ChildIndex(uint64_t key) const {
  // First separator strictly greater than key; children[i] covers
  // [keys[i-1], keys[i]).
  const uint64_t* end = keys + count;
  return static_cast<int>(std::upper_bound(keys, end, key) - keys);
}

int Leaf::LowerBound(uint64_t key) const {
  const uint64_t* end = keys + count;
  return static_cast<int>(std::lower_bound(keys, end, key) - keys);
}

BTree::BTree() { root_.store(new Leaf(), std::memory_order_release); }

BTree::~BTree() { FreeRecursive(root_.load(std::memory_order_acquire)); }

void BTree::FreeRecursive(Node* node) {
  if (!node->is_leaf) {
    Inner* inner = static_cast<Inner*>(node);
    for (int i = 0; i <= inner->count; i++) FreeRecursive(inner->children[i]);
    delete inner;
  } else {
    delete static_cast<Leaf*>(node);
  }
}

void BTree::InsertIntoParentLocked(Inner* parent, uint64_t sep, Node* left,
                                   Node* right) {
  if (parent != nullptr) {
    // Eager splitting on the way down guarantees room here.
    assert(parent->count < kInnerMax);
    int pos = parent->ChildIndex(sep);
    for (int i = parent->count; i > pos; i--) {
      parent->keys[i] = parent->keys[i - 1];
      parent->children[i + 1] = parent->children[i];
    }
    parent->keys[pos] = sep;
    parent->children[pos + 1] = right;
    parent->count++;
  } else {
    Inner* new_root = new Inner();
    new_root->keys[0] = sep;
    new_root->children[0] = left;
    new_root->children[1] = right;
    new_root->count = 1;
    root_.store(new_root, std::memory_order_release);
  }
}

void BTree::SplitInner(Inner* parent, Inner* node) {
  // Both `parent` (or the root pointer implicitly) and `node` are
  // write-locked by the caller.
  Inner* right = new Inner();
  const int mid = node->count / 2;
  const uint64_t sep = node->keys[mid];
  right->count = static_cast<uint16_t>(node->count - mid - 1);
  for (int i = 0; i < right->count; i++) right->keys[i] = node->keys[mid + 1 + i];
  for (int i = 0; i <= right->count; i++) right->children[i] = node->children[mid + 1 + i];
  node->count = static_cast<uint16_t>(mid);
  InsertIntoParentLocked(parent, sep, node, right);
}

void BTree::SplitLeaf(Inner* parent, Leaf* leaf) {
  Leaf* right = new Leaf();
  const int mid = leaf->count / 2;
  right->count = static_cast<uint16_t>(leaf->count - mid);
  for (int i = 0; i < right->count; i++) {
    right->keys[i] = leaf->keys[mid + i];
    right->vals[i] = leaf->vals[mid + i];
  }
  leaf->count = static_cast<uint16_t>(mid);
  right->next.store(leaf->next.load(std::memory_order_acquire),
                    std::memory_order_release);
  leaf->next.store(right, std::memory_order_release);
  InsertIntoParentLocked(parent, right->keys[0], leaf, right);
}

Status BTree::Insert(uint64_t key, Row* row) {
  while (true) {
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->StableVersion();
    if (node != root_.load(std::memory_order_acquire)) continue;

    Inner* parent = nullptr;
    uint64_t pv = 0;
    bool restart = false;

    while (!node->is_leaf) {
      Inner* inner = static_cast<Inner*>(node);
      if (inner->count == kInnerMax) {
        // Eagerly split the full inner node while holding the parent lock.
        Node::LatchGuard pg, ig;
        if (parent != nullptr && !parent->TryUpgradeLock(pv, pg)) {
          restart = true;
          break;
        }
        if (!inner->TryUpgradeLock(v, ig)) {
          if (parent != nullptr) parent->WriteUnlock(pg);
          restart = true;
          break;
        }
        if (parent == nullptr &&
            root_.load(std::memory_order_acquire) != inner) {
          inner->WriteUnlock(ig);
          restart = true;
          break;
        }
        SplitInner(parent, inner);
        inner->WriteUnlock(ig);
        if (parent != nullptr) parent->WriteUnlock(pg);
        restart = true;  // retry from the top with the new shape
        break;
      }
      const int idx = inner->ChildIndex(key);
      Node* child = inner->children[idx];
      if (!inner->Validate(v)) { restart = true; break; }
      const uint64_t cv = child->StableVersion();
      if (!inner->Validate(v)) { restart = true; break; }
      parent = inner;
      pv = v;
      node = child;
      v = cv;
    }
    if (restart) continue;

    Leaf* leaf = static_cast<Leaf*>(node);
    if (leaf->count == kLeafMax) {
      Node::LatchGuard pg, lg;
      if (parent != nullptr && !parent->TryUpgradeLock(pv, pg)) continue;
      if (!leaf->TryUpgradeLock(v, lg)) {
        if (parent != nullptr) parent->WriteUnlock(pg);
        continue;
      }
      if (parent == nullptr && root_.load(std::memory_order_acquire) != leaf) {
        leaf->WriteUnlock(lg);
        continue;
      }
      SplitLeaf(parent, leaf);
      leaf->WriteUnlock(lg);
      if (parent != nullptr) parent->WriteUnlock(pg);
      continue;
    }

    Node::LatchGuard lg;
    if (!leaf->TryUpgradeLock(v, lg)) continue;
    const int slot = leaf->LowerBound(key);
    if (slot < leaf->count && leaf->keys[slot] == key) {
      leaf->WriteUnlock(lg);
      return Status::KeyExists();
    }
    for (int i = leaf->count; i > slot; i--) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->vals[i] = leaf->vals[i - 1];
    }
    leaf->keys[slot] = key;
    leaf->vals[slot] = row;
    leaf->count++;
    leaf->WriteUnlock(lg);
    size_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
}

Row* BTree::Get(uint64_t key) const {
  while (true) {
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->StableVersion();
    if (node != root_.load(std::memory_order_acquire)) continue;
    bool restart = false;

    while (!node->is_leaf) {
      Inner* inner = static_cast<Inner*>(node);
      const int idx = inner->ChildIndex(key);
      Node* child = inner->children[idx];
      if (!inner->Validate(v)) { restart = true; break; }
      const uint64_t cv = child->StableVersion();
      if (!inner->Validate(v)) { restart = true; break; }
      node = child;
      v = cv;
    }
    if (restart) continue;

    Leaf* leaf = static_cast<Leaf*>(node);
    const int slot = leaf->LowerBound(key);
    Row* result = (slot < leaf->count && leaf->keys[slot] == key) ? leaf->vals[slot]
                                                                  : nullptr;
    if (!leaf->Validate(v)) continue;
    return result;
  }
}

Status BTree::Remove(uint64_t key) {
  while (true) {
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->StableVersion();
    if (node != root_.load(std::memory_order_acquire)) continue;
    bool restart = false;

    while (!node->is_leaf) {
      Inner* inner = static_cast<Inner*>(node);
      const int idx = inner->ChildIndex(key);
      Node* child = inner->children[idx];
      if (!inner->Validate(v)) { restart = true; break; }
      const uint64_t cv = child->StableVersion();
      if (!inner->Validate(v)) { restart = true; break; }
      node = child;
      v = cv;
    }
    if (restart) continue;

    Leaf* leaf = static_cast<Leaf*>(node);
    Node::LatchGuard lg;
    if (!leaf->TryUpgradeLock(v, lg)) continue;
    const int slot = leaf->LowerBound(key);
    if (slot >= leaf->count || leaf->keys[slot] != key) {
      leaf->WriteUnlock(lg);
      return Status::NotFound();
    }
    for (int i = slot; i + 1 < leaf->count; i++) {
      leaf->keys[i] = leaf->keys[i + 1];
      leaf->vals[i] = leaf->vals[i + 1];
    }
    leaf->count--;
    leaf->WriteUnlock(lg);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return Status::Ok();
  }
}

void BTree::ScanImpl(uint64_t start_key, uint64_t end_key, bool bounded,
                     const ScanVisitor& visit) const {
  uint64_t cursor = start_key;
  // Per-leaf snapshot buffer: entries are copied under version validation and
  // only then delivered, so the visitor never sees a torn leaf.
  uint64_t snap_keys[kLeafMax];
  Row* snap_vals[kLeafMax];

  while (true) {
  descend:
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->StableVersion();
    if (node != root_.load(std::memory_order_acquire)) goto descend;

    while (!node->is_leaf) {
      Inner* inner = static_cast<Inner*>(node);
      const int idx = inner->ChildIndex(cursor);
      Node* child = inner->children[idx];
      if (!inner->Validate(v)) goto descend;
      const uint64_t cv = child->StableVersion();
      if (!inner->Validate(v)) goto descend;
      node = child;
      v = cv;
    }

    Leaf* leaf = static_cast<Leaf*>(node);
    while (true) {
      int n = 0;
      const int start = leaf->LowerBound(cursor);
      for (int i = start; i < leaf->count; i++) {
        if (bounded && leaf->keys[i] >= end_key) break;
        snap_keys[n] = leaf->keys[i];
        snap_vals[n] = leaf->vals[i];
        n++;
      }
      const bool past_end =
          bounded && leaf->count > 0 && start < leaf->count &&
          leaf->keys[leaf->count - 1] >= end_key;
      Leaf* next = leaf->next.load(std::memory_order_acquire);
      if (!leaf->Validate(v)) goto descend;  // re-traverse from `cursor`

      for (int i = 0; i < n; i++) {
        cursor = snap_keys[i] + 1;
        if (!visit(snap_keys[i], snap_vals[i])) return;
      }
      if (past_end || next == nullptr) return;
      // Advance to the chained sibling; empty leaves are skipped by the loop.
      leaf = next;
      v = leaf->StableVersion();
      // `cursor` is already past every delivered key; keys before it in the
      // next leaf (possible after a racing split) are filtered by LowerBound.
    }
  }
}

void BTree::ScanFrom(uint64_t start_key, const ScanVisitor& visit) const {
  ScanImpl(start_key, 0, /*bounded=*/false, visit);
}

void BTree::ScanRange(uint64_t start_key, uint64_t end_key,
                      const ScanVisitor& visit) const {
  if (start_key >= end_key) return;
  ScanImpl(start_key, end_key, /*bounded=*/true, visit);
}

int BTree::Height() const {
  int h = 1;
  const Node* node = root_.load(std::memory_order_acquire);
  while (!node->is_leaf) {
    node = static_cast<const Inner*>(node)->children[0];
    h++;
  }
  return h;
}

bool BTree::CheckNode(const Node* node, uint64_t lo, bool has_hi, uint64_t hi,
                      int depth, int leaf_depth) const {
  if (node->is_leaf) {
    if (depth != leaf_depth) return false;
    const Leaf* leaf = static_cast<const Leaf*>(node);
    for (int i = 0; i < leaf->count; i++) {
      if (i > 0 && leaf->keys[i - 1] >= leaf->keys[i]) return false;
      if (leaf->keys[i] < lo) return false;
      if (has_hi && leaf->keys[i] >= hi) return false;
    }
    return true;
  }
  const Inner* inner = static_cast<const Inner*>(node);
  if (inner->count == 0) return false;
  for (int i = 0; i < inner->count; i++) {
    if (i > 0 && inner->keys[i - 1] >= inner->keys[i]) return false;
    if (inner->keys[i] < lo) return false;
    if (has_hi && inner->keys[i] > hi) return false;
  }
  for (int i = 0; i <= inner->count; i++) {
    const uint64_t child_lo = (i == 0) ? lo : inner->keys[i - 1];
    const bool child_has_hi = (i < inner->count) || has_hi;
    const uint64_t child_hi = (i < inner->count) ? inner->keys[i] : hi;
    if (!CheckNode(inner->children[i], child_lo, child_has_hi, child_hi, depth + 1,
                   leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool BTree::CheckInvariants() const {
  const int leaf_depth = Height();
  const Node* root = root_.load(std::memory_order_acquire);
  if (!CheckNode(root, 0, false, 0, 1, leaf_depth)) return false;

  // Leaf chain must be globally sorted and cover exactly `size_` keys.
  const Node* node = root;
  while (!node->is_leaf) node = static_cast<const Inner*>(node)->children[0];
  const Leaf* leaf = static_cast<const Leaf*>(node);
  uint64_t prev = 0;
  bool first = true;
  uint64_t total = 0;
  while (leaf != nullptr) {
    for (int i = 0; i < leaf->count; i++) {
      if (!first && leaf->keys[i] <= prev) return false;
      prev = leaf->keys[i];
      first = false;
      total++;
    }
    leaf = leaf->next.load(std::memory_order_acquire);
  }
  return total == Size();
}

}  // namespace rocc
