#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "storage/row.h"

namespace rocc {

/// Fixed-capacity concurrent hash index (open addressing, linear probing).
///
/// Used for pure point-access paths where key order is irrelevant. The
/// capacity is fixed at creation (2x the expected row count, rounded up to a
/// power of two) — the paper's workloads preload tables and insert rarely, so
/// a non-resizing table with atomic claim-then-publish slots is both simple
/// and fast. Removal uses tombstones.
class HashIndex {
 public:
  explicit HashIndex(uint64_t expected_entries);
  ~HashIndex();

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  Status Insert(uint64_t key, Row* row);
  Row* Get(uint64_t key) const;
  Status Remove(uint64_t key);
  uint64_t Size() const { return size_.load(std::memory_order_relaxed); }
  uint64_t Capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> key;
    std::atomic<Row*> row;
  };

  static constexpr uint64_t kEmpty = ~0ULL;
  static constexpr uint64_t kTombstone = ~0ULL - 1;

  uint64_t Hash(uint64_t key) const;

  uint64_t capacity_;
  uint64_t mask_;
  Slot* slots_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace rocc
