#pragma once

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "storage/row.h"

namespace rocc {

/// Visitor for range scans. Return false to stop the scan early.
using ScanVisitor = std::function<bool(uint64_t key, Row* row)>;

/// Ordered secondary structure mapping uint64 keys to row pointers.
///
/// All workload access paths (point get, insert, delete, forward range scan)
/// go through this interface, so concurrency-control protocols are agnostic
/// to the concrete index.
class OrderedIndex {
 public:
  virtual ~OrderedIndex() = default;

  /// Insert key -> row. Fails with KeyExists on duplicates.
  virtual Status Insert(uint64_t key, Row* row) = 0;

  /// Exact-match lookup; nullptr when the key is not present.
  virtual Row* Get(uint64_t key) const = 0;

  /// Remove the key. Fails with NotFound if absent.
  virtual Status Remove(uint64_t key) = 0;

  /// Visit entries with key >= start_key in ascending order until the visitor
  /// returns false or the index is exhausted.
  virtual void ScanFrom(uint64_t start_key, const ScanVisitor& visit) const = 0;

  /// Visit entries with start_key <= key < end_key in ascending order.
  virtual void ScanRange(uint64_t start_key, uint64_t end_key,
                         const ScanVisitor& visit) const = 0;

  virtual uint64_t Size() const = 0;
};

}  // namespace rocc
