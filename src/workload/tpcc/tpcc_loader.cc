#include <cstdio>
#include <cstring>

#include "workload/tpcc/tpcc.h"

namespace rocc {

using namespace tpcc;  // NOLINT: schema constants and row types

void TpccWorkload::Load(Database* db) {
  db_ = db;
  tables_.warehouse = db->CreateTable("warehouse", BlobSchema<WarehouseRow>("w"));
  tables_.district = db->CreateTable("district", BlobSchema<DistrictRow>("d"));
  tables_.customer = db->CreateTable("customer", BlobSchema<CustomerRow>("c"));
  tables_.history = db->CreateTable("history", BlobSchema<HistoryRow>("h"));
  tables_.new_order = db->CreateTable("new_order", BlobSchema<NewOrderRow>("no"));
  tables_.order = db->CreateTable("oorder", BlobSchema<OrderRow>("o"));
  tables_.order_line = db->CreateTable("order_line", BlobSchema<OrderLineRow>("ol"));
  tables_.item = db->CreateTable("item", BlobSchema<ItemRow>("i"));
  tables_.stock = db->CreateTable("stock", BlobSchema<StockRow>("s"));

  Rng rng(0x7c07c0ffee);

  // Items.
  for (uint32_t i = 0; i < kItems; i++) {
    ItemRow item{};
    item.i_price = 1.0 + static_cast<double>(rng.Uniform(9999)) / 100.0;
    item.i_im_id = static_cast<uint32_t>(rng.UniformRange(1, 10000));
    std::snprintf(item.i_name, sizeof(item.i_name), "item-%u", i);
    db->LoadRow(tables_.item, ItemKey(i), &item);
  }

  const uint32_t num_wh = options_.num_warehouses;
  const uint32_t init_orders = options_.initial_orders_per_district;

  for (uint32_t w = 0; w < num_wh; w++) {
    WarehouseRow wh{};
    wh.w_tax = static_cast<double>(rng.Uniform(2001)) / 10000.0;
    wh.w_ytd = 300000.0;
    std::snprintf(wh.w_name, sizeof(wh.w_name), "wh-%u", w);
    std::memcpy(wh.w_state, "CA\0", 4);
    std::memcpy(wh.w_zip, "123456789", 10);
    db->LoadRow(tables_.warehouse, WarehouseKey(w), &wh);

    // Stock for every item.
    for (uint32_t i = 0; i < kItems; i++) {
      StockRow st{};
      st.s_quantity = static_cast<uint32_t>(rng.UniformRange(10, 100));
      st.s_ytd = 0;
      st.s_order_cnt = 0;
      st.s_remote_cnt = 0;
      db->LoadRow(tables_.stock, StockKey(w, i), &st);
    }

    for (uint32_t d = 0; d < kDistrictsPerWarehouse; d++) {
      DistrictRow dist{};
      dist.d_tax = static_cast<double>(rng.Uniform(2001)) / 10000.0;
      dist.d_ytd = 30000.0;
      dist.d_next_o_id = init_orders + 1;  // order ids are 1-based
      std::snprintf(dist.d_name, sizeof(dist.d_name), "d-%u-%u", w, d);
      db->LoadRow(tables_.district, DistrictKey(w, d), &dist);

      for (uint32_t c = 0; c < kCustomersPerDistrict; c++) {
        CustomerRow cust{};
        cust.c_balance = -10.0;
        cust.c_ytd_payment = 10.0;
        cust.c_payment_ts = 0;
        cust.c_payment_cnt = 1;
        cust.c_delivery_cnt = 0;
        cust.c_last_o_id = 0;
        cust.c_discount = static_cast<float>(rng.Uniform(5001)) / 10000.0f;
        cust.c_credit_lim = 50000.0;
        std::snprintf(cust.c_last, sizeof(cust.c_last), "CUST%07u", c);
        std::memcpy(cust.c_credit, rng.Uniform(10) == 0 ? "BC\0" : "GC\0", 4);
        db->LoadRow(tables_.customer, CustomerKey(w, d, c), &cust);
      }

      // Initial orders: customers are assigned round-robin; the most recent
      // third is still undelivered (has NewOrder queue entries).
      for (uint32_t o = 1; o <= init_orders; o++) {
        const uint32_t c = (o * 1021u) % kCustomersPerDistrict;  // pseudo-shuffle
        const bool undelivered = o > init_orders - init_orders / 3;
        OrderRow order{};
        order.o_c_id = c;
        order.o_carrier_id =
            undelivered ? 0 : static_cast<uint32_t>(rng.UniformRange(1, 10));
        order.o_ol_cnt = static_cast<uint32_t>(
            rng.UniformRange(kMinOrderLines, kMaxOrderLines));
        order.o_entry_d = o;
        db->LoadRow(tables_.order, OrderKey(w, d, o), &order);

        for (uint32_t ol = 1; ol <= order.o_ol_cnt; ol++) {
          OrderLineRow line{};
          line.ol_i_id = static_cast<uint32_t>(rng.Uniform(kItems));
          line.ol_supply_w_id = w;
          line.ol_quantity = 5;
          line.ol_amount =
              undelivered ? static_cast<double>(rng.Uniform(999999)) / 100.0 : 0.0;
          line.ol_delivery_d = undelivered ? 0 : order.o_entry_d;
          db->LoadRow(tables_.order_line, OrderLineKey(w, d, o, ol), &line);
        }

        if (undelivered) {
          NewOrderRow no{};
          no.no_o_id = o;
          db->LoadRow(tables_.new_order, OrderKey(w, d, o), &no);
        }

        // Track the customer's latest order for OrderStatus.
        Row* crow = db->GetIndex(tables_.customer)->Get(CustomerKey(w, d, c));
        auto* cust = reinterpret_cast<CustomerRow*>(crow->Data());
        cust->c_last_o_id = o;
      }
    }
  }
}

}  // namespace rocc
