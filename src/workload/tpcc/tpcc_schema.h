#pragma once

#include <cstdint>

#include "storage/schema.h"

namespace rocc {
namespace tpcc {

// ---------------------------------------------------------------------------
// Scale constants (TPC-C standard ratios).
// ---------------------------------------------------------------------------
constexpr uint32_t kDistrictsPerWarehouse = 10;
constexpr uint32_t kCustomersPerDistrict = 3000;
constexpr uint32_t kCustomersPerWarehouse =
    kDistrictsPerWarehouse * kCustomersPerDistrict;
constexpr uint32_t kItems = 100000;
constexpr uint32_t kMaxOrderLines = 15;
constexpr uint32_t kMinOrderLines = 5;

// ---------------------------------------------------------------------------
// Row payloads. Fixed-size PODs stored as the single blob column of their
// table; all cross-row references go through the uint64 key encodings below.
// ---------------------------------------------------------------------------

struct WarehouseRow {
  double w_tax;
  double w_ytd;
  char w_name[16];
  char w_state[4];
  char w_zip[12];
};

struct DistrictRow {
  double d_tax;
  double d_ytd;
  uint32_t d_next_o_id;  ///< next available order number
  char d_name[20];
};

struct CustomerRow {
  double c_balance;
  double c_ytd_payment;   ///< cumulative payments (the bulk txn's ranking key)
  uint64_t c_payment_ts;  ///< wall-clock of the latest payment
  uint32_t c_payment_cnt;
  uint32_t c_delivery_cnt;
  uint32_t c_last_o_id;   ///< most recent order (0 = none), for OrderStatus
  float c_discount;
  double c_credit_lim;
  char c_last[16];
  char c_credit[4];
};

struct HistoryRow {
  uint64_t h_c_key;   ///< customer key the payment was applied to
  uint64_t h_date;
  double h_amount;
};

struct NewOrderRow {
  uint32_t no_o_id;  ///< presence of the row is the queue entry
};

struct OrderRow {
  uint32_t o_c_id;
  uint32_t o_carrier_id;  ///< 0 until delivered
  uint32_t o_ol_cnt;
  uint64_t o_entry_d;
};

struct OrderLineRow {
  uint32_t ol_i_id;
  uint32_t ol_supply_w_id;
  uint32_t ol_quantity;
  double ol_amount;
  uint64_t ol_delivery_d;  ///< 0 until delivered
};

struct ItemRow {
  double i_price;
  uint32_t i_im_id;
  char i_name[24];
};

struct StockRow {
  uint32_t s_quantity;
  double s_ytd;
  uint32_t s_order_cnt;
  uint32_t s_remote_cnt;
};

// ---------------------------------------------------------------------------
// Key encodings. All ids are 0-based internally. Customers of one warehouse
// are CONTIGUOUS (districts back to back), which is what lets the bulk
// reward transaction scan a key range of up to 3000 customers and lets ROCC
// partition the customer table into equal logical ranges (paper §V-B).
// ---------------------------------------------------------------------------

inline uint64_t WarehouseKey(uint32_t w) { return w; }

inline uint64_t DistrictKey(uint32_t w, uint32_t d) {
  return static_cast<uint64_t>(w) * kDistrictsPerWarehouse + d;
}

inline uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) {
  return DistrictKey(w, d) * kCustomersPerDistrict + c;
}

/// District id a customer key belongs to.
inline uint64_t DistrictOfCustomerKey(uint64_t c_key) {
  return c_key / kCustomersPerDistrict;
}

/// Orders and new-orders share an encoding: district prefix, order suffix.
inline uint64_t OrderKey(uint32_t w, uint32_t d, uint32_t o_id) {
  return (DistrictKey(w, d) << 24) | o_id;
}

inline uint64_t OrderLineKey(uint32_t w, uint32_t d, uint32_t o_id, uint32_t ol) {
  return (OrderKey(w, d, o_id) << 4) | ol;
}

inline uint64_t ItemKey(uint32_t i) { return i; }

inline uint64_t StockKey(uint32_t w, uint32_t i) {
  return static_cast<uint64_t>(w) * kItems + i;
}

/// Unique history keys: thread id in the high bits, a per-thread sequence
/// below, so concurrent Payment transactions never collide.
inline uint64_t HistoryKey(uint32_t thread_id, uint64_t seq) {
  return (static_cast<uint64_t>(thread_id) << 40) | seq;
}

/// Single-blob schema for a POD row type.
template <typename RowT>
Schema BlobSchema(const char* column_name) {
  return Schema({{column_name, static_cast<uint32_t>(sizeof(RowT)), 0}});
}

/// Table ids in creation order; filled in by TpccWorkload::Load.
struct TableIds {
  uint32_t warehouse = 0;
  uint32_t district = 0;
  uint32_t customer = 0;
  uint32_t history = 0;
  uint32_t new_order = 0;
  uint32_t order = 0;
  uint32_t order_line = 0;
  uint32_t item = 0;
  uint32_t stock = 0;
};

}  // namespace tpcc
}  // namespace rocc
