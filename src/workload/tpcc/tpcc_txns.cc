#include <algorithm>
#include <cstring>
#include <vector>

#include "common/timer.h"
#include "workload/tpcc/tpcc.h"

namespace rocc {

using namespace tpcc;  // NOLINT: schema constants and row types

namespace {

/// Abort the attempt on any non-OK operation status.
#define TPCC_TRY(expr)                \
  do {                                \
    Status _s = (expr);               \
    if (!_s.ok()) {                   \
      cc->Abort(t);                   \
      return Status::Aborted();       \
    }                                 \
  } while (0)

/// Collects up to `max` (key, row) pairs from a scan.
template <typename RowT>
class CollectConsumer : public ScanConsumer {
 public:
  struct Item {
    uint64_t key;
    RowT row;
  };

  explicit CollectConsumer(size_t max = 0) : max_(max) {}

  bool OnRecord(uint64_t key, const char* payload) override {
    Item item;
    item.key = key;
    std::memcpy(&item.row, payload, sizeof(RowT));
    items_.push_back(item);
    return max_ == 0 || items_.size() < max_;
  }

  const std::vector<Item>& items() const { return items_; }

 private:
  size_t max_;
  std::vector<Item> items_;
};

/// Finds the customer with the highest cumulative payment whose latest
/// payment is at or after `since` — the paper's top-shopper query.
class TopShopperConsumer : public ScanConsumer {
 public:
  explicit TopShopperConsumer(uint64_t since) : since_(since) {}

  bool OnRecord(uint64_t key, const char* payload) override {
    CustomerRow c;
    std::memcpy(&c, payload, sizeof(c));
    scanned_++;
    if (c.c_payment_ts >= since_ && c.c_ytd_payment > best_payment_) {
      best_payment_ = c.c_ytd_payment;
      best_key_ = key;
      found_ = true;
    }
    return true;
  }

  bool found() const { return found_; }
  uint64_t best_key() const { return best_key_; }
  uint64_t scanned() const { return scanned_; }

 private:
  uint64_t since_;
  bool found_ = false;
  uint64_t best_key_ = 0;
  double best_payment_ = -1.0;
  uint64_t scanned_ = 0;
};

}  // namespace

Status TpccWorkload::DoNewOrder(ConcurrencyControl* cc, uint32_t thread_id,
                                Rng& rng) {
  const uint32_t num_wh = options_.num_warehouses;
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(num_wh));
  const uint32_t d = static_cast<uint32_t>(rng.Uniform(kDistrictsPerWarehouse));
  const uint32_t c = static_cast<uint32_t>(rng.Uniform(kCustomersPerDistrict));
  const uint32_t ol_cnt =
      static_cast<uint32_t>(rng.UniformRange(kMinOrderLines, kMaxOrderLines));

  TxnDescriptor* t = cc->Begin(thread_id);

  WarehouseRow wh;
  TPCC_TRY(cc->Read(t, tables_.warehouse, WarehouseKey(w), &wh));

  DistrictRow dist;
  TPCC_TRY(cc->Read(t, tables_.district, DistrictKey(w, d), &dist));
  const uint32_t o_id = dist.d_next_o_id;
  dist.d_next_o_id = o_id + 1;
  TPCC_TRY(cc->Update(t, tables_.district, DistrictKey(w, d), &dist, sizeof(dist), 0));

  CustomerRow cust;
  TPCC_TRY(cc->Read(t, tables_.customer, CustomerKey(w, d, c), &cust));

  OrderRow order{};
  order.o_c_id = c;
  order.o_carrier_id = 0;
  order.o_ol_cnt = ol_cnt;
  order.o_entry_d = NowNanos();
  TPCC_TRY(cc->Insert(t, tables_.order, OrderKey(w, d, o_id), &order));

  NewOrderRow no{};
  no.no_o_id = o_id;
  TPCC_TRY(cc->Insert(t, tables_.new_order, OrderKey(w, d, o_id), &no));

  for (uint32_t ol = 1; ol <= ol_cnt; ol++) {
    const uint32_t item_id = static_cast<uint32_t>(rng.Uniform(kItems));
    uint32_t supply_w = w;
    if (num_wh > 1 && rng.Uniform(100) < options_.new_order_remote_pct) {
      supply_w = static_cast<uint32_t>(rng.Uniform(num_wh - 1));
      if (supply_w >= w) supply_w++;
    }
    const uint32_t qty = static_cast<uint32_t>(rng.UniformRange(1, 10));

    ItemRow item;
    TPCC_TRY(cc->Read(t, tables_.item, ItemKey(item_id), &item));

    StockRow stock;
    TPCC_TRY(cc->Read(t, tables_.stock, StockKey(supply_w, item_id), &stock));
    stock.s_quantity = stock.s_quantity >= qty + 10 ? stock.s_quantity - qty
                                                    : stock.s_quantity + 91 - qty;
    stock.s_ytd += qty;
    stock.s_order_cnt++;
    if (supply_w != w) stock.s_remote_cnt++;
    TPCC_TRY(cc->Update(t, tables_.stock, StockKey(supply_w, item_id), &stock,
                        sizeof(stock), 0));

    OrderLineRow line{};
    line.ol_i_id = item_id;
    line.ol_supply_w_id = supply_w;
    line.ol_quantity = qty;
    line.ol_amount = qty * item.i_price * (1.0 + wh.w_tax + dist.d_tax) *
                     (1.0 - cust.c_discount);
    line.ol_delivery_d = 0;
    TPCC_TRY(cc->Insert(t, tables_.order_line, OrderLineKey(w, d, o_id, ol), &line));
  }

  cust.c_last_o_id = o_id;
  TPCC_TRY(cc->Update(t, tables_.customer, CustomerKey(w, d, c), &cust,
                      sizeof(cust), 0));

  return cc->Commit(t);
}

Status TpccWorkload::DoPayment(ConcurrencyControl* cc, uint32_t thread_id,
                               Rng& rng) {
  const uint32_t num_wh = options_.num_warehouses;
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(num_wh));
  const uint32_t d = static_cast<uint32_t>(rng.Uniform(kDistrictsPerWarehouse));
  uint32_t c_w = w;
  uint32_t c_d = d;
  if (num_wh > 1 && rng.Uniform(100) < options_.payment_remote_pct) {
    c_w = static_cast<uint32_t>(rng.Uniform(num_wh - 1));
    if (c_w >= w) c_w++;
    c_d = static_cast<uint32_t>(rng.Uniform(kDistrictsPerWarehouse));
  }
  const uint32_t c = static_cast<uint32_t>(rng.Uniform(kCustomersPerDistrict));
  const double amount = 1.0 + static_cast<double>(rng.Uniform(499900)) / 100.0;

  TxnDescriptor* t = cc->Begin(thread_id);

  WarehouseRow wh;
  TPCC_TRY(cc->Read(t, tables_.warehouse, WarehouseKey(w), &wh));
  wh.w_ytd += amount;
  TPCC_TRY(cc->Update(t, tables_.warehouse, WarehouseKey(w), &wh, sizeof(wh), 0));

  DistrictRow dist;
  TPCC_TRY(cc->Read(t, tables_.district, DistrictKey(w, d), &dist));
  dist.d_ytd += amount;
  TPCC_TRY(cc->Update(t, tables_.district, DistrictKey(w, d), &dist, sizeof(dist), 0));

  const uint64_t c_key = CustomerKey(c_w, c_d, c);
  CustomerRow cust;
  TPCC_TRY(cc->Read(t, tables_.customer, c_key, &cust));
  cust.c_balance -= amount;
  cust.c_ytd_payment += amount;
  cust.c_payment_cnt++;
  cust.c_payment_ts = NowNanos();
  TPCC_TRY(cc->Update(t, tables_.customer, c_key, &cust, sizeof(cust), 0));

  HistoryRow hist{};
  hist.h_c_key = c_key;
  hist.h_date = cust.c_payment_ts;
  hist.h_amount = amount;
  const uint64_t h_seq =
      history_seq_[thread_id]->fetch_add(1, std::memory_order_relaxed);
  TPCC_TRY(cc->Insert(t, tables_.history, HistoryKey(thread_id, h_seq), &hist));

  return cc->Commit(t);
}

Status TpccWorkload::DoOrderStatus(ConcurrencyControl* cc, uint32_t thread_id,
                                   Rng& rng) {
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(options_.num_warehouses));
  const uint32_t d = static_cast<uint32_t>(rng.Uniform(kDistrictsPerWarehouse));
  const uint32_t c = static_cast<uint32_t>(rng.Uniform(kCustomersPerDistrict));

  TxnDescriptor* t = cc->Begin(thread_id);

  CustomerRow cust;
  TPCC_TRY(cc->Read(t, tables_.customer, CustomerKey(w, d, c), &cust));
  if (cust.c_last_o_id == 0) return cc->Commit(t);  // never ordered

  OrderRow order;
  Status st = cc->Read(t, tables_.order, OrderKey(w, d, cust.c_last_o_id), &order);
  if (st.not_found()) return cc->Commit(t);  // raced with nothing: tolerate
  if (!st.ok()) {
    cc->Abort(t);
    return Status::Aborted();
  }

  CollectConsumer<OrderLineRow> lines(kMaxOrderLines);
  TPCC_TRY(cc->Scan(t, tables_.order_line, OrderLineKey(w, d, cust.c_last_o_id, 0),
                    OrderLineKey(w, d, cust.c_last_o_id + 1, 0), 0, &lines));
  return cc->Commit(t);
}

Status TpccWorkload::DoDelivery(ConcurrencyControl* cc, uint32_t thread_id,
                                Rng& rng) {
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(options_.num_warehouses));
  const uint32_t carrier = static_cast<uint32_t>(rng.UniformRange(1, 10));

  TxnDescriptor* t = cc->Begin(thread_id);

  for (uint32_t d = 0; d < kDistrictsPerWarehouse; d++) {
    // Oldest undelivered order = smallest new_order key in the district.
    CollectConsumer<NewOrderRow> oldest(1);
    TPCC_TRY(cc->Scan(t, tables_.new_order, OrderKey(w, d, 0),
                      (DistrictKey(w, d) + 1) << 24, 1, &oldest));
    if (oldest.items().empty()) continue;
    const uint32_t o_id = oldest.items()[0].row.no_o_id;

    TPCC_TRY(cc->Remove(t, tables_.new_order, OrderKey(w, d, o_id)));

    OrderRow order;
    TPCC_TRY(cc->Read(t, tables_.order, OrderKey(w, d, o_id), &order));
    order.o_carrier_id = carrier;
    TPCC_TRY(cc->Update(t, tables_.order, OrderKey(w, d, o_id), &order,
                        sizeof(order), 0));

    CollectConsumer<OrderLineRow> lines(kMaxOrderLines);
    TPCC_TRY(cc->Scan(t, tables_.order_line, OrderLineKey(w, d, o_id, 0),
                      OrderLineKey(w, d, o_id + 1, 0), 0, &lines));
    double total = 0;
    const uint64_t now = NowNanos();
    for (const auto& item : lines.items()) {
      OrderLineRow line = item.row;
      total += line.ol_amount;
      line.ol_delivery_d = now;
      TPCC_TRY(cc->Update(t, tables_.order_line, item.key, &line, sizeof(line), 0));
    }

    const uint64_t c_key = CustomerKey(w, d, order.o_c_id);
    CustomerRow cust;
    TPCC_TRY(cc->Read(t, tables_.customer, c_key, &cust));
    cust.c_balance += total;
    cust.c_delivery_cnt++;
    TPCC_TRY(cc->Update(t, tables_.customer, c_key, &cust, sizeof(cust), 0));
  }

  return cc->Commit(t);
}

Status TpccWorkload::DoStockLevel(ConcurrencyControl* cc, uint32_t thread_id,
                                  Rng& rng) {
  const uint32_t w = static_cast<uint32_t>(rng.Uniform(options_.num_warehouses));
  const uint32_t d = static_cast<uint32_t>(rng.Uniform(kDistrictsPerWarehouse));
  const uint32_t threshold = static_cast<uint32_t>(rng.UniformRange(10, 20));

  TxnDescriptor* t = cc->Begin(thread_id);

  DistrictRow dist;
  TPCC_TRY(cc->Read(t, tables_.district, DistrictKey(w, d), &dist));
  const uint32_t next = dist.d_next_o_id;
  const uint32_t lo = next > 20 ? next - 20 : 1;

  CollectConsumer<OrderLineRow> lines(20 * kMaxOrderLines);
  TPCC_TRY(cc->Scan(t, tables_.order_line, OrderLineKey(w, d, lo, 0),
                    OrderLineKey(w, d, next, 0), 0, &lines));

  std::vector<uint32_t> item_ids;
  item_ids.reserve(lines.items().size());
  for (const auto& item : lines.items()) item_ids.push_back(item.row.ol_i_id);
  std::sort(item_ids.begin(), item_ids.end());
  item_ids.erase(std::unique(item_ids.begin(), item_ids.end()), item_ids.end());

  uint32_t low_stock = 0;
  for (uint32_t item_id : item_ids) {
    StockRow stock;
    TPCC_TRY(cc->Read(t, tables_.stock, StockKey(w, item_id), &stock));
    if (stock.s_quantity < threshold) low_stock++;
  }
  (void)low_stock;
  return cc->Commit(t);
}

Status TpccWorkload::DoBulkTopShopper(ConcurrencyControl* cc,
                                      uint32_t thread_id, Rng& rng) {
  const uint32_t num_wh = options_.num_warehouses;
  const uint32_t w = thread_id % num_wh;
  const uint32_t scan_len =
      std::min<uint32_t>(options_.bulk_scan_length, kCustomersPerWarehouse);
  const uint64_t base = CustomerKey(w, 0, 0);
  const uint64_t offset = rng.Uniform(kCustomersPerWarehouse - scan_len + 1);
  const uint64_t start = base + offset;

  // The whole query — customer scan, winner read, district and warehouse
  // detail reads — executes at the snapshot frozen by the first read, so the
  // report is a single consistent cut and the commit is trivial.
  TxnDescriptor* t = cc->BeginReadOnly(thread_id);
  t->is_scan_txn = true;

  TopShopperConsumer top(/*since=*/0);
  TPCC_TRY(cc->Scan(t, tables_.customer, start, 0, scan_len, &top));
  if (!top.found()) return cc->Commit(t);

  const uint64_t winner = top.best_key();
  CustomerRow cust;
  TPCC_TRY(cc->Read(t, tables_.customer, winner, &cust));

  const uint64_t d_key = DistrictOfCustomerKey(winner);
  DistrictRow dist;
  TPCC_TRY(cc->Read(t, tables_.district, d_key, &dist));

  WarehouseRow wh;
  TPCC_TRY(cc->Read(t, tables_.warehouse, WarehouseKey(w), &wh));

  return cc->Commit(t);
}

Status TpccWorkload::DoBulkReward(ConcurrencyControl* cc, uint32_t thread_id,
                                  Rng& rng) {
  if (options_.snapshot_bulk) return DoBulkTopShopper(cc, thread_id, rng);
  const uint32_t num_wh = options_.num_warehouses;
  // Bulk transactions scan only the thread's local warehouse (§V-B).
  const uint32_t w = thread_id % num_wh;
  const uint32_t scan_len =
      std::min<uint32_t>(options_.bulk_scan_length, kCustomersPerWarehouse);
  const uint64_t base = CustomerKey(w, 0, 0);
  const uint64_t offset = rng.Uniform(kCustomersPerWarehouse - scan_len + 1);
  const uint64_t start = base + offset;

  TxnDescriptor* t = cc->Begin(thread_id);
  t->is_scan_txn = true;

  TopShopperConsumer top(/*since=*/0);
  TPCC_TRY(cc->Scan(t, tables_.customer, start, 0, scan_len, &top));
  if (!top.found()) return cc->Commit(t);

  // Reward the winner; debit district and warehouse YTD so the
  // w_ytd == sum(d_ytd) invariant is preserved.
  const uint64_t winner = top.best_key();
  CustomerRow cust;
  TPCC_TRY(cc->Read(t, tables_.customer, winner, &cust));
  cust.c_balance += options_.bulk_reward;
  TPCC_TRY(cc->Update(t, tables_.customer, winner, &cust, sizeof(cust), 0));

  const uint64_t d_key = DistrictOfCustomerKey(winner);
  DistrictRow dist;
  TPCC_TRY(cc->Read(t, tables_.district, d_key, &dist));
  dist.d_ytd -= options_.bulk_reward;
  TPCC_TRY(cc->Update(t, tables_.district, d_key, &dist, sizeof(dist), 0));

  WarehouseRow wh;
  TPCC_TRY(cc->Read(t, tables_.warehouse, WarehouseKey(w), &wh));
  wh.w_ytd -= options_.bulk_reward;
  TPCC_TRY(cc->Update(t, tables_.warehouse, WarehouseKey(w), &wh, sizeof(wh), 0));

  return cc->Commit(t);
}

}  // namespace rocc
