#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/cacheline.h"
#include "workload/tpcc/tpcc_schema.h"
#include "workload/workload.h"

namespace rocc {

/// Parameters for the modified TPC-C of §V-B.
struct TpccOptions {
  uint32_t num_warehouses = 4;
  uint32_t initial_orders_per_district = 100;

  /// Transaction mix in percent; the paper's hybrid mix is
  /// 40 Payment / 40 NewOrder / 10 bulk / 4 OrderStatus / 4 Delivery /
  /// 2 StockLevel.
  uint32_t pct_payment = 40;
  uint32_t pct_new_order = 40;
  uint32_t pct_bulk = 10;
  uint32_t pct_order_status = 4;
  uint32_t pct_delivery = 4;
  // remainder: StockLevel

  /// Customers covered by the bulk reward scan (100..3000 in Fig. 6).
  uint32_t bulk_scan_length = 3000;
  double bulk_reward = 100.0;
  /// Run the bulk transaction as a read-only top-shopper QUERY instead of the
  /// reward update: the customer scan plus the winner/district/warehouse
  /// point reads all execute at one frozen snapshot (BeginReadOnly), so the
  /// bulk transaction never validate-aborts against Payment/NewOrder writers.
  /// No rows change, so the YTD invariant is trivially preserved. Requires
  /// MVCC for the snapshot path; without it the reads take the OCC path.
  bool snapshot_bulk = false;

  /// Probability (percent) that Payment pays through a remote warehouse —
  /// these are the cross-warehouse conflicts with local bulk scans (§V-B).
  uint32_t payment_remote_pct = 15;
  /// Probability (percent) that a NewOrder line is supplied remotely.
  uint32_t new_order_remote_pct = 1;

  /// Customer-table logical-range size for ROCC (paper: 600 customers).
  uint32_t customers_per_range = 600;
  uint32_t max_retries = 1000;
};

/// Modified TPC-C: the five standard transactions plus the paper's bulk
/// "top-shopper reward" transaction, which scans a customer key range in the
/// local warehouse for the customer with the highest cumulative payment and
/// credits a reward to that customer, debiting the district and warehouse
/// year-to-date totals.
///
/// Invariant maintained for testing: for every warehouse,
///   w_ytd == sum of its districts' d_ytd
/// (Payment adds the amount to both; the bulk reward subtracts from both).
class TpccWorkload : public Workload {
 public:
  explicit TpccWorkload(TpccOptions options);

  const char* name() const override { return "TPCC-hybrid"; }
  void Load(Database* db) override;
  Status RunTxn(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng) override;
  std::vector<RangeConfig> RangeConfigs(uint32_t ranges_hint,
                                        uint32_t ring_capacity) const override;

  const tpcc::TableIds& tables() const { return tables_; }
  const TpccOptions& options() const { return options_; }
  Database* db() const { return db_; }

  // Individual transactions, exposed for targeted tests. Each runs one
  // attempt: Begin .. Commit/Abort.
  Status DoNewOrder(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng);
  Status DoPayment(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng);
  Status DoOrderStatus(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng);
  Status DoDelivery(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng);
  Status DoStockLevel(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng);
  Status DoBulkReward(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng);

  /// Verify w_ytd == sum(d_ytd) for every warehouse (quiescent state only).
  bool CheckYtdInvariant() const;
  /// Verify d_next_o_id is consistent with the order table (quiescent only).
  bool CheckOrderInvariant() const;

 private:
  /// Read-only variant of the bulk transaction (see TpccOptions::snapshot_bulk):
  /// top-shopper scan + winner detail point reads at one frozen snapshot.
  Status DoBulkTopShopper(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng);

  TpccOptions options_;
  tpcc::TableIds tables_;
  Database* db_ = nullptr;
  std::vector<CachePadded<std::atomic<uint64_t>>> history_seq_;
};

}  // namespace rocc
