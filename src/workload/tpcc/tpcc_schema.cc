#include "workload/tpcc/tpcc_schema.h"

// Schema definitions are header-only; this translation unit anchors them in
// the library build.
