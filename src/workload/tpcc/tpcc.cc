#include "workload/tpcc/tpcc.h"

#include <cstring>

#include "txn/epoch.h"

namespace rocc {

using namespace tpcc;  // NOLINT: schema constants and row types

TpccWorkload::TpccWorkload(TpccOptions options)
    : options_(options), history_seq_(EpochManager::kMaxThreads) {}

std::vector<RangeConfig> TpccWorkload::RangeConfigs(uint32_t ranges_hint,
                                                    uint32_t ring_capacity) const {
  std::vector<RangeConfig> configs;
  const uint32_t num_wh = options_.num_warehouses;
  const uint64_t num_customers =
      static_cast<uint64_t>(num_wh) * kCustomersPerWarehouse;

  // Customer table: the bulk transaction's scan target. The paper partitions
  // it into ranges of 600 customers (2000 ranges at 40 warehouses).
  RangeConfig customer;
  customer.table_id = tables_.customer;
  customer.key_min = 0;
  customer.key_max = num_customers;
  if (ranges_hint != 0) {
    customer.num_ranges = ranges_hint;
  } else {
    customer.num_ranges = static_cast<uint32_t>(
        num_customers / std::max<uint32_t>(options_.customers_per_range, 1));
    if (customer.num_ranges == 0) customer.num_ranges = 1;
  }
  customer.ring_capacity = ring_capacity;
  configs.push_back(customer);

  // New-order queue: Delivery scans one district prefix for the oldest
  // entry; one logical range per district keeps those scans local.
  RangeConfig new_order;
  new_order.table_id = tables_.new_order;
  new_order.key_min = 0;
  new_order.key_max = static_cast<uint64_t>(num_wh) * kDistrictsPerWarehouse << 24;
  new_order.num_ranges = num_wh * kDistrictsPerWarehouse;
  new_order.ring_capacity = ring_capacity;
  configs.push_back(new_order);

  // Order lines: OrderStatus/Delivery/StockLevel scan short per-order or
  // per-district windows; a few ranges per district bound the validation.
  RangeConfig order_line;
  order_line.table_id = tables_.order_line;
  order_line.key_min = 0;
  order_line.key_max = (static_cast<uint64_t>(num_wh) * kDistrictsPerWarehouse)
                       << 28;
  order_line.num_ranges = num_wh * kDistrictsPerWarehouse * 4;
  order_line.ring_capacity = ring_capacity;
  configs.push_back(order_line);

  return configs;
}

Status TpccWorkload::RunTxn(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng) {
  const uint32_t pick = static_cast<uint32_t>(rng.Uniform(100));
  // Replay identical random choices across retries of the same transaction.
  const uint64_t plan_seed = rng.Next();

  uint32_t edge = options_.pct_payment;
  auto run = [&](bool is_scan_txn, auto&& fn) {
    return RunWithRetries(
        cc, thread_id, is_scan_txn,
        [&] {
          Rng attempt_rng(plan_seed);
          return fn(attempt_rng);
        },
        rng, options_.max_retries);
  };

  if (pick < edge) {
    return run(false, [&](Rng& r) { return DoPayment(cc, thread_id, r); });
  }
  edge += options_.pct_new_order;
  if (pick < edge) {
    return run(false, [&](Rng& r) { return DoNewOrder(cc, thread_id, r); });
  }
  edge += options_.pct_bulk;
  if (pick < edge) {
    // The bulk reward sweep is the long-scan transaction that starves under
    // point-write contention: it gets the short escalation ladder.
    return run(true, [&](Rng& r) { return DoBulkReward(cc, thread_id, r); });
  }
  edge += options_.pct_order_status;
  if (pick < edge) {
    return run(false, [&](Rng& r) { return DoOrderStatus(cc, thread_id, r); });
  }
  edge += options_.pct_delivery;
  if (pick < edge) {
    return run(false, [&](Rng& r) { return DoDelivery(cc, thread_id, r); });
  }
  return run(false, [&](Rng& r) { return DoStockLevel(cc, thread_id, r); });
}

bool TpccWorkload::CheckYtdInvariant() const {
  for (uint32_t w = 0; w < options_.num_warehouses; w++) {
    Row* wrow = db_->GetIndex(tables_.warehouse)->Get(WarehouseKey(w));
    if (wrow == nullptr) return false;
    const auto* wh = reinterpret_cast<const WarehouseRow*>(wrow->Data());
    double district_sum = 0;
    for (uint32_t d = 0; d < kDistrictsPerWarehouse; d++) {
      Row* drow = db_->GetIndex(tables_.district)->Get(DistrictKey(w, d));
      if (drow == nullptr) return false;
      district_sum += reinterpret_cast<const DistrictRow*>(drow->Data())->d_ytd;
    }
    // Doubles accumulate rounding; tolerate a relative epsilon.
    const double diff = wh->w_ytd - district_sum;
    if (diff > 1e-3 || diff < -1e-3) return false;
  }
  return true;
}

bool TpccWorkload::CheckOrderInvariant() const {
  for (uint32_t w = 0; w < options_.num_warehouses; w++) {
    for (uint32_t d = 0; d < kDistrictsPerWarehouse; d++) {
      Row* drow = db_->GetIndex(tables_.district)->Get(DistrictKey(w, d));
      if (drow == nullptr) return false;
      const uint32_t next =
          reinterpret_cast<const DistrictRow*>(drow->Data())->d_next_o_id;
      // Every order id below next exists exactly once; none at or above it.
      if (db_->GetIndex(tables_.order)->Get(OrderKey(w, d, next)) != nullptr) {
        return false;
      }
      if (next > 1 &&
          db_->GetIndex(tables_.order)->Get(OrderKey(w, d, next - 1)) == nullptr) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rocc
