#include "workload/ycsb.h"

#include <algorithm>
#include <cstring>

#include "txn/epoch.h"

namespace rocc {

namespace {

/// Scan consumer that folds the first 8 payload bytes of every record — the
/// "aggregate over a key range" shape of the paper's bulk transactions.
class SumConsumer : public ScanConsumer {
 public:
  bool OnRecord(uint64_t key, const char* payload) override {
    (void)key;
    uint64_t v;
    std::memcpy(&v, payload, sizeof(v));
    sum_ += v;
    count_++;
    return true;
  }
  uint64_t sum() const { return sum_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t sum_ = 0;
  uint64_t count_ = 0;
};

}  // namespace

YcsbWorkload::YcsbWorkload(YcsbOptions options)
    : options_(options),
      zipf_(options.num_rows, options.theta),
      scan_zipf_(options.num_rows,
                 options.scan_theta < 0 ? options.theta : options.scan_theta),
      thread_bufs_(EpochManager::kMaxThreads) {}

uint32_t YcsbWorkload::DefaultNumRanges() const {
  if (options_.num_ranges != 0) return options_.num_ranges;
  // Paper: 10M keys / 16384 ranges ~= 610 keys per range.
  const uint64_t target_range_size = 610;
  uint64_t n = options_.num_rows / target_range_size;
  n = std::clamp<uint64_t>(n, 1, 1u << 20);
  return static_cast<uint32_t>(n);
}

void YcsbWorkload::Load(Database* db) {
  Schema schema({{"field", options_.payload_size, 0}});
  table_id_ = db->CreateTable("usertable", std::move(schema));
  std::vector<char> payload(options_.payload_size, 0);
  for (uint64_t key = 0; key < options_.num_rows; key++) {
    std::memcpy(payload.data(), &key, sizeof(key));
    db->LoadRow(table_id_, key, payload.data());
  }
}

std::vector<RangeConfig> YcsbWorkload::RangeConfigs(uint32_t ranges_hint,
                                                    uint32_t ring_capacity) const {
  RangeConfig rc;
  rc.table_id = table_id_;
  rc.key_min = 0;
  rc.key_max = options_.num_rows;
  rc.num_ranges = ranges_hint == 0 ? DefaultNumRanges() : ranges_hint;
  rc.ring_capacity = ring_capacity;
  return {rc};
}

YcsbWorkload::Plan YcsbWorkload::GeneratePlan(Rng& rng) const {
  Plan plan;
  plan.is_scan = rng.NextDouble() < options_.scan_txn_fraction;
  const bool scan_reads_only =
      options_.read_only_scans || options_.snapshot_scans;
  // Read-only bulk transactions drop their updates but may carry point READS
  // alongside the scan (the analytics shape: range aggregate + hot lookups).
  const uint32_t n_ops =
      plan.is_scan ? (scan_reads_only ? options_.scan_txn_point_reads
                                      : options_.scan_txn_updates)
                   : options_.ops_per_txn;
  plan.num_ops = std::min<uint32_t>(n_ops, 16);
  for (uint32_t i = 0; i < plan.num_ops; i++) {
    plan.ops[i].is_write =
        plan.is_scan ? !scan_reads_only
                     : rng.NextDouble() >= options_.read_fraction;
    plan.ops[i].key = zipf_.Next(rng);
  }
  if (plan.is_scan) {
    plan.scan_start = ClampScanStart(scan_zipf_.Next(rng));
  }
  return plan;
}

Status YcsbWorkload::TryOnce(ConcurrencyControl* cc, uint32_t thread_id,
                             const Plan& plan, std::vector<char>& buf, Rng& rng) {
  // EVERY read-only transaction — pure scan, scan + point reads, or an
  // all-read simple transaction — declares itself up front so its reads are
  // served at one frozen snapshot and its commit skips validation. (An
  // earlier version only marked the descriptor when the plan had zero ops,
  // which sent mixed point-read/scan analytics transactions through the
  // validating path where hot Zipfian writers abort them.)
  bool read_only = true;
  for (uint32_t i = 0; i < plan.num_ops; i++) {
    if (plan.ops[i].is_write) {
      read_only = false;
      break;
    }
  }
  const bool want_snapshot = options_.snapshot_scans && read_only;
  TxnDescriptor* t =
      want_snapshot ? cc->BeginReadOnly(thread_id) : cc->Begin(thread_id);
  t->is_scan_txn = plan.is_scan;

  for (uint32_t i = 0; i < plan.num_ops; i++) {
    Status st;
    if (plan.ops[i].is_write) {
      const uint64_t value = rng.Next();
      st = cc->Update(t, table_id_, plan.ops[i].key, &value, sizeof(value), 0);
    } else {
      st = cc->Read(t, table_id_, plan.ops[i].key, buf.data());
    }
    if (!st.ok()) {
      cc->Abort(t);
      return Status::Aborted();
    }
  }

  if (plan.is_scan) {
    SumConsumer consumer;
    Status st;
    if (t->snapshot_reads) {
      // Bulk read at the transaction's frozen snapshot — shared with any
      // point reads above. Calling SnapshotScan directly also covers
      // protocols that do not route inside Scan (Rocc does).
      st = cc->SnapshotScan(t, table_id_, plan.scan_start, /*end_key=*/0,
                            options_.scan_length, &consumer);
    } else {
      st = cc->Scan(t, table_id_, plan.scan_start, /*end_key=*/0,
                    options_.scan_length, &consumer);
    }
    if (!st.ok()) {
      cc->Abort(t);
      return Status::Aborted();
    }
  }
  return cc->Commit(t);
}

Status YcsbWorkload::RunTxn(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng) {
  std::vector<char>& buf = thread_bufs_[thread_id];
  if (buf.size() < options_.payload_size) buf.resize(options_.payload_size);
  const Plan plan = GeneratePlan(rng);
  return RunWithRetries(
      cc, thread_id, plan.is_scan,
      [&] { return TryOnce(cc, thread_id, plan, buf, rng); }, rng,
      options_.max_retries);
}

}  // namespace rocc
