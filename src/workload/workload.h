#pragma once

#include <cstdint>
#include <vector>

#include "cc/cc.h"
#include "common/fiber.h"
#include "common/rng.h"
#include "core/rocc.h"
#include "harness/contention.h"
#include "storage/database.h"

namespace rocc {

/// A benchmark workload: owns table schemas, initial data, and transaction
/// logic. Implementations are thread-safe after Load: RunTxn may be called
/// concurrently from worker threads with distinct thread ids.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;

  /// Create tables and bulk-load initial data. Called once, single-threaded.
  virtual void Load(Database* db) = 0;

  /// Execute one logical transaction, retrying internally on aborts (every
  /// attempt is counted by the protocol's TxnStats). Returns the final
  /// status — Aborted only when the retry budget was exhausted.
  virtual Status RunTxn(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng) = 0;

  /// Logical-range layout for ROCC/MVRCC on this workload's tables.
  /// `ranges_hint` scales the partition count of the primary scanned table;
  /// 0 picks the workload's default.
  virtual std::vector<RangeConfig> RangeConfigs(uint32_t ranges_hint,
                                                uint32_t ring_capacity) const = 0;
};

/// Shared retry loop for one logical transaction.
///
/// `attempt_fn` runs one attempt and returns its commit status; aborted
/// attempts are retried up to `max_retries` times (max_retries + 1 attempts
/// total). The loop drives the protocol's ContentionManager:
///
///  - every attempt passes the admission gate (Admit), so a transaction in a
///    protected starvation-escape retry quiesces the rest of the system;
///  - each abort is reported with its structured reason
///    (ConcurrencyControl::LastAbortReason), which selects the backoff
///    ladder — or escalates to a protected retry after enough consecutive
///    failures;
///  - the logical outcome is recorded honestly: attempts-per-commit on
///    success, give_ups when the budget runs out (previously dropped
///    silently), nothing extra on a non-retryable status.
///
/// Protocols without a ContentionManager fall back to the fixed jittered
/// backoff this loop always had.
template <typename AttemptFn>
Status RunWithRetries(ConcurrencyControl* cc, uint32_t thread_id,
                      bool is_scan_txn, AttemptFn&& attempt_fn, Rng& rng,
                      uint32_t max_retries = 1000) {
  ContentionManager* cm = cc != nullptr ? cc->contention() : nullptr;
  if (cm != nullptr) {
    cm->BeginTxn(thread_id, is_scan_txn);
    for (uint32_t attempt = 1;; attempt++) {
      cm->Admit(thread_id);
      Status st = attempt_fn();
      if (st.ok()) {
        cm->OnCommit(thread_id, attempt);
        return st;
      }
      if (!st.aborted()) {
        cm->OnStop(thread_id);
        return st;
      }
      if (attempt > max_retries) {
        cm->OnGiveUp(thread_id);
        return st;
      }
      cm->OnAbort(thread_id, cc->LastAbortReason(thread_id), rng);
    }
  }
  // Legacy fallback: fixed randomized backoff, blind to the abort reason.
  for (uint32_t attempt = 0;; attempt++) {
    Status st = attempt_fn();
    if (!st.aborted() || attempt >= max_retries) return st;
    // Short randomized backoff to break livelock between symmetric retriers.
    const uint64_t spins = rng.Uniform(64ULL << (attempt > 6 ? 6 : attempt));
    for (uint64_t i = 0; i < spins; i++) CpuRelax();
    // The conflicting transaction may be descheduled mid-commit (locks
    // held); yield so it can finish instead of burning this slice on retries
    // that are doomed to hit the same lock. Inside a FiberScheduler this is
    // a ~30ns fiber switch.
    if (attempt >= 1) CooperativeYield();
  }
}

}  // namespace rocc
