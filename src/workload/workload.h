#pragma once

#include <cstdint>
#include <vector>

#include "cc/cc.h"
#include "common/fiber.h"
#include "common/rng.h"
#include "core/rocc.h"
#include "storage/database.h"

namespace rocc {

/// A benchmark workload: owns table schemas, initial data, and transaction
/// logic. Implementations are thread-safe after Load: RunTxn may be called
/// concurrently from worker threads with distinct thread ids.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;

  /// Create tables and bulk-load initial data. Called once, single-threaded.
  virtual void Load(Database* db) = 0;

  /// Execute one logical transaction, retrying internally on aborts (every
  /// attempt is counted by the protocol's TxnStats). Returns the final
  /// status — Aborted only when the retry budget was exhausted.
  virtual Status RunTxn(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng) = 0;

  /// Logical-range layout for ROCC/MVRCC on this workload's tables.
  /// `ranges_hint` scales the partition count of the primary scanned table;
  /// 0 picks the workload's default.
  virtual std::vector<RangeConfig> RangeConfigs(uint32_t ranges_hint,
                                                uint32_t ring_capacity) const = 0;
};

/// Shared retry loop with bounded exponential backoff.
///
/// `attempt_fn` runs one attempt and returns its commit status; aborted
/// attempts are retried up to `max_retries` times.
template <typename AttemptFn>
Status RunWithRetries(AttemptFn&& attempt_fn, Rng& rng, uint32_t max_retries = 1000) {
  for (uint32_t attempt = 0;; attempt++) {
    Status st = attempt_fn();
    if (!st.aborted() || attempt >= max_retries) return st;
    // Short randomized backoff to break livelock between symmetric retriers.
    const uint64_t spins = rng.Uniform(64ULL << (attempt > 6 ? 6 : attempt));
    for (uint64_t i = 0; i < spins; i++) CpuRelax();
    // The conflicting transaction may be descheduled mid-commit (locks
    // held); yield so it can finish instead of burning this slice on retries
    // that are doomed to hit the same lock. Inside a FiberScheduler this is
    // a ~30ns fiber switch.
    if (attempt >= 1) CooperativeYield();
  }
}

}  // namespace rocc
