#include "workload/workload.h"

// Workload is an interface; this translation unit anchors the vtable-less
// header in the library build.
