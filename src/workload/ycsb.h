#pragma once

#include <memory>
#include <vector>

#include "common/zipfian.h"
#include "workload/workload.h"

namespace rocc {

/// Parameters for the hybrid YCSB workload of §V-B.
struct YcsbOptions {
  uint64_t num_rows = 1'000'000;
  uint32_t payload_size = 64;  ///< bytes per row (the paper uses DBx1000's default)
  double theta = 0.7;          ///< Zipfian skew; 0 = uniform ("no-skew")

  uint32_t ops_per_txn = 5;          ///< operations in a simple transaction
  double read_fraction = 0.0;        ///< read share of simple-txn ops (paper: updates)
  double scan_txn_fraction = 0.1;    ///< share of bulk processing transactions
  uint32_t scan_txn_updates = 4;     ///< update ops in a bulk transaction
  uint64_t scan_length = 100;        ///< keys covered by the bulk scan
  /// Skew of the bulk-scan start keys; negative = same as `theta`. The
  /// composite workload of §IV places bulk blocks uniformly (scan_theta = 0)
  /// while point updates stay Zipfian — the false-sharing regime where cold
  /// scans and hot writers share coarse ranges.
  double scan_theta = -1.0;
  /// Bulk transactions drop their update ops and become pure range reads —
  /// the reporting-query shape that motivates snapshot scans.
  bool read_only_scans = false;
  /// Read-only bulk transactions request a frozen snapshot: the scan resolves
  /// each row against the multi-version store and can never validate-abort.
  /// Implies read_only_scans (a snapshot transaction rejects writes); falls
  /// back to the protocol's ordinary scan when MVCC is not enabled.
  bool snapshot_scans = false;
  /// Point READ ops added to every read-only bulk transaction, mixed with
  /// the scan — the "analytics transaction" shape: a range aggregate plus a
  /// handful of hot-key lookups, all at one consistent cut. Only takes
  /// effect when the bulk transaction is read-only (read_only_scans or
  /// snapshot_scans); capped at 16 like ops_per_txn.
  uint32_t scan_txn_point_reads = 0;

  uint32_t num_ranges = 0;     ///< logical ranges (0 = scale the paper's 16384)
  uint32_t max_retries = 1000;
};

/// Hybrid YCSB: a mix of simple point transactions and bulk processing
/// transactions with one fixed-length key-range scan, generated exactly as
/// described in §V-B (update keys and scan start keys drawn from the same
/// Zipfian distribution).
class YcsbWorkload : public Workload {
 public:
  explicit YcsbWorkload(YcsbOptions options);

  const char* name() const override { return "YCSB-hybrid"; }
  void Load(Database* db) override;
  Status RunTxn(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng) override;
  std::vector<RangeConfig> RangeConfigs(uint32_t ranges_hint,
                                        uint32_t ring_capacity) const override;

  uint32_t table_id() const { return table_id_; }
  const YcsbOptions& options() const { return options_; }

  /// Bind to an already-loaded usertable instead of calling Load — used by
  /// benchmarks that sweep generator parameters over one resident table.
  void SetLoadedTable(uint32_t table_id) { table_id_ = table_id; }

  /// The paper partitions 10M keys into 16384 ranges (610 keys each); scale
  /// the default partition count so the range size stays the same when the
  /// table is smaller.
  uint32_t DefaultNumRanges() const;

  /// Clamp a Zipfian scan start key so [start, start + scan_length) stays
  /// inside the table: a scan of scan_length always finds scan_length rows
  /// (standard YCSB practice; keeps the scanned span equal across schemes).
  /// When scan_length >= num_rows the whole table is the scan: start is 0.
  uint64_t ClampScanStart(uint64_t start) const {
    if (options_.scan_length >= options_.num_rows) return 0;
    const uint64_t max_start = options_.num_rows - options_.scan_length;
    return start > max_start ? max_start : start;
  }

 private:
  struct Plan {
    bool is_scan = false;
    uint64_t scan_start = 0;
    uint32_t num_ops = 0;
    struct Op {
      bool is_write;
      uint64_t key;
    } ops[16];
  };

  Plan GeneratePlan(Rng& rng) const;
  Status TryOnce(ConcurrencyControl* cc, uint32_t thread_id, const Plan& plan,
                 std::vector<char>& buf, Rng& rng);

  YcsbOptions options_;
  ZipfianGenerator zipf_;
  ZipfianGenerator scan_zipf_;  ///< scan-start distribution (see scan_theta)
  uint32_t table_id_ = 0;
  std::vector<std::vector<char>> thread_bufs_;
};

}  // namespace rocc
