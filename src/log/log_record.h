#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "txn/txn.h"

namespace rocc {
namespace wal {

/// On-disk WAL framing.
///
/// The log is a byte stream of frames:
///
///   uint32 crc        CRC-32C of the body
///   uint32 body_len   bytes of body following this field
///   body              starts with a 1-byte RecordType
///
/// A crash can cut the stream anywhere; recovery accepts the longest prefix
/// of frames whose length fits and whose CRC matches, and discards the rest
/// (the torn tail). Frames never span flush batches in a way recovery needs
/// to know about — the CRC alone decides validity.
///
/// Body layouts (all integers little-endian, packed):
///
///   kCommit:    u8 type, u64 epoch, u64 commit_ts, u64 txn_id, u32 num_writes,
///               then per write: u32 table_id, u8 kind, u64 key,
///                               u32 field_offset, u32 size, size bytes
///   kEpochMark: u8 type, u64 epoch
///
/// `epoch` on a commit record is the group-commit epoch the record was
/// appended under. An epoch mark `e` asserts that every commit record tagged
/// with epoch <= e lies physically before the mark (the flusher writes the
/// mark after draining all worker buffers cut at `e`), so recovery replays
/// exactly the commit records tagged <= the last mark in the valid prefix:
/// a dependency-closed, whole-epoch prefix of the committed history.
enum class RecordType : uint8_t {
  kCommit = 1,
  kEpochMark = 2,
};

/// Write kinds mirror WriteEntry::Kind but are pinned for the disk format.
enum class WriteKind : uint8_t {
  kUpdate = 0,
  kInsert = 1,
  kDelete = 2,
};

/// One redo operation decoded from a commit record. `data` points into the
/// parser's backing buffer and is valid while that buffer lives.
struct WriteOp {
  uint32_t table_id = 0;
  WriteKind kind = WriteKind::kUpdate;
  uint64_t key = 0;
  uint32_t field_offset = 0;
  uint32_t size = 0;
  const char* data = nullptr;
};

/// One decoded commit record.
struct CommitRecord {
  uint64_t epoch = 0;
  uint64_t commit_ts = 0;
  uint64_t txn_id = 0;
  std::vector<WriteOp> writes;
};

/// Append a framed commit record value-logging `t`'s writeset at `commit_ts`.
/// Writes are logged in chronological writeset order so partial updates of
/// one row compose identically on replay.
void AppendCommitRecord(std::vector<char>* out, uint64_t epoch,
                        const TxnDescriptor& t, uint64_t commit_ts);

/// Append a framed epoch mark for `epoch`.
void AppendEpochMark(std::vector<char>* out, uint64_t epoch);

/// Sequential frame parser over an in-memory WAL image.
class Parser {
 public:
  Parser(const char* data, size_t len) : data_(data), len_(len) {}

  /// Decode the next frame. Returns false at clean end-of-stream or at the
  /// first torn/corrupt frame; `valid_bytes()` then marks the prefix end.
  /// On true, `*type` says which of `commit` / `epoch_mark` was filled.
  bool Next(RecordType* type, CommitRecord* commit, uint64_t* epoch_mark);

  /// Bytes of fully validated frames consumed so far.
  size_t valid_bytes() const { return off_; }

 private:
  const char* data_;
  size_t len_;
  size_t off_ = 0;
};

// ---------------------------------------------------------------------------
// Low-level framing, shared by the WAL and the checkpoint/manifest files.
// ---------------------------------------------------------------------------

/// Reserve a frame header (crc + body_len) and return its offset for SealFrame.
size_t BeginFrame(std::vector<char>* out);
/// Back-patch length and CRC over everything appended since BeginFrame.
void SealFrame(std::vector<char>* out, size_t frame_start);

void PutU8(std::vector<char>* out, uint8_t v);
void PutU32(std::vector<char>* out, uint32_t v);
void PutU64(std::vector<char>* out, uint64_t v);
void PutBytes(std::vector<char>* out, const void* p, size_t n);

/// Validate and expose the frame at `*off`; advances `*off` past it on
/// success. Returns false at clean end-of-data or on a torn/corrupt frame.
bool NextFrame(const char* data, size_t len, size_t* off, const char** body,
               uint32_t* body_len);

/// Bounds-checked little-endian reader over one frame body.
class ByteReader {
 public:
  ByteReader(const char* p, size_t n) : p_(p), n_(n) {}

  bool U8(uint8_t* v) { return Copy(v, 1); }
  bool U32(uint32_t* v) { return Copy(v, 4); }
  bool U64(uint64_t* v) { return Copy(v, 8); }

  bool Bytes(const char** v, size_t n) {
    if (n > n_ - off_) return false;
    *v = p_ + off_;
    off_ += n;
    return true;
  }

  bool AtEnd() const { return off_ == n_; }
  size_t remaining() const { return n_ - off_; }

 private:
  bool Copy(void* v, size_t n) {
    if (n > n_ - off_) return false;
    std::memcpy(v, p_ + off_, n);
    off_ += n;
    return true;
  }

  const char* p_;
  size_t n_;
  size_t off_ = 0;
};

}  // namespace wal
}  // namespace rocc
