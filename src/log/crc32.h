#pragma once

#include <cstddef>
#include <cstdint>

namespace rocc {

/// CRC-32C (Castagnoli) over a byte buffer, software table-driven.
///
/// Every WAL record and checkpoint record carries one so recovery can detect
/// torn tail writes (a record cut mid-way by a crash) and bit rot. `seed`
/// lets callers chain partial buffers; pass the previous return value.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace rocc
