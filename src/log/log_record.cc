#include "log/log_record.h"

#include "log/crc32.h"

namespace rocc {
namespace wal {

void PutU8(std::vector<char>* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::vector<char>* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->insert(out->end(), b, b + 4);
}

void PutU64(std::vector<char>* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->insert(out->end(), b, b + 8);
}

void PutBytes(std::vector<char>* out, const void* p, size_t n) {
  const char* c = static_cast<const char*>(p);
  out->insert(out->end(), c, c + n);
}

size_t BeginFrame(std::vector<char>* out) {
  const size_t frame_start = out->size();
  out->resize(out->size() + 8);  // crc + body_len placeholder
  return frame_start;
}

void SealFrame(std::vector<char>* out, size_t frame_start) {
  const size_t body_start = frame_start + 8;
  const uint32_t body_len = static_cast<uint32_t>(out->size() - body_start);
  const uint32_t crc = Crc32(out->data() + body_start, body_len);
  std::memcpy(out->data() + frame_start, &crc, 4);
  std::memcpy(out->data() + frame_start + 4, &body_len, 4);
}

bool NextFrame(const char* data, size_t len, size_t* off, const char** body,
               uint32_t* body_len) {
  if (*off + 8 > len) return false;  // no room for a frame header
  uint32_t crc, n;
  std::memcpy(&crc, data + *off, 4);
  std::memcpy(&n, data + *off + 4, 4);
  const size_t body_off = *off + 8;
  if (n == 0 || n > len - body_off) return false;  // torn tail
  if (Crc32(data + body_off, n) != crc) return false;  // torn or corrupt
  *body = data + body_off;
  *body_len = n;
  *off = body_off + n;
  return true;
}

namespace {

WriteKind KindOf(WriteEntry::Kind k) {
  switch (k) {
    case WriteEntry::Kind::kInsert: return WriteKind::kInsert;
    case WriteEntry::Kind::kDelete: return WriteKind::kDelete;
    case WriteEntry::Kind::kUpdate: break;
  }
  return WriteKind::kUpdate;
}

}  // namespace

void AppendCommitRecord(std::vector<char>* out, uint64_t epoch,
                        const TxnDescriptor& t, uint64_t commit_ts) {
  const size_t frame = BeginFrame(out);
  PutU8(out, static_cast<uint8_t>(RecordType::kCommit));
  PutU64(out, epoch);
  PutU64(out, commit_ts);
  PutU64(out, t.txn_id);
  PutU32(out, static_cast<uint32_t>(t.write_set.size()));
  for (const WriteEntry& we : t.write_set) {
    PutU32(out, we.table_id);
    PutU8(out, static_cast<uint8_t>(KindOf(we.kind)));
    PutU64(out, we.key);
    PutU32(out, we.field_offset);
    if (we.kind == WriteEntry::Kind::kDelete) {
      PutU32(out, 0);
    } else {
      PutU32(out, we.data_size);
      PutBytes(out, t.ImageAt(we.data_offset), we.data_size);
    }
  }
  SealFrame(out, frame);
}

void AppendEpochMark(std::vector<char>* out, uint64_t epoch) {
  const size_t frame = BeginFrame(out);
  PutU8(out, static_cast<uint8_t>(RecordType::kEpochMark));
  PutU64(out, epoch);
  SealFrame(out, frame);
}

bool Parser::Next(RecordType* type, CommitRecord* commit, uint64_t* epoch_mark) {
  const char* body = nullptr;
  uint32_t body_len = 0;
  size_t off = off_;
  if (!NextFrame(data_, len_, &off, &body, &body_len)) return false;

  ByteReader r(body, body_len);
  uint8_t raw_type = 0;
  if (!r.U8(&raw_type)) return false;
  switch (static_cast<RecordType>(raw_type)) {
    case RecordType::kCommit: {
      commit->writes.clear();
      uint32_t num_writes = 0;
      if (!r.U64(&commit->epoch) || !r.U64(&commit->commit_ts) ||
          !r.U64(&commit->txn_id) || !r.U32(&num_writes)) {
        return false;
      }
      commit->writes.reserve(num_writes);
      for (uint32_t i = 0; i < num_writes; i++) {
        WriteOp op;
        uint8_t kind = 0;
        if (!r.U32(&op.table_id) || !r.U8(&kind) || !r.U64(&op.key) ||
            !r.U32(&op.field_offset) || !r.U32(&op.size)) {
          return false;
        }
        op.kind = static_cast<WriteKind>(kind);
        if (op.size > 0 && !r.Bytes(&op.data, op.size)) return false;
        commit->writes.push_back(op);
      }
      if (!r.AtEnd()) return false;
      *type = RecordType::kCommit;
      break;
    }
    case RecordType::kEpochMark: {
      if (!r.U64(epoch_mark) || !r.AtEnd()) return false;
      *type = RecordType::kEpochMark;
      break;
    }
    default:
      return false;  // unknown type: treat as corruption, end of prefix
  }
  off_ = off;
  return true;
}

}  // namespace wal
}  // namespace rocc
