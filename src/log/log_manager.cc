#include "log/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "cc/occ_util.h"
#include "common/fiber.h"
#include "common/timer.h"
#include "log/log_record.h"
#include "obs/obs.h"

namespace rocc {

namespace {

// Checkpoint / manifest frame types (disjoint from wal::RecordType so a file
// mix-up is caught as corruption rather than misparsed).
constexpr uint8_t kCkptHeader = 10;  // u32 table_id, u32 row_size
constexpr uint8_t kCkptRow = 11;     // u64 key, u64 version, row payload
constexpr uint8_t kCkptFooter = 12;  // u64 row_count
constexpr uint8_t kManifest = 13;    // u64 ckpt_id, u64 wal_offset, u32 num_tables

bool WriteFully(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadFileFully(const std::string& path, std::vector<char>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < out->size()) {
    const ssize_t n = ::read(fd, out->data() + off, out->size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  out->resize(off);
  return true;
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Internal("open dir for fsync failed");
  ::fsync(fd);
  ::close(fd);
  return Status::Ok();
}

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }
std::string CkptDir(const std::string& dir, uint64_t id) {
  return dir + "/ckpt-" + std::to_string(id);
}
std::string CkptTablePath(const std::string& ckpt_dir, uint32_t table_id) {
  return ckpt_dir + "/table-" + std::to_string(table_id) + ".ckp";
}

/// Fetch-or-create a visible row for recovery (single-threaded, no latching).
Row* UpsertRow(Database* db, uint32_t table_id, uint64_t key) {
  Row* row = db->GetIndex(table_id)->Get(key);
  if (row == nullptr) row = db->LoadRow(table_id, key, nullptr);
  return row;
}

}  // namespace

LogManager::LogManager(LogOptions options, uint32_t num_threads)
    : options_(std::move(options)), workers_(num_threads) {
  open_epoch_.store(options_.resume_epoch + 1, std::memory_order_relaxed);
  durable_epoch_.store(options_.resume_epoch, std::memory_order_relaxed);
  // A resumed WAL is truncated to its last mark, so nothing on disk is tagged
  // above resume_epoch and that mark covers everything.
  last_marked_epoch_ = options_.resume_epoch;
  max_flushed_tag_ = options_.resume_epoch;
}

LogManager::~LogManager() { Stop(); }

Status LogManager::Open() {
  if (options_.log_dir.empty()) return Status::InvalidArgument("empty log_dir");
  if (::mkdir(options_.log_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir log_dir failed");
  }
  fd_ = ::open(WalPath(options_.log_dir).c_str(), O_CREAT | O_WRONLY | O_APPEND,
               0644);
  if (fd_ < 0) return Status::Internal("open wal failed");
  if (options_.truncate_wal_to != ~0ULL) {
    if (::ftruncate(fd_, static_cast<off_t>(options_.truncate_wal_to)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return Status::Internal("truncate wal failed");
    }
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::Internal("fstat wal failed");
  }
  durable_bytes_.store(static_cast<uint64_t>(st.st_size), std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  flusher_ = std::thread(&LogManager::FlusherLoop, this);
  return Status::Ok();
}

void LogManager::Stop() {
  if (!flusher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(ack_mu_);
    stop_.store(true, std::memory_order_release);
    flush_cv_.notify_all();
  }
  flusher_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t LogManager::LogCommit(uint32_t thread_id, const TxnDescriptor* t,
                               uint64_t commit_ts) {
  WorkerBuf& w = *workers_[thread_id];
  SpinLatchGuard g(w.latch);
  // The ticket MUST be read inside the buffer latch: the flusher cuts the
  // epoch before taking the latch to drain, so every record tagged <= the
  // cut is guaranteed to be in the drained batch.
  const uint64_t ticket = open_epoch_.load(std::memory_order_acquire);
  if (!crashed_.load(std::memory_order_relaxed)) {
    wal::AppendCommitRecord(&w.buf, ticket, *t, commit_ts);
    w.max_tag = ticket;  // monotonic: open_epoch_ only grows
    records_logged_.fetch_add(1, std::memory_order_relaxed);
  }
  return ticket;
}

bool LogManager::WaitDurable(uint64_t ticket) {
  if (!options_.sync_ack) return true;
  while (true) {
    if (durable_epoch_.load(std::memory_order_acquire) >= ticket) return true;
    if (crashed_.load(std::memory_order_acquire) ||
        stop_.load(std::memory_order_acquire)) {
      return durable_epoch_.load(std::memory_order_acquire) >= ticket;
    }
    if (FiberScheduler::InFiber()) {
      // Let the other worker fibers run out the group-commit interval.
      CooperativeYield();
    } else {
      std::unique_lock<std::mutex> lk(ack_mu_);
      ack_cv_.wait_for(lk, std::chrono::microseconds(
                               std::max<uint32_t>(options_.group_commit_us, 50)),
                       [&] {
                         return durable_epoch_.load(std::memory_order_acquire) >=
                                    ticket ||
                                crashed_.load(std::memory_order_acquire) ||
                                stop_.load(std::memory_order_acquire);
                       });
    }
  }
}

void LogManager::FlusherLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lk(ack_mu_);
      flush_cv_.wait_for(
          lk, std::chrono::microseconds(std::max<uint32_t>(options_.group_commit_us, 1)),
          [&] { return stop_.load(std::memory_order_acquire); });
    }
    const bool stopping = stop_.load(std::memory_order_acquire);
    FlushOnce();
    if (stopping || crashed_.load(std::memory_order_acquire)) break;
  }
  std::lock_guard<std::mutex> lk(ack_mu_);
  ack_cv_.notify_all();
}

void LogManager::FlushOnce() {
  // Cut the epoch first: any append from here on tags >= e + 1 and belongs
  // to the next batch.
  const uint64_t e = open_epoch_.fetch_add(1, std::memory_order_acq_rel);
  batch_.clear();
  uint64_t batch_max_tag = 0;
  for (auto& padded : workers_) {
    WorkerBuf& w = *padded;
    SpinLatchGuard g(w.latch);
    if (!w.buf.empty()) {
      batch_.insert(batch_.end(), w.buf.begin(), w.buf.end());
      batch_max_tag = std::max(batch_max_tag, w.max_tag);
      w.buf.clear();
    }
  }
  if (batch_.empty() && max_flushed_tag_ <= last_marked_epoch_) {
    // Nothing on disk above the last mark: it already covers epoch e, and
    // recovery keeps every record tagged <= e.
    durable_epoch_.store(e, std::memory_order_release);
    std::lock_guard<std::mutex> lk(ack_mu_);
    ack_cv_.notify_all();
    return;
  }
  // All buffers are drained, so every record tagged <= e is now in the batch
  // or already on disk; mark e truthfully covers them — including stragglers
  // (records tagged above an older cut that were drained into that older
  // batch). On the batch-empty path this writes a mark-only frame: without
  // it, acknowledging e would ack a straggler no mark ever covers, and
  // recovery would discard that acknowledged commit.
  wal::AppendEpochMark(&batch_, e);

  size_t allowed = batch_.size();
  if (options_.fault != nullptr) {
    allowed = options_.fault->Admit(durable_bytes_.load(std::memory_order_relaxed),
                                    batch_.size());
  }
  if (allowed > 0) {
    const uint64_t flush_start = NowNanos();
    WriteFully(fd_, batch_.data(), allowed);
    ::fdatasync(fd_);
    durable_bytes_.fetch_add(allowed, std::memory_order_acq_rel);
    obs::ServiceEvent(obs::EventType::kWalFlush, 0, flush_start,
                      NowNanos() - flush_start, allowed,
                      static_cast<uint32_t>(e));
  }
  if (allowed < batch_.size()) {
    Crash();
    return;
  }
  last_marked_epoch_ = e;
  max_flushed_tag_ = std::max(batch_max_tag, e);
  durable_epoch_.store(e, std::memory_order_release);
  std::lock_guard<std::mutex> lk(ack_mu_);
  ack_cv_.notify_all();
}

void LogManager::Crash() {
  crashed_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lk(ack_mu_);
  ack_cv_.notify_all();
}

Status LogManager::Checkpoint(Database* db) {
  if (fd_ < 0) return Status::InvalidArgument("log manager not open");
  // Serialize checkpointers: they share the id counter and the manifest tmp
  // file, and overlapping publishes could regress the manifest's wal_offset.
  std::lock_guard<std::mutex> ckpt_lk(ckpt_mu_);
  const uint64_t ckpt_id = next_checkpoint_id_++;
  // Replay will start here. Safe because a record durable before this point
  // was appended — and appends happen while the writer still holds its
  // record locks — before any row below is read: the checkpoint read either
  // sees the applied value or spins on the lock until it is applied.
  const uint64_t wal_offset = durable_bytes();
  const std::string dir = CkptDir(options_.log_dir, ckpt_id);
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir checkpoint dir failed");
  }

  std::vector<char> out;
  std::vector<char> row_buf;
  for (uint32_t table_id = 0; table_id < db->NumTables(); table_id++) {
    const Table* table = db->GetTable(table_id);
    const uint32_t row_size = table->row_size();
    row_buf.resize(row_size);
    out.clear();
    {
      const size_t f = wal::BeginFrame(&out);
      wal::PutU8(&out, kCkptHeader);
      wal::PutU32(&out, table_id);
      wal::PutU32(&out, row_size);
      wal::SealFrame(&out, f);
    }

    const int fd = ::open(CkptTablePath(dir, table_id).c_str(),
                          O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) return Status::Internal("open checkpoint table file failed");
    uint64_t row_count = 0;
    bool io_ok = true;
    db->GetIndex(table_id)->ScanRange(0, ~0ULL, [&](uint64_t key, Row* row) {
      // Fuzzy snapshot: OCC stable read; spin out writer locks (they are
      // held only across the short apply/unlock window of a commit).
      uint64_t tidw = 0;
      while (true) {
        const ReadResult r = ReadRecordNoWait(row, row_buf.data(), &tidw);
        if (r == ReadResult::kOk) break;
        if (r == ReadResult::kAbsent) return true;  // tombstone/placeholder
        CpuRelax();
      }
      const size_t f = wal::BeginFrame(&out);
      wal::PutU8(&out, kCkptRow);
      wal::PutU64(&out, key);
      wal::PutU64(&out, TidWord::Version(tidw));
      wal::PutBytes(&out, row_buf.data(), row_size);
      wal::SealFrame(&out, f);
      row_count++;
      if (out.size() >= (1u << 22)) {  // stream in ~4MB chunks
        io_ok = io_ok && WriteFully(fd, out.data(), out.size());
        out.clear();
      }
      return true;
    });
    {
      const size_t f = wal::BeginFrame(&out);
      wal::PutU8(&out, kCkptFooter);
      wal::PutU64(&out, row_count);
      wal::SealFrame(&out, f);
    }
    io_ok = io_ok && WriteFully(fd, out.data(), out.size());
    ::fsync(fd);
    ::close(fd);
    if (!io_ok) return Status::Internal("checkpoint table write failed");
  }

  // Publish atomically: the manifest names the checkpoint only after every
  // table file is complete and synced.
  std::vector<char> manifest;
  {
    const size_t f = wal::BeginFrame(&manifest);
    wal::PutU8(&manifest, kManifest);
    wal::PutU64(&manifest, ckpt_id);
    wal::PutU64(&manifest, wal_offset);
    wal::PutU32(&manifest, static_cast<uint32_t>(db->NumTables()));
    wal::SealFrame(&manifest, f);
  }
  const std::string tmp = ManifestPath(options_.log_dir) + ".tmp";
  const int mfd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (mfd < 0) return Status::Internal("open manifest tmp failed");
  const bool ok = WriteFully(mfd, manifest.data(), manifest.size());
  ::fsync(mfd);
  ::close(mfd);
  if (!ok || ::rename(tmp.c_str(), ManifestPath(options_.log_dir).c_str()) != 0) {
    return Status::Internal("publish manifest failed");
  }
  return SyncDir(options_.log_dir);
}

Status LogManager::Recover(const std::string& log_dir, Database* db,
                           RecoveryStats* stats) {
  *stats = RecoveryStats{};
  uint64_t wal_offset = 0;

  // 1. Manifest -> checkpoint image (if one was ever published).
  std::vector<char> manifest;
  if (ReadFileFully(ManifestPath(log_dir), &manifest) && !manifest.empty()) {
    const char* body = nullptr;
    uint32_t body_len = 0;
    size_t off = 0;
    if (!wal::NextFrame(manifest.data(), manifest.size(), &off, &body, &body_len)) {
      return Status::Internal("corrupt manifest");
    }
    wal::ByteReader r(body, body_len);
    uint8_t type = 0;
    uint64_t ckpt_id = 0;
    uint32_t num_tables = 0;
    if (!r.U8(&type) || type != kManifest || !r.U64(&ckpt_id) ||
        !r.U64(&wal_offset) || !r.U32(&num_tables)) {
      return Status::Internal("corrupt manifest");
    }
    if (num_tables > db->NumTables()) {
      return Status::InvalidArgument("manifest has more tables than schema");
    }
    const std::string dir = CkptDir(log_dir, ckpt_id);
    for (uint32_t table_id = 0; table_id < num_tables; table_id++) {
      std::vector<char> file;
      if (!ReadFileFully(CkptTablePath(dir, table_id), &file)) {
        return Status::Internal("missing checkpoint table file");
      }
      size_t foff = 0;
      uint32_t row_size = 0;
      uint64_t rows_seen = 0;
      bool footer_ok = false;
      while (wal::NextFrame(file.data(), file.size(), &foff, &body, &body_len)) {
        wal::ByteReader fr(body, body_len);
        uint8_t ftype = 0;
        if (!fr.U8(&ftype)) return Status::Internal("corrupt checkpoint frame");
        if (ftype == kCkptHeader) {
          uint32_t tid = 0;
          if (!fr.U32(&tid) || tid != table_id || !fr.U32(&row_size) ||
              row_size != db->GetTable(table_id)->row_size()) {
            return Status::Internal("checkpoint header mismatch");
          }
        } else if (ftype == kCkptRow) {
          uint64_t key = 0, version = 0;
          const char* payload = nullptr;
          if (!fr.U64(&key) || !fr.U64(&version) ||
              !fr.Bytes(&payload, row_size) || !fr.AtEnd()) {
            return Status::Internal("corrupt checkpoint row");
          }
          Row* row = UpsertRow(db, table_id, key);
          std::memcpy(row->Data(), payload, row_size);
          row->tid.store(version, std::memory_order_release);
          stats->checkpoint_rows++;
          stats->max_commit_ts = std::max(stats->max_commit_ts, version);
          rows_seen++;
        } else if (ftype == kCkptFooter) {
          uint64_t count = 0;
          if (!fr.U64(&count) || count != rows_seen) {
            return Status::Internal("checkpoint footer count mismatch");
          }
          footer_ok = true;
        } else {
          return Status::Internal("unknown checkpoint frame");
        }
      }
      // The manifest is only published after complete table files, so an
      // unterminated file here is real corruption, not a torn checkpoint.
      if (!footer_ok) return Status::Internal("checkpoint file truncated");
    }
  }

  // 2. Scan the WAL's valid prefix from the checkpoint's replay offset. The
  // cursors start at that offset so a resume without any post-checkpoint WAL
  // records still remembers the manifest's replay position.
  stats->resume_wal_bytes = wal_offset;
  stats->valid_wal_bytes = wal_offset;
  std::vector<char> walimg;
  if (!ReadFileFully(WalPath(log_dir), &walimg)) {
    if (wal_offset > 0) {
      // The manifest promises wal_offset durable bytes; losing the whole file
      // is corruption, not a clean checkpoint-only state.
      return Status::Internal("manifest records wal_offset but wal is missing");
    }
    return Status::Ok();  // no WAL at all: the checkpoint (if any) is the state
  }
  if (wal_offset > walimg.size()) {
    return Status::Internal("manifest replay offset beyond wal");
  }
  struct PendingRecord {
    size_t pos;  // parse order, tie-break for equal commit_ts (cannot happen)
    wal::CommitRecord rec;
  };
  std::vector<PendingRecord> commits;
  std::vector<std::pair<size_t, uint64_t>> marks;  // (pos, epoch)
  wal::Parser parser(walimg.data() + wal_offset, walimg.size() - wal_offset);
  wal::RecordType type;
  wal::CommitRecord rec;
  uint64_t mark_epoch = 0;
  size_t index = 0;
  while (parser.Next(&type, &rec, &mark_epoch)) {
    if (type == wal::RecordType::kCommit) {
      commits.push_back({index, std::move(rec)});
      rec = wal::CommitRecord{};
    } else {
      marks.emplace_back(index, mark_epoch);
      stats->durable_epoch = std::max(stats->durable_epoch, mark_epoch);
      stats->resume_wal_bytes = wal_offset + parser.valid_bytes();
    }
    index++;
  }
  stats->valid_wal_bytes = wal_offset + parser.valid_bytes();
  stats->torn_bytes = walimg.size() - stats->valid_wal_bytes;

  // 3. Keep a commit record only when a LATER epoch mark covers its epoch:
  // the flusher writes mark e after draining everything tagged <= e, so the
  // kept set is a dependency-closed union of whole epochs. Suffix-max over
  // mark epochs answers "is there a covering mark after position p".
  std::vector<uint64_t> suffix_max(marks.size() + 1, 0);
  for (size_t i = marks.size(); i-- > 0;) {
    suffix_max[i] = std::max(suffix_max[i + 1], marks[i].second);
  }
  std::vector<PendingRecord> kept;
  kept.reserve(commits.size());
  for (PendingRecord& pr : commits) {
    const auto it = std::upper_bound(
        marks.begin(), marks.end(), pr.pos,
        [](size_t pos, const std::pair<size_t, uint64_t>& m) { return pos < m.first; });
    const size_t first_later = static_cast<size_t>(it - marks.begin());
    if (suffix_max[first_later] >= pr.rec.epoch) {
      kept.push_back(std::move(pr));
    } else {
      stats->skipped_records++;
    }
  }

  // 4. Redo in commit-timestamp order, version-conditionally (idempotent over
  // the fuzzy checkpoint and any pre-loaded initial image).
  std::stable_sort(kept.begin(), kept.end(),
                   [](const PendingRecord& a, const PendingRecord& b) {
                     return a.rec.commit_ts < b.rec.commit_ts;
                   });
  for (const PendingRecord& pr : kept) {
    const uint64_t cts = pr.rec.commit_ts;
    for (const wal::WriteOp& op : pr.rec.writes) {
      if (op.table_id >= db->NumTables()) {
        return Status::Internal("log record references unknown table");
      }
      Row* row = db->GetIndex(op.table_id)->Get(op.key);
      if (op.kind == wal::WriteKind::kDelete) {
        // <= cts, not <: a record serializes its writes chronologically, so
        // a delete may follow this same record's own insert/update of the
        // key (version already == cts). The commit netted to a delete and
        // replay must agree; only strictly-newer rows are stale.
        if (row != nullptr && TidWord::Version(row->tid.load()) <= cts) {
          db->GetIndex(op.table_id)->Remove(op.key);
        } else if (row != nullptr) {
          stats->stale_writes++;
        }
        continue;
      }
      // Strictly-newer rows are stale; version == cts re-applies the same
      // images (idempotent) so a record's later writes to a row it already
      // touched — partial updates composing — are never dropped.
      if (row != nullptr && TidWord::Version(row->tid.load()) > cts) {
        stats->stale_writes++;
        continue;
      }
      if (row == nullptr) row = UpsertRow(db, op.table_id, op.key);
      if (op.field_offset + op.size > db->GetTable(op.table_id)->row_size()) {
        return Status::Internal("log record write exceeds row");
      }
      if (op.size > 0) std::memcpy(row->Data() + op.field_offset, op.data, op.size);
      row->tid.store(cts, std::memory_order_release);
    }
    stats->replayed_records++;
    stats->max_commit_ts = std::max(stats->max_commit_ts, cts);
  }
  return Status::Ok();
}

}  // namespace rocc
