#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rocc {

/// Deterministic crash-point injection for the durability subsystem.
///
/// Tests arm a crash at an absolute WAL byte offset; the group-commit
/// flusher consults `Admit` before every physical write and, when the write
/// would cross the armed offset, persists exactly the bytes below it and
/// then "dies" (stops flushing, never advances the durable epoch). Because
/// the WAL is a deterministic function of the committed records, a byte
/// offset pins the crash to a precise spot — mid-record, between records,
/// or mid-epoch-batch — and the same recovery guarantees can be asserted
/// for each.
///
/// Thread-safe: armed by the test thread, consumed by the flusher thread.
class FaultInjector {
 public:
  /// Crash once the WAL byte stream reaches `offset` (bytes [0, offset)
  /// become durable, everything at or after is lost).
  void CrashAtWalOffset(uint64_t offset) {
    crash_offset_.store(offset, std::memory_order_release);
  }

  /// Flusher-side gate for a write of `len` bytes at WAL offset `offset`.
  /// Returns how many of those bytes may be written; a short return means
  /// "write that many, then crash". Marks the injector crashed when the
  /// armed offset is hit.
  size_t Admit(uint64_t offset, size_t len) {
    const uint64_t crash = crash_offset_.load(std::memory_order_acquire);
    if (offset + len <= crash) return len;
    crashed_.store(true, std::memory_order_release);
    return offset >= crash ? 0 : static_cast<size_t>(crash - offset);
  }

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  void Reset() {
    crash_offset_.store(~0ULL, std::memory_order_release);
    crashed_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<uint64_t> crash_offset_{~0ULL};
  std::atomic<bool> crashed_{false};
};

}  // namespace rocc
