#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cacheline.h"
#include "common/latch.h"
#include "common/status.h"
#include "log/fault_injection.h"
#include "storage/database.h"
#include "txn/txn.h"

namespace rocc {

/// Durability configuration.
struct LogOptions {
  std::string log_dir;

  /// Group-commit batching interval: the flusher wakes every this many
  /// microseconds, drains all worker buffers, writes + fsyncs the batch, and
  /// releases the acknowledgements of the epoch it cut. Smaller = lower
  /// durable-ack latency, more fsyncs; 0 = flush back-to-back.
  uint32_t group_commit_us = 200;

  /// When true (default) Commit blocks until its log record's epoch is
  /// durable; when false records are written asynchronously and commits are
  /// acknowledged from memory (no durability wait, weaker guarantee).
  bool sync_ack = true;

  /// Optional crash-point injection (tests); not owned.
  FaultInjector* fault = nullptr;

  /// When != ~0ULL, Open truncates an existing WAL to this many bytes before
  /// appending — used to drop the torn tail and any unacknowledged records
  /// when resuming a recovered directory (pass RecoveryStats::resume_wal_bytes).
  uint64_t truncate_wal_to = ~0ULL;

  /// First epoch of this incarnation minus one. When resuming a recovered
  /// directory, pass RecoveryStats::durable_epoch so new epoch tags stay
  /// above every mark already in the WAL.
  uint64_t resume_epoch = 0;
};

/// Outcome of LogManager::Recover.
struct RecoveryStats {
  uint64_t checkpoint_rows = 0;    ///< rows loaded from the checkpoint image
  uint64_t replayed_records = 0;   ///< commit records applied from the WAL
  uint64_t skipped_records = 0;    ///< valid records beyond the last complete epoch
  uint64_t stale_writes = 0;       ///< per-write skips (row already at a newer version)
  uint64_t torn_bytes = 0;         ///< invalid tail bytes discarded
  uint64_t valid_wal_bytes = 0;    ///< length of the well-formed WAL prefix
  /// Byte just past the last epoch mark: the prefix actually replayed. Pass
  /// this (not valid_wal_bytes) as LogOptions::truncate_wal_to when resuming
  /// the directory, so never-acknowledged records beyond the last mark cannot
  /// be resurrected by a later recovery once new marks land after them.
  uint64_t resume_wal_bytes = 0;
  uint64_t durable_epoch = 0;      ///< last complete epoch found in the WAL
  uint64_t max_commit_ts = 0;      ///< highest commit timestamp restored
};

/// Epoch-based group-commit redo log + fuzzy checkpoints + crash recovery.
///
/// Write path (per committing worker, between write-apply and lock release —
/// see OccBase::ApplyWritesAndUnlock):
///   1. serialize the writeset into this worker's redo buffer under its
///      buffer latch, reading the current open epoch as the record's tag;
///   2. after releasing its locks and retiring the descriptor, the worker
///      calls WaitDurable(tag) and only then acknowledges the commit.
///
/// Flusher (one background thread): every `group_commit_us` it cuts an epoch
/// (atomically advances the open epoch from e to e+1), drains every worker
/// buffer, appends an epoch mark for e, writes + fsyncs the batch, then
/// publishes durable_epoch = e and wakes waiters. Because workers read their
/// tag inside the buffer latch and the cut happens before the drain, every
/// record tagged <= e is in the drained batch — the mark is truthful. The
/// converse does not hold: a worker that takes its latch after the cut but
/// before its buffer is drained lands a record tagged e+1 inside the batch
/// marked e (a "straggler"). durable_epoch therefore only advances to an
/// epoch once a mark covering every flushed tag is on disk — when a cycle
/// drains nothing but stragglers sit above the last mark, it writes (and
/// fsyncs) a covering mark before acknowledging, never silently.
///
/// Correctness invariant (why acknowledged commits survive consistently):
/// the record is appended while the transaction still holds its write locks,
/// so any transaction that observes a write also appends after the writer
/// did and therefore carries an epoch tag >= the writer's. Recovery replays
/// exactly the records tagged <= the last epoch mark in the valid WAL
/// prefix, which is thus a dependency-closed, whole-epoch prefix of the
/// committed history — a serializable state.
///
/// Checkpoints bound replay: Checkpoint snapshots every table fuzzily (rows
/// are copied with OCC stable reads while writers run) and records the
/// durable WAL offset observed at its start. Any record durable before that
/// offset was applied to memory before the checkpoint read any row (records
/// are appended before locks are released), so replay can start there;
/// fuzziness is absorbed by version-conditional redo (a write is skipped
/// when the row already carries a >= version).
class LogManager {
 public:
  LogManager(LogOptions options, uint32_t num_threads);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Create the log directory / WAL file and start the flusher thread.
  Status Open();

  /// Final flush of all buffers, then stop and join the flusher. Idempotent.
  void Stop();

  /// Serialize `t`'s writeset at `commit_ts` into worker `thread_id`'s redo
  /// buffer. Must be called while the transaction still holds its write
  /// locks (see class comment). Returns the epoch ticket for WaitDurable.
  uint64_t LogCommit(uint32_t thread_id, const TxnDescriptor* t, uint64_t commit_ts);

  /// Block until every record tagged <= `ticket` is durable. Fiber-aware:
  /// inside a FiberScheduler it cooperatively yields so other workers run
  /// while this one waits out the group-commit interval. Returns false when
  /// the flusher crashed (fault injection) or was stopped first.
  bool WaitDurable(uint64_t ticket);

  /// Take a fuzzy checkpoint of every table in `db` and publish it in the
  /// manifest. Callable from any thread while transactions run; concurrent
  /// calls are serialized internally (they share the id counter and the
  /// manifest tmp file).
  Status Checkpoint(Database* db);

  /// Rebuild `db` (tables + indexes) from the directory's checkpoint and
  /// WAL, replaying commit records in commit-timestamp order and discarding
  /// the torn tail and any epoch that never completed. `db` must already
  /// contain the schema (same table ids) and, when no checkpoint covers the
  /// initial bulk-loaded image, that image itself; replay is idempotent over
  /// both. Callers should advance their commit clock to
  /// `stats->max_commit_ts` afterwards.
  static Status Recover(const std::string& log_dir, Database* db,
                        RecoveryStats* stats);

  bool enabled() const { return fd_ >= 0; }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  uint64_t durable_epoch() const {
    return durable_epoch_.load(std::memory_order_acquire);
  }
  /// Bytes of WAL made durable so far.
  uint64_t durable_bytes() const {
    return durable_bytes_.load(std::memory_order_acquire);
  }
  uint64_t records_logged() const {
    return records_logged_.load(std::memory_order_relaxed);
  }
  const LogOptions& options() const { return options_; }

 private:
  friend struct LogManagerTestPeer;

  struct WorkerBuf {
    SpinLatch latch;
    std::vector<char> buf;
    /// Highest epoch tag appended since the buffer was created; written under
    /// `latch` by LogCommit, read under `latch` by the flusher drain so it can
    /// detect stragglers (records tagged above the epoch being marked).
    uint64_t max_tag = 0;
  };

  void FlusherLoop();
  /// One group-commit cycle: cut the open epoch, drain, write, fsync, ack.
  void FlushOnce();
  void Crash();  // fault-injected death of the flusher

  LogOptions options_;
  int fd_ = -1;
  std::vector<CachePadded<WorkerBuf>> workers_;

  /// Epoch currently accepting appends; flusher cuts it with fetch_add.
  std::atomic<uint64_t> open_epoch_{1};
  /// Highest epoch whose records are all durable.
  std::atomic<uint64_t> durable_epoch_{0};
  std::atomic<uint64_t> durable_bytes_{0};
  std::atomic<uint64_t> records_logged_{0};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> stop_{false};

  std::mutex ack_mu_;
  std::condition_variable ack_cv_;    // signalled when durable_epoch_ advances
  std::condition_variable flush_cv_;  // wakes the flusher early on Stop

  std::vector<char> batch_;  // flusher-local assembly buffer
  /// Epoch of the newest mark in the WAL (flusher-thread-only). A straggler —
  /// a record that read its ticket after a cut but was drained into the batch
  /// marked with the older cut epoch — sits on disk tagged above this.
  uint64_t last_marked_epoch_ = 0;
  /// Highest epoch tag among records written to the WAL (flusher-thread-only).
  /// durable_epoch_ may only pass an epoch once a mark >= every flushed tag
  /// covers it; the empty-batch path writes that mark when stragglers exist.
  uint64_t max_flushed_tag_ = 0;
  std::mutex ckpt_mu_;  // serializes concurrent Checkpoint calls
  uint64_t next_checkpoint_id_ = 1;
  std::thread flusher_;
};

}  // namespace rocc
