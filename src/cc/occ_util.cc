#include "cc/occ_util.h"

#include <atomic>
#include <cstring>

#include "common/cacheline.h"
#include "common/tsan.h"

namespace rocc {

namespace {
constexpr int kCopyRetries = 16;
constexpr int kCtsSpins = 4096;
}  // namespace

ReadResult ReadRecordNoWait(const Row* row, void* out, uint64_t* tid_word) {
  for (int attempt = 0; attempt < kCopyRetries; attempt++) {
    const uint64_t v1 = row->tid.load(std::memory_order_acquire);
    if (TidWord::IsLocked(v1)) return ReadResult::kLocked;
    if (TidWord::IsAbsent(v1)) return ReadResult::kAbsent;
    // Seqlock copy: races with a committer's apply on purpose; the v1 == v2
    // recheck below discards any torn result (see common/tsan.h).
    TsanIgnoreReadsBegin();
    std::memcpy(out, row->Data(), row->payload_size);
    TsanIgnoreReadsEnd();
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t v2 = row->tid.load(std::memory_order_acquire);
    if (v1 == v2) {
      *tid_word = v1;
      return ReadResult::kOk;
    }
    CpuRelax();
  }
  return ReadResult::kContended;
}

uint64_t WaitForCommitTs(const TxnDescriptor* writer) {
  for (int i = 0; i < kCtsSpins; i++) {
    const uint64_t cts = writer->commit_ts.load(std::memory_order_acquire);
    if (cts != 0) return cts;
    if (writer->state.load(std::memory_order_acquire) == TxnState::kAborted) return 0;
    CpuRelax();
  }
  return 0;
}

}  // namespace rocc
