#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/cacheline.h"
#include "common/status.h"
#include "harness/stats.h"
#include "obs/obs.h"
#include "storage/database.h"
#include "txn/clock.h"
#include "txn/epoch.h"
#include "txn/txn.h"

namespace rocc {

class ContentionManager;
class LogManager;

namespace mv {
class VersionStore;
}  // namespace mv

/// Receiver for records produced by a range scan. Return false to stop the
/// scan early. `payload` points into a transaction-local scratch buffer valid
/// only for the duration of the call.
class ScanConsumer {
 public:
  virtual ~ScanConsumer() = default;
  virtual bool OnRecord(uint64_t key, const char* payload) = 0;
};

/// Pluggable serializable concurrency control.
///
/// The API is the DBx1000-style "one descriptor per in-flight transaction"
/// model: a worker thread calls Begin, issues operations against the returned
/// descriptor, then Commit or Abort. Any operation may return
/// Status::Aborted, after which the caller must call Abort (Commit performs
/// its own cleanup and retires the descriptor on both outcomes).
class ConcurrencyControl {
 public:
  virtual ~ConcurrencyControl() = default;

  virtual const char* Name() const = 0;

  /// Bind a worker thread's stats sink; call once per thread before Begin.
  virtual void AttachThread(uint32_t thread_id, TxnStats* stats) = 0;

  /// Attach a durability log (nullptr = run without durability, the default).
  /// Once attached, every committing transaction with writes appends a redo
  /// record while its write locks are held and blocks on the group-commit
  /// acknowledgement before Commit returns. Call before any worker begins.
  virtual void AttachLog(LogManager* log) { (void)log; }

  virtual TxnDescriptor* Begin(uint32_t thread_id) = 0;

  /// Begin a transaction declared read-only up front. On protocols with a
  /// multi-version store the descriptor's first read (point or scan) freezes
  /// a snapshot timestamp; every subsequent read — across any number of
  /// operations — is served at that same snapshot, and Commit is trivial
  /// (no validation, no locks, no WAL record). Write operations on such a
  /// descriptor return InvalidArgument once the snapshot is frozen. Without
  /// a version store this is just Begin: reads take the OCC path and Commit
  /// validates as usual, so callers need no fallback logic.
  virtual TxnDescriptor* BeginReadOnly(uint32_t thread_id) {
    TxnDescriptor* t = Begin(thread_id);
    if (t != nullptr) t->snapshot_reads = true;
    return t;
  }

  /// Point read by key; copies the row payload into `out` (row_size bytes).
  virtual Status Read(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                      void* out) = 0;

  /// Deferred write of `size` bytes at `field_offset` within the row payload.
  virtual Status Update(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                        const void* data, uint32_t size, uint32_t field_offset) = 0;

  /// Deferred insert of a full row payload.
  virtual Status Insert(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                        const void* payload) = 0;

  /// Deferred delete.
  virtual Status Remove(TxnDescriptor* t, uint32_t table_id, uint64_t key) = 0;

  /// Forward key-range scan. Visits visible records with
  /// start_key <= key < end_key (end_key 0 = unbounded), stopping after
  /// `limit` records when limit > 0 or when the consumer returns false.
  virtual Status Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                      uint64_t end_key, uint64_t limit, ScanConsumer* consumer) = 0;

  /// Forward key-range scan at a frozen snapshot timestamp: read-only bulk
  /// scans resolved through the multi-version row store never observe a
  /// committing writer and never validate-abort. Falls back to the plain
  /// Scan when the protocol has no version store, or when the transaction
  /// already has writes (a snapshot cannot overlay them). The first
  /// SnapshotScan freezes t->snapshot_ts; from then on the transaction is
  /// read-only (write operations return InvalidArgument).
  virtual Status SnapshotScan(TxnDescriptor* t, uint32_t table_id,
                              uint64_t start_key, uint64_t end_key,
                              uint64_t limit, ScanConsumer* consumer) {
    return Scan(t, table_id, start_key, end_key, limit, consumer);
  }

  /// Turn on the multi-version row store (call once, before any worker
  /// begins). Returns false when the protocol does not support it.
  virtual bool EnableMvcc() { return false; }

  /// The protocol's version store; null when MVCC is off or unsupported.
  virtual mv::VersionStore* version_store() { return nullptr; }

  /// Validate and apply. Returns Ok on commit, Aborted on validation failure;
  /// the descriptor is retired either way.
  virtual Status Commit(TxnDescriptor* t) = 0;

  /// Abandon a transaction during its read phase.
  virtual void Abort(TxnDescriptor* t) = 0;

  /// Structured cause of the thread's most recent aborted attempt, recorded
  /// at the abort site (kNone until the first abort after Begin). The retry
  /// layer (RunWithRetries / ContentionManager) keys its policy off this.
  virtual AbortReason LastAbortReason(uint32_t thread_id) const {
    (void)thread_id;
    return AbortReason::kNone;
  }

  /// The protocol's contention manager (abort-reason-aware backoff,
  /// starvation-escape escalation, retry telemetry). Null for protocols that
  /// predate the policy layer; RunWithRetries then falls back to a fixed
  /// randomized backoff.
  virtual ContentionManager* contention() { return nullptr; }

  /// Simulation hook: when `every` > 0, validation loops emit a cooperative
  /// yield every `every` units of validation work (records re-read or
  /// transactions examined). Under the fiber runner this makes validation
  /// TIME visible as exposure time, as it is on real parallel hardware —
  /// commits hold their write locks across the yields, exactly like a slow
  /// validator does on a real core. No-op by default.
  virtual void SetValidationPacing(uint32_t every) { (void)every; }
};

/// Shared machinery for the single-version OCC family (LRV, GWV, ROCC,
/// MVRCC): readset/writeset bookkeeping, consistent record reads, sorted
/// write locking, record-level readset validation, the write phase, and
/// epoch-based descriptor recycling.
///
/// Subclasses customise three hooks:
///  - Scan            : how scans are tracked (records vs. predicates)
///  - RegisterWrites  : where write intentions are published (per-range ring,
///                      global ring, or nowhere)
///  - ValidateScans   : how tracked scans are validated
class OccBase : public ConcurrencyControl {
 public:
  OccBase(Database* db, uint32_t num_threads);
  ~OccBase() override;

  void AttachThread(uint32_t thread_id, TxnStats* stats) override;
  void AttachLog(LogManager* log) override { log_ = log; }
  TxnDescriptor* Begin(uint32_t thread_id) override;
  Status Read(TxnDescriptor* t, uint32_t table_id, uint64_t key, void* out) override;
  Status Update(TxnDescriptor* t, uint32_t table_id, uint64_t key, const void* data,
                uint32_t size, uint32_t field_offset) override;
  Status Insert(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                const void* payload) override;
  Status Remove(TxnDescriptor* t, uint32_t table_id, uint64_t key) override;
  Status Commit(TxnDescriptor* t) override;
  void Abort(TxnDescriptor* t) override;

  Status SnapshotScan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                      uint64_t end_key, uint64_t limit,
                      ScanConsumer* consumer) override;
  bool EnableMvcc() override;
  mv::VersionStore* version_store() override { return mv_.get(); }

  Database* db() { return db_; }
  GlobalClock& clock() { return clock_; }
  EpochManager& epoch() { return epoch_; }

  void SetValidationPacing(uint32_t every) override { validation_pacing_ = every; }

  AbortReason LastAbortReason(uint32_t thread_id) const override {
    return ctxs_[thread_id]->last_abort_reason;
  }
  ContentionManager* contention() override { return contention_.get(); }

 protected:
  struct ThreadCtx {
    TxnStats local_stats;           // fallback sink when none is attached
    TxnStats* stats = nullptr;
    AbortReason last_abort_reason = AbortReason::kNone;  // of the current attempt
    // Range id a scan-validation abort was attributed to (kNoRange when the
    // abort had no range attribution); carried on the trace's abort event.
    uint32_t last_conflict_range = obs::kNoRange;
    std::vector<TxnDescriptor*> free_list;
    RetireList<TxnDescriptor> retired;
    std::vector<char> scratch;      // row-payload staging for scans/reads
    std::vector<char> local_image;  // staging for pending-insert local images
    std::vector<uint64_t> pending_keys;  // scan-window pending-insert slice
    std::vector<uint32_t> lock_order;    // writeset lock-ordering scratch
    uint64_t txn_seq = 0;
    uint64_t allocated = 0;
  };

  /// Publish the transaction's write intentions after the lock phase and
  /// before the commit timestamp is generated (Algorithm 1, steps 1-5).
  virtual void RegisterWrites(TxnDescriptor* t) = 0;

  /// Validate tracked scans after the readset (Algorithm 1, steps 11-26).
  /// Returns false when the transaction must abort.
  virtual bool ValidateScans(TxnDescriptor* t) = 0;

  /// Walk the index over [start_key, end_bound) delivering up to `limit`
  /// visible records (0 = unbounded) with OCC-consistent copies.
  /// Aborts (returns kAborted) when a dirty (locked) record is met, unless
  /// the record is this transaction's own write, in which case its local
  /// after-image is delivered.
  ///
  /// When `track_records` is set, each delivered record is appended to
  /// t->scan_records for LRV-style revalidation.
  /// `last_key`/`delivered` report the last key visited and the count;
  /// `consumer_stopped` reports that the consumer ended the scan early (the
  /// scan's logical extent then ends at last_key + 1).
  Status ScanRecords(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                     uint64_t end_bound, uint64_t limit, ScanConsumer* consumer,
                     bool track_records, uint64_t* last_key, uint64_t* delivered,
                     bool* consumer_stopped);

  TxnStats& stats(uint32_t thread_id) {
    ThreadCtx& ctx = *ctxs_[thread_id];
    return ctx.stats != nullptr ? *ctx.stats : ctx.local_stats;
  }

  /// Record the structured cause of the current attempt's abort: bumps the
  /// matching abort_* counter and latches the reason for LastAbortReason.
  /// First reason wins — every aborted attempt is counted exactly once, so
  /// the cause counters sum to `aborts` (checked by the runner and ctest).
  void NoteAbortCause(uint32_t thread_id, AbortReason reason) {
    ThreadCtx& ctx = *ctxs_[thread_id];
    if (ctx.last_abort_reason != AbortReason::kNone) return;
    ctx.last_abort_reason = reason;
    stats(thread_id).CountAbortCause(reason);
  }

  /// Serve a point read at the transaction's frozen snapshot, freezing
  /// t->snapshot_ts on the first read. No readset entry is recorded — the
  /// snapshot guarantees the value, so there is nothing to validate later.
  /// Returns Aborted (cause kSnapshotEvicted) when the pinned snapshot was
  /// evicted under prune pressure.
  Status SnapshotPointRead(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                           void* out);

  /// Trivial commit for a read-only transaction whose reads were all served
  /// at a frozen snapshot: no validation, no locks, no WAL record. Aborts
  /// (cause kSnapshotEvicted) when the snapshot was evicted mid-flight —
  /// mandatory final check, since a pruned chain can silently serve a
  /// too-new value to an evicted reader.
  Status CommitSnapshotReadOnly(TxnDescriptor* t);

  /// Record-level readset validation shared by every scheme.
  bool ValidateReadSet(TxnDescriptor* t);

  /// Lock the writeset in key order; resolves insert placeholders.
  /// On failure unlocks everything it locked and returns false.
  bool LockWriteSet(TxnDescriptor* t);

  /// Apply after-images, redo-log the writeset (when a log is attached),
  /// publish versions, release locks (commit path). Returns the log ticket
  /// for AwaitDurable (0 = nothing logged).
  uint64_t ApplyWritesAndUnlock(TxnDescriptor* t, uint64_t commit_ts);

  /// Append `t`'s redo record; must run while its write locks are still held
  /// so the WAL order respects write-read dependencies (see LogManager).
  /// Returns the WaitDurable ticket, 0 when no log is attached.
  uint64_t LogWrites(const TxnDescriptor* t, uint64_t commit_ts);

  /// Block until `ticket`'s epoch is durable, charging the wait and the
  /// begin -> durable latency to `s` (and a log_wait span to `thread_id`'s
  /// trace ring when sampled). No-op when ticket is 0. Returns the nanos
  /// spent waiting so the SLO capture can fold the wait into the attempt's
  /// total latency without re-reading the clock.
  uint64_t AwaitDurable(uint64_t ticket, uint64_t begin_nanos,
                        uint32_t thread_id, TxnStats& s);

  /// Tail-latency outlier capture (DESIGN.md §16.2): when the attempt's
  /// total latency (end - begin + log wait) exceeds the hot-reloadable
  /// obs_slo_us knob, attribute the violation to its slowest phase in `s`,
  /// and — when the 1/N countdown did NOT sample the attempt — retroactively
  /// force-emit its whole span set into the worker ring with kOutlierFlag.
  /// Reuses the phase timestamps the commit path already took: zero extra
  /// clock reads. Execute-only paths (read-only snapshot commit, read-phase
  /// abort) pass commit_start == validation_end == end_ns.
  void MaybeCaptureSlo(uint32_t tid, uint64_t txn_id, TxnStats& s,
                       uint64_t begin_ns, uint64_t commit_start,
                       uint64_t validation_end, uint64_t end_ns,
                       uint64_t log_wait_ns, AbortReason reason);

  /// Release locks without applying (abort path); removes insert placeholders.
  void UnlockWriteSet(TxnDescriptor* t);

  void FinishTxn(TxnDescriptor* t, TxnState final_state);

  /// Yield point for validation loops (see SetValidationPacing). `counter`
  /// is a caller-local unit count.
  void PaceValidation(uint32_t* counter) const;

  /// Materialise the transaction-local image of `key` (insert + later
  /// partial updates) into `out` (row_size bytes).
  void BuildLocalImage(const TxnDescriptor* t, uint32_t table_id, uint64_t key,
                       char* out) const;

  Database* db_;
  GlobalClock clock_;
  EpochManager epoch_;
  /// Multi-version row store; null until EnableMvcc(). The destructor runs
  /// a full GcQuiesce so no Row::versions pointer outlives the store's
  /// arenas (protocol instances over one Database are sequential).
  std::unique_ptr<mv::VersionStore> mv_;
  LogManager* log_ = nullptr;  // not owned; nullptr = durability off
  std::unique_ptr<ContentionManager> contention_;
  std::vector<std::unique_ptr<ThreadCtx>> ctxs_;
  uint32_t max_row_size_ = 0;
  uint32_t validation_pacing_ = 0;
};

}  // namespace rocc
