#pragma once

#include "cc/cc.h"
#include "core/txn_ring.h"

namespace rocc {

/// Options for the GWV baseline.
struct GwvOptions {
  /// Capacity of the single global recently-committed-transaction list.
  /// Windows wider than this abort conservatively, so the global ring is
  /// sized generously by default.
  uint32_t global_ring_capacity = 1 << 16;
};

/// Global Writeset Validation — the HyPer-style baseline (paper §I-A).
///
/// Writers push themselves into ONE global sequenced list before drawing
/// their commit timestamp (Fig. 2(a)). A scan keeps a predicate
/// {start, end, rd_ts} where rd_ts is the global list version at scan start;
/// at validation the transaction examines EVERY writer registered in
/// (rd_ts, v_ts] — related or not — and checks each of its writeset keys
/// against the predicate. The cost is proportional to the number of
/// concurrent update transactions, which is what makes GWV degrade under
/// write-intensive multi-core workloads (Fig. 1, Fig. 7).
class HyperGwv : public OccBase {
 public:
  HyperGwv(Database* db, uint32_t num_threads, GwvOptions options = {});

  const char* Name() const override { return "GWV"; }

  Status Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
              uint64_t end_key, uint64_t limit, ScanConsumer* consumer) override;

  TxnRing& global_list() { return global_list_; }

 protected:
  void RegisterWrites(TxnDescriptor* t) override;
  bool ValidateScans(TxnDescriptor* t) override;

 private:
  TxnRing global_list_;
};

}  // namespace rocc
