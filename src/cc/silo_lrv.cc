#include "cc/silo_lrv.h"

namespace rocc {

Status SiloLrv::Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                     uint64_t end_key, uint64_t limit, ScanConsumer* consumer) {
  ScanEntry entry;
  entry.table_id = table_id;
  entry.start_key = start_key;
  entry.limit = limit;
  entry.first_record = static_cast<uint32_t>(t->scan_records.size());

  uint64_t last_key = 0;
  uint64_t n = 0;
  bool stopped = false;
  Status st = ScanRecords(t, table_id, start_key, end_key, limit, consumer,
                          /*track_records=*/true, &last_key, &n, &stopped);
  if (!st.ok()) return st;

  // Only physical rows are tracked for revalidation; the delivered count `n`
  // may additionally include this transaction's own pending inserts.
  entry.num_records =
      static_cast<uint32_t>(t->scan_records.size()) - entry.first_record;
  // The revalidation bound: where this scan logically stopped. A limited or
  // consumer-terminated scan ends just past its last record; an exhausted
  // one covers the whole request.
  if ((limit != 0 && n >= limit) || stopped) {
    entry.end_key = last_key + 1;
    entry.limit = entry.num_records;
  } else {
    entry.end_key = end_key;  // 0 = unbounded, matches the original walk
  }
  t->scan_set.push_back(entry);
  return Status::Ok();
}

bool SiloLrv::RevalidateScan(TxnDescriptor* t, const ScanEntry& entry,
                             uint32_t* pace_counter) {
  TxnStats& s = stats(t->thread_id);
  bool conflict = false;
  uint64_t seen = 0;
  uint32_t cursor = entry.first_record;

  db_->GetIndex(entry.table_id)
      ->ScanRange(entry.start_key, entry.end_key == 0 ? ~0ULL : entry.end_key,
                  [&](uint64_t key, Row* row) -> bool {
                    (void)key;
                    const uint64_t cur = row->tid.load(std::memory_order_acquire);
                    if (TidWord::IsLocked(cur)) {
                      const int wi = t->FindWriteByRow(row);
                      if (wi < 0) {
                        conflict = true;  // locked by another committer
                        return false;
                      }
                      if (t->write_set[wi].kind == WriteEntry::Kind::kInsert) {
                        // Own insert placeholder: not indexed at scan time.
                        return true;
                      }
                      // The NET kind (newest chain entry) decides, exactly as
                      // the scan itself did: an update-then-delete chain is a
                      // delete, not an update.
                      const int li = t->FindLatestWriteByRow(row);
                      if (t->write_set[li].kind == WriteEntry::Kind::kDelete) {
                        // Deleted BEFORE the scan: the original pass skipped
                        // it, so skip it here too. Deleted AFTER the scan:
                        // it is the next recorded row — fall through and
                        // match it (its version is frozen under our lock).
                        const bool was_scanned =
                            seen < entry.num_records &&
                            t->scan_records[cursor + seen].row == row;
                        if (!was_scanned) return true;
                      }
                      // Own update/late-delete: compare the stripped word.
                    } else if (TidWord::IsAbsent(cur)) {
                      return true;  // tombstone, invisible in both passes
                    }
                    if (seen >= entry.num_records) {
                      conflict = true;  // a record appeared (phantom insert)
                      return false;
                    }
                    const ScanRecord& rec = t->scan_records[cursor + seen];
                    if (rec.row != row ||
                        (cur & ~TidWord::kLockBit) != rec.observed_tid) {
                      conflict = true;  // different row or changed version
                      return false;
                    }
                    seen++;
                    s.validated_records++;
                    PaceValidation(pace_counter);
                    if (entry.limit != 0 && seen >= entry.limit) return false;
                    return true;
                  });

  if (conflict) return false;
  // Fewer rows than before means a scanned record disappeared.
  return seen == entry.num_records;
}

bool SiloLrv::ValidateScans(TxnDescriptor* t) {
  uint32_t pace_counter = 0;
  for (const ScanEntry& entry : t->scan_set) {
    if (!RevalidateScan(t, entry, &pace_counter)) {
      NoteAbortCause(t->thread_id, AbortReason::kScanConflict);
      return false;
    }
  }
  return true;
}

}  // namespace rocc
