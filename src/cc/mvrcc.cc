#include "cc/mvrcc.h"

// Mvrcc is a thin behavioural variant of Rocc (see mvrcc.h); this translation
// unit anchors the header in the library.
