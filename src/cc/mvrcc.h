#pragma once

#include "core/rocc.h"

namespace rocc {

/// Deuteronomy-style multi-version range concurrency control comparator
/// (paper §VI, Fig. 13), modelled as the paper's own DBx1000 port does:
/// identical range lists and registration, but
///
///  (1) boundary ranges are treated as fully scanned — predicates drop their
///      precise [start, end) scope, so any overlapping writer in a partially
///      scanned range aborts the scan ("it causes more false aborts"), and
///  (2) the per-range lists are not ordered usefully for the validator, so
///      every registration in the examined window is charged as an examined
///      transaction.
///
/// The substitution from the true multi-version timestamp-ordering protocol
/// is recorded in DESIGN.md §3; it reproduces exactly the two deficits §VI
/// attributes to MVRCC.
///
/// MVRCC inherits ROCC's adaptive range table unchanged (DESIGN.md §10):
/// when RoccOptions::tuner.enabled is set, its predicates snapshot the
/// epoch-published table and fence predecessor rings exactly like ROCC's —
/// only the boundary imprecision above differs.
class Mvrcc : public Rocc {
 public:
  Mvrcc(Database* db, uint32_t num_threads, RoccOptions options)
      : Rocc(db, num_threads, std::move(options)) {}

  const char* Name() const override { return "MVRCC"; }

 protected:
  bool PreciseBoundaries() const override { return false; }
};

}  // namespace rocc
