#include "cc/cc.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "cc/occ_util.h"
#include "common/fiber.h"
#include "common/timer.h"
#include "harness/contention.h"
#include "log/log_manager.h"
#include "mv/version_store.h"
#include "sync/optiql.h"

namespace rocc {

namespace {
constexpr int kLockSpins = 128;
// Budget for the queued (optiql) acquire: the FIFO queue removes the CAS
// storm, so a head position is worth more attempts than a free-for-all spin —
// but the budget stays bounded because the sorted lock phase holds earlier
// write-set locks while waiting (DESIGN.md §13).
constexpr int kQueuedLockAttempts = 256;

uint64_t MakeTxnId(uint32_t thread_id, uint64_t seq) {
  return (static_cast<uint64_t>(thread_id) << 48) | (seq & ((1ULL << 48) - 1));
}
}  // namespace
OccBase::OccBase(Database* db, uint32_t num_threads)
    : db_(db), epoch_(num_threads),
      contention_(std::make_unique<ContentionManager>(num_threads)) {
  ctxs_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; i++) {
    ctxs_.push_back(std::make_unique<ThreadCtx>());
  }
  // A Database can outlive the protocol bound to it (benches re-bind fresh
  // protocol instances to one loaded table; recovery restores rows from the
  // WAL). Commit timestamps must dominate every version already installed in
  // the rows — otherwise a snapshot frozen at the young clock finds rows
  // whose version lies "in the future" with no chain behind them and misreads
  // live data as invisible. Seed the clock from the row high-water mark, the
  // same contract GlobalClock::AdvanceTo documents for recovery. (Plain OCC
  // never noticed: it only compares TID words for equality within one
  // instance's lifetime.)
  uint64_t max_version = 0;
  for (size_t tbl = 0; tbl < db_->NumTables(); tbl++) {
    max_row_size_ = std::max(max_row_size_, db_->GetTable(tbl)->row_size());
    db_->GetIndex(tbl)->ScanFrom(0, [&](uint64_t, Row* row) {
      const uint64_t v =
          TidWord::Version(row->tid.load(std::memory_order_relaxed));
      max_version = std::max(max_version, v);
      return true;
    });
  }
  clock_.AdvanceTo(max_version);
  for (auto& ctx : ctxs_) {
    ctx->scratch.resize(std::max<uint32_t>(max_row_size_, 8));
    ctx->local_image.resize(std::max<uint32_t>(max_row_size_, 8));
  }
}

OccBase::~OccBase() {
  // Sever every Row::versions pointer before the version arenas die: the
  // Database outlives this protocol instance, and the next protocol bound to
  // it must not inherit dangling chains.
  if (mv_ != nullptr) mv_->GcQuiesce(db_);
  for (auto& ctx : ctxs_) {
    ctx->retired.Reclaim(~0ULL, [&](TxnDescriptor* d) { delete d; });
    for (TxnDescriptor* d : ctx->free_list) delete d;
  }
}

void OccBase::PaceValidation(uint32_t* counter) const {
  if (validation_pacing_ == 0) return;
  if (++*counter >= validation_pacing_) {
    *counter = 0;
    CooperativeYield();
  }
}

void OccBase::AttachThread(uint32_t thread_id, TxnStats* sink) {
  ctxs_[thread_id]->stats = sink;
  contention_->AttachThread(thread_id, sink);
}

bool OccBase::EnableMvcc() {
  if (mv_ == nullptr) {
    mv_ = std::make_unique<mv::VersionStore>(
        &clock_, &epoch_, static_cast<uint32_t>(ctxs_.size()));
  }
  return true;
}

TxnDescriptor* OccBase::Begin(uint32_t thread_id) {
  ThreadCtx& ctx = *ctxs_[thread_id];
  const uint64_t min_active = epoch_.MinActive();
  ctx.retired.Reclaim(min_active,
                      [&](TxnDescriptor* d) { ctx.free_list.push_back(d); });
  if (mv_ != nullptr) {
    const uint64_t freed = mv_->ReclaimWorker(thread_id, min_active);
    if (freed > 0 && obs::Enabled()) {
      obs::WorkerEvent(thread_id, obs::EventType::kVersionGc, 0, freed, 0);
    }
  }
  TxnDescriptor* t;
  if (!ctx.free_list.empty()) {
    t = ctx.free_list.back();
    ctx.free_list.pop_back();
  } else {
    t = new TxnDescriptor();
    ctx.allocated++;
  }
  epoch_.Enter(thread_id);
  t->Reset(MakeTxnId(thread_id, ++ctx.txn_seq), thread_id, clock_.Current());
  t->begin_nanos = NowNanos();
  t->is_scan_txn = false;
  ctx.last_abort_reason = AbortReason::kNone;
  ctx.last_conflict_range = obs::kNoRange;
  obs::TxnBegin(thread_id, t->begin_nanos, t->txn_id);
  return t;
}

Status OccBase::Read(TxnDescriptor* t, uint32_t table_id, uint64_t key, void* out) {
  // Declared-read-only transactions route every point read through the
  // frozen snapshot: no readset entry, no validation at commit, and a locked
  // (committing) writer never aborts the reader — the handshake in
  // ReadAtSnapshot resolves it from the pre-image chain instead. The HasWrites
  // guard keeps the descriptor usable as a plain OCC transaction when the
  // caller wrote before reading (the snapshot could not overlay those writes).
  if (t->snapshot_reads && mv_ != nullptr && !t->HasWrites()) {
    return SnapshotPointRead(t, table_id, key, out);
  }
  Row* row = db_->GetIndex(table_id)->Get(key);
  bool have_base = false;
  if (row != nullptr) {
    uint64_t tidw = 0;
    switch (ReadRecordNoWait(row, out, &tidw)) {
      case ReadResult::kOk:
        t->read_set.push_back({row, tidw});
        have_base = true;
        break;
      case ReadResult::kLocked:
        NoteAbortCause(t->thread_id, AbortReason::kDirtyRead);
        return Status::Aborted("dirty read");
      case ReadResult::kContended:
        // The record is not dirty — it kept CHANGING past the retry budget.
        // Account it as unresolved contention, not as a missing/locked row,
        // so the retry policy and the abort-cause table see the truth.
        NoteAbortCause(t->thread_id, AbortReason::kUnresolved);
        return Status::Aborted("contended read");
      case ReadResult::kAbsent:
        break;
    }
  }
  // Overlay this transaction's own pending writes: the newest entry decides
  // visibility, and the per-key chain replays the partial images in
  // chronological order.
  const int wi = t->FindWrite(table_id, key);
  if (wi >= 0) {
    if (t->write_set[wi].kind == WriteEntry::Kind::kDelete) {
      return Status::NotFound();
    }
    t->ReplayChain(wi, static_cast<char*>(out));
    return Status::Ok();
  }
  if (!have_base) return Status::NotFound();
  return Status::Ok();
}

Status OccBase::Update(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                       const void* data, uint32_t size, uint32_t field_offset) {
  if (t->snapshot_ts != 0) {
    return Status::InvalidArgument("snapshot transaction is read-only");
  }
  const Table* tab = db_->GetTable(table_id);
  if (field_offset + size > tab->row_size()) {
    return Status::InvalidArgument("update exceeds row payload");
  }
  Row* row = nullptr;
  const int wi = t->FindWrite(table_id, key);
  if (wi >= 0) {
    if (t->write_set[wi].kind == WriteEntry::Kind::kDelete) return Status::NotFound();
    row = t->write_set[wi].row;  // may still be null for a pending insert
  } else {
    row = db_->GetIndex(table_id)->Get(key);
    if (row == nullptr || row->IsAbsent()) return Status::NotFound();
  }
  WriteEntry we;
  we.row = row;
  we.key = key;
  we.table_id = table_id;
  we.kind = WriteEntry::Kind::kUpdate;
  we.locked = false;
  we.data_offset = t->AppendImage(data, size);
  we.data_size = size;
  we.field_offset = field_offset;
  t->AppendWrite(we);
  return Status::Ok();
}

Status OccBase::Insert(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                       const void* payload) {
  if (t->snapshot_ts != 0) {
    return Status::InvalidArgument("snapshot transaction is read-only");
  }
  if (t->FindWrite(table_id, key) >= 0) return Status::KeyExists();
  Row* existing = db_->GetIndex(table_id)->Get(key);
  if (existing != nullptr && !existing->IsAbsent()) return Status::KeyExists();
  const Table* tab = db_->GetTable(table_id);
  WriteEntry we;
  we.row = nullptr;  // placeholder is created at lock time
  we.key = key;
  we.table_id = table_id;
  we.kind = WriteEntry::Kind::kInsert;
  we.locked = false;
  we.data_offset = t->AppendImage(payload, tab->row_size());
  we.data_size = tab->row_size();
  we.field_offset = 0;
  t->AppendWrite(we);
  return Status::Ok();
}

Status OccBase::Remove(TxnDescriptor* t, uint32_t table_id, uint64_t key) {
  if (t->snapshot_ts != 0) {
    return Status::InvalidArgument("snapshot transaction is read-only");
  }
  Row* row = nullptr;
  const int wi = t->FindWrite(table_id, key);
  if (wi >= 0) {
    if (t->write_set[wi].kind == WriteEntry::Kind::kDelete) {
      return Status::NotFound();
    }
    // Null when the chain began with a pending insert: deleting one's own
    // pending insert is allowed and cancels it (AppendWrite drops the key
    // from the pending-insert view).
    row = t->write_set[wi].row;
  } else {
    row = db_->GetIndex(table_id)->Get(key);
    if (row == nullptr || row->IsAbsent()) return Status::NotFound();
  }
  WriteEntry we;
  we.row = row;
  we.key = key;
  we.table_id = table_id;
  we.kind = WriteEntry::Kind::kDelete;
  we.locked = false;
  we.data_offset = 0;
  we.data_size = 0;
  we.field_offset = 0;
  t->AppendWrite(we);
  return Status::Ok();
}

Status OccBase::ScanRecords(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                            uint64_t end_bound, uint64_t limit, ScanConsumer* consumer,
                            bool track_records, uint64_t* last_key,
                            uint64_t* delivered, bool* consumer_stopped) {
  ThreadCtx& ctx = *ctxs_[t->thread_id];
  char* buf = ctx.scratch.data();
  char* local = ctx.local_image.data();
  Status result = Status::Ok();
  uint64_t n = 0;
  uint64_t lk = start_key;
  bool stopped = false;
  const uint64_t effective_end = end_bound == 0 ? ~0ULL : end_bound;

  // Read-your-own-writes for scans: pending inserts of this transaction are
  // not yet indexed, so slice its sorted pending-insert view over the
  // scanned window and merge it into the index stream in key order. The
  // slice and the image staging both live in per-thread scratch; the scan
  // itself allocates nothing.
  std::vector<uint64_t>& pending = ctx.pending_keys;
  pending.clear();
  t->PendingInsertKeysInto(table_id, start_key, effective_end, &pending);
  size_t pi = 0;
  // Delivers this transaction's local image of `key`; false = stop the scan.
  auto deliver_local = [&](uint64_t key) -> bool {
    BuildLocalImage(t, table_id, key, local);
    n++;
    lk = key;
    const bool want_more = consumer == nullptr || consumer->OnRecord(key, local);
    if (!want_more) {
      stopped = true;
      return false;
    }
    return !(limit != 0 && n >= limit);
  };
  // Delivers pending inserted keys below `bound`; false = stop the scan.
  auto flush_pending_below = [&](uint64_t bound) -> bool {
    while (pi < pending.size() && pending[pi] < bound) {
      if (!deliver_local(pending[pi++])) return false;
    }
    return true;
  };

  db_->GetIndex(table_id)->ScanRange(
      start_key, effective_end,
      [&](uint64_t key, Row* row) -> bool {
        if (!flush_pending_below(key)) return false;
        if (pi < pending.size() && pending[pi] == key) {
          // A pending insert's key turned visible in the index concurrently
          // (e.g. another transaction's placeholder). This transaction's own
          // write wins: deliver the local image exactly once and never read
          // — or track — the base record, whose state is someone else's.
          pi++;
          return deliver_local(key);
        }
        uint64_t tidw = 0;
        switch (ReadRecordNoWait(row, buf, &tidw)) {
          case ReadResult::kAbsent:
            return true;  // tombstone: skip
          case ReadResult::kLocked:
            // Per the paper, a scanned record locked by a committing writer
            // is dirty and the scanning transaction aborts immediately.
            NoteAbortCause(t->thread_id, AbortReason::kDirtyRead);
            result = Status::Aborted("dirty scan");
            return false;
          case ReadResult::kContended:
            // Unlocked but changing past the retry budget: unresolved
            // contention, distinct from a dirty (locked) record.
            NoteAbortCause(t->thread_id, AbortReason::kUnresolved);
            result = Status::Aborted("contended scan");
            return false;
          case ReadResult::kOk:
            break;
        }
        // Overlay own pending writes: the newest entry decides visibility,
        // the chain replays partial images chronologically.
        const int wi = t->FindWrite(table_id, key);
        if (wi >= 0) {
          if (t->write_set[wi].kind == WriteEntry::Kind::kDelete) return true;
          t->ReplayChain(wi, buf);
        }
        if (track_records) t->scan_records.push_back({row, tidw});
        n++;
        lk = key;
        const bool want_more = consumer == nullptr || consumer->OnRecord(key, buf);
        if (!want_more) {
          stopped = true;
          return false;
        }
        return !(limit != 0 && n >= limit);
      });

  // Pending inserts beyond the last indexed key still belong to the window.
  if (result.ok() && !stopped && !(limit != 0 && n >= limit)) {
    flush_pending_below(effective_end);
  }

  stats(t->thread_id).scanned_records += n;
  *last_key = lk;
  *delivered = n;
  *consumer_stopped = stopped;
  return result;
}

void OccBase::BuildLocalImage(const TxnDescriptor* t, uint32_t table_id,
                              uint64_t key, char* out) const {
  std::memset(out, 0, db_->GetTable(table_id)->row_size());
  const int wi = t->FindWrite(table_id, key);
  if (wi >= 0 && t->write_set[wi].kind != WriteEntry::Kind::kDelete) {
    t->ReplayChain(wi, out);
  }
}

bool OccBase::ValidateReadSet(TxnDescriptor* t) {
  TxnStats& s = stats(t->thread_id);
  for (const ReadEntry& re : t->read_set) {
    s.validated_records++;
    const uint64_t cur = re.row->tid.load(std::memory_order_acquire);
    if (TidWord::IsLocked(cur)) {
      if (t->FindWriteByRow(re.row) < 0) return false;  // locked by another txn
      if ((cur & ~TidWord::kLockBit) != re.observed_tid) return false;
    } else if (cur != re.observed_tid) {
      return false;
    }
  }
  return true;
}

bool OccBase::LockWriteSet(TxnDescriptor* t) {
  auto& ws = t->write_set;
  std::vector<uint32_t>& order = ctxs_[t->thread_id]->lock_order;
  order.resize(ws.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (ws[a].table_id != ws[b].table_id) return ws[a].table_id < ws[b].table_id;
    if (ws[a].key != ws[b].key) return ws[a].key < ws[b].key;
    return a < b;  // stable: chronological within a key
  });

  bool holds_locks = false;
  for (size_t oi = 0; oi < order.size(); oi++) {
    WriteEntry& we = ws[order[oi]];
    if (oi > 0) {
      const WriteEntry& prev = ws[order[oi - 1]];
      if (prev.table_id == we.table_id && prev.key == we.key) {
        we.row = prev.row;  // first occurrence holds the lock
        continue;
      }
    }
    if (we.kind == WriteEntry::Kind::kInsert) {
      Table* tab = db_->GetTable(we.table_id);
      OrderedIndex* idx = db_->GetIndex(we.table_id);
      Row* placeholder = tab->CreatePlaceholderRow(we.key);
      Status st = idx->Insert(we.key, placeholder);
      if (st.ok()) {
        we.row = placeholder;
        we.locked = true;
        holds_locks = true;
        t->BindRow(static_cast<int32_t>(order[oi]), placeholder);
        continue;
      }
      // Key already indexed: resurrect an unlocked tombstone, else conflict.
      Row* existing = idx->Get(we.key);
      if (existing == nullptr || !existing->TryLock()) return false;
      if (!existing->IsAbsent()) {
        existing->Unlock();
        return false;  // live duplicate
      }
      we.row = existing;
      we.locked = true;
      holds_locks = true;
      t->BindRow(static_cast<int32_t>(order[oi]), existing);
    } else {
      const int budget =
          sync::QueueCapable() ? kQueuedLockAttempts : kLockSpins;
      // A waiter that holds no earlier write-set locks blocks nobody, so it
      // rides a stripe queue out even under a protected quiesce.
      if (!we.row->LockContended(budget, /*cancelable=*/holds_locks)) {
        return false;
      }
      we.locked = true;
      holds_locks = true;
      if (we.row->IsAbsent()) return false;  // deleted under us; cleanup unlocks
    }
  }
  return true;
}

void OccBase::UnlockWriteSet(TxnDescriptor* t) {
  for (WriteEntry& we : t->write_set) {
    if (!we.locked) continue;
    we.locked = false;
    if (we.kind == WriteEntry::Kind::kInsert &&
        TidWord::Version(we.row->tid.load(std::memory_order_relaxed)) == 0) {
      // Fresh placeholder: hide it, then unlink it. A racing reader that
      // still holds the pointer sees absent+unlocked and skips it. A
      // RESURRECTED tombstone (version > 0) is instead restored by a plain
      // unlock — with versions on its chain must stay index-reachable for
      // older snapshots, and either way its delete version is not ours to
      // erase.
      we.row->tid.store(TidWord::kAbsentBit, std::memory_order_release);
      db_->GetIndex(we.table_id)->Remove(we.key);
    } else {
      we.row->Unlock();
    }
  }
}

uint64_t OccBase::LogWrites(const TxnDescriptor* t, uint64_t commit_ts) {
  if (log_ == nullptr || t->write_set.empty()) return 0;
  return log_->LogCommit(t->thread_id, t, commit_ts);
}

uint64_t OccBase::AwaitDurable(uint64_t ticket, uint64_t begin_nanos,
                               uint32_t thread_id, TxnStats& s) {
  if (ticket == 0) return 0;
  s.log_records++;
  // Async mode acknowledges from memory — WaitDurable returns immediately —
  // so counting it as a durable ack would pass off in-memory latency as
  // durable-ack latency. Leave the durable_* stats at zero.
  if (!log_->options().sync_ack) return 0;
  const uint64_t wait_start = NowNanos();
  obs::HeartbeatPhase(thread_id, obs::Phase::kLogWait, wait_start);
  const bool durable = log_->WaitDurable(ticket);
  const uint64_t now = NowNanos();
  s.durable_wait_ns += now - wait_start;
  if (obs::Enabled()) {
    s.phase_log_wait.Record(now - wait_start);
    obs::SpanEvent(thread_id, obs::Phase::kLogWait, wait_start, now);
  }
  if (durable) {
    s.durable_acks++;
    s.latency_durable.Record(now - begin_nanos);
  } else {
    s.durable_ack_failures++;
  }
  return now - wait_start;
}

void OccBase::MaybeCaptureSlo(uint32_t tid, uint64_t txn_id, TxnStats& s,
                              uint64_t begin_ns, uint64_t commit_start,
                              uint64_t validation_end, uint64_t end_ns,
                              uint64_t log_wait_ns, AbortReason reason) {
  obs::FlightRecorder* r = obs::Recorder();
  if (r == nullptr) return;
  const uint64_t slo_ns = r->SloNanos();
  if (slo_ns == 0) return;
  const uint64_t total = (end_ns - begin_ns) + log_wait_ns;
  if (total <= slo_ns) return;
  // Slowest-phase attribution from the timestamps the commit path already
  // took. The first four Phase values are exactly the commit pipeline, so
  // the duration index doubles as the Phase.
  const uint64_t durs[TxnStats::kNumSloPhases] = {
      commit_start - begin_ns, validation_end - commit_start,
      end_ns - validation_end, log_wait_ns};
  uint32_t slowest = 0;
  for (uint32_t p = 1; p < TxnStats::kNumSloPhases; p++) {
    if (durs[p] > durs[slowest]) slowest = p;
  }
  s.slo_violations[slowest][AbortReasonColumn(reason)]++;
  s.latency_slo.Record(total);
  // Retroactive capture: a sampled attempt already has its spans in the
  // ring; an unsampled one gets them force-emitted now, tagged with
  // kOutlierFlag. The log-wait span is reconstructed as [end, end + wait] —
  // its true start trails `end_ns` by the nanoseconds FinishTxn took.
  if (!r->IsSampled(tid)) {
    uint64_t start = begin_ns;
    const uint64_t ends[TxnStats::kNumSloPhases] = {
        commit_start, validation_end, end_ns, end_ns + log_wait_ns};
    for (uint32_t p = 0; p < TxnStats::kNumSloPhases; p++) {
      if (ends[p] > start) {
        r->Emit(tid, obs::EventType::kSpan,
                static_cast<uint8_t>(p) | obs::kOutlierFlag, start,
                ends[p] - start, txn_id, 0);
      }
      start = ends[p];
    }
  }
  const uint64_t total_us = total / 1000;
  r->Emit(tid, obs::EventType::kSloViolation,
          obs::SloDetail(static_cast<obs::Phase>(slowest),
                         static_cast<uint8_t>(reason)),
          end_ns + log_wait_ns, total, txn_id,
          total_us > 0xFFFFFFFFull ? 0xFFFFFFFFu
                                   : static_cast<uint32_t>(total_us));
}

uint64_t OccBase::ApplyWritesAndUnlock(TxnDescriptor* t, uint64_t commit_ts) {
  // MVCC pre-pass: link the pre-image of every locked row BEFORE any payload
  // byte changes, then fence (ReadAtSnapshot's locked-row handshake relies
  // on install-before-apply). The chronologically-first write entry of each
  // key (prev < 0) identifies its row exactly once.
  if (mv_ != nullptr) {
    TxnStats& s = stats(t->thread_id);
    const uint64_t before = s.mv_versions_installed;
    for (const WriteEntry& we : t->write_set) {
      if (we.prev >= 0 || we.row == nullptr) continue;
      mv_->InstallPredecessor(t->thread_id, we.row, &s);
    }
    mv::VersionStore::PublishFence();
    const uint64_t installed = s.mv_versions_installed - before;
    if (installed > 0 && obs::Enabled()) {
      obs::VersionInstall(t->thread_id, NowNanos(), installed);
    }
  }
  // Apply after-images in chronological order (multiple partial updates of
  // one row compose left to right).
  for (const WriteEntry& we : t->write_set) {
    if (we.kind == WriteEntry::Kind::kDelete || we.row == nullptr) continue;
    std::memcpy(we.row->Data() + we.field_offset, t->ImageAt(we.data_offset),
                we.data_size);
  }
  // Redo-log the writeset while every write lock is still held: a later
  // transaction can only observe these writes after the locks drop below,
  // so its own record lands in the WAL (and in a group-commit epoch) no
  // earlier than this one — recovery's whole-epoch prefix stays
  // dependency-closed (see LogManager's class comment).
  const uint64_t log_ticket = LogWrites(t, commit_ts);
  for (WriteEntry& we : t->write_set) {
    if (!we.locked) continue;
    we.locked = false;
    // The locked entry is the chronologically-first write of its key; the
    // commit decision must follow the NET kind — the newest entry in the
    // chain — or an update-then-delete chain would commit as a live update.
    const int li = t->FindWrite(we.table_id, we.key);
    if (li >= 0 && t->write_set[li].kind == WriteEntry::Kind::kDelete) {
      // With versions on, the tombstone must STAY indexed: a snapshot older
      // than this delete still resolves the row through its chain, and an
      // unindexed row is unreachable. GcQuiesce unindexes it once no
      // snapshot can need it. (The resurrect path in LockWriteSet already
      // handles indexed tombstones.)
      if (mv_ == nullptr) db_->GetIndex(we.table_id)->Remove(we.key);
      we.row->UnlockAsDeleted(commit_ts);
    } else {
      we.row->UnlockWithVersion(commit_ts);
    }
  }
  return log_ticket;
}

void OccBase::FinishTxn(TxnDescriptor* t, TxnState final_state) {
  t->state.store(final_state, std::memory_order_release);
  ThreadCtx& ctx = *ctxs_[t->thread_id];
  const uint32_t thread_id = t->thread_id;
  if (mv_ != nullptr && t->snapshot_ts != 0) {
    mv_->ReleaseSnapshot(thread_id);
  }
  ctx.retired.Retire(t, epoch_.Current());
  epoch_.Exit(thread_id);
}

Status OccBase::SnapshotPointRead(TxnDescriptor* t, uint32_t table_id,
                                  uint64_t key, void* out) {
  // The first read freezes the snapshot; every later read of this
  // transaction — point or scan — shares the same pinned timestamp.
  if (t->snapshot_ts == 0) {
    t->snapshot_ts = mv_->AcquireSnapshot(t->thread_id);
  }
  TxnStats& s = stats(t->thread_id);
  s.mv_snapshot_point_reads++;
  Row* row = db_->GetIndex(table_id)->Get(key);
  mv::SnapshotRead r = mv::SnapshotRead::kInvisible;
  if (row != nullptr) {
    r = mv_->ReadAtSnapshot(row, t->snapshot_ts, out, &s);
  }
  // Eviction check AFTER the chain read but BEFORE interpreting the result:
  // a pruner that evicted this snapshot may have freed exactly the node the
  // read needed, faking invisibility — or the handshake may have served a
  // version newer than the snapshot. The slot-coherence argument
  // (DESIGN.md §14.3) guarantees an evicted reader observes the sentinel
  // here, so the transient wrong value is discarded by the abort — the same
  // discipline OCC applies to dirty reads.
  if (mv_->SnapshotEvicted(t->thread_id)) {
    NoteAbortCause(t->thread_id, AbortReason::kSnapshotEvicted);
    return Status::Aborted("snapshot evicted");
  }
  if (r == mv::SnapshotRead::kInvisible) return Status::NotFound();
  return Status::Ok();
}

Status OccBase::CommitSnapshotReadOnly(TxnDescriptor* t) {
  TxnStats& s = stats(t->thread_id);
  const bool scan_txn = t->is_scan_txn;
  const uint32_t tid = t->thread_id;
  const uint64_t txn_id = t->txn_id;
  const uint64_t begin_nanos = t->begin_nanos;
  // Mandatory final eviction check: every read since the last check is only
  // trustworthy if the snapshot stayed pinned through it. FinishTxn releases
  // the slot (clearing a sentinel along the way), so this is the last point
  // where the eviction is observable.
  if (mv_->SnapshotEvicted(tid)) {
    NoteAbortCause(tid, AbortReason::kSnapshotEvicted);
    FinishTxn(t, TxnState::kAborted);
    const uint64_t end = NowNanos();
    s.abort_ns += end - begin_nanos;
    s.aborts++;
    if (scan_txn) s.scan_txn_aborts++;
    if (obs::Enabled()) {
      const ThreadCtx& ctx = *ctxs_[tid];
      obs::SpanEvent(tid, obs::Phase::kExecute, begin_nanos, end, txn_id);
      obs::TxnAbort(tid, end, txn_id,
                    static_cast<uint8_t>(ctx.last_abort_reason),
                    ctx.last_conflict_range);
    }
    MaybeCaptureSlo(tid, txn_id, s, begin_nanos, end, end, end, 0,
                    AbortReason::kSnapshotEvicted);
    obs::HeartbeatClear(tid);
    return Status::Aborted("snapshot evicted");
  }
  FinishTxn(t, TxnState::kCommitted);
  const uint64_t end = NowNanos();
  s.read_write_ns += end - begin_nanos;
  s.commits++;
  s.mv_snapshot_txns++;
  s.latency_all.Record(end - begin_nanos);
  if (scan_txn) {
    s.scan_txn_commits++;
    s.latency_scan.Record(end - begin_nanos);
  }
  if (obs::Enabled()) {
    // The whole transaction is one execute phase: no validate, no apply.
    s.phase_execute.Record(end - begin_nanos);
    obs::SpanEvent(tid, obs::Phase::kExecute, begin_nanos, end, txn_id);
    obs::TxnCommit(tid, end, txn_id, scan_txn);
  }
  MaybeCaptureSlo(tid, txn_id, s, begin_nanos, end, end, end, 0,
                  AbortReason::kNone);
  obs::HeartbeatClear(tid);
  return Status::Ok();
}

Status OccBase::Commit(TxnDescriptor* t) {
  // Read-only snapshot transactions commit trivially: every read was served
  // at the frozen snapshot, so there is nothing to validate, no lock to
  // take, no commit timestamp to draw, and no WAL record to write.
  // (snapshot_ts != 0 implies mv_ != nullptr; writes are rejected once the
  // snapshot is frozen, so HasWrites() can only hold for descriptors that
  // wrote before their first read and never froze one.)
  if (t->snapshot_ts != 0 && !t->HasWrites()) {
    return CommitSnapshotReadOnly(t);
  }
  TxnStats& s = stats(t->thread_id);
  const bool scan_txn = t->is_scan_txn;
  const uint32_t tid = t->thread_id;
  const uint64_t txn_id = t->txn_id;
  const uint64_t begin_nanos = t->begin_nanos;
  const uint64_t commit_start = NowNanos();
  obs::HeartbeatPhase(tid, obs::Phase::kValidate, commit_start);

  t->state.store(TxnState::kValidating, std::memory_order_release);
  bool ok = true;
  uint64_t cts = 0;
  // Writers announce their commit window to the watermark so snapshot
  // acquirers can prove every in-flight cts exceeds their snapshot.
  const bool mv_window = mv_ != nullptr && t->HasWrites();
  if (t->HasWrites()) {
    ok = LockWriteSet(t);
    if (ok) {
      // The write set is final once every lock is held: freeze the sorted
      // key fingerprints that validators will probe against, then publish.
      t->FreezeWriteFingerprints();
      RegisterWrites(t);  // Algorithm 1 steps 1-4: lock, then register
    } else {
      NoteAbortCause(t->thread_id, AbortReason::kLockFail);
    }
  }
  if (ok) {
    // Slot publish must precede the timestamp draw (clock.h, invariant i).
    if (mv_window) mv_->BeginCommit(tid);
    cts = clock_.Next();  // step 5: serialization point
    t->commit_ts.store(cts, std::memory_order_release);
    if (!ValidateReadSet(t)) {
      NoteAbortCause(t->thread_id, AbortReason::kReadValidation);
      ok = false;
    } else {
      ok = ValidateScans(t);  // protocols count their own abort causes
    }
  }
  const uint64_t validation_end = NowNanos();
  obs::HeartbeatPhase(tid, obs::Phase::kWriteApply, validation_end);

  if (ok) {
    uint64_t log_ticket = 0;
    if (t->HasWrites()) log_ticket = ApplyWritesAndUnlock(t, cts);
    // Slot clears only after every write is applied and every lock dropped:
    // once the watermark passes cts, readers at snapshots >= cts must find
    // the new versions in place.
    if (mv_window) mv_->EndCommit(tid);
    FinishTxn(t, TxnState::kCommitted);
    const uint64_t end = NowNanos();
    s.validation_ns += validation_end - commit_start;
    s.read_write_ns += (commit_start - begin_nanos) + (end - validation_end);
    s.commits++;
    s.latency_all.Record(end - begin_nanos);
    if (scan_txn) {
      s.scan_txn_commits++;
      s.latency_scan.Record(end - begin_nanos);
    }
    if (obs::Enabled()) {
      // Phase breakdown from the timestamps this path already takes; spans
      // only land in the ring for sampled transactions.
      s.phase_execute.Record(commit_start - begin_nanos);
      s.phase_validate.Record(validation_end - commit_start);
      s.phase_apply.Record(end - validation_end);
      obs::SpanEvent(tid, obs::Phase::kExecute, begin_nanos, commit_start, txn_id);
      obs::SpanEvent(tid, obs::Phase::kValidate, commit_start, validation_end, txn_id);
      obs::SpanEvent(tid, obs::Phase::kWriteApply, validation_end, end, txn_id);
      obs::TxnCommit(tid, end, txn_id, scan_txn);
    }
    // The group-commit wait happens after the in-memory commit is fully
    // published (locks dropped, descriptor retired) so concurrent workers
    // are never stalled behind this worker's fsync batch.
    const uint64_t log_wait_ns = AwaitDurable(log_ticket, begin_nanos, tid, s);
    MaybeCaptureSlo(tid, txn_id, s, begin_nanos, commit_start, validation_end,
                    end, log_wait_ns, AbortReason::kNone);
    obs::HeartbeatClear(tid);
    return Status::Ok();
  }

  UnlockWriteSet(t);
  // The slot was only occupied if the timestamp draw happened; clear it
  // after the locks drop, same as the commit path.
  if (mv_window && cts != 0) mv_->EndCommit(tid);
  FinishTxn(t, TxnState::kAborted);
  const uint64_t end = NowNanos();
  s.abort_ns += end - begin_nanos;
  s.aborts++;
  if (scan_txn) s.scan_txn_aborts++;
  if (obs::Enabled()) {
    const ThreadCtx& ctx = *ctxs_[tid];
    obs::SpanEvent(tid, obs::Phase::kExecute, begin_nanos, commit_start, txn_id);
    obs::SpanEvent(tid, obs::Phase::kValidate, commit_start, validation_end, txn_id);
    obs::TxnAbort(tid, end, txn_id,
                  static_cast<uint8_t>(ctx.last_abort_reason),
                  ctx.last_conflict_range);
  }
  MaybeCaptureSlo(tid, txn_id, s, begin_nanos, commit_start, validation_end,
                  end, 0, ctxs_[tid]->last_abort_reason);
  obs::HeartbeatClear(tid);
  return Status::Aborted();
}

Status OccBase::SnapshotScan(TxnDescriptor* t, uint32_t table_id,
                             uint64_t start_key, uint64_t end_key,
                             uint64_t limit, ScanConsumer* consumer) {
  // A snapshot cannot overlay this transaction's own uncommitted writes;
  // such transactions take the validating scan path instead (and MVCC-off
  // protocols always do).
  if (mv_ == nullptr || t->HasWrites()) {
    return Scan(t, table_id, start_key, end_key, limit, consumer);
  }
  if (t->snapshot_ts == 0) {
    t->snapshot_ts = mv_->AcquireSnapshot(t->thread_id);
  }
  const uint64_t snapshot = t->snapshot_ts;
  ThreadCtx& ctx = *ctxs_[t->thread_id];
  char* buf = ctx.scratch.data();
  TxnStats& s = stats(t->thread_id);
  const uint64_t chain_reads_before = s.mv_chain_reads;
  const uint64_t start_ns = obs::Sampled(t->thread_id) ? NowNanos() : 0;
  uint64_t n = 0;
  const uint64_t effective_end = end_key == 0 ? ~0ULL : end_key;
  // No read set, no predicates, no locks: every row resolves to its newest
  // version <= snapshot, so there is nothing to validate at commit and the
  // scan can never abort — regardless of concurrent writers.
  db_->GetIndex(table_id)->ScanRange(
      start_key, effective_end, [&](uint64_t key, Row* row) -> bool {
        switch (mv_->ReadAtSnapshot(row, snapshot, buf, &s)) {
          case mv::SnapshotRead::kInvisible:
            return true;
          case mv::SnapshotRead::kCurrent:
          case mv::SnapshotRead::kChain:
            break;
        }
        n++;
        const bool want_more = consumer == nullptr || consumer->OnRecord(key, buf);
        if (!want_more) return false;
        return !(limit != 0 && n >= limit);
      });
  // Same eviction discipline as SnapshotPointRead: if the pinned snapshot
  // was evicted mid-scan, the delivered records may mix versions — abort
  // before reporting the scan as complete.
  if (mv_->SnapshotEvicted(t->thread_id)) {
    NoteAbortCause(t->thread_id, AbortReason::kSnapshotEvicted);
    return Status::Aborted("snapshot evicted");
  }
  s.scanned_records += n;
  s.mv_snapshot_scans++;
  s.mv_snapshot_records += n;
  if (start_ns != 0) {
    obs::SnapshotScan(t->thread_id, start_ns, NowNanos(), n,
                      static_cast<uint32_t>(s.mv_chain_reads -
                                            chain_reads_before));
  }
  return Status::Ok();
}

void OccBase::Abort(TxnDescriptor* t) {
  // Read-phase abort: no locks are held before Commit runs. When no protocol
  // cause was latched, the workload abandoned the transaction voluntarily
  // (e.g. a NotFound mid-transaction): attribute kExplicit so the cause
  // counters still sum to `aborts`.
  NoteAbortCause(t->thread_id, AbortReason::kExplicit);
  TxnStats& s = stats(t->thread_id);
  const bool scan_txn = t->is_scan_txn;
  const uint32_t tid = t->thread_id;
  const uint64_t txn_id = t->txn_id;
  const uint64_t begin_nanos = t->begin_nanos;
  FinishTxn(t, TxnState::kAborted);
  const uint64_t end = NowNanos();
  s.abort_ns += end - begin_nanos;
  s.aborts++;
  if (scan_txn) s.scan_txn_aborts++;
  if (obs::Enabled()) {
    const ThreadCtx& ctx = *ctxs_[tid];
    obs::SpanEvent(tid, obs::Phase::kExecute, begin_nanos, end, txn_id);
    obs::TxnAbort(tid, end, txn_id,
                  static_cast<uint8_t>(ctx.last_abort_reason),
                  ctx.last_conflict_range);
  }
  MaybeCaptureSlo(tid, txn_id, s, begin_nanos, end, end, end, 0,
                  ctxs_[tid]->last_abort_reason);
  obs::HeartbeatClear(tid);
}

}  // namespace rocc
