#pragma once

#include <utility>

#include "cc/cc.h"

namespace rocc {

/// RAII convenience wrapper around (ConcurrencyControl*, TxnDescriptor*).
///
/// A handle that goes out of scope without Commit() being called aborts the
/// transaction, so early returns in application code can never leak a
/// descriptor or leave an epoch pinned:
///
/// ```cpp
/// Status Transfer(Rocc& cc, uint32_t tid, uint64_t a, uint64_t b) {
///   TxnHandle txn(&cc, tid);
///   uint64_t va, vb;
///   ROCC_RETURN_NOT_OK(txn.Read(kAccounts, a, &va));   // abort on early exit
///   ROCC_RETURN_NOT_OK(txn.Read(kAccounts, b, &vb));
///   va -= 10; vb += 10;
///   ROCC_RETURN_NOT_OK(txn.Update(kAccounts, a, &va, 8, 0));
///   ROCC_RETURN_NOT_OK(txn.Update(kAccounts, b, &vb, 8, 0));
///   return txn.Commit();
/// }
/// ```
class TxnHandle {
 public:
  TxnHandle(ConcurrencyControl* cc, uint32_t thread_id)
      : cc_(cc), txn_(cc->Begin(thread_id)) {}

  ~TxnHandle() {
    if (txn_ != nullptr) cc_->Abort(txn_);
  }

  TxnHandle(const TxnHandle&) = delete;
  TxnHandle& operator=(const TxnHandle&) = delete;

  TxnHandle(TxnHandle&& other) noexcept : cc_(other.cc_), txn_(other.txn_) {
    other.txn_ = nullptr;
  }
  TxnHandle& operator=(TxnHandle&& other) noexcept {
    if (this != &other) {
      if (txn_ != nullptr) cc_->Abort(txn_);
      cc_ = other.cc_;
      txn_ = other.txn_;
      other.txn_ = nullptr;
    }
    return *this;
  }

  Status Read(uint32_t table_id, uint64_t key, void* out) {
    return cc_->Read(txn_, table_id, key, out);
  }
  Status Update(uint32_t table_id, uint64_t key, const void* data, uint32_t size,
                uint32_t field_offset = 0) {
    return cc_->Update(txn_, table_id, key, data, size, field_offset);
  }
  Status Insert(uint32_t table_id, uint64_t key, const void* payload) {
    return cc_->Insert(txn_, table_id, key, payload);
  }
  Status Remove(uint32_t table_id, uint64_t key) {
    return cc_->Remove(txn_, table_id, key);
  }
  Status Scan(uint32_t table_id, uint64_t start_key, uint64_t end_key,
              uint64_t limit, ScanConsumer* consumer) {
    return cc_->Scan(txn_, table_id, start_key, end_key, limit, consumer);
  }

  /// Read a fixed-size POD row into `out`.
  template <typename RowT>
  Status ReadRow(uint32_t table_id, uint64_t key, RowT* out) {
    return cc_->Read(txn_, table_id, key, out);
  }
  /// Replace a fixed-size POD row.
  template <typename RowT>
  Status UpdateRow(uint32_t table_id, uint64_t key, const RowT& row) {
    return cc_->Update(txn_, table_id, key, &row, sizeof(RowT), 0);
  }

  /// Mark this transaction as a bulk/scan transaction for statistics.
  void MarkScanTxn() { txn_->is_scan_txn = true; }

  /// Validate and apply; the handle is inert afterwards.
  Status Commit() {
    TxnDescriptor* t = std::exchange(txn_, nullptr);
    return cc_->Commit(t);
  }

  /// Explicitly abort; the handle is inert afterwards.
  void Abort() {
    TxnDescriptor* t = std::exchange(txn_, nullptr);
    if (t != nullptr) cc_->Abort(t);
  }

  bool active() const { return txn_ != nullptr; }
  TxnDescriptor* descriptor() { return txn_; }

 private:
  ConcurrencyControl* cc_;
  TxnDescriptor* txn_;
};

}  // namespace rocc
