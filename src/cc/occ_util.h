#pragma once

#include <cstdint>

#include "storage/row.h"
#include "txn/txn.h"

namespace rocc {

/// Result of a no-wait consistent record read.
enum class ReadResult : uint8_t {
  kOk,         ///< stable copy obtained
  kLocked,     ///< record is locked by a committing writer (dirty)
  kContended,  ///< version kept changing past the retry budget
  kAbsent,     ///< record is deleted / an unpublished insert placeholder
};

/// OCC stable read: copy the payload between two version loads. Per the
/// paper, "ROCC treats locked records as dirty data" and the reader aborts
/// immediately instead of spinning on the lock.
ReadResult ReadRecordNoWait(const Row* row, void* out, uint64_t* tid_word);

/// Bounded wait for another transaction's commit timestamp.
///
/// A validator may observe a writer that has registered but not yet drawn
/// its commit timestamp (the gap is a handful of instructions). Returns the
/// timestamp, or 0 if the writer aborted or stayed unresolved past the spin
/// budget (callers treat 0 conservatively).
uint64_t WaitForCommitTs(const TxnDescriptor* writer);

}  // namespace rocc
