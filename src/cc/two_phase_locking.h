#pragma once

#include "cc/cc.h"

namespace rocc {

/// Classic two-phase locking with no-wait deadlock avoidance.
///
/// Included as a library extra and as a differential-testing oracle for the
/// OCC family on point-access workloads. Locks are exclusive record locks
/// carried in the row TID word and are acquired at access time (reads
/// included); any lock conflict aborts immediately. Writes are deferred to
/// commit so aborts need no undo.
///
/// Limitation (documented, by design): scans lock the records they return
/// but take no next-key or range locks, so 2PL-NW does not provide phantom
/// protection. The paper evaluates only the OCC-family schemes for scans.
class TplNoWait : public OccBase {
 public:
  TplNoWait(Database* db, uint32_t num_threads) : OccBase(db, num_threads) {}

  const char* Name() const override { return "2PL-NW"; }

  Status Read(TxnDescriptor* t, uint32_t table_id, uint64_t key, void* out) override;
  Status Update(TxnDescriptor* t, uint32_t table_id, uint64_t key, const void* data,
                uint32_t size, uint32_t field_offset) override;
  Status Insert(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                const void* payload) override;
  Status Remove(TxnDescriptor* t, uint32_t table_id, uint64_t key) override;
  Status Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
              uint64_t end_key, uint64_t limit, ScanConsumer* consumer) override;
  Status Commit(TxnDescriptor* t) override;
  void Abort(TxnDescriptor* t) override;

 protected:
  // Unused OCC hooks: 2PL performs no registration or scan validation.
  void RegisterWrites(TxnDescriptor*) override {}
  bool ValidateScans(TxnDescriptor*) override { return true; }

 private:
  /// Acquire the record lock unless this transaction already holds it.
  /// The lock set is tracked in read_set (observed_tid unused under 2PL).
  bool AcquireLock(TxnDescriptor* t, Row* row);
  bool OwnsLock(const TxnDescriptor* t, const Row* row) const;
  void ReleaseAll(TxnDescriptor* t, uint64_t commit_ts, bool committed);
};

}  // namespace rocc
