#include "cc/two_phase_locking.h"

#include <cstring>

#include "common/timer.h"
#include "mv/version_store.h"

namespace rocc {

bool TplNoWait::OwnsLock(const TxnDescriptor* t, const Row* row) const {
  return t->lock_index.Find(reinterpret_cast<uintptr_t>(row), 0) >= 0;
}

bool TplNoWait::AcquireLock(TxnDescriptor* t, Row* row) {
  if (OwnsLock(t, row)) return true;
  if (!row->TryLock()) {  // no-wait: the caller must abort
    NoteAbortCause(t->thread_id, AbortReason::kLockFail);
    return false;
  }
  t->lock_index.Put(reinterpret_cast<uintptr_t>(row), 0,
                    static_cast<int32_t>(t->read_set.size()));
  t->read_set.push_back({row, 0});
  return true;
}

Status TplNoWait::Read(TxnDescriptor* t, uint32_t table_id, uint64_t key, void* out) {
  Row* row = db_->GetIndex(table_id)->Get(key);
  if (row == nullptr) return Status::NotFound();
  if (!AcquireLock(t, row)) return Status::Aborted("lock conflict");
  if (row->IsAbsent() && t->FindWriteByRow(row) < 0) {
    return Status::NotFound();  // a foreign tombstone; own inserts overlay below
  }
  std::memcpy(out, row->Data(), row->payload_size);
  // Overlay deferred writes so reads see this transaction's prior updates:
  // the newest entry decides visibility, the chain replays chronologically.
  const int wi = t->FindWrite(table_id, key);
  if (wi >= 0) {
    if (t->write_set[wi].kind == WriteEntry::Kind::kDelete) {
      return Status::NotFound();
    }
    t->ReplayChain(wi, static_cast<char*>(out));
  }
  return Status::Ok();
}

Status TplNoWait::Update(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                         const void* data, uint32_t size, uint32_t field_offset) {
  if (t->snapshot_ts != 0) {
    return Status::InvalidArgument("snapshot transaction is read-only");
  }
  const int wi = t->FindWrite(table_id, key);
  if (wi >= 0 && t->write_set[wi].kind == WriteEntry::Kind::kDelete) {
    return Status::NotFound();  // updating a row this txn already deleted
  }
  Row* row = db_->GetIndex(table_id)->Get(key);
  if (row == nullptr) return Status::NotFound();
  if (!AcquireLock(t, row)) return Status::Aborted("lock conflict");
  if (row->IsAbsent() && wi < 0) return Status::NotFound();
  WriteEntry we;
  we.row = row;
  we.key = key;
  we.table_id = table_id;
  we.kind = WriteEntry::Kind::kUpdate;
  we.locked = true;
  we.data_offset = t->AppendImage(data, size);
  we.data_size = size;
  we.field_offset = field_offset;
  t->AppendWrite(we);
  return Status::Ok();
}

Status TplNoWait::Insert(TxnDescriptor* t, uint32_t table_id, uint64_t key,
                         const void* payload) {
  if (t->snapshot_ts != 0) {
    return Status::InvalidArgument("snapshot transaction is read-only");
  }
  Table* tab = db_->GetTable(table_id);
  OrderedIndex* idx = db_->GetIndex(table_id);
  Row* placeholder = tab->CreatePlaceholderRow(key);  // locked + absent
  Status st = idx->Insert(key, placeholder);
  Row* target = placeholder;
  if (!st.ok()) {
    // The key is already indexed. A live row — or one locked by another
    // transaction — is a no-wait conflict; an unlocked tombstone is
    // resurrected in place (with versions on, deleted rows stay indexed
    // until GC, so this path is the normal reinsert route).
    Row* existing = idx->Get(key);
    if (existing == nullptr || !existing->TryLock()) {
      NoteAbortCause(t->thread_id, AbortReason::kLockFail);
      return Status::Aborted("duplicate key");
    }
    if (!existing->IsAbsent()) {
      existing->Unlock();
      NoteAbortCause(t->thread_id, AbortReason::kLockFail);
      return Status::Aborted("duplicate key");
    }
    target = existing;
  }
  t->lock_index.Put(reinterpret_cast<uintptr_t>(target), 0,
                    static_cast<int32_t>(t->read_set.size()));
  t->read_set.push_back({target, 0});  // we hold its lock
  WriteEntry we;
  we.row = target;
  we.key = key;
  we.table_id = table_id;
  we.kind = WriteEntry::Kind::kInsert;
  we.locked = true;
  we.data_offset = t->AppendImage(payload, tab->row_size());
  we.data_size = tab->row_size();
  we.field_offset = 0;
  t->AppendWrite(we);
  return Status::Ok();
}

Status TplNoWait::Remove(TxnDescriptor* t, uint32_t table_id, uint64_t key) {
  if (t->snapshot_ts != 0) {
    return Status::InvalidArgument("snapshot transaction is read-only");
  }
  const int wi = t->FindWrite(table_id, key);
  if (wi >= 0 && t->write_set[wi].kind == WriteEntry::Kind::kDelete) {
    return Status::NotFound();  // already deleted by this txn
  }
  Row* row = db_->GetIndex(table_id)->Get(key);
  if (row == nullptr) return Status::NotFound();
  if (!AcquireLock(t, row)) return Status::Aborted("lock conflict");
  if (row->IsAbsent() && wi < 0) return Status::NotFound();
  WriteEntry we;
  we.row = row;
  we.key = key;
  we.table_id = table_id;
  we.kind = WriteEntry::Kind::kDelete;
  we.locked = true;
  we.data_offset = 0;
  we.data_size = 0;
  we.field_offset = 0;
  t->AppendWrite(we);
  return Status::Ok();
}

Status TplNoWait::Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                       uint64_t end_key, uint64_t limit, ScanConsumer* consumer) {
  Status result = Status::Ok();
  uint64_t n = 0;
  char* buf = ctxs_[t->thread_id]->scratch.data();
  db_->GetIndex(table_id)->ScanRange(
      start_key, end_key == 0 ? ~0ULL : end_key, [&](uint64_t key, Row* row) -> bool {
        if (!AcquireLock(t, row)) {
          result = Status::Aborted("lock conflict");
          return false;
        }
        if (row->IsAbsent()) {
          // Own insert placeholders are delivered (read-your-own-writes);
          // foreign tombstones are invisible.
          const int wi = t->FindWriteByRow(row);
          if (wi < 0 || t->write_set[wi].kind != WriteEntry::Kind::kInsert) {
            return true;
          }
        }
        std::memcpy(buf, row->Data(), row->payload_size);
        const int wi = t->FindWrite(table_id, key);
        if (wi >= 0) {
          if (t->write_set[wi].kind == WriteEntry::Kind::kDelete) return true;
          t->ReplayChain(wi, buf);
        }
        n++;
        const bool more = consumer == nullptr || consumer->OnRecord(key, buf);
        if (!more) return false;
        return !(limit != 0 && n >= limit);
      });
  stats(t->thread_id).scanned_records += n;
  return result;
}

void TplNoWait::ReleaseAll(TxnDescriptor* t, uint64_t commit_ts, bool committed) {
  for (const ReadEntry& re : t->read_set) {
    Row* row = re.row;
    if (!committed) {
      // Abort: the oldest entry for the row says what placeholder cleanup
      // (if any) is needed.
      const int wi = t->FindWriteByRow(row);
      if (wi >= 0 && t->write_set[wi].kind == WriteEntry::Kind::kInsert &&
          TidWord::Version(row->tid.load(std::memory_order_relaxed)) == 0) {
        // Fresh placeholder this transaction created: hide and unlink it. A
        // resurrected tombstone (version > 0) instead falls through to a
        // plain unlock, restoring the delete marker — and, with versions
        // on, keeping its chain reachable for older snapshots.
        row->tid.store(TidWord::kAbsentBit, std::memory_order_release);
        db_->GetIndex(t->write_set[wi].table_id)->Remove(t->write_set[wi].key);
      } else {
        row->Unlock();
      }
      continue;
    }
    // Commit: the NET kind — the newest entry in the row's chain — decides,
    // or an insert-then-delete chain would commit the row as live.
    const int wi = t->FindLatestWriteByRow(row);
    if (wi < 0) {
      row->Unlock();  // read-only lock
    } else if (t->write_set[wi].kind == WriteEntry::Kind::kDelete) {
      // With versions on, the tombstone stays indexed so older snapshots
      // can still reach its chain; GcQuiesce unindexes it later.
      if (mv_ == nullptr) {
        db_->GetIndex(t->write_set[wi].table_id)->Remove(t->write_set[wi].key);
      }
      row->UnlockAsDeleted(commit_ts);
    } else {
      row->UnlockWithVersion(commit_ts);
    }
  }
}

Status TplNoWait::Commit(TxnDescriptor* t) {
  TxnStats& s = stats(t->thread_id);
  const bool scan_txn = t->is_scan_txn;
  const uint32_t tid = t->thread_id;
  const uint64_t txn_id = t->txn_id;
  const uint64_t begin_nanos = t->begin_nanos;
  const uint64_t commit_start = NowNanos();
  obs::HeartbeatPhase(tid, obs::Phase::kWriteApply, commit_start);

  // Same watermark discipline as OccBase: announce the commit window before
  // drawing the timestamp, clear it after the shrink phase drops the locks.
  const bool mv_window = mv_ != nullptr && t->HasWrites();
  if (mv_window) mv_->BeginCommit(tid);
  const uint64_t cts = clock_.Next();
  t->commit_ts.store(cts, std::memory_order_release);
  // MVCC pre-pass: pre-images link before any payload write (see OccBase).
  if (mv_ != nullptr) {
    for (const WriteEntry& we : t->write_set) {
      if (we.prev >= 0 || we.row == nullptr) continue;
      mv_->InstallPredecessor(tid, we.row, &s);
    }
    mv::VersionStore::PublishFence();
  }
  // Locks were all acquired during the growing phase; apply and shrink.
  for (const WriteEntry& we : t->write_set) {
    if (we.kind == WriteEntry::Kind::kDelete) continue;
    std::memcpy(we.row->Data() + we.field_offset, t->ImageAt(we.data_offset),
                we.data_size);
  }
  // Same discipline as OccBase: the redo record is appended before the
  // shrink phase releases any lock, then the durability wait runs after the
  // in-memory commit is published.
  const uint64_t log_ticket = LogWrites(t, cts);
  ReleaseAll(t, cts, /*committed=*/true);
  if (mv_window) mv_->EndCommit(tid);
  FinishTxn(t, TxnState::kCommitted);

  const uint64_t end = NowNanos();
  s.validation_ns += end - commit_start;
  s.read_write_ns += commit_start - begin_nanos;
  s.commits++;
  s.latency_all.Record(end - begin_nanos);
  if (scan_txn) {
    s.scan_txn_commits++;
    s.latency_scan.Record(end - begin_nanos);
  }
  if (obs::Enabled()) {
    // 2PL has no separate validation: the commit-entry -> end window is the
    // apply + shrink phase.
    s.phase_execute.Record(commit_start - begin_nanos);
    s.phase_apply.Record(end - commit_start);
    obs::SpanEvent(tid, obs::Phase::kExecute, begin_nanos, commit_start, txn_id);
    obs::SpanEvent(tid, obs::Phase::kWriteApply, commit_start, end, txn_id);
    obs::TxnCommit(tid, end, txn_id, scan_txn);
  }
  const uint64_t log_wait_ns = AwaitDurable(log_ticket, begin_nanos, tid, s);
  // 2PL has no validation window: attribute commit-entry -> end to apply.
  MaybeCaptureSlo(tid, txn_id, s, begin_nanos, commit_start, commit_start, end,
                  log_wait_ns, AbortReason::kNone);
  obs::HeartbeatClear(tid);
  return Status::Ok();
}

void TplNoWait::Abort(TxnDescriptor* t) {
  // No cause latched = the workload abandoned the transaction voluntarily.
  NoteAbortCause(t->thread_id, AbortReason::kExplicit);
  TxnStats& s = stats(t->thread_id);
  const bool scan_txn = t->is_scan_txn;
  const uint32_t tid = t->thread_id;
  const uint64_t txn_id = t->txn_id;
  const uint64_t begin_nanos = t->begin_nanos;
  ReleaseAll(t, 0, /*committed=*/false);
  FinishTxn(t, TxnState::kAborted);
  const uint64_t end = NowNanos();
  s.abort_ns += end - begin_nanos;
  s.aborts++;
  if (scan_txn) s.scan_txn_aborts++;
  if (obs::Enabled()) {
    obs::SpanEvent(tid, obs::Phase::kExecute, begin_nanos, end, txn_id);
    obs::TxnAbort(tid, end, txn_id, static_cast<uint8_t>(LastAbortReason(tid)),
                  obs::kNoRange);
  }
  MaybeCaptureSlo(tid, txn_id, s, begin_nanos, end, end, end, 0,
                  LastAbortReason(tid));
  obs::HeartbeatClear(tid);
}

}  // namespace rocc
