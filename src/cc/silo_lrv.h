#pragma once

#include "cc/cc.h"

namespace rocc {

/// Local Readset Validation — the Silo-style baseline (paper §I-A).
///
/// Scans record every returned row (pointer + observed version) in the
/// transaction's scan set. Validation re-executes each scan against the index
/// and requires the exact same sequence of rows with unchanged versions: this
/// detects updates (version change), deletions and phantom inserts (sequence
/// change) at a cost linear in the number of scanned records — the behaviour
/// Fig. 1 and Fig. 5 attribute to LRV.
class SiloLrv : public OccBase {
 public:
  SiloLrv(Database* db, uint32_t num_threads) : OccBase(db, num_threads) {}

  const char* Name() const override { return "LRV"; }

  Status Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
              uint64_t end_key, uint64_t limit, ScanConsumer* consumer) override;

 protected:
  void RegisterWrites(TxnDescriptor*) override {}
  bool ValidateScans(TxnDescriptor* t) override;

 private:
  bool RevalidateScan(TxnDescriptor* t, const ScanEntry& entry,
                      uint32_t* pace_counter);
};

}  // namespace rocc
