#include "cc/hyper_gwv.h"

#include "cc/occ_util.h"

namespace rocc {

HyperGwv::HyperGwv(Database* db, uint32_t num_threads, GwvOptions options)
    : OccBase(db, num_threads), global_list_(options.global_ring_capacity) {}

Status HyperGwv::Scan(TxnDescriptor* t, uint32_t table_id, uint64_t start_key,
                      uint64_t end_key, uint64_t limit, ScanConsumer* consumer) {
  RangePredicate p;
  p.table_id = table_id;
  p.range_id = 0;  // the single global list
  p.rd_ts = global_list_.Version();  // before reading any record
  p.cover = false;

  uint64_t last_key = 0;
  uint64_t n = 0;
  bool stopped = false;
  Status st = ScanRecords(t, table_id, start_key, end_key, limit, consumer,
                          /*track_records=*/false, &last_key, &n, &stopped);
  if (!st.ok()) return st;

  p.start_key = start_key;
  if ((limit != 0 && n >= limit) || stopped) {
    p.end_key = last_key + 1;
  } else {
    p.end_key = end_key == 0 ? ~0ULL : end_key;
  }
  t->predicates.push_back(p);
  return Status::Ok();
}

void HyperGwv::RegisterWrites(TxnDescriptor* t) {
  // One registration per writing transaction, sequencing it in the global
  // list (Fig. 2(a)).
  global_list_.Register(t);
  stats(t->thread_id).registrations++;
}

bool HyperGwv::ValidateScans(TxnDescriptor* t) {
  if (t->predicates.empty()) return true;
  TxnStats& s = stats(t->thread_id);
  const uint64_t my_cts = t->commit_ts.load(std::memory_order_relaxed);
  const uint64_t v_ts = global_list_.Version();

  uint64_t min_rd = ~0ULL;
  for (const RangePredicate& p : t->predicates) min_rd = std::min(min_rd, p.rd_ts);
  if (v_ts == min_rd) return true;
  if (v_ts - min_rd >= global_list_.capacity()) {
    NoteAbortCause(t->thread_id, AbortReason::kRingLost);
    return false;  // window lost
  }

  uint32_t pace_counter = 0;
  for (uint64_t seq = min_rd + 1; seq <= v_ts; seq++) {
    PaceValidation(&pace_counter);
    TxnDescriptor* writer = global_list_.Get(seq);
    if (writer == nullptr) {
      NoteAbortCause(t->thread_id, AbortReason::kRingLost);
      return false;  // overwritten concurrently
    }
    s.validated_txns++;
    if (writer == t) continue;
    if (writer->state.load(std::memory_order_acquire) == TxnState::kAborted) continue;
    const uint64_t wcts = WaitForCommitTs(writer);
    if (wcts == 0) {
      if (writer->state.load(std::memory_order_acquire) == TxnState::kAborted) {
        continue;
      }
      NoteAbortCause(t->thread_id, AbortReason::kUnresolved);
      return false;  // unresolved: conservative
    }
    if (wcts > my_cts) continue;

    // Check this overlapping transaction's frozen write fingerprints against
    // every predicate whose scan began before the writer registered. The
    // fingerprints were built before the writer registered in the global
    // list, so the acquire on the slot makes them safely readable; the
    // per-predicate probe is an interval reject + binary search instead of
    // the write_set × predicates product of §IV's GWV cost model.
    for (const RangePredicate& p : t->predicates) {
      if (seq <= p.rd_ts) continue;  // already visible to that scan
      PaceValidation(&pace_counter);
      if (writer->WritesIntersect(p.table_id, p.start_key, p.end_key)) {
        NoteAbortCause(t->thread_id, AbortReason::kScanConflict);
        return false;
      }
    }
  }
  return true;
}

}  // namespace rocc
