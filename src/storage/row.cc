#include "storage/row.h"

#include "sync/optiql.h"

namespace rocc {

namespace {
constexpr int kReadSpins = 1024;
}

RowRead Row::ReadConsistent(void* out, uint64_t* version_out) const {
  // Small-cap non-yielding backoff: commit sections holding the row lock are
  // short, and this loop must stay bounded to preserve kBusy semantics.
  sync::SpinBackoff backoff(/*cap_spins=*/16, /*yield=*/false);
  for (int attempt = 0; attempt < kReadSpins; attempt++) {
    const uint64_t v1 = tid.load(std::memory_order_acquire);
    if (TidWord::IsLocked(v1)) {
      backoff.Pause();
      continue;
    }
    if (TidWord::IsAbsent(v1)) {
      // A tombstone's payload is undefined; report the stable word only.
      *version_out = v1;
      return RowRead::kAbsent;
    }
    std::memcpy(out, Data(), payload_size);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t v2 = tid.load(std::memory_order_acquire);
    if (v1 == v2) {
      *version_out = v1;
      return RowRead::kOk;
    }
  }
  return RowRead::kBusy;
}

bool Row::ReadVersion(uint64_t* version_out) const {
  const uint64_t v = tid.load(std::memory_order_acquire);
  if (TidWord::IsLocked(v)) return false;
  *version_out = v;
  return true;
}

bool Row::TryLock() {
  uint64_t v = tid.load(std::memory_order_acquire);
  if (TidWord::IsLocked(v)) return false;
  return tid.compare_exchange_strong(v, TidWord::MakeLocked(v),
                                     std::memory_order_acq_rel);
}

bool Row::LockWithSpin(int spins) {
  sync::SpinBackoff backoff(/*cap_spins=*/64, /*yield=*/false);
  for (int i = 0; i < spins; i++) {
    if (TryLock()) return true;
    backoff.Pause();
  }
  return false;
}

namespace {
bool TryLockThunk(void* arg) { return static_cast<Row*>(arg)->TryLock(); }
}  // namespace

bool Row::LockContended(int attempts, bool cancelable) {
  if (!sync::QueueCapable()) return LockWithSpin(attempts);
  return sync::QueuedTryAcquire(this, attempts, &TryLockThunk, this, cancelable);
}

void Row::Unlock() {
  const uint64_t v = tid.load(std::memory_order_relaxed);
  tid.store(v & ~TidWord::kLockBit, std::memory_order_release);
}

void Row::UnlockWithVersion(uint64_t commit_ts) {
  tid.store(commit_ts & TidWord::kVersionMask, std::memory_order_release);
}

void Row::UnlockAsDeleted(uint64_t commit_ts) {
  tid.store((commit_ts & TidWord::kVersionMask) | TidWord::kAbsentBit,
            std::memory_order_release);
}

Row* Row::Init(void* mem, uint32_t table_id, uint64_t key, uint32_t payload_size,
               bool visible, uint64_t version) {
  Row* r = static_cast<Row*>(mem);
  const uint64_t w = visible ? (version & TidWord::kVersionMask)
                             : (TidWord::kLockBit | TidWord::kAbsentBit);
  new (&r->tid) std::atomic<uint64_t>(w);
  new (&r->versions) std::atomic<mv::Version*>(nullptr);
  r->key = key;
  r->table_id = table_id;
  r->payload_size = payload_size;
  return r;
}

}  // namespace rocc
