#include "storage/schema.h"

namespace rocc {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  uint32_t off = 0;
  for (auto& c : columns_) {
    c.offset = off;
    off += c.size;
  }
  row_size_ = off;
}

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace rocc
