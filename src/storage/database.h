#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/index.h"
#include "storage/table.h"

namespace rocc {

/// Container for tables and their primary ordered indexes.
///
/// Schema definition happens single-threaded before any transaction runs
/// (the standard DBx1000-style setup), so catalog mutation needs no latching.
class Database {
 public:
  Database() = default;

  /// Create a table and its primary B+Tree index; returns the table id.
  uint32_t CreateTable(const std::string& name, Schema schema);

  Table* GetTable(uint32_t table_id) { return tables_[table_id].get(); }
  const Table* GetTable(uint32_t table_id) const { return tables_[table_id].get(); }
  Table* GetTable(const std::string& name);

  OrderedIndex* GetIndex(uint32_t table_id) { return indexes_[table_id].get(); }
  const OrderedIndex* GetIndex(uint32_t table_id) const {
    return indexes_[table_id].get();
  }

  size_t NumTables() const { return tables_.size(); }

  /// Bulk-load helper: create a visible row and index it.
  Row* LoadRow(uint32_t table_id, uint64_t key, const void* payload);

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<std::unique_ptr<OrderedIndex>> indexes_;
  std::map<std::string, uint32_t> by_name_;
};

}  // namespace rocc
