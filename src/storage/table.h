#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/arena.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace rocc {

/// A heap of fixed-size rows with a schema.
///
/// The table owns row storage (via an arena); ordered/hash indexes reference
/// rows by pointer. There is no clustering: access paths always go through an
/// index, matching the paper's assumption that "all retrievals/updates are
/// via index key".
class Table {
 public:
  Table(uint32_t id, std::string name, Schema schema);

  /// Allocate and initialise a visible row (bulk-load path, single version).
  Row* CreateRow(uint64_t key, const void* payload);

  /// Allocate an invisible, locked placeholder row for a transactional
  /// insert. It becomes visible when the inserting transaction commits and
  /// publishes its commit timestamp.
  Row* CreatePlaceholderRow(uint64_t key);

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint32_t row_size() const { return schema_.row_size(); }
  uint64_t row_count() const { return row_count_.load(std::memory_order_relaxed); }

 private:
  const uint32_t id_;
  const std::string name_;
  const Schema schema_;
  Arena arena_;
  std::atomic<uint64_t> row_count_{0};
};

}  // namespace rocc
