#include "storage/database.h"

#include "index/btree.h"

namespace rocc {

uint32_t Database::CreateTable(const std::string& name, Schema schema) {
  const uint32_t id = static_cast<uint32_t>(tables_.size());
  tables_.push_back(std::make_unique<Table>(id, name, std::move(schema)));
  indexes_.push_back(std::make_unique<BTree>());
  by_name_[name] = id;
  return id;
}

Table* Database::GetTable(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : tables_[it->second].get();
}

Row* Database::LoadRow(uint32_t table_id, uint64_t key, const void* payload) {
  Row* row = tables_[table_id]->CreateRow(key, payload);
  indexes_[table_id]->Insert(key, row);
  return row;
}

}  // namespace rocc
