#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/cacheline.h"

namespace rocc {

namespace mv {
struct Version;
}  // namespace mv

/// Silo-style TID word packed into one atomic 64-bit header per record.
///
/// Layout:
///   bit 63      lock bit (exclusive, owned by a committing writer)
///   bit 62      absent bit (row is an insert placeholder or deleted)
///   bits 0..61  version = commit timestamp of the last writer
///
/// Readers never take the lock: they use `Row::ReadConsistent` which copies
/// the payload between two version loads (the standard OCC stable-read loop).
class TidWord {
 public:
  static constexpr uint64_t kLockBit = 1ULL << 63;
  static constexpr uint64_t kAbsentBit = 1ULL << 62;
  static constexpr uint64_t kVersionMask = (1ULL << 62) - 1;

  static bool IsLocked(uint64_t w) { return (w & kLockBit) != 0; }
  static bool IsAbsent(uint64_t w) { return (w & kAbsentBit) != 0; }
  static uint64_t Version(uint64_t w) { return w & kVersionMask; }
  static uint64_t MakeLocked(uint64_t w) { return w | kLockBit; }
};

/// Outcome of a stable-read attempt (Row::ReadConsistent). kBusy is distinct
/// from kAbsent on purpose: a record that stayed locked or kept changing past
/// the spin budget is CONTENDED, not missing, and callers must not conflate
/// the two (the old boolean API made that conflation easy). Contention
/// surfaces under the kUnresolved abort reason in transactional callers.
enum class RowRead : uint8_t {
  kOk,      ///< stable live copy obtained; the word is in `version_out`
  kAbsent,  ///< stable word observed but the row is deleted / a placeholder
  kBusy,    ///< locked or changing past the spin budget; nothing copied
};

/// An in-memory record: header + primary key + inline fixed-size payload.
///
/// Rows are allocated from their table's arena and are never moved; index
/// entries and transaction read/write sets hold stable `Row*` pointers.
struct Row {
  std::atomic<uint64_t> tid;
  /// Newest-first chain of superseded versions (null when the row has never
  /// been overwritten, or multi-versioning is off). Committers link the
  /// pre-image here — under the row lock, before overwriting the payload —
  /// so snapshot readers can resolve the row at any safe timestamp
  /// (mv::VersionStore, DESIGN.md §12).
  std::atomic<mv::Version*> versions;
  uint64_t key;
  uint32_t table_id;
  uint32_t payload_size;
  // Payload bytes follow the struct inline.

  char* Data() { return reinterpret_cast<char*>(this + 1); }
  const char* Data() const { return reinterpret_cast<const char*>(this + 1); }

  /// Copy the payload into `out` only if a stable (unlocked, unchanged) live
  /// version was observed; returns that word through `version_out` (also set
  /// for kAbsent). kBusy when the record stayed locked past the spin budget.
  RowRead ReadConsistent(void* out, uint64_t* version_out) const;

  /// Read only the version without copying data; returns false when locked.
  bool ReadVersion(uint64_t* version_out) const;

  /// Try to acquire the record lock; fails if already locked.
  bool TryLock();

  /// Spin up to `spins` attempts to take the lock.
  bool LockWithSpin(int spins);

  /// Contention-robust bounded acquire for the validator's sorted lock phase
  /// (DESIGN.md §13). Under `--lock=cas` this is LockWithSpin; under
  /// `--lock=optiql` waiters queue FIFO on a cache-padded MCS stripe and only
  /// the queue head retries the TID-word CAS, so hot records degrade to fair
  /// queuing instead of a CAS storm. Bounded either way (the caller aborts
  /// with kLockFail on false), and the packed TID layout is untouched — MVCC
  /// and WAL consumers read the same word they always did. Pass
  /// cancelable=false when the caller holds no other row locks: such a
  /// waiter rides the queue out instead of dropping out under a protected
  /// quiesce (sync::SetLockQuiesce).
  bool LockContended(int attempts, bool cancelable = true);

  /// Release the lock without changing version (abort path).
  void Unlock();

  /// Release the lock publishing `commit_ts` as the new version and clearing
  /// the absent bit (commit path for writes and inserts).
  void UnlockWithVersion(uint64_t commit_ts);

  /// Release the lock publishing `commit_ts` and marking the row deleted.
  void UnlockAsDeleted(uint64_t commit_ts);

  bool IsAbsent() const { return TidWord::IsAbsent(tid.load(std::memory_order_acquire)); }

  /// Total allocation size for a row with the given payload.
  static size_t AllocSize(uint32_t payload_size) { return sizeof(Row) + payload_size; }

  /// Construct a row in pre-allocated memory.
  /// `visible` rows start at version `version`; invisible rows carry the
  /// absent bit and the lock (insert placeholder protocol).
  static Row* Init(void* mem, uint32_t table_id, uint64_t key, uint32_t payload_size,
                   bool visible, uint64_t version = 1);
};

}  // namespace rocc
