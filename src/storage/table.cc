#include "storage/table.h"

#include <cstring>

namespace rocc {

Table::Table(uint32_t id, std::string name, Schema schema)
    : id_(id), name_(std::move(name)), schema_(std::move(schema)), arena_(1 << 22) {}

Row* Table::CreateRow(uint64_t key, const void* payload) {
  void* mem = arena_.AllocateConcurrent(Row::AllocSize(row_size()), 8);
  Row* r = Row::Init(mem, id_, key, row_size(), /*visible=*/true);
  if (payload != nullptr) {
    std::memcpy(r->Data(), payload, row_size());
  } else {
    std::memset(r->Data(), 0, row_size());
  }
  row_count_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Row* Table::CreatePlaceholderRow(uint64_t key) {
  void* mem = arena_.AllocateConcurrent(Row::AllocSize(row_size()), 8);
  Row* r = Row::Init(mem, id_, key, row_size(), /*visible=*/false);
  std::memset(r->Data(), 0, row_size());
  row_count_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

}  // namespace rocc
