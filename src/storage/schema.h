#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rocc {

/// A fixed-size column in a row layout.
struct Column {
  std::string name;
  uint32_t size = 0;    ///< bytes
  uint32_t offset = 0;  ///< byte offset within the row payload, filled by Schema
};

/// Fixed-size row layout.
///
/// All workloads in the paper (YCSB, modified TPC-C) use fixed-size tuples;
/// the engine stores the payload inline after the row header so a record is
/// one contiguous allocation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Look up a column index by name; returns -1 if absent.
  int ColumnIndex(const std::string& name) const;

  uint32_t ColumnOffset(size_t idx) const { return columns_[idx].offset; }
  uint32_t ColumnSize(size_t idx) const { return columns_[idx].size; }
  size_t NumColumns() const { return columns_.size(); }
  uint32_t row_size() const { return row_size_; }

  const std::vector<Column>& columns() const { return columns_; }

 private:
  std::vector<Column> columns_;
  uint32_t row_size_ = 0;
};

}  // namespace rocc
