// TxnHandle RAII semantics: auto-abort on scope exit, move transfer, commit
// and abort idempotence, and typed row helpers.

#include <gtest/gtest.h>

#include <memory>

#include "cc/txn_handle.h"
#include "core/rocc.h"

namespace rocc {
namespace {

struct AccountRow {
  uint64_t balance;
  uint64_t flags;
};

class TxnHandleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = db_.CreateTable("t", Schema({{"row", sizeof(AccountRow), 0}}));
    for (uint64_t k = 0; k < 100; k++) {
      AccountRow row{k * 10, 0};
      db_.LoadRow(table_, k, &row);
    }
    RoccOptions opts;
    RangeConfig rc;
    rc.table_id = table_;
    rc.key_max = 100;
    rc.num_ranges = 4;
    opts.tables = {rc};
    cc_ = std::make_unique<Rocc>(&db_, 2, std::move(opts));
  }

  uint64_t CommittedBalance(uint64_t key) {
    TxnHandle txn(cc_.get(), 1);
    AccountRow row{};
    EXPECT_TRUE(txn.ReadRow(table_, key, &row).ok());
    EXPECT_TRUE(txn.Commit().ok());
    return row.balance;
  }

  Database db_;
  uint32_t table_ = 0;
  std::unique_ptr<Rocc> cc_;
};

TEST_F(TxnHandleTest, CommitAppliesWrites) {
  {
    TxnHandle txn(cc_.get(), 0);
    AccountRow row{};
    ASSERT_TRUE(txn.ReadRow(table_, 5, &row).ok());
    row.balance += 7;
    ASSERT_TRUE(txn.UpdateRow(table_, 5, row).ok());
    EXPECT_TRUE(txn.Commit().ok());
    EXPECT_FALSE(txn.active());
  }
  EXPECT_EQ(CommittedBalance(5), 57u);
}

TEST_F(TxnHandleTest, ScopeExitAbortsPendingWrites) {
  {
    TxnHandle txn(cc_.get(), 0);
    AccountRow row{999, 0};
    ASSERT_TRUE(txn.UpdateRow(table_, 5, row).ok());
    // No Commit: destructor must abort.
  }
  EXPECT_EQ(CommittedBalance(5), 50u);
}

TEST_F(TxnHandleTest, EarlyReturnPathAborts) {
  auto attempt = [&]() -> Status {
    TxnHandle txn(cc_.get(), 0);
    AccountRow row{123, 0};
    ROCC_RETURN_NOT_OK(txn.UpdateRow(table_, 5, row));
    ROCC_RETURN_NOT_OK(txn.ReadRow(table_, 9999, &row));  // NotFound: early out
    return txn.Commit();
  };
  EXPECT_TRUE(attempt().not_found());
  EXPECT_EQ(CommittedBalance(5), 50u);
}

TEST_F(TxnHandleTest, MoveTransfersOwnership) {
  TxnHandle a(cc_.get(), 0);
  AccountRow row{1, 0};
  ASSERT_TRUE(a.UpdateRow(table_, 6, row).ok());
  TxnHandle b(std::move(a));
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): tested on purpose
  EXPECT_TRUE(b.active());
  EXPECT_TRUE(b.Commit().ok());
  EXPECT_EQ(CommittedBalance(6), 1u);
}

TEST_F(TxnHandleTest, MoveAssignAbortsPrevious) {
  TxnHandle a(cc_.get(), 0);
  AccountRow row{111, 0};
  ASSERT_TRUE(a.UpdateRow(table_, 7, row).ok());  // will be aborted

  TxnHandle b(cc_.get(), 1);
  AccountRow row2{222, 0};
  ASSERT_TRUE(b.UpdateRow(table_, 8, row2).ok());
  a = std::move(b);  // aborts a's original txn, adopts b's
  EXPECT_TRUE(a.Commit().ok());
  EXPECT_EQ(CommittedBalance(7), 70u);   // original a aborted
  EXPECT_EQ(CommittedBalance(8), 222u);  // b's write committed via a
}

TEST_F(TxnHandleTest, ExplicitAbortIsInert) {
  TxnHandle txn(cc_.get(), 0);
  AccountRow row{5, 0};
  ASSERT_TRUE(txn.UpdateRow(table_, 9, row).ok());
  txn.Abort();
  EXPECT_FALSE(txn.active());
  txn.Abort();  // double abort is a no-op
  EXPECT_EQ(CommittedBalance(9), 90u);
}

TEST_F(TxnHandleTest, ScanAndMarkScanTxn) {
  class Count : public ScanConsumer {
   public:
    int n = 0;
    bool OnRecord(uint64_t, const char*) override {
      n++;
      return true;
    }
  };
  TxnHandle txn(cc_.get(), 0);
  txn.MarkScanTxn();
  Count consumer;
  ASSERT_TRUE(txn.Scan(table_, 10, 30, 0, &consumer).ok());
  EXPECT_EQ(consumer.n, 20);
  EXPECT_TRUE(txn.Commit().ok());
}

TEST_F(TxnHandleTest, InsertRemoveRoundTrip) {
  {
    TxnHandle txn(cc_.get(), 0);
    AccountRow row{42, 1};
    ASSERT_TRUE(txn.Insert(table_, 500, &row).ok());
    EXPECT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(CommittedBalance(500), 42u);
  {
    TxnHandle txn(cc_.get(), 0);
    ASSERT_TRUE(txn.Remove(table_, 500).ok());
    EXPECT_TRUE(txn.Commit().ok());
  }
  TxnHandle check(cc_.get(), 0);
  AccountRow row{};
  EXPECT_TRUE(check.ReadRow(table_, 500, &row).not_found());
  EXPECT_TRUE(check.Commit().ok());
}

TEST_F(TxnHandleTest, ConflictAbortSurfacesThroughCommit) {
  TxnHandle reader(cc_.get(), 0);
  AccountRow row{};
  ASSERT_TRUE(reader.ReadRow(table_, 3, &row).ok());

  {
    TxnHandle writer(cc_.get(), 1);
    row.balance = 1;
    ASSERT_TRUE(writer.UpdateRow(table_, 3, row).ok());
    ASSERT_TRUE(writer.Commit().ok());
  }
  row.balance += 1;
  ASSERT_TRUE(reader.UpdateRow(table_, 3, row).ok());
  EXPECT_TRUE(reader.Commit().aborted());
}

}  // namespace
}  // namespace rocc
