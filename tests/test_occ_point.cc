// Point-operation semantics and record-level conflict detection for every
// protocol (ROCC, LRV, GWV, MVRCC, 2PL-NW). Interleavings are driven
// deterministically from one OS thread using two logical worker ids.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "cc/hyper_gwv.h"
#include "cc/mvrcc.h"
#include "cc/silo_lrv.h"
#include "cc/two_phase_locking.h"
#include "core/rocc.h"

namespace rocc {
namespace {

class PointOpsTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr uint64_t kRows = 200;
  static constexpr uint32_t kPayload = 16;

  void SetUp() override {
    Schema schema({{"v", kPayload, 0}});
    table_ = db_.CreateTable("t", std::move(schema));
    for (uint64_t k = 0; k < kRows; k++) {
      char payload[kPayload] = {};
      const uint64_t v = k * 10;
      std::memcpy(payload, &v, sizeof(v));
      db_.LoadRow(table_, k, payload);
    }
    cc_ = MakeProtocol();
  }

  std::unique_ptr<ConcurrencyControl> MakeProtocol() {
    const std::string name = GetParam();
    if (name == "rocc" || name == "mvrcc") {
      RoccOptions opts;
      RangeConfig rc;
      rc.table_id = table_;
      rc.key_min = 0;
      rc.key_max = kRows;
      rc.num_ranges = 8;
      rc.ring_capacity = 64;
      opts.tables = {rc};
      if (name == "mvrcc") return std::make_unique<Mvrcc2>(&db_, 4, std::move(opts));
      return std::make_unique<Rocc>(&db_, 4, std::move(opts));
    }
    if (name == "lrv") return std::make_unique<SiloLrv>(&db_, 4);
    if (name == "gwv") return std::make_unique<HyperGwv>(&db_, 4);
    return std::make_unique<TplNoWait>(&db_, 4);
  }

  uint64_t ReadValue(TxnDescriptor* t, uint64_t key, Status* st = nullptr) {
    char buf[kPayload] = {};
    Status s = cc_->Read(t, table_, key, buf);
    if (st != nullptr) *st = s;
    uint64_t v = 0;
    std::memcpy(&v, buf, sizeof(v));
    return v;
  }

  Status WriteValue(TxnDescriptor* t, uint64_t key, uint64_t value) {
    return cc_->Update(t, table_, key, &value, sizeof(value), 0);
  }

  Status InsertValue(TxnDescriptor* t, uint64_t key, uint64_t value) {
    char payload[kPayload] = {};
    std::memcpy(payload, &value, sizeof(value));
    return cc_->Insert(t, table_, key, payload);
  }

  /// Committed value as seen by a fresh transaction.
  uint64_t CommittedValue(uint64_t key) {
    TxnDescriptor* t = cc_->Begin(3);
    const uint64_t v = ReadValue(t, key);
    EXPECT_TRUE(cc_->Commit(t).ok());
    return v;
  }

  // MVRCC needs a distinct type name to avoid including both headers with
  // using declarations; alias it here.
  using Mvrcc2 = Mvrcc;

  Database db_;
  uint32_t table_ = 0;
  std::unique_ptr<ConcurrencyControl> cc_;
};

TEST_P(PointOpsTest, ReadCommittedValue) {
  TxnDescriptor* t = cc_->Begin(0);
  Status st;
  EXPECT_EQ(ReadValue(t, 5, &st), 50u);
  EXPECT_TRUE(st.ok());
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(PointOpsTest, ReadMissingKeyNotFound) {
  TxnDescriptor* t = cc_->Begin(0);
  Status st;
  ReadValue(t, 9999, &st);
  EXPECT_TRUE(st.not_found());
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(PointOpsTest, UpdateVisibleAfterCommitOnly) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(WriteValue(t, 5, 555).ok());
  // Own read sees the pending write.
  EXPECT_EQ(ReadValue(t, 5), 555u);
  ASSERT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(CommittedValue(5), 555u);
}

TEST_P(PointOpsTest, AbortDiscardsWrites) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(WriteValue(t, 5, 777).ok());
  cc_->Abort(t);
  EXPECT_EQ(CommittedValue(5), 50u);
}

TEST_P(PointOpsTest, PartialFieldUpdate) {
  TxnDescriptor* t = cc_->Begin(0);
  const uint64_t hi = 0x1234;
  ASSERT_TRUE(cc_->Update(t, table_, 5, &hi, sizeof(hi), 8).ok());
  ASSERT_TRUE(cc_->Commit(t).ok());
  // First 8 bytes untouched, second 8 bytes updated.
  TxnDescriptor* r = cc_->Begin(0);
  char buf[kPayload];
  ASSERT_TRUE(cc_->Read(r, table_, 5, buf).ok());
  uint64_t lo_v = 0, hi_v = 0;
  std::memcpy(&lo_v, buf, 8);
  std::memcpy(&hi_v, buf + 8, 8);
  EXPECT_EQ(lo_v, 50u);
  EXPECT_EQ(hi_v, 0x1234u);
  EXPECT_TRUE(cc_->Commit(r).ok());
}

TEST_P(PointOpsTest, MultipleUpdatesSameKeyCompose) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(WriteValue(t, 7, 100).ok());
  ASSERT_TRUE(WriteValue(t, 7, 200).ok());
  const uint64_t hi = 9;
  ASSERT_TRUE(cc_->Update(t, table_, 7, &hi, sizeof(hi), 8).ok());
  EXPECT_EQ(ReadValue(t, 7), 200u);
  ASSERT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(CommittedValue(7), 200u);
}

TEST_P(PointOpsTest, UpdateMissingKeyNotFound) {
  TxnDescriptor* t = cc_->Begin(0);
  EXPECT_TRUE(WriteValue(t, 12345, 1).not_found());
  cc_->Abort(t);
}

TEST_P(PointOpsTest, InsertVisibleAfterCommit) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(InsertValue(t, 1000, 42).ok());
  ASSERT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(CommittedValue(1000), 42u);
}

TEST_P(PointOpsTest, InsertAbortLeavesNoTrace) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(InsertValue(t, 1001, 42).ok());
  cc_->Abort(t);
  TxnDescriptor* r = cc_->Begin(0);
  Status st;
  ReadValue(r, 1001, &st);
  EXPECT_TRUE(st.not_found());
  EXPECT_TRUE(cc_->Commit(r).ok());
  // The key is insertable again.
  TxnDescriptor* t2 = cc_->Begin(0);
  ASSERT_TRUE(InsertValue(t2, 1001, 43).ok());
  EXPECT_TRUE(cc_->Commit(t2).ok());
  EXPECT_EQ(CommittedValue(1001), 43u);
}

TEST_P(PointOpsTest, DuplicateInsertRejected) {
  TxnDescriptor* t = cc_->Begin(0);
  Status st = InsertValue(t, 5, 1);
  // OCC protocols report KeyExists eagerly; 2PL aborts on the index conflict.
  EXPECT_FALSE(st.ok());
  cc_->Abort(t);
  EXPECT_EQ(CommittedValue(5), 50u);
}

TEST_P(PointOpsTest, DeleteCommitsRemoval) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Remove(t, table_, 9).ok());
  Status st;
  ReadValue(t, 9, &st);
  EXPECT_TRUE(st.not_found());  // own delete visible
  ASSERT_TRUE(cc_->Commit(t).ok());

  TxnDescriptor* r = cc_->Begin(0);
  ReadValue(r, 9, &st);
  EXPECT_TRUE(st.not_found());
  EXPECT_TRUE(cc_->Commit(r).ok());
}

TEST_P(PointOpsTest, DeleteThenReinsert) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Remove(t, table_, 11).ok());
  ASSERT_TRUE(cc_->Commit(t).ok());
  TxnDescriptor* t2 = cc_->Begin(0);
  ASSERT_TRUE(InsertValue(t2, 11, 999).ok());
  ASSERT_TRUE(cc_->Commit(t2).ok());
  EXPECT_EQ(CommittedValue(11), 999u);
}

TEST_P(PointOpsTest, DeleteAbortKeepsRow) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Remove(t, table_, 13).ok());
  cc_->Abort(t);
  EXPECT_EQ(CommittedValue(13), 130u);
}

// --------------------------------------------------------------------------
// Conflicts between interleaved transactions.
// --------------------------------------------------------------------------

TEST_P(PointOpsTest, LostUpdatePrevented) {
  // Both read key 3, both try read-modify-write; the second committer must
  // observe the conflict.
  TxnDescriptor* t1 = cc_->Begin(0);
  TxnDescriptor* t2 = cc_->Begin(1);
  Status s1, s2;
  const uint64_t v1 = ReadValue(t1, 3, &s1);
  const uint64_t v2 = ReadValue(t2, 3, &s2);

  if (GetParam() == "2pl") {
    // No-wait 2PL: the second reader already aborted on the lock.
    EXPECT_TRUE(s1.ok());
    EXPECT_TRUE(s2.aborted());
    ASSERT_TRUE(WriteValue(t1, 3, v1 + 1).ok());
    cc_->Abort(t2);
    EXPECT_TRUE(cc_->Commit(t1).ok());
    EXPECT_EQ(CommittedValue(3), 31u);
    return;
  }

  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(WriteValue(t1, 3, v1 + 1).ok());
  ASSERT_TRUE(WriteValue(t2, 3, v2 + 1).ok());
  EXPECT_TRUE(cc_->Commit(t1).ok());
  EXPECT_TRUE(cc_->Commit(t2).aborted());  // readset validation fails
  EXPECT_EQ(CommittedValue(3), 31u);
}

TEST_P(PointOpsTest, ReadValidationCatchesConcurrentWriter) {
  if (GetParam() == "2pl") GTEST_SKIP() << "2PL readers block writers instead";
  TxnDescriptor* t1 = cc_->Begin(0);
  ASSERT_EQ(ReadValue(t1, 4), 40u);

  TxnDescriptor* t2 = cc_->Begin(1);
  ASSERT_TRUE(WriteValue(t2, 4, 444).ok());
  ASSERT_TRUE(cc_->Commit(t2).ok());

  // t1 writes something unrelated so it is not read-only, then commits: its
  // read of key 4 is stale.
  ASSERT_TRUE(WriteValue(t1, 50, 1).ok());
  EXPECT_TRUE(cc_->Commit(t1).aborted());
}

TEST_P(PointOpsTest, ReadOnlyTxnAbortsOnStaleRead) {
  if (GetParam() == "2pl") GTEST_SKIP() << "2PL readers block writers instead";
  TxnDescriptor* t1 = cc_->Begin(0);
  ASSERT_EQ(ReadValue(t1, 4), 40u);
  TxnDescriptor* t2 = cc_->Begin(1);
  ASSERT_TRUE(WriteValue(t2, 4, 444).ok());
  ASSERT_TRUE(cc_->Commit(t2).ok());
  EXPECT_TRUE(cc_->Commit(t1).aborted());
}

TEST_P(PointOpsTest, NonConflictingTxnsBothCommit) {
  TxnDescriptor* t1 = cc_->Begin(0);
  TxnDescriptor* t2 = cc_->Begin(1);
  ASSERT_EQ(ReadValue(t1, 20), 200u);
  ASSERT_EQ(ReadValue(t2, 30), 300u);
  ASSERT_TRUE(WriteValue(t1, 21, 1).ok());
  ASSERT_TRUE(WriteValue(t2, 31, 2).ok());
  EXPECT_TRUE(cc_->Commit(t1).ok());
  EXPECT_TRUE(cc_->Commit(t2).ok());
  EXPECT_EQ(CommittedValue(21), 1u);
  EXPECT_EQ(CommittedValue(31), 2u);
}

TEST_P(PointOpsTest, BlindWritersBothCommit) {
  if (GetParam() == "2pl") GTEST_SKIP() << "2PL write locks conflict";
  // Two blind writers to the same key do not invalidate each other's reads;
  // the schedule is serializable in commit order (last writer wins).
  TxnDescriptor* t1 = cc_->Begin(0);
  TxnDescriptor* t2 = cc_->Begin(1);
  ASSERT_TRUE(WriteValue(t1, 6, 100).ok());
  ASSERT_TRUE(WriteValue(t2, 6, 200).ok());
  EXPECT_TRUE(cc_->Commit(t1).ok());
  EXPECT_TRUE(cc_->Commit(t2).ok());
  EXPECT_EQ(CommittedValue(6), 200u);
}

TEST_P(PointOpsTest, WriteSkewPrevented) {
  if (GetParam() == "2pl") GTEST_SKIP() << "2PL aborts the second reader";
  // Classic write skew: t1 reads A writes B; t2 reads B writes A.
  // A serializable protocol must abort at least one.
  TxnDescriptor* t1 = cc_->Begin(0);
  TxnDescriptor* t2 = cc_->Begin(1);
  const uint64_t a = ReadValue(t1, 40);
  const uint64_t b = ReadValue(t2, 41);
  ASSERT_TRUE(WriteValue(t1, 41, a).ok());
  ASSERT_TRUE(WriteValue(t2, 40, b).ok());
  const bool c1 = cc_->Commit(t1).ok();
  const bool c2 = cc_->Commit(t2).ok();
  EXPECT_FALSE(c1 && c2);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PointOpsTest,
                         ::testing::Values("rocc", "lrv", "gwv", "mvrcc", "2pl"),
                         [](const auto& pinfo) { return pinfo.param; });

}  // namespace
}  // namespace rocc
