// Tests of the adaptive range-refinement machinery (DESIGN.md §10): the
// commit-piggybacked RangeTuner, the transition-window validation paths
// (prev rings and the cross-table walk), the contention-relief hook, and a
// deterministic fiber-mode end-to-end run with the tuner active. A
// threads-mode variant exists for the TSan CI job.

#include <gtest/gtest.h>

#include <memory>

#include "core/range_tuner.h"
#include "core/rocc.h"
#include "harness/contention.h"
#include "harness/runner.h"
#include "harness/stats.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

/// Every key maps (via the current table) into the one range containing it,
/// and the ranges tile [key_min, key_max) without gap or overlap.
void CheckPartition(const RangeManager& rm) {
  const RangeTable* t = rm.Snapshot();
  ASSERT_GT(t->num_ranges(), 0u);
  EXPECT_EQ(t->range(0)->start_key, rm.key_min());
  for (uint32_t i = 0; i + 1 < t->num_ranges(); i++) {
    EXPECT_EQ(t->range(i)->end_key, t->range(i + 1)->start_key);
  }
  EXPECT_EQ(t->range(t->num_ranges() - 1)->end_key, rm.key_max());
  for (uint64_t k = rm.key_min(); k < rm.key_max(); k++) {
    const uint32_t rid = t->slice_to_range[rm.SliceOf(k)];
    ASSERT_LT(rid, t->num_ranges());
    EXPECT_LE(t->range(rid)->start_key, k) << "key " << k;
    EXPECT_LT(k, t->range(rid)->end_key) << "key " << k;
  }
}

class TunerWhiteBox : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 500;
  static constexpr uint32_t kNumRanges = 10;  // 50 keys per range

  /// Adaptive ROCC over the standard white-box table. `pressure_threshold`
  /// controls whether the tuner can fire on its own; tests that drive splits
  /// manually pass a huge threshold.
  void Init(uint32_t ring_capacity, uint32_t pressure_threshold,
            uint64_t min_split_score = 1) {
    db_ = std::make_unique<Database>();
    table_ = db_->CreateTable("t", Schema({{"v", 8, 0}}));
    for (uint64_t k = 0; k < kRows; k++) {
      db_->LoadRow(table_, k, &k);
    }
    RoccOptions opts;
    RangeConfig rc;
    rc.table_id = table_;
    rc.key_min = 0;
    rc.key_max = kRows;
    rc.num_ranges = kNumRanges;
    rc.ring_capacity = ring_capacity;
    opts.tables = {rc};
    opts.tuner.enabled = true;
    opts.tuner.slices_per_range = 8;
    opts.tuner.max_children = 4;
    opts.tuner.pressure_threshold = pressure_threshold;
    opts.tuner.min_split_score = min_split_score;
    cc_ = std::make_unique<Rocc>(db_.get(), 4, std::move(opts));
    cc_->AttachThread(0, &stats0_);
    cc_->AttachThread(1, &stats1_);
    stats0_.Reset();
    stats1_.Reset();
  }

  Status Write(uint32_t thread_id, uint64_t key) {
    TxnDescriptor* w = cc_->Begin(thread_id);
    const uint64_t value = key + 1;
    Status st = cc_->Update(w, table_, key, &value, sizeof(value), 0);
    if (!st.ok()) {
      cc_->Abort(w);
      return st;
    }
    return cc_->Commit(w);
  }

  std::unique_ptr<Database> db_;
  uint32_t table_ = 0;
  std::unique_ptr<Rocc> cc_;
  TxnStats stats0_, stats1_;
};

TEST_F(TunerWhiteBox, RingLostPressureSplitsHotRange) {
  // Tiny ring + eager tuner: one attributed ring_lost abort must trigger a
  // pass that splits the hot range.
  Init(/*ring_capacity=*/4, /*pressure_threshold=*/1);

  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 5, 45, 0, nullptr).ok());  // range 0, partial

  // Six committed writers wrap range 0's 4-slot ring: the scanner's window
  // (0, 6] has overwritten slots.
  for (uint64_t key = 10; key < 16; key++) {
    ASSERT_TRUE(Write(1, key).ok());
  }
  EXPECT_EQ(cc_->tuner()->splits(), 0u);  // no pressure yet

  EXPECT_FALSE(cc_->Commit(t).ok());
  EXPECT_EQ(stats0_.abort_ring_lost, 1u);

  // The failing commit's piggybacked pass saw the pressure and split range 0
  // into 4 children (10 - 1 + 4 ranges).
  RangeManager* rm = cc_->range_manager(table_);
  EXPECT_GE(cc_->tuner()->passes(), 1u);
  EXPECT_EQ(cc_->tuner()->splits(), 1u);
  EXPECT_EQ(rm->table_version(), 1u);
  EXPECT_EQ(rm->num_ranges(), 13u);
  CheckPartition(*rm);

  // A fresh scan of the old hot range now builds one predicate per child,
  // each fencing the parent's ring as its predecessor.
  TxnRing* parent_ring = nullptr;
  TxnDescriptor* t2 = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t2, table_, 0, 50, 0, nullptr).ok());
  ASSERT_EQ(t2->predicates.size(), 4u);
  for (const RangePredicate& p : t2->predicates) {
    EXPECT_TRUE(p.cover);
    ASSERT_EQ(p.num_prev, 1u);
    if (parent_ring == nullptr) parent_ring = p.prev[0].ring;
    EXPECT_EQ(p.prev[0].ring, parent_ring);  // same parent for all children
    EXPECT_EQ(p.prev[0].rd_ts, 6u);          // fenced at the parent's version
  }
  cc_->Abort(t2);

  // Writes keep flowing under the new layout.
  EXPECT_TRUE(Write(1, 12).ok());
}

TEST_F(TunerWhiteBox, CrossTableWalkCatchesWriterAfterSplit) {
  // Predicate built on table v0; the table splits underneath the scanner;
  // a writer then registers in a child ring the predicate never snapshotted.
  // The conservative cross-table walk must still catch it.
  Init(/*ring_capacity=*/256, /*pressure_threshold=*/1u << 30,
       /*min_split_score=*/~0ULL);

  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 0, 50, 0, nullptr).ok());
  ASSERT_EQ(t->predicates.size(), 1u);
  EXPECT_TRUE(t->predicates[0].cover);
  EXPECT_EQ(t->predicates[0].table_version, 0u);

  RangeManager* rm = cc_->range_manager(table_);
  ASSERT_TRUE(rm->Split(0, 2, cc_->epoch().Current()));
  ASSERT_EQ(rm->num_ranges(), 11u);

  ASSERT_TRUE(Write(1, 10).ok());  // lands in a child ring, inside the scan

  EXPECT_FALSE(cc_->Commit(t).ok());
  EXPECT_EQ(stats0_.abort_scan_conflict, 1u);
}

TEST_F(TunerWhiteBox, CrossTableWalkIgnoresDisjointWriter) {
  // Same race, but the post-split writer is outside the scanned span: the
  // walk is bounded to the predicate's keys and the scanner commits.
  Init(/*ring_capacity=*/256, /*pressure_threshold=*/1u << 30,
       /*min_split_score=*/~0ULL);

  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 0, 50, 0, nullptr).ok());

  RangeManager* rm = cc_->range_manager(table_);
  ASSERT_TRUE(rm->Split(0, 2, cc_->epoch().Current()));

  ASSERT_TRUE(Write(1, 400).ok());  // range 8: unrelated to the scan

  EXPECT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(stats0_.aborts, 0u);
}

TEST_F(TunerWhiteBox, PrevRingValidationIsPrecise) {
  // A writer that lands in the fenced parent ring during the transition
  // window but writes keys disjoint from the predicate must NOT abort the
  // scan: prev rings are checked with precise write-fingerprint bounds, not
  // the cover fast path.
  Init(/*ring_capacity=*/256, /*pressure_threshold=*/1u << 30,
       /*min_split_score=*/~0ULL);

  RangeManager* rm = cc_->range_manager(table_);
  std::shared_ptr<TxnRing> parent = rm->Snapshot()->ranges[0]->ring;
  ASSERT_TRUE(rm->Split(0, 2, cc_->epoch().Current()));  // [0,28) + [28,50)

  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 0, 20, 0, nullptr).ok());
  ASSERT_EQ(t->predicates.size(), 1u);
  ASSERT_EQ(t->predicates[0].num_prev, 1u);
  ASSERT_EQ(t->predicates[0].prev[0].ring, parent.get());

  // Writer of key 30 (the sibling child): its normal commit registers in the
  // sibling's ring, and we additionally plant it in the fenced parent ring —
  // the publish-race double registration the re-check loop can produce.
  TxnDescriptor* w = cc_->Begin(1);
  const uint64_t value = 7;
  ASSERT_TRUE(cc_->Update(w, table_, 30, &value, sizeof(value), 0).ok());
  parent->Register(w);
  ASSERT_TRUE(cc_->Commit(w).ok());

  // The scanner sees the writer in the parent window (0, 1], checks its
  // frozen fingerprint against [0, 20), and passes.
  EXPECT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(stats0_.aborts, 0u);
}

TEST(ContentionReliefTest, ReliefHookDefersEscalationOncePerTxn) {
  ContentionOptions copts;
  copts.scan_escalation_aborts = 2;
  copts.short_backoff_spins = 1;
  copts.long_backoff_spins = 1;
  ContentionManager cm(1, copts);
  TxnStats stats;
  cm.AttachThread(0, &stats);

  int calls = 0;
  cm.SetReliefHook([&](uint32_t) {
    calls++;
    return calls == 1;  // first attempt "splits something", later ones fail
  });

  Rng rng(42);
  cm.BeginTxn(0, /*is_scan_txn=*/true);
  cm.OnAbort(0, AbortReason::kRingLost, rng);  // below threshold: backoff
  EXPECT_EQ(stats.relief_splits, 0u);
  cm.OnAbort(0, AbortReason::kRingLost, rng);  // threshold: relief, no gate
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.relief_splits, 1u);
  EXPECT_EQ(stats.escalations, 0u);
  EXPECT_EQ(cm.protected_holder(), ContentionManager::kNoHolder);

  // The ladder was reset; two more aborts cross the threshold again, but the
  // one relief attempt per logical transaction is spent: escalate for real.
  cm.OnAbort(0, AbortReason::kRingLost, rng);
  cm.OnAbort(0, AbortReason::kRingLost, rng);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.escalations, 1u);
  EXPECT_EQ(cm.protected_holder(), 0u);
  EXPECT_TRUE(cm.InProtectedRetry(0));
  cm.OnCommit(0, 5);
  EXPECT_EQ(stats.protected_commits, 1u);
  EXPECT_EQ(cm.protected_holder(), ContentionManager::kNoHolder);

  // A new logical transaction gets a fresh relief attempt; when the hook
  // reports nothing to fix, escalation proceeds immediately.
  cm.BeginTxn(0, /*is_scan_txn=*/true);
  cm.OnAbort(0, AbortReason::kRingLost, rng);
  cm.OnAbort(0, AbortReason::kRingLost, rng);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(stats.relief_splits, 1u);
  EXPECT_EQ(stats.escalations, 2u);
  cm.OnStop(0);
  EXPECT_EQ(cm.protected_holder(), ContentionManager::kNoHolder);
}

/// End-to-end under the deterministic fiber runner: a high-skew hybrid YCSB
/// with tiny rings must drive the tuner to split, nothing may be dropped,
/// and the partition invariant must hold on the final table.
RunResult RunAdaptiveYcsb(ExecMode mode, uint32_t num_threads,
                          uint64_t txns_per_thread, Rocc** cc_out,
                          std::unique_ptr<Rocc>* cc_holder,
                          std::unique_ptr<Database>* db_holder,
                          std::unique_ptr<YcsbWorkload>* wl_holder) {
  YcsbOptions wopts;
  wopts.num_rows = 20'000;
  wopts.theta = 0.95;
  wopts.scan_txn_fraction = 0.2;
  wopts.scan_length = 200;
  *db_holder = std::make_unique<Database>();
  *wl_holder = std::make_unique<YcsbWorkload>(wopts);
  (*wl_holder)->Load(db_holder->get());

  RoccOptions ropts;
  ropts.tables = (*wl_holder)->RangeConfigs(/*ranges_hint=*/32,
                                            /*ring_capacity=*/16);
  ropts.default_ring_capacity = 16;
  ropts.tuner.enabled = true;
  ropts.tuner.pressure_threshold = 4;
  ropts.tuner.min_split_score = 2;
  *cc_holder = std::make_unique<Rocc>(db_holder->get(), num_threads, ropts);
  *cc_out = cc_holder->get();

  RunOptions run;
  run.num_threads = num_threads;
  run.txns_per_thread = txns_per_thread;
  run.warmup_txns_per_thread = 10;
  run.seed = 7;
  run.mode = mode;
  return RunExperiment(cc_holder->get(), wl_holder->get(), run);
}

TEST(AdaptiveEndToEndTest, FiberRunSplitsAndKeepsPartition) {
  Rocc* cc = nullptr;
  std::unique_ptr<Rocc> cc_holder;
  std::unique_ptr<Database> db;
  std::unique_ptr<YcsbWorkload> wl;
  const RunResult r =
      RunAdaptiveYcsb(ExecMode::kFibers, 16, 150, &cc, &cc_holder, &db, &wl);

  EXPECT_EQ(r.stats.give_ups, 0u);
  EXPECT_GT(r.stats.commits, 0u);
  // The tiny rings under high skew must have produced attributed scan aborts
  // and at least one tuning pass that split a hot range.
  EXPECT_GT(r.stats.abort_ring_lost + r.stats.abort_scan_conflict, 0u);
  EXPECT_GT(cc->tuner()->passes(), 0u);
  EXPECT_GT(cc->tuner()->splits(), 0u);

  RangeManager* rm = cc->range_manager(wl->table_id());
  EXPECT_EQ(rm->splits(), cc->tuner()->splits());
  CheckPartition(*rm);

  const RangeTelemetry tel = rm->Telemetry();
  EXPECT_EQ(tel.num_ranges, rm->num_ranges());
  EXPECT_EQ(tel.splits, rm->splits());
  EXPECT_GT(tel.total_registrations, 0u);
}

TEST(AdaptiveEndToEndTest, ThreadRunStaysConsistent) {
  // Real-thread variant: exercised under TSan in CI. Split counts are
  // timing-dependent here; only the invariants are asserted.
  Rocc* cc = nullptr;
  std::unique_ptr<Rocc> cc_holder;
  std::unique_ptr<Database> db;
  std::unique_ptr<YcsbWorkload> wl;
  const RunResult r =
      RunAdaptiveYcsb(ExecMode::kThreads, 4, 300, &cc, &cc_holder, &db, &wl);

  EXPECT_EQ(r.stats.give_ups, 0u);
  EXPECT_GT(r.stats.commits, 0u);
  CheckPartition(*cc->range_manager(wl->table_id()));
}

}  // namespace
}  // namespace rocc
