// Storage layer tests: Schema layout, TID-word protocol, Row consistent
// reads under concurrent writers, Table/Database loading, HashIndex.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/hash_index.h"
#include "storage/database.h"
#include "storage/row.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace rocc {
namespace {

// --------------------------------------------------------------------------
// Schema
// --------------------------------------------------------------------------

TEST(Schema, OffsetsAndRowSize) {
  Schema s({{"a", 8, 0}, {"b", 4, 0}, {"c", 16, 0}});
  EXPECT_EQ(s.row_size(), 28u);
  EXPECT_EQ(s.NumColumns(), 3u);
  EXPECT_EQ(s.ColumnOffset(0), 0u);
  EXPECT_EQ(s.ColumnOffset(1), 8u);
  EXPECT_EQ(s.ColumnOffset(2), 12u);
  EXPECT_EQ(s.ColumnSize(2), 16u);
}

TEST(Schema, ColumnLookupByName) {
  Schema s({{"x", 8, 0}, {"y", 8, 0}});
  EXPECT_EQ(s.ColumnIndex("x"), 0);
  EXPECT_EQ(s.ColumnIndex("y"), 1);
  EXPECT_EQ(s.ColumnIndex("z"), -1);
}

// --------------------------------------------------------------------------
// TID word
// --------------------------------------------------------------------------

TEST(TidWord, BitLayout) {
  EXPECT_FALSE(TidWord::IsLocked(5));
  EXPECT_TRUE(TidWord::IsLocked(TidWord::MakeLocked(5)));
  EXPECT_EQ(TidWord::Version(TidWord::MakeLocked(5)), 5u);
  EXPECT_TRUE(TidWord::IsAbsent(TidWord::kAbsentBit | 9));
  EXPECT_EQ(TidWord::Version(TidWord::kAbsentBit | 9), 9u);
}

class RowTest : public ::testing::Test {
 protected:
  Row* MakeRow(uint64_t key, bool visible = true) {
    void* mem = std::malloc(Row::AllocSize(kPayload));
    allocs_.push_back(mem);
    Row* r = Row::Init(mem, 1, key, kPayload, visible);
    if (visible) std::memset(r->Data(), 0, kPayload);
    return r;
  }
  ~RowTest() override {
    for (void* p : allocs_) std::free(p);
  }
  static constexpr uint32_t kPayload = 32;
  std::vector<void*> allocs_;
};

TEST_F(RowTest, InitVisible) {
  Row* r = MakeRow(7);
  EXPECT_EQ(r->key, 7u);
  EXPECT_EQ(r->payload_size, kPayload);
  EXPECT_FALSE(r->IsAbsent());
  uint64_t v = 0;
  EXPECT_TRUE(r->ReadVersion(&v));
  EXPECT_EQ(TidWord::Version(v), 1u);
}

TEST_F(RowTest, InitPlaceholderIsLockedAndAbsent) {
  Row* r = MakeRow(7, /*visible=*/false);
  EXPECT_TRUE(r->IsAbsent());
  uint64_t v = 0;
  EXPECT_FALSE(r->ReadVersion(&v));  // locked
  EXPECT_FALSE(r->TryLock());        // already locked
  r->UnlockWithVersion(42);          // commit the insert
  EXPECT_FALSE(r->IsAbsent());
  EXPECT_TRUE(r->ReadVersion(&v));
  EXPECT_EQ(v, 42u);
}

TEST_F(RowTest, LockUnlockCycle) {
  Row* r = MakeRow(1);
  EXPECT_TRUE(r->TryLock());
  EXPECT_FALSE(r->TryLock());
  r->Unlock();  // abort path: version unchanged
  uint64_t v = 0;
  EXPECT_TRUE(r->ReadVersion(&v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(r->TryLock());
  r->UnlockWithVersion(99);
  EXPECT_TRUE(r->ReadVersion(&v));
  EXPECT_EQ(v, 99u);
}

TEST_F(RowTest, UnlockAsDeletedSetsTombstone) {
  Row* r = MakeRow(1);
  ASSERT_TRUE(r->TryLock());
  r->UnlockAsDeleted(55);
  EXPECT_TRUE(r->IsAbsent());
  uint64_t v = 0;
  EXPECT_TRUE(r->ReadVersion(&v));
  EXPECT_EQ(TidWord::Version(v), 55u);
}

TEST_F(RowTest, ReadConsistentSeesCommittedValue) {
  Row* r = MakeRow(1);
  std::memset(r->Data(), 0x5a, kPayload);
  char buf[kPayload];
  uint64_t v = 0;
  ASSERT_EQ(r->ReadConsistent(buf, &v), RowRead::kOk);
  for (char c : buf) ASSERT_EQ(c, 0x5a);
}

// The three ReadConsistent outcomes are distinguishable: a row whose lock
// outlives the spin budget reports kBusy (caller should treat the writer's
// commit timestamp as unresolved), not kAbsent — conflating them turned
// contended reads into phantom deletes for MVCC fallback paths.
TEST_F(RowTest, ReadConsistentTriState) {
  Row* r = MakeRow(1);
  char buf[kPayload];
  uint64_t v = 0;
  ASSERT_TRUE(r->TryLock());
  EXPECT_EQ(r->ReadConsistent(buf, &v), RowRead::kBusy);
  r->Unlock();
  EXPECT_EQ(r->ReadConsistent(buf, &v), RowRead::kOk);
  ASSERT_TRUE(r->TryLock());
  r->UnlockAsDeleted(7);
  EXPECT_EQ(r->ReadConsistent(buf, &v), RowRead::kAbsent);
  EXPECT_EQ(TidWord::Version(v), 7u);
}

// A writer repeatedly locks, mutates the whole payload to a uniform value,
// and publishes; readers must never observe a torn mix of two values.
TEST_F(RowTest, ReadConsistentNeverTornUnderConcurrentWrites) {
  Row* r = MakeRow(1);
  std::memset(r->Data(), 0, kPayload);
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::thread writer([&] {
    uint64_t version = 2;
    for (int i = 1; i <= 200000; i++) {
      while (!r->TryLock()) {
      }
      std::memset(r->Data(), i & 0x7f, kPayload);
      r->UnlockWithVersion(version++);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    char buf[kPayload];
    uint64_t v;
    while (!stop.load()) {
      if (r->ReadConsistent(buf, &v) != RowRead::kOk) continue;
      for (uint32_t j = 1; j < kPayload; j++) {
        if (buf[j] != buf[0]) {
          torn.store(true);
          return;
        }
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(torn.load());
}

TEST_F(RowTest, LockWithSpinEventuallyAcquires) {
  Row* r = MakeRow(1);
  ASSERT_TRUE(r->TryLock());
  std::thread unlocker([&] { r->Unlock(); });
  unlocker.join();
  EXPECT_TRUE(r->LockWithSpin(1 << 20));
  r->Unlock();
}

// --------------------------------------------------------------------------
// Table / Database
// --------------------------------------------------------------------------

TEST(Table, CreateRowsAndPayload) {
  Table table(3, "t", Schema({{"v", 16, 0}}));
  char payload[16];
  std::memset(payload, 0x11, sizeof(payload));
  Row* r = table.CreateRow(5, payload);
  EXPECT_EQ(r->table_id, 3u);
  EXPECT_EQ(r->key, 5u);
  EXPECT_EQ(r->payload_size, 16u);
  EXPECT_EQ(std::memcmp(r->Data(), payload, 16), 0);
  EXPECT_EQ(table.row_count(), 1u);

  Row* p = table.CreatePlaceholderRow(6);
  EXPECT_TRUE(TidWord::IsLocked(p->tid.load()));
  EXPECT_TRUE(TidWord::IsAbsent(p->tid.load()));
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, NullPayloadZeroFills) {
  Table table(0, "t", Schema({{"v", 8, 0}}));
  Row* r = table.CreateRow(1, nullptr);
  for (int i = 0; i < 8; i++) EXPECT_EQ(r->Data()[i], 0);
}

TEST(Database, CreateTablesAndLoad) {
  Database db;
  const uint32_t t1 = db.CreateTable("alpha", Schema({{"v", 8, 0}}));
  const uint32_t t2 = db.CreateTable("beta", Schema({{"v", 24, 0}}));
  EXPECT_EQ(t1, 0u);
  EXPECT_EQ(t2, 1u);
  EXPECT_EQ(db.NumTables(), 2u);
  EXPECT_EQ(db.GetTable("alpha")->id(), t1);
  EXPECT_EQ(db.GetTable("beta")->id(), t2);
  EXPECT_EQ(db.GetTable("gamma"), nullptr);

  uint64_t value = 77;
  Row* r = db.LoadRow(t1, 9, &value);
  EXPECT_EQ(db.GetIndex(t1)->Get(9), r);
  EXPECT_EQ(db.GetIndex(t2)->Get(9), nullptr);
  uint64_t readback = 0;
  std::memcpy(&readback, r->Data(), 8);
  EXPECT_EQ(readback, 77u);
}

// --------------------------------------------------------------------------
// HashIndex
// --------------------------------------------------------------------------

Row* HRow(uint64_t key) { return reinterpret_cast<Row*>((key << 3) | 2); }

TEST(HashIndex, InsertGetRemove) {
  HashIndex idx(1000);
  for (uint64_t k = 0; k < 1000; k++) ASSERT_TRUE(idx.Insert(k, HRow(k)).ok());
  EXPECT_EQ(idx.Size(), 1000u);
  for (uint64_t k = 0; k < 1000; k++) ASSERT_EQ(idx.Get(k), HRow(k));
  EXPECT_EQ(idx.Get(5000), nullptr);
  EXPECT_EQ(idx.Insert(3, HRow(3)).code(), Code::kKeyExists);
  ASSERT_TRUE(idx.Remove(3).ok());
  EXPECT_EQ(idx.Get(3), nullptr);
  EXPECT_TRUE(idx.Remove(3).not_found());
  // Tombstone slots are reusable.
  ASSERT_TRUE(idx.Insert(3, HRow(3)).ok());
  EXPECT_EQ(idx.Get(3), HRow(3));
}

TEST(HashIndex, ProbingPastCollisions) {
  HashIndex idx(16);
  // Force many keys through a small table (capacity is 2x+16 rounded up).
  for (uint64_t k = 0; k < 16; k++) ASSERT_TRUE(idx.Insert(k * 64, HRow(k)).ok());
  for (uint64_t k = 0; k < 16; k++) ASSERT_EQ(idx.Get(k * 64), HRow(k));
}

TEST(HashIndex, ConcurrentDistinctInserts) {
  HashIndex idx(100000);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < 20000; i++) {
        const uint64_t k = i * kThreads + t;
        ASSERT_TRUE(idx.Insert(k, HRow(k)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(idx.Size(), 80000u);
  for (uint64_t k = 0; k < 80000; k++) ASSERT_EQ(idx.Get(k), HRow(k));
}

TEST(HashIndex, ConcurrentRacingInsertsSingleWinner) {
  HashIndex idx(10000);
  constexpr int kThreads = 4;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (uint64_t k = 0; k < 5000; k++) {
        if (idx.Insert(k, HRow(k)).ok()) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 5000);
  EXPECT_EQ(idx.Size(), 5000u);
}

}  // namespace
}  // namespace rocc
