// Randomized differential test of the transaction-local write overlay.
//
// Interleaves Insert / Update (partial fields) / Delete / Read / Scan inside
// single transactions and checks read-your-own-writes against a naive
// std::map reference model, for every protocol. This pins the in-transaction
// key life cycle the O(1) write-set index must preserve:
//   - a delete is terminal for a key: later Update/Remove return NotFound
//     and Insert returns KeyExists (2PL surfaces the insert as an abort);
//   - removing one's own pending insert cancels it;
//   - partial field images compose chronologically (left to right);
//   - scans deliver pending inserts merged in key order, and a transaction's
//     own image wins over the indexed record (regression: the duplicate-key
//     skip used to drop the record instead of delivering the local view).
//
// Everything runs on one OS thread, so any protocol divergence is a logic
// bug, not a race.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cc/hyper_gwv.h"
#include "cc/mvrcc.h"
#include "cc/silo_lrv.h"
#include "cc/two_phase_locking.h"
#include "common/rng.h"
#include "core/rocc.h"

namespace rocc {
namespace {

constexpr uint64_t kKeySpace = 64;
constexpr uint32_t kPayload = 16;  // two u64 fields: A @0, B @8

using Payload = std::array<char, kPayload>;

Payload MakePayload(uint64_t a, uint64_t b) {
  Payload p{};
  std::memcpy(p.data(), &a, 8);
  std::memcpy(p.data() + 8, &b, 8);
  return p;
}

class CollectingConsumer : public ScanConsumer {
 public:
  explicit CollectingConsumer(uint64_t stop_after = 0) : stop_after_(stop_after) {}

  bool OnRecord(uint64_t key, const char* payload) override {
    keys.push_back(key);
    Payload p;
    std::memcpy(p.data(), payload, kPayload);
    payloads.push_back(p);
    return stop_after_ == 0 || keys.size() < stop_after_;
  }

  std::vector<uint64_t> keys;
  std::vector<Payload> payloads;

 private:
  uint64_t stop_after_;
};

class OverlayModelTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    Schema schema({{"a", 8, 0}, {"b", 8, 8}});
    table_ = db_.CreateTable("t", std::move(schema));
    // Load every other key so inserts and deletes both have room to act.
    for (uint64_t k = 0; k < kKeySpace; k += 2) {
      const Payload p = MakePayload(k, k * 100);
      db_.LoadRow(table_, k, p.data());
      committed_[k] = p;
    }
    cc_ = MakeProtocol();
    cc_->AttachThread(0, nullptr);
  }

  std::unique_ptr<ConcurrencyControl> MakeProtocol() {
    const std::string name = GetParam();
    if (name == "rocc" || name == "mvrcc") {
      RoccOptions opts;
      RangeConfig rc;
      rc.table_id = table_;
      rc.key_min = 0;
      rc.key_max = kKeySpace;
      rc.num_ranges = 8;
      rc.ring_capacity = 256;
      opts.tables = {rc};
      if (name == "mvrcc") return std::make_unique<Mvrcc>(&db_, 2, std::move(opts));
      return std::make_unique<Rocc>(&db_, 2, std::move(opts));
    }
    if (name == "lrv") return std::make_unique<SiloLrv>(&db_, 2);
    if (name == "gwv") return std::make_unique<HyperGwv>(&db_, 2);
    return std::make_unique<TplNoWait>(&db_, 2);
  }

  /// One transaction of `num_ops` random operations, mirrored against the
  /// reference; commits (or aborts, for 2PL duplicate-key inserts) and folds
  /// the outcome back into `committed_`.
  void RunModelTxn(Rng& rng, int num_ops) {
    TxnDescriptor* t = cc_->Begin(0);
    // Reference state for this transaction.
    std::map<uint64_t, Payload> view(committed_);
    std::set<uint64_t> written;           // keys with any pending write chain
    std::set<uint64_t> terminal_deleted;  // newest chain entry is a delete
    bool txn_aborted = false;

    for (int op = 0; op < num_ops && !txn_aborted; op++) {
      const uint64_t key = rng.Uniform(kKeySpace);
      switch (rng.Uniform(6)) {
        case 0: {  // Read
          Payload buf{};
          const Status st = cc_->Read(t, table_, key, buf.data());
          if (view.count(key)) {
            ASSERT_TRUE(st.ok()) << "read live key " << key << ": " << st.ToString();
            ASSERT_EQ(0, std::memcmp(buf.data(), view[key].data(), kPayload))
                << "read of key " << key << " returned a stale image";
          } else {
            ASSERT_TRUE(st.not_found()) << "read dead key " << key;
          }
          break;
        }
        case 1: {  // partial Update of field A or B
          const uint64_t v = rng.Next();
          const uint32_t off = rng.Uniform(2) ? 8 : 0;
          const Status st = cc_->Update(t, table_, key, &v, 8, off);
          if (view.count(key) && !terminal_deleted.count(key)) {
            ASSERT_TRUE(st.ok()) << "update live key " << key << ": " << st.ToString();
            std::memcpy(view[key].data() + off, &v, 8);
            written.insert(key);
          } else {
            ASSERT_TRUE(st.not_found()) << "update dead key " << key;
          }
          break;
        }
        case 2: {  // Insert
          const Payload p = MakePayload(rng.Next(), rng.Next());
          const Status st = cc_->Insert(t, table_, key, p.data());
          if (written.count(key) || view.count(key)) {
            // 2PL defers its delete, so the key is still indexed and the
            // duplicate surfaces as an immediate abort instead of KeyExists.
            ASSERT_FALSE(st.ok()) << "insert of existing key " << key;
            if (st.aborted()) {
              cc_->Abort(t);
              txn_aborted = true;
            } else {
              ASSERT_EQ(Code::kKeyExists, st.code());
            }
          } else {
            ASSERT_TRUE(st.ok()) << "insert free key " << key << ": " << st.ToString();
            view[key] = p;
            written.insert(key);
            terminal_deleted.erase(key);
          }
          break;
        }
        case 3: {  // Remove
          const Status st = cc_->Remove(t, table_, key);
          if (view.count(key) && !terminal_deleted.count(key)) {
            ASSERT_TRUE(st.ok()) << "remove live key " << key << ": " << st.ToString();
            view.erase(key);
            written.insert(key);
            terminal_deleted.insert(key);
          } else {
            ASSERT_TRUE(st.not_found()) << "remove dead key " << key;
          }
          break;
        }
        default: {  // Scan a random window, sometimes with an early stop
          uint64_t lo = rng.Uniform(kKeySpace);
          uint64_t hi = lo + 1 + rng.Uniform(kKeySpace);
          if (hi > kKeySpace) hi = kKeySpace;
          const uint64_t limit = rng.Uniform(4) == 0 ? 1 + rng.Uniform(8) : 0;
          CollectingConsumer got;
          const Status st = cc_->Scan(t, table_, lo, hi, limit, &got);
          ASSERT_TRUE(st.ok()) << "scan [" << lo << "," << hi
                               << "): " << st.ToString();
          std::vector<uint64_t> want_keys;
          std::vector<Payload> want_payloads;
          for (auto it = view.lower_bound(lo); it != view.end() && it->first < hi;
               ++it) {
            if (limit != 0 && want_keys.size() >= limit) break;
            want_keys.push_back(it->first);
            want_payloads.push_back(it->second);
          }
          ASSERT_EQ(want_keys, got.keys) << "scan [" << lo << "," << hi << ")";
          for (size_t i = 0; i < want_keys.size(); i++) {
            ASSERT_EQ(0, std::memcmp(want_payloads[i].data(), got.payloads[i].data(),
                                     kPayload))
                << "scan image of key " << want_keys[i];
          }
          break;
        }
      }
    }

    if (txn_aborted) return;  // committed_ unchanged
    const Status st = cc_->Commit(t);
    ASSERT_TRUE(st.ok()) << "single-threaded commit failed: " << st.ToString();
    committed_ = std::move(view);
  }

  /// Full-state audit through a fresh transaction.
  void VerifyCommittedState() {
    TxnDescriptor* t = cc_->Begin(0);
    CollectingConsumer got;
    ASSERT_TRUE(cc_->Scan(t, table_, 0, kKeySpace, 0, &got).ok());
    std::vector<uint64_t> want;
    for (const auto& kv : committed_) want.push_back(kv.first);
    ASSERT_EQ(want, got.keys);
    for (size_t i = 0; i < want.size(); i++) {
      ASSERT_EQ(0, std::memcmp(committed_[want[i]].data(), got.payloads[i].data(),
                               kPayload))
          << "committed image of key " << want[i];
    }
    ASSERT_TRUE(cc_->Commit(t).ok());
  }

  Database db_;
  uint32_t table_ = 0;
  std::map<uint64_t, Payload> committed_;
  std::unique_ptr<ConcurrencyControl> cc_;
};

TEST_P(OverlayModelTest, RandomizedAgainstMapReference) {
  Rng rng(0xC0FFEE ^ std::hash<std::string>{}(GetParam()));
  for (int txn = 0; txn < 300; txn++) {
    RunModelTxn(rng, 1 + static_cast<int>(rng.Uniform(24)));
    if (txn % 25 == 0) VerifyCommittedState();
  }
  VerifyCommittedState();
}

// Deterministic regression for the duplicate-pending-key scan fix: a pending
// insert whose key is also delivered by the index must surface exactly once,
// with the transaction's own image.
TEST_P(OverlayModelTest, ScanDeliversOwnImageForIndexedPendingKey) {
  if (GetParam() == "2pl") return;  // 2PL indexes its inserts immediately
  TxnDescriptor* t = cc_->Begin(0);
  // Key 1 is odd, so it is not loaded. Queue a pending insert plus a partial
  // update of it.
  const Payload p = MakePayload(7, 70);
  ASSERT_TRUE(cc_->Insert(t, table_, 1, p.data()).ok());
  const uint64_t v = 777;
  ASSERT_TRUE(cc_->Update(t, table_, 1, &v, 8, 8).ok());
  // A concurrent writer now materialises key 1 in the index and holds its
  // record lock (mid-commit). The scan must still deliver this transaction's
  // own image exactly once: the old duplicate-key skip fell through to the
  // base record and aborted on the foreign lock instead.
  Row* foreign = db_.LoadRow(table_, 1, MakePayload(999, 999).data());
  ASSERT_TRUE(foreign->TryLock());
  CollectingConsumer got;
  ASSERT_TRUE(cc_->Scan(t, table_, 0, 4, 0, &got).ok());
  ASSERT_EQ((std::vector<uint64_t>{0, 1, 2}), got.keys);
  const Payload want = MakePayload(7, 777);
  ASSERT_EQ(0, std::memcmp(want.data(), got.payloads[1].data(), kPayload));
  foreign->Unlock();
  // The pending insert now collides with a live committed row: the commit
  // must abort rather than clobber it.
  ASSERT_TRUE(cc_->Commit(t).aborted());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, OverlayModelTest,
                         ::testing::Values("rocc", "lrv", "gwv", "mvrcc", "2pl"));

}  // namespace
}  // namespace rocc
