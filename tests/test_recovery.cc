// Durability subsystem: WAL round trips, group-commit crash points, fuzzy
// checkpoints, and full recovery (src/log/).
//
// The oracle is a bank: an `accounts` table of balances plus a `journal`
// table where every transfer atomically inserts one row describing itself.
// Because the WAL value-logs absolute balances, a recovered state is
// consistent iff replaying the *recovered* journal against the initial
// balances reproduces the *recovered* balances exactly — a dropped or
// partially-applied transfer (atomicity violation) and a transfer recovered
// without a transfer it depends on (dependency violation) both break the
// equality. Crash points are injected at deterministic WAL byte offsets
// (log/fault_injection.h): the flusher persists exactly the bytes below the
// armed offset and dies, covering mid-record, mid-epoch-batch, and
// post-checkpoint crashes.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cc/silo_lrv.h"
#include "cc/two_phase_locking.h"
#include "core/rocc.h"
#include "log/fault_injection.h"
#include "log/log_manager.h"
#include "log/log_record.h"

namespace rocc {

/// White-box seam: lets a test drive individual group-commit cycles and pin
/// the flusher mid-drain to force the straggler interleaving on demand.
struct LogManagerTestPeer {
  static void FlushOnce(LogManager* lm) { lm->FlushOnce(); }
  static SpinLatch& WorkerLatch(LogManager* lm, uint32_t i) {
    return lm->workers_[i]->latch;
  }
  static uint64_t OpenEpoch(const LogManager* lm) {
    return lm->open_epoch_.load(std::memory_order_acquire);
  }
};

namespace {

constexpr uint64_t kNumAccounts = 64;
constexpr int64_t kInitialBalance = 1000;
constexpr uint32_t kThreads = 4;

std::string FreshDir() {
  std::string tmpl = ::testing::TempDir() + "rocc-recovery-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

struct JournalRow {
  uint64_t src = 0;
  uint64_t dst = 0;
  int64_t amount = 0;
};
static_assert(sizeof(JournalRow) == 24);

/// Bank database + a driver that issues transfer transactions from one OS
/// thread, rotating across logical worker ids so records spread over every
/// per-worker redo buffer.
struct Bank {
  Database db;
  uint32_t accounts = 0;
  uint32_t journal = 0;
  std::unique_ptr<OccBase> cc;
  std::vector<TxnStats> stats;
  uint64_t next_journal_key = 0;
  uint64_t committed = 0;
  uint64_t rng_state = 0x2545f4914f6cdd1dULL;

  /// Create the schema and the deterministic bulk-load image — exactly what
  /// LogManager::Recover's contract asks the caller to pre-create.
  void InitSchema() {
    accounts = db.CreateTable("accounts", Schema({{"bal", 8, 0}}));
    journal = db.CreateTable(
        "journal", Schema({{"src", 8, 0}, {"dst", 8, 8}, {"amt", 8, 16}}));
    for (uint64_t a = 0; a < kNumAccounts; a++) {
      db.LoadRow(accounts, a, &kInitialBalance);
    }
  }

  void StartCc(const std::string& proto = "lrv") {
    if (proto == "rocc") {
      RoccOptions opts;
      RangeConfig ra;
      ra.table_id = accounts;
      ra.key_min = 0;
      ra.key_max = kNumAccounts;
      ra.num_ranges = 4;
      ra.ring_capacity = 256;
      RangeConfig rj = ra;
      rj.table_id = journal;
      rj.key_max = 1u << 20;
      opts.tables = {ra, rj};
      cc = std::make_unique<Rocc>(&db, kThreads, std::move(opts));
    } else if (proto == "2pl") {
      cc = std::make_unique<TplNoWait>(&db, kThreads);
    } else {
      cc = std::make_unique<SiloLrv>(&db, kThreads);
    }
    stats.assign(kThreads, TxnStats{});
    for (uint32_t i = 0; i < kThreads; i++) cc->AttachThread(i, &stats[i]);
  }

  uint64_t NextRand() {
    rng_state ^= rng_state << 13;
    rng_state ^= rng_state >> 7;
    rng_state ^= rng_state << 17;
    return rng_state;
  }

  bool Transfer(uint32_t tid, uint64_t src, uint64_t dst, int64_t amount) {
    TxnDescriptor* t = cc->Begin(tid);
    int64_t src_bal = 0, dst_bal = 0;
    if (!cc->Read(t, accounts, src, &src_bal).ok() ||
        !cc->Read(t, accounts, dst, &dst_bal).ok()) {
      cc->Abort(t);
      return false;
    }
    src_bal -= amount;
    dst_bal += amount;
    if (!cc->Update(t, accounts, src, &src_bal, 8, 0).ok() ||
        !cc->Update(t, accounts, dst, &dst_bal, 8, 0).ok()) {
      cc->Abort(t);
      return false;
    }
    JournalRow j{src, dst, amount};
    if (!cc->Insert(t, journal, next_journal_key, &j).ok()) {
      cc->Abort(t);
      return false;
    }
    if (!cc->Commit(t).ok()) return false;
    next_journal_key++;
    committed++;
    return true;
  }

  /// Issue `n` random transfers; with a single driving thread every attempt
  /// commits (no concurrent conflicts), which the tests assert.
  void RunTransfers(uint64_t n) {
    for (uint64_t i = 0; i < n; i++) {
      const uint64_t src = NextRand() % kNumAccounts;
      uint64_t dst = NextRand() % kNumAccounts;
      if (dst == src) dst = (dst + 1) % kNumAccounts;
      const int64_t amount = 1 + static_cast<int64_t>(NextRand() % 50);
      ASSERT_TRUE(Transfer(static_cast<uint32_t>(i % kThreads), src, dst, amount));
    }
  }
};

struct BankState {
  std::map<uint64_t, int64_t> balances;
  std::map<uint64_t, JournalRow> journal;
};

BankState Snapshot(Database* db, uint32_t accounts, uint32_t journal) {
  BankState s;
  db->GetIndex(accounts)->ScanRange(0, ~0ULL, [&](uint64_t key, Row* row) {
    if (!row->IsAbsent()) {
      int64_t b = 0;
      std::memcpy(&b, row->Data(), 8);
      s.balances[key] = b;
    }
    return true;
  });
  db->GetIndex(journal)->ScanRange(0, ~0ULL, [&](uint64_t key, Row* row) {
    if (!row->IsAbsent()) {
      JournalRow j;
      std::memcpy(&j, row->Data(), sizeof(j));
      s.journal[key] = j;
    }
    return true;
  });
  return s;
}

/// The bank invariant: recovered balances == initial balances + the effect
/// of exactly the recovered journal rows, and the journal is a dense prefix
/// {0..k-1} of the committed transfer sequence (whole-epoch prefix recovery;
/// the single-threaded driver commits in key order).
void CheckOracle(const BankState& s, uint64_t committed) {
  ASSERT_EQ(s.balances.size(), kNumAccounts);
  ASSERT_LE(s.journal.size(), committed);
  uint64_t expect_key = 0;
  std::map<uint64_t, int64_t> model;
  for (uint64_t a = 0; a < kNumAccounts; a++) model[a] = kInitialBalance;
  for (const auto& [key, j] : s.journal) {
    EXPECT_EQ(key, expect_key++) << "journal is not a dense prefix";
    model[j.src] -= j.amount;
    model[j.dst] += j.amount;
  }
  EXPECT_EQ(model, s.balances)
      << "recovered balances diverge from replaying the recovered journal";
}

LogOptions MakeLogOptions(const std::string& dir, FaultInjector* fault = nullptr,
                          bool sync_ack = true) {
  LogOptions lo;
  lo.log_dir = dir;
  lo.group_commit_us = 50;
  lo.sync_ack = sync_ack;
  lo.fault = fault;
  return lo;
}

// ---------------------------------------------------------------------------
// WAL format round trip + torn-tail sweep (no engine involved).
// ---------------------------------------------------------------------------

TEST(WalFormat, RoundTripAndTornTail) {
  TxnDescriptor t;
  t.Reset(/*txn_id=*/42, /*thread_id=*/0, /*start_ts=*/1);
  int64_t v1 = 111, v2 = -7;
  char full[24] = {1, 2, 3};
  WriteEntry upd{};
  upd.table_id = 0;
  upd.key = 5;
  upd.kind = WriteEntry::Kind::kUpdate;
  upd.data_offset = t.AppendImage(&v1, 8);
  upd.data_size = 8;
  upd.field_offset = 0;
  t.write_set.push_back(upd);
  WriteEntry ins{};
  ins.table_id = 1;
  ins.key = 9000;
  ins.kind = WriteEntry::Kind::kInsert;
  ins.data_offset = t.AppendImage(full, sizeof(full));
  ins.data_size = sizeof(full);
  t.write_set.push_back(ins);
  WriteEntry del{};
  del.table_id = 0;
  del.key = 6;
  del.kind = WriteEntry::Kind::kDelete;
  t.write_set.push_back(del);
  (void)v2;

  std::vector<char> buf;
  wal::AppendCommitRecord(&buf, /*epoch=*/3, t, /*commit_ts=*/77);
  wal::AppendEpochMark(&buf, 3);

  {
    wal::Parser p(buf.data(), buf.size());
    wal::RecordType type;
    wal::CommitRecord rec;
    uint64_t mark = 0;
    ASSERT_TRUE(p.Next(&type, &rec, &mark));
    ASSERT_EQ(type, wal::RecordType::kCommit);
    EXPECT_EQ(rec.epoch, 3u);
    EXPECT_EQ(rec.commit_ts, 77u);
    EXPECT_EQ(rec.txn_id, 42u);
    ASSERT_EQ(rec.writes.size(), 3u);
    EXPECT_EQ(rec.writes[0].kind, wal::WriteKind::kUpdate);
    int64_t got = 0;
    std::memcpy(&got, rec.writes[0].data, 8);
    EXPECT_EQ(got, 111);
    EXPECT_EQ(rec.writes[1].kind, wal::WriteKind::kInsert);
    EXPECT_EQ(rec.writes[1].size, 24u);
    EXPECT_EQ(rec.writes[2].kind, wal::WriteKind::kDelete);
    EXPECT_EQ(rec.writes[2].size, 0u);
    ASSERT_TRUE(p.Next(&type, &rec, &mark));
    ASSERT_EQ(type, wal::RecordType::kEpochMark);
    EXPECT_EQ(mark, 3u);
    EXPECT_FALSE(p.Next(&type, &rec, &mark));
    EXPECT_EQ(p.valid_bytes(), buf.size());
  }

  // Every possible truncation point parses a (possibly empty) clean prefix.
  for (size_t cut = 0; cut < buf.size(); cut++) {
    wal::Parser p(buf.data(), cut);
    wal::RecordType type;
    wal::CommitRecord rec;
    uint64_t mark = 0;
    size_t frames = 0;
    while (p.Next(&type, &rec, &mark)) frames++;
    EXPECT_LE(p.valid_bytes(), cut);
    EXPECT_LE(frames, 1u);  // only the first record can fit below a full cut
  }

  // A flipped byte inside a frame body is rejected by the CRC.
  std::vector<char> corrupt = buf;
  corrupt[12] ^= 0x40;
  wal::Parser p(corrupt.data(), corrupt.size());
  wal::RecordType type;
  wal::CommitRecord rec;
  uint64_t mark = 0;
  EXPECT_FALSE(p.Next(&type, &rec, &mark));
  EXPECT_EQ(p.valid_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Clean shutdown: everything committed is recovered, under every protocol.
// ---------------------------------------------------------------------------

class CleanShutdownTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CleanShutdownTest, RecoversEverything) {
  const std::string dir = FreshDir();
  Bank bank;
  bank.InitSchema();
  bank.StartCc(GetParam());
  LogManager log(MakeLogOptions(dir), kThreads);
  ASSERT_TRUE(log.Open().ok());
  bank.cc->AttachLog(&log);

  bank.RunTransfers(200);
  log.Stop();
  const BankState live = Snapshot(&bank.db, bank.accounts, bank.journal);

  Bank fresh;
  fresh.InitSchema();
  RecoveryStats rs;
  ASSERT_TRUE(LogManager::Recover(dir, &fresh.db, &rs).ok());
  EXPECT_EQ(rs.replayed_records, 200u);
  EXPECT_EQ(rs.torn_bytes, 0u);
  EXPECT_EQ(rs.skipped_records, 0u);
  EXPECT_EQ(rs.resume_wal_bytes, rs.valid_wal_bytes);

  const BankState rec = Snapshot(&fresh.db, fresh.accounts, fresh.journal);
  EXPECT_EQ(rec.balances, live.balances);
  EXPECT_EQ(rec.journal.size(), live.journal.size());
  CheckOracle(rec, bank.committed);
  EXPECT_EQ(rec.journal.size(), bank.committed);

  // Durable acks were real: every commit waited out its epoch.
  TxnStats merged;
  for (const TxnStats& s : bank.stats) merged.Merge(s);
  EXPECT_EQ(merged.durable_acks, bank.committed);
  EXPECT_EQ(merged.durable_ack_failures, 0u);
  EXPECT_EQ(merged.log_records, bank.committed);
}

INSTANTIATE_TEST_SUITE_P(Protocols, CleanShutdownTest,
                         ::testing::Values("lrv", "rocc", "2pl"));

// ---------------------------------------------------------------------------
// Injected crash points: recovery lands on a consistent whole-epoch prefix.
// ---------------------------------------------------------------------------

TEST(RecoveryCrash, CrashPointSweep) {
  // Async acks so epochs batch several records: odd offsets then land
  // mid-record (torn frame) and even past-record offsets land mid-epoch
  // (records durable, their covering mark lost).
  const uint64_t offsets[] = {0, 1, 137, 777, 2048, 5003, 12345};
  uint64_t total_torn = 0, total_skipped = 0;
  for (const uint64_t offset : offsets) {
    SCOPED_TRACE("crash offset " + std::to_string(offset));
    const std::string dir = FreshDir();
    Bank bank;
    bank.InitSchema();
    bank.StartCc();
    FaultInjector fault;
    fault.CrashAtWalOffset(offset);
    LogManager log(MakeLogOptions(dir, &fault, /*sync_ack=*/false), kThreads);
    ASSERT_TRUE(log.Open().ok());
    bank.cc->AttachLog(&log);

    bank.RunTransfers(400);
    log.Stop();
    EXPECT_TRUE(fault.crashed());
    EXPECT_TRUE(log.crashed());
    EXPECT_LE(log.durable_bytes(), offset);

    Bank fresh;
    fresh.InitSchema();
    RecoveryStats rs;
    ASSERT_TRUE(LogManager::Recover(dir, &fresh.db, &rs).ok());
    EXPECT_LE(rs.valid_wal_bytes, offset);
    total_torn += rs.torn_bytes;
    total_skipped += rs.skipped_records;

    const BankState rec = Snapshot(&fresh.db, fresh.accounts, fresh.journal);
    CheckOracle(rec, bank.committed);
    EXPECT_LT(rec.journal.size(), bank.committed);  // the crash lost a suffix
    if (offset <= 1) {
      EXPECT_TRUE(rec.journal.empty());
    }
  }
  // Deterministic record sizes make some offsets cut frames and others cut
  // epochs; the sweep must exercise both discard paths.
  EXPECT_GT(total_torn, 0u);
  EXPECT_GT(total_skipped, 0u);
}

// ---------------------------------------------------------------------------
// Straggler coverage: a record that takes its buffer latch after the epoch
// cut is drained into the batch written under the older mark, tagged one
// higher. The next drain-nothing cycle must write a covering mark before
// acknowledging that epoch — otherwise the acknowledged commit has no mark
// covering it and recovery discards it (the high-severity group-commit hole).
// ---------------------------------------------------------------------------

TEST(RecoveryCrash, StragglerCoveredBeforeAck) {
  const std::string dir = FreshDir();
  LogOptions lo;
  lo.log_dir = dir;
  lo.group_commit_us = 3600u * 1000 * 1000;  // park the flusher; test drives cycles
  LogManager log(lo, /*num_threads=*/2);
  ASSERT_TRUE(log.Open().ok());

  auto make_txn = [](TxnDescriptor* t, uint64_t txn_id, int64_t value) {
    t->Reset(txn_id, /*thread_id=*/1, /*start_ts=*/txn_id);
    WriteEntry we{};
    we.table_id = 0;
    we.key = txn_id;
    we.kind = WriteEntry::Kind::kUpdate;
    we.data_offset = t->AppendImage(&value, 8);
    we.data_size = 8;
    we.field_offset = 0;
    t->write_set.push_back(we);
  };
  TxnDescriptor t1, t2;
  make_txn(&t1, 1, 111);
  make_txn(&t2, 2, 222);
  ASSERT_EQ(log.LogCommit(1, &t1, /*commit_ts=*/10), 1u);

  // Pin the drain loop at worker 0 so the cut (epoch 1 -> 2) is visible while
  // worker 1's buffer is still undrained — the straggler window.
  LogManagerTestPeer::WorkerLatch(&log, 0).Lock();
  std::thread cycle([&] { LogManagerTestPeer::FlushOnce(&log); });
  while (LogManagerTestPeer::OpenEpoch(&log) < 2) std::this_thread::yield();
  // Tagged 2, but drained into — and durable under — the batch marked 1.
  EXPECT_EQ(log.LogCommit(1, &t2, /*commit_ts=*/20), 2u);
  LogManagerTestPeer::WorkerLatch(&log, 0).Unlock();
  cycle.join();
  EXPECT_EQ(log.durable_epoch(), 1u);

  // The drain-nothing cycle finds the flushed tag 2 above mark 1 and must
  // write mark 2 before publishing durable_epoch = 2.
  const uint64_t bytes_before = log.durable_bytes();
  LogManagerTestPeer::FlushOnce(&log);
  EXPECT_EQ(log.durable_epoch(), 2u);
  EXPECT_GT(log.durable_bytes(), bytes_before);  // the covering mark hit disk
  EXPECT_TRUE(log.WaitDurable(2));               // t2's commit is acknowledged
  log.Stop();

  Bank fresh;
  fresh.InitSchema();
  RecoveryStats rs;
  ASSERT_TRUE(LogManager::Recover(dir, &fresh.db, &rs).ok());
  EXPECT_EQ(rs.durable_epoch, 2u);
  EXPECT_EQ(rs.replayed_records, 2u);
  EXPECT_EQ(rs.skipped_records, 0u);  // the acknowledged straggler survived
  int64_t got = 0;
  Row* row = fresh.db.GetIndex(0)->Get(2);
  ASSERT_NE(row, nullptr);
  std::memcpy(&got, row->Data(), 8);
  EXPECT_EQ(got, 222);
}

// ---------------------------------------------------------------------------
// Fuzzy checkpoint bounds replay; crash after the checkpoint keeps its rows.
// ---------------------------------------------------------------------------

TEST(RecoveryCrash, CrashAfterCheckpoint) {
  const std::string dir = FreshDir();
  Bank bank;
  bank.InitSchema();
  bank.StartCc();
  FaultInjector fault;
  LogManager log(MakeLogOptions(dir, &fault), kThreads);
  ASSERT_TRUE(log.Open().ok());
  bank.cc->AttachLog(&log);

  bank.RunTransfers(150);
  const uint64_t committed_at_ckpt = bank.committed;
  ASSERT_TRUE(log.Checkpoint(&bank.db).ok());
  const uint64_t ckpt_offset = log.durable_bytes();
  fault.CrashAtWalOffset(ckpt_offset + 997);  // mid-record, after the ckpt
  bank.RunTransfers(250);
  log.Stop();
  EXPECT_TRUE(log.crashed());

  Bank fresh;
  fresh.InitSchema();
  RecoveryStats rs;
  ASSERT_TRUE(LogManager::Recover(dir, &fresh.db, &rs).ok());
  EXPECT_GT(rs.checkpoint_rows, 0u);
  // Replay starts at the manifest offset: only post-checkpoint records run.
  EXPECT_LT(rs.replayed_records, 250u);

  const BankState rec = Snapshot(&fresh.db, fresh.accounts, fresh.journal);
  CheckOracle(rec, bank.committed);
  // Everything acknowledged before the checkpoint is durable below the armed
  // offset, so the checkpoint + replayed suffix can never lose it.
  EXPECT_GE(rec.journal.size(), committed_at_ckpt);
}

TEST(Recovery, CheckpointAloneRestoresState) {
  const std::string dir = FreshDir();
  Bank bank;
  bank.InitSchema();
  bank.StartCc();
  LogManager log(MakeLogOptions(dir), kThreads);
  ASSERT_TRUE(log.Open().ok());
  bank.cc->AttachLog(&log);
  bank.RunTransfers(120);
  ASSERT_TRUE(log.Checkpoint(&bank.db).ok());
  log.Stop();

  // Recover into a schema with NO bulk-load image: the checkpoint covers it.
  Bank fresh;
  fresh.accounts = fresh.db.CreateTable("accounts", Schema({{"bal", 8, 0}}));
  fresh.journal = fresh.db.CreateTable(
      "journal", Schema({{"src", 8, 0}, {"dst", 8, 8}, {"amt", 8, 16}}));
  RecoveryStats rs;
  ASSERT_TRUE(LogManager::Recover(dir, &fresh.db, &rs).ok());
  EXPECT_EQ(rs.checkpoint_rows, kNumAccounts + 120);
  EXPECT_EQ(rs.replayed_records, 0u);

  const BankState rec = Snapshot(&fresh.db, fresh.accounts, fresh.journal);
  CheckOracle(rec, bank.committed);
  EXPECT_EQ(rec.journal.size(), 120u);
}

// ---------------------------------------------------------------------------
// Delete / re-insert lifecycles replay correctly.
// ---------------------------------------------------------------------------

TEST(Recovery, DeleteAndReinsert) {
  const std::string dir = FreshDir();
  Bank bank;
  bank.InitSchema();
  bank.StartCc();
  LogManager log(MakeLogOptions(dir), kThreads);
  ASSERT_TRUE(log.Open().ok());
  bank.cc->AttachLog(&log);

  auto one_op = [&](auto&& fn) {
    TxnDescriptor* t = bank.cc->Begin(0);
    fn(t);
    ASSERT_TRUE(bank.cc->Commit(t).ok());
  };
  const uint64_t kKey = 500;
  JournalRow v1{1, 2, 10}, v2{3, 4, 20};
  one_op([&](TxnDescriptor* t) {
    ASSERT_TRUE(bank.cc->Insert(t, bank.journal, kKey, &v1).ok());
  });
  one_op([&](TxnDescriptor* t) {
    ASSERT_TRUE(bank.cc->Remove(t, bank.journal, kKey).ok());
  });
  one_op([&](TxnDescriptor* t) {
    ASSERT_TRUE(bank.cc->Insert(t, bank.journal, kKey, &v2).ok());
  });
  const uint64_t kGone = 600;
  one_op([&](TxnDescriptor* t) {
    ASSERT_TRUE(bank.cc->Insert(t, bank.journal, kGone, &v1).ok());
  });
  one_op([&](TxnDescriptor* t) {
    ASSERT_TRUE(bank.cc->Remove(t, bank.journal, kGone).ok());
  });
  log.Stop();

  Bank fresh;
  fresh.InitSchema();
  RecoveryStats rs;
  ASSERT_TRUE(LogManager::Recover(dir, &fresh.db, &rs).ok());
  EXPECT_EQ(rs.replayed_records, 5u);

  Row* alive = fresh.db.GetIndex(fresh.journal)->Get(kKey);
  ASSERT_NE(alive, nullptr);
  ASSERT_FALSE(alive->IsAbsent());
  JournalRow got;
  std::memcpy(&got, alive->Data(), sizeof(got));
  EXPECT_EQ(got.src, v2.src);
  EXPECT_EQ(got.amount, v2.amount);
  Row* gone = fresh.db.GetIndex(fresh.journal)->Get(kGone);
  EXPECT_TRUE(gone == nullptr || gone->IsAbsent());
}

// ---------------------------------------------------------------------------
// Crash -> recover -> resume logging in the same directory -> crash-free
// shutdown -> recover again. Exercises truncate_wal_to / resume_epoch /
// GlobalClock::AdvanceTo.
// ---------------------------------------------------------------------------

TEST(Recovery, ResumeAfterRecovery) {
  const std::string dir = FreshDir();
  uint64_t phase1_committed = 0;
  {
    Bank bank;
    bank.InitSchema();
    bank.StartCc();
    // Sync acks: every commit waits out its own epoch, so dozens of epoch
    // marks precede the armed offset and the first recovery keeps a
    // non-empty prefix.
    FaultInjector fault;
    fault.CrashAtWalOffset(6000);
    LogManager log(MakeLogOptions(dir, &fault, /*sync_ack=*/true), kThreads);
    ASSERT_TRUE(log.Open().ok());
    bank.cc->AttachLog(&log);
    bank.RunTransfers(200);
    log.Stop();
    ASSERT_TRUE(log.crashed());
    phase1_committed = bank.committed;
  }

  // First recovery: the surviving prefix becomes the new live database.
  Bank resumed;
  resumed.InitSchema();
  RecoveryStats rs1;
  ASSERT_TRUE(LogManager::Recover(dir, &resumed.db, &rs1).ok());
  const uint64_t k1 = rs1.replayed_records;
  ASSERT_GT(k1, 0u);
  ASSERT_LT(k1, phase1_committed);
  CheckOracle(Snapshot(&resumed.db, resumed.accounts, resumed.journal), k1);

  // Resume: truncate the unacknowledged tail, tag new epochs above every old
  // mark, and draw commit timestamps above every recovered version.
  resumed.StartCc();
  resumed.cc->clock().AdvanceTo(rs1.max_commit_ts);
  resumed.next_journal_key = k1;
  LogOptions lo = MakeLogOptions(dir);
  lo.truncate_wal_to = rs1.resume_wal_bytes;
  lo.resume_epoch = rs1.durable_epoch;
  LogManager log2(lo, kThreads);
  ASSERT_TRUE(log2.Open().ok());
  resumed.cc->AttachLog(&log2);
  resumed.RunTransfers(100);
  log2.Stop();

  // Second recovery sees one continuous history: phase-1 prefix + phase 2.
  Bank fresh;
  fresh.InitSchema();
  RecoveryStats rs2;
  ASSERT_TRUE(LogManager::Recover(dir, &fresh.db, &rs2).ok());
  EXPECT_EQ(rs2.replayed_records, k1 + 100);
  EXPECT_EQ(rs2.torn_bytes, 0u);
  const BankState rec = Snapshot(&fresh.db, fresh.accounts, fresh.journal);
  CheckOracle(rec, k1 + 100);
  EXPECT_EQ(rec.journal.size(), k1 + 100);
  EXPECT_GT(rs2.durable_epoch, rs1.durable_epoch);
}

}  // namespace
}  // namespace rocc
