// White-box tests of the adaptive RangeManager (DESIGN.md §10): RangeConfig
// validation, static-layout boundary compatibility (keys below key_min / at
// key_max, last-range extension, non-divisible spans), the slice grid, and
// the split/merge invariants — every key maps to exactly one range before,
// during, and after a table swap, and retired tables are reclaimed only
// after their grace period.

#include <gtest/gtest.h>

#include <memory>

#include "core/range_manager.h"
#include "core/rocc.h"

namespace rocc {
namespace {

/// The partition invariant: ranges are ascending and contiguous from key_min
/// to key_max, and every key maps (via the slice grid) into the one range
/// whose [start_key, end_key) contains it.
void CheckPartition(const RangeManager& rm) {
  const RangeTable* t = rm.Snapshot();
  ASSERT_GT(t->num_ranges(), 0u);
  EXPECT_EQ(t->range(0)->start_key, rm.key_min());
  for (uint32_t i = 0; i + 1 < t->num_ranges(); i++) {
    EXPECT_EQ(t->range(i)->end_key, t->range(i + 1)->start_key)
        << "gap/overlap after range " << i;
    EXPECT_LT(t->range(i)->start_key, t->range(i)->end_key)
        << "empty range " << i;
  }
  EXPECT_EQ(t->range(t->num_ranges() - 1)->end_key, rm.key_max());
  for (uint64_t k = rm.key_min(); k < rm.key_max(); k++) {
    const uint32_t rid = t->slice_to_range[rm.SliceOf(k)];
    ASSERT_LT(rid, t->num_ranges());
    EXPECT_LE(t->range(rid)->start_key, k) << "key " << k;
    EXPECT_LT(k, t->range(rid)->end_key) << "key " << k;
  }
}

TEST(ValidateRangeConfigTest, RejectsEmptyKeySpace) {
  RangeConfig rc;
  rc.key_min = 100;
  rc.key_max = 100;
  EXPECT_FALSE(ValidateRangeConfig(rc).ok());
  rc.key_max = 99;
  EXPECT_FALSE(ValidateRangeConfig(rc).ok());
}

TEST(ValidateRangeConfigTest, RejectsZeroRingCapacity) {
  RangeConfig rc;
  rc.ring_capacity = 0;
  EXPECT_FALSE(ValidateRangeConfig(rc).ok());
}

TEST(ValidateRangeConfigTest, AcceptsDefaultsAndZeroRanges) {
  RangeConfig rc;
  EXPECT_TRUE(ValidateRangeConfig(rc).ok());
  rc.num_ranges = 0;  // legal: treated as one range
  EXPECT_TRUE(ValidateRangeConfig(rc).ok());
}

TEST(RangeManagerTest, StaticLayoutBoundariesMatchSeed) {
  RangeManager rm(0, 500, 10, 64);
  EXPECT_EQ(rm.num_ranges(), 10u);
  EXPECT_EQ(rm.range_size(), 50u);
  for (uint32_t i = 0; i < 10; i++) {
    EXPECT_EQ(rm.RangeStart(i), i * 50u);
    EXPECT_EQ(rm.RangeEnd(i), (i + 1) * 50u);
  }
  EXPECT_EQ(rm.RangeOf(0), 0u);
  EXPECT_EQ(rm.RangeOf(49), 0u);
  EXPECT_EQ(rm.RangeOf(50), 1u);
  EXPECT_EQ(rm.RangeOf(499), 9u);
  CheckPartition(rm);
}

TEST(RangeManagerTest, OutOfSpanKeysClampToEdgeRanges) {
  RangeManager rm(100, 600, 10, 64);
  EXPECT_EQ(rm.RangeOf(0), 0u);     // below key_min
  EXPECT_EQ(rm.RangeOf(100), 0u);   // at key_min
  EXPECT_EQ(rm.RangeOf(600), 9u);   // at key_max (exclusive bound)
  EXPECT_EQ(rm.RangeOf(~0ULL), 9u); // far past key_max
}

TEST(RangeManagerTest, NonDivisibleSpanExtendsLastRange) {
  // span 100 over 7 ranges: range_size = ceil(100/7) = 15, so ranges 0..5
  // are 15 keys and the last range holds the remaining 10.
  RangeManager rm(0, 100, 7, 64);
  EXPECT_EQ(rm.range_size(), 15u);
  EXPECT_EQ(rm.RangeStart(6), 90u);
  EXPECT_EQ(rm.RangeEnd(6), 100u);
  CheckPartition(rm);

  // span smaller than num_ranges * range_size with a sliced grid.
  RangeManager rm2(0, 100, 7, 64, /*slices_per_range=*/8);
  EXPECT_EQ(rm2.RangeStart(6), 90u);
  EXPECT_EQ(rm2.RangeEnd(6), 100u);
  CheckPartition(rm2);
}

TEST(RangeManagerTest, SliceGridPreservesInitialBoundaries) {
  RangeManager rm(0, 500, 10, 64, /*slices_per_range=*/8);
  EXPECT_EQ(rm.slices_per_range(), 8u);
  EXPECT_EQ(rm.num_slices(), 80u);
  // Range boundaries are bit-exact with the unsliced layout.
  for (uint32_t i = 0; i < 10; i++) {
    EXPECT_EQ(rm.RangeStart(i), i * 50u);
    EXPECT_EQ(rm.RangeEnd(i), (i + 1) * 50u);
    EXPECT_EQ(rm.SliceBound(i * 8), i * 50u);
  }
  EXPECT_EQ(rm.SliceBound(rm.num_slices()), 500u);
  // SliceOf is consistent with SliceBound: SliceBound(s) <= k < SliceBound(s+1).
  for (uint64_t k = 0; k < 500; k++) {
    const uint32_t s = rm.SliceOf(k);
    EXPECT_LE(rm.SliceBound(s), k);
    EXPECT_LT(k, rm.SliceBound(s + 1));
  }
  CheckPartition(rm);
}

TEST(RangeManagerTest, SliceWidthClampedToAtLeastOneKey) {
  // 4-key ranges cannot hold 8 one-key slices: spr clamps to the range size.
  RangeManager rm(0, 40, 10, 64, /*slices_per_range=*/8);
  EXPECT_LE(rm.slices_per_range(), 4u);
  CheckPartition(rm);
}

TEST(RangeManagerTest, SplitPublishesNewTableAndKeepsPartition) {
  RangeManager rm(0, 500, 10, 64, 8);
  const RangeTable* before = rm.Snapshot();
  const LogicalRange* parent = before->range(3);
  TxnRing* parent_ring = parent->ring.get();

  ASSERT_TRUE(rm.Split(3, 4, /*publish_epoch=*/5));
  const RangeTable* after = rm.Snapshot();
  EXPECT_NE(after, before);
  EXPECT_EQ(after->version, 1u);
  EXPECT_EQ(rm.table_version(), 1u);
  EXPECT_EQ(rm.splits(), 1u);
  EXPECT_EQ(after->num_ranges(), 13u);  // 10 - 1 + 4

  // The children cover exactly the parent's span, carry fresh rings, and
  // fence the parent's ring as their single predecessor.
  EXPECT_EQ(after->range(3)->start_key, 150u);
  EXPECT_EQ(after->range(6)->end_key, 200u);
  for (uint32_t rid = 3; rid <= 6; rid++) {
    const LogicalRange* child = after->range(rid);
    EXPECT_NE(child->ring.get(), parent_ring);
    EXPECT_EQ(child->ring->Version(), 0u);
    ASSERT_EQ(child->prev_rings.size(), 1u);
    EXPECT_EQ(child->prev_rings[0].get(), parent_ring);
    EXPECT_EQ(child->created_epoch, 5u);
  }
  // Carried ranges keep their identity (same LogicalRange, same ring).
  EXPECT_EQ(after->range(0), before->range(0));
  EXPECT_EQ(after->range(12), before->range(9));
  CheckPartition(rm);

  // The old table is retired, not freed, until the grace period elapses.
  EXPECT_EQ(rm.retired_tables(), 1u);
  rm.ReclaimRetired(/*min_active=*/5);  // epoch 5 not yet past
  EXPECT_EQ(rm.retired_tables(), 1u);
  rm.ReclaimRetired(/*min_active=*/6);
  EXPECT_EQ(rm.retired_tables(), 0u);
}

TEST(RangeManagerTest, SplitOfSingleSliceRangeFails) {
  RangeManager rm(0, 500, 10, 64);  // spr = 1: the grid cannot refine
  EXPECT_FALSE(rm.Split(3, 4, 1));
  EXPECT_EQ(rm.table_version(), 0u);
  EXPECT_EQ(rm.splits(), 0u);
}

TEST(RangeManagerTest, SplitSkipsEmptySlices) {
  // 5-key ranges with an 8-slice grid: slice width 1, slices 5..7 empty.
  // A 4-way split must produce only non-empty children.
  RangeManager rm(0, 10, 2, 64, 8);
  ASSERT_TRUE(rm.Split(0, 4, 1));
  const RangeTable* t = rm.Snapshot();
  ASSERT_GE(t->num_ranges(), 3u);
  for (uint32_t i = 0; i < t->num_ranges(); i++) {
    EXPECT_LT(t->range(i)->start_key, t->range(i)->end_key);
  }
  CheckPartition(rm);
}

TEST(RangeManagerTest, MergeCoalescesAdjacentRangesWithPrevFences) {
  RangeManager rm(0, 500, 10, 64, 8);
  ASSERT_TRUE(rm.Split(3, 2, 1));
  const RangeTable* mid = rm.Snapshot();
  ASSERT_EQ(mid->num_ranges(), 11u);
  TxnRing* left_ring = mid->range(3)->ring.get();
  TxnRing* right_ring = mid->range(4)->ring.get();

  ASSERT_TRUE(rm.Merge(3, 2, /*publish_epoch=*/2));
  const RangeTable* after = rm.Snapshot();
  EXPECT_EQ(after->num_ranges(), 10u);
  EXPECT_EQ(after->version, 2u);
  EXPECT_EQ(rm.merges(), 1u);
  const LogicalRange* merged = after->range(3);
  EXPECT_EQ(merged->start_key, 150u);
  EXPECT_EQ(merged->end_key, 200u);
  EXPECT_EQ(merged->ring->Version(), 0u);
  ASSERT_EQ(merged->prev_rings.size(), 2u);
  EXPECT_EQ(merged->prev_rings[0].get(), left_ring);
  EXPECT_EQ(merged->prev_rings[1].get(), right_ring);
  EXPECT_EQ(merged->created_epoch, 2u);
  CheckPartition(rm);
}

TEST(RangeManagerTest, MergeFanInBoundedByPredicateCapacity) {
  RangeManager rm(0, 800, 8, 64, 8);
  EXPECT_FALSE(rm.Merge(0, RangePredicate::kMaxPrevRings + 1, 1));
  EXPECT_FALSE(rm.Merge(0, 1, 1));
  EXPECT_FALSE(rm.Merge(7, 2, 1));  // out of bounds
  EXPECT_TRUE(rm.Merge(0, RangePredicate::kMaxPrevRings, 1));
  CheckPartition(rm);
}

TEST(RangeManagerTest, RepeatedSplitsKeepPartitionUntilGridExhausted) {
  RangeManager rm(0, 200, 2, 64, 8);
  uint64_t epoch = 1;
  // Keep splitting range 0's descendants until nothing is splittable.
  bool split = true;
  while (split) {
    split = false;
    const uint32_t n = rm.num_ranges();
    for (uint32_t rid = 0; rid < n; rid++) {
      if (rm.Split(rid, 2, epoch++)) {
        split = true;
        break;
      }
    }
    CheckPartition(rm);
  }
  // Fully refined: one range per non-empty slice.
  EXPECT_EQ(rm.num_ranges(), rm.num_slices());
  rm.ReclaimRetired(~0ULL);
  EXPECT_EQ(rm.retired_tables(), 0u);
}

TEST(RangeManagerTest, TelemetrySnapshotsCountersAndTopology) {
  RangeManager rm(0, 500, 10, 64, 8);
  rm.Snapshot()->range(4)->stats.registrations.fetch_add(7);
  rm.Snapshot()->range(4)->stats.ring_lost.fetch_add(2);
  rm.Snapshot()->range(1)->stats.registrations.fetch_add(3);
  ASSERT_TRUE(rm.Split(9, 2, 1));

  const RangeTelemetry tel = rm.Telemetry(/*top_n=*/4);
  EXPECT_EQ(tel.num_ranges, 11u);
  EXPECT_EQ(tel.table_version, 1u);
  EXPECT_EQ(tel.splits, 1u);
  EXPECT_EQ(tel.merges, 0u);
  EXPECT_EQ(tel.total_registrations, 10u);
  ASSERT_EQ(tel.rows.size(), 4u);  // truncated to top_n
  EXPECT_EQ(tel.rows[0].range_id, 4u);  // hottest first
  EXPECT_EQ(tel.rows[0].registrations, 7u);
  EXPECT_EQ(tel.rows[0].ring_lost, 2u);
  EXPECT_EQ(tel.rows[1].range_id, 1u);
}

}  // namespace
}  // namespace rocc
