// White-box tests of the adaptive RangeManager (DESIGN.md §10): RangeConfig
// validation, static-layout boundary compatibility (keys below key_min / at
// key_max, last-range extension, non-divisible spans), the slice grid, and
// the split/merge invariants — every key maps to exactly one range before,
// during, and after a table swap, and retired tables are reclaimed only
// after their grace period. Plus an end-to-end run on the deterministic
// fiber runner where the grid is frozen and the tuner's only lever is
// adaptive ring capacity (DESIGN.md §15.2), forcing mid-scan ring
// replacements under live predicates.

#include <gtest/gtest.h>

#include <memory>

#include "core/range_manager.h"
#include "core/rocc.h"
#include "harness/runner.h"
#include "sync/optiql.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

/// The partition invariant: ranges are ascending and contiguous from key_min
/// to key_max, and every key maps (via the slice grid) into the one range
/// whose [start_key, end_key) contains it.
void CheckPartition(const RangeManager& rm) {
  const RangeTable* t = rm.Snapshot();
  ASSERT_GT(t->num_ranges(), 0u);
  EXPECT_EQ(t->range(0)->start_key, rm.key_min());
  for (uint32_t i = 0; i + 1 < t->num_ranges(); i++) {
    EXPECT_EQ(t->range(i)->end_key, t->range(i + 1)->start_key)
        << "gap/overlap after range " << i;
    EXPECT_LT(t->range(i)->start_key, t->range(i)->end_key)
        << "empty range " << i;
  }
  EXPECT_EQ(t->range(t->num_ranges() - 1)->end_key, rm.key_max());
  for (uint64_t k = rm.key_min(); k < rm.key_max(); k++) {
    const uint32_t rid = t->slice_to_range[rm.SliceOf(k)];
    ASSERT_LT(rid, t->num_ranges());
    EXPECT_LE(t->range(rid)->start_key, k) << "key " << k;
    EXPECT_LT(k, t->range(rid)->end_key) << "key " << k;
  }
}

TEST(ValidateRangeConfigTest, RejectsEmptyKeySpace) {
  RangeConfig rc;
  rc.key_min = 100;
  rc.key_max = 100;
  EXPECT_FALSE(ValidateRangeConfig(rc).ok());
  rc.key_max = 99;
  EXPECT_FALSE(ValidateRangeConfig(rc).ok());
}

TEST(ValidateRangeConfigTest, RejectsZeroRingCapacity) {
  RangeConfig rc;
  rc.ring_capacity = 0;
  EXPECT_FALSE(ValidateRangeConfig(rc).ok());
}

TEST(ValidateRangeConfigTest, AcceptsDefaultsAndZeroRanges) {
  RangeConfig rc;
  EXPECT_TRUE(ValidateRangeConfig(rc).ok());
  rc.num_ranges = 0;  // legal: treated as one range
  EXPECT_TRUE(ValidateRangeConfig(rc).ok());
}

TEST(RangeManagerTest, StaticLayoutBoundariesMatchSeed) {
  RangeManager rm(0, 500, 10, 64);
  EXPECT_EQ(rm.num_ranges(), 10u);
  EXPECT_EQ(rm.range_size(), 50u);
  for (uint32_t i = 0; i < 10; i++) {
    EXPECT_EQ(rm.RangeStart(i), i * 50u);
    EXPECT_EQ(rm.RangeEnd(i), (i + 1) * 50u);
  }
  EXPECT_EQ(rm.RangeOf(0), 0u);
  EXPECT_EQ(rm.RangeOf(49), 0u);
  EXPECT_EQ(rm.RangeOf(50), 1u);
  EXPECT_EQ(rm.RangeOf(499), 9u);
  CheckPartition(rm);
}

TEST(RangeManagerTest, OutOfSpanKeysClampToEdgeRanges) {
  RangeManager rm(100, 600, 10, 64);
  EXPECT_EQ(rm.RangeOf(0), 0u);     // below key_min
  EXPECT_EQ(rm.RangeOf(100), 0u);   // at key_min
  EXPECT_EQ(rm.RangeOf(600), 9u);   // at key_max (exclusive bound)
  EXPECT_EQ(rm.RangeOf(~0ULL), 9u); // far past key_max
}

TEST(RangeManagerTest, NonDivisibleSpanExtendsLastRange) {
  // span 100 over 7 ranges: range_size = ceil(100/7) = 15, so ranges 0..5
  // are 15 keys and the last range holds the remaining 10.
  RangeManager rm(0, 100, 7, 64);
  EXPECT_EQ(rm.range_size(), 15u);
  EXPECT_EQ(rm.RangeStart(6), 90u);
  EXPECT_EQ(rm.RangeEnd(6), 100u);
  CheckPartition(rm);

  // span smaller than num_ranges * range_size with a sliced grid.
  RangeManager rm2(0, 100, 7, 64, /*slices_per_range=*/8);
  EXPECT_EQ(rm2.RangeStart(6), 90u);
  EXPECT_EQ(rm2.RangeEnd(6), 100u);
  CheckPartition(rm2);
}

TEST(RangeManagerTest, SliceGridPreservesInitialBoundaries) {
  RangeManager rm(0, 500, 10, 64, /*slices_per_range=*/8);
  EXPECT_EQ(rm.slices_per_range(), 8u);
  EXPECT_EQ(rm.num_slices(), 80u);
  // Range boundaries are bit-exact with the unsliced layout.
  for (uint32_t i = 0; i < 10; i++) {
    EXPECT_EQ(rm.RangeStart(i), i * 50u);
    EXPECT_EQ(rm.RangeEnd(i), (i + 1) * 50u);
    EXPECT_EQ(rm.SliceBound(i * 8), i * 50u);
  }
  EXPECT_EQ(rm.SliceBound(rm.num_slices()), 500u);
  // SliceOf is consistent with SliceBound: SliceBound(s) <= k < SliceBound(s+1).
  for (uint64_t k = 0; k < 500; k++) {
    const uint32_t s = rm.SliceOf(k);
    EXPECT_LE(rm.SliceBound(s), k);
    EXPECT_LT(k, rm.SliceBound(s + 1));
  }
  CheckPartition(rm);
}

TEST(RangeManagerTest, SliceWidthClampedToAtLeastOneKey) {
  // 4-key ranges cannot hold 8 one-key slices: spr clamps to the range size.
  RangeManager rm(0, 40, 10, 64, /*slices_per_range=*/8);
  EXPECT_LE(rm.slices_per_range(), 4u);
  CheckPartition(rm);
}

TEST(RangeManagerTest, SplitPublishesNewTableAndKeepsPartition) {
  RangeManager rm(0, 500, 10, 64, 8);
  const RangeTable* before = rm.Snapshot();
  const LogicalRange* parent = before->range(3);
  TxnRing* parent_ring = parent->ring.get();

  ASSERT_TRUE(rm.Split(3, 4, /*publish_epoch=*/5));
  const RangeTable* after = rm.Snapshot();
  EXPECT_NE(after, before);
  EXPECT_EQ(after->version, 1u);
  EXPECT_EQ(rm.table_version(), 1u);
  EXPECT_EQ(rm.splits(), 1u);
  EXPECT_EQ(after->num_ranges(), 13u);  // 10 - 1 + 4

  // The children cover exactly the parent's span, carry fresh rings, and
  // fence the parent's ring as their single predecessor.
  EXPECT_EQ(after->range(3)->start_key, 150u);
  EXPECT_EQ(after->range(6)->end_key, 200u);
  for (uint32_t rid = 3; rid <= 6; rid++) {
    const LogicalRange* child = after->range(rid);
    EXPECT_NE(child->ring.get(), parent_ring);
    EXPECT_EQ(child->ring->Version(), 0u);
    ASSERT_EQ(child->prev_rings.size(), 1u);
    EXPECT_EQ(child->prev_rings[0].get(), parent_ring);
    EXPECT_EQ(child->created_epoch, 5u);
  }
  // Carried ranges keep their identity (same LogicalRange, same ring).
  EXPECT_EQ(after->range(0), before->range(0));
  EXPECT_EQ(after->range(12), before->range(9));
  CheckPartition(rm);

  // The old table is retired, not freed, until the grace period elapses.
  EXPECT_EQ(rm.retired_tables(), 1u);
  rm.ReclaimRetired(/*min_active=*/5);  // epoch 5 not yet past
  EXPECT_EQ(rm.retired_tables(), 1u);
  rm.ReclaimRetired(/*min_active=*/6);
  EXPECT_EQ(rm.retired_tables(), 0u);
}

TEST(RangeManagerTest, SplitOfSingleSliceRangeFails) {
  RangeManager rm(0, 500, 10, 64);  // spr = 1: the grid cannot refine
  EXPECT_FALSE(rm.Split(3, 4, 1));
  EXPECT_EQ(rm.table_version(), 0u);
  EXPECT_EQ(rm.splits(), 0u);
}

TEST(RangeManagerTest, SplitSkipsEmptySlices) {
  // 5-key ranges with an 8-slice grid: slice width 1, slices 5..7 empty.
  // A 4-way split must produce only non-empty children.
  RangeManager rm(0, 10, 2, 64, 8);
  ASSERT_TRUE(rm.Split(0, 4, 1));
  const RangeTable* t = rm.Snapshot();
  ASSERT_GE(t->num_ranges(), 3u);
  for (uint32_t i = 0; i < t->num_ranges(); i++) {
    EXPECT_LT(t->range(i)->start_key, t->range(i)->end_key);
  }
  CheckPartition(rm);
}

TEST(RangeManagerTest, MergeCoalescesAdjacentRangesWithPrevFences) {
  RangeManager rm(0, 500, 10, 64, 8);
  ASSERT_TRUE(rm.Split(3, 2, 1));
  const RangeTable* mid = rm.Snapshot();
  ASSERT_EQ(mid->num_ranges(), 11u);
  TxnRing* left_ring = mid->range(3)->ring.get();
  TxnRing* right_ring = mid->range(4)->ring.get();

  ASSERT_TRUE(rm.Merge(3, 2, /*publish_epoch=*/2));
  const RangeTable* after = rm.Snapshot();
  EXPECT_EQ(after->num_ranges(), 10u);
  EXPECT_EQ(after->version, 2u);
  EXPECT_EQ(rm.merges(), 1u);
  const LogicalRange* merged = after->range(3);
  EXPECT_EQ(merged->start_key, 150u);
  EXPECT_EQ(merged->end_key, 200u);
  EXPECT_EQ(merged->ring->Version(), 0u);
  ASSERT_EQ(merged->prev_rings.size(), 2u);
  EXPECT_EQ(merged->prev_rings[0].get(), left_ring);
  EXPECT_EQ(merged->prev_rings[1].get(), right_ring);
  EXPECT_EQ(merged->created_epoch, 2u);
  CheckPartition(rm);
}

TEST(RangeManagerTest, MergeFanInBoundedByPredicateCapacity) {
  RangeManager rm(0, 800, 8, 64, 8);
  EXPECT_FALSE(rm.Merge(0, RangePredicate::kMaxPrevRings + 1, 1));
  EXPECT_FALSE(rm.Merge(0, 1, 1));
  EXPECT_FALSE(rm.Merge(7, 2, 1));  // out of bounds
  EXPECT_TRUE(rm.Merge(0, RangePredicate::kMaxPrevRings, 1));
  CheckPartition(rm);
}

TEST(RangeManagerTest, RepeatedSplitsKeepPartitionUntilGridExhausted) {
  RangeManager rm(0, 200, 2, 64, 8);
  uint64_t epoch = 1;
  // Keep splitting range 0's descendants until nothing is splittable.
  bool split = true;
  while (split) {
    split = false;
    const uint32_t n = rm.num_ranges();
    for (uint32_t rid = 0; rid < n; rid++) {
      if (rm.Split(rid, 2, epoch++)) {
        split = true;
        break;
      }
    }
    CheckPartition(rm);
  }
  // Fully refined: one range per non-empty slice.
  EXPECT_EQ(rm.num_ranges(), rm.num_slices());
  rm.ReclaimRetired(~0ULL);
  EXPECT_EQ(rm.retired_tables(), 0u);
}

TEST(RangeManagerTest, TelemetrySnapshotsCountersAndTopology) {
  RangeManager rm(0, 500, 10, 64, 8);
  rm.Snapshot()->range(4)->stats.registrations.fetch_add(7);
  rm.Snapshot()->range(4)->stats.ring_lost.fetch_add(2);
  rm.Snapshot()->range(1)->stats.registrations.fetch_add(3);
  ASSERT_TRUE(rm.Split(9, 2, 1));

  const RangeTelemetry tel = rm.Telemetry(/*top_n=*/4);
  EXPECT_EQ(tel.num_ranges, 11u);
  EXPECT_EQ(tel.table_version, 1u);
  EXPECT_EQ(tel.splits, 1u);
  EXPECT_EQ(tel.merges, 0u);
  EXPECT_EQ(tel.total_registrations, 10u);
  ASSERT_EQ(tel.rows.size(), 4u);  // truncated to top_n
  EXPECT_EQ(tel.rows[0].range_id, 4u);  // hottest first
  EXPECT_EQ(tel.rows[0].registrations, 7u);
  EXPECT_EQ(tel.rows[0].ring_lost, 2u);
  EXPECT_EQ(tel.rows[1].range_id, 1u);
}

// --------------------------------------------------------------------------
// Adaptive ring capacity end-to-end (mid-scan resizes under live predicates)
// --------------------------------------------------------------------------

/// High-skew hybrid YCSB on tiny rings with the key-space grid FROZEN
/// (slices_per_range=1): splitting is impossible, so relieving the ring_lost
/// pressure requires the tuner to replace hot rings mid-run, while scans
/// hold predicates built against the retired generation. The queued lock
/// mode additionally arms combining registration on the promoted rings.
RunResult RunFrozenGridYcsb(ExecMode mode, uint32_t num_threads,
                            uint64_t txns_per_thread, Rocc** cc_out,
                            std::unique_ptr<Rocc>* cc_holder,
                            std::unique_ptr<Database>* db_holder,
                            std::unique_ptr<YcsbWorkload>* wl_holder) {
  YcsbOptions wopts;
  wopts.num_rows = 20'000;
  wopts.theta = 0.95;
  wopts.scan_txn_fraction = 0.2;
  wopts.scan_length = 200;
  *db_holder = std::make_unique<Database>();
  *wl_holder = std::make_unique<YcsbWorkload>(wopts);
  (*wl_holder)->Load(db_holder->get());

  RoccOptions ropts;
  ropts.tables = (*wl_holder)->RangeConfigs(/*ranges_hint=*/32,
                                            /*ring_capacity=*/16);
  ropts.default_ring_capacity = 16;
  ropts.tuner.enabled = true;
  ropts.tuner.pressure_threshold = 4;
  ropts.tuner.slices_per_range = 1;  // frozen: Split/Merge can never fire
  ropts.tuner.adaptive_ring = true;
  ropts.tuner.combining_reg_threshold = 32;
  *cc_holder = std::make_unique<Rocc>(db_holder->get(), num_threads, ropts);
  *cc_out = cc_holder->get();

  RunOptions run;
  run.num_threads = num_threads;
  run.txns_per_thread = txns_per_thread;
  run.warmup_txns_per_thread = 10;
  run.seed = 7;
  run.mode = mode;
  run.set_lock_impl = true;
  run.lock_impl = sync::LockImpl::kOptiql;
  const RunResult r = RunExperiment(cc_holder->get(), wl_holder->get(), run);
  sync::SetLockImpl(sync::LockImpl::kCas);
  return r;
}

TEST(ResizeEndToEndTest, FiberRunGrowsHotRingsMidScan) {
  Rocc* cc = nullptr;
  std::unique_ptr<Rocc> cc_holder;
  std::unique_ptr<Database> db;
  std::unique_ptr<YcsbWorkload> wl;
  const RunResult r = RunFrozenGridYcsb(ExecMode::kFibers, 16, 150, &cc,
                                        &cc_holder, &db, &wl);

  EXPECT_EQ(r.stats.give_ups, 0u);
  EXPECT_GT(r.stats.commits, 0u);
  // Every abort attributed: ring replacement mid-scan must not invent an
  // unclassified abort path (the clamped validation window in particular).
  EXPECT_EQ(r.stats.aborts, r.stats.AbortCauseSum());

  // The frozen grid leaves ring capacity as the only lever — and the skewed
  // tiny-ring pressure must have pulled it.
  EXPECT_GT(cc->tuner()->passes(), 0u);
  EXPECT_EQ(cc->tuner()->splits(), 0u);
  EXPECT_EQ(cc->tuner()->merges(), 0u);
  EXPECT_GT(cc->tuner()->resizes(), 0u);

  RangeManager* rm = cc->range_manager(wl->table_id());
  EXPECT_EQ(rm->resizes(), cc->tuner()->resizes());
  EXPECT_EQ(rm->splits(), 0u);
  EXPECT_EQ(rm->num_ranges(), 32u);  // layout untouched by resizes
  CheckPartition(*rm);

  // At least one surviving ring actually grew, and telemetry reports it.
  const RangeTable* t = rm->Snapshot();
  uint32_t grown = 0;
  for (uint32_t rid = 0; rid < t->num_ranges(); rid++) {
    if (t->range(rid)->ring->capacity() > 16) grown++;
  }
  EXPECT_GT(grown, 0u);
  const RangeTelemetry tel = rm->Telemetry();
  EXPECT_EQ(tel.resizes, rm->resizes());
  EXPECT_EQ(tel.splits, 0u);
}

TEST(ResizeEndToEndTest, ThreadRunStaysConsistent) {
  // Real-thread variant for the TSan CI job: resize counts are
  // timing-dependent here, so only the invariants are asserted.
  Rocc* cc = nullptr;
  std::unique_ptr<Rocc> cc_holder;
  std::unique_ptr<Database> db;
  std::unique_ptr<YcsbWorkload> wl;
  const RunResult r = RunFrozenGridYcsb(ExecMode::kThreads, 4, 300, &cc,
                                        &cc_holder, &db, &wl);

  EXPECT_EQ(r.stats.give_ups, 0u);
  EXPECT_GT(r.stats.commits, 0u);
  EXPECT_EQ(r.stats.aborts, r.stats.AbortCauseSum());
  EXPECT_EQ(cc->tuner()->splits(), 0u);
  CheckPartition(*cc->range_manager(wl->table_id()));
}

}  // namespace
}  // namespace rocc
