// Tests for the contention-robust lock primitives (sync/optiql.h): word
// layout and version-bump protocol of VersionLatch in every lock mode,
// mutual exclusion / lost-update stress under real threads, FIFO handoff
// determinism under the fiber runtime, optimistic-read validation against a
// concurrent writer, the qnode-pool-exhaustion CAS fallback, the bounded
// queued acquire of the row TID word (Row::LockContended), OpRead queue
// drop-out of doomed upgraders (DESIGN.md §15.3), and the per-latch
// cas->optiql promotion of `--lock=adaptive` (ContendedHint).
//
// This binary runs under TSan in CI: all cross-thread payloads are
// std::atomic, so the only happens-before edges are the ones the lock
// protocol itself establishes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/fiber.h"
#include "storage/row.h"
#include "sync/optiql.h"

namespace rocc {
namespace sync {
namespace {

/// Scoped lock-implementation switch; restores the previous mode so tests
/// cannot leak an implementation choice into each other.
class ScopedLockImpl {
 public:
  explicit ScopedLockImpl(LockImpl impl) : prev_(GetLockImpl()) {
    SetLockImpl(impl);
  }
  ~ScopedLockImpl() { SetLockImpl(prev_); }

 private:
  LockImpl prev_;
};

// --------------------------------------------------------------------------
// Word layout and the version-bump protocol
// --------------------------------------------------------------------------

class VersionLatchBothModes : public ::testing::TestWithParam<LockImpl> {};

TEST_P(VersionLatchBothModes, UpgradeBumpsVersionByOneStep) {
  ScopedLockImpl mode(GetParam());
  VersionLatch latch;
  const uint64_t v0 = latch.ReadLockOrRestart();
  EXPECT_EQ(v0, 0u);
  EXPECT_TRUE(latch.CheckOrRestart(v0));

  VersionLatch::Guard g;
  ASSERT_TRUE(latch.UpgradeToWriteLockOrRestart(v0, g));
  EXPECT_TRUE(latch.IsLocked());
  EXPECT_FALSE(latch.CheckOrRestart(v0));  // locked words never validate
  latch.WriteUnlock(g);

  const uint64_t v1 = latch.ReadLockOrRestart();
  EXPECT_EQ(v1 & VersionLatch::kVersionMask, v0 + 2);
  // Unlocked words carry no tail or lock bits: the snapshot IS the version.
  EXPECT_EQ(v1 & (VersionLatch::kTailMask | VersionLatch::kLockedBit), 0u);
  EXPECT_FALSE(latch.CheckOrRestart(v0));
  EXPECT_TRUE(latch.CheckOrRestart(v1));
}

TEST_P(VersionLatchBothModes, StaleUpgradeFailsWithoutBumping) {
  ScopedLockImpl mode(GetParam());
  VersionLatch latch;
  const uint64_t stale = latch.ReadLockOrRestart();

  VersionLatch::Guard g;
  ASSERT_TRUE(latch.UpgradeToWriteLockOrRestart(stale, g));
  latch.WriteUnlock(g);
  const uint64_t fresh = latch.ReadLockOrRestart();

  VersionLatch::Guard g2;
  EXPECT_FALSE(latch.UpgradeToWriteLockOrRestart(stale, g2));
  EXPECT_FALSE(latch.IsLocked());
  // A failed upgrade must leave the word untouched.
  EXPECT_EQ(latch.RawWord(), fresh);
}

TEST_P(VersionLatchBothModes, WriteLockUnconditional) {
  ScopedLockImpl mode(GetParam());
  VersionLatch latch;
  for (int i = 0; i < 3; i++) {
    VersionLatch::Guard g;
    latch.WriteLock(g);
    EXPECT_TRUE(latch.IsLocked());
    latch.WriteUnlock(g);
  }
  EXPECT_EQ(latch.ReadLockOrRestart(), 6u);
}

TEST_P(VersionLatchBothModes, WriteUnlockNoBumpKeepsSnapshotsValid) {
  ScopedLockImpl mode(GetParam());
  VersionLatch latch;
  const uint64_t v = latch.ReadLockOrRestart();
  VersionLatch::Guard g;
  ASSERT_TRUE(latch.UpgradeToWriteLockOrRestart(v, g));
  latch.WriteUnlockNoBump(g);
  EXPECT_FALSE(latch.IsLocked());
  EXPECT_TRUE(latch.CheckOrRestart(v));
}

INSTANTIATE_TEST_SUITE_P(BothModes, VersionLatchBothModes,
                         ::testing::Values(LockImpl::kCas, LockImpl::kOptiql,
                                           LockImpl::kAdaptive),
                         [](const ::testing::TestParamInfo<LockImpl>& param) {
                           return LockImplName(param.param);
                         });

// --------------------------------------------------------------------------
// Mutual exclusion / lost-update stress (real threads)
// --------------------------------------------------------------------------

class LatchStressBothModes : public ::testing::TestWithParam<LockImpl> {};

TEST_P(LatchStressBothModes, NoLostUpdatesUnderThreads) {
  ScopedLockImpl mode(GetParam());
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  VersionLatch latch;
  // Plain (non-atomic) state on purpose: TSan proves the latch alone
  // provides the happens-before edges that make this race-free.
  uint64_t counter = 0;
  std::atomic<int> in_section{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; i++) {
        VersionLatch::Guard g;
        latch.WriteLock(g);
        EXPECT_EQ(in_section.fetch_add(1, std::memory_order_relaxed), 0);
        counter++;
        in_section.fetch_sub(1, std::memory_order_relaxed);
        latch.WriteUnlock(g);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIncrements);
  // Every modifying writer advanced the version exactly one step, whether it
  // released directly or handed off through the queue.
  EXPECT_EQ(latch.ReadLockOrRestart(),
            2ull * static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST_P(LatchStressBothModes, OptimisticReadersSeeConsistentSnapshots) {
  ScopedLockImpl mode(GetParam());
  // Writer maintains b == a + 1 under the latch; readers validate optimistic
  // snapshots and must never observe a torn pair. Payload words are atomic
  // (relaxed) so unvalidated in-flight reads are not data races; the latch
  // protocol supplies the ordering for every VALIDATED snapshot.
  VersionLatch latch;
  std::atomic<uint64_t> a{0}, b{1};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int i = 0; i < 4000; i++) {
      VersionLatch::Guard g;
      latch.WriteLock(g);
      a.store(a.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      b.store(a.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      latch.WriteUnlock(g);
    }
    stop.store(true, std::memory_order_release);
  });

  uint64_t validated = 0;
  // Keep reading until at least one snapshot validates: once the writer is
  // done the latch is quiescent, so the next read is guaranteed to validate
  // and the loop terminates even when the writer outruns the reader entirely
  // (single-core schedulers can run the whole writer loop in one quantum).
  while (!stop.load(std::memory_order_acquire) || validated == 0) {
    const uint64_t v = latch.ReadLockOrRestart();
    const uint64_t sa = a.load(std::memory_order_relaxed);
    const uint64_t sb = b.load(std::memory_order_relaxed);
    if (!latch.CheckOrRestart(v)) continue;  // interfered with: discard
    ASSERT_EQ(sb, sa + 1) << "validated snapshot is torn";
    validated++;
  }
  writer.join();
  EXPECT_GT(validated, 0u);
  const uint64_t v = latch.ReadLockOrRestart();
  EXPECT_EQ(a.load(std::memory_order_relaxed), 4000u);
  EXPECT_EQ(v & VersionLatch::kVersionMask, 2ull * 4000u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, LatchStressBothModes,
                         ::testing::Values(LockImpl::kCas, LockImpl::kOptiql,
                                           LockImpl::kAdaptive),
                         [](const ::testing::TestParamInfo<LockImpl>& param) {
                           return LockImplName(param.param);
                         });

// --------------------------------------------------------------------------
// FIFO handoff (fiber-mode: deterministic round-robin interleaving)
// --------------------------------------------------------------------------

TEST(OptiqlFifo, QueuedWaitersAcquireInArrivalOrder) {
  ScopedLockImpl mode(LockImpl::kOptiql);
  VersionLatch latch;
  std::vector<int> order;

  FiberScheduler sched;
  // Fiber 0 takes the lock, then yields long enough for every waiter to
  // enqueue; fibers 1..4 block in WriteLock (their acquire loops yield, so
  // the scheduler keeps rotating). Arrival order is the spawn order under
  // round-robin, and the MCS queue must replay exactly that order.
  sched.Spawn([&] {
    VersionLatch::Guard g;
    latch.WriteLock(g);
    for (int i = 0; i < 8; i++) FiberScheduler::YieldFiber();
    order.push_back(0);
    latch.WriteUnlock(g);
  });
  for (int f = 1; f <= 4; f++) {
    sched.Spawn([&, f] {
      VersionLatch::Guard g;
      latch.WriteLock(g);
      order.push_back(f);
      latch.WriteUnlock(g);
    });
  }
  sched.Run();

  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(latch.ReadLockOrRestart(), 10u);  // five bumps, queue drained
}

TEST(OptiqlFifo, QueuedUpgradeRestartsWhenPredecessorModified) {
  ScopedLockImpl mode(LockImpl::kOptiql);
  VersionLatch latch;
  bool upgrade_result = true;

  FiberScheduler sched;
  sched.Spawn([&] {
    VersionLatch::Guard g;
    latch.WriteLock(g);  // holder the upgrader will queue behind
    for (int i = 0; i < 4; i++) FiberScheduler::YieldFiber();
    latch.WriteUnlock(g);  // modifies: bumps the version
  });
  sched.Spawn([&] {
    VersionLatch::Guard g;
    // Snapshot 0 matches the holder's version bits, so the upgrade cannot
    // fail fast — it must queue behind the (still modifying) holder.
    upgrade_result = latch.UpgradeToWriteLockOrRestart(0, g);
  });
  sched.Run();

  // The upgrade queued behind the modifying holder, got the lock, saw the
  // version moved, and released WITHOUT bumping.
  EXPECT_FALSE(upgrade_result);
  EXPECT_FALSE(latch.IsLocked());
  EXPECT_EQ(latch.ReadLockOrRestart(), 2u);  // exactly one bump (fiber 0's)
}

TEST(OptiqlFifo, FiberRunsAreDeterministic) {
  auto run_once = [] {
    ScopedLockImpl mode(LockImpl::kOptiql);
    VersionLatch latch;
    uint64_t counter = 0;
    std::vector<int> trace;
    FiberScheduler sched;
    for (int f = 0; f < 6; f++) {
      sched.Spawn([&, f] {
        for (int i = 0; i < 20; i++) {
          VersionLatch::Guard g;
          latch.WriteLock(g);
          counter++;
          trace.push_back(f);
          latch.WriteUnlock(g);
          if (i % 3 == f % 3) FiberScheduler::YieldFiber();
        }
      });
    }
    sched.Run();
    EXPECT_EQ(counter, 120u);
    return trace;
  };
  const std::vector<int> first = run_once();
  const std::vector<int> second = run_once();
  EXPECT_EQ(first, second) << "fiber-mode lock handoff must be deterministic";
}

// --------------------------------------------------------------------------
// QNode pool exhaustion: the CAS fallback keeps the latch correct
// --------------------------------------------------------------------------

TEST(OptiqlPool, ExhaustionFallsBackToPlainCas) {
  ScopedLockImpl mode(LockImpl::kOptiql);
  // Hold more write locks at once than one thread's qnode pool can serve;
  // acquires past the pool capacity must degrade to the queue-less CAS path
  // (tail stays 0) and still uphold the version protocol on release.
  const size_t kLatches = kQNodeSlotsPerThread + 32;
  std::vector<VersionLatch> latches(kLatches);
  std::vector<VersionLatch::Guard> guards(kLatches);
  for (size_t i = 0; i < kLatches; i++) {
    ASSERT_TRUE(latches[i].UpgradeToWriteLockOrRestart(0, guards[i])) << i;
    EXPECT_TRUE(latches[i].IsLocked());
  }
  size_t fallback = 0;
  for (size_t i = 0; i < kLatches; i++) {
    if (guards[i].qid == 0) fallback++;
  }
  EXPECT_GE(fallback, 32u);  // the overflow acquires really had no qnode
  for (size_t i = 0; i < kLatches; i++) latches[i].WriteUnlock(guards[i]);
  for (size_t i = 0; i < kLatches; i++) {
    EXPECT_EQ(latches[i].ReadLockOrRestart(), 2u);
  }
  // The pool recovered: a fresh acquire gets a queue node again.
  VersionLatch l;
  VersionLatch::Guard g;
  ASSERT_TRUE(l.UpgradeToWriteLockOrRestart(0, g));
  EXPECT_NE(g.qid, 0u);
  l.WriteUnlock(g);
}

// --------------------------------------------------------------------------
// Row::LockContended — bounded queued acquire of the TID word
// --------------------------------------------------------------------------

class RowLockBothModes : public ::testing::TestWithParam<LockImpl> {};

TEST_P(RowLockBothModes, BoundedGiveUpAndReacquire) {
  ScopedLockImpl mode(GetParam());
  std::vector<char> mem(Row::AllocSize(8));
  Row* row = Row::Init(mem.data(), 0, 7, 8, /*visible=*/true);

  ASSERT_TRUE(row->TryLock());
  // Held elsewhere: a bounded acquire must give up (the validator turns this
  // into a kLockFail abort), not wait forever.
  EXPECT_FALSE(row->LockContended(16));
  row->Unlock();
  EXPECT_TRUE(row->LockContended(16));
  // The packed TID layout is unchanged: plain TidWord consumers see the lock.
  EXPECT_TRUE(TidWord::IsLocked(row->tid.load(std::memory_order_acquire)));
  row->UnlockWithVersion(42);
  EXPECT_EQ(TidWord::Version(row->tid.load(std::memory_order_acquire)), 42u);
}

TEST_P(RowLockBothModes, NoLostUpdatesThroughTidWord) {
  ScopedLockImpl mode(GetParam());
  constexpr int kThreads = 4;
  constexpr int kIncrements = 1500;
  std::vector<char> mem(Row::AllocSize(sizeof(uint64_t)));
  Row* row = Row::Init(mem.data(), 0, 1, sizeof(uint64_t), /*visible=*/true);
  std::memset(row->Data(), 0, sizeof(uint64_t));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; i++) {
        while (!row->LockContended(64)) {
        }
        uint64_t v;
        std::memcpy(&v, row->Data(), sizeof(v));
        v++;
        std::memcpy(row->Data(), &v, sizeof(v));
        row->UnlockWithVersion(v);
      }
    });
  }
  for (auto& t : threads) t.join();

  uint64_t final_value;
  std::memcpy(&final_value, row->Data(), sizeof(final_value));
  EXPECT_EQ(final_value, static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(TidWord::Version(row->tid.load(std::memory_order_acquire)),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

INSTANTIATE_TEST_SUITE_P(BothModes, RowLockBothModes,
                         ::testing::Values(LockImpl::kCas, LockImpl::kOptiql,
                                           LockImpl::kAdaptive),
                         [](const ::testing::TestParamInfo<LockImpl>& param) {
                           return LockImplName(param.param);
                         });

// --------------------------------------------------------------------------
// OpRead drop-out: a doomed queued upgrader leaves the queue early
// --------------------------------------------------------------------------

TEST(OpReadDropOut, DoomedUpgraderLeavesQueueEarly) {
  ScopedLockImpl mode(LockImpl::kOptiql);
  VersionLatch latch;
  std::vector<int> order;
  bool upgrade_result = true;

  FiberScheduler sched;
  sched.Spawn([&] {  // fiber 0: holder; its release bump dooms the upgrader
    VersionLatch::Guard g;
    latch.WriteLock(g);
    for (int i = 0; i < 4; i++) FiberScheduler::YieldFiber();
    order.push_back(0);
    latch.WriteUnlock(g);
  });
  sched.Spawn([&] {  // fiber 1: queued writer; holds across many yields
    VersionLatch::Guard g;
    latch.WriteLock(g);
    for (int i = 0; i < 8; i++) FiberScheduler::YieldFiber();
    order.push_back(1);
    latch.WriteUnlock(g);
  });
  sched.Spawn([&] {  // fiber 2: upgrader queued BEHIND fiber 1, mid-queue
    VersionLatch::Guard g;
    upgrade_result = latch.UpgradeToWriteLockOrRestart(0, g);
    order.push_back(2);
  });
  sched.Run();

  EXPECT_FALSE(upgrade_result);
  // The proof of the drop-out is the order: fiber 2 returned while fiber 1
  // still HELD the lock. Had it stayed queued it could only return after
  // fiber 1's release handed the lock over.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
  EXPECT_FALSE(latch.IsLocked());
  EXPECT_EQ(latch.ReadLockOrRestart(), 4u);  // exactly the two writers' bumps

  // The abandoned node was consumed by fiber 1's release and recycled; the
  // queue is clean and a fresh queued acquire works.
  VersionLatch::Guard g;
  latch.WriteLock(g);
  EXPECT_NE(g.qid, 0u);
  latch.WriteUnlock(g);
  EXPECT_EQ(latch.ReadLockOrRestart(), 6u);
}

TEST(OpReadDropOut, AbandonRaceStressUnderThreads) {
  // Writers bump the version nonstop while upgraders queue on snapshots that
  // are mostly doomed: every interleaving of grant vs abandon vs tail-CAS
  // gets exercised. The version-bump accounting must stay exact and the
  // latch must end unlocked with an empty queue.
  ScopedLockImpl mode(LockImpl::kOptiql);
  VersionLatch latch;
  constexpr int kWriters = 3;
  constexpr int kUpgraders = 3;
  constexpr int kOps = 2000;
  std::atomic<uint64_t> bumps{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; i++) {
        VersionLatch::Guard g;
        latch.WriteLock(g);
        latch.WriteUnlock(g);
        bumps.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < kUpgraders; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; i++) {
        const uint64_t v = latch.ReadLockOrRestart();
        VersionLatch::Guard g;
        if (latch.UpgradeToWriteLockOrRestart(v, g)) {
          latch.WriteUnlock(g);
          bumps.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  const uint64_t w = latch.RawWord();
  EXPECT_EQ(w & VersionLatch::kLockedBit, 0u);
  EXPECT_EQ(w & VersionLatch::kTailMask, 0u) << "queue not drained";
  EXPECT_EQ(w, 2u * bumps.load());
}

// --------------------------------------------------------------------------
// ContendedHint — per-latch promotion in --lock=adaptive
// --------------------------------------------------------------------------

TEST(AdaptiveHint, UseQueueDecisionPerMode) {
  ContendedHint cold;
  ContendedHint hot;
  hot.score.store(ContendedHint::kPromoteAt, std::memory_order_relaxed);
  {
    ScopedLockImpl m(LockImpl::kCas);
    EXPECT_FALSE(UseQueue(&hot));
    EXPECT_FALSE(UseQueue(nullptr));
    EXPECT_FALSE(QueueCapable());
  }
  {
    ScopedLockImpl m(LockImpl::kOptiql);
    EXPECT_TRUE(UseQueue(&cold));
    EXPECT_TRUE(UseQueue(nullptr));
    EXPECT_TRUE(QueueCapable());
  }
  {
    ScopedLockImpl m(LockImpl::kAdaptive);
    EXPECT_FALSE(UseQueue(&cold));
    EXPECT_TRUE(UseQueue(&hot));
    // Hint-less call sites (striped row queue, ring combining) treat
    // adaptive as queue-capable but UseQueue without a hint stays on CAS.
    EXPECT_FALSE(UseQueue(nullptr));
    EXPECT_TRUE(QueueCapable());
  }
}

TEST(AdaptiveHint, ParseAcceptsAdaptive) {
  LockImpl impl = LockImpl::kCas;
  EXPECT_TRUE(ParseLockImpl("adaptive", &impl));
  EXPECT_EQ(impl, LockImpl::kAdaptive);
  EXPECT_STREQ(LockImplName(LockImpl::kAdaptive), "adaptive");
  EXPECT_FALSE(ParseLockImpl("adaptive?", &impl));
}

TEST(AdaptiveHint, ContendedFailuresPromoteLatchToQueue) {
  ScopedLockImpl mode(LockImpl::kAdaptive);
  VersionLatch latch;
  ContendedHint hint;
  EXPECT_FALSE(hint.Promoted());

  // Unpromoted: acquires take the CAS path (no queue node).
  VersionLatch::Guard held;
  latch.WriteLock(held, &hint);
  EXPECT_EQ(held.qid, 0u);

  // Upgrade failures at the SAME version (lock held) are the CAS-storm
  // signature and score the hint up to promotion.
  for (uint16_t i = 0; i < ContendedHint::kPromoteAt; i++) {
    VersionLatch::Guard g;
    EXPECT_FALSE(latch.UpgradeToWriteLockOrRestart(0, g, &hint));
  }
  EXPECT_TRUE(hint.Promoted());
  latch.WriteUnlock(held);

  // Promoted: this latch now queues its writers.
  const uint64_t v = latch.ReadLockOrRestart();
  VersionLatch::Guard g;
  ASSERT_TRUE(latch.UpgradeToWriteLockOrRestart(v, g, &hint));
  EXPECT_NE(g.qid, 0u);
  latch.WriteUnlock(g);
}

TEST(AdaptiveHint, VersionMovedFailuresDoNotScore) {
  ScopedLockImpl mode(LockImpl::kAdaptive);
  VersionLatch latch;
  ContendedHint hint;
  VersionLatch::Guard g0;
  latch.WriteLock(g0, &hint);
  latch.WriteUnlock(g0);  // version now 2: snapshot 0 is stale, not contended

  for (int i = 0; i < 2 * ContendedHint::kPromoteAt; i++) {
    VersionLatch::Guard g;
    EXPECT_FALSE(latch.UpgradeToWriteLockOrRestart(0, g, &hint));
  }
  // Ordinary OCC restarts (version moved, lock free) never promote: the CAS
  // path handles them fine and queueing would only add latency.
  EXPECT_FALSE(hint.Promoted());
  EXPECT_EQ(hint.score.load(std::memory_order_relaxed), 0u);
}

TEST(RowLockFifo, QueuedAcquireIsFifoUnderFibers) {
  ScopedLockImpl mode(LockImpl::kOptiql);
  std::vector<char> mem(Row::AllocSize(8));
  Row* row = Row::Init(mem.data(), 0, 3, 8, /*visible=*/true);
  std::vector<int> order;

  FiberScheduler sched;
  sched.Spawn([&] {
    ASSERT_TRUE(row->TryLock());
    // Hold across yields — the validator does exactly this between paced
    // validation steps; waiters must queue, not CAS-storm.
    for (int i = 0; i < 10; i++) FiberScheduler::YieldFiber();
    order.push_back(0);
    row->Unlock();
  });
  for (int f = 1; f <= 3; f++) {
    sched.Spawn([&, f] {
      ASSERT_TRUE(row->LockContended(100000));
      order.push_back(f);
      row->Unlock();
    });
  }
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace sync
}  // namespace rocc
