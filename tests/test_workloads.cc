// Workload-level tests: YCSB generator/loader behaviour and the modified
// TPC-C (loader population, every transaction type, consistency invariants
// under single-threaded and concurrent execution).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "harness/runner.h"
#include "workload/tpcc/tpcc.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

using namespace tpcc;  // NOLINT

// --------------------------------------------------------------------------
// YCSB
// --------------------------------------------------------------------------

TEST(Ycsb, LoadPopulatesTable) {
  Database db;
  YcsbOptions opts;
  opts.num_rows = 5000;
  opts.payload_size = 32;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  EXPECT_EQ(db.GetTable(wl.table_id())->row_count(), 5000u);
  EXPECT_EQ(db.GetIndex(wl.table_id())->Size(), 5000u);
  EXPECT_EQ(db.GetTable(wl.table_id())->row_size(), 32u);
  // First payload bytes carry the key.
  Row* r = db.GetIndex(wl.table_id())->Get(1234);
  ASSERT_NE(r, nullptr);
  uint64_t v = 0;
  std::memcpy(&v, r->Data(), sizeof(v));
  EXPECT_EQ(v, 1234u);
}

TEST(Ycsb, DefaultRangeCountMatchesPaperRangeSize) {
  YcsbOptions opts;
  opts.num_rows = 10'000'000;
  YcsbWorkload wl(opts);
  // Paper: 10M rows -> 16384 ranges of ~610 keys.
  EXPECT_NEAR(static_cast<double>(wl.DefaultNumRanges()), 16384.0, 100.0);
  const auto configs = wl.RangeConfigs(0, 512);
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].key_max, 10'000'000u);
  EXPECT_EQ(configs[0].ring_capacity, 512u);
}

TEST(Ycsb, RangeHintOverridesDefault) {
  YcsbOptions opts;
  opts.num_rows = 100000;
  YcsbWorkload wl(opts);
  const auto configs = wl.RangeConfigs(4096, 100);
  EXPECT_EQ(configs[0].num_ranges, 4096u);
}

TEST(Ycsb, HybridMixRunsToCompletion) {
  Database db;
  YcsbOptions opts;
  opts.num_rows = 20000;
  opts.scan_txn_fraction = 0.1;
  opts.scan_length = 100;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol("rocc", &db, wl, 2);
  TxnStats stats;
  cc->AttachThread(0, &stats);
  Rng rng(7);
  for (int i = 0; i < 500; i++) EXPECT_TRUE(wl.RunTxn(cc.get(), 0, rng).ok());
  EXPECT_EQ(stats.commits, 500u);
  // ~10% scan transactions; loose statistical bound.
  EXPECT_GT(stats.scan_txn_commits, 20u);
  EXPECT_LT(stats.scan_txn_commits, 100u);
  EXPECT_GT(stats.scanned_records, stats.scan_txn_commits * 99);
}

TEST(Ycsb, ScanStartClampKeepsWindowInsideTable) {
  YcsbOptions opts;
  opts.num_rows = 1000;
  opts.scan_length = 100;
  YcsbWorkload wl(opts);
  // Invariant: scan_start + scan_length <= num_rows.
  EXPECT_EQ(wl.ClampScanStart(10), 10u);
  EXPECT_EQ(wl.ClampScanStart(900), 900u);
  EXPECT_EQ(wl.ClampScanStart(901), 900u);
  EXPECT_EQ(wl.ClampScanStart(999), 900u);
}

TEST(Ycsb, ScanStartClampsToZeroWhenScanCoversTable) {
  YcsbOptions opts;
  opts.num_rows = 100;
  opts.scan_length = 100;  // whole table
  YcsbWorkload exact(opts);
  EXPECT_EQ(exact.ClampScanStart(0), 0u);
  EXPECT_EQ(exact.ClampScanStart(57), 0u);
  EXPECT_EQ(exact.ClampScanStart(99), 0u);
  opts.scan_length = 250;  // longer than the table
  YcsbWorkload oversized(opts);
  EXPECT_EQ(oversized.ClampScanStart(42), 0u);
}

TEST(Ycsb, WholeTableScanDeliversEveryRow) {
  // Regression: an unclamped Zipfian scan start with scan_length == num_rows
  // made "whole table" scans silently deliver only the tail of the table.
  Database db;
  YcsbOptions opts;
  opts.num_rows = 300;
  opts.scan_length = 300;
  opts.scan_txn_fraction = 1.0;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol("rocc", &db, wl, 1);
  TxnStats stats;
  cc->AttachThread(0, &stats);
  Rng rng(11);
  for (int i = 0; i < 50; i++) ASSERT_TRUE(wl.RunTxn(cc.get(), 0, rng).ok());
  EXPECT_EQ(stats.scan_txn_commits, 50u);
  EXPECT_EQ(stats.scanned_records, 50u * 300u);
}

TEST(Ycsb, WorkloadAVariantHasNoScans) {
  Database db;
  YcsbOptions opts;
  opts.num_rows = 10000;
  opts.scan_txn_fraction = 0.0;
  opts.read_fraction = 0.5;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol("rocc", &db, wl, 2);
  TxnStats stats;
  cc->AttachThread(0, &stats);
  Rng rng(8);
  for (int i = 0; i < 300; i++) EXPECT_TRUE(wl.RunTxn(cc.get(), 0, rng).ok());
  EXPECT_EQ(stats.scan_txn_commits, 0u);
  EXPECT_EQ(stats.scanned_records, 0u);
  EXPECT_GT(stats.validated_records, 0u);  // reads were validated
}

// --------------------------------------------------------------------------
// TPC-C loader
// --------------------------------------------------------------------------

class TpccFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    TpccOptions opts;
    opts.num_warehouses = 2;
    opts.initial_orders_per_district = 30;
    opts.bulk_scan_length = 500;
    wl_ = std::make_unique<TpccWorkload>(opts);
    wl_->Load(&db_);
    cc_ = CreateProtocol("rocc", &db_, *wl_, 4);
  }

  Database db_;
  std::unique_ptr<TpccWorkload> wl_;
  std::unique_ptr<ConcurrencyControl> cc_;
};

TEST_F(TpccFixture, LoaderPopulation) {
  const auto& t = wl_->tables();
  EXPECT_EQ(db_.GetTable(t.warehouse)->row_count(), 2u);
  EXPECT_EQ(db_.GetTable(t.district)->row_count(), 20u);
  EXPECT_EQ(db_.GetTable(t.customer)->row_count(), 2u * kCustomersPerWarehouse);
  EXPECT_EQ(db_.GetTable(t.item)->row_count(), kItems);
  EXPECT_EQ(db_.GetTable(t.stock)->row_count(), 2u * kItems);
  EXPECT_EQ(db_.GetTable(t.order)->row_count(), 20u * 30u);
  // A third of initial orders are undelivered.
  EXPECT_EQ(db_.GetIndex(t.new_order)->Size(), 20u * 10u);
  EXPECT_GT(db_.GetTable(t.order_line)->row_count(), 20u * 30u * kMinOrderLines - 1);
}

TEST_F(TpccFixture, LoaderInvariantsHold) {
  EXPECT_TRUE(wl_->CheckYtdInvariant());
  EXPECT_TRUE(wl_->CheckOrderInvariant());
}

TEST_F(TpccFixture, KeyEncodingsRoundTrip) {
  EXPECT_EQ(DistrictOfCustomerKey(CustomerKey(1, 7, 2999)), DistrictKey(1, 7));
  EXPECT_LT(CustomerKey(0, 9, 2999), CustomerKey(1, 0, 0));
  EXPECT_LT(OrderKey(0, 0, 1 << 20), OrderKey(0, 1, 0));
  EXPECT_LT(OrderLineKey(0, 0, 5, 15), OrderLineKey(0, 0, 6, 0));
  EXPECT_NE(HistoryKey(1, 5), HistoryKey(2, 5));
}

// --------------------------------------------------------------------------
// TPC-C transactions (single-threaded determinism)
// --------------------------------------------------------------------------

TEST_F(TpccFixture, NewOrderCreatesOrderAndLines) {
  const auto& t = wl_->tables();
  const uint64_t orders_before = db_.GetTable(t.order)->row_count();
  Rng rng(1);
  ASSERT_TRUE(wl_->DoNewOrder(cc_.get(), 0, rng).ok());
  EXPECT_EQ(db_.GetTable(t.order)->row_count(), orders_before + 1);
  EXPECT_TRUE(wl_->CheckOrderInvariant());
  EXPECT_TRUE(wl_->CheckYtdInvariant());  // NewOrder does not touch YTD
}

TEST_F(TpccFixture, PaymentPreservesYtdInvariant) {
  Rng rng(2);
  for (int i = 0; i < 50; i++) ASSERT_TRUE(wl_->DoPayment(cc_.get(), 0, rng).ok());
  EXPECT_TRUE(wl_->CheckYtdInvariant());
  EXPECT_EQ(db_.GetIndex(wl_->tables().history)->Size(), 50u);
}

TEST_F(TpccFixture, OrderStatusIsReadOnlyAndCommits) {
  Rng rng(3);
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(wl_->DoOrderStatus(cc_.get(), 0, rng).ok());
  }
  EXPECT_TRUE(wl_->CheckYtdInvariant());
}

TEST_F(TpccFixture, DeliveryDrainsNewOrders) {
  const auto& t = wl_->tables();
  const uint64_t before = db_.GetIndex(t.new_order)->Size();
  Rng rng(4);
  ASSERT_TRUE(wl_->DoDelivery(cc_.get(), 0, rng).ok());
  // One order per district delivered (10 districts in the chosen warehouse).
  EXPECT_EQ(db_.GetIndex(t.new_order)->Size(), before - kDistrictsPerWarehouse);
  EXPECT_TRUE(wl_->CheckYtdInvariant());
}

TEST_F(TpccFixture, StockLevelCommits) {
  Rng rng(5);
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(wl_->DoStockLevel(cc_.get(), 0, rng).ok());
  }
}

TEST_F(TpccFixture, BulkRewardCreditsTopShopper) {
  const auto& t = wl_->tables();
  Rng rng(6);
  // Make one customer the clear top shopper in warehouse 0 via payments.
  for (int i = 0; i < 5; i++) ASSERT_TRUE(wl_->DoPayment(cc_.get(), 0, rng).ok());
  ASSERT_TRUE(wl_->DoBulkReward(cc_.get(), /*thread_id=*/0, rng).ok());
  EXPECT_TRUE(wl_->CheckYtdInvariant());
  (void)t;
}

TEST_F(TpccFixture, MixedRunSingleThreadKeepsInvariants) {
  Rng rng(7);
  for (int i = 0; i < 300; i++) {
    EXPECT_TRUE(wl_->RunTxn(cc_.get(), 0, rng).ok());
  }
  EXPECT_TRUE(wl_->CheckYtdInvariant());
  EXPECT_TRUE(wl_->CheckOrderInvariant());
}

// --------------------------------------------------------------------------
// TPC-C concurrent serializability (per protocol)
// --------------------------------------------------------------------------

class TpccConcurrentTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TpccConcurrentTest, InvariantsSurviveConcurrency) {
  Database db;
  TpccOptions opts;
  opts.num_warehouses = 2;
  opts.initial_orders_per_district = 20;
  opts.bulk_scan_length = 400;
  TpccWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol(GetParam(), &db, wl, 4);

  std::vector<std::thread> threads;
  for (uint32_t tid = 0; tid < 4; tid++) {
    threads.emplace_back([&, tid] {
      Rng rng(100 + tid);
      for (int i = 0; i < 250; i++) wl.RunTxn(cc.get(), tid, rng);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(wl.CheckYtdInvariant()) << GetParam();
  EXPECT_TRUE(wl.CheckOrderInvariant()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(OccFamily, TpccConcurrentTest,
                         ::testing::Values("rocc", "lrv", "gwv", "mvrcc"),
                         [](const auto& pinfo) { return pinfo.param; });

}  // namespace
}  // namespace rocc
