// Serializability property tests: concurrent workloads with global
// invariants that any non-serializable schedule would break.
//
//  1. Transfer conservation — point read/write conflicts.
//  2. Range-sum conservation — scans racing transfers (predicate validation).
//  3. Phantom count conservation — scans racing insert+delete pairs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cc/hyper_gwv.h"
#include "cc/mvrcc.h"
#include "cc/silo_lrv.h"
#include "cc/two_phase_locking.h"
#include "common/rng.h"
#include "core/rocc.h"

namespace rocc {
namespace {

constexpr uint64_t kAccounts = 512;
constexpr uint64_t kInitialBalance = 1000;
constexpr uint32_t kThreads = 4;

std::unique_ptr<ConcurrencyControl> MakeProtocol(const std::string& name,
                                                 Database* db, uint32_t table,
                                                 uint64_t key_max) {
  if (name == "rocc" || name == "mvrcc") {
    RoccOptions opts;
    RangeConfig rc;
    rc.table_id = table;
    rc.key_min = 0;
    rc.key_max = key_max;
    rc.num_ranges = 16;
    rc.ring_capacity = 1024;
    opts.tables = {rc};
    if (name == "mvrcc") return std::make_unique<Mvrcc>(db, kThreads, std::move(opts));
    return std::make_unique<Rocc>(db, kThreads, std::move(opts));
  }
  if (name == "lrv") return std::make_unique<SiloLrv>(db, kThreads);
  if (name == "gwv") return std::make_unique<HyperGwv>(db, kThreads);
  return std::make_unique<TplNoWait>(db, kThreads);
}

class BalanceSumConsumer : public ScanConsumer {
 public:
  bool OnRecord(uint64_t, const char* payload) override {
    uint64_t v;
    std::memcpy(&v, payload, sizeof(v));
    sum_ += v;
    count_++;
    return true;
  }
  uint64_t sum() const { return sum_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t sum_ = 0;
  uint64_t count_ = 0;
};

class SerializabilityTest : public ::testing::TestWithParam<std::string> {
 protected:
  void LoadAccounts() {
    table_ = db_.CreateTable("accounts", Schema({{"balance", 8, 0}}));
    for (uint64_t k = 0; k < kAccounts; k++) {
      db_.LoadRow(table_, k, &kInitialBalance);
    }
  }

  /// One money transfer between two random accounts; returns commit status.
  Status Transfer(ConcurrencyControl* cc, uint32_t tid, Rng& rng) {
    const uint64_t a = rng.Uniform(kAccounts);
    uint64_t b = rng.Uniform(kAccounts - 1);
    if (b >= a) b++;
    TxnDescriptor* t = cc->Begin(tid);
    uint64_t va = 0, vb = 0;
    Status st = cc->Read(t, table_, a, &va);
    if (st.ok()) st = cc->Read(t, table_, b, &vb);
    if (!st.ok()) {
      cc->Abort(t);
      return Status::Aborted();
    }
    const uint64_t amount = rng.Uniform(10) + 1;
    if (va < amount) {
      cc->Abort(t);
      return Status::Aborted();
    }
    va -= amount;
    vb += amount;
    st = cc->Update(t, table_, a, &va, sizeof(va), 0);
    if (st.ok()) st = cc->Update(t, table_, b, &vb, sizeof(vb), 0);
    if (!st.ok()) {
      cc->Abort(t);
      return Status::Aborted();
    }
    return cc->Commit(t);
  }

  Database db_;
  uint32_t table_ = 0;
};

// Point-only conflicts: total money is conserved.
TEST_P(SerializabilityTest, TransferConservation) {
  LoadAccounts();
  auto cc = MakeProtocol(GetParam(), &db_, table_, kAccounts);
  std::vector<std::thread> threads;
  for (uint32_t tid = 0; tid < kThreads; tid++) {
    threads.emplace_back([&, tid] {
      Rng rng(1000 + tid);
      for (int i = 0; i < 4000; i++) Transfer(cc.get(), tid, rng);
    });
  }
  for (auto& th : threads) th.join();

  // Quiescent check: sum of all balances unchanged.
  uint64_t total = 0;
  db_.GetIndex(table_)->ScanFrom(0, [&](uint64_t, Row* row) {
    uint64_t v;
    std::memcpy(&v, row->Data(), sizeof(v));
    total += v;
    return true;
  });
  EXPECT_EQ(total, kAccounts * kInitialBalance);
}

// Scans racing transfers: every committed range-sum over ALL accounts must
// equal the invariant total — a stale or torn scan that commits breaks this.
TEST_P(SerializabilityTest, RangeSumConservationUnderTransfers) {
  LoadAccounts();
  auto cc = MakeProtocol(GetParam(), &db_, table_, kAccounts);
  std::atomic<bool> violation{false};
  std::atomic<uint64_t> committed_scans{0};

  std::vector<std::thread> threads;
  for (uint32_t tid = 0; tid < kThreads; tid++) {
    threads.emplace_back([&, tid] {
      Rng rng(2000 + tid);
      for (int i = 0; i < 1500; i++) {
        if (tid == 0) {
          // Dedicated scanner thread: full-table sum.
          TxnDescriptor* t = cc->Begin(tid);
          t->is_scan_txn = true;
          BalanceSumConsumer sum;
          Status st = cc->Scan(t, table_, 0, kAccounts, 0, &sum);
          if (!st.ok()) {
            cc->Abort(t);
            continue;
          }
          if (cc->Commit(t).ok()) {
            committed_scans.fetch_add(1);
            if (sum.count() != kAccounts ||
                sum.sum() != kAccounts * kInitialBalance) {
              violation.store(true);
            }
          }
        } else {
          Transfer(cc.get(), tid, rng);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(committed_scans.load(), 0u);
}

// Partial-range sums: scans cover one logical-range-sized window while
// transfers are restricted to stay inside the same window, so the window sum
// is invariant. Exercises partial predicates and precise boundaries.
TEST_P(SerializabilityTest, WindowSumConservation) {
  LoadAccounts();
  auto cc = MakeProtocol(GetParam(), &db_, table_, kAccounts);
  constexpr uint64_t kWindowStart = 128;
  constexpr uint64_t kWindowEnd = 192;  // 64 accounts
  std::atomic<bool> violation{false};
  std::atomic<uint64_t> committed_scans{0};

  std::vector<std::thread> threads;
  for (uint32_t tid = 0; tid < kThreads; tid++) {
    threads.emplace_back([&, tid] {
      Rng rng(3000 + tid);
      for (int i = 0; i < 1500; i++) {
        if (tid == 0) {
          TxnDescriptor* t = cc->Begin(tid);
          BalanceSumConsumer sum;
          Status st = cc->Scan(t, table_, kWindowStart, kWindowEnd, 0, &sum);
          if (!st.ok()) {
            cc->Abort(t);
            continue;
          }
          if (cc->Commit(t).ok()) {
            committed_scans.fetch_add(1);
            if (sum.sum() != (kWindowEnd - kWindowStart) * kInitialBalance) {
              violation.store(true);
            }
          }
        } else {
          // Transfer within the window only.
          const uint64_t a = kWindowStart + rng.Uniform(kWindowEnd - kWindowStart);
          uint64_t b = kWindowStart + rng.Uniform(kWindowEnd - kWindowStart);
          if (a == b) continue;
          TxnDescriptor* t = cc->Begin(tid);
          uint64_t va = 0, vb = 0;
          Status st = cc->Read(t, table_, a, &va);
          if (st.ok()) st = cc->Read(t, table_, b, &vb);
          if (st.ok() && va >= 1) {
            va -= 1;
            vb += 1;
            st = cc->Update(t, table_, a, &va, sizeof(va), 0);
            if (st.ok()) st = cc->Update(t, table_, b, &vb, sizeof(vb), 0);
          }
          if (!st.ok()) {
            cc->Abort(t);
            continue;
          }
          cc->Commit(t);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(committed_scans.load(), 0u);
}

// Phantom protection: writers replace one of "their" keys with a fresh key
// (insert new + delete old in one txn), keeping the total row count constant.
// Scanner transactions count rows; any committed count != initial means a
// phantom slipped through validation. 2PL-NW is excluded: it documents no
// phantom protection.
TEST_P(SerializabilityTest, PhantomCountConservation) {
  if (GetParam() == "2pl") GTEST_SKIP() << "2PL-NW has no phantom protection";
  table_ = db_.CreateTable("accounts", Schema({{"balance", 8, 0}}));
  // Each writer thread owns a private key region so insert/delete targets
  // never collide between threads: region base = tid * 1e6.
  constexpr uint64_t kPerThread = 64;
  constexpr uint64_t kRegion = 1 << 20;
  uint64_t total_rows = 0;
  for (uint32_t tid = 1; tid < kThreads; tid++) {
    for (uint64_t i = 0; i < kPerThread; i++) {
      const uint64_t v = 1;
      db_.LoadRow(table_, tid * kRegion + i, &v);
      total_rows++;
    }
  }
  auto cc = MakeProtocol(GetParam(), &db_, table_, kThreads * kRegion);
  std::atomic<bool> violation{false};
  std::atomic<uint64_t> committed_scans{0};

  std::vector<std::thread> threads;
  for (uint32_t tid = 0; tid < kThreads; tid++) {
    threads.emplace_back([&, tid] {
      Rng rng(4000 + tid);
      if (tid == 0) {
        for (int i = 0; i < 1000; i++) {
          TxnDescriptor* t = cc->Begin(tid);
          BalanceSumConsumer counter;
          Status st = cc->Scan(t, table_, 0, kThreads * kRegion, 0, &counter);
          if (!st.ok()) {
            cc->Abort(t);
            continue;
          }
          if (cc->Commit(t).ok()) {
            committed_scans.fetch_add(1);
            if (counter.count() != total_rows) violation.store(true);
          }
        }
        return;
      }
      // Writer: maintain a moving window of live keys [low, low+kPerThread).
      uint64_t low = tid * kRegion;
      uint64_t next = low + kPerThread;
      for (int i = 0; i < 1000; i++) {
        TxnDescriptor* t = cc->Begin(tid);
        const uint64_t v = 1;
        Status st = cc->Insert(t, table_, next, &v);
        if (st.ok()) st = cc->Remove(t, table_, low);
        if (!st.ok()) {
          cc->Abort(t);
          continue;
        }
        if (cc->Commit(t).ok()) {
          low++;
          next++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(committed_scans.load(), 0u);

  // Quiescent recount via the raw index (skipping tombstones).
  uint64_t rows = 0;
  db_.GetIndex(table_)->ScanFrom(0, [&](uint64_t, Row* row) {
    if (!row->IsAbsent()) rows++;
    return true;
  });
  EXPECT_EQ(rows, total_rows);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SerializabilityTest,
                         ::testing::Values("rocc", "lrv", "gwv", "mvrcc", "2pl"),
                         [](const auto& pinfo) { return pinfo.param; });

}  // namespace
}  // namespace rocc
