// End-to-end integration tests through the experiment harness: the runner
// produces sane statistics for every protocol, and the paper's headline
// cost relationships hold qualitatively (RV examines fewer transactions than
// GWV; LRV validation work scales with scan length).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/report.h"
#include "harness/runner.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

RunResult RunYcsb(const std::string& proto, uint64_t rows, uint64_t scan_len,
                  uint32_t threads, uint64_t txns, double theta = 0.7,
                  uint32_t ranges_hint = 0) {
  Database db;
  YcsbOptions opts;
  opts.num_rows = rows;
  opts.theta = theta;
  opts.scan_length = scan_len;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol(proto, &db, wl, threads, ranges_hint);
  RunOptions run;
  run.num_threads = threads;
  run.txns_per_thread = txns;
  run.warmup_txns_per_thread = 50;
  return RunExperiment(cc.get(), &wl, run);
}

class HarnessTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HarnessTest, StatsAreSane) {
  const RunResult r = RunYcsb(GetParam(), 20000, 50, 2, 400);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GE(r.stats.commits, r.total_txns);  // retries commit eventually
  EXPECT_GT(r.Throughput(), 0.0);
  EXPECT_GT(r.stats.scan_txn_commits, 0u);
  EXPECT_GT(r.stats.scanned_records, 0u);
  EXPECT_GT(r.stats.read_write_ns, 0u);
  EXPECT_GT(r.stats.validation_ns, 0u);
  EXPECT_GT(r.stats.latency_all.count(), 0u);
  EXPECT_EQ(r.stats.latency_all.count(), r.stats.commits);
  EXPECT_EQ(r.stats.latency_scan.count(), r.stats.scan_txn_commits);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, HarnessTest,
                         ::testing::Values("rocc", "lrv", "gwv", "mvrcc"),
                         [](const auto& pinfo) { return pinfo.param; });

// The paper's central claim (Fig. 2, Fig. 7(c)): RV filters out unrelated
// transactions, so it examines far fewer overlapping transactions per scan
// than GWV under a low-skew hybrid workload.
TEST(PaperClaims, RoccExaminesFewerTxnsThanGwv) {
  const RunResult rv = RunYcsb("rocc", 50000, 100, 4, 500);
  const RunResult gwv = RunYcsb("gwv", 50000, 100, 4, 500);
  ASSERT_GT(gwv.stats.scan_txn_commits, 0u);
  ASSERT_GT(rv.stats.scan_txn_commits, 0u);
  EXPECT_LT(rv.ValidatedTxnsPerScan() * 2, gwv.ValidatedTxnsPerScan());
}

// LRV's validation cost (records re-read) is linear in the scan length
// (§IV); ROCC's is not.
TEST(PaperClaims, LrvValidationWorkScalesWithScanLength) {
  const RunResult short_scan = RunYcsb("lrv", 50000, 20, 2, 300);
  const RunResult long_scan = RunYcsb("lrv", 50000, 400, 2, 300);
  // Records validated per committed scan txn: ~5 reads + scan_len re-reads.
  auto per_scan = [](const RunResult& r) {
    return r.stats.scan_txn_commits == 0
               ? 0.0
               : static_cast<double>(r.stats.validated_records) /
                     static_cast<double>(r.stats.commits);
  };
  EXPECT_GT(per_scan(long_scan), per_scan(short_scan) * 3);
}

// ROCC registration overhead exists but is bounded (§V-H): on a scan-free
// workload, turning registration off only removes ring traffic.
TEST(PaperClaims, RegistrationToggleOnlyAffectsRegistrations) {
  Database db1, db2;
  YcsbOptions opts;
  opts.num_rows = 20000;
  opts.scan_txn_fraction = 0.0;
  opts.read_fraction = 0.5;

  YcsbWorkload wl1(opts), wl2(opts);
  wl1.Load(&db1);
  wl2.Load(&db2);
  auto on = CreateProtocol("rocc", &db1, wl1, 2, 0, 4096, true);
  auto off = CreateProtocol("rocc", &db2, wl2, 2, 0, 4096, false);
  RunOptions run;
  run.num_threads = 2;
  run.txns_per_thread = 300;
  run.warmup_txns_per_thread = 20;
  const RunResult r_on = RunExperiment(on.get(), &wl1, run);
  const RunResult r_off = RunExperiment(off.get(), &wl2, run);
  EXPECT_GT(r_on.stats.registrations, 0u);
  EXPECT_EQ(r_off.stats.registrations, 0u);
  EXPECT_EQ(r_on.stats.commits, r_on.total_txns + 0u);
  EXPECT_EQ(r_off.stats.commits, r_off.total_txns + 0u);
}

// MVRCC aborts scans more often than ROCC at short scan lengths because of
// imprecise boundary ranges (§VI, Fig. 13(b)).
TEST(PaperClaims, MvrccAbortsMoreThanRocc) {
  const RunResult rv = RunYcsb("rocc", 50000, 100, 4, 500);
  const RunResult mv = RunYcsb("mvrcc", 50000, 100, 4, 500);
  EXPECT_GE(mv.stats.ScanAbortRate(), rv.stats.ScanAbortRate());
}

TEST(ReportTableTest, TextAndCsvRendering) {
  ReportTable table({"scheme", "tps", "abort"});
  table.AddRow({"ROCC", ReportTable::Fmt(12345.678, 1), ReportTable::Fmt(0.05, 3)});
  table.AddRow({"GWV", "9999.9", "0.100"});
  const std::string text = table.ToText();
  EXPECT_NE(text.find("scheme"), std::string::npos);
  EXPECT_NE(text.find("12345.7"), std::string::npos);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("scheme,tps,abort"), std::string::npos);
  EXPECT_NE(csv.find("ROCC,12345.7,0.050"), std::string::npos);
}

TEST(RunnerTest, ThreadCountScalesIssuedTxns) {
  const RunResult r1 = RunYcsb("rocc", 10000, 20, 1, 200);
  const RunResult r4 = RunYcsb("rocc", 10000, 20, 4, 200);
  EXPECT_EQ(r1.total_txns, 200u);
  EXPECT_EQ(r4.total_txns, 800u);
  EXPECT_GE(r4.stats.commits, 800u);
}

}  // namespace
}  // namespace rocc
