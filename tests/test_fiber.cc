// Tests for the many-core interleaving simulator: FiberScheduler context
// switching, FiberBarrier, the CoopYieldCc decorator, and fiber-mode
// experiment runs (including serializability under fiber interleaving).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/fiber.h"
#include "harness/coop_cc.h"
#include "harness/runner.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

// --------------------------------------------------------------------------
// FiberScheduler
// --------------------------------------------------------------------------

TEST(Fiber, RunsAllFibersToCompletion) {
  FiberScheduler sched;
  std::vector<int> done;
  for (int i = 0; i < 5; i++) {
    sched.Spawn([&done, i] { done.push_back(i); });
  }
  sched.Run();
  EXPECT_EQ(done, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Fiber, YieldInterleavesRoundRobin) {
  FiberScheduler sched;
  std::vector<int> trace;
  for (int i = 0; i < 3; i++) {
    sched.Spawn([&trace, i] {
      for (int round = 0; round < 3; round++) {
        trace.push_back(i);
        FiberScheduler::YieldFiber();
      }
    });
  }
  sched.Run();
  // Perfect round-robin: 0 1 2 repeated three times.
  ASSERT_EQ(trace.size(), 9u);
  for (size_t pos = 0; pos < trace.size(); pos++) {
    EXPECT_EQ(trace[pos], static_cast<int>(pos % 3));
  }
}

TEST(Fiber, InFiberReflectsContext) {
  EXPECT_FALSE(FiberScheduler::InFiber());
  FiberScheduler sched;
  bool inside = false;
  sched.Spawn([&] { inside = FiberScheduler::InFiber(); });
  sched.Run();
  EXPECT_TRUE(inside);
  EXPECT_FALSE(FiberScheduler::InFiber());
}

TEST(Fiber, CurrentFiberIdentifiesRunner) {
  FiberScheduler sched;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 4; i++) {
    sched.Spawn([&] { ids.push_back(FiberScheduler::CurrentFiber()); });
  }
  sched.Run();
  EXPECT_EQ(ids, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(Fiber, UnevenFiberLengths) {
  FiberScheduler sched;
  int total = 0;
  for (int i = 0; i < 4; i++) {
    sched.Spawn([&total, i] {
      for (int n = 0; n < (i + 1) * 10; n++) {
        total++;
        FiberScheduler::YieldFiber();
      }
    });
  }
  sched.Run();
  EXPECT_EQ(total, 10 + 20 + 30 + 40);
}

TEST(Fiber, DeepStackUsage) {
  // Fibers must survive deep call stacks with aligned SSE spills (the bug
  // class that motivated the 16-byte initial-frame alignment).
  FiberScheduler sched;
  double result = 0;
  sched.Spawn([&] {
    // A recursive lambda forcing real stack frames and FP math.
    struct Rec {
      static double Go(int depth, double x) {
        if (depth == 0) return x;
        volatile double local[8] = {x, x + 1, x + 2, x + 3, x + 4, x + 5, x + 6, x + 7};
        FiberScheduler::YieldFiber();
        return Go(depth - 1, local[static_cast<int>(x) % 8] * 1.0000001);
      }
    };
    result = Rec::Go(200, 1.0);
  });
  // A second fiber interleaves with the recursion at every level.
  sched.Spawn([] {
    for (int i = 0; i < 100; i++) FiberScheduler::YieldFiber();
  });
  sched.Run();
  EXPECT_GT(result, 1.0);
}

TEST(Fiber, CooperativeYieldOutsideFiberIsSafe) {
  CooperativeYield();  // plain thread: must not crash
  SUCCEED();
}

// --------------------------------------------------------------------------
// FiberBarrier
// --------------------------------------------------------------------------

TEST(Fiber, BarrierReleasesTogether) {
  FiberScheduler sched;
  FiberBarrier barrier(3);
  std::vector<int> trace;
  for (int i = 0; i < 3; i++) {
    sched.Spawn([&, i] {
      trace.push_back(i);       // before the barrier
      barrier.Wait();
      trace.push_back(10 + i);  // after the barrier
    });
  }
  sched.Run();
  // All "before" entries precede all "after" entries.
  ASSERT_EQ(trace.size(), 6u);
  for (int pos = 0; pos < 3; pos++) EXPECT_LT(trace[pos], 10);
  for (int pos = 3; pos < 6; pos++) EXPECT_GE(trace[pos], 10);
  EXPECT_GT(barrier.completion_nanos(), 0u);
}

TEST(Fiber, BarrierLastArriverFlagged) {
  FiberScheduler sched;
  FiberBarrier barrier(2);
  int last_count = 0;
  for (int i = 0; i < 2; i++) {
    sched.Spawn([&] {
      if (barrier.Wait()) last_count++;
    });
  }
  sched.Run();
  EXPECT_EQ(last_count, 1);
}

// --------------------------------------------------------------------------
// CoopYieldCc decorator
// --------------------------------------------------------------------------

TEST(CoopYield, DelegatesAndPreservesSemantics) {
  Database db;
  const uint32_t table = db.CreateTable("t", Schema({{"v", 8, 0}}));
  for (uint64_t k = 0; k < 100; k++) db.LoadRow(table, k, &k);

  RoccOptions opts;
  RangeConfig rc;
  rc.table_id = table;
  rc.key_max = 100;
  rc.num_ranges = 4;
  opts.tables = {rc};
  auto inner = std::make_unique<Rocc>(&db, 2, std::move(opts));
  Rocc* raw = inner.get();
  CoopYieldCc coop(std::move(inner));

  EXPECT_STREQ(coop.Name(), "ROCC");
  EXPECT_EQ(coop.inner(), raw);

  TxnDescriptor* t = coop.Begin(0);
  uint64_t v = 0;
  ASSERT_TRUE(coop.Read(t, table, 5, &v).ok());
  EXPECT_EQ(v, 5u);
  v = 999;
  ASSERT_TRUE(coop.Update(t, table, 5, &v, sizeof(v), 0).ok());
  ASSERT_TRUE(coop.Commit(t).ok());

  TxnDescriptor* r = coop.Begin(0);
  ASSERT_TRUE(coop.Read(r, table, 5, &v).ok());
  EXPECT_EQ(v, 999u);
  coop.Abort(r);
}

TEST(CoopYield, ScanYieldsInsideFiber) {
  Database db;
  const uint32_t table = db.CreateTable("t", Schema({{"v", 8, 0}}));
  for (uint64_t k = 0; k < 500; k++) db.LoadRow(table, k, &k);
  RoccOptions opts;
  RangeConfig rc;
  rc.table_id = table;
  rc.key_max = 500;
  rc.num_ranges = 4;
  opts.tables = {rc};
  CoopYieldCc coop(std::make_unique<Rocc>(&db, 2, std::move(opts)),
                   /*ops_per_yield=*/1, /*records_per_yield=*/10);

  // Two fibers: one scans 300 records (yielding every 10), the other counts
  // how many slices it gets while the scan is in flight.
  FiberScheduler sched;
  int other_slices = 0;
  bool scan_done = false;
  sched.Spawn([&] {
    TxnDescriptor* t = coop.Begin(0);
    class Count : public ScanConsumer {
     public:
      bool OnRecord(uint64_t, const char*) override { return true; }
    } consumer;
    ASSERT_TRUE(coop.Scan(t, table, 0, 0, 300, &consumer).ok());
    ASSERT_TRUE(coop.Commit(t).ok());
    scan_done = true;
  });
  sched.Spawn([&] {
    while (!scan_done) {
      other_slices++;
      FiberScheduler::YieldFiber();
    }
  });
  sched.Run();
  // 300 records / 10 per yield = ~30 interleaving opportunities.
  EXPECT_GE(other_slices, 25);
}

// --------------------------------------------------------------------------
// Fiber-mode experiments
// --------------------------------------------------------------------------

class FiberModeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FiberModeTest, ExperimentProducesSaneStats) {
  Database db;
  YcsbOptions opts;
  opts.num_rows = 20'000;
  opts.scan_length = 50;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol(GetParam(), &db, wl, 8);
  RunOptions run;
  run.num_threads = 8;
  run.txns_per_thread = 150;
  run.warmup_txns_per_thread = 20;
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &wl, run);
  EXPECT_GE(r.stats.commits, r.total_txns);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.stats.scan_txn_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(OccFamily, FiberModeTest,
                         ::testing::Values("rocc", "lrv", "gwv", "mvrcc"),
                         [](const auto& pinfo) { return pinfo.param; });

// Serializability under fiber interleaving: the full-range sum invariant
// must hold for every committed scan even though transfers interleave at
// operation granularity.
TEST(FiberModeTest2, RangeSumInvariantUnderFiberInterleaving) {
  Database db;
  const uint32_t table = db.CreateTable("accounts", Schema({{"v", 8, 0}}));
  constexpr uint64_t kAccounts = 256;
  constexpr uint64_t kInitial = 1000;
  for (uint64_t k = 0; k < kAccounts; k++) db.LoadRow(table, k, &kInitial);

  RoccOptions opts;
  RangeConfig rc;
  rc.table_id = table;
  rc.key_max = kAccounts;
  rc.num_ranges = 8;
  opts.tables = {rc};
  Rocc inner(&db, 8, std::move(opts));
  CoopYieldCc coop(&inner, 1, 8);

  class SumConsumer : public ScanConsumer {
   public:
    uint64_t sum = 0;
    bool OnRecord(uint64_t, const char* payload) override {
      uint64_t v;
      std::memcpy(&v, payload, sizeof(v));
      sum += v;
      return true;
    }
  };

  FiberScheduler sched;
  int committed_scans = 0;
  bool violation = false;
  for (uint32_t tid = 0; tid < 8; tid++) {
    sched.Spawn([&, tid] {
      Rng rng(tid + 7);
      for (int i = 0; i < 200; i++) {
        if (tid == 0) {
          TxnDescriptor* t = coop.Begin(tid);
          SumConsumer sum;
          if (!coop.Scan(t, table, 0, kAccounts, 0, &sum).ok()) {
            coop.Abort(t);
            continue;
          }
          if (coop.Commit(t).ok()) {
            committed_scans++;
            if (sum.sum != kAccounts * kInitial) violation = true;
          }
        } else {
          const uint64_t a = rng.Uniform(kAccounts);
          uint64_t b = rng.Uniform(kAccounts - 1);
          if (b >= a) b++;
          TxnDescriptor* t = coop.Begin(tid);
          uint64_t va = 0, vb = 0;
          Status st = coop.Read(t, table, a, &va);
          if (st.ok()) st = coop.Read(t, table, b, &vb);
          if (st.ok() && va >= 5) {
            va -= 5;
            vb += 5;
            st = coop.Update(t, table, a, &va, sizeof(va), 0);
            if (st.ok()) st = coop.Update(t, table, b, &vb, sizeof(vb), 0);
          }
          if (!st.ok()) {
            coop.Abort(t);
            continue;
          }
          coop.Commit(t);
        }
      }
    });
  }
  sched.Run();
  EXPECT_FALSE(violation);
  EXPECT_GT(committed_scans, 0);
}

}  // namespace
}  // namespace rocc
