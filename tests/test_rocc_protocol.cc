// White-box tests of the ROCC implementation details: predicate construction
// (§III-B, Fig. 3), once-per-range registration, the cover fast path, ring
// wraparound handling, and the Fig. 12 registration ablation switch.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/rocc.h"
#include "harness/stats.h"

namespace rocc {
namespace {

class RoccWhiteBox : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 500;
  static constexpr uint32_t kPayload = 8;
  static constexpr uint32_t kNumRanges = 10;  // 50 keys per range

  void SetUp() override { Init(256); }

  void Init(uint32_t ring_capacity, bool register_writes = true) {
    db_ = std::make_unique<Database>();
    table_ = db_->CreateTable("t", Schema({{"v", kPayload, 0}}));
    for (uint64_t k = 0; k < kRows; k++) {
      db_->LoadRow(table_, k, &k);
    }
    RoccOptions opts;
    RangeConfig rc;
    rc.table_id = table_;
    rc.key_min = 0;
    rc.key_max = kRows;
    rc.num_ranges = kNumRanges;
    rc.ring_capacity = ring_capacity;
    opts.tables = {rc};
    opts.register_writes = register_writes;
    cc_ = std::make_unique<Rocc>(db_.get(), 4, std::move(opts));
    cc_->AttachThread(0, &stats0_);
    cc_->AttachThread(1, &stats1_);
    stats0_.Reset();
    stats1_.Reset();
  }

  Status Write(TxnDescriptor* t, uint64_t key, uint64_t value) {
    return cc_->Update(t, table_, key, &value, sizeof(value), 0);
  }

  std::unique_ptr<Database> db_;
  uint32_t table_ = 0;
  std::unique_ptr<Rocc> cc_;
  TxnStats stats0_, stats1_;
};

TEST_F(RoccWhiteBox, PredicatePerTouchedRange) {
  TxnDescriptor* t = cc_->Begin(0);
  // Scan 120..279: touches ranges 2 [100,150), 3, 4, 5 [250,300).
  ASSERT_TRUE(cc_->Scan(t, table_, 120, 280, 0, nullptr).ok());
  ASSERT_EQ(t->predicates.size(), 4u);

  const RangePredicate& first = t->predicates[0];
  EXPECT_EQ(first.range_id, 2u);
  EXPECT_EQ(first.start_key, 120u);
  EXPECT_EQ(first.end_key, 150u);
  EXPECT_FALSE(first.cover);  // starts mid-range

  EXPECT_EQ(t->predicates[1].range_id, 3u);
  EXPECT_TRUE(t->predicates[1].cover);  // [150,200) fully covered
  EXPECT_EQ(t->predicates[2].range_id, 4u);
  EXPECT_TRUE(t->predicates[2].cover);

  const RangePredicate& last = t->predicates[3];
  EXPECT_EQ(last.range_id, 5u);
  EXPECT_EQ(last.start_key, 250u);
  EXPECT_EQ(last.end_key, 280u);
  EXPECT_FALSE(last.cover);  // ends mid-range
  cc_->Abort(t);
}

TEST_F(RoccWhiteBox, PredicateRdTsSnapshotsRangeVersion) {
  // Bump range 2's version with a committed write, then scan it.
  TxnDescriptor* w = cc_->Begin(1);
  ASSERT_TRUE(Write(w, 110, 1).ok());
  ASSERT_TRUE(cc_->Commit(w).ok());

  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 150, 0, nullptr).ok());
  ASSERT_EQ(t->predicates.size(), 1u);
  EXPECT_EQ(t->predicates[0].rd_ts,
            cc_->range_manager(table_)->ring(2).Version());
  EXPECT_EQ(t->predicates[0].rd_ts, 1u);
  cc_->Abort(t);
}

TEST_F(RoccWhiteBox, LimitedScanEndsAtLastKeyPlusOne) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 20, nullptr).ok());
  ASSERT_EQ(t->predicates.size(), 1u);
  EXPECT_EQ(t->predicates[0].start_key, 100u);
  EXPECT_EQ(t->predicates[0].end_key, 120u);  // last key 119 + 1
  EXPECT_FALSE(t->predicates[0].cover);
  cc_->Abort(t);
}

TEST_F(RoccWhiteBox, RegistrationOncePerRange) {
  TxnDescriptor* t = cc_->Begin(0);
  // Three writes into range 0, two into range 1.
  ASSERT_TRUE(Write(t, 10, 1).ok());
  ASSERT_TRUE(Write(t, 20, 1).ok());
  ASSERT_TRUE(Write(t, 30, 1).ok());
  ASSERT_TRUE(Write(t, 60, 1).ok());
  ASSERT_TRUE(Write(t, 70, 1).ok());
  ASSERT_TRUE(cc_->Commit(t).ok());

  EXPECT_EQ(stats0_.registrations, 2u);
  EXPECT_EQ(cc_->range_manager(table_)->ring(0).Version(), 1u);
  EXPECT_EQ(cc_->range_manager(table_)->ring(1).Version(), 1u);
  EXPECT_EQ(cc_->range_manager(table_)->ring(2).Version(), 0u);
}

TEST_F(RoccWhiteBox, RegistrationDisabledByOption) {
  Init(256, /*register_writes=*/false);
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(Write(t, 10, 1).ok());
  ASSERT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(stats0_.registrations, 0u);
  EXPECT_EQ(cc_->range_manager(table_)->ring(0).Version(), 0u);
}

TEST_F(RoccWhiteBox, CoverFastPathSkipsTxnExamination) {
  // Unrelated write in another range; fully-covered scan of range 3 must not
  // examine any transaction (validated_txns stays 0 for worker 0).
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 150, 200, 0, nullptr).ok());

  TxnDescriptor* w = cc_->Begin(1);
  ASSERT_TRUE(Write(w, 10, 1).ok());  // range 0
  ASSERT_TRUE(cc_->Commit(w).ok());

  ASSERT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(stats0_.validated_txns, 0u);
}

TEST_F(RoccWhiteBox, PartialPredicateExaminesOnlySameRangeWriters) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 20, nullptr).ok());  // range 2 partial

  // Writer in range 2 but outside [100,120): examined but not conflicting.
  TxnDescriptor* w1 = cc_->Begin(1);
  ASSERT_TRUE(Write(w1, 140, 1).ok());
  ASSERT_TRUE(cc_->Commit(w1).ok());
  // Writer in range 7: never examined.
  TxnDescriptor* w2 = cc_->Begin(1);
  ASSERT_TRUE(Write(w2, 370, 1).ok());
  ASSERT_TRUE(cc_->Commit(w2).ok());

  ASSERT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(stats0_.validated_txns, 1u);  // only w1
}

TEST_F(RoccWhiteBox, RingWraparoundAbortsConservatively) {
  Init(/*ring_capacity=*/4);
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 150, 200, 0, nullptr).ok());

  // Six writers into the scanned range overflow the 4-slot ring. All their
  // keys are outside any plausible precise check only if we scanned less,
  // but the wrap itself must already force an abort.
  for (int i = 0; i < 6; i++) {
    TxnDescriptor* w = cc_->Begin(1);
    ASSERT_TRUE(Write(w, 150 + i, 1).ok());
    ASSERT_TRUE(cc_->Commit(w).ok());
  }
  EXPECT_TRUE(cc_->Commit(t).aborted());
}

TEST_F(RoccWhiteBox, AbortedWriterDoesNotAbortScanner) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 20, nullptr).ok());

  // A writer into the scanned scope registers but then aborts (forced by a
  // read-validation failure): construct it via a stale read.
  TxnDescriptor* w = cc_->Begin(1);
  char buf[kPayload];
  ASSERT_TRUE(cc_->Read(w, table_, 300, buf).ok());
  ASSERT_TRUE(Write(w, 105, 1).ok());
  // Invalidate w's read with another committed write.
  TxnDescriptor* w2 = cc_->Begin(2);
  ASSERT_TRUE(Write(w2, 300, 2).ok());
  ASSERT_TRUE(cc_->Commit(w2).ok());
  ASSERT_TRUE(cc_->Commit(w).aborted());  // registered in range 2, then died

  // The scanner examines w but skips it as aborted.
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_F(RoccWhiteBox, ValidatedTxnCounterCountsWindow) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 20, nullptr).ok());
  for (int i = 0; i < 3; i++) {
    TxnDescriptor* w = cc_->Begin(1);
    ASSERT_TRUE(Write(w, 130 + i, 1).ok());  // range 2, outside scope
    ASSERT_TRUE(cc_->Commit(w).ok());
  }
  ASSERT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(stats0_.validated_txns, 3u);
}

TEST_F(RoccWhiteBox, WritesToDifferentTablesUseDefaultRange) {
  // A second table without explicit config gets one all-covering range.
  const uint32_t t2 = db_->CreateTable("t2", Schema({{"v", 8, 0}}));
  uint64_t v = 1;
  db_->LoadRow(t2, 1, &v);
  // Rebuild the protocol so it sees the new table.
  RoccOptions opts;
  RangeConfig rc;
  rc.table_id = table_;
  rc.key_min = 0;
  rc.key_max = kRows;
  rc.num_ranges = kNumRanges;
  rc.ring_capacity = 64;
  opts.tables = {rc};
  auto cc = std::make_unique<Rocc>(db_.get(), 2, std::move(opts));

  TxnDescriptor* txn = cc->Begin(0);
  uint64_t nv = 5;
  ASSERT_TRUE(cc->Update(txn, t2, 1, &nv, sizeof(nv), 0).ok());
  ASSERT_TRUE(cc->Commit(txn).ok());
  EXPECT_EQ(cc->range_manager(t2)->num_ranges(), 1u);
  EXPECT_EQ(cc->range_manager(t2)->ring(0).Version(), 1u);
}

TEST_F(RoccWhiteBox, ScanWithNoWritersCommitsWithZeroValidationWork) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Scan(t, table_, 0, 0, 200, nullptr).ok());
  ASSERT_TRUE(cc_->Commit(t).ok());
  EXPECT_EQ(stats0_.validated_txns, 0u);
  EXPECT_EQ(stats0_.validated_records, 0u);  // predicates, no readset entries
}

}  // namespace
}  // namespace rocc
