// Unit tests for src/common: Status, Rng, Zipfian, Histogram, Config, Arena,
// latches and timers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/config.h"
#include "common/histogram.h"
#include "common/latch.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/sysinfo.h"
#include "common/timer.h"
#include "common/zipfian.h"

namespace rocc {
namespace {

// --------------------------------------------------------------------------
// Status
// --------------------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(s.aborted());
  EXPECT_EQ(s.code(), Code::kOk);
}

TEST(Status, AbortedCarriesMessage) {
  Status s = Status::Aborted("conflict on key 7");
  EXPECT_TRUE(s.aborted());
  EXPECT_EQ(s.message(), "conflict on key 7");
  EXPECT_NE(s.ToString().find("conflict"), std::string::npos);
}

TEST(Status, FactoryCodes) {
  EXPECT_TRUE(Status::NotFound().not_found());
  EXPECT_EQ(Status::KeyExists().code(), Code::kKeyExists);
  EXPECT_EQ(Status::InvalidArgument("x").code(), Code::kInvalidArgument);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), Code::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), Code::kInternal);
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::Aborted("inner"); };
  auto outer = [&]() -> Status {
    ROCC_RETURN_NOT_OK(inner());
    return Status::Ok();
  };
  EXPECT_TRUE(outer().aborted());
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 100000; i++) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);  // mean of U[0,1)
}

TEST(Rng, UniformRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; i++) buckets[rng.Uniform(10)]++;
  for (int b : buckets) EXPECT_NEAR(b, kDraws / 10, kDraws / 100);
}

// --------------------------------------------------------------------------
// Zipfian
// --------------------------------------------------------------------------

TEST(Zipfian, UniformWhenThetaZero) {
  ZipfianGenerator gen(1000, 0.0);
  Rng rng(3);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; i++) buckets[gen.Next(rng) / 100]++;
  for (int b : buckets) EXPECT_NEAR(b, 10000, 1000);
}

TEST(Zipfian, DrawsWithinRange) {
  for (double theta : {0.0, 0.7, 0.88, 1.04}) {
    ZipfianGenerator gen(5000, theta);
    Rng rng(17);
    for (int i = 0; i < 20000; i++) ASSERT_LT(gen.Next(rng), 5000u) << theta;
  }
}

// The head probability of a Zipfian distribution grows with theta — the
// property the paper's skew levels (0.7 / 0.88 / 1.04) rely on.
TEST(Zipfian, SkewOrderingAcrossThetas) {
  const uint64_t n = 100000;
  auto head_mass = [&](double theta) {
    ZipfianGenerator gen(n, theta);
    Rng rng(23);
    int head = 0;
    const int draws = 200000;
    for (int i = 0; i < draws; i++) head += (gen.Next(rng) < n / 100);
    return static_cast<double>(head) / draws;
  };
  const double low = head_mass(0.7);
  const double mid = head_mass(0.88);
  const double high = head_mass(1.04);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
  EXPECT_GT(high, 0.5);  // theta > 1: most mass on the top 1%
}

TEST(Zipfian, MostPopularKeyIsZeroUnscrambled) {
  ZipfianGenerator gen(10000, 0.99);
  Rng rng(29);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; i++) counts[gen.Next(rng)]++;
  uint64_t best = 0;
  int best_count = -1;
  for (auto& [k, c] : counts) {
    if (c > best_count) {
      best_count = c;
      best = k;
    }
  }
  EXPECT_EQ(best, 0u);
}

TEST(Zipfian, ScrambleSpreadsHotKeys) {
  ZipfianGenerator gen(10000, 0.99, /*scramble=*/true);
  Rng rng(31);
  int low_half = 0;
  for (int i = 0; i < 20000; i++) low_half += (gen.Next(rng) < 5000);
  // Unscrambled would put nearly all mass below 5000; scrambled is ~50/50.
  EXPECT_NEAR(low_half, 10000, 1500);
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

TEST(Histogram, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
}

TEST(Histogram, PercentilesBracketTruth) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; v++) h.Record(v);
  // Log buckets have ~19% relative error per bucket.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 5000, 1300);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 9900, 2500);
  EXPECT_LE(h.Percentile(100), h.max());
  EXPECT_GE(h.Percentile(0), h.min());
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Histogram a, b, c;
  Rng rng(37);
  for (int i = 0; i < 5000; i++) {
    const uint64_t v = rng.Uniform(1 << 20) + 1;
    (i % 2 == 0 ? a : b).Record(v);
    c.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), c.count());
  EXPECT_EQ(a.sum(), c.sum());
  EXPECT_EQ(a.min(), c.min());
  EXPECT_EQ(a.max(), c.max());
  EXPECT_EQ(a.Percentile(50), c.Percentile(50));
  EXPECT_EQ(a.Percentile(99), c.Percentile(99));
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.min(), 0u);
}

// --------------------------------------------------------------------------
// Config
// --------------------------------------------------------------------------

TEST(Config, ParsesFlagStyles) {
  const char* argv[] = {"prog", "--threads", "8", "--theta=0.88", "--quick",
                        "--name", "rocc"};
  Config cfg(7, const_cast<char**>(argv));
  EXPECT_EQ(cfg.GetInt("threads", 0), 8);
  EXPECT_DOUBLE_EQ(cfg.GetDouble("theta", 0), 0.88);
  EXPECT_TRUE(cfg.GetBool("quick", false));
  EXPECT_EQ(cfg.GetString("name", ""), "rocc");
  EXPECT_EQ(cfg.GetInt("missing", 42), 42);
  EXPECT_FALSE(cfg.Has("missing"));
}

TEST(Config, ParsesLists) {
  const char* argv[] = {"prog", "--threads", "1,2,4,8", "--thetas=0,0.7"};
  Config cfg(4, const_cast<char**>(argv));
  EXPECT_EQ(cfg.GetIntList("threads", {}), (std::vector<int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(cfg.GetDoubleList("thetas", {}), (std::vector<double>{0, 0.7}));
  EXPECT_EQ(cfg.GetIntList("absent", {3}), (std::vector<int64_t>{3}));
}

TEST(Config, SetOverrides) {
  Config cfg;
  cfg.Set("x", "5");
  EXPECT_EQ(cfg.GetInt("x", 0), 5);
}

// --------------------------------------------------------------------------
// Arena
// --------------------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(128);
  std::vector<char*> ptrs;
  for (int i = 0; i < 1000; i++) {
    char* p = static_cast<char*>(arena.Allocate(24, 8));
    ASSERT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    std::memset(p, i & 0xff, 24);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 1000; i++) {
    for (int j = 0; j < 24; j++) ASSERT_EQ(ptrs[i][j], static_cast<char>(i & 0xff));
  }
  EXPECT_GE(arena.allocated_bytes(), 24000u);
}

TEST(Arena, LargeAllocationSpansBlocks) {
  Arena arena(64);
  void* p = arena.Allocate(1 << 16, 64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 1 << 16);
}

TEST(Arena, ConcurrentAllocationsDoNotOverlap) {
  Arena arena(4096);
  constexpr int kThreads = 4;
  constexpr int kAllocs = 2000;
  std::vector<std::vector<char*>> all(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAllocs; i++) {
        char* p = static_cast<char*>(arena.AllocateConcurrent(16, 8));
        std::memset(p, t, 16);
        all[t].push_back(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; t++) {
    for (char* p : all[t]) {
      for (int j = 0; j < 16; j++) ASSERT_EQ(p[j], static_cast<char>(t));
    }
  }
}

// --------------------------------------------------------------------------
// Latches, barrier, timers, sysinfo
// --------------------------------------------------------------------------

TEST(SpinLatch, MutualExclusion) {
  SpinLatch latch;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; i++) {
        SpinLatchGuard g(latch);
        counter++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLatch, TryLockFailsWhenHeld) {
  SpinLatch latch;
  ASSERT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[3] = {{0}, {0}, {0}};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int p = 0; p < 3; p++) {
        phase_counts[p].fetch_add(1);
        barrier.Wait();
        // After the barrier every thread must have bumped this phase.
        EXPECT_EQ(phase_counts[p].load(), kThreads);
        barrier.Wait();
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(Timer, ScopedTimerAccumulates) {
  uint64_t sink = 0;
  {
    ScopedTimer t(&sink);
    volatile int x = 0;
    for (int i = 0; i < 10000; i++) x = x + i;
  }
  EXPECT_GT(sink, 0u);
  const uint64_t first = sink;
  {
    ScopedTimer t(&sink);
    volatile int x = 0;
    for (int i = 0; i < 10000; i++) x = x + i;
  }
  EXPECT_GT(sink, first);
}

TEST(Timer, StopwatchMonotone) {
  Stopwatch w;
  const uint64_t a = w.ElapsedNanos();
  const uint64_t b = w.ElapsedNanos();
  EXPECT_LE(a, b);
}

TEST(SysInfo, ProbesSomething) {
  const SysInfo info = SysInfo::Probe();
  EXPECT_GE(info.logical_cores, 1u);
  EXPECT_GT(info.total_memory_bytes, 0u);
  EXPECT_FALSE(info.ToString().empty());
}

}  // namespace
}  // namespace rocc
