// Tests for the lock-free circular transaction list (TxnRing), the
// RangeManager partitioning, and the EpochManager reclamation rules.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/range_manager.h"
#include "core/txn_ring.h"
#include "sync/optiql.h"
#include "txn/epoch.h"

namespace rocc {
namespace {

// --------------------------------------------------------------------------
// TxnRing
// --------------------------------------------------------------------------

TEST(TxnRing, VersionStartsAtZero) {
  TxnRing ring(16);
  EXPECT_EQ(ring.Version(), 0u);
  EXPECT_EQ(ring.capacity(), 16u);
}

TEST(TxnRing, RegisterIncrementsVersionByOne) {
  TxnRing ring(16);
  TxnDescriptor t;
  for (uint64_t i = 1; i <= 10; i++) {
    EXPECT_EQ(ring.Register(&t), i);
    EXPECT_EQ(ring.Version(), i);
  }
}

TEST(TxnRing, GetReturnsRegistrant) {
  TxnRing ring(16);
  TxnDescriptor a, b, c;
  ring.Register(&a);
  ring.Register(&b);
  ring.Register(&c);
  EXPECT_EQ(ring.Get(1), &a);
  EXPECT_EQ(ring.Get(2), &b);
  EXPECT_EQ(ring.Get(3), &c);
}

TEST(TxnRing, WrapOverwritesOldSlots) {
  TxnRing ring(4);
  std::vector<TxnDescriptor> descs(10);
  for (int i = 0; i < 10; i++) ring.Register(&descs[i]);
  // Sequences 7..10 live in the 4 slots; older ones are gone.
  for (uint64_t seq = 1; seq <= 6; seq++) EXPECT_EQ(ring.Get(seq), nullptr) << seq;
  for (uint64_t seq = 7; seq <= 10; seq++) {
    EXPECT_EQ(ring.Get(seq), &descs[seq - 1]) << seq;
  }
}

TEST(TxnRing, GetOfUnissuedSequenceIsNull) {
  TxnRing ring(8);
  TxnDescriptor t;
  ring.Register(&t);
  EXPECT_EQ(ring.Get(5), nullptr);
}

TEST(TxnRing, CapacityOneDegenerates) {
  TxnRing ring(1);
  TxnDescriptor a, b;
  EXPECT_EQ(ring.Register(&a), 1u);
  EXPECT_EQ(ring.Get(1), &a);
  EXPECT_EQ(ring.Register(&b), 2u);
  EXPECT_EQ(ring.Get(1), nullptr);
  EXPECT_EQ(ring.Get(2), &b);
}

TEST(TxnRingConcurrency, AllSequencesUniqueUnderContention) {
  TxnRing ring(1 << 16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<uint64_t>> seqs(kThreads);
  std::vector<TxnDescriptor> descs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) seqs[t].push_back(ring.Register(&descs[t]));
    });
  }
  for (auto& th : threads) th.join();

  std::vector<uint64_t> all;
  for (auto& v : seqs) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); i++) ASSERT_EQ(all[i], i + 1);
  EXPECT_EQ(ring.Version(), static_cast<uint64_t>(kThreads) * kPerThread);

  // Every surviving slot resolves to the thread that registered it.
  const uint64_t version = ring.Version();
  const uint64_t lo = version > ring.capacity() ? version - ring.capacity() + 1 : 1;
  for (uint64_t seq = lo; seq <= version; seq++) {
    TxnDescriptor* d = ring.Get(seq);
    ASSERT_NE(d, nullptr);
    const int owner = static_cast<int>(d - descs.data());
    // Per-thread sequences are monotonically increasing, so binary search.
    ASSERT_TRUE(std::binary_search(seqs[owner].begin(), seqs[owner].end(), seq));
  }
}

TEST(TxnRingConcurrency, ReadersGetTrueRegistrantOrNull) {
  // A small ring that wraps constantly: concurrent Gets must return either
  // nullptr or the exact descriptor registered at that sequence — never a
  // different registrant. One writer keeps an exact seq -> descriptor map.
  TxnRing ring(8);
  constexpr uint64_t kTotal = 300000;
  std::vector<TxnDescriptor> descs(64);
  std::vector<std::atomic<TxnDescriptor*>> by_seq(kTotal + 1);
  for (auto& p : by_seq) p.store(nullptr, std::memory_order_relaxed);
  std::atomic<uint64_t> published{0};
  std::atomic<bool> wrong{false};

  std::thread writer([&] {
    for (uint64_t i = 0; i < kTotal; i++) {
      TxnDescriptor* d = &descs[i % descs.size()];
      const uint64_t seq = ring.Register(d);
      by_seq[seq].store(d, std::memory_order_release);
      published.store(seq, std::memory_order_release);
    }
  });
  std::thread reader([&] {
    Rng rng(55);
    while (published.load(std::memory_order_acquire) < kTotal) {
      const uint64_t hi = published.load(std::memory_order_acquire);
      if (hi == 0) continue;
      const uint64_t seq = hi - rng.Uniform(std::min<uint64_t>(hi, 16));
      TxnDescriptor* got = ring.Get(seq);
      if (got == nullptr) continue;
      TxnDescriptor* expect = by_seq[seq].load(std::memory_order_acquire);
      // by_seq publication may lag Register slightly; only flag a mismatch
      // when the truth is known.
      if (expect != nullptr && got != expect) {
        wrong.store(true);
        break;
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(wrong.load());
}

TEST(TxnRing, TagCheckAcrossManyWrapGenerations) {
  // Sequence tags disambiguate slot aliases: seq and seq + k*capacity land in
  // the same slot, so Get must reject every generation but the live one. Walk
  // eight full wraps and verify the visible window is exactly the last
  // `capacity` registrations after every single Register.
  constexpr uint32_t kCap = 8;
  TxnRing ring(kCap);
  std::vector<TxnDescriptor> descs(kCap * 8);
  for (uint64_t i = 0; i < descs.size(); i++) {
    ring.Register(&descs[i]);
    const uint64_t version = ring.Version();
    ASSERT_EQ(version, i + 1);
    const uint64_t lo = version > kCap ? version - kCap + 1 : 1;
    for (uint64_t seq = 1; seq <= version; seq++) {
      if (seq >= lo) {
        ASSERT_EQ(ring.Get(seq), &descs[seq - 1]) << "live seq " << seq;
      } else {
        ASSERT_EQ(ring.Get(seq), nullptr)
            << "stale generation leaked through slot alias, seq " << seq;
      }
    }
  }
}

TEST(TxnRingConcurrency, WrapPressureNeverServesWrongRegistrant) {
  // Registration pressure on a tiny ring: every slot is overwritten thousands
  // of times while readers probe the whole issued window. A Get may say
  // nullptr (overwritten or mid-publish) but must never resolve a sequence
  // to a different transaction's descriptor — that would let a validator
  // read the wrong writeset. Writers keep per-thread seq logs; every reader
  // observation is checked against the exact ownership map afterwards.
  TxnRing ring(4);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50000;
  std::vector<TxnDescriptor> descs(kWriters);
  std::vector<std::vector<uint64_t>> seqs(kWriters);
  std::atomic<bool> stop{false};
  std::atomic<bool> garbage{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      seqs[w].reserve(kPerWriter);
      for (uint64_t i = 0; i < kPerWriter; i++) {
        seqs[w].push_back(ring.Register(&descs[w]));
      }
    });
  }
  std::vector<std::pair<uint64_t, TxnDescriptor*>> observed;
  std::thread reader([&] {
    Rng rng(7);
    observed.reserve(1 << 20);
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t hi = ring.Version();
      if (hi == 0) continue;
      // Probe live, recently-overwritten, and long-dead sequences alike.
      const uint64_t seq = 1 + rng.Uniform(hi);
      TxnDescriptor* got = ring.Get(seq);
      if (got == nullptr) continue;
      if (got < descs.data() || got >= descs.data() + kWriters) {
        garbage.store(true);  // torn pointer: not any registrant at all
        break;
      }
      if (observed.size() < (1u << 20)) observed.emplace_back(seq, got);
    }
  });
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  ASSERT_FALSE(garbage.load());

  std::vector<int> owner(kWriters * kPerWriter + 1, -1);
  for (int w = 0; w < kWriters; w++) {
    for (const uint64_t seq : seqs[w]) {
      ASSERT_EQ(owner[seq], -1) << "duplicate sequence " << seq;
      owner[seq] = w;
    }
  }
  for (const auto& [seq, got] : observed) {
    ASSERT_EQ(got, &descs[owner[seq]])
        << "seq " << seq << " resolved to another writer's descriptor";
  }
}

// --------------------------------------------------------------------------
// Seeded base (adaptive resize replacement rings)
// --------------------------------------------------------------------------

TEST(TxnRingBase, SeededRingContinuesSequence) {
  TxnRing ring(8, /*base=*/100);
  EXPECT_EQ(ring.Version(), 100u);
  EXPECT_EQ(ring.base(), 100u);
  TxnDescriptor t;
  EXPECT_EQ(ring.Register(&t), 101u);
  EXPECT_EQ(ring.Version(), 101u);
  EXPECT_EQ(ring.Get(101), &t);
}

TEST(TxnRingBase, PredecessorSequencesAreUnknown) {
  TxnRing ring(8, /*base=*/100);
  TxnDescriptor t;
  ring.Register(&t);  // seq 101, slot 101 % 8 = 5
  // Every sequence at or below base belongs to the retired predecessor ring;
  // in particular seq 5 aliases slot 5 and must NOT resolve to seq 101's
  // registrant.
  EXPECT_EQ(ring.Get(100), nullptr);
  EXPECT_EQ(ring.Get(5), nullptr);
  EXPECT_EQ(ring.Get(1), nullptr);
}

TEST(TxnRingBase, WrapWindowOnSeededRing) {
  // Tag checks must hold on a seeded ring exactly as on a fresh one: after
  // wrapping, the visible window is the last `capacity` sequences and
  // nothing below base ever leaks through a slot alias.
  constexpr uint32_t kCap = 4;
  constexpr uint64_t kBase = 37;  // deliberately not slot-aligned
  TxnRing ring(kCap, kBase);
  std::vector<TxnDescriptor> descs(3 * kCap);
  for (uint64_t i = 0; i < descs.size(); i++) {
    ASSERT_EQ(ring.Register(&descs[i]), kBase + i + 1);
    const uint64_t version = ring.Version();
    const uint64_t lo = version - kBase > kCap ? version - kCap + 1 : kBase + 1;
    for (uint64_t seq = 1; seq <= version; seq++) {
      if (seq >= lo) {
        ASSERT_EQ(ring.Get(seq), &descs[seq - kBase - 1]) << "live seq " << seq;
      } else {
        ASSERT_EQ(ring.Get(seq), nullptr) << "stale/predecessor seq " << seq;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Combining registration
// --------------------------------------------------------------------------

TEST(TxnRingCombining, SingleThreadMatchesDirectSemantics) {
  sync::SetLockImpl(sync::LockImpl::kOptiql);
  TxnRing ring(16);
  ring.SetCombining(true);
  EXPECT_TRUE(ring.combining());
  TxnDescriptor a, b;
  // An uncontended combining registrant is its own combiner of a batch of
  // one: same sequence/versioning contract as the direct path.
  EXPECT_EQ(ring.Register(&a), 1u);
  EXPECT_EQ(ring.Register(&b), 2u);
  EXPECT_EQ(ring.Get(1), &a);
  EXPECT_EQ(ring.Get(2), &b);
  EXPECT_EQ(ring.Version(), 2u);
  sync::SetLockImpl(sync::LockImpl::kCas);
}

TEST(TxnRingCombiningConcurrency, SequencesUniqueAndResolvable) {
  sync::SetLockImpl(sync::LockImpl::kOptiql);
  TxnRing ring(1 << 16);
  ring.SetCombining(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<uint64_t>> seqs(kThreads);
  std::vector<TxnDescriptor> descs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        seqs[t].push_back(ring.Register(&descs[t]));
      }
    });
  }
  for (auto& th : threads) th.join();

  // One registration = one version bump, batched or not: the issued
  // sequences are exactly 1..N with no duplicate and no hole.
  std::vector<uint64_t> all;
  for (auto& v : seqs) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); i++) ASSERT_EQ(all[i], i + 1);
  EXPECT_EQ(ring.Version(), static_cast<uint64_t>(kThreads) * kPerThread);

  // Per-thread program order survives batching: a waiter's assigned
  // sequence is always greater than its previous registration's.
  for (int t = 0; t < kThreads; t++) {
    for (size_t i = 1; i < seqs[t].size(); i++) {
      ASSERT_GT(seqs[t][i], seqs[t][i - 1]);
    }
  }

  // Every surviving slot resolves to the registering descriptor.
  const uint64_t version = ring.Version();
  const uint64_t lo = version > ring.capacity() ? version - ring.capacity() + 1 : 1;
  for (uint64_t seq = lo; seq <= version; seq++) {
    TxnDescriptor* d = ring.Get(seq);
    ASSERT_NE(d, nullptr);
    const int owner = static_cast<int>(d - descs.data());
    ASSERT_TRUE(std::binary_search(seqs[owner].begin(), seqs[owner].end(), seq));
  }
  sync::SetLockImpl(sync::LockImpl::kCas);
}

TEST(TxnRingCombiningConcurrency, DirectAndCombiningInteroperate) {
  // The tuner may arm/disarm combining at any time; both paths share the
  // slot-claim protocol, so uniqueness and resolvability must hold while
  // registrants race the switch itself.
  sync::SetLockImpl(sync::LockImpl::kOptiql);
  TxnRing ring(1 << 14);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 4000;
  std::vector<std::vector<uint64_t>> seqs(kThreads);
  std::vector<TxnDescriptor> descs(kThreads);
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool on = false;
    while (!stop.load(std::memory_order_acquire)) {
      ring.SetCombining(on = !on);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        seqs[t].push_back(ring.Register(&descs[t]));
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  toggler.join();

  std::vector<uint64_t> all;
  for (auto& v : seqs) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); i++) ASSERT_EQ(all[i], i + 1);
  EXPECT_EQ(ring.Version(), static_cast<uint64_t>(kThreads) * kPerThread);
  sync::SetLockImpl(sync::LockImpl::kCas);
}

// --------------------------------------------------------------------------
// RangeManager
// --------------------------------------------------------------------------

TEST(RangeManager, EqualPartitioning) {
  RangeManager rm(0, 1000, 10, 16);
  EXPECT_EQ(rm.num_ranges(), 10u);
  EXPECT_EQ(rm.range_size(), 100u);
  for (uint32_t r = 0; r < 10; r++) {
    EXPECT_EQ(rm.RangeStart(r), r * 100u);
    EXPECT_EQ(rm.RangeEnd(r), (r + 1) * 100u);
  }
}

TEST(RangeManager, RangeOfBoundaries) {
  RangeManager rm(0, 1000, 10, 16);
  EXPECT_EQ(rm.RangeOf(0), 0u);
  EXPECT_EQ(rm.RangeOf(99), 0u);
  EXPECT_EQ(rm.RangeOf(100), 1u);
  EXPECT_EQ(rm.RangeOf(999), 9u);
  // Out-of-space keys clamp instead of overflowing.
  EXPECT_EQ(rm.RangeOf(5000), 9u);
}

TEST(RangeManager, NonZeroKeyMin) {
  RangeManager rm(500, 1500, 4, 16);
  EXPECT_EQ(rm.RangeOf(500), 0u);
  EXPECT_EQ(rm.RangeOf(749), 0u);
  EXPECT_EQ(rm.RangeOf(750), 1u);
  EXPECT_EQ(rm.RangeOf(1499), 3u);
  EXPECT_EQ(rm.RangeOf(100), 0u);  // below key_min clamps to range 0
}

TEST(RangeManager, UnevenSpanLastRangeAbsorbsRemainder) {
  RangeManager rm(0, 1003, 10, 16);
  EXPECT_EQ(rm.range_size(), 101u);  // ceil(1003/10)
  EXPECT_EQ(rm.RangeEnd(9), 1003u);
  EXPECT_EQ(rm.RangeOf(1002), 9u);
  // Every key maps into [RangeStart, RangeEnd) of its range.
  for (uint64_t k = 0; k < 1003; k++) {
    const uint32_t r = rm.RangeOf(k);
    ASSERT_GE(k, rm.RangeStart(r));
    ASSERT_LT(k, rm.RangeEnd(r));
  }
}

TEST(RangeManager, SingleRangeCoversEverything) {
  RangeManager rm(0, 1ULL << 40, 1, 4);
  EXPECT_EQ(rm.RangeOf(0), 0u);
  EXPECT_EQ(rm.RangeOf((1ULL << 40) - 1), 0u);
  EXPECT_EQ(rm.RangeEnd(0), 1ULL << 40);
}

TEST(RangeManager, RingsAreIndependent) {
  RangeManager rm(0, 100, 4, 8);
  TxnDescriptor t;
  rm.ring(2).Register(&t);
  EXPECT_EQ(rm.ring(0).Version(), 0u);
  EXPECT_EQ(rm.ring(1).Version(), 0u);
  EXPECT_EQ(rm.ring(2).Version(), 1u);
  EXPECT_EQ(rm.ring(3).Version(), 0u);
}

// --------------------------------------------------------------------------
// RangeManager::Resize — old-ring / new-ring transition
// --------------------------------------------------------------------------

TEST(RangeManagerResize, SeqContinuityAcrossReplacement) {
  RangeManager rm(0, 1000, 4, 8);
  TxnDescriptor a, b;
  std::shared_ptr<TxnRing> old_ring = rm.Snapshot()->ranges[1]->ring;
  for (int i = 0; i < 5; i++) rm.ring(1).Register(&a);
  ASSERT_TRUE(rm.Resize(1, 32, /*publish_epoch=*/1));

  LogicalRange* lr = rm.Snapshot()->range(1);
  ASSERT_NE(lr->ring.get(), old_ring.get());
  EXPECT_EQ(lr->ring->capacity(), 32u);
  // The replacement is seeded at the retired ring's version: the range
  // version is continuous across the swap and sequence spaces never overlap.
  EXPECT_EQ(lr->ring->base(), 5u);
  EXPECT_EQ(lr->ring->Version(), 5u);
  EXPECT_EQ(lr->ring->Register(&b), 6u);
  EXPECT_EQ(lr->ring->Get(6), &b);
  // Sequences issued by the predecessor resolve there (it is fenced via
  // prev_rings for in-flight predicates), never in the replacement.
  ASSERT_EQ(lr->prev_rings.size(), 1u);
  EXPECT_EQ(lr->prev_rings[0].get(), old_ring.get());
  EXPECT_EQ(old_ring->Get(5), &a);
  EXPECT_EQ(lr->ring->Get(5), nullptr);
  // Counters carried; per-range resize count bumped.
  EXPECT_EQ(lr->stats.ring_resizes.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(rm.resizes(), 1u);
  // Layout untouched: same boundaries, same number of ranges.
  EXPECT_EQ(rm.num_ranges(), 4u);
  EXPECT_EQ(lr->start_key, 250u);
  EXPECT_EQ(lr->end_key, 500u);
}

TEST(RangeManagerResize, RetiredTableReclaimedAfterGrace) {
  RangeManager rm(0, 1000, 2, 8);
  TxnDescriptor a;
  std::shared_ptr<TxnRing> old_ring = rm.Snapshot()->ranges[0]->ring;
  rm.ring(0).Register(&a);
  ASSERT_TRUE(rm.Resize(0, 16, /*publish_epoch=*/3));
  EXPECT_EQ(rm.retired_tables(), 1u);
  rm.ReclaimRetired(/*min_active=*/3);  // grace not elapsed
  EXPECT_EQ(rm.retired_tables(), 1u);
  rm.ReclaimRetired(/*min_active=*/4);
  EXPECT_EQ(rm.retired_tables(), 0u);
  // The old ring survives reclamation of the table: the replacement range
  // still fences it through prev_rings (plus our local reference).
  EXPECT_EQ(old_ring->Get(1), &a);
}

TEST(RangeManagerResize, RejectsNoopAndBadArguments) {
  RangeManager rm(0, 1000, 2, 8);
  EXPECT_FALSE(rm.Resize(0, 8, 1));   // same capacity: nothing to do
  EXPECT_FALSE(rm.Resize(0, 0, 1));   // zero-capacity ring is invalid
  EXPECT_FALSE(rm.Resize(7, 16, 1));  // no such range
  EXPECT_EQ(rm.resizes(), 0u);
  EXPECT_EQ(rm.retired_tables(), 0u);
}

TEST(RangeManagerResize, ShrinkKeepsContinuityToo) {
  RangeManager rm(0, 1000, 2, 32);
  TxnDescriptor a, b;
  for (int i = 0; i < 10; i++) rm.ring(0).Register(&a);
  ASSERT_TRUE(rm.Resize(0, 8, /*publish_epoch=*/1));
  LogicalRange* lr = rm.Snapshot()->range(0);
  EXPECT_EQ(lr->ring->capacity(), 8u);
  EXPECT_EQ(lr->ring->base(), 10u);
  EXPECT_EQ(lr->ring->Register(&b), 11u);
  EXPECT_EQ(lr->ring->Get(11), &b);
}

TEST(RangeManagerResize, SecondResizeAfterGraceCollapsesFence) {
  // Resize the same range twice: each replacement fences only its immediate
  // predecessor (one generation, like Split), so the grandparent ring is
  // released once the second swap publishes.
  RangeManager rm(0, 1000, 2, 8);
  TxnDescriptor a;
  std::shared_ptr<TxnRing> gen0 = rm.Snapshot()->ranges[0]->ring;
  rm.ring(0).Register(&a);
  ASSERT_TRUE(rm.Resize(0, 16, /*publish_epoch=*/1));
  std::shared_ptr<TxnRing> gen1 = rm.Snapshot()->ranges[0]->ring;
  ASSERT_TRUE(rm.Resize(0, 32, /*publish_epoch=*/2));
  LogicalRange* lr = rm.Snapshot()->range(0);
  ASSERT_EQ(lr->prev_rings.size(), 1u);
  EXPECT_EQ(lr->prev_rings[0].get(), gen1.get());
  EXPECT_EQ(lr->ring->base(), 1u);
  EXPECT_EQ(lr->stats.ring_resizes.load(std::memory_order_relaxed), 2u);
  EXPECT_EQ(rm.resizes(), 2u);
  EXPECT_EQ(gen0->Get(1), &a);  // still alive through our local reference
}

// --------------------------------------------------------------------------
// EpochManager
// --------------------------------------------------------------------------

TEST(Epoch, AdvancesWhenAllIdle) {
  EpochManager em(2);
  const uint64_t e0 = em.Current();
  em.Enter(0);
  em.Exit(0);  // triggers TryAdvance
  EXPECT_GE(em.Current(), e0);
  em.TryAdvance();
  EXPECT_GT(em.Current(), e0);
}

TEST(Epoch, StragglerBlocksAdvance) {
  EpochManager em(2);
  em.Enter(0);  // thread 0 pinned at the current epoch
  const uint64_t pinned = em.Current();
  for (int i = 0; i < 5; i++) {
    em.Enter(1);
    em.Exit(1);
  }
  // The global epoch may advance once (thread 0's local equals it at the
  // moment of the first TryAdvance) but then stalls: the straggler's local
  // stays below the new global. MinActive is pinned either way — that is
  // what reclamation keys off.
  EXPECT_LE(em.Current(), pinned + 1);
  EXPECT_EQ(em.MinActive(), pinned);
  em.Exit(0);
  em.TryAdvance();
  EXPECT_GT(em.Current(), pinned);
}

TEST(Epoch, MinActiveIsCurrentWhenAllIdle) {
  EpochManager em(3);
  EXPECT_EQ(em.MinActive(), em.Current());
}

TEST(Epoch, RetireListReclaimsOnlyPastGrace) {
  RetireList<int> list;
  int a = 1, b = 2, c = 3;
  list.Retire(&a, 5);
  list.Retire(&b, 6);
  list.Retire(&c, 7);
  std::vector<int*> freed;
  list.Reclaim(6, [&](int* p) { freed.push_back(p); });
  ASSERT_EQ(freed.size(), 1u);  // only epoch 5 < 6
  EXPECT_EQ(freed[0], &a);
  list.Reclaim(8, [&](int* p) { freed.push_back(p); });
  EXPECT_EQ(freed.size(), 3u);
  EXPECT_EQ(list.size(), 0u);
}

TEST(Epoch, ConcurrentEnterExitMakesProgress) {
  EpochManager em(4);
  const uint64_t start = em.Current();
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20000; i++) {
        em.Enter(t);
        em.Exit(t);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(em.Current(), start);
  EXPECT_EQ(em.MinActive(), em.Current());
}

}  // namespace
}  // namespace rocc
