// B+Tree unit and concurrency tests: point ops, range scans, structural
// invariants, and latch-free readers racing writers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/btree.h"
#include "storage/row.h"

namespace rocc {
namespace {

// Rows for index tests: the index never dereferences payloads, so fake
// pointers carrying the key are sufficient and fast.
Row* FakeRow(uint64_t key) { return reinterpret_cast<Row*>((key << 3) | 1); }
uint64_t FakeKey(const Row* row) { return reinterpret_cast<uintptr_t>(row) >> 3; }

TEST(BTree, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.Get(1), nullptr);
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_TRUE(tree.Remove(1).not_found());
  int visits = 0;
  tree.ScanFrom(0, [&](uint64_t, Row*) {
    visits++;
    return true;
  });
  EXPECT_EQ(visits, 0);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTree, InsertGetSingle) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(42, FakeRow(42)).ok());
  EXPECT_EQ(tree.Get(42), FakeRow(42));
  EXPECT_EQ(tree.Get(41), nullptr);
  EXPECT_EQ(tree.Get(43), nullptr);
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(BTree, DuplicateInsertRejected) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(7, FakeRow(7)).ok());
  EXPECT_EQ(tree.Insert(7, FakeRow(8)).code(), Code::kKeyExists);
  EXPECT_EQ(tree.Get(7), FakeRow(7));
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(BTree, SequentialInsertTriggersSplits) {
  BTree tree;
  const uint64_t n = 10000;
  for (uint64_t k = 0; k < n; k++) ASSERT_TRUE(tree.Insert(k, FakeRow(k)).ok());
  EXPECT_EQ(tree.Size(), n);
  EXPECT_GT(tree.Height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t k = 0; k < n; k++) ASSERT_EQ(tree.Get(k), FakeRow(k)) << k;
}

TEST(BTree, ReverseInsert) {
  BTree tree;
  for (uint64_t k = 5000; k-- > 0;) ASSERT_TRUE(tree.Insert(k, FakeRow(k)).ok());
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t k = 0; k < 5000; k++) ASSERT_EQ(tree.Get(k), FakeRow(k));
}

TEST(BTree, RandomInsertLookup) {
  BTree tree;
  Rng rng(1);
  std::set<uint64_t> keys;
  while (keys.size() < 20000) {
    const uint64_t k = rng.Next() >> 16;
    if (keys.insert(k).second) {
      ASSERT_TRUE(tree.Insert(k, FakeRow(k)).ok());
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.Size(), keys.size());
  for (uint64_t k : keys) ASSERT_EQ(tree.Get(k), FakeRow(k));
  // Absent keys return null.
  for (int i = 0; i < 1000; i++) {
    const uint64_t k = rng.Next() >> 16;
    if (keys.count(k) == 0) {
      ASSERT_EQ(tree.Get(k), nullptr);
    }
  }
}

TEST(BTree, ScanFromDeliversSortedSuffix) {
  BTree tree;
  for (uint64_t k = 0; k < 1000; k++) tree.Insert(k * 3, FakeRow(k * 3));
  std::vector<uint64_t> seen;
  tree.ScanFrom(1500, [&](uint64_t key, Row* row) {
    EXPECT_EQ(FakeKey(row), key);
    seen.push_back(key);
    return true;
  });
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), 1500u);  // 1500 = 500*3 exists
  EXPECT_EQ(seen.back(), 999u * 3);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 500u);
}

TEST(BTree, ScanRangeBounds) {
  BTree tree;
  for (uint64_t k = 0; k < 1000; k++) tree.Insert(k, FakeRow(k));
  std::vector<uint64_t> seen;
  tree.ScanRange(100, 200, [&](uint64_t key, Row*) {
    seen.push_back(key);
    return true;
  });
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 199u);
}

TEST(BTree, ScanRangeEmptyAndDegenerate) {
  BTree tree;
  for (uint64_t k = 0; k < 100; k++) tree.Insert(k, FakeRow(k));
  int visits = 0;
  auto count = [&](uint64_t, Row*) {
    visits++;
    return true;
  };
  tree.ScanRange(50, 50, count);  // empty interval
  EXPECT_EQ(visits, 0);
  tree.ScanRange(60, 50, count);  // inverted interval
  EXPECT_EQ(visits, 0);
  tree.ScanRange(1000, 2000, count);  // beyond all keys
  EXPECT_EQ(visits, 0);
}

TEST(BTree, ScanEarlyStop) {
  BTree tree;
  for (uint64_t k = 0; k < 1000; k++) tree.Insert(k, FakeRow(k));
  int visits = 0;
  tree.ScanFrom(0, [&](uint64_t, Row*) { return ++visits < 10; });
  EXPECT_EQ(visits, 10);
}

TEST(BTree, ScanAcrossSparseKeys) {
  BTree tree;
  // Clustered keys with big gaps, mimicking TPC-C's composite encodings.
  for (uint64_t hi = 0; hi < 20; hi++) {
    for (uint64_t lo = 0; lo < 30; lo++) tree.Insert((hi << 24) | lo, FakeRow(lo));
  }
  std::vector<uint64_t> seen;
  tree.ScanRange(5ull << 24, 6ull << 24, [&](uint64_t key, Row*) {
    seen.push_back(key);
    return true;
  });
  EXPECT_EQ(seen.size(), 30u);
  for (uint64_t k : seen) EXPECT_EQ(k >> 24, 5u);
}

TEST(BTree, RemoveBasics) {
  BTree tree;
  for (uint64_t k = 0; k < 1000; k++) tree.Insert(k, FakeRow(k));
  for (uint64_t k = 0; k < 1000; k += 2) ASSERT_TRUE(tree.Remove(k).ok());
  EXPECT_EQ(tree.Size(), 500u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t k = 0; k < 1000; k++) {
    if (k % 2 == 0) {
      ASSERT_EQ(tree.Get(k), nullptr);
    } else {
      ASSERT_EQ(tree.Get(k), FakeRow(k));
    }
  }
  EXPECT_TRUE(tree.Remove(0).not_found());
}

TEST(BTree, RemoveAllThenReinsert) {
  BTree tree;
  for (uint64_t k = 0; k < 2000; k++) tree.Insert(k, FakeRow(k));
  for (uint64_t k = 0; k < 2000; k++) ASSERT_TRUE(tree.Remove(k).ok());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t k = 0; k < 2000; k++) ASSERT_TRUE(tree.Insert(k, FakeRow(k)).ok());
  EXPECT_EQ(tree.Size(), 2000u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTree, MixedOpsAgainstReferenceSet) {
  BTree tree;
  std::set<uint64_t> ref;
  Rng rng(99);
  for (int i = 0; i < 50000; i++) {
    const uint64_t k = rng.Uniform(5000);
    switch (rng.Uniform(3)) {
      case 0: {
        const bool inserted = ref.insert(k).second;
        EXPECT_EQ(tree.Insert(k, FakeRow(k)).ok(), inserted);
        break;
      }
      case 1: {
        const bool erased = ref.erase(k) > 0;
        EXPECT_EQ(tree.Remove(k).ok(), erased);
        break;
      }
      default:
        EXPECT_EQ(tree.Get(k) != nullptr, ref.count(k) > 0);
    }
  }
  EXPECT_EQ(tree.Size(), ref.size());
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<uint64_t> scanned;
  tree.ScanFrom(0, [&](uint64_t key, Row*) {
    scanned.push_back(key);
    return true;
  });
  EXPECT_TRUE(std::equal(scanned.begin(), scanned.end(), ref.begin(), ref.end()));
}

// --------------------------------------------------------------------------
// Concurrency
// --------------------------------------------------------------------------

TEST(BTreeConcurrency, ParallelDisjointInserts) {
  BTree tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        const uint64_t k = i * kThreads + t;  // interleaved: adjacent keys race
        ASSERT_TRUE(tree.Insert(k, FakeRow(k)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.Size(), kThreads * kPerThread);
  EXPECT_TRUE(tree.CheckInvariants());
  for (uint64_t k = 0; k < kThreads * kPerThread; k++) {
    ASSERT_EQ(tree.Get(k), FakeRow(k)) << k;
  }
}

TEST(BTreeConcurrency, RacingInsertsOnSameKeysOneWinnerEach) {
  BTree tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kKeys = 5000;
  std::atomic<uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (uint64_t k = 0; k < kKeys; k++) {
        if (tree.Insert(k, FakeRow(k)).ok()) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(tree.Size(), kKeys);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeConcurrency, ReadersNeverSeeTornStateDuringInserts) {
  BTree tree;
  for (uint64_t k = 0; k < 1000; k += 2) tree.Insert(k, FakeRow(k));
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (uint64_t k = 1; k < 100000; k += 2) tree.Insert(k, FakeRow(k));
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&] {
      Rng rng(r + 1);
      while (!stop.load()) {
        // Point gets: a present even key must always be found with its value.
        const uint64_t k = rng.Uniform(500) * 2;
        Row* row = tree.Get(k);
        if (row != FakeRow(k)) failed.store(true);
        // Scans must deliver sorted keys with matching values.
        uint64_t prev = 0;
        bool first = true;
        tree.ScanRange(k, k + 50, [&](uint64_t key, Row* vrow) {
          if (!first && key <= prev) failed.store(true);
          if (FakeKey(vrow) != key && (key % 2) == 0) failed.store(true);
          prev = key;
          first = false;
          return true;
        });
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeConcurrency, MixedInsertRemoveKeepsInvariants) {
  BTree tree;
  for (uint64_t k = 0; k < 10000; k++) tree.Insert(k, FakeRow(k));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      Rng rng(t + 100);
      for (int i = 0; i < 20000; i++) {
        const uint64_t k = rng.Uniform(20000);
        if (rng.Uniform(2) == 0) {
          tree.Insert(k, FakeRow(k));
        } else {
          tree.Remove(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace rocc
