// Key-range scan semantics and range/phantom validation, parameterized over
// the OCC-family protocols. These tests pin the behavioural differences the
// paper builds on: LRV re-scans, GWV checks global writesets against
// predicates, ROCC validates at logical-range granularity with precise
// boundaries, and MVRCC deliberately loses boundary precision.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cc/hyper_gwv.h"
#include "cc/mvrcc.h"
#include "cc/silo_lrv.h"
#include "core/rocc.h"

namespace rocc {
namespace {

/// Collects scanned keys and the first 8 payload bytes of each record.
class KeysConsumer : public ScanConsumer {
 public:
  bool OnRecord(uint64_t key, const char* payload) override {
    keys.push_back(key);
    uint64_t v = 0;
    std::memcpy(&v, payload, sizeof(v));
    values.push_back(v);
    return true;
  }
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
};

class ScanTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr uint64_t kRows = 400;
  static constexpr uint32_t kPayload = 16;
  static constexpr uint32_t kNumRanges = 8;  // 50 keys per logical range

  void SetUp() override {
    Schema schema({{"v", kPayload, 0}});
    table_ = db_.CreateTable("t", std::move(schema));
    for (uint64_t k = 0; k < kRows; k++) {
      char payload[kPayload] = {};
      const uint64_t v = k;
      std::memcpy(payload, &v, sizeof(v));
      db_.LoadRow(table_, k, payload);
    }
    cc_ = MakeProtocol();
  }

  std::unique_ptr<ConcurrencyControl> MakeProtocol() {
    const std::string name = GetParam();
    if (name == "rocc" || name == "mvrcc") {
      RoccOptions opts;
      RangeConfig rc;
      rc.table_id = table_;
      rc.key_min = 0;
      rc.key_max = kRows;
      rc.num_ranges = kNumRanges;
      rc.ring_capacity = 256;
      opts.tables = {rc};
      if (name == "mvrcc") return std::make_unique<Mvrcc>(&db_, 4, std::move(opts));
      return std::make_unique<Rocc>(&db_, 4, std::move(opts));
    }
    if (name == "lrv") return std::make_unique<SiloLrv>(&db_, 4);
    return std::make_unique<HyperGwv>(&db_, 4);
  }

  Status Write(TxnDescriptor* t, uint64_t key, uint64_t value) {
    return cc_->Update(t, table_, key, &value, sizeof(value), 0);
  }

  Status InsertRow(TxnDescriptor* t, uint64_t key, uint64_t value) {
    char payload[kPayload] = {};
    std::memcpy(payload, &value, sizeof(value));
    return cc_->Insert(t, table_, key, payload);
  }

  /// Commit a single-update transaction on worker 1.
  void CommitWrite(uint64_t key, uint64_t value) {
    TxnDescriptor* t = cc_->Begin(1);
    ASSERT_TRUE(Write(t, key, value).ok());
    ASSERT_TRUE(cc_->Commit(t).ok());
  }

  void CommitInsert(uint64_t key, uint64_t value) {
    TxnDescriptor* t = cc_->Begin(1);
    ASSERT_TRUE(InsertRow(t, key, value).ok());
    ASSERT_TRUE(cc_->Commit(t).ok());
  }

  void CommitDelete(uint64_t key) {
    TxnDescriptor* t = cc_->Begin(1);
    ASSERT_TRUE(cc_->Remove(t, table_, key).ok());
    ASSERT_TRUE(cc_->Commit(t).ok());
  }

  Database db_;
  uint32_t table_ = 0;
  std::unique_ptr<ConcurrencyControl> cc_;
};

// --------------------------------------------------------------------------
// Plain scan semantics.
// --------------------------------------------------------------------------

TEST_P(ScanTest, LimitedScanReturnsExactWindow) {
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 25, &keys).ok());
  ASSERT_EQ(keys.keys.size(), 25u);
  for (uint64_t i = 0; i < 25; i++) {
    EXPECT_EQ(keys.keys[i], 100 + i);
    EXPECT_EQ(keys.values[i], 100 + i);
  }
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(ScanTest, BoundedScanStopsAtEndKey) {
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 10, 20, 0, &keys).ok());
  ASSERT_EQ(keys.keys.size(), 10u);
  EXPECT_EQ(keys.keys.front(), 10u);
  EXPECT_EQ(keys.keys.back(), 19u);
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(ScanTest, ScanCrossingRangeBoundaries) {
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  // 50-key ranges: [100,150), [150,200), [200,250); scan 120..220.
  ASSERT_TRUE(cc_->Scan(t, table_, 120, 220, 0, &keys).ok());
  EXPECT_EQ(keys.keys.size(), 100u);
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(ScanTest, ScanSeesOwnPendingWrites) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(Write(t, 105, 9999).ok());
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 10, &keys).ok());
  EXPECT_EQ(keys.values[5], 9999u);
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(ScanTest, ScanSkipsOwnPendingDelete) {
  TxnDescriptor* t = cc_->Begin(0);
  ASSERT_TRUE(cc_->Remove(t, table_, 103).ok());
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 110, 0, &keys).ok());
  EXPECT_EQ(keys.keys.size(), 9u);
  for (uint64_t k : keys.keys) EXPECT_NE(k, 103u);
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(ScanTest, BoundedScanPastKeySpaceTerminates) {
  // Regression: a bounded scan whose end exceeds the configured key space
  // must terminate (the last logical range absorbs the overflow tail) and
  // still validate correctly.
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, kRows - 10, kRows + 1000, 0, &keys).ok());
  EXPECT_EQ(keys.keys.size(), 10u);
  CommitWrite(kRows - 5, 1);  // conflicts with the scanned tail
  EXPECT_TRUE(cc_->Commit(t).aborted());
}

TEST_P(ScanTest, ScanPastTableEndDeliversTail) {
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, kRows - 5, 0, 50, &keys).ok());
  EXPECT_EQ(keys.keys.size(), 5u);
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(ScanTest, EarlyStopConsumer) {
  class StopAfter3 : public ScanConsumer {
   public:
    int n = 0;
    bool OnRecord(uint64_t, const char*) override { return ++n < 3; }
  };
  TxnDescriptor* t = cc_->Begin(0);
  StopAfter3 consumer;
  ASSERT_TRUE(cc_->Scan(t, table_, 0, 0, 100, &consumer).ok());
  EXPECT_EQ(consumer.n, 3);
  EXPECT_TRUE(cc_->Commit(t).ok());
}

// --------------------------------------------------------------------------
// Range validation: conflicting writers must abort the scanner.
// --------------------------------------------------------------------------

TEST_P(ScanTest, UpdateInsideScannedRangeAbortsScanner) {
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 30, &keys).ok());
  CommitWrite(110, 1);  // inside [100, 130)
  EXPECT_TRUE(cc_->Commit(t).aborted());
}

TEST_P(ScanTest, PhantomInsertInsideScannedRangeAbortsScanner) {
  // Delete 115 first so there is a hole to fill.
  CommitDelete(115);
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 130, 0, &keys).ok());
  ASSERT_EQ(keys.keys.size(), 29u);
  CommitInsert(115, 42);  // phantom appears inside the scanned range
  EXPECT_TRUE(cc_->Commit(t).aborted());
}

TEST_P(ScanTest, DeleteInsideScannedRangeAbortsScanner) {
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 130, 0, &keys).ok());
  CommitDelete(120);
  EXPECT_TRUE(cc_->Commit(t).aborted());
}

TEST_P(ScanTest, WriteInDifferentRangeDoesNotAbort) {
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 30, &keys).ok());
  CommitWrite(300, 1);  // logical range [300,350): unrelated
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(ScanTest, WriteInSameLogicalRangeOutsideScopePrecision) {
  // Scan covers [100, 130); key 140 is in the same logical range [100, 150)
  // but outside the scanned scope.
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 30, &keys).ok());
  CommitWrite(140, 1);
  const Status st = cc_->Commit(t);
  if (GetParam() == "mvrcc") {
    // MVRCC treats the boundary range as fully covered: false abort (§VI).
    EXPECT_TRUE(st.aborted());
  } else {
    // LRV re-scan, GWV predicate check, and ROCC's precise predicate all
    // recognise the write as non-conflicting.
    EXPECT_TRUE(st.ok()) << GetParam();
  }
}

TEST_P(ScanTest, InsertJustPastScanEndDoesNotAbort) {
  // Limited scan [100, +30): last returned key is 129; an insert at a fresh
  // key 130.5-equivalent cannot exist for integers, so delete/reinsert 131
  // after scanning through 129 only.
  CommitDelete(131);
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 30, &keys).ok());
  ASSERT_EQ(keys.keys.back(), 129u);
  CommitInsert(131, 1);  // beyond the returned window
  const Status st = cc_->Commit(t);
  if (GetParam() == "mvrcc") {
    EXPECT_TRUE(st.aborted());  // same boundary-range imprecision
  } else {
    EXPECT_TRUE(st.ok()) << GetParam();
  }
}

TEST_P(ScanTest, ScannerWritingIntoOwnScannedRangeCommits) {
  // The paper's bulk transactions update records inside the range they
  // scanned (e.g. the top shopper); self-registrations must not abort.
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 30, &keys).ok());
  ASSERT_TRUE(Write(t, 110, 7777).ok());
  EXPECT_TRUE(cc_->Commit(t).ok());
  // And the write took effect.
  TxnDescriptor* r = cc_->Begin(0);
  char buf[kPayload];
  ASSERT_TRUE(cc_->Read(r, table_, 110, buf).ok());
  uint64_t v = 0;
  std::memcpy(&v, buf, sizeof(v));
  EXPECT_EQ(v, 7777u);
  EXPECT_TRUE(cc_->Commit(r).ok());
}

TEST_P(ScanTest, FullyCoveredRangeConflictDetected) {
  // Scan a whole logical range [150, 200) (cover fast path in ROCC).
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 150, 200, 0, &keys).ok());
  ASSERT_EQ(keys.keys.size(), 50u);
  CommitWrite(199, 1);
  EXPECT_TRUE(cc_->Commit(t).aborted());
}

TEST_P(ScanTest, TwoScansIndependentValidation) {
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer k1, k2;
  ASSERT_TRUE(cc_->Scan(t, table_, 0, 0, 10, &k1).ok());
  ASSERT_TRUE(cc_->Scan(t, table_, 200, 0, 10, &k2).ok());
  CommitWrite(205, 1);  // conflicts with the second scan only — still aborts
  EXPECT_TRUE(cc_->Commit(t).aborted());
}

TEST_P(ScanTest, WriterBeforeScanStartIsVisibleNotConflicting) {
  CommitWrite(110, 4242);
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 30, &keys).ok());
  EXPECT_EQ(keys.values[10], 4242u);
  EXPECT_TRUE(cc_->Commit(t).ok());
}

TEST_P(ScanTest, RepeatedScanAfterConflictSucceeds) {
  // The retry of an aborted scan transaction sees the new state and commits.
  TxnDescriptor* t = cc_->Begin(0);
  KeysConsumer keys;
  ASSERT_TRUE(cc_->Scan(t, table_, 100, 0, 30, &keys).ok());
  CommitWrite(110, 1);
  ASSERT_TRUE(cc_->Commit(t).aborted());

  TxnDescriptor* t2 = cc_->Begin(0);
  KeysConsumer keys2;
  ASSERT_TRUE(cc_->Scan(t2, table_, 100, 0, 30, &keys2).ok());
  EXPECT_TRUE(cc_->Commit(t2).ok());
  EXPECT_EQ(keys2.values[10], 1u);
}

INSTANTIATE_TEST_SUITE_P(OccFamily, ScanTest,
                         ::testing::Values("rocc", "lrv", "gwv", "mvrcc"),
                         [](const auto& pinfo) { return pinfo.param; });

}  // namespace
}  // namespace rocc
