// Live-observability-plane tests (DESIGN.md §16): the HTTP admin server over
// a real loopback socket (golden /metrics, /vars, /healthz responses, hot
// knob updates via POST /config, bounded /trace capture), deterministic
// stall-watchdog detection with a synthetic clock, deterministic tail-latency
// SLO capture with sampling off, the async-signal-safe SIGUSR1 dump path
// racing live ring appends, and a TSan-targeted concurrent knob test.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/knobs.h"
#include "harness/runner.h"
#include "obs/chrome_trace.h"
#include "obs/http_server.h"
#include "obs/obs.h"
#include "obs/prometheus.h"
#include "obs/watchdog.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

// ------------------------------------------------------------ test helpers

/// Minimal blocking HTTP client: connect to 127.0.0.1:port, send `request`
/// verbatim, read until the server closes (Connection: close). Empty string
/// on connect failure.
std::string HttpRoundTrip(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string();
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::string();
  }
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& target) {
  return HttpRoundTrip(port, "GET " + target +
                                 " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string Post(uint16_t port, const std::string& target,
                 const std::string& body) {
  std::ostringstream req;
  req << "POST " << target << " HTTP/1.1\r\nHost: localhost\r\n"
      << "Content-Length: " << body.size() << "\r\n\r\n"
      << body;
  return HttpRoundTrip(port, req.str());
}

std::string BodyOf(const std::string& response) {
  const size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

/// Structural JSON check: balanced braces/brackets outside strings.
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); i++) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') i++;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') depth++;
    else if (ch == '}' || ch == ']') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// ------------------------------------------------------------- HTTP server

TEST(HttpServer, GoldenRoutesOverRealSocket) {
  obs::HttpServerOptions ho;  // port 0: kernel-assigned, read back below
  obs::HttpServer server(ho);
  TxnStats s;
  s.commits = 1234;
  s.aborts = 5;
  s.abort_scan_conflict = 5;
  server.SetMetricsProvider(
      [&s] { return obs::PrometheusSnapshot(s, "protocol=\"rocc\""); });
  server.SetVarsProvider([] { return std::string("{\"live_run\":false}\n"); });
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0);

  const std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");

  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("rocc_txn_commits_total{protocol=\"rocc\"} 1234"),
            std::string::npos);
  EXPECT_NE(metrics.find("reason=\"scan_conflict\"} 5"), std::string::npos);

  const std::string vars = Get(server.port(), "/vars");
  EXPECT_NE(vars.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(vars.find("Content-Type: application/json"), std::string::npos);
  EXPECT_EQ(BodyOf(vars), "{\"live_run\":false}\n");

  EXPECT_NE(Get(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_EQ(server.requests_served(), 4u);
  server.Stop();
}

TEST(HttpServer, RoutesWithoutProvidersAnswer503) {
  obs::HttpServerOptions ho;
  obs::HttpServer server(ho);  // no providers installed
  ASSERT_TRUE(server.Start());
  EXPECT_NE(Get(server.port(), "/metrics").find("HTTP/1.1 503"),
            std::string::npos);
  EXPECT_NE(Get(server.port(), "/vars").find("HTTP/1.1 503"),
            std::string::npos);
  server.Stop();
}

TEST(HttpServer, PostConfigFlipsKnobsAndRejectsTypos) {
  std::atomic<uint64_t>* cell =
      KnobRegistry::Instance().Register("test_http_knob", 7);
  obs::HttpServerOptions ho;
  obs::HttpServer server(ho);
  ASSERT_TRUE(server.Start());

  // GET /config lists the knob as JSON.
  const std::string listing = Get(server.port(), "/config");
  EXPECT_NE(listing.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(BodyOf(listing).find("\"test_http_knob\":7"), std::string::npos);

  // A valid update applies (comments and blank lines tolerated) and the
  // response echoes the new state.
  const std::string ok = Post(server.port(), "/config",
                              "# tighten for the test\n\ntest_http_knob=42\n");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(BodyOf(ok).find("applied 1 knob(s)"), std::string::npos);
  EXPECT_NE(BodyOf(ok).find("\"test_http_knob\":42"), std::string::npos);
  EXPECT_EQ(cell->load(std::memory_order_relaxed), 42u);

  // A typo'd name fails the whole request with 400 and names the offender —
  // it must NOT silently create a dead knob.
  const std::string bad =
      Post(server.port(), "/config", "test_http_knob_typo=1\n");
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(BodyOf(bad).find("unknown knob: test_http_knob_typo"),
            std::string::npos);
  EXPECT_EQ(KnobRegistry::Instance().Find("test_http_knob_typo"), nullptr);

  // Garbled values 400 too, without disturbing the knob.
  EXPECT_NE(Post(server.port(), "/config", "test_http_knob=banana\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_EQ(cell->load(std::memory_order_relaxed), 42u);
  server.Stop();
}

TEST(HttpServer, TraceCapturesBoundedWindow) {
  obs::HttpServerOptions ho;
  obs::HttpServer server(ho);
  ASSERT_TRUE(server.Start());

  // Without a recorder the route reports 503, not an empty document.
  ASSERT_FALSE(obs::Enabled());
  EXPECT_NE(Get(server.port(), "/trace?ms=1").find("HTTP/1.1 503"),
            std::string::npos);

  obs::ObsOptions oo;
  oo.sample_period = 1;
  oo.max_workers = 2;
  obs::FlightRecorder rec(oo);
  obs::FlightRecorder* prev = obs::SetRecorder(&rec);

  // /trace renders only events arriving AFTER the request: this pre-window
  // event must not appear.
  rec.EmitService(obs::EventType::kRangeSplit, 0, 10, 0, 999, 2);

  std::atomic<bool> stop{false};
  std::thread emitter([&rec, &stop] {
    uint64_t ts = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      rec.EmitService(obs::EventType::kWalFlush, 0, ts, 100, 4096, 3);
      ts += 1000;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const std::string response = Get(server.port(), "/trace?ms=60");
  stop.store(true, std::memory_order_relaxed);
  emitter.join();

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  const std::string json = BodyOf(response);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("wal_flush"), std::string::npos);
  EXPECT_EQ(json.find("range_split"), std::string::npos);
  ExpectBalancedJson(json);
  obs::SetRecorder(prev);
  server.Stop();
}

// ---------------------------------------------------------- stall watchdog

TEST(Watchdog, PollOnceAttributesStallsAndDeduplicatesPerDwell) {
  obs::ObsOptions oo;
  oo.max_workers = 4;
  obs::FlightRecorder rec(oo);
  obs::FlightRecorder* prev = obs::SetRecorder(&rec);
  obs::WatchdogOptions wo;
  wo.stall_threshold_ms = 1000;
  obs::StallWatchdog dog(wo);  // no Start(): tests drive PollOnce directly

  constexpr uint64_t kMs = 1000000ULL;
  // Worker 2 entered validate at t=5ms; worker 1 is fresh; worker 3 is idle.
  rec.SetHeartbeat(2, obs::Phase::kValidate, 5 * kMs);
  rec.SetHeartbeat(1, obs::Phase::kExecute, 2000 * kMs);

  // Below threshold: silent.
  EXPECT_EQ(dog.PollOnce(500 * kMs), 0u);
  EXPECT_EQ(dog.stalls_detected(), 0u);

  // Past threshold: exactly one report, attributed to worker 2 in validate
  // with the stall duration in millis. Worker 1's dwell is recent.
  EXPECT_EQ(dog.PollOnce(2005 * kMs), 1u);
  EXPECT_EQ(dog.stalls_detected(), 1u);
  std::vector<obs::TraceEvent> out;
  rec.service_ring().Snapshot(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, static_cast<uint8_t>(obs::EventType::kStall));
  EXPECT_EQ(out[0].detail, static_cast<uint8_t>(obs::Phase::kValidate));
  EXPECT_EQ(out[0].a, 2u);
  EXPECT_EQ(out[0].b, 2000u);
  EXPECT_EQ(out[0].tid, obs::FlightRecorder::kServiceTid);

  // Same dwell on later polls: edge-triggered, no repeat reports. (Worker 1
  // goes idle so its — by then genuinely stale — dwell stays out of frame.)
  rec.ClearHeartbeat(1);
  EXPECT_EQ(dog.PollOnce(3000 * kMs), 0u);
  EXPECT_EQ(dog.PollOnce(4000 * kMs), 0u);
  EXPECT_EQ(dog.stalls_detected(), 1u);

  // Going idle re-arms; a NEW dwell that stalls is reported again.
  rec.ClearHeartbeat(2);
  EXPECT_EQ(dog.PollOnce(5000 * kMs), 0u);
  rec.SetHeartbeat(2, obs::Phase::kLogWait, 5000 * kMs);
  EXPECT_EQ(dog.PollOnce(5100 * kMs), 0u);  // fresh dwell, below threshold
  EXPECT_EQ(dog.PollOnce(6500 * kMs), 1u);
  EXPECT_EQ(dog.stalls_detected(), 2u);

  // watchdog_stall_ms=0 disables detection entirely (hot-reloadable).
  ASSERT_TRUE(KnobRegistry::Instance().Set("watchdog_stall_ms", 0));
  rec.SetHeartbeat(1, obs::Phase::kExecute, 1 * kMs);
  EXPECT_EQ(dog.PollOnce(100000 * kMs), 0u);
  ASSERT_TRUE(KnobRegistry::Instance().Set("watchdog_stall_ms", 1000));
  obs::SetRecorder(prev);
}

TEST(Watchdog, CleanRunStaysSilent) {
  obs::ObsOptions oo;
  oo.sample_period = 1;
  oo.max_workers = 4;
  obs::FlightRecorder rec(oo);
  obs::FlightRecorder* prev = obs::SetRecorder(&rec);
  obs::WatchdogOptions wo;
  wo.period_ms = 5;
  wo.stall_threshold_ms = 60000;  // nothing in a short test run stalls 60s
  obs::StallWatchdog dog(wo);
  dog.Start();  // the real thread, sampling real heartbeats

  Database db;
  YcsbOptions opts;
  opts.num_rows = 5000;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol("rocc", &db, wl, 4);
  RunOptions run;
  run.num_threads = 4;
  run.txns_per_thread = 200;
  run.warmup_txns_per_thread = 20;
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &wl, run);
  dog.Stop();
  obs::SetRecorder(prev);

  EXPECT_GT(r.stats.commits, 0u);
  EXPECT_EQ(dog.stalls_detected(), 0u);  // the CI assertable invariant
}

// ------------------------------------------------------ SLO outlier capture

TEST(SloCapture, DeterministicWithSamplingOff) {
  // sample_period = 0: the 1/N sampler never fires, so every span in the
  // rings can only come from the forced outlier path. slo_us = 1 makes every
  // attempt a violation; the test asserts 1:1 correspondence between the
  // accounting matrix and the ring events — deterministic 100% capture.
  obs::ObsOptions oo;
  oo.sample_period = 0;
  oo.slo_us = 1;
  oo.ring_capacity = 1u << 13;
  oo.max_workers = 4;
  auto rec = std::make_unique<obs::FlightRecorder>(oo);
  obs::FlightRecorder* prev = obs::SetRecorder(rec.get());

  Database db;
  YcsbOptions opts;
  opts.num_rows = 10000;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol("rocc", &db, wl, 4);
  RunOptions run;
  run.num_threads = 4;
  run.txns_per_thread = 200;
  run.warmup_txns_per_thread = 0;  // rings must hold ONLY measured attempts
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &wl, run);
  obs::SetRecorder(prev);

  ASSERT_GT(r.stats.commits, 0u);
  const uint64_t total = r.stats.SloViolationTotal();
  EXPECT_GT(total, 0u);
  EXPECT_EQ(r.stats.latency_slo.count(), total);

  uint64_t violations = 0, outlier_spans = 0, sampled_spans = 0;
  rec->ForEachEvent([&](const obs::TraceEvent& e) {
    if (static_cast<obs::EventType>(e.type) == obs::EventType::kSloViolation) {
      violations++;
    } else if (static_cast<obs::EventType>(e.type) == obs::EventType::kSpan) {
      if ((e.detail & obs::kOutlierFlag) != 0) {
        outlier_spans++;
      } else if (e.detail < TxnStats::kNumSloPhases) {
        // Commit-pipeline spans can only come from the 1/N sampler, which is
        // off; only the retry layer's always-on spans (gate waits) may
        // appear unflagged.
        sampled_spans++;
      }
    }
  });
  // No ring wrapped (capacity >> events per worker), so the counts are
  // exact: one kSloViolation event per counted violation, at least one
  // forced span per violation, and zero sampled pipeline spans.
  for (uint32_t tid = 0; tid < run.num_threads; tid++) {
    ASSERT_LE(rec->worker_ring(tid).head(), rec->worker_ring(tid).capacity());
  }
  EXPECT_EQ(violations, total);
  EXPECT_GE(outlier_spans, total);
  EXPECT_EQ(sampled_spans, 0u);
}

TEST(SloCapture, OffByDefaultLeavesNoTrace) {
  obs::ObsOptions oo;
  oo.sample_period = 0;  // slo_us left 0: both capture paths off
  oo.max_workers = 2;
  auto rec = std::make_unique<obs::FlightRecorder>(oo);
  obs::FlightRecorder* prev = obs::SetRecorder(rec.get());
  Database db;
  YcsbOptions opts;
  opts.num_rows = 5000;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol("rocc", &db, wl, 2);
  RunOptions run;
  run.num_threads = 2;
  run.txns_per_thread = 100;
  run.warmup_txns_per_thread = 0;
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &wl, run);
  obs::SetRecorder(prev);
  EXPECT_GT(r.stats.commits, 0u);
  EXPECT_EQ(r.stats.SloViolationTotal(), 0u);
  for (uint32_t tid = 0; tid < run.num_threads; tid++) {
    EXPECT_EQ(rec->worker_ring(tid).head(), 0u);
  }
}

// --------------------------------------------------------- SIGUSR1 dump path

TEST(SignalDump, DumpRacesLiveAppendsAndStaysValidJson) {
  obs::ObsOptions oo;
  oo.sample_period = 1;
  oo.max_workers = 2;
  obs::FlightRecorder rec(oo);
  obs::FlightRecorder* prev = obs::SetRecorder(&rec);
  const std::string path = ::testing::TempDir() + "/sigusr1_trace.json";
  std::remove(path.c_str());
  obs::InstallSignalDump(path);

  // An emitter hammers the service ring while the handler (no drainer
  // registered -> direct, allocation-free dump) renders it mid-run.
  std::atomic<bool> stop{false};
  std::thread emitter([&rec, &stop] {
    uint64_t ts = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      rec.EmitService(obs::EventType::kWalFlush, 0, ts, 10, 512, 1);
      ts += 10;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(::raise(SIGUSR1), 0);
  stop.store(true, std::memory_order_relaxed);
  emitter.join();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "handler did not write " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("wal_flush"), std::string::npos);
  ExpectBalancedJson(json);
  std::remove(path.c_str());
  obs::SetRecorder(prev);
}

TEST(SignalDump, DrainerDefersHandlerToFlagStore) {
  obs::ObsOptions oo;
  oo.sample_period = 1;
  oo.max_workers = 2;
  obs::FlightRecorder rec(oo);
  obs::FlightRecorder* prev = obs::SetRecorder(&rec);
  rec.EmitService(obs::EventType::kRangePublish, 0, 100, 0, 2, 8);
  const std::string path = ::testing::TempDir() + "/sigusr1_deferred.json";
  std::remove(path.c_str());
  obs::InstallSignalDump(path);

  // With a drainer registered the handler is a single flag store: no file
  // appears until the drainer runs (the watchdog thread, in production).
  obs::RegisterSignalDumpDrainer();
  ASSERT_EQ(::raise(SIGUSR1), 0);
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_TRUE(obs::DrainPendingSignalDump());
  EXPECT_FALSE(obs::DrainPendingSignalDump());  // flag consumed
  obs::UnregisterSignalDumpDrainer();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("range_publish"), std::string::npos);
  ExpectBalancedJson(buf.str());
  std::remove(path.c_str());
  obs::SetRecorder(prev);
}

// ----------------------------------------------------------------- knobs

TEST(Knobs, RegistrySemantics) {
  KnobRegistry& reg = KnobRegistry::Instance();
  std::atomic<uint64_t>* cell = reg.Register("test_knob_semantics", 11);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->load(), 11u);
  // Re-registering re-arms to the NEW initial and returns the same cell:
  // the latest constructor's configuration wins over stale overrides.
  reg.Set("test_knob_semantics", 99);
  EXPECT_EQ(reg.Register("test_knob_semantics", 12), cell);
  EXPECT_EQ(cell->load(), 12u);
  // Unknown names are rejected, never auto-created.
  EXPECT_FALSE(reg.Set("test_knob_never_registered", 1));
  uint64_t v = 0;
  EXPECT_TRUE(reg.Get("test_knob_semantics", &v));
  EXPECT_EQ(v, 12u);
}

TEST(Knobs, ConcurrentSetAndHotReadAreRaceFree) {
  // TSan target: POST /config release-stores while a hot path relaxed-loads
  // the same cell. Atomics make this race-free by construction; the test
  // pins that property into the TSan CI matrix.
  std::atomic<uint64_t>* cell =
      KnobRegistry::Instance().Register("test_knob_concurrent", 0);
  std::atomic<bool> stop{false};
  uint64_t sink = 0;
  std::thread reader([cell, &stop, &sink] {
    while (!stop.load(std::memory_order_relaxed)) {
      sink += cell->load(std::memory_order_relaxed);  // the hot-path read
    }
  });
  for (uint64_t i = 1; i <= 20000; i++) {
    ASSERT_TRUE(KnobRegistry::Instance().Set("test_knob_concurrent", i));
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(cell->load(), 20000u);
  EXPECT_GE(sink, 0u);  // keep the reader's loads observable
}

}  // namespace
}  // namespace rocc
