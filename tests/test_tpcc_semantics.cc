// TPC-C transaction-level semantic tests: effects of each transaction on
// the schema, rollback cleanliness, and cross-transaction data flow
// (NewOrder -> Delivery -> customer balance; Payment -> bulk reward target).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "cc/txn_handle.h"
#include "harness/runner.h"
#include "workload/tpcc/tpcc.h"

namespace rocc {
namespace {

using namespace tpcc;  // NOLINT

class TpccSemantics : public ::testing::Test {
 protected:
  void SetUp() override {
    TpccOptions opts;
    opts.num_warehouses = 1;
    opts.initial_orders_per_district = 10;
    opts.bulk_scan_length = 200;
    wl_ = std::make_unique<TpccWorkload>(opts);
    wl_->Load(&db_);
    cc_ = CreateProtocol("rocc", &db_, *wl_, 2);
  }

  template <typename RowT>
  RowT ReadCommitted(uint32_t table, uint64_t key) {
    TxnHandle txn(cc_.get(), 1);
    RowT row{};
    EXPECT_TRUE(txn.ReadRow(table, key, &row).ok()) << "key " << key;
    EXPECT_TRUE(txn.Commit().ok());
    return row;
  }

  Database db_;
  std::unique_ptr<TpccWorkload> wl_;
  std::unique_ptr<ConcurrencyControl> cc_;
};

TEST_F(TpccSemantics, NewOrderAdvancesDistrictCounterAndLinksCustomer) {
  const auto& t = wl_->tables();
  const auto before = ReadCommitted<DistrictRow>(t.district, DistrictKey(0, 0));

  // Drive NewOrder until one lands in district 0 (random district choice).
  Rng rng(5);
  uint32_t committed = 0;
  for (int i = 0; i < 200 && committed < 30; i++) {
    if (wl_->DoNewOrder(cc_.get(), 0, rng).ok()) committed++;
  }
  ASSERT_EQ(committed, 30u);

  uint32_t total_new_orders = 0;
  for (uint32_t d = 0; d < kDistrictsPerWarehouse; d++) {
    const auto dist = ReadCommitted<DistrictRow>(t.district, DistrictKey(0, d));
    total_new_orders += dist.d_next_o_id - before.d_next_o_id;
    // Every allocated order id must exist with order lines and a customer
    // whose c_last_o_id can reach it.
    for (uint32_t o = before.d_next_o_id; o < dist.d_next_o_id; o++) {
      const auto order = ReadCommitted<OrderRow>(t.order, OrderKey(0, d, o));
      EXPECT_GE(order.o_ol_cnt, kMinOrderLines);
      EXPECT_LE(order.o_ol_cnt, kMaxOrderLines);
      const auto line = ReadCommitted<OrderLineRow>(
          t.order_line, OrderLineKey(0, d, o, 1));
      EXPECT_LT(line.ol_i_id, kItems);
      EXPECT_EQ(line.ol_delivery_d, 0u);  // not yet delivered
    }
  }
  EXPECT_EQ(total_new_orders, 30u);
}

TEST_F(TpccSemantics, PaymentFlowsIntoBulkRewardRanking) {
  const auto& t = wl_->tables();
  // Concentrate payments on one customer so it becomes the top shopper.
  const uint64_t star = CustomerKey(0, 3, 77);
  for (int i = 0; i < 5; i++) {
    TxnHandle txn(cc_.get(), 0);
    auto cust = CustomerRow{};
    ASSERT_TRUE(txn.ReadRow(t.customer, star, &cust).ok());
    cust.c_ytd_payment += 1'000'000.0;
    cust.c_payment_ts = 12345;
    ASSERT_TRUE(txn.UpdateRow(t.customer, star, cust).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const double balance_before = ReadCommitted<CustomerRow>(t.customer, star).c_balance;

  // Bulk rewards scan random 200-customer windows; run until one covers the
  // star customer and commits.
  Rng rng(9);
  bool rewarded = false;
  for (int i = 0; i < 400 && !rewarded; i++) {
    ASSERT_TRUE(wl_->DoBulkReward(cc_.get(), 0, rng).ok());
    const double now = ReadCommitted<CustomerRow>(t.customer, star).c_balance;
    rewarded = now > balance_before;
  }
  EXPECT_TRUE(rewarded) << "top shopper never rewarded";
  EXPECT_TRUE(wl_->CheckYtdInvariant());
}

TEST_F(TpccSemantics, DeliveryMarksLinesAndPaysCustomer) {
  const auto& t = wl_->tables();
  // Find the oldest undelivered order of district 0 via the raw index.
  uint64_t oldest_key = 0;
  db_.GetIndex(t.new_order)->ScanRange(OrderKey(0, 0, 0), OrderKey(0, 1, 0),
                                       [&](uint64_t key, Row*) {
                                         oldest_key = key;
                                         return false;
                                       });
  ASSERT_NE(oldest_key, 0u);
  const uint32_t o_id = static_cast<uint32_t>(oldest_key & 0xffffff);
  const auto order = ReadCommitted<OrderRow>(t.order, OrderKey(0, 0, o_id));
  const auto cust_before = ReadCommitted<CustomerRow>(
      t.customer, CustomerKey(0, 0, order.o_c_id));

  Rng rng(3);
  ASSERT_TRUE(wl_->DoDelivery(cc_.get(), 0, rng).ok());

  // The new-order queue entry is gone; the order is carried; lines stamped.
  TxnHandle check(cc_.get(), 0);
  NewOrderRow no{};
  EXPECT_TRUE(check.ReadRow(t.new_order, OrderKey(0, 0, o_id), &no).not_found());
  OrderRow delivered{};
  ASSERT_TRUE(check.ReadRow(t.order, OrderKey(0, 0, o_id), &delivered).ok());
  EXPECT_GT(delivered.o_carrier_id, 0u);
  double total = 0;
  for (uint32_t ol = 1; ol <= delivered.o_ol_cnt; ol++) {
    OrderLineRow line{};
    ASSERT_TRUE(
        check.ReadRow(t.order_line, OrderLineKey(0, 0, o_id, ol), &line).ok());
    EXPECT_GT(line.ol_delivery_d, 0u);
    total += line.ol_amount;
  }
  CustomerRow cust_after{};
  ASSERT_TRUE(check.ReadRow(t.customer, CustomerKey(0, 0, order.o_c_id),
                            &cust_after).ok());
  EXPECT_TRUE(check.Commit().ok());
  EXPECT_NEAR(cust_after.c_balance, cust_before.c_balance + total, 1e-6);
  EXPECT_EQ(cust_after.c_delivery_cnt, cust_before.c_delivery_cnt + 1);
}

TEST_F(TpccSemantics, AbortedNewOrderLeavesNoPartialState) {
  const auto& t = wl_->tables();
  const auto before = ReadCommitted<DistrictRow>(t.district, DistrictKey(0, 2));
  const uint64_t orders_before = db_.GetIndex(t.order)->Size();
  const uint64_t lines_before = db_.GetIndex(t.order_line)->Size();

  // Hand-roll a NewOrder-shaped transaction and abort it mid-flight.
  {
    TxnHandle txn(cc_.get(), 0);
    DistrictRow dist{};
    ASSERT_TRUE(txn.ReadRow(t.district, DistrictKey(0, 2), &dist).ok());
    const uint32_t o_id = dist.d_next_o_id;
    dist.d_next_o_id++;
    ASSERT_TRUE(txn.UpdateRow(t.district, DistrictKey(0, 2), dist).ok());
    OrderRow order{};
    order.o_c_id = 1;
    order.o_ol_cnt = 5;
    ASSERT_TRUE(txn.Insert(t.order, OrderKey(0, 2, o_id), &order).ok());
    OrderLineRow line{};
    ASSERT_TRUE(
        txn.Insert(t.order_line, OrderLineKey(0, 2, o_id, 1), &line).ok());
    // Scope exit aborts.
  }

  const auto after = ReadCommitted<DistrictRow>(t.district, DistrictKey(0, 2));
  EXPECT_EQ(after.d_next_o_id, before.d_next_o_id);
  EXPECT_EQ(db_.GetIndex(t.order)->Size(), orders_before);
  EXPECT_EQ(db_.GetIndex(t.order_line)->Size(), lines_before);
  EXPECT_TRUE(wl_->CheckOrderInvariant());
}

TEST_F(TpccSemantics, StockLevelIsReadOnly) {
  const auto& t = wl_->tables();
  const uint64_t stock_rows = db_.GetTable(t.stock)->row_count();
  Rng rng(4);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(wl_->DoStockLevel(cc_.get(), 0, rng).ok());
  }
  EXPECT_EQ(db_.GetTable(t.stock)->row_count(), stock_rows);
  EXPECT_TRUE(wl_->CheckYtdInvariant());
}

TEST_F(TpccSemantics, HistoryGrowsOnlyWithPayments) {
  const auto& t = wl_->tables();
  EXPECT_EQ(db_.GetIndex(t.history)->Size(), 0u);
  Rng rng(6);
  uint32_t payments = 0;
  for (int i = 0; i < 40; i++) {
    if (wl_->DoPayment(cc_.get(), 0, rng).ok()) payments++;
  }
  EXPECT_EQ(db_.GetIndex(t.history)->Size(), payments);
  EXPECT_TRUE(wl_->CheckYtdInvariant());
}

}  // namespace
}  // namespace rocc
