// Abort-reason-aware contention management: unit tests for the
// ContentionManager (backoff ladders, starvation-escape gate, honest
// accounting), the "cause counters sum to aborts" invariant across every
// scheme, and the deterministic fiber-mode livelock regression — a bulk
// whole-table scan must keep committing under a point-write storm.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "harness/contention.h"
#include "harness/runner.h"
#include "workload/tpcc/tpcc.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

// --------------------------------------------------------------------------
// Abort-reason plumbing
// --------------------------------------------------------------------------

TEST(AbortReason, EveryReasonHasANameAndACounter) {
  const AbortReason reasons[] = {
      AbortReason::kDirtyRead,     AbortReason::kLockFail,
      AbortReason::kReadValidation, AbortReason::kScanConflict,
      AbortReason::kRingLost,      AbortReason::kUnresolved,
      AbortReason::kExplicit};
  TxnStats stats;
  for (AbortReason r : reasons) {
    EXPECT_STRNE(AbortReasonName(r), "none");
    EXPECT_STRNE(AbortReasonName(r), "unknown");
    stats.CountAbortCause(r);
  }
  EXPECT_EQ(stats.AbortCauseSum(), 7u);
  EXPECT_EQ(stats.abort_dirty_read, 1u);
  EXPECT_EQ(stats.abort_lock_fail, 1u);
  EXPECT_EQ(stats.abort_read_validation, 1u);
  EXPECT_EQ(stats.abort_scan_conflict, 1u);
  EXPECT_EQ(stats.abort_ring_lost, 1u);
  EXPECT_EQ(stats.abort_unresolved, 1u);
  EXPECT_EQ(stats.abort_explicit, 1u);
  // kNone is not a cause.
  stats.CountAbortCause(AbortReason::kNone);
  EXPECT_EQ(stats.AbortCauseSum(), 7u);
}

TEST(AbortReason, MergePropagatesCauseAndRetryCounters) {
  TxnStats a, b;
  a.CountAbortCause(AbortReason::kScanConflict);
  a.give_ups = 1;
  a.escalations = 2;
  b.CountAbortCause(AbortReason::kLockFail);
  b.protected_commits = 3;
  b.backoff_ns_total = 40;
  b.gate_wait_ns = 50;
  b.attempts_per_commit.Record(5);
  a.Merge(b);
  EXPECT_EQ(a.AbortCauseSum(), 2u);
  EXPECT_EQ(a.give_ups, 1u);
  EXPECT_EQ(a.escalations, 2u);
  EXPECT_EQ(a.protected_commits, 3u);
  EXPECT_EQ(a.backoff_ns_total, 40u);
  EXPECT_EQ(a.gate_wait_ns, 50u);
  EXPECT_EQ(a.attempts_per_commit.count(), 1u);
}

// --------------------------------------------------------------------------
// ContentionManager unit tests
// --------------------------------------------------------------------------

ContentionOptions FastOptions() {
  ContentionOptions opts;
  opts.scan_escalation_aborts = 3;
  opts.point_escalation_aborts = 5;
  opts.short_backoff_spins = 4;
  opts.long_backoff_spins = 8;
  return opts;
}

TEST(ContentionManager, EscalatesScanAfterThresholdAndReleasesOnCommit) {
  ContentionManager cm(2, FastOptions());
  TxnStats stats;
  cm.AttachThread(0, &stats);
  Rng rng(1);

  cm.BeginTxn(0, /*is_scan_txn=*/true);
  cm.OnAbort(0, AbortReason::kScanConflict, rng);
  cm.OnAbort(0, AbortReason::kScanConflict, rng);
  EXPECT_EQ(cm.protected_holder(), ContentionManager::kNoHolder);
  EXPECT_FALSE(cm.InProtectedRetry(0));
  cm.OnAbort(0, AbortReason::kScanConflict, rng);  // 3rd consecutive: escalate
  EXPECT_EQ(cm.protected_holder(), 0u);
  EXPECT_TRUE(cm.InProtectedRetry(0));
  EXPECT_EQ(stats.escalations, 1u);

  cm.OnCommit(0, /*attempts=*/4);
  EXPECT_EQ(cm.protected_holder(), ContentionManager::kNoHolder);
  EXPECT_FALSE(cm.InProtectedRetry(0));
  EXPECT_EQ(stats.protected_commits, 1u);
  EXPECT_EQ(stats.attempts_per_commit.count(), 1u);
  EXPECT_EQ(stats.attempts_per_commit.max(), 4u);
}

TEST(ContentionManager, PointLadderIsLongerThanScanLadder) {
  ContentionManager cm(1, FastOptions());
  TxnStats stats;
  cm.AttachThread(0, &stats);
  Rng rng(2);
  cm.BeginTxn(0, /*is_scan_txn=*/false);
  for (int i = 0; i < 4; i++) cm.OnAbort(0, AbortReason::kLockFail, rng);
  EXPECT_EQ(stats.escalations, 0u);  // scan threshold (3) does not apply
  cm.OnAbort(0, AbortReason::kLockFail, rng);  // 5th: point threshold
  EXPECT_EQ(stats.escalations, 1u);
  cm.OnCommit(0, 6);
}

TEST(ContentionManager, BeginTxnResetsTheConsecutiveAbortLadder) {
  ContentionManager cm(1, FastOptions());
  TxnStats stats;
  cm.AttachThread(0, &stats);
  Rng rng(3);
  for (int txn = 0; txn < 4; txn++) {
    cm.BeginTxn(0, /*is_scan_txn=*/true);
    cm.OnAbort(0, AbortReason::kScanConflict, rng);
    cm.OnAbort(0, AbortReason::kScanConflict, rng);
    cm.OnCommit(0, 3);
  }
  EXPECT_EQ(stats.escalations, 0u);  // never 3 consecutive within one txn
}

TEST(ContentionManager, GiveUpIsCountedAndReleasesTheGate) {
  ContentionManager cm(1, FastOptions());
  TxnStats stats;
  cm.AttachThread(0, &stats);
  Rng rng(4);
  cm.BeginTxn(0, /*is_scan_txn=*/true);
  for (int i = 0; i < 3; i++) cm.OnAbort(0, AbortReason::kRingLost, rng);
  EXPECT_EQ(cm.protected_holder(), 0u);
  cm.OnGiveUp(0);
  EXPECT_EQ(stats.give_ups, 1u);
  EXPECT_EQ(cm.protected_holder(), ContentionManager::kNoHolder);
}

TEST(ContentionManager, BackoffIsRecordedPerAbort) {
  ContentionManager cm(1, FastOptions());
  TxnStats stats;
  cm.AttachThread(0, &stats);
  Rng rng(5);
  cm.BeginTxn(0, /*is_scan_txn=*/false);
  cm.OnAbort(0, AbortReason::kDirtyRead, rng);
  cm.OnAbort(0, AbortReason::kUnresolved, rng);
  cm.OnAbort(0, AbortReason::kScanConflict, rng);
  EXPECT_EQ(stats.backoff_time.count(), 3u);
  cm.OnCommit(0, 4);
}

TEST(ContentionManager, AdmitBlocksWhileProtectedRetryIsHeld) {
  ContentionManager cm(2, FastOptions());
  TxnStats stats0, stats1;
  cm.AttachThread(0, &stats0);
  cm.AttachThread(1, &stats1);
  Rng rng(6);

  cm.BeginTxn(0, /*is_scan_txn=*/true);
  for (int i = 0; i < 3; i++) cm.OnAbort(0, AbortReason::kScanConflict, rng);
  ASSERT_EQ(cm.protected_holder(), 0u);

  std::atomic<bool> admitted{false};
  std::thread other([&] {
    cm.BeginTxn(1, /*is_scan_txn=*/false);
    cm.Admit(1);  // must block until thread 0 releases the gate
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());

  cm.OnCommit(0, 4);  // releases the gate
  other.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_GT(stats1.gate_wait_ns, 0u);
  // The holder itself is always admitted.
  cm.BeginTxn(0, true);
  cm.Admit(0);
}

// --------------------------------------------------------------------------
// Cause-sum invariant, end to end, on every scheme
// --------------------------------------------------------------------------

class SchemeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SchemeTest, AbortCauseCountersSumToAborts) {
  Database db;
  YcsbOptions opts;
  opts.num_rows = 4096;
  opts.theta = 0.9;               // hot keys: plenty of point conflicts
  opts.scan_txn_fraction = 0.2;   // plus scan/validation conflicts
  opts.scan_length = 256;
  opts.read_fraction = 0.0;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol(GetParam(), &db, wl, 8);

  RunOptions run;
  run.num_threads = 8;
  run.txns_per_thread = 150;
  run.warmup_txns_per_thread = 20;
  run.mode = ExecMode::kFibers;  // deterministic interleaving
  const RunResult r = RunExperiment(cc.get(), &wl, run);

  EXPECT_EQ(r.stats.commits + r.stats.give_ups, 8u * 150u) << GetParam();
  EXPECT_EQ(r.stats.AbortCauseSum(), r.stats.aborts) << GetParam();
  EXPECT_GT(r.stats.aborts, 0u) << GetParam()
      << ": config not contended enough to exercise the taxonomy";
  EXPECT_EQ(r.stats.give_ups, 0u) << GetParam();
  EXPECT_EQ(r.stats.attempts_per_commit.count(), r.stats.commits) << GetParam();
}

TEST_P(SchemeTest, TpccExplicitAbortsAreAccounted) {
  // TPC-C's TPCC_TRY aborts voluntarily on NotFound races; those aborts have
  // no protocol cause and must land in abort_explicit for the sum to hold.
  Database db;
  TpccOptions opts;
  opts.num_warehouses = 2;
  opts.initial_orders_per_district = 20;
  opts.bulk_scan_length = 400;
  TpccWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol(GetParam(), &db, wl, 4);

  RunOptions run;
  run.num_threads = 4;
  run.txns_per_thread = 120;
  run.warmup_txns_per_thread = 10;
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &wl, run);

  EXPECT_EQ(r.stats.AbortCauseSum(), r.stats.aborts) << GetParam();
  EXPECT_EQ(r.stats.give_ups, 0u) << GetParam();
}

// --------------------------------------------------------------------------
// Livelock regression: bulk scan vs point-write storm
// --------------------------------------------------------------------------

TEST_P(SchemeTest, BulkScanCommitsUnderPointWriteStorm) {
  // 95% of transactions are 8-op point-write transactions over a 512-row
  // table; 5% are whole-table scans. Without the starvation-escape gate the
  // scans abort indefinitely (every point commit invalidates them); with it,
  // an escalated scan quiesces admission and must commit. Fiber mode with a
  // fixed seed makes the schedule deterministic.
  Database db;
  YcsbOptions opts;
  opts.num_rows = 512;
  opts.theta = 0.0;               // uniform: writes land across the whole table
  opts.scan_txn_fraction = 0.05;
  opts.scan_length = 512;         // whole-table scan
  opts.ops_per_txn = 8;
  opts.read_fraction = 0.0;       // pure point writes
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol(GetParam(), &db, wl, 16);

  RunOptions run;
  run.num_threads = 16;
  run.txns_per_thread = 150;
  run.warmup_txns_per_thread = 10;
  run.seed = 42;
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &wl, run);

  // Forward progress: every logical transaction commits — no give-ups, and
  // the bulk scans do get through the storm.
  EXPECT_EQ(r.stats.give_ups, 0u) << GetParam();
  EXPECT_EQ(r.stats.commits, 16u * 150u) << GetParam();
  EXPECT_GT(r.stats.scan_txn_commits, 0u) << GetParam();
  EXPECT_EQ(r.stats.AbortCauseSum(), r.stats.aborts) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeTest,
                         ::testing::Values("rocc", "lrv", "gwv", "mvrcc", "2pl"),
                         [](const auto& pinfo) { return pinfo.param; });

}  // namespace
}  // namespace rocc
