// Multi-version row store: commit-watermark safety, randomized chain
// resolution against a reference model, snapshot consistency under concurrent
// writers, abort-free snapshot scans end-to-end (fiber runner), chain-leak
// detection, and the incremental Prometheus streamer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "cc/silo_lrv.h"
#include "common/rng.h"
#include "harness/runner.h"
#include "mv/version_store.h"
#include "obs/prometheus.h"
#include "storage/database.h"
#include "txn/clock.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

// --------------------------------------------------------------------------
// Commit watermark
// --------------------------------------------------------------------------

TEST(CommitWatermark, PinsBelowInflightCommitAndStaysMonotone) {
  GlobalClock clock;
  CommitWatermark wm(&clock, 4);
  EXPECT_EQ(wm.SafeSnapshot(), GlobalClock::kInitialVersion);
  clock.Next();
  clock.Next();
  EXPECT_EQ(wm.SafeSnapshot(), clock.Current());

  // A writer in its commit window publishes BEFORE drawing its timestamp, so
  // the watermark stays strictly below that timestamp until EndCommit — even
  // while other commits keep advancing the clock.
  wm.BeginCommit(0);
  const uint64_t cts = clock.Next();
  EXPECT_LT(wm.SafeSnapshot(), cts);
  clock.Next();
  clock.Next();
  EXPECT_LT(wm.SafeSnapshot(), cts);

  const uint64_t before = wm.SafeSnapshot();
  wm.EndCommit(0);
  const uint64_t after = wm.SafeSnapshot();
  EXPECT_GE(after, before);
  EXPECT_EQ(after, clock.Current());
}

TEST(CommitWatermark, MonotoneUnderConcurrentCommitWindows) {
  GlobalClock clock;
  CommitWatermark wm(&clock, 4);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  std::vector<std::thread> committers;
  for (uint32_t tid = 0; tid < 2; tid++) {
    committers.emplace_back([&, tid] {
      for (int i = 0; i < 50000; i++) {
        wm.BeginCommit(tid);
        const uint64_t cts = clock.Next();
        // The snapshot source must never certify our still-open commit.
        if (wm.SafeSnapshot() >= cts) failed.store(true);
        wm.EndCommit(tid);
      }
      stop.store(true);
    });
  }
  std::thread observer([&] {
    uint64_t last = 0;
    while (!stop.load()) {
      const uint64_t s = wm.SafeSnapshot();
      if (s < last) failed.store(true);
      last = s;
    }
  });
  for (auto& t : committers) t.join();
  observer.join();
  EXPECT_FALSE(failed.load());
}

// --------------------------------------------------------------------------
// Randomized chain resolution vs a reference model
// --------------------------------------------------------------------------

// Drives a single-version OCC protocol with MVCC enabled through a random
// history of updates, deletes, and re-inserts over a small key set, mirroring
// every commit into a per-key std::map<commit_ts, value-or-tombstone>. A
// snapshot acquired mid-history pins the prune floor; afterwards every
// timestamp at or above the pin must resolve each row to exactly the
// reference's newest-version-at-or-below rule.
TEST(MvccChainModel, RandomHistoryMatchesReference) {
  constexpr uint64_t kKeys = 16;
  constexpr uint32_t kPayload = 16;
  constexpr int kCommits = 1500;
  constexpr int kPinAt = 750;

  Database db;
  Schema schema({{"v", kPayload, 0}});
  const uint32_t table = db.CreateTable("t", std::move(schema));
  for (uint64_t k = 0; k < kKeys; k++) {
    char payload[kPayload] = {};
    const uint64_t v = k * 10;
    std::memcpy(payload, &v, sizeof(v));
    db.LoadRow(table, k, payload);
  }

  SiloLrv cc(&db, 4);
  ASSERT_TRUE(cc.EnableMvcc());
  mv::VersionStore* vs = cc.version_store();
  ASSERT_NE(vs, nullptr);
  TxnStats stats;
  cc.AttachThread(0, &stats);

  // reference[k]: commit_ts -> payload value, nullopt = deleted at that ts.
  std::map<uint64_t, std::optional<uint64_t>> reference[kKeys];
  bool live[kKeys];
  for (uint64_t k = 0; k < kKeys; k++) {
    reference[k][GlobalClock::kInitialVersion] = k * 10;
    live[k] = true;
  }

  Rng rng(42);
  uint64_t pin = 0;
  for (int i = 0; i < kCommits; i++) {
    if (i == kPinAt) pin = vs->AcquireSnapshot(1);

    const uint64_t k = rng.Next() % kKeys;
    const uint64_t dice = rng.Next() % 10;
    TxnDescriptor* t = cc.Begin(0);
    std::optional<uint64_t> new_value;
    if (live[k] && dice == 0) {
      ASSERT_TRUE(cc.Remove(t, table, k).ok());
      live[k] = false;
    } else if (!live[k]) {
      char payload[kPayload] = {};
      const uint64_t v = 1000000 + static_cast<uint64_t>(i);
      std::memcpy(payload, &v, sizeof(v));
      ASSERT_TRUE(cc.Insert(t, table, k, payload).ok());
      new_value = v;
      live[k] = true;
    } else {
      const uint64_t v = static_cast<uint64_t>(i);
      ASSERT_TRUE(cc.Update(t, table, k, &v, sizeof(v), 0).ok());
      new_value = v;
    }
    ASSERT_TRUE(cc.Commit(t).ok());

    // Single-threaded: the row's unlocked TID word is this commit's ts.
    Row* row = db.GetIndex(table)->Get(k);
    ASSERT_NE(row, nullptr);
    uint64_t word = 0;
    ASSERT_TRUE(row->ReadVersion(&word));
    ASSERT_EQ(TidWord::IsAbsent(word), !live[k]);
    reference[k][TidWord::Version(word)] = new_value;
  }
  ASSERT_GT(pin, 0u);

  // Timestamps to check: the pin itself, every commit ts >= pin, and random
  // fillers (hitting interval interiors, not just boundaries).
  std::vector<uint64_t> snapshots = {pin};
  uint64_t max_ts = pin;
  for (uint64_t k = 0; k < kKeys; k++) {
    for (const auto& [ts, value] : reference[k]) {
      if (ts >= pin) snapshots.push_back(ts);
      max_ts = std::max(max_ts, ts);
    }
  }
  for (int i = 0; i < 200; i++) {
    snapshots.push_back(pin + rng.Next() % (max_ts - pin + 1));
  }

  char buf[kPayload];
  for (const uint64_t snap : snapshots) {
    for (uint64_t k = 0; k < kKeys; k++) {
      Row* row = db.GetIndex(table)->Get(k);
      ASSERT_NE(row, nullptr);  // tombstone removal is deferred under MVCC
      auto it = reference[k].upper_bound(snap);
      ASSERT_NE(it, reference[k].begin());
      const std::optional<uint64_t>& expected = std::prev(it)->second;

      const mv::SnapshotRead rd = vs->ReadAtSnapshot(row, snap, buf, &stats);
      if (!expected.has_value()) {
        EXPECT_EQ(rd, mv::SnapshotRead::kInvisible)
            << "key " << k << " snapshot " << snap;
      } else {
        ASSERT_NE(rd, mv::SnapshotRead::kInvisible)
            << "key " << k << " snapshot " << snap;
        uint64_t got = 0;
        std::memcpy(&got, buf, sizeof(got));
        EXPECT_EQ(got, *expected) << "key " << k << " snapshot " << snap;
      }
    }
  }

  EXPECT_GT(stats.mv_versions_installed, 0u);
  EXPECT_GT(stats.mv_chain_length.count(), 0u);
  EXPECT_GT(stats.mv_chain_reads, 0u);

  // Release the pin and quiesce: every chain must drain and deferred
  // tombstones must leave the index.
  vs->ReleaseSnapshot(1);
  vs->GcQuiesce(&db);
  EXPECT_EQ(vs->Telemetry().live_nodes(), 0u);
  EXPECT_EQ(vs->Telemetry().live_bytes(), 0u);
  for (uint64_t k = 0; k < kKeys; k++) {
    Row* row = db.GetIndex(table)->Get(k);
    EXPECT_EQ(row == nullptr, !live[k]) << "key " << k;
  }
}

// --------------------------------------------------------------------------
// Snapshot consistency under concurrent writers (real threads)
// --------------------------------------------------------------------------

class SumConsumer : public ScanConsumer {
 public:
  bool OnRecord(uint64_t, const char* payload) override {
    uint64_t v = 0;
    std::memcpy(&v, payload, sizeof(v));
    sum_ += v;
    count_++;
    return true;
  }
  uint64_t sum() const { return sum_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t sum_ = 0;
  uint64_t count_ = 0;
};

// Writers transfer random amounts between accounts; a concurrent snapshot
// scanner sums all balances. Every scan must observe the invariant total —
// a frozen snapshot never sees half a transfer — and must never abort.
TEST(MvccSnapshotConsistency, TransfersPreserveTheSumInvariant) {
  constexpr uint64_t kAccounts = 64;
  constexpr uint64_t kInitialBalance = 1000;
  constexpr uint32_t kPayload = 16;
  constexpr int kTransfersPerWriter = 4000;

  Database db;
  Schema schema({{"bal", kPayload, 0}});
  const uint32_t table = db.CreateTable("accounts", std::move(schema));
  for (uint64_t k = 0; k < kAccounts; k++) {
    char payload[kPayload] = {};
    std::memcpy(payload, &kInitialBalance, sizeof(kInitialBalance));
    db.LoadRow(table, k, payload);
  }

  SiloLrv cc(&db, 4);
  ASSERT_TRUE(cc.EnableMvcc());
  TxnStats stats[4];
  for (uint32_t tid = 0; tid < 4; tid++) cc.AttachThread(tid, &stats[tid]);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_sums{0};
  std::atomic<uint64_t> scan_failures{0};
  std::atomic<uint64_t> scans_done{0};

  auto writer = [&](uint32_t tid) {
    Rng rng(1000 + tid);
    for (int i = 0; i < kTransfersPerWriter; i++) {
      const uint64_t a = rng.Next() % kAccounts;
      uint64_t b = rng.Next() % kAccounts;
      if (b == a) b = (b + 1) % kAccounts;
      const uint64_t amount = 1 + rng.Next() % 10;
      for (;;) {  // retry the transfer until it commits
        TxnDescriptor* t = cc.Begin(tid);
        char buf[kPayload];
        uint64_t bal_a = 0, bal_b = 0;
        if (!cc.Read(t, table, a, buf).ok()) {
          cc.Abort(t);
          continue;
        }
        std::memcpy(&bal_a, buf, sizeof(bal_a));
        if (!cc.Read(t, table, b, buf).ok()) {
          cc.Abort(t);
          continue;
        }
        std::memcpy(&bal_b, buf, sizeof(bal_b));
        const uint64_t new_a = bal_a - amount;
        const uint64_t new_b = bal_b + amount;
        if (!cc.Update(t, table, a, &new_a, sizeof(new_a), 0).ok() ||
            !cc.Update(t, table, b, &new_b, sizeof(new_b), 0).ok()) {
          cc.Abort(t);
          continue;
        }
        if (cc.Commit(t).ok()) break;
      }
    }
  };

  auto scanner = [&](uint32_t tid) {
    while (!stop.load(std::memory_order_relaxed)) {
      TxnDescriptor* t = cc.Begin(tid);
      SumConsumer consumer;
      const Status st =
          cc.SnapshotScan(t, table, 0, /*end_key=*/0, /*limit=*/0, &consumer);
      if (!st.ok()) {
        scan_failures.fetch_add(1);
        cc.Abort(t);
        continue;
      }
      if (!cc.Commit(t).ok()) {
        scan_failures.fetch_add(1);
        continue;
      }
      if (consumer.count() != kAccounts ||
          consumer.sum() != kAccounts * kInitialBalance) {
        bad_sums.fetch_add(1);
      }
      scans_done.fetch_add(1);
    }
  };

  std::thread w0(writer, 0), w1(writer, 1);
  std::thread s0(scanner, 2), s1(scanner, 3);
  w0.join();
  w1.join();
  stop.store(true);
  s0.join();
  s1.join();

  EXPECT_GT(scans_done.load(), 0u);
  EXPECT_EQ(bad_sums.load(), 0u);
  EXPECT_EQ(scan_failures.load(), 0u);

  // Chain-leak check: with no thread inside a transaction, a full quiesce
  // must return every version node.
  mv::VersionStore* vs = cc.version_store();
  vs->GcQuiesce(&db);
  EXPECT_EQ(vs->Telemetry().live_nodes(), 0u);
}

// --------------------------------------------------------------------------
// End-to-end: composite workload under the fiber runner
// --------------------------------------------------------------------------

// The headline property: with snapshot scans on, read-only bulk transactions
// NEVER abort, no matter how hot the concurrent point-write traffic is.
TEST(MvccFiberE2E, SnapshotScansNeverAbort) {
  YcsbOptions opts;
  opts.num_rows = 20000;
  opts.theta = 0.9;  // hot point writes into the scanned space
  opts.scan_txn_fraction = 0.2;
  opts.scan_length = 100;
  opts.snapshot_scans = true;
  YcsbWorkload workload(opts);
  Database db;
  workload.Load(&db);

  auto cc = CreateProtocol("rocc+mv", &db, workload, /*num_threads=*/16);
  ASSERT_NE(cc->version_store(), nullptr);

  RunOptions run;
  run.num_threads = 16;
  run.txns_per_thread = 300;
  run.warmup_txns_per_thread = 20;
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &workload, run);

  EXPECT_GT(r.stats.scan_txn_commits, 0u);
  EXPECT_EQ(r.stats.scan_txn_aborts, 0u);
  EXPECT_GT(r.stats.mv_snapshot_scans, 0u);
  EXPECT_GT(r.stats.mv_snapshot_records, 0u);
  EXPECT_EQ(r.stats.give_ups, 0u);
  // Honest accounting must survive the new paths: every abort has a cause.
  EXPECT_EQ(r.stats.aborts, r.stats.AbortCauseSum());

  mv::VersionStore* vs = cc->version_store();
  vs->GcQuiesce(&db);
  EXPECT_EQ(vs->Telemetry().live_nodes(), 0u);
}

// Without MVCC the same composite workload must still run (snapshot scans
// degrade to validated scans) — the flag is safe on every protocol.
TEST(MvccFiberE2E, SnapshotFlagFallsBackWithoutVersionStore) {
  YcsbOptions opts;
  opts.num_rows = 5000;
  opts.scan_txn_fraction = 0.2;
  opts.scan_length = 50;
  opts.snapshot_scans = true;
  YcsbWorkload workload(opts);
  Database db;
  workload.Load(&db);

  auto cc = CreateProtocol("rocc", &db, workload, 8);
  EXPECT_EQ(cc->version_store(), nullptr);

  RunOptions run;
  run.num_threads = 8;
  run.txns_per_thread = 200;
  run.warmup_txns_per_thread = 10;
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &workload, run);
  EXPECT_GT(r.stats.scan_txn_commits, 0u);
  EXPECT_EQ(r.stats.give_ups, 0u);
}

// --------------------------------------------------------------------------
// General read-only snapshot transactions
// --------------------------------------------------------------------------

// Regression: a read-only transaction that mixes point reads WITH its scan
// (the analytics shape) must route through the snapshot path end to end and
// never validate-abort, no matter how hot the concurrent Zipfian writers
// are. An earlier version only marked the descriptor when the plan had zero
// point ops, so these transactions validated — and aborted — like plain OCC.
TEST(MvccReadOnlyTxn, MixedPointReadsAndScansNeverValidateAbort) {
  YcsbOptions opts;
  opts.num_rows = 20000;
  opts.theta = 0.95;  // hot point writes into the read/scan space
  opts.scan_txn_fraction = 0.3;
  opts.scan_length = 100;
  opts.snapshot_scans = true;
  opts.scan_txn_point_reads = 4;  // scan + hot-key lookups, one consistent cut
  YcsbWorkload workload(opts);
  Database db;
  workload.Load(&db);

  auto cc = CreateProtocol("rocc+mv", &db, workload, /*num_threads=*/16);
  ASSERT_NE(cc->version_store(), nullptr);

  RunOptions run;
  run.num_threads = 16;
  run.txns_per_thread = 300;
  run.warmup_txns_per_thread = 20;
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &workload, run);

  EXPECT_GT(r.stats.scan_txn_commits, 0u);
  EXPECT_EQ(r.stats.scan_txn_aborts, 0u);
  EXPECT_GT(r.stats.mv_snapshot_point_reads, 0u);
  EXPECT_GT(r.stats.mv_snapshot_txns, 0u);
  EXPECT_GT(r.stats.mv_snapshot_scans, 0u);
  EXPECT_EQ(r.stats.abort_snapshot_evicted, 0u);  // no ceiling: nothing evicts
  EXPECT_EQ(r.stats.give_ups, 0u);
  EXPECT_EQ(r.stats.aborts, r.stats.AbortCauseSum());

  mv::VersionStore* vs = cc->version_store();
  vs->GcQuiesce(&db);
  EXPECT_EQ(vs->Telemetry().live_nodes(), 0u);
  EXPECT_EQ(vs->Telemetry().gc_locked_rows, 0u);
}

// --------------------------------------------------------------------------
// Prune-pressure snapshot eviction
// --------------------------------------------------------------------------

// A long-held snapshot under sustained writes: once live version bytes cross
// the ceiling, the committer-side pressure check evicts the oldest pinned
// snapshot. The victim aborts with kSnapshotEvicted — counted exactly once,
// summing into `aborts` — on its next read AND (separately) at its trivial
// commit; a retry gets a fresh snapshot and commits. Afterwards a full
// quiesce must find zero leaked nodes and zero leaked row latches.
TEST(MvccSnapshotEviction, LongHeldSnapshotEvictedUnderPressure) {
  constexpr uint64_t kKeys = 64;
  constexpr uint32_t kPayload = 64;

  Database db;
  Schema schema({{"v", kPayload, 0}});
  const uint32_t table = db.CreateTable("t", std::move(schema));
  for (uint64_t k = 0; k < kKeys; k++) {
    char payload[kPayload] = {};
    db.LoadRow(table, k, payload);
  }

  SiloLrv cc(&db, 2);
  ASSERT_TRUE(cc.EnableMvcc());
  mv::VersionStore* vs = cc.version_store();
  TxnStats stats[2];
  cc.AttachThread(0, &stats[0]);
  cc.AttachThread(1, &stats[1]);
  vs->SetLiveBytesCeiling(2048);
  EXPECT_EQ(vs->LiveBytesCeiling(), 2048u);

  // Reader freezes its snapshot with the first point read and holds it.
  char buf[kPayload];
  TxnDescriptor* reader = cc.BeginReadOnly(1);
  ASSERT_TRUE(cc.Read(reader, table, 0, buf).ok());
  ASSERT_NE(reader->snapshot_ts, 0u);
  EXPECT_GT(vs->OldestSnapshotAgeNanos(), 0u);

  // Sustained writes: chains behind the pinned snapshot cannot prune, so
  // live bytes cross the ceiling and the pressure check (piggybacked on the
  // committer's periodic floor refresh) evicts the oldest pinned snapshot.
  Rng rng(7);
  auto write_burst = [&] {
    for (int i = 0; i < 400; i++) {
      TxnDescriptor* t = cc.Begin(0);
      const uint64_t v = rng.Next();
      ASSERT_TRUE(cc.Update(t, table, i % kKeys, &v, sizeof(v), 0).ok());
      ASSERT_TRUE(cc.Commit(t).ok());
    }
  };
  write_burst();
  EXPECT_EQ(vs->Telemetry().snapshots_evicted, 1u);
  EXPECT_TRUE(vs->SnapshotEvicted(1));
  // The sentinel no longer pins the floor: only the watermark does.
  const uint64_t fresh = vs->AcquireSnapshot(0);
  EXPECT_EQ(vs->MinSnapshot(), fresh);
  vs->ReleaseSnapshot(0);

  // The victim's next read observes the eviction and aborts with the
  // dedicated cause, counted exactly once and summing into `aborts`.
  EXPECT_FALSE(cc.Read(reader, table, 1, buf).ok());
  cc.Abort(reader);
  EXPECT_EQ(stats[1].abort_snapshot_evicted, 1u);
  EXPECT_EQ(stats[1].aborts, 1u);
  EXPECT_EQ(stats[1].aborts, stats[1].AbortCauseSum());

  // A retry acquires a fresh snapshot near the watermark and commits on the
  // trivial no-validation path.
  TxnDescriptor* retry = cc.BeginReadOnly(1);
  ASSERT_TRUE(cc.Read(retry, table, 0, buf).ok());
  ASSERT_TRUE(cc.Commit(retry).ok());
  EXPECT_EQ(stats[1].mv_snapshot_txns, 1u);
  EXPECT_EQ(stats[1].commits, 1u);

  // Commit-path detection: evict BETWEEN the victim's last read and its
  // commit — the mandatory final check catches it.
  TxnDescriptor* held = cc.BeginReadOnly(1);
  ASSERT_TRUE(cc.Read(held, table, 0, buf).ok());
  write_burst();
  EXPECT_EQ(vs->Telemetry().snapshots_evicted, 2u);
  EXPECT_FALSE(cc.Commit(held).ok());
  EXPECT_EQ(stats[1].abort_snapshot_evicted, 2u);
  EXPECT_EQ(stats[1].aborts, stats[1].AbortCauseSum());

  // Zero leaks after a full quiesce; no row latch was left held.
  vs->GcQuiesce(&db);
  EXPECT_EQ(vs->Telemetry().live_nodes(), 0u);
  EXPECT_EQ(vs->Telemetry().live_bytes(), 0u);
  EXPECT_EQ(vs->Telemetry().gc_locked_rows, 0u);
}

// With no ceiling (the default) a held snapshot is never evicted: chains
// grow unboundedly but the pin is honored — the pre-PR contract.
TEST(MvccSnapshotEviction, NoCeilingNeverEvicts) {
  constexpr uint32_t kPayload = 64;
  Database db;
  Schema schema({{"v", kPayload, 0}});
  const uint32_t table = db.CreateTable("t", std::move(schema));
  char payload[kPayload] = {};
  db.LoadRow(table, 0, payload);

  SiloLrv cc(&db, 2);
  ASSERT_TRUE(cc.EnableMvcc());
  mv::VersionStore* vs = cc.version_store();
  TxnStats stats[2];
  cc.AttachThread(0, &stats[0]);
  cc.AttachThread(1, &stats[1]);

  char buf[kPayload];
  TxnDescriptor* reader = cc.BeginReadOnly(1);
  ASSERT_TRUE(cc.Read(reader, table, 0, buf).ok());
  for (int i = 0; i < 400; i++) {
    TxnDescriptor* t = cc.Begin(0);
    const uint64_t v = static_cast<uint64_t>(i);
    ASSERT_TRUE(cc.Update(t, table, 0, &v, sizeof(v), 0).ok());
    ASSERT_TRUE(cc.Commit(t).ok());
  }
  EXPECT_EQ(vs->Telemetry().snapshots_evicted, 0u);
  ASSERT_TRUE(cc.Read(reader, table, 0, buf).ok());
  uint64_t got = ~0ULL;
  std::memcpy(&got, buf, sizeof(got));
  EXPECT_EQ(got, 0u);  // still the pre-burst value at the frozen snapshot
  ASSERT_TRUE(cc.Commit(reader).ok());

  vs->GcQuiesce(&db);
  EXPECT_EQ(vs->Telemetry().live_nodes(), 0u);
}

// --------------------------------------------------------------------------
// Prometheus streamer
// --------------------------------------------------------------------------

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(PrometheusStreamer, DrainsRingsIncrementallyAndCountsDrops) {
  obs::ObsOptions oo;
  oo.ring_capacity = 8;
  oo.sample_period = 1;
  oo.max_workers = 2;
  obs::FlightRecorder rec(oo);

  // Worker rings allocate lazily at the first transaction.
  rec.BeginTxn(0, 100, 1);
  rec.Emit(0, obs::EventType::kVersionGc, 0, 120, 0, /*nodes=*/5, 0);
  rec.EmitService(obs::EventType::kWalFlush, 0, 100, 10, /*bytes=*/4096, 1);
  rec.EmitService(obs::EventType::kRangePublish, 0, 110, 0, 2, 8);

  const std::string path =
      std::string(::testing::TempDir()) + "/rocc_prom_stream_test.prom";
  obs::PrometheusStreamer::Options so;
  so.path = path;
  so.labels = "test=\"streamer\"";
  obs::PrometheusStreamer streamer(so, &rec);

  ASSERT_TRUE(streamer.CollectOnce());
  obs::StreamCounters c = streamer.counters();
  EXPECT_EQ(c.wal_flushes, 1u);
  EXPECT_EQ(c.wal_flush_bytes, 4096u);
  EXPECT_EQ(c.range_publishes, 1u);
  EXPECT_EQ(c.version_gc_passes, 1u);
  EXPECT_EQ(c.version_gc_nodes, 5u);
  EXPECT_EQ(c.events_dropped, 0u);

  // Incremental: a second collection only folds in the new events.
  rec.EmitService(obs::EventType::kWalFlush, 0, 200, 5, 1000, 2);
  ASSERT_TRUE(streamer.CollectOnce());
  c = streamer.counters();
  EXPECT_EQ(c.wal_flushes, 2u);
  EXPECT_EQ(c.wal_flush_bytes, 5096u);
  EXPECT_EQ(c.range_publishes, 1u);

  // Stats snapshot and mv gauges are embedded in the rewrite.
  TxnStats stats;
  stats.commits = 7;
  streamer.UpdateStats(stats);
  streamer.SetMvGaugeSource([] {
    obs::MvGauges g;
    g.live_nodes = 3;
    g.live_bytes = 96;
    return g;
  });
  ASSERT_TRUE(streamer.CollectOnce());
  const std::string text = ReadFileOrEmpty(path);
  EXPECT_NE(text.find("rocc_txn_commits_total{test=\"streamer\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("rocc_stream_wal_flushes_total{test=\"streamer\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rocc_mv_live_versions{test=\"streamer\"} 3"),
            std::string::npos);

  // Overrun between collections: a capacity-8 ring fed 20 events keeps the
  // newest 8; the other 12 must be counted as dropped, not silently lost.
  for (int i = 0; i < 20; i++) {
    rec.EmitService(obs::EventType::kRangeSplit, 0, 300 + i, 0, 1, 1);
  }
  ASSERT_TRUE(streamer.CollectOnce());
  c = streamer.counters();
  EXPECT_EQ(c.range_splits, 8u);
  EXPECT_EQ(c.events_dropped, 12u);
  std::remove(path.c_str());
}

// Sampled per-txn mv counters also reach the streamer via worker rings.
TEST(PrometheusStreamer, AccountsSampledMvEvents) {
  obs::ObsOptions oo;
  oo.ring_capacity = 64;
  oo.sample_period = 1;
  oo.max_workers = 2;
  obs::FlightRecorder rec(oo);
  rec.BeginTxn(0, 100, 1);
  rec.Emit(0, obs::EventType::kVersionInstall, 0, 110, 0, /*nodes=*/2, 0);
  rec.Emit(0, obs::EventType::kSnapshotScan, 0, 120, 40, /*records=*/100,
           /*chain_reads=*/7);

  const std::string path =
      std::string(::testing::TempDir()) + "/rocc_prom_stream_mv.prom";
  obs::PrometheusStreamer streamer({path, "", 1000}, &rec);
  ASSERT_TRUE(streamer.CollectOnce());
  const obs::StreamCounters c = streamer.counters();
  EXPECT_EQ(c.version_installs, 1u);
  EXPECT_EQ(c.version_nodes, 2u);
  EXPECT_EQ(c.snapshot_scans, 1u);
  EXPECT_EQ(c.snapshot_records, 100u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rocc
