// Build smoke test: the library links and a trivial end-to-end transaction
// commits under every protocol.

#include <gtest/gtest.h>

#include "harness/runner.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

TEST(Smoke, CommitOneTxnPerProtocol) {
  for (const char* proto : {"rocc", "lrv", "gwv", "mvrcc", "2pl"}) {
    Database db;
    YcsbOptions opts;
    opts.num_rows = 1000;
    opts.scan_txn_fraction = 0.5;
    opts.scan_length = 20;
    YcsbWorkload workload(opts);
    workload.Load(&db);
    auto cc = CreateProtocol(proto, &db, workload, 1);
    Rng rng(42);
    for (int i = 0; i < 50; i++) {
      EXPECT_TRUE(workload.RunTxn(cc.get(), 0, rng).ok()) << proto;
    }
  }
}

}  // namespace
}  // namespace rocc
