// Observability subsystem tests: histogram bucket math and the new stddev /
// extended-percentile surface, the lock-free trace ring (wraparound, sampling
// determinism), both exporters' output formats, and an end-to-end fiber-mode
// run asserting the recorder captures every commit-pipeline phase.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "obs/chrome_trace.h"
#include "obs/obs.h"
#include "obs/prometheus.h"
#include "workload/ycsb.h"

namespace rocc {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BucketBoundaryRoundTrip) {
  // Every bucket's lower bound must map back into that bucket, and the value
  // one below it into an earlier bucket — the exporters' `le` bounds rely on
  // BucketLowerBound(b + 1) being the exclusive upper edge of bucket b.
  for (size_t b = 1; b < Histogram::kNumBuckets; b++) {
    const uint64_t lo = Histogram::BucketLowerBound(b);
    if (lo <= Histogram::BucketLowerBound(b - 1)) continue;  // clamped tail
    EXPECT_EQ(Histogram::BucketIndex(lo), b) << "lower bound of bucket " << b;
    EXPECT_LT(Histogram::BucketIndex(lo - 1), b) << "below bucket " << b;
  }
}

TEST(Histogram, PercentileMonotoneAndInterpolated) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; v++) h.Record(v);
  uint64_t prev = 0;
  for (double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  // Interpolation keeps percentiles near their exact rank despite the ~19%
  // bucket width.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 5000.0, 5000.0 * 0.25);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 9900.0, 9900.0 * 0.25);
  EXPECT_EQ(h.Percentile(100), h.max());
}

TEST(Histogram, MergeIsExact) {
  Histogram a, b, whole;
  for (uint64_t v = 1; v <= 2000; v++) {
    (v % 2 == 0 ? a : b).Record(v * 37);
    whole.Record(v * 37);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.sum(), whole.sum());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  EXPECT_DOUBLE_EQ(a.Stddev(), whole.Stddev());
  for (double p : {50.0, 95.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), whole.Percentile(p)) << "p" << p;
  }
}

TEST(Histogram, StddevMatchesClosedForm) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Stddev(), 0.0);
  h.Record(100);
  EXPECT_DOUBLE_EQ(h.Stddev(), 0.0);  // one sample: no spread
  Histogram two;
  two.Record(100);
  two.Record(300);
  EXPECT_NEAR(two.Stddev(), 100.0, 1e-9);  // population stddev of {100, 300}
  Histogram uniform;
  for (uint64_t v = 1; v <= 1000; v++) uniform.Record(v);
  // Population stddev of 1..N = sqrt((N^2 - 1) / 12).
  EXPECT_NEAR(uniform.Stddev(), 288.67, 0.1);
}

TEST(Report, LatencySummarySkipsEmptyAndReportsPhases) {
  TxnStats s;
  for (uint64_t v = 1; v <= 100; v++) s.latency_all.Record(v * 1000);
  ReportTable t = LatencySummaryTable(s);
  ASSERT_EQ(t.rows().size(), 1u);  // scan/durable/phases all empty
  EXPECT_EQ(t.rows()[0][0], "all");
  s.phase_execute.Record(5000);
  s.phase_validate.Record(2000);
  ReportTable t2 = LatencySummaryTable(s);
  ASSERT_EQ(t2.rows().size(), 3u);
  EXPECT_EQ(t2.rows()[1][0], "phase_execute");
  EXPECT_EQ(t2.rows()[2][0], "phase_validate");
}

TEST(Report, AbortBreakdownUsesSharedNames) {
  const std::vector<std::string> headers = AbortBreakdownHeaders();
  ASSERT_EQ(headers.size(), kNumAbortCauses);
  EXPECT_EQ(headers.front(), "abort_dirty_read");
  TxnStats s;
  s.abort_scan_conflict = 7;
  const std::vector<std::string> cells = AbortBreakdownCells(s);
  ASSERT_EQ(cells.size(), headers.size());
  for (size_t i = 0; i < headers.size(); i++) {
    EXPECT_EQ(cells[i], headers[i] == "abort_scan_conflict" ? "7" : "0");
  }
}

// ---------------------------------------------------------------- TraceRing

TEST(TraceRing, WraparoundKeepsNewestWindow) {
  obs::TraceRing ring;
  ring.Init(8);  // power of two already
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 20; i++) {
    ring.Push({/*ts_ns=*/i + 1, 0, /*a=*/i, 0, 0,
               static_cast<uint8_t>(obs::EventType::kTxnBegin), 0});
  }
  EXPECT_EQ(ring.head(), 20u);
  std::vector<obs::TraceEvent> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 8u);  // live window = last `capacity` events
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(out[i].a, 12 + i) << "oldest-first window of the last 8";
  }
}

TEST(TraceRing, PushWithoutInitDrops) {
  obs::TraceRing ring;
  ring.Push({1, 0, 0, 0, 0, 0, 0});
  EXPECT_EQ(ring.head(), 0u);
  std::vector<obs::TraceEvent> out;
  ring.Snapshot(&out);
  EXPECT_TRUE(out.empty());
}

TEST(FlightRecorder, SamplingIsDeterministic) {
  obs::ObsOptions oo;
  oo.sample_period = 4;
  oo.ring_capacity = 64;
  oo.max_workers = 2;
  obs::FlightRecorder rec(oo);
  // Countdown starts at 1: attempt 0 sampled, then every 4th after that —
  // a fixed pattern, independent of any RNG.
  std::vector<bool> sampled;
  for (int i = 0; i < 12; i++) sampled.push_back(rec.BeginTxn(0, 100 + i, i));
  for (int i = 0; i < 12; i++) {
    EXPECT_EQ(sampled[i], i % 4 == 0) << "attempt " << i;
  }
  // Per-worker state: worker 1's countdown is independent of worker 0's.
  EXPECT_TRUE(rec.BeginTxn(1, 200, 0));
  EXPECT_FALSE(rec.BeginTxn(1, 201, 1));
  // Each sampled attempt recorded exactly one kTxnBegin event.
  EXPECT_EQ(rec.worker_ring(0).head(), 3u);
  EXPECT_EQ(rec.worker_ring(1).head(), 1u);
}

TEST(FlightRecorder, SampledEventsGateEmission) {
  obs::ObsOptions oo;
  oo.sample_period = 2;
  oo.max_workers = 1;
  obs::FlightRecorder rec(oo);
  obs::FlightRecorder* prev = obs::SetRecorder(&rec);
  EXPECT_TRUE(obs::Enabled());
  rec.BeginTxn(0, 10, 1);  // sampled
  obs::SpanEvent(0, obs::Phase::kExecute, 10, 20, 1);
  rec.BeginTxn(0, 30, 2);  // not sampled
  obs::SpanEvent(0, obs::Phase::kExecute, 30, 40, 2);
  obs::SetRecorder(prev);
  std::vector<obs::TraceEvent> out;
  rec.worker_ring(0).Snapshot(&out);
  // Only the sampled attempt leaves a trace: its begin + its span. The
  // unsampled attempt records neither a begin nor a span.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].type, static_cast<uint8_t>(obs::EventType::kSpan));
  EXPECT_EQ(out[1].a, 1u);
}

// ---------------------------------------------------------------- Exporters

TEST(Exporters, ChromeTraceWritesLoadableJson) {
  obs::ObsOptions oo;
  oo.sample_period = 1;
  oo.max_workers = 2;
  obs::FlightRecorder rec(oo);
  rec.BeginTxn(0, 1000, 42);
  rec.Emit(0, obs::EventType::kSpan,
           static_cast<uint8_t>(obs::Phase::kValidate), 1500, 250, 42, 0);
  rec.Emit(0, obs::EventType::kTxnAbort,
           static_cast<uint8_t>(AbortReason::kScanConflict), 2000, 0, 42, 7);
  rec.EmitService(obs::EventType::kWalFlush, 0, 1200, 300, 4096, 3);

  const std::string path = ::testing::TempDir() + "/trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(rec, path.c_str()));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"validate\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"scan_conflict\""), std::string::npos);
  EXPECT_NE(json.find("\"range\":7"), std::string::npos);
  EXPECT_NE(json.find("wal_flush"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"control\""), std::string::npos);
  // Structurally valid JSON: balanced braces/brackets outside strings.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); i++) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') i++;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') depth++;
    else if (ch == '}' || ch == ']') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

TEST(Exporters, PrometheusSnapshotFormat) {
  TxnStats s;
  s.commits = 1000;
  s.abort_scan_conflict = 5;
  s.aborts = 5;
  for (uint64_t v = 1; v <= 100; v++) s.latency_all.Record(v * 10000);
  s.phase_validate.Record(123456);
  const std::string text = obs::PrometheusSnapshot(s, "protocol=\"rocc\"");
  EXPECT_NE(text.find("# TYPE rocc_txn_commits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rocc_txn_commits_total{protocol=\"rocc\"} 1000"),
            std::string::npos);
  EXPECT_NE(text.find("rocc_txn_aborts_total{protocol=\"rocc\","
                      "reason=\"scan_conflict\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rocc_txn_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("rocc_txn_latency_seconds_count{protocol=\"rocc\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 100"), std::string::npos);
  EXPECT_NE(text.find("rocc_phase_validate_seconds"), std::string::npos);
  // Empty histograms are omitted entirely.
  EXPECT_EQ(text.find("rocc_txn_scan_latency_seconds"), std::string::npos);

  // Cumulative le buckets: counts never decrease along the bucket list.
  std::istringstream lines(text);
  std::string line;
  uint64_t prev = 0;
  bool in_latency = false;
  while (std::getline(lines, line)) {
    if (line.rfind("rocc_txn_latency_seconds_bucket", 0) == 0) {
      in_latency = true;
      const size_t sp = line.find_last_of(' ');
      const uint64_t v = std::strtoull(line.c_str() + sp + 1, nullptr, 10);
      EXPECT_GE(v, prev) << line;
      prev = v;
    } else if (in_latency) {
      break;
    }
  }
  EXPECT_EQ(prev, 100u);  // +Inf bucket equals count
}

// --------------------------------------------------------------- End-to-end

TEST(EndToEnd, FiberRunRecordsEveryCommitPhase) {
  obs::ObsOptions oo;
  oo.sample_period = 1;  // trace everything: the run is tiny
  oo.ring_capacity = 1u << 12;
  oo.max_workers = 8;
  auto rec = std::make_unique<obs::FlightRecorder>(oo);
  obs::FlightRecorder* prev = obs::SetRecorder(rec.get());

  Database db;
  YcsbOptions opts;
  opts.num_rows = 20000;
  opts.scan_length = 50;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol("rocc", &db, wl, 4);
  RunOptions run;
  run.num_threads = 4;
  run.txns_per_thread = 300;
  run.warmup_txns_per_thread = 20;
  run.mode = ExecMode::kFibers;
  const RunResult r = RunExperiment(cc.get(), &wl, run);
  obs::SetRecorder(prev);

  EXPECT_GT(r.stats.commits, 0u);
  // Phase histograms mirror the trace spans and merge through TxnStats.
  EXPECT_EQ(r.stats.phase_execute.count(), r.stats.commits);
  EXPECT_EQ(r.stats.phase_validate.count(), r.stats.commits);
  EXPECT_EQ(r.stats.phase_apply.count(), r.stats.commits);

  std::map<uint8_t, uint64_t> span_count;
  uint64_t begins = 0, commits = 0;
  rec->ForEachEvent([&](const obs::TraceEvent& e) {
    switch (static_cast<obs::EventType>(e.type)) {
      case obs::EventType::kSpan: span_count[e.detail]++; break;
      case obs::EventType::kTxnBegin: begins++; break;
      case obs::EventType::kTxnCommit: commits++; break;
      default: break;
    }
  });
  EXPECT_GT(begins, 0u);
  EXPECT_GT(commits, 0u);
  EXPECT_GT(span_count[static_cast<uint8_t>(obs::Phase::kExecute)], 0u);
  EXPECT_GT(span_count[static_cast<uint8_t>(obs::Phase::kValidate)], 0u);
  EXPECT_GT(span_count[static_cast<uint8_t>(obs::Phase::kWriteApply)], 0u);

  // The trace round-trips through the Chrome exporter with per-fiber tracks.
  const std::string path = ::testing::TempDir() + "/e2e_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(*rec, path.c_str()));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"name\":\"worker 3\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"name\":\"execute\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(EndToEnd, DisabledRecorderLeavesNoTrace) {
  ASSERT_FALSE(obs::Enabled());
  Database db;
  YcsbOptions opts;
  opts.num_rows = 5000;
  YcsbWorkload wl(opts);
  wl.Load(&db);
  auto cc = CreateProtocol("rocc", &db, wl, 2);
  RunOptions run;
  run.num_threads = 2;
  run.txns_per_thread = 100;
  run.warmup_txns_per_thread = 10;
  const RunResult r = RunExperiment(cc.get(), &wl, run);
  EXPECT_GT(r.stats.commits, 0u);
  // Obs-off runs must not populate the phase histograms.
  EXPECT_EQ(r.stats.phase_execute.count(), 0u);
  EXPECT_EQ(r.stats.phase_validate.count(), 0u);
  EXPECT_EQ(r.stats.phase_apply.count(), 0u);
  EXPECT_EQ(r.stats.phase_log_wait.count(), 0u);
}

}  // namespace
}  // namespace rocc
