// Randomized differential testing.
//
// 1. Single-threaded oracle: the same seeded operation stream applied
//    through each protocol must produce exactly the state that a plain
//    std::map reference model produces, and every scan result must match
//    the model's view at that moment.
// 2. Cross-protocol hash: the final table contents must be identical across
//    all protocols for the same stream (single-threaded, so no schedule
//    divergence).
// 3. Cover-ablation equivalence: ROCC with and without the cover fast path
//    must accept/reject exactly the same single-threaded histories.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cc/hyper_gwv.h"
#include "cc/mvrcc.h"
#include "cc/silo_lrv.h"
#include "cc/two_phase_locking.h"
#include "cc/txn_handle.h"
#include "common/rng.h"
#include "core/rocc.h"

namespace rocc {
namespace {

constexpr uint64_t kKeySpace = 2000;
constexpr uint64_t kInitialKeys = 800;

std::unique_ptr<ConcurrencyControl> MakeProtocol(const std::string& name,
                                                 Database* db, uint32_t table,
                                                 bool cover_fast_path = true) {
  if (name == "rocc" || name == "mvrcc") {
    RoccOptions opts;
    RangeConfig rc;
    rc.table_id = table;
    rc.key_max = kKeySpace;
    rc.num_ranges = 16;
    rc.ring_capacity = 512;
    opts.tables = {rc};
    opts.cover_fast_path = cover_fast_path;
    if (name == "mvrcc") return std::make_unique<Mvrcc>(db, 2, std::move(opts));
    return std::make_unique<Rocc>(db, 2, std::move(opts));
  }
  if (name == "lrv") return std::make_unique<SiloLrv>(db, 2);
  if (name == "gwv") return std::make_unique<HyperGwv>(db, 2);
  return std::make_unique<TplNoWait>(db, 2);
}

/// Collects (key, value) pairs from a scan for comparison with the model.
class CollectScan : public ScanConsumer {
 public:
  bool OnRecord(uint64_t key, const char* payload) override {
    uint64_t v;
    std::memcpy(&v, payload, sizeof(v));
    rows.emplace_back(key, v);
    return true;
  }
  std::vector<std::pair<uint64_t, uint64_t>> rows;
};

/// Applies `num_txns` seeded random transactions through the protocol while
/// mirroring them in a std::map; checks reads and scans against the model.
/// Returns the model for final-state comparison.
std::map<uint64_t, uint64_t> RunDifferential(ConcurrencyControl* cc,
                                             uint32_t table, uint64_t seed,
                                             int num_txns, bool* ok) {
  std::map<uint64_t, uint64_t> model;
  {
    // The table was loaded with kInitialKeys even keys = value 2*key.
    for (uint64_t k = 0; k < kInitialKeys; k++) model[k * 2] = k * 4;
  }
  Rng rng(seed);
  *ok = true;

  for (int i = 0; i < num_txns && *ok; i++) {
    TxnHandle txn(cc, 0);
    std::map<uint64_t, uint64_t> staged = model;  // model of txn-local state
    std::vector<uint64_t> deleted_in_txn;
    const int ops = 1 + static_cast<int>(rng.Uniform(6));
    bool aborted = false;
    for (int op = 0; op < ops && !aborted; op++) {
      const uint64_t key = rng.Uniform(kKeySpace);
      switch (rng.Uniform(5)) {
        case 0: {  // read
          uint64_t v = 0;
          const Status st = txn.Read(table, key, &v);
          const auto it = staged.find(key);
          if (it == staged.end()) {
            if (!st.not_found()) *ok = false;
          } else if (!st.ok() || v != it->second) {
            *ok = false;
          }
          break;
        }
        case 1: {  // update (blind)
          const uint64_t v = rng.Next() >> 8;
          const Status st = txn.Update(table, key, &v, sizeof(v), 0);
          if (staged.count(key) == 0) {
            if (!st.not_found()) *ok = false;
          } else if (st.ok()) {
            staged[key] = v;
          } else {
            *ok = false;
          }
          break;
        }
        case 2: {  // insert
          const uint64_t v = rng.Next() >> 8;
          const Status st = txn.Insert(table, key, &v);
          const bool self_deleted =
              std::find(deleted_in_txn.begin(), deleted_in_txn.end(), key) !=
              deleted_in_txn.end();
          if (staged.count(key) != 0) {
            if (st.ok()) *ok = false;  // duplicate must be rejected
          } else if (self_deleted) {
            // Documented limitation: delete-then-reinsert of one key within
            // a single transaction is rejected. The model stays unchanged.
            if (st.ok()) staged[key] = v;  // (2PL path may abort instead)
            if (st.aborted()) aborted = true;
          } else if (st.ok()) {
            staged[key] = v;
          } else if (st.aborted()) {
            aborted = true;  // 2PL reports duplicates as aborts
          } else {
            *ok = false;
          }
          break;
        }
        case 3: {  // delete
          const Status st = txn.Remove(table, key);
          if (staged.count(key) == 0) {
            if (!st.not_found()) *ok = false;
          } else if (st.ok()) {
            staged.erase(key);
            deleted_in_txn.push_back(key);
          } else {
            *ok = false;
          }
          break;
        }
        default: {  // bounded scan, compared against the staged model
          const uint64_t start = rng.Uniform(kKeySpace);
          const uint64_t len = 1 + rng.Uniform(64);
          CollectScan scan;
          const Status st = txn.Scan(table, start, start + len, 0, &scan);
          if (!st.ok()) {
            *ok = false;
            break;
          }
          std::vector<std::pair<uint64_t, uint64_t>> expect;
          for (auto it = staged.lower_bound(start);
               it != staged.end() && it->first < start + len; ++it) {
            expect.emplace_back(it->first, it->second);
          }
          if (scan.rows != expect) *ok = false;
          break;
        }
      }
    }
    if (aborted) continue;  // model unchanged (txn auto-aborts via handle)
    // Commit with a coin flip; aborts must leave the model untouched.
    if (rng.Uniform(8) == 0) {
      txn.Abort();
    } else {
      if (!txn.Commit().ok()) {
        *ok = false;  // single-threaded commits can never conflict
      } else {
        model = std::move(staged);
      }
    }
  }
  return model;
}

void LoadTable(Database* db, uint32_t* table) {
  *table = db->CreateTable("t", Schema({{"v", 8, 0}}));
  for (uint64_t k = 0; k < kInitialKeys; k++) {
    const uint64_t v = k * 4;
    db->LoadRow(*table, k * 2, &v);
  }
}

/// Reads the final visible table state through the raw index.
std::map<uint64_t, uint64_t> DumpTable(Database* db, uint32_t table) {
  std::map<uint64_t, uint64_t> out;
  db->GetIndex(table)->ScanFrom(0, [&](uint64_t key, Row* row) {
    if (!row->IsAbsent()) {
      uint64_t v;
      std::memcpy(&v, row->Data(), sizeof(v));
      out[key] = v;
    }
    return true;
  });
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialTest, MatchesReferenceModel) {
  for (uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    Database db;
    uint32_t table = 0;
    LoadTable(&db, &table);
    auto cc = MakeProtocol(GetParam(), &db, table);
    bool ok = true;
    const auto model = RunDifferential(cc.get(), table, seed, 800, &ok);
    EXPECT_TRUE(ok) << GetParam() << " seed " << seed;
    EXPECT_EQ(DumpTable(&db, table), model) << GetParam() << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DifferentialTest,
                         ::testing::Values("rocc", "lrv", "gwv", "mvrcc", "2pl"),
                         [](const auto& pinfo) { return pinfo.param; });

TEST(DifferentialCross, AllProtocolsConvergeToSameState) {
  std::map<uint64_t, uint64_t> reference;
  bool first = true;
  for (const std::string proto : {"rocc", "lrv", "gwv", "mvrcc", "2pl"}) {
    Database db;
    uint32_t table = 0;
    LoadTable(&db, &table);
    auto cc = MakeProtocol(proto, &db, table);
    bool ok = true;
    RunDifferential(cc.get(), table, /*seed=*/77, 600, &ok);
    ASSERT_TRUE(ok) << proto;
    const auto state = DumpTable(&db, table);
    if (first) {
      reference = state;
      first = false;
    } else {
      EXPECT_EQ(state, reference) << proto;
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(DifferentialCross, CoverAblationIsSemanticallyIdentical) {
  std::map<uint64_t, uint64_t> with_cover, without_cover;
  for (bool cover : {true, false}) {
    Database db;
    uint32_t table = 0;
    LoadTable(&db, &table);
    auto cc = MakeProtocol("rocc", &db, table, cover);
    bool ok = true;
    RunDifferential(cc.get(), table, /*seed=*/99, 600, &ok);
    ASSERT_TRUE(ok) << "cover=" << cover;
    (cover ? with_cover : without_cover) = DumpTable(&db, table);
  }
  EXPECT_EQ(with_cover, without_cover);
}

}  // namespace
}  // namespace rocc
