// Flash sale: the paper's motivating scenario (§I). A payment system takes
// massive short payment transactions while a fraud-detection job repeatedly
// scans recent payment ranges — a composite OLTP + bulk processing workload.
//
// Payments append to a per-merchant region of an `orders` table and update
// account balances; the fraud scanner sweeps a merchant's recent orders
// looking for suspicious amounts, serializably, while payments keep flowing.
//
//   ./build/examples/flash_sale [--payments N] [--protocol rocc|lrv|gwv]

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/config.h"
#include "harness/runner.h"
#include "workload/workload.h"

using namespace rocc;  // NOLINT: example brevity

namespace {

constexpr uint32_t kMerchants = 8;
constexpr uint64_t kAccounts = 20'000;
constexpr uint64_t kOrdersPerMerchant = 1 << 20;  // key region per merchant

struct OrderRow {
  uint64_t account;
  uint64_t amount_cents;
  uint64_t flagged;
};

struct AccountRow {
  uint64_t balance_cents;
};

uint64_t OrderKey(uint32_t merchant, uint64_t seq) {
  return merchant * kOrdersPerMerchant + seq;
}

/// Flags orders above a fraud threshold while summing merchant revenue.
class FraudScan : public ScanConsumer {
 public:
  explicit FraudScan(uint64_t threshold) : threshold_(threshold) {}
  bool OnRecord(uint64_t key, const char* payload) override {
    OrderRow order;
    std::memcpy(&order, payload, sizeof(order));
    revenue_ += order.amount_cents;
    if (order.amount_cents > threshold_) suspicious_.push_back(key);
    return true;
  }
  uint64_t revenue() const { return revenue_; }
  const std::vector<uint64_t>& suspicious() const { return suspicious_; }

 private:
  uint64_t threshold_;
  uint64_t revenue_ = 0;
  std::vector<uint64_t> suspicious_;
};

}  // namespace

int main(int argc, char** argv) {
  Config cfg(argc, argv);
  const uint64_t payments = cfg.GetInt("payments", 20'000);
  const std::string protocol = cfg.GetString("protocol", "rocc");

  Database db;
  const uint32_t orders =
      db.CreateTable("orders", Schema({{"order", sizeof(OrderRow), 0}}));
  const uint32_t accounts_tbl =
      db.CreateTable("accounts", Schema({{"account", sizeof(AccountRow), 0}}));

  for (uint64_t a = 0; a < kAccounts; a++) {
    AccountRow row{1'000'000};
    db.LoadRow(accounts_tbl, a, &row);
  }

  // Range layout: orders are scanned per merchant; accounts only point-read.
  RoccOptions rocc_opts;
  RangeConfig order_ranges;
  order_ranges.table_id = orders;
  order_ranges.key_min = 0;
  order_ranges.key_max = kMerchants * kOrdersPerMerchant;
  order_ranges.num_ranges = kMerchants * 16;
  order_ranges.ring_capacity = 4096;
  rocc_opts.tables = {order_ranges};

  std::unique_ptr<ConcurrencyControl> cc;
  if (protocol == "rocc") {
    cc = std::make_unique<Rocc>(&db, 4, std::move(rocc_opts));
  } else {
    // Baselines, for comparing behaviour on the same scenario.
    Database* dbp = &db;
    class Dummy : public Workload {  // minimal adapter for CreateProtocol
     public:
      explicit Dummy(RoccOptions o) : opts_(std::move(o)) {}
      const char* name() const override { return "flash-sale"; }
      void Load(Database*) override {}
      Status RunTxn(ConcurrencyControl*, uint32_t, Rng&) override {
        return Status::Ok();
      }
      std::vector<RangeConfig> RangeConfigs(uint32_t, uint32_t) const override {
        return opts_.tables;
      }
      RoccOptions opts_;
    } dummy(rocc_opts);
    cc = CreateProtocol(protocol, dbp, dummy, 4);
  }

  std::atomic<uint64_t> committed_payments{0};
  std::atomic<uint64_t> committed_scans{0};
  std::atomic<uint64_t> flagged_orders{0};
  std::vector<std::atomic<uint64_t>> next_order_seq(kMerchants);
  std::atomic<bool> stop{false};

  // Payment workers: insert an order, debit the buyer.
  auto payment_worker = [&](uint32_t tid) {
    Rng rng(tid + 1);
    while (committed_payments.load() < payments) {
      const uint32_t merchant = static_cast<uint32_t>(rng.Uniform(kMerchants));
      const uint64_t account = rng.Uniform(kAccounts);
      const uint64_t amount = 100 + rng.Uniform(50'000);

      Status st = RunWithRetries(
          cc.get(), tid, /*is_scan_txn=*/false,
          [&] {
            TxnDescriptor* t = cc->Begin(tid);
            OrderRow order{account, amount, 0};
            const uint64_t seq =
                next_order_seq[merchant].fetch_add(1, std::memory_order_relaxed);
            Status s = cc->Insert(t, orders, OrderKey(merchant, seq), &order);
            AccountRow acct;
            if (s.ok()) s = cc->Read(t, accounts_tbl, account, &acct);
            if (s.ok()) {
              acct.balance_cents -= amount;
              s = cc->Update(t, accounts_tbl, account, &acct, sizeof(acct), 0);
            }
            if (!s.ok()) {
              cc->Abort(t);
              return Status::Aborted();
            }
            return cc->Commit(t);
          },
          rng);
      if (st.ok()) committed_payments.fetch_add(1);
    }
  };

  // Fraud scanner: serializable sweep over one merchant's latest orders,
  // flagging the suspicious ones inside the same transaction.
  auto fraud_worker = [&](uint32_t tid) {
    Rng rng(100 + tid);
    while (!stop.load()) {
      const uint32_t merchant = static_cast<uint32_t>(rng.Uniform(kMerchants));
      const uint64_t hi = next_order_seq[merchant].load(std::memory_order_relaxed);
      const uint64_t lo = hi > 256 ? hi - 256 : 0;

      TxnDescriptor* t = cc->Begin(tid);
      t->is_scan_txn = true;
      FraudScan scan(/*threshold=*/45'000);
      Status s = cc->Scan(t, orders, OrderKey(merchant, lo),
                          OrderKey(merchant, hi), 0, &scan);
      if (s.ok()) {
        for (uint64_t key : scan.suspicious()) {
          OrderRow order;
          if (!cc->Read(t, orders, key, &order).ok()) {
            s = Status::Aborted();
            break;
          }
          order.flagged = 1;
          cc->Update(t, orders, key, &order, sizeof(order), 0);
        }
      }
      if (!s.ok()) {
        cc->Abort(t);
        continue;
      }
      if (cc->Commit(t).ok()) {
        committed_scans.fetch_add(1);
        flagged_orders.fetch_add(scan.suspicious().size());
      }
    }
  };

  std::vector<std::thread> workers;
  for (uint32_t tid = 0; tid < 3; tid++) workers.emplace_back(payment_worker, tid);
  workers.emplace_back(fraud_worker, 3);

  for (uint32_t tid = 0; tid < 3; tid++) workers[tid].join();
  stop.store(true);
  workers[3].join();

  std::printf("protocol=%s payments=%llu fraud_scans=%llu flagged=%llu\n",
              cc->Name(),
              static_cast<unsigned long long>(committed_payments.load()),
              static_cast<unsigned long long>(committed_scans.load()),
              static_cast<unsigned long long>(flagged_orders.load()));

  // Audit: the order table must contain exactly the committed payments.
  uint64_t order_rows = 0;
  for (uint32_t m = 0; m < kMerchants; m++) {
    db.GetIndex(orders)->ScanRange(OrderKey(m, 0),
                                   OrderKey(m, next_order_seq[m].load()),
                                   [&](uint64_t, Row* row) {
                                     if (!row->IsAbsent()) order_rows++;
                                     return true;
                                   });
  }
  std::printf("audit: %llu order rows in the table (committed inserts only)\n",
              static_cast<unsigned long long>(order_rows));
  return 0;
}
