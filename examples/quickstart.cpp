// Quickstart: create a database, pick the ROCC protocol, and run a few
// transactions — point reads/writes, a serializable key-range scan, and a
// demonstration of conflict detection.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "core/rocc.h"
#include "storage/database.h"

using namespace rocc;  // NOLINT: example brevity

namespace {

/// Sums the `balance` field (first 8 bytes) of every scanned account.
class SumBalances : public ScanConsumer {
 public:
  bool OnRecord(uint64_t key, const char* payload) override {
    (void)key;
    uint64_t balance = 0;
    std::memcpy(&balance, payload, sizeof(balance));
    total_ += balance;
    count_++;
    return true;  // keep scanning
  }
  uint64_t total() const { return total_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t total_ = 0;
  uint64_t count_ = 0;
};

}  // namespace

int main() {
  // ------------------------------------------------------------------
  // 1. Define a table and bulk-load initial data (single-threaded setup).
  // ------------------------------------------------------------------
  Database db;
  const uint32_t accounts =
      db.CreateTable("accounts", Schema({{"balance", 8, 0}, {"flags", 8, 0}}));

  constexpr uint64_t kNumAccounts = 10'000;
  constexpr uint64_t kInitial = 100;
  for (uint64_t id = 0; id < kNumAccounts; id++) {
    struct {
      uint64_t balance;
      uint64_t flags;
    } row{kInitial, 0};
    db.LoadRow(accounts, id, &row);
  }

  // ------------------------------------------------------------------
  // 2. Configure ROCC: partition the key space into logical ranges.
  //    (The paper's rule of thumb: range size within 0.5x-2x of the
  //    typical scan length.)
  // ------------------------------------------------------------------
  RoccOptions options;
  RangeConfig ranges;
  ranges.table_id = accounts;
  ranges.key_min = 0;
  ranges.key_max = kNumAccounts;
  ranges.num_ranges = 64;  // 156 keys per logical range
  ranges.ring_capacity = 1024;
  options.tables = {ranges};

  Rocc cc(&db, /*num_threads=*/2, std::move(options));

  // ------------------------------------------------------------------
  // 3. A read-modify-write transaction: transfer between two accounts.
  // ------------------------------------------------------------------
  {
    TxnDescriptor* txn = cc.Begin(/*thread_id=*/0);
    uint64_t from = 0, to = 0;
    char buf[16];
    cc.Read(txn, accounts, 7, buf);
    std::memcpy(&from, buf, 8);
    cc.Read(txn, accounts, 42, buf);
    std::memcpy(&to, buf, 8);

    from -= 30;
    to += 30;
    cc.Update(txn, accounts, 7, &from, sizeof(from), /*field_offset=*/0);
    cc.Update(txn, accounts, 42, &to, sizeof(to), /*field_offset=*/0);

    const Status st = cc.Commit(txn);
    std::printf("transfer txn: %s\n", st.ToString().c_str());
  }

  // ------------------------------------------------------------------
  // 4. A bulk transaction: serializable range scan + an update inside the
  //    scanned range (the paper's composite OLTP + bulk pattern).
  // ------------------------------------------------------------------
  {
    TxnDescriptor* txn = cc.Begin(0);
    txn->is_scan_txn = true;
    SumBalances sum;
    cc.Scan(txn, accounts, /*start_key=*/0, /*end_key=*/100, /*limit=*/0, &sum);
    std::printf("scanned %llu accounts, total balance %llu\n",
                static_cast<unsigned long long>(sum.count()),
                static_cast<unsigned long long>(sum.total()));

    // Reward account 50 (inside the scanned range — ROCC's own registration
    // does not abort its own scan).
    uint64_t bonus = kInitial + 1;
    cc.Update(txn, accounts, 50, &bonus, sizeof(bonus), 0);
    const Status st = cc.Commit(txn);
    std::printf("bulk scan txn: %s\n", st.ToString().c_str());
  }

  // ------------------------------------------------------------------
  // 5. Conflict detection: a scan races a write into its range.
  // ------------------------------------------------------------------
  {
    TxnDescriptor* scanner = cc.Begin(0);
    SumBalances sum;
    cc.Scan(scanner, accounts, 200, 300, 0, &sum);

    // Another worker commits a write into [200, 300) meanwhile.
    TxnDescriptor* writer = cc.Begin(1);
    uint64_t v = 777;
    cc.Update(writer, accounts, 250, &v, sizeof(v), 0);
    std::printf("concurrent writer: %s\n", cc.Commit(writer).ToString().c_str());

    // The scanner's predicate validation detects the overlap and aborts.
    std::printf("racing scanner:    %s   <- expected Aborted\n",
                cc.Commit(scanner).ToString().c_str());
  }

  // ------------------------------------------------------------------
  // 6. Retried transactions succeed once the conflict has passed.
  // ------------------------------------------------------------------
  {
    TxnDescriptor* txn = cc.Begin(0);
    SumBalances sum;
    cc.Scan(txn, accounts, 200, 300, 0, &sum);
    std::printf("retried scanner:   %s\n", cc.Commit(txn).ToString().c_str());
  }
  return 0;
}
