// Top-shopper rewards: the paper's modified TPC-C scenario (§V-B). Online
// shops run a rewards program during a sales event: while Payment and
// NewOrder transactions hammer the system, a bulk transaction scans a
// district's customers for the highest spender and credits a reward —
// serializably, so the reward always goes to the true top shopper.
//
//   ./build/examples/top_shopper [--warehouses N] [--txns N] [--protocol ...]

#include <cstdio>

#include "common/config.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "workload/tpcc/tpcc.h"

using namespace rocc;  // NOLINT: example brevity

int main(int argc, char** argv) {
  Config cfg(argc, argv);
  TpccOptions options;
  options.num_warehouses = static_cast<uint32_t>(cfg.GetInt("warehouses", 2));
  options.initial_orders_per_district = 30;
  options.bulk_scan_length = static_cast<uint32_t>(cfg.GetInt("scan_len", 1000));
  const std::string protocol = cfg.GetString("protocol", "rocc");
  const uint64_t txns = static_cast<uint64_t>(cfg.GetInt("txns", 2000));
  const uint32_t threads = static_cast<uint32_t>(
      cfg.GetInt("threads", options.num_warehouses * 2));

  PrintBanner("Example: TPC-C with top-shopper reward bulk transactions",
              "protocol=" + protocol);

  Database db;
  TpccWorkload workload(options);
  std::printf("loading %u warehouses (%u customers, %u stock rows)...\n",
              options.num_warehouses,
              options.num_warehouses * tpcc::kCustomersPerWarehouse,
              options.num_warehouses * tpcc::kItems);
  workload.Load(&db);

  auto cc = CreateProtocol(protocol, &db, workload, threads);
  RunOptions run;
  run.num_threads = threads;
  run.txns_per_thread = txns / threads + 1;
  run.warmup_txns_per_thread = 50;
  const RunResult result = RunExperiment(cc.get(), &workload, run);

  ReportTable table({"metric", "value"});
  table.AddRow({"throughput (txn/s)", ReportTable::Fmt(result.Throughput(), 1)});
  table.AddRow({"bulk reward txns/s", ReportTable::Fmt(result.ScanThroughput(), 1)});
  table.AddRow({"bulk scan avg latency (ms)",
                ReportTable::Fmt(result.stats.latency_scan.Mean() / 1e6, 3)});
  table.AddRow({"abort rate", ReportTable::Fmt(result.stats.AbortRate(), 4)});
  table.AddRow(
      {"customers scanned", ReportTable::Fmt(result.stats.scanned_records)});
  table.Print();

  // The reward transaction debits district and warehouse YTD together, so a
  // serializable execution preserves w_ytd == sum(d_ytd) exactly.
  std::printf("\nconsistency: w_ytd == sum(d_ytd) per warehouse ... %s\n",
              workload.CheckYtdInvariant() ? "OK" : "VIOLATED");
  std::printf("consistency: order ids dense per district ......... %s\n",
              workload.CheckOrderInvariant() ? "OK" : "VIOLATED");
  return 0;
}
