// Fig. 11 — Scan throughput under various sizes of the circular array:
// (a) across partitioning granularity, (b) across workload skew.
//
// Paper setup: 40 threads, scan length 100, array sizes 100..10000.
// Expected shape: array size barely matters across granularities at low
// skew; small arrays hurt under skew (hot ranges wrap their rings and force
// conservative aborts — the paper's variant blocks registration instead,
// with the same performance cliff). The paper settles on 5000 slots.

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  PrintBanner("Fig. 11: RV scan throughput vs circular-array size", env.Describe());

  YcsbOptions opts;
  opts.theta = 0.7;
  opts.scan_length = 100;
  YcsbBench bench(env, opts);

  // The paper sweeps 100..10000 slots; the overlap windows of this scaled-
  // down run are smaller, so the sweep extends downward to expose the same
  // cliff (a ring smaller than the hot range's overlap window forces
  // conservative aborts, the analogue of the paper's blocked registrations).
  const auto ring_sizes =
      env.cfg.GetIntList("ring_sizes", {16, 48, 100, 500, 1000, 5000, 10000});

  std::printf("(a) varying partitioning granularity, low skew\n");
  ReportTable ta({"ring_size", "num_ranges", "scan_tps", "scan_abort_rate"});
  const uint32_t default_ranges = bench.workload().DefaultNumRanges();
  for (uint32_t n : {default_ranges / 16, default_ranges, default_ranges * 4}) {
    if (n == 0) continue;
    for (int64_t ring : ring_sizes) {
      const RunResult r = bench.Run("rocc", n, static_cast<uint32_t>(ring));
      ta.AddRow({F(static_cast<uint64_t>(ring)), F(static_cast<uint64_t>(n)),
                 F(r.ScanThroughput(), 1), F(r.stats.ScanAbortRate(), 4)});
    }
  }
  Emit(env, ta);

  std::printf("\n(b) varying workload skew, default granularity\n");
  ReportTable tb({"ring_size", "skew_theta", "scan_tps", "scan_abort_rate"});
  for (double theta : env.cfg.GetDoubleList("thetas", {0.0, 0.7, 0.88, 1.04})) {
    YcsbOptions cur = bench.options();
    cur.theta = theta;
    bench.Reconfigure(cur);
    for (int64_t ring : ring_sizes) {
      const RunResult r = bench.Run("rocc", 0, static_cast<uint32_t>(ring));
      tb.AddRow({F(static_cast<uint64_t>(ring)), F(theta, 2),
                 F(r.ScanThroughput(), 1), F(r.stats.ScanAbortRate(), 4)});
    }
  }
  Emit(env, tb);
  return 0;
}
