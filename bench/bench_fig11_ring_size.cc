// Fig. 11 — Scan throughput under various sizes of the circular array:
// (a) across partitioning granularity, (b) across workload skew.
//
// Paper setup: 40 threads, scan length 100, array sizes 100..10000.
// Expected shape: array size barely matters across granularities at low
// skew; small arrays hurt under skew (hot ranges wrap their rings and force
// conservative aborts — the paper's variant blocks registration instead,
// with the same performance cliff). The paper settles on 5000 slots.
//
//   --adaptive    Instead of asking "which static size should we have
//                 picked?", let the tuner answer at runtime: each cell
//                 starts from a deliberately small ring and runs static vs
//                 adaptive (tuner with a frozen grid, adaptive_ring on), so
//                 the adaptive arm must climb out of the Fig. 11 cliff by
//                 resizing. Reports resizes and the final hot-ring capacity
//                 next to the throughput recovered.

#include <algorithm>
#include <memory>

#include "bench_common.h"
#include "core/rocc.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

namespace {

/// --adaptive mode: small starting rings, tuner-driven capacity.
int AdaptiveSweep(const BenchEnv& env) {
  PrintBanner("Fig. 11 adaptive: tuner-grown ring capacity vs static",
              env.Describe());
  YcsbOptions opts;
  opts.theta = env.cfg.GetDouble("theta", 0.95);
  opts.scan_theta = env.cfg.GetDouble("scan-theta", 0.0);
  opts.scan_length = static_cast<uint64_t>(env.cfg.GetInt("scan_len", 100));
  YcsbBench bench(env, opts);
  const uint32_t ranges = static_cast<uint32_t>(env.cfg.GetInt(
      "num-ranges", static_cast<int64_t>(bench.workload().DefaultNumRanges())));
  const auto ring_sizes = env.cfg.GetIntList("ring_sizes", {16, 32, 64});

  ReportTable table({"start_ring", "layout", "scan_tps", "scan_abort_rate",
                     "abort_ring_lost", "resizes", "final_hot_ring"});
  GiveUpGuard guard;
  for (int64_t ring : ring_sizes) {
    if (ring <= 0) continue;
    for (const bool adaptive : {false, true}) {
      RoccOptions ropts;
      ropts.tables =
          bench.workload().RangeConfigs(ranges, static_cast<uint32_t>(ring));
      ropts.default_ring_capacity = static_cast<uint32_t>(ring);
      if (adaptive) {
        // Frozen grid: the only lever the tuner has is ring capacity, so
        // any recovery over the static arm is attributable to resizing.
        ropts.tuner.enabled = true;
        ropts.tuner.slices_per_range = 1;
        ropts.tuner.adaptive_ring = true;
      }
      auto cc = std::make_unique<Rocc>(bench.db(), env.threads, ropts);
      const RunResult r = bench.RunWith(cc.get());
      guard.Check(r, std::string(adaptive ? "adaptive" : "static") +
                         " @ ring=" + F(static_cast<uint64_t>(ring)));
      const RangeTelemetry tel =
          cc->range_manager(bench.workload().table_id())->Telemetry();
      uint64_t hot_ring = 0;
      for (const RangeTelemetry::Row& row : tel.rows) {
        hot_ring = std::max<uint64_t>(hot_ring, row.ring_capacity);
      }
      table.AddRow({F(static_cast<uint64_t>(ring)),
                    adaptive ? "adaptive" : "static", F(r.ScanThroughput(), 1),
                    F(r.stats.ScanAbortRate(), 4), F(r.stats.abort_ring_lost),
                    F(adaptive ? cc->tuner()->resizes() : 0), F(hot_ring)});
    }
  }
  Emit(env, table, "adaptive_ring");
  return guard.Failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  if (env.cfg.Has("adaptive")) return AdaptiveSweep(env);
  PrintBanner("Fig. 11: RV scan throughput vs circular-array size", env.Describe());

  YcsbOptions opts;
  opts.theta = 0.7;
  opts.scan_length = 100;
  YcsbBench bench(env, opts);

  // The paper sweeps 100..10000 slots; the overlap windows of this scaled-
  // down run are smaller, so the sweep extends downward to expose the same
  // cliff (a ring smaller than the hot range's overlap window forces
  // conservative aborts, the analogue of the paper's blocked registrations).
  const auto ring_sizes =
      env.cfg.GetIntList("ring_sizes", {16, 48, 100, 500, 1000, 5000, 10000});

  std::printf("(a) varying partitioning granularity, low skew\n");
  ReportTable ta({"ring_size", "num_ranges", "scan_tps", "scan_abort_rate"});
  const uint32_t default_ranges = bench.workload().DefaultNumRanges();
  for (uint32_t n : {default_ranges / 16, default_ranges, default_ranges * 4}) {
    if (n == 0) continue;
    for (int64_t ring : ring_sizes) {
      const RunResult r = bench.Run("rocc", n, static_cast<uint32_t>(ring));
      ta.AddRow({F(static_cast<uint64_t>(ring)), F(static_cast<uint64_t>(n)),
                 F(r.ScanThroughput(), 1), F(r.stats.ScanAbortRate(), 4)});
    }
  }
  Emit(env, ta);

  std::printf("\n(b) varying workload skew, default granularity\n");
  ReportTable tb({"ring_size", "skew_theta", "scan_tps", "scan_abort_rate"});
  for (double theta : env.cfg.GetDoubleList("thetas", {0.0, 0.7, 0.88, 1.04})) {
    YcsbOptions cur = bench.options();
    cur.theta = theta;
    bench.Reconfigure(cur);
    for (int64_t ring : ring_sizes) {
      const RunResult r = bench.Run("rocc", 0, static_cast<uint32_t>(ring));
      tb.AddRow({F(static_cast<uint64_t>(ring)), F(theta, 2),
                 F(r.ScanThroughput(), 1), F(r.stats.ScanAbortRate(), 4)});
    }
  }
  Emit(env, tb);
  return 0;
}
