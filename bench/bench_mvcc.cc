// Multi-version snapshot-scan A/B: read-only bulk scans with and without the
// multi-version row store.
//
// Two cells run the same composite hybrid-YCSB workload — Zipfian point
// updates plus read-only range scans of --scan-len keys (default 100, the
// regime where single-version validation aborts roughly half the scans):
//
//   sv   rocc, single-version: read-only scans take the ordinary validated
//        scan path and abort whenever a point writer commits into the
//        scanned span between read and validation
//   mv   rocc + multi-version row store: the same scans resolve every row
//        against a frozen snapshot and can never validate-abort
//
// Cells are interleaved within each repetition so ambient drift cancels out
// of the paired deltas (same methodology as bench_obs_overhead). Reported
// figures are medians across repetitions; the point-throughput comparison is
// the median of per-rep PAIRED deltas.
//
// The binary exits nonzero when:
//   - the mv cell's median scan abort rate >= --max-scan-abort (pct, def. 1)
//   - the median paired point-txn throughput delta of mv vs sv exceeds
//     --point-tol percent (default 3) — versioning must not tax OLTP
//   - any run dropped transactions (give_ups != 0)
//   - version nodes survive GcQuiesce (chain leak)
//
// Extra flags: --ab (9 repetitions instead of 3), --reps N (override),
// --scan-len N, --scan-frac F (default 0.1), --max-scan-abort P,
// --point-tol P.

#include <algorithm>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "mv/version_store.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

namespace {

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double PointTps(const RunResult& r) {
  return r.seconds > 0
             ? static_cast<double>(r.stats.commits - r.stats.scan_txn_commits) /
                   r.seconds
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  if (!env.cfg.Has("threads")) env.threads = 8;
  if (!env.cfg.Has("rows")) env.rows = 200'000;
  if (!env.cfg.Has("txns")) env.txns_per_thread = 500;
  if (!env.cfg.Has("warmup")) env.warmup = 50;
  const bool ab = env.cfg.GetBool("ab", false);
  const int reps = static_cast<int>(env.cfg.GetInt("reps", ab ? 9 : 3));
  const uint64_t scan_len = static_cast<uint64_t>(env.cfg.GetInt("scan-len", 100));
  const double scan_frac = env.cfg.GetDouble("scan-frac", 0.1);
  const double max_scan_abort = env.cfg.GetDouble("max-scan-abort", 1.0);
  const double point_tol = env.cfg.GetDouble("point-tol", 3.0);
  PrintBanner("Snapshot scans vs validated scans (read-only bulk, composite load)",
              env.Describe());

  YcsbOptions base;
  base.scan_length = scan_len;
  base.scan_txn_fraction = scan_frac;
  base.read_only_scans = true;  // both cells: pure range reads
  YcsbBench bench(env, base);

  YcsbOptions sv_opts = bench.options();
  YcsbOptions mv_opts = sv_opts;
  mv_opts.snapshot_scans = true;

  std::vector<double> sv_scan_abort, mv_scan_abort;
  std::vector<double> sv_point_tps, mv_point_tps, point_delta_pct;
  std::vector<double> sv_tps, mv_tps;
  uint64_t live_bytes_peak = 0;
  uint64_t leaked_nodes = 0;
  uint64_t give_ups = 0;
  uint64_t mv_scans_total = 0, mv_chain_reads_total = 0;

  for (int rep = 0; rep < reps; rep++) {
    // --- sv cell: single-version, validated read-only scans ---
    bench.Reconfigure(sv_opts);
    RunResult sv = bench.Run("rocc");
    sv_scan_abort.push_back(sv.stats.ScanAbortRate() * 100.0);
    sv_point_tps.push_back(PointTps(sv));
    sv_tps.push_back(sv.Throughput());
    give_ups += sv.stats.give_ups;

    // --- mv cell: snapshot scans against the version store ---
    bench.Reconfigure(mv_opts);
    auto cc = CreateProtocol("rocc+mv", bench.db(), bench.workload(),
                             env.threads);
    RunResult mv = bench.RunWith(cc.get());
    mv_scan_abort.push_back(mv.stats.ScanAbortRate() * 100.0);
    mv_point_tps.push_back(PointTps(mv));
    mv_tps.push_back(mv.Throughput());
    give_ups += mv.stats.give_ups;
    mv_scans_total += mv.stats.mv_snapshot_scans;
    mv_chain_reads_total += mv.stats.mv_chain_reads;
    if (sv_point_tps.back() > 0) {
      point_delta_pct.push_back((sv_point_tps.back() - mv_point_tps.back()) /
                                sv_point_tps.back() * 100.0);
    }

    // Version memory must be bounded while running and empty once quiesced.
    mv::VersionStore* vs = cc->version_store();
    live_bytes_peak = std::max(live_bytes_peak, vs->Telemetry().live_bytes());
    vs->GcQuiesce(bench.db());
    leaked_nodes += vs->Telemetry().live_nodes();

    std::printf(
        "  [rep %d] sv scan_abort=%.1f%% point=%.0f | mv scan_abort=%.2f%% "
        "point=%.0f (paired delta %+.2f%%)\n",
        rep, sv_scan_abort.back(), sv_point_tps.back(), mv_scan_abort.back(),
        mv_point_tps.back(),
        point_delta_pct.empty() ? 0.0 : -point_delta_pct.back());
  }

  ReportTable table({"cell", "median_tps", "median_point_tps",
                     "median_scan_abort_pct", "point_delta_pct",
                     "live_version_mib_peak", "leaked_nodes"});
  table.AddRow({"sv", F(Median(sv_tps), 0), F(Median(sv_point_tps), 0),
                F(Median(sv_scan_abort), 2), "0", "0", "0"});
  table.AddRow({"mv", F(Median(mv_tps), 0), F(Median(mv_point_tps), 0),
                F(Median(mv_scan_abort), 2), F(-Median(point_delta_pct), 2),
                F(static_cast<double>(live_bytes_peak) / (1 << 20), 2),
                F(leaked_nodes)});
  Emit(env, table, "mvcc_ab");
  std::printf("snapshot scans: %llu, chain reads: %llu\n",
              static_cast<unsigned long long>(mv_scans_total),
              static_cast<unsigned long long>(mv_chain_reads_total));

  int rc = 0;
  const double mv_abort = Median(mv_scan_abort);
  if (mv_abort >= max_scan_abort) {
    std::fprintf(stderr,
                 "ERROR: snapshot scans aborted %.2f%% of the time (budget "
                 "%.2f%%; single-version baseline %.1f%%)\n",
                 mv_abort, max_scan_abort, Median(sv_scan_abort));
    rc = 1;
  }
  const double point_cost = Median(point_delta_pct);
  if (point_cost > point_tol) {
    std::fprintf(stderr,
                 "ERROR: version maintenance costs %.2f%% point throughput "
                 "(tolerance %.2f%%)\n",
                 point_cost, point_tol);
    rc = 1;
  }
  if (give_ups != 0) {
    std::fprintf(stderr,
                 "ERROR: %llu logical transactions dropped (give_ups != 0)\n",
                 static_cast<unsigned long long>(give_ups));
    rc = 1;
  }
  if (leaked_nodes != 0) {
    std::fprintf(stderr,
                 "ERROR: %llu version nodes survived GcQuiesce (chain leak)\n",
                 static_cast<unsigned long long>(leaked_nodes));
    rc = 1;
  }
  if (rc == 0) std::printf("mvcc budgets OK\n");
  return rc;
}
