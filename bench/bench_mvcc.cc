// Multi-version read-only-transaction A/B plus a prune-pressure eviction
// cell.
//
// Phase 1 — two cells run the same composite hybrid-YCSB workload: Zipfian
// point updates plus READ-ONLY analytics transactions that mix a range scan
// of --scan-len keys with --point-reads hot-key lookups (the general
// read-only shape, not just a bare scan):
//
//   sv   rocc, single-version: the read-only transaction takes the ordinary
//        validated path and aborts whenever a point writer commits into the
//        scanned span — or dirties one of its point-read keys — between read
//        and validation
//   mv   rocc + multi-version row store: BeginReadOnly freezes one snapshot
//        at the first read; the point reads and the scan all resolve against
//        it and the transaction commits with no validation, no locks, no WAL
//
// Cells are interleaved within each repetition so ambient drift cancels out
// of the paired deltas (same methodology as bench_obs_overhead). Reported
// figures are medians across repetitions; the point-throughput comparison is
// the median of per-rep PAIRED deltas.
//
// Phase 2 — snapshot-hold: a holder thread pins one snapshot for the whole
// --hold-secs window (probing it with point reads) while full write traffic
// hammers a hot key range. With the version-memory ceiling set
// (--ceiling-mib) the prune-pressure check must evict the holder's snapshot,
// the holder must observe kSnapshotEvicted and retry, and peak live version
// bytes must stay bounded instead of growing with the hold.
//
// The binary exits nonzero when:
//   - the mv cell's median read-only abort rate >= --max-scan-abort (pct,
//     default 1; the snapshot path's actual rate is 0)
//   - the median paired point-txn throughput delta of mv vs sv exceeds
//     --point-tol percent (default 3) — versioning must not tax OLTP
//   - any run dropped transactions (give_ups != 0)
//   - version nodes survive GcQuiesce (chain leak), or GcQuiesce found a
//     held row latch (gc_locked_rows != 0)
//   - the hold cell never evicted, the holder never aborted with
//     kSnapshotEvicted, its abort causes fail to sum to its aborts, or peak
//     live version bytes exceeded 4x the ceiling
//
// Extra flags: --ab (9 repetitions instead of 3), --reps N (override),
// --scan-len N, --scan-frac F (default 0.1), --point-reads N (default 4),
// --theta T (default 0.95), --max-scan-abort P, --point-tol P,
// --hold-secs S (default 2.5), --ceiling-mib M (default 8).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "mv/version_store.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

namespace {

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double PointTps(const RunResult& r) {
  return r.seconds > 0
             ? static_cast<double>(r.stats.commits - r.stats.scan_txn_commits) /
                   r.seconds
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  if (!env.cfg.Has("threads")) env.threads = 8;
  if (!env.cfg.Has("rows")) env.rows = 200'000;
  if (!env.cfg.Has("txns")) env.txns_per_thread = 500;
  if (!env.cfg.Has("warmup")) env.warmup = 50;
  const bool ab = env.cfg.GetBool("ab", false);
  const int reps = static_cast<int>(env.cfg.GetInt("reps", ab ? 9 : 3));
  const uint64_t scan_len = static_cast<uint64_t>(env.cfg.GetInt("scan-len", 100));
  const double scan_frac = env.cfg.GetDouble("scan-frac", 0.1);
  const uint32_t point_reads =
      static_cast<uint32_t>(env.cfg.GetInt("point-reads", 4));
  const double theta = env.cfg.GetDouble("theta", 0.95);
  const double max_scan_abort = env.cfg.GetDouble("max-scan-abort", 1.0);
  const double point_tol = env.cfg.GetDouble("point-tol", 3.0);
  const double hold_secs = env.cfg.GetDouble("hold-secs", 2.5);
  const uint64_t ceiling_mib =
      static_cast<uint64_t>(env.cfg.GetInt("ceiling-mib", 8));
  PrintBanner("Read-only snapshot transactions vs validated reads (composite load)",
              env.Describe());

  YcsbOptions base;
  base.theta = theta;  // hot writers into the read/scan space
  base.scan_length = scan_len;
  base.scan_txn_fraction = scan_frac;
  base.read_only_scans = true;            // both cells: read-only analytics
  base.scan_txn_point_reads = point_reads;  // scan + point lookups per txn
  YcsbBench bench(env, base);

  YcsbOptions sv_opts = bench.options();
  YcsbOptions mv_opts = sv_opts;
  mv_opts.snapshot_scans = true;

  std::vector<double> sv_scan_abort, mv_scan_abort;
  std::vector<double> sv_point_tps, mv_point_tps, point_delta_pct;
  std::vector<double> sv_tps, mv_tps;
  uint64_t live_bytes_peak = 0;
  uint64_t leaked_nodes = 0;
  uint64_t give_ups = 0;
  uint64_t mv_scans_total = 0, mv_chain_reads_total = 0;
  uint64_t mv_snapshot_txns_total = 0, mv_point_reads_total = 0;
  uint64_t mv_evicted_aborts = 0;

  for (int rep = 0; rep < reps; rep++) {
    // --- sv cell: single-version, validated read-only scans ---
    bench.Reconfigure(sv_opts);
    RunResult sv = bench.Run("rocc");
    sv_scan_abort.push_back(sv.stats.ScanAbortRate() * 100.0);
    sv_point_tps.push_back(PointTps(sv));
    sv_tps.push_back(sv.Throughput());
    give_ups += sv.stats.give_ups;

    // --- mv cell: snapshot scans against the version store ---
    bench.Reconfigure(mv_opts);
    auto cc = CreateProtocol("rocc+mv", bench.db(), bench.workload(),
                             env.threads);
    RunResult mv = bench.RunWith(cc.get());
    mv_scan_abort.push_back(mv.stats.ScanAbortRate() * 100.0);
    mv_point_tps.push_back(PointTps(mv));
    mv_tps.push_back(mv.Throughput());
    give_ups += mv.stats.give_ups;
    mv_scans_total += mv.stats.mv_snapshot_scans;
    mv_chain_reads_total += mv.stats.mv_chain_reads;
    mv_snapshot_txns_total += mv.stats.mv_snapshot_txns;
    mv_point_reads_total += mv.stats.mv_snapshot_point_reads;
    mv_evicted_aborts += mv.stats.abort_snapshot_evicted;  // no ceiling: 0
    if (sv_point_tps.back() > 0) {
      point_delta_pct.push_back((sv_point_tps.back() - mv_point_tps.back()) /
                                sv_point_tps.back() * 100.0);
    }

    // Version memory must be bounded while running and empty once quiesced.
    mv::VersionStore* vs = cc->version_store();
    live_bytes_peak = std::max(live_bytes_peak, vs->Telemetry().live_bytes());
    vs->GcQuiesce(bench.db());
    leaked_nodes += vs->Telemetry().live_nodes();

    std::printf(
        "  [rep %d] sv scan_abort=%.1f%% point=%.0f | mv scan_abort=%.2f%% "
        "point=%.0f (paired delta %+.2f%%)\n",
        rep, sv_scan_abort.back(), sv_point_tps.back(), mv_scan_abort.back(),
        mv_point_tps.back(),
        point_delta_pct.empty() ? 0.0 : -point_delta_pct.back());
  }

  ReportTable table({"cell", "median_tps", "median_point_tps",
                     "median_scan_abort_pct", "point_delta_pct",
                     "live_version_mib_peak", "leaked_nodes"});
  table.AddRow({"sv", F(Median(sv_tps), 0), F(Median(sv_point_tps), 0),
                F(Median(sv_scan_abort), 2), "0", "0", "0"});
  table.AddRow({"mv", F(Median(mv_tps), 0), F(Median(mv_point_tps), 0),
                F(Median(mv_scan_abort), 2), F(-Median(point_delta_pct), 2),
                F(static_cast<double>(live_bytes_peak) / (1 << 20), 2),
                F(leaked_nodes)});
  Emit(env, table, "mvcc_ab");
  std::printf(
      "snapshot txns: %llu (point reads: %llu, scans: %llu, chain reads: "
      "%llu, evicted: %llu)\n",
      static_cast<unsigned long long>(mv_snapshot_txns_total),
      static_cast<unsigned long long>(mv_point_reads_total),
      static_cast<unsigned long long>(mv_scans_total),
      static_cast<unsigned long long>(mv_chain_reads_total),
      static_cast<unsigned long long>(mv_evicted_aborts));

  // --- Phase 2: snapshot-hold under full write load with a memory ceiling ---
  //
  // A holder pins one snapshot and probes it with point reads for the whole
  // window while every other thread writes a hot key range as fast as it
  // can. Without the ceiling the pinned chains would grow with wall clock;
  // with it, the committer-side pressure check evicts the holder, who aborts
  // with kSnapshotEvicted and re-pins near the watermark.
  uint64_t hold_evictions = 0;
  uint64_t holder_evicted_aborts = 0;
  uint64_t holder_commits = 0;
  uint64_t hold_write_commits = 0;
  uint64_t hold_peak_live = 0;
  uint64_t hold_leaked = 0;
  uint64_t hold_gc_locked = 0;
  bool holder_causes_sum = true;
  {
    bench.Reconfigure(mv_opts);
    auto cc = CreateProtocol("rocc+mv", bench.db(), bench.workload(),
                             env.threads + 1);
    mv::VersionStore* vs = cc->version_store();
    vs->SetLiveBytesCeiling(ceiling_mib << 20);
    std::vector<TxnStats> hstats(env.threads + 1);
    for (uint32_t i = 0; i <= env.threads; i++) cc->AttachThread(i, &hstats[i]);
    const uint32_t table_id = bench.workload().table_id();
    const uint32_t payload = bench.options().payload_size;
    // Writers hammer a small hot range so prunable chains are re-touched (and
    // reclaimed) quickly once the floor advances past the evicted snapshot.
    const uint64_t hot_keys = std::min<uint64_t>(4096, env.rows);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> peak_live{0};
    std::atomic<uint64_t> write_commits{0};

    std::thread monitor([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t lb = vs->Telemetry().live_bytes();
        uint64_t prev = peak_live.load(std::memory_order_relaxed);
        while (lb > prev &&
               !peak_live.compare_exchange_weak(prev, lb,
                                                std::memory_order_relaxed)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    std::atomic<uint64_t> holder_aborted{0}, holder_committed{0};
    std::thread holder([&] {
      const uint32_t tid = env.threads;
      std::vector<char> buf(payload);
      Rng rng(99);
      while (!stop.load(std::memory_order_relaxed)) {
        TxnDescriptor* t = cc->BeginReadOnly(tid);
        bool aborted = false;
        // Hold one frozen snapshot as long as the store allows, probing with
        // a point read every couple of milliseconds; an eviction surfaces as
        // an aborted read (or, raced with the final probe, a failed commit).
        while (!stop.load(std::memory_order_relaxed)) {
          if (!cc->Read(t, table_id, rng.Uniform(hot_keys), buf.data()).ok()) {
            aborted = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        if (aborted) {
          cc->Abort(t);
          holder_aborted.fetch_add(1, std::memory_order_relaxed);
        } else if (cc->Commit(t).ok()) {
          holder_committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          holder_aborted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });

    std::vector<std::thread> writers;
    for (uint32_t w = 0; w < env.threads; w++) {
      writers.emplace_back([&, w] {
        Rng rng(1234 + w);
        uint64_t v = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          TxnDescriptor* t = cc->Begin(w);
          if (!cc->Update(t, table_id, rng.Uniform(hot_keys), &v, sizeof(v), 0)
                   .ok()) {
            cc->Abort(t);
            continue;
          }
          if (cc->Commit(t).ok()) {
            write_commits.fetch_add(1, std::memory_order_relaxed);
            v++;
          }
        }
      });
    }

    std::this_thread::sleep_for(std::chrono::duration<double>(hold_secs));
    stop.store(true);
    holder.join();
    for (auto& w : writers) w.join();
    monitor.join();

    hold_evictions = vs->Telemetry().snapshots_evicted;
    holder_evicted_aborts = hstats[env.threads].abort_snapshot_evicted;
    holder_commits = holder_committed.load();
    hold_write_commits = write_commits.load();
    hold_peak_live = peak_live.load();
    holder_causes_sum = hstats[env.threads].aborts ==
                        hstats[env.threads].AbortCauseSum();
    vs->GcQuiesce(bench.db());
    hold_leaked = vs->Telemetry().live_nodes();
    hold_gc_locked = vs->Telemetry().gc_locked_rows;
    leaked_nodes += hold_leaked + hold_gc_locked;
    (void)holder_aborted;
  }

  ReportTable hold_table({"hold_secs", "write_commits", "evictions",
                          "holder_evicted_aborts", "holder_commits",
                          "peak_live_mib", "ceiling_mib", "leaked_nodes"});
  hold_table.AddRow(
      {F(hold_secs, 1), F(hold_write_commits), F(hold_evictions),
       F(holder_evicted_aborts), F(holder_commits),
       F(static_cast<double>(hold_peak_live) / (1 << 20), 2), F(ceiling_mib),
       F(hold_leaked)});
  Emit(env, hold_table, "mvcc_snapshot_hold");

  int rc = 0;
  const double mv_abort = Median(mv_scan_abort);
  if (mv_abort >= max_scan_abort) {
    std::fprintf(stderr,
                 "ERROR: snapshot scans aborted %.2f%% of the time (budget "
                 "%.2f%%; single-version baseline %.1f%%)\n",
                 mv_abort, max_scan_abort, Median(sv_scan_abort));
    rc = 1;
  }
  const double point_cost = Median(point_delta_pct);
  if (point_cost > point_tol) {
    std::fprintf(stderr,
                 "ERROR: version maintenance costs %.2f%% point throughput "
                 "(tolerance %.2f%%)\n",
                 point_cost, point_tol);
    rc = 1;
  }
  if (give_ups != 0) {
    std::fprintf(stderr,
                 "ERROR: %llu logical transactions dropped (give_ups != 0)\n",
                 static_cast<unsigned long long>(give_ups));
    rc = 1;
  }
  if (leaked_nodes != 0) {
    std::fprintf(stderr,
                 "ERROR: %llu version nodes survived GcQuiesce (chain leak / "
                 "held latch)\n",
                 static_cast<unsigned long long>(leaked_nodes));
    rc = 1;
  }
  if (mv_evicted_aborts != 0) {
    std::fprintf(stderr,
                 "ERROR: %llu snapshot evictions in the A/B cells, which run "
                 "without a ceiling\n",
                 static_cast<unsigned long long>(mv_evicted_aborts));
    rc = 1;
  }
  if (hold_evictions == 0 || holder_evicted_aborts == 0) {
    std::fprintf(stderr,
                 "ERROR: the %.1fs hold under a %llu MiB ceiling produced "
                 "%llu evictions and %llu kSnapshotEvicted aborts — the "
                 "prune-pressure backoff never engaged\n",
                 hold_secs, static_cast<unsigned long long>(ceiling_mib),
                 static_cast<unsigned long long>(hold_evictions),
                 static_cast<unsigned long long>(holder_evicted_aborts));
    rc = 1;
  }
  if (!holder_causes_sum) {
    std::fprintf(stderr,
                 "ERROR: holder abort causes do not sum to its aborts\n");
    rc = 1;
  }
  if (hold_peak_live > 4 * (ceiling_mib << 20)) {
    std::fprintf(stderr,
                 "ERROR: peak live version bytes %.2f MiB exceeded 4x the "
                 "%llu MiB ceiling — eviction did not bound version memory\n",
                 static_cast<double>(hold_peak_live) / (1 << 20),
                 static_cast<unsigned long long>(ceiling_mib));
    rc = 1;
  }
  if (hold_gc_locked != 0) {
    std::fprintf(stderr,
                 "ERROR: GcQuiesce found %llu rows still latched\n",
                 static_cast<unsigned long long>(hold_gc_locked));
    rc = 1;
  }
  if (rc == 0) std::printf("mvcc budgets OK\n");
  return rc;
}
