// Table I — details of the experimental environment, printed in the paper's
// format next to the machine this reproduction actually ran on.

#include <cstdio>

#include "common/sysinfo.h"

int main() {
  const rocc::SysInfo info = rocc::SysInfo::Probe();
  std::printf("=== Table I: experimental environment ===\n\n");
  std::printf("%-10s | %s\n", "paper", "this run");
  std::printf("-----------+------------------------------------------\n");
  std::printf("%-10s | %s\n", "CentOS 7", "see /etc/os-release");
  std::printf("%-10s | cpu: %s\n", "2x E5-2630", info.cpu_model.c_str());
  std::printf("%-10s | logical cores: %u\n", "40 threads", info.logical_cores);
  std::printf("%-10s | memory: %.1f GB\n", "192 GB",
              static_cast<double>(info.total_memory_bytes) / (1ull << 30));
  std::printf(
      "\nNote: this reproduction container is smaller than the paper's\n"
      "testbed; benchmarks default to a proportionally scaled quick mode\n"
      "(--paper restores the full parameters).\n");
  return 0;
}
